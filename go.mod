module crdtsmr

go 1.24
