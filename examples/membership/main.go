// Membership: a linearizable observed-remove set (OR-Set).
//
// Feature-flag rollouts, access-control lists, and service registries all
// need set semantics where grants and revocations from different sites
// resolve deterministically (add-wins) AND reads are authoritative: after
// a revocation completes, no subsequent read anywhere may still show the
// revoked member. Plain CRDT replication gives the first property; this
// repository's protocol adds the second.
//
//	go run ./examples/membership
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"crdtsmr"
)

func main() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewORSet())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Admins at different sites manage the on-call roster.
	berlin := cl.Set("n1")
	tokyo := cl.Set("n2")
	newyork := cl.Set("n3")

	must(berlin.Add(ctx, "alice"))
	must(tokyo.Add(ctx, "bob"))
	must(newyork.Add(ctx, "carol"))

	show(ctx, cl, "after three adds")

	// Revocation: once Remove returns, *every* replica's reads agree.
	must(tokyo.Remove(ctx, "alice"))
	roster, err := berlin.Elements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range roster {
		if m == "alice" {
			log.Fatal("alice visible after her revocation completed — linearizability violated")
		}
	}
	show(ctx, cl, "after revoking alice (read at a different replica)")

	// Crash tolerance: a minority failure does not interrupt service.
	cl.Crash("n3")
	must(berlin.Add(ctx, "dave"))
	show(ctx, cl, "after adding dave with n3 crashed")

	cl.Recover("n3")
	roster, err = cl.Set("n3").Elements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered n3 reads: %v\n", roster)
}

func show(ctx context.Context, cl *crdtsmr.Cluster, label string) {
	for _, id := range cl.NodeIDs() {
		if id == "n3" {
			// n3 may be crashed in one step; read where possible only.
			continue
		}
		got, err := cl.Set(id).Elements(ctx)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("%-50s %s: %v\n", label, id, got)
		label = ""
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
