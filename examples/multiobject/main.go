// Multi-object store: many independent CRDT objects over one cluster.
//
// The paper replicates a single CRDT payload. Because its protocol keeps
// no cross-command log, replication instances compose per key: every key
// is its own lightweight SMR group (payload + round counter), all keys
// share the nodes' event loops and connections, and linearizability holds
// per key. This demo runs a 3-replica cluster serving a keyspace that
// mixes payload types — per-article view counters, a session set, and a
// config register — plus a wide fan of counters, and keeps serving through
// a replica crash.
//
//	go run ./examples/multiobject
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"crdtsmr"
)

func main() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter(),
		crdtsmr.WithObjectInitial(func(key string) crdtsmr.State {
			switch {
			case strings.HasPrefix(key, "sessions/"):
				return crdtsmr.NewORSet()
			case strings.HasPrefix(key, "config/"):
				return crdtsmr.NewLWWRegister()
			default:
				return crdtsmr.NewGCounter() // article counters and the rest
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Typed objects of different CRDT types side by side in one keyspace,
	// each replicated and linearizable independently.
	views := cl.Object("article/42").Counter("n1")
	sessions := cl.Object("sessions/eu").Set("n2")
	banner := cl.Object("config/banner").Register("n3")

	for i := 0; i < 3; i++ {
		if err := views.Inc(ctx, 1); err != nil {
			log.Fatal(err)
		}
	}
	for _, user := range []string{"alice", "bob"} {
		if err := sessions.Add(ctx, user); err != nil {
			log.Fatal(err)
		}
	}
	if err := banner.Store(ctx, "welcome!"); err != nil {
		log.Fatal(err)
	}

	// Reads on other replicas are linearizable per key.
	v, err := cl.Object("article/42").Counter("n3").Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	who, err := cl.Object("sessions/eu").Set("n1").Elements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	msg, _, err := cl.Object("config/banner").Register("n2").Load(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("article/42 views = %d (want 3)\n", v)
	fmt.Printf("sessions/eu      = %v\n", who)
	fmt.Printf("config/banner    = %q\n", msg)

	// Scale out the keyspace: 64 more counters, spread across replicas.
	// Each is a separate replication instance — no shared ordering, no
	// log, instantiated lazily on first touch.
	ids := cl.NodeIDs()
	for k := 0; k < 64; k++ {
		key := fmt.Sprintf("counter/%02d", k)
		if err := cl.Object(key).Counter(ids[k%len(ids)]).Inc(ctx, uint64(k)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("objects instantiated at n1: %d\n", len(cl.Keys("n1")))

	// No leader: a minority crash leaves every key writable and readable.
	cl.Crash("n2")
	if err := views.Inc(ctx, 1); err != nil {
		log.Fatal(err)
	}
	v, err = cl.Object("article/42").Counter("n3").Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash of n2: article/42 views = %d (want 4)\n", v)
	cl.Recover("n2")

	// The recovered replica catches up and serves keyed reads again.
	v, err = cl.Object("article/42").Counter("n2").Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery:    article/42 views = %d at n2\n", v)
}
