// Pageviews: high-throughput concurrent counting with per-replica batching.
//
// A page-view counter is the classic CRDT workload: many writers, few
// readers, and the readers (billing, abuse detection) need values that are
// correct *now*, not eventually. This example runs 30 concurrent writers
// spread over three replicas with the paper's 5 ms batching window (§3.6):
// each replica folds its writers' increments into one protocol round per
// window, so throughput is bounded by local processing speed rather than
// by message count, while an auditing reader sees linearizable totals.
//
//	go run ./examples/pageviews
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"crdtsmr"
)

func main() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter(),
		crdtsmr.WithBatching(5*time.Millisecond),
		crdtsmr.WithNetworkDelay(50*time.Microsecond, 200*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const writers = 30
	const viewsPerWriter = 200
	replicas := cl.NodeIDs()

	var wg sync.WaitGroup
	var written atomic.Int64
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer submits views to "its" replica, like a web
			// frontend pinned to the nearest datacenter node.
			ctr := cl.Counter(replicas[w%len(replicas)])
			for i := 0; i < viewsPerWriter; i++ {
				if err := ctr.Inc(ctx, 1); err != nil {
					log.Printf("writer %d: %v", w, err)
					return
				}
				written.Add(1)
			}
		}(w)
	}

	// The auditor polls a linearizable total while writes are in flight:
	// every value it prints is a true count at some instant (no phantom
	// or missing views), and successive reads never go backwards.
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		auditor := cl.Counter("n1")
		var last uint64
		for i := 0; i < 10; i++ {
			time.Sleep(40 * time.Millisecond)
			v, err := auditor.Value(ctx)
			if err != nil {
				log.Printf("audit: %v", err)
				return
			}
			if v < last {
				log.Fatalf("audit regression: %d after %d", v, last)
			}
			last = v
			fmt.Printf("audit: %6d views (%.0f%% of submitted)\n", v, 100*float64(v)/float64(writers*viewsPerWriter))
		}
	}()

	wg.Wait()
	<-auditDone
	elapsed := time.Since(start)

	final, err := cl.Counter("n3").Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: %d views in %s (%.0f views/s), want %d\n",
		final, elapsed.Round(time.Millisecond), float64(written.Load())/elapsed.Seconds(), writers*viewsPerWriter)
	if final != writers*viewsPerWriter {
		log.Fatalf("lost updates: %d != %d", final, writers*viewsPerWriter)
	}
}
