// Quickstart: a three-replica linearizable counter in a few lines.
//
// This is the paper's headline use case — an atomic counter, "a ubiquitous
// primitive in distributed computing" that plain CRDTs cannot provide
// because they only offer eventual consistency. Updates complete in one
// round trip; reads are linearizable without a leader or a log.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"crdtsmr"
)

func main() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Three clients, each bound to a different replica — no leader, any
	// replica accepts updates and reads.
	c1 := cl.Counter("n1")
	c2 := cl.Counter("n2")
	c3 := cl.Counter("n3")

	if err := c1.Inc(ctx, 1); err != nil {
		log.Fatal(err)
	}
	if err := c2.Inc(ctx, 10); err != nil {
		log.Fatal(err)
	}
	if err := c3.Inc(ctx, 100); err != nil {
		log.Fatal(err)
	}

	// A linearizable read on any replica sees every completed increment.
	v, err := c2.Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter = %d (want 111)\n", v)

	// Inspect how the read was processed.
	state, stats, err := cl.Query(ctx, "n1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read at n1: value=%d path=%v roundTrips=%d attempts=%d\n",
		state.(*crdtsmr.GCounter).Value(), stats.Path, stats.RoundTrips, stats.Attempts)
}
