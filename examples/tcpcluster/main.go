// TCP cluster: three replicas as separate OS processes over real sockets.
//
// The other examples run replicas as goroutines over an emulated network.
// This one exercises the TCP transport end to end: the parent process
// re-executes itself three times (one child per replica), each child binds
// a TCP listener, joins the cluster, serves one update and one query
// submitted by the parent via its stdin protocol, and exits.
//
//	go run ./examples/tcpcluster
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

var addrs = map[transport.NodeID]string{
	"n1": "127.0.0.1:7701",
	"n2": "127.0.0.1:7702",
	"n3": "127.0.0.1:7703",
}

func main() {
	if id := os.Getenv("CRDTSMR_NODE"); id != "" {
		runReplica(transport.NodeID(id))
		return
	}
	runParent()
}

func runParent() {
	log.SetFlags(0)
	var procs []*exec.Cmd
	var stdins []*bufio.Writer
	var stdouts []*bufio.Scanner
	for _, id := range []string{"n1", "n2", "n3"} {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "CRDTSMR_NODE="+id)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			log.Fatal(err)
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs = append(procs, cmd)
		stdins = append(stdins, bufio.NewWriter(in))
		stdouts = append(stdouts, bufio.NewScanner(out))
	}
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
		}
	}()

	ask := func(i int, cmdline string) string {
		fmt.Fprintln(stdins[i], cmdline)
		stdins[i].Flush()
		if !stdouts[i].Scan() {
			log.Fatalf("replica %d died", i+1)
		}
		return stdouts[i].Text()
	}

	// Wait for all replicas to come up.
	for i := range procs {
		if got := ask(i, "ping"); got != "pong" {
			log.Fatalf("replica %d: %q", i+1, got)
		}
	}
	fmt.Println("three replica processes up, connected over TCP")

	// Increment at n1 and n2, read at n3: the read must see both.
	fmt.Println("n1 inc ->", ask(0, "inc 5"))
	fmt.Println("n2 inc ->", ask(1, "inc 7"))
	got := ask(2, "get")
	fmt.Println("n3 get ->", got)
	if !strings.HasSuffix(got, "12") {
		log.Fatalf("linearizable read over TCP returned %q, want 12", got)
	}
	for i := range procs {
		// quit has no reply: the replica just drains and exits.
		fmt.Fprintln(stdins[i], "quit")
		stdins[i].Flush()
		_ = procs[i].Wait()
	}
	fmt.Println("ok: cross-process linearizable counter over real sockets")
}

func runReplica(id transport.NodeID) {
	members := []transport.NodeID{"n1", "n2", "n3"}
	var tcp *transport.TCP
	node, err := cluster.NewNode(id, cluster.Config{
		Members: members,
		Initial: crdt.NewGCounter(),
		Options: core.DefaultOptions(),
	}, func(nid transport.NodeID, h transport.Handler) transport.Conn {
		peers := make(map[transport.NodeID]string)
		for p, a := range addrs {
			if p != nid {
				peers[p] = a
			}
		}
		t, err := transport.NewTCP(nid, addrs[nid], peers, h)
		if err != nil {
			log.Fatalf("%s: %v", nid, err)
		}
		tcp = t
		return t
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	_ = tcp

	ctx := context.Background()
	sc := bufio.NewScanner(os.Stdin)
	out := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ping":
			fmt.Fprintln(out, "pong")
		case "inc":
			var n uint64
			fmt.Sscanf(fields[1], "%d", &n)
			opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_, err := node.Update(opCtx, func(s crdt.State) (crdt.State, error) {
				return s.(*crdt.GCounter).Inc(string(id), n), nil
			})
			cancel()
			if err != nil {
				fmt.Fprintln(out, "err:", err)
			} else {
				fmt.Fprintln(out, "ok")
			}
		case "get":
			opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
			s, _, err := node.Query(opCtx)
			cancel()
			if err != nil {
				fmt.Fprintln(out, "err:", err)
			} else {
				fmt.Fprintln(out, s.(*crdt.GCounter).Value())
			}
		case "quit":
			out.Flush()
			return
		}
		out.Flush()
	}
}
