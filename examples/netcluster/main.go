// Network cluster: serve a replica group to remote clients over the
// documented client protocol (docs/PROTOCOL.md).
//
// This demo wires up what a cmd/crdtsmrd deployment runs across machines,
// inside one process so it needs no terminals: three replicas connected
// by the real TCP transport, each fronted by an internal/server endpoint,
// driven by the public crdtsmr/client package — typed handles, pipelined
// connections, and failover when a replica goes down mid-traffic.
//
// The -state-transfer flag selects the replica-wire transfer mode
// (docs/PROTOCOL.md §3); the demo reports the replica-wire bytes the run
// cost, so the modes can be compared directly. Note the payloads here
// are tiny counters, smaller than a 32-byte digest — on this workload
// full transfer wins, and digest/delta pay off as objects grow (the
// bench sweep shows the crossover):
//
//	go run ./examples/netcluster
//	go run ./examples/netcluster -state-transfer full
//	go run ./cmd/bench -figure bytes -sizes 10,100,1000   # the full sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

func main() {
	transferFlag := flag.String("state-transfer", "digest", "replica-wire state transfer: full, digest, or delta")
	flag.Parse()
	mode, err := core.ParseStateTransfer(*transferFlag)
	if err != nil {
		log.Fatal(err)
	}

	ids := []transport.NodeID{"n1", "n2", "n3"}

	// Reserve a mesh address per replica so every node can be configured
	// with its peers' addresses up front.
	meshAddrs := make(map[transport.NodeID]string, len(ids))
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		meshAddrs[id] = ln.Addr().String()
		_ = ln.Close()
	}

	cfg := cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		StateTransfer:      mode,
		RetransmitInterval: 20 * time.Millisecond,
	}
	var nodes []*cluster.Node
	var servers []*server.Server
	var addrs []string
	var meshConns []*transport.TCP
	for _, id := range ids {
		id := id
		node, err := cluster.NewNode(id, cfg, func(nid transport.NodeID, h transport.Handler) transport.Conn {
			peers := make(map[transport.NodeID]string)
			for p, a := range meshAddrs {
				if p != nid {
					peers[p] = a
				}
			}
			t, err := transport.NewTCP(nid, meshAddrs[nid], peers, h)
			if err != nil {
				log.Fatalf("replica %s: %v", nid, err)
			}
			meshConns = append(meshConns, t)
			return t
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes = append(nodes, node)

		srv, err := server.Start(node, "127.0.0.1:0", server.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
		fmt.Printf("replica %s: mesh %s, clients %s\n", id, meshAddrs[id], srv.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Eight concurrent clients pound one counter key through different
	// servers, pipelining over pooled connections.
	c, err := client.New(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const workers, each = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctr := c.Counter("views")
			for i := 0; i < each; i++ {
				if err := ctr.Inc(ctx, 1); err != nil {
					log.Fatalf("inc: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	v, err := c.Counter("views").Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("views = %d (want %d) after %d clients × %d incs\n", v, workers*each, workers, each)
	if v != workers*each {
		log.Fatalf("lost updates: got %d", v)
	}

	// Mixed payload types by key-prefix convention, over the same wire.
	set := c.Set("or-set/sessions")
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := set.Add(ctx, u); err != nil {
			log.Fatal(err)
		}
	}
	if err := set.Remove(ctx, "bob"); err != nil {
		log.Fatal(err)
	}
	members, err := set.Elements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions = %v (want [alice carol])\n", members)

	// Failover: crash n1's replica; its server answers "unavailable"
	// (provably not applied), and the client retries on n2/n3.
	nodes[0].SetCrashed(true)
	fmt.Println("replica n1 crashed; continuing through n2/n3")
	for i := 0; i < 10; i++ {
		if err := c.Counter("views").Inc(ctx, 1); err != nil {
			log.Fatalf("inc with n1 down: %v", err)
		}
	}
	v, err = c.Counter("views").Value(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("views = %d (want %d) with one replica down\n", v, workers*each+10)
	if v != workers*each+10 {
		log.Fatalf("lost updates during failover: got %d", v)
	}

	// The replica wire's byte bill for the whole run: compare across
	// -state-transfer modes (bench -figure bytes runs the proper sweep).
	var meshBytes, meshMsgs uint64
	for _, t := range meshConns {
		st := t.Stats()
		meshBytes += st.BytesSent
		meshMsgs += st.Sent
	}
	fmt.Printf("replica wire (%s transfer): %d messages, %d payload bytes\n", mode, meshMsgs, meshBytes)

	fmt.Println("ok: network clients stayed linearizable across a replica crash")
}
