// Failover: continuous availability through a replica crash (Figure 4).
//
// Leader-based replication goes dark for an election timeout when the
// leader dies. The paper's protocol has no leader: as long as a majority
// is reachable, every surviving replica keeps serving linearizable reads
// and single-round-trip updates. This example drives a steady workload,
// kills a replica mid-run, and prints the per-interval p95 latencies —
// the shape of the paper's Figure 4: no gap, only a modest latency bump.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"crdtsmr"
)

const (
	clients     = 16
	runDuration = 4 * time.Second
	interval    = 500 * time.Millisecond
	crashAfter  = 2 * time.Second
)

type sample struct {
	at  time.Duration
	lat time.Duration
}

func main() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter(),
		crdtsmr.WithNetworkDelay(50*time.Microsecond, 200*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), runDuration+10*time.Second)
	defer cancel()

	replicas := cl.NodeIDs()
	var mu sync.Mutex
	var samples []sample

	start := time.Now()
	time.AfterFunc(crashAfter, func() {
		fmt.Printf("*** crashing replica n3 at t=%s ***\n", time.Since(start).Round(time.Millisecond))
		cl.Crash("n3")
	})

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Clients of the crashed replica reconnect to a survivor, as a
			// production client library would.
			home := replicas[c%2] // n1 or n2: survivors
			ctr := cl.Counter(home)
			for time.Since(start) < runDuration {
				opStart := time.Now()
				var err error
				if c%10 == 0 {
					err = ctr.Inc(ctx, 1)
				} else {
					_, err = ctr.Value(ctx)
				}
				if err != nil {
					continue
				}
				mu.Lock()
				samples = append(samples, sample{at: opStart.Sub(start), lat: time.Since(opStart)})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// Per-interval p95.
	buckets := make(map[int][]time.Duration)
	for _, s := range samples {
		i := int(s.at / interval)
		buckets[i] = append(buckets[i], s.lat)
	}
	fmt.Printf("\n%-12s %10s %8s\n", "interval", "p95", "ops")
	for i := 0; i < int(runDuration/interval); i++ {
		lats := buckets[i]
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		p95 := time.Duration(0)
		if len(lats) > 0 {
			p95 = lats[int(0.95*float64(len(lats)-1))]
		}
		marker := ""
		if i == int(crashAfter/interval) {
			marker = "  <- n3 crashes"
		}
		fmt.Printf("%5.1fs-%4.1fs %10s %8d%s\n",
			(time.Duration(i) * interval).Seconds(),
			(time.Duration(i+1) * interval).Seconds(),
			p95.Round(10*time.Microsecond), len(lats), marker)
		if len(lats) == 0 && i > 0 {
			log.Fatal("an interval had zero completed operations: availability was lost")
		}
	}
	fmt.Println("\nno unavailability window: the protocol needs no leader election to continue.")
}
