package crdtsmr_test

import (
	"context"
	"fmt"
	"strings"

	"crdtsmr"
)

// ExampleNewLocalCluster replicates a single counter over three
// in-process replicas: updates are linearizable and take one protocol
// round trip; reads are linearizable with no leader involved.
func ExampleNewLocalCluster() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter())
	if err != nil {
		panic(err)
	}
	defer cl.Close()
	ctx := context.Background()

	ctr := cl.Counter("n1") // typed handle bound to replica n1
	for i := 0; i < 5; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			panic(err)
		}
	}
	v, err := cl.Counter("n3").Value(ctx) // read via another replica
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: 5
}

// ExampleCluster_Object shards a keyspace over one cluster: every key is
// an independent replication instance, and keys can hold different CRDT
// types via WithObjectInitial.
func ExampleCluster_Object() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter(),
		crdtsmr.WithObjectInitial(func(key string) crdtsmr.State {
			if strings.HasPrefix(key, "sessions/") {
				return crdtsmr.NewORSet()
			}
			return crdtsmr.NewGCounter()
		}))
	if err != nil {
		panic(err)
	}
	defer cl.Close()
	ctx := context.Background()

	views := cl.Object("article/42").Counter("n1")
	if err := views.Inc(ctx, 3); err != nil {
		panic(err)
	}

	sessions := cl.Object("sessions/eu").Set("n2")
	if err := sessions.Add(ctx, "alice"); err != nil {
		panic(err)
	}

	v, _ := cl.Object("article/42").Counter("n3").Value(ctx)
	members, _ := cl.Object("sessions/eu").Set("n3").Elements(ctx)
	fmt.Println(v, members)
	// Output: 3 [alice]
}

// ExampleRegister stores configuration in a replicated last-writer-wins
// register.
func ExampleRegister() {
	cl, err := crdtsmr.NewLocalCluster(3, crdtsmr.NewLWWRegister())
	if err != nil {
		panic(err)
	}
	defer cl.Close()
	ctx := context.Background()

	reg := cl.Object(crdtsmr.DefaultKey).Register("n1")
	if err := reg.Store(ctx, "v2"); err != nil {
		panic(err)
	}
	val, ok, err := cl.Object(crdtsmr.DefaultKey).Register("n2").Load(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println(val, ok)
	// Output: v2 true
}
