package gla

import (
	"fmt"
	"testing"

	"crdtsmr/internal/transport"
)

type gnet struct {
	t    *testing.T
	reps map[transport.NodeID]*Replica
	pool []genv
}

type genv struct {
	from, to transport.NodeID
	payload  []byte
}

func newGNet(t *testing.T, n int, onLearn map[transport.NodeID]LearnedFn) *gnet {
	t.Helper()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nw := &gnet{t: t, reps: make(map[transport.NodeID]*Replica, n)}
	for _, id := range members {
		rep, err := NewReplica(id, members, onLearn[id])
		if err != nil {
			t.Fatal(err)
		}
		nw.reps[id] = rep
	}
	return nw
}

func (nw *gnet) pump() {
	for _, rep := range nw.reps {
		for _, e := range rep.TakeOutbox() {
			nw.pool = append(nw.pool, genv{from: rep.ID(), to: e.To, payload: e.Payload})
		}
	}
}

func (nw *gnet) drain() {
	for len(nw.pool) > 0 {
		e := nw.pool[0]
		nw.pool = nw.pool[1:]
		nw.reps[e.to].Deliver(e.from, e.payload)
		nw.pump()
	}
}

func TestSingleProposerLearns(t *testing.T) {
	var learned []CmdSet
	nw := newGNet(t, 3, map[transport.NodeID]LearnedFn{
		"n1": func(v CmdSet, seq uint64) { learned = append(learned, v) },
	})
	nw.reps["n1"].ReceiveValue("a")
	nw.pump()
	nw.drain()
	if len(learned) != 1 {
		t.Fatalf("learned %d values, want 1", len(learned))
	}
	if !learned[0].Includes(NewCmdSet("a")) {
		t.Fatalf("learned %v, want {a}", learned[0].Elements())
	}
}

func TestConcurrentProposersConverge(t *testing.T) {
	learned := map[transport.NodeID][]CmdSet{}
	fns := map[transport.NodeID]LearnedFn{}
	for _, id := range []transport.NodeID{"n1", "n2", "n3"} {
		id := id
		fns[id] = func(v CmdSet, seq uint64) { learned[id] = append(learned[id], v) }
	}
	nw := newGNet(t, 3, fns)
	nw.reps["n1"].ReceiveValue("a")
	nw.reps["n2"].ReceiveValue("b")
	nw.reps["n3"].ReceiveValue("c")
	nw.pump()
	nw.drain()

	// Every learned value pair must be comparable (lattice agreement).
	var all []CmdSet
	for _, vs := range learned {
		all = append(all, vs...)
	}
	if len(all) < 3 {
		t.Fatalf("only %d values learned", len(all))
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !all[i].Includes(all[j]) && !all[j].Includes(all[i]) {
				t.Fatalf("incomparable learned values: %v vs %v", all[i].Elements(), all[j].Elements())
			}
		}
	}
}

func TestMessageSizesGrowWithCommands(t *testing.T) {
	// The ablation's core observation: GLA coordination bytes grow with
	// the command history, CRDT Paxos's do not.
	nw := newGNet(t, 3, map[transport.NodeID]LearnedFn{})
	rep := nw.reps["n1"]
	var sizes []uint64
	prev := uint64(0)
	for i := 0; i < 50; i++ {
		rep.ReceiveValue(fmt.Sprintf("cmd-%04d", i))
		nw.pump()
		nw.drain()
		sizes = append(sizes, rep.BytesSent-prev)
		prev = rep.BytesSent
	}
	if sizes[len(sizes)-1] <= sizes[0]*2 {
		t.Fatalf("expected message growth, got first=%d last=%d", sizes[0], sizes[len(sizes)-1])
	}
}

func TestCmdSetOps(t *testing.T) {
	a := NewCmdSet("x", "y")
	b := NewCmdSet("y", "z")
	u := a.Union(b)
	if len(u) != 3 || !u.Includes(a) || !u.Includes(b) {
		t.Fatalf("union = %v", u.Elements())
	}
	if a.Includes(b) || b.Includes(a) {
		t.Fatal("incomparable sets reported comparable")
	}
	if got := u.Elements(); got[0] != "x" || got[2] != "z" {
		t.Fatalf("elements = %v", got)
	}
}

func TestCodec(t *testing.T) {
	in := &message{Type: mPropose, Seq: 9, Val: NewCmdSet("a", "b")}
	out, err := decodeMessage(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 9 || !out.Val.Includes(in.Val) {
		t.Fatalf("round trip mangled: %+v", out)
	}
	if _, err := decodeMessage(nil); err == nil {
		t.Fatal("nil decoded")
	}
}

func TestReplicaValidation(t *testing.T) {
	if _, err := NewReplica("zz", []transport.NodeID{"a"}, nil); err == nil {
		t.Fatal("id outside members accepted")
	}
}
