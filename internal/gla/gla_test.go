package gla

import (
	"fmt"
	"testing"

	"crdtsmr/internal/transport"
)

type gnet struct {
	t    *testing.T
	reps map[transport.NodeID]*Replica
	pool []genv
}

type genv struct {
	from, to transport.NodeID
	payload  []byte
}

func newGNet(t *testing.T, n int, onLearn map[transport.NodeID]LearnedFn) *gnet {
	t.Helper()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nw := &gnet{t: t, reps: make(map[transport.NodeID]*Replica, n)}
	for _, id := range members {
		rep, err := NewReplica(id, members, onLearn[id])
		if err != nil {
			t.Fatal(err)
		}
		nw.reps[id] = rep
	}
	return nw
}

func (nw *gnet) pump() {
	for _, rep := range nw.reps {
		for _, e := range rep.TakeOutbox() {
			nw.pool = append(nw.pool, genv{from: rep.ID(), to: e.To, payload: e.Payload})
		}
	}
}

func (nw *gnet) drain() {
	for len(nw.pool) > 0 {
		e := nw.pool[0]
		nw.pool = nw.pool[1:]
		nw.reps[e.to].Deliver(e.from, e.payload)
		nw.pump()
	}
}

func TestSingleProposerLearns(t *testing.T) {
	var learned []CmdSet
	nw := newGNet(t, 3, map[transport.NodeID]LearnedFn{
		"n1": func(v CmdSet, seq uint64) { learned = append(learned, v) },
	})
	nw.reps["n1"].ReceiveValue("a")
	nw.pump()
	nw.drain()
	if len(learned) != 1 {
		t.Fatalf("learned %d values, want 1", len(learned))
	}
	if !learned[0].Includes(NewCmdSet("a")) {
		t.Fatalf("learned %v, want {a}", learned[0].Elements())
	}
}

func TestConcurrentProposersConverge(t *testing.T) {
	learned := map[transport.NodeID][]CmdSet{}
	fns := map[transport.NodeID]LearnedFn{}
	for _, id := range []transport.NodeID{"n1", "n2", "n3"} {
		id := id
		fns[id] = func(v CmdSet, seq uint64) { learned[id] = append(learned[id], v) }
	}
	nw := newGNet(t, 3, fns)
	nw.reps["n1"].ReceiveValue("a")
	nw.reps["n2"].ReceiveValue("b")
	nw.reps["n3"].ReceiveValue("c")
	nw.pump()
	nw.drain()

	// Every learned value pair must be comparable (lattice agreement).
	var all []CmdSet
	for _, vs := range learned {
		all = append(all, vs...)
	}
	if len(all) < 3 {
		t.Fatalf("only %d values learned", len(all))
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !all[i].Includes(all[j]) && !all[j].Includes(all[i]) {
				t.Fatalf("incomparable learned values: %v vs %v", all[i].Elements(), all[j].Elements())
			}
		}
	}
}

func TestMessageSizesGrowWithCommands(t *testing.T) {
	// The ablation's core observation: GLA coordination bytes grow with
	// the command history, CRDT Paxos's do not.
	nw := newGNet(t, 3, map[transport.NodeID]LearnedFn{})
	rep := nw.reps["n1"]
	var sizes []uint64
	prev := uint64(0)
	for i := 0; i < 50; i++ {
		rep.ReceiveValue(fmt.Sprintf("cmd-%04d", i))
		nw.pump()
		nw.drain()
		sizes = append(sizes, rep.BytesSent-prev)
		prev = rep.BytesSent
	}
	if sizes[len(sizes)-1] <= sizes[0]*2 {
		t.Fatalf("expected message growth, got first=%d last=%d", sizes[0], sizes[len(sizes)-1])
	}
}

func TestCmdSetOps(t *testing.T) {
	a := NewCmdSet("x", "y")
	b := NewCmdSet("y", "z")
	u := a.Union(b)
	if len(u) != 3 || !u.Includes(a) || !u.Includes(b) {
		t.Fatalf("union = %v", u.Elements())
	}
	if a.Includes(b) || b.Includes(a) {
		t.Fatal("incomparable sets reported comparable")
	}
	if got := u.Elements(); got[0] != "x" || got[2] != "z" {
		t.Fatalf("elements = %v", got)
	}
}

func TestCodec(t *testing.T) {
	in := &message{Type: mPropose, Seq: 9, Val: NewCmdSet("a", "b")}
	out, err := decodeMessage(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 9 || !out.Val.Includes(in.Val) {
		t.Fatalf("round trip mangled: %+v", out)
	}
	if _, err := decodeMessage(nil); err == nil {
		t.Fatal("nil decoded")
	}
}

func TestReplicaValidation(t *testing.T) {
	if _, err := NewReplica("zz", []transport.NodeID{"a"}, nil); err == nil {
		t.Fatal("id outside members accepted")
	}
}

func TestDuplicateAckDoesNotFakeQuorum(t *testing.T) {
	members := []transport.NodeID{"n1", "n2", "n3", "n4", "n5"}
	learned := 0
	rep, err := NewReplica("n1", members, func(CmdSet, uint64) { learned++ })
	if err != nil {
		t.Fatal(err)
	}
	rep.ReceiveValue("a")
	rep.TakeOutbox()
	ack := (&message{Type: mAcceptAck, Seq: 1}).encode()
	rep.Deliver("n2", ack)
	rep.Deliver("n2", ack) // duplicated reply must not count twice
	if !rep.InFlight() || learned != 0 {
		t.Fatal("duplicated ack faked a quorum (2 of 5 distinct acceptors)")
	}
	rep.Deliver("n3", ack) // self + n2 + n3 = quorum of 3
	if rep.InFlight() || learned != 1 {
		t.Fatalf("distinct quorum did not learn: inflight=%v learned=%d", rep.InFlight(), learned)
	}
}

// TestSubsetProposalIsRejected pins the acceptor rule to "ack iff proposal
// includes accepted". Acking the subset direction is unsafe: under message
// duplication a NACKed proposal gets re-delivered after the NACK union made
// it a subset, acks, and an incomparable value can reach quorum.
func TestSubsetProposalIsRejected(t *testing.T) {
	members := []transport.NodeID{"n1", "n2", "n3"}
	rep, err := NewReplica("n1", members, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep.Deliver("n2", (&message{Type: mPropose, Seq: 1, Val: NewCmdSet("x", "y")}).encode())
	out := rep.TakeOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox = %d messages", len(out))
	}
	if m, _ := decodeMessage(out[0].Payload); m.Type != mAcceptAck {
		t.Fatalf("superset proposal answered %d, want ack", m.Type)
	}
	rep.Deliver("n3", (&message{Type: mPropose, Seq: 1, Val: NewCmdSet("x")}).encode())
	out = rep.TakeOutbox()
	m, _ := decodeMessage(out[0].Payload)
	if m.Type != mRejectNack {
		t.Fatal("strict subset proposal was acked")
	}
	if !m.Val.Includes(NewCmdSet("x", "y")) {
		t.Fatalf("nack carried %v, want the full accepted value", m.Val.Elements())
	}
}

// glaFabric wires n replicas into a transport.Fabric, flushing outboxes
// after every injection and delivery.
type glaFabric struct {
	fab   *transport.Fabric
	ids   []transport.NodeID
	reps  map[transport.NodeID]*Replica
	conns map[transport.NodeID]*transport.FabricConn
}

func newGLAFabric(t *testing.T, n int, seed int64, onLearn func(transport.NodeID, CmdSet)) *glaFabric {
	t.Helper()
	g := &glaFabric{
		fab:   transport.NewFabric(seed),
		reps:  make(map[transport.NodeID]*Replica),
		conns: make(map[transport.NodeID]*transport.FabricConn),
	}
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	g.ids = members
	for _, id := range members {
		id := id
		var fn LearnedFn
		if onLearn != nil {
			fn = func(v CmdSet, _ uint64) { onLearn(id, v) }
		}
		rep, err := NewReplica(id, members, fn)
		if err != nil {
			t.Fatal(err)
		}
		g.reps[id] = rep
		g.conns[id] = g.fab.Join(id, func(from transport.NodeID, p []byte) {
			g.reps[id].Deliver(from, p)
			g.flush(id)
		})
	}
	return g
}

func (g *glaFabric) flush(id transport.NodeID) {
	for _, e := range g.reps[id].TakeOutbox() {
		g.conns[id].Send(e.To, e.Payload)
	}
}

func (g *glaFabric) flushAll() {
	for _, id := range g.ids {
		g.flush(id)
	}
}

// retransmitDrain alternates fabric steps with retransmissions until no
// replica has a proposal in flight.
func (g *glaFabric) retransmitDrain(t *testing.T, bound int) {
	t.Helper()
	for i := 0; i < bound; i++ {
		if g.fab.Step() {
			continue
		}
		active := false
		for _, id := range g.ids {
			if g.reps[id].InFlight() {
				g.reps[id].Retransmit()
				g.flush(id)
				active = true
			}
		}
		if !active {
			return
		}
	}
	t.Fatal("replicas still in flight after drain bound")
}

func TestRetransmitRecoversFromTotalLoss(t *testing.T) {
	learned := 0
	g := newGLAFabric(t, 3, 5, func(id transport.NodeID, v CmdSet) {
		if id == "n1" && v.Includes(NewCmdSet("a")) {
			learned++
		}
	})
	g.fab.SetLoss(1.0)
	g.reps["n1"].ReceiveValue("a")
	g.flushAll()
	g.fab.Drain(100)
	if learned != 0 {
		t.Fatal("learned through a fully lossy network")
	}
	g.fab.SetLoss(0)
	g.reps["n1"].Retransmit()
	g.flushAll()
	g.fab.Drain(100)
	if learned == 0 {
		t.Fatal("retransmission did not recover the lost proposal")
	}
}

// TestLatticeAgreementUnderLossAndDuplication is the safety property test:
// across seeds, with 20% loss and 20% duplication, every pair of learned
// values must be comparable and every proposer must learn all its own
// commands.
func TestLatticeAgreementUnderLossAndDuplication(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		var all []CmdSet
		byNode := map[transport.NodeID]CmdSet{}
		g := newGLAFabric(t, 3, seed, func(id transport.NodeID, v CmdSet) {
			all = append(all, v)
			byNode[id] = v // learned values at one node form a chain; keep the latest
		})
		g.fab.SetLoss(0.2)
		g.fab.SetDuplication(0.2)
		want := map[transport.NodeID]CmdSet{}
		for i, id := range g.ids {
			cmds := NewCmdSet(
				fmt.Sprintf("cmd-%d-0", i),
				fmt.Sprintf("cmd-%d-1", i),
			)
			want[id] = cmds
			for _, c := range cmds.Elements() {
				g.reps[id].ReceiveValue(c)
			}
			g.flush(id)
		}
		g.retransmitDrain(t, 100000)
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if !all[i].Includes(all[j]) && !all[j].Includes(all[i]) {
					t.Fatalf("seed %d: incomparable learned values %v vs %v",
						seed, all[i].Elements(), all[j].Elements())
				}
			}
		}
		for id, cmds := range want {
			if !byNode[id].Includes(cmds) {
				t.Fatalf("seed %d: %s never learned its own commands %v (last learned %v)",
					seed, id, cmds.Elements(), byNode[id].Elements())
			}
		}
	}
}
