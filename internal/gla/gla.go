package gla

import (
	"fmt"
	"sort"

	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// CmdSet is the join semilattice of proposals: a set of opaque commands
// under union.
type CmdSet map[string]struct{}

// NewCmdSet builds a set from commands.
func NewCmdSet(cmds ...string) CmdSet {
	s := make(CmdSet, len(cmds))
	for _, c := range cmds {
		s[c] = struct{}{}
	}
	return s
}

// Union returns s ∪ o.
func (s CmdSet) Union(o CmdSet) CmdSet {
	out := make(CmdSet, len(s)+len(o))
	for c := range s {
		out[c] = struct{}{}
	}
	for c := range o {
		out[c] = struct{}{}
	}
	return out
}

// Includes reports o ⊆ s.
func (s CmdSet) Includes(o CmdSet) bool {
	for c := range o {
		if _, ok := s[c]; !ok {
			return false
		}
	}
	return true
}

// Elements returns the commands in sorted order.
func (s CmdSet) Elements() []string {
	out := make([]string, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (s CmdSet) encode(w *wire.Writer) {
	els := s.Elements()
	w.Uvarint(uint64(len(els)))
	for _, e := range els {
		w.Str(e)
	}
}

func decodeCmdSet(r *wire.Reader) CmdSet {
	n := r.Uvarint()
	if n > 1<<24 {
		return nil
	}
	out := make(CmdSet, n)
	for i := uint64(0); i < n; i++ {
		out[r.Str()] = struct{}{}
	}
	return out
}

type msgType uint8

const (
	mPropose msgType = iota + 1
	mAcceptAck
	mRejectNack
)

type message struct {
	Type msgType
	Seq  uint64
	Val  CmdSet
}

func (m *message) encode() []byte {
	w := wire.NewWriter(32 + 16*len(m.Val))
	w.Byte(byte(m.Type))
	w.Uvarint(m.Seq)
	m.Val.encode(w)
	return w.Bytes()
}

func decodeMessage(p []byte) (*message, error) {
	r := wire.NewReader(p)
	m := &message{Type: msgType(r.Byte()), Seq: r.Uvarint(), Val: decodeCmdSet(r)}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("gla: decode: %w", err)
	}
	if m.Type < mPropose || m.Type > mRejectNack {
		return nil, fmt.Errorf("gla: unknown type %d", m.Type)
	}
	return m, nil
}

// Envelope is an outbound message.
type Envelope struct {
	To      transport.NodeID
	Payload []byte
}

// LearnedFn receives each newly learned value at a proposer.
type LearnedFn func(val CmdSet, seq uint64)

// Replica is a GLA participant (proposer + acceptor), single-threaded like
// the other protocol state machines in this repository.
type Replica struct {
	id     transport.NodeID
	peers  []transport.NodeID
	quorum int

	// Acceptor state: the accepted value only ever grows.
	accepted CmdSet

	// Proposer state. The proposal is immutable for the lifetime of its
	// seq: refinement mints a new seq with a fresh ack set, so an ack can
	// only ever count toward the exact value the acceptor saw. Ack and
	// reject sets are keyed by node, making duplicated replies idempotent.
	active   bool
	seq      uint64
	proposal CmdSet
	buffered CmdSet
	acks     map[transport.NodeID]bool
	rejects  map[transport.NodeID]bool
	onLearn  LearnedFn

	outbox []Envelope

	// BytesSent tracks cumulative outbound payload bytes, the quantity the
	// message-growth ablation measures.
	BytesSent uint64
}

// NewReplica creates a GLA participant. members must include id.
func NewReplica(id transport.NodeID, members []transport.NodeID, onLearn LearnedFn) (*Replica, error) {
	peers := make([]transport.NodeID, 0, len(members)-1)
	self := false
	for _, m := range members {
		if m == id {
			self = true
			continue
		}
		peers = append(peers, m)
	}
	if !self {
		return nil, fmt.Errorf("gla: %s not in member list %v", id, members)
	}
	return &Replica{
		id:       id,
		peers:    peers,
		quorum:   len(members)/2 + 1,
		accepted: NewCmdSet(),
		buffered: NewCmdSet(),
		onLearn:  onLearn,
	}, nil
}

// ID returns the replica ID.
func (r *Replica) ID() transport.NodeID { return r.id }

// Accepted returns the acceptor's current value (its size mirrors the
// unbounded state the paper's protocol avoids).
func (r *Replica) Accepted() CmdSet { return r.accepted }

// TakeOutbox returns and clears pending outbound messages.
func (r *Replica) TakeOutbox() []Envelope {
	out := r.outbox
	r.outbox = nil
	return out
}

func (r *Replica) send(to transport.NodeID, m *message) {
	p := m.encode()
	r.BytesSent += uint64(len(p))
	r.outbox = append(r.outbox, Envelope{To: to, Payload: p})
}

// ReceiveValue submits a command into the lattice (the GLA equivalent of
// an update; the learned value is the protocol's read result).
func (r *Replica) ReceiveValue(cmd string) {
	r.buffered = r.buffered.Union(NewCmdSet(cmd))
	if !r.active {
		r.startProposal()
	}
}

func (r *Replica) startProposal() {
	if len(r.buffered) == 0 {
		return
	}
	r.active = true
	r.propose(r.proposal.Union(r.buffered))
}

// propose broadcasts val ∪ accepted under a fresh seq and self-accepts it.
// Folding in the replica's own accepted value is load-bearing: as an
// acceptor it may have acked a larger value since the last broadcast, and
// the acceptor state must never shrink below a value it acked — otherwise
// a later ack would not subsume it and two incomparable values could both
// be learned.
func (r *Replica) propose(val CmdSet) {
	r.seq++
	r.proposal = val.Union(r.accepted)
	r.buffered = NewCmdSet()
	r.accepted = r.proposal
	r.acks = map[transport.NodeID]bool{r.id: true}
	r.rejects = make(map[transport.NodeID]bool)
	for _, p := range r.peers {
		r.send(p, &message{Type: mPropose, Seq: r.seq, Val: r.proposal})
	}
	r.maybeDecide()
}

// Retransmit rebroadcasts the active proposal to peers that have not
// answered its seq, recovering from lost proposals or replies. Acceptors
// whose value has since grown past the proposal answer NACK, which routes
// into the normal refinement path.
func (r *Replica) Retransmit() {
	if !r.active {
		return
	}
	for _, p := range r.peers {
		if !r.acks[p] && !r.rejects[p] {
			r.send(p, &message{Type: mPropose, Seq: r.seq, Val: r.proposal})
		}
	}
}

// InFlight reports whether a proposal is awaiting a decision.
func (r *Replica) InFlight() bool { return r.active }

// Deliver processes one inbound message.
func (r *Replica) Deliver(from transport.NodeID, payload []byte) {
	m, err := decodeMessage(payload)
	if err != nil {
		return
	}
	switch m.Type {
	case mPropose:
		// Accept only a proposal that subsumes the accepted value. The
		// subset direction must NOT be accepted: the learned-value chain
		// proof needs "ack ⇒ proposal ⊇ accepted at ack time", so that a
		// later ack from the same acceptor implies the later proposal
		// includes every previously acked one. (Accepting subsets breaks
		// under duplication: a re-delivered proposal that NACKed first
		// would ack once the union catches up, and two incomparable values
		// could both reach quorum.)
		if m.Val.Includes(r.accepted) {
			r.accepted = m.Val
			r.send(from, &message{Type: mAcceptAck, Seq: m.Seq})
		} else {
			r.accepted = r.accepted.Union(m.Val)
			r.send(from, &message{Type: mRejectNack, Seq: m.Seq, Val: r.accepted})
		}
	case mAcceptAck:
		if !r.active || m.Seq != r.seq || r.acks[from] {
			return
		}
		r.acks[from] = true
		r.maybeDecide()
	case mRejectNack:
		if !r.active || m.Seq != r.seq {
			return
		}
		// Refine immediately: fold the acceptor's value into the next
		// proposal and rebroadcast under a new seq. Stale acks for the old
		// seq are ignored; the refined proposal strictly grows, so the
		// lattice height (≤ distinct commands) bounds the number of
		// refinements.
		r.propose(r.proposal.Union(m.Val).Union(r.buffered))
	}
}

func (r *Replica) maybeDecide() {
	if !r.active || len(r.acks) < r.quorum {
		return
	}
	learned := r.proposal
	seq := r.seq
	r.active = false
	if r.onLearn != nil {
		r.onLearn(learned, seq)
	}
	r.startProposal() // propose buffered commands, if any
}
