// Package gla implements the generalized lattice agreement protocol of
// Faleiro, Rajamani, Rajan, Ramalingam, Vaswani (PODC 2012) — the wait-free
// comparator the paper discusses but could not benchmark, because its
// messages carry "an ever-increasing set of proposed values" with no
// published truncation mechanism (§4). We implement it to reproduce that
// message-growth argument quantitatively (the ablation benchmark compares
// its payload sizes against CRDT Paxos's constant-size coordination
// overhead).
//
// Values are sets of commands. Each proposer maintains a current proposal
// (a command set); acceptors accept a proposal iff it includes their
// current accepted set, otherwise they reject and return the union. A
// proposer refines its proposal with every rejection and retries; after at
// most N rejections the proposal is accepted by a quorum and its value is
// learned (wait-free, O(N) message delays).
package gla
