package persist

import (
	"bytes"
	"testing"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
)

// FuzzDecodeRecord feeds arbitrary bytes to the snapshot decoder — the
// same pattern as the wire package's FuzzDecodeStateFrame: decoding must
// never panic, and every input it accepts must survive a deterministic
// re-encode round trip. Seeds cover valid records of several payload
// types plus classic mutations (truncation, bit flips); the committed
// corpus under testdata/fuzz extends them.
func FuzzDecodeRecord(f *testing.F) {
	seeds := []Record{
		mustRecord(f, "views", crdt.NewGCounter().Inc("n1", 7)),
		mustRecord(f, "or-set/sessions", crdt.NewORSet().Add("alice", "n2", 4)),
		mustRecord(f, "", crdt.NewLWWRegister().Set("v", 9, "n3")),
	}
	for _, rec := range seeds {
		rec.Round = core.Round{Number: 3, ID: core.RoundID{Proposer: "n1", Seq: 2}}
		rec.NextReq, rec.NextSeq = 5, 6
		raw := EncodeRecord(rec)
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return // corrupt input must be rejected, not crash
		}
		raw := EncodeRecord(rec)
		back, err := DecodeRecord(raw)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if back.Key != rec.Key || back.Round != rec.Round ||
			back.NextReq != rec.NextReq || back.NextSeq != rec.NextSeq ||
			!bytes.Equal(back.State, rec.State) || !bytes.Equal(back.Learned, rec.Learned) {
			t.Fatalf("record did not round-trip: %+v vs %+v", back, rec)
		}
	})
}

func mustRecord(f *testing.F, key string, s crdt.State) Record {
	rec, err := FromSnapshot(key, core.Snapshot{State: s})
	if err != nil {
		f.Fatal(err)
	}
	return rec
}
