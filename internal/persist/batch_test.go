package persist

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
)

func batchRecord(t *testing.T, key string, val uint64) Record {
	t.Helper()
	rec, err := FromSnapshot(key, core.Snapshot{
		State:   crdt.NewGCounter().Inc("n1", val),
		NextReq: val,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSaveBatchRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 6; i++ {
		recs = append(recs, batchRecord(t, fmt.Sprintf("key/%d", i), uint64(i+1)))
	}
	if err := st.SaveBatch(recs); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := st.LoadAll(RecoverStrict)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(got) != len(recs) {
		t.Fatalf("loaded %d (skipped %d), want %d", len(got), skipped, len(recs))
	}
	for i, ks := range got {
		if v := ks.Snap.State.(*crdt.GCounter).Value(); v != uint64(i+1) {
			t.Fatalf("key %q = %d, want %d", ks.Key, v, i+1)
		}
	}
	if err := st.SaveBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestSaveBatchOverwritesAndLastWins: batches replace prior snapshots
// atomically, and a (caller-error) duplicate key inside one batch
// resolves to the later record, matching rename order.
func TestSaveBatchOverwritesAndLastWins(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBatch([]Record{batchRecord(t, "k", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBatch([]Record{batchRecord(t, "k", 2), batchRecord(t, "k", 7)}); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.LoadAll(RecoverStrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Snap.State.(*crdt.GCounter).Value() != 7 {
		t.Fatalf("after duplicate-key batch: %+v", got)
	}
}

// TestSaveBatchTornByHookChangesNothing: a hook failure between
// temp-write and rename (the modeled crash point) must leave every
// committed snapshot byte-identical and no batch file visible — and the
// temp files must not survive a reopen.
func TestSaveBatchTornByHookChangesNothing(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	var sawKeys []string
	st, err := Open(dir, Options{
		BeforeBatchRename: func(keys []string) error {
			sawKeys = append([]string(nil), keys...)
			return boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A committed value for k0 predates the torn batch.
	if err := st.Save(batchRecord(t, "k0", 42)); err != nil {
		t.Fatal(err)
	}
	err = st.SaveBatch([]Record{batchRecord(t, "k0", 43), batchRecord(t, "k1", 9)})
	if !errors.Is(err, boom) {
		t.Fatalf("torn batch err = %v, want the hook's error", err)
	}
	if len(sawKeys) != 2 {
		t.Fatalf("hook saw keys %v, want both batch keys", sawKeys)
	}
	got, _, err := st.LoadAll(RecoverStrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "k0" || got[0].Snap.State.(*crdt.GCounter).Value() != 42 {
		t.Fatalf("after torn batch: %+v (want only k0=42)", got)
	}
	// The tear already removed its temps; even if a real crash had left
	// them, reopening sweeps them.
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file %q survived the torn batch + reopen", e.Name())
		}
	}
}

// TestSaveBatchChargesWriteDelayOnce is the group-commit accounting
// test: N records in one batch pay the emulated device flush once,
// where N serial Saves pay it N times. The margins are wide (4× under
// the serial floor) so scheduler noise cannot flake it.
func TestSaveBatchChargesWriteDelayOnce(t *testing.T) {
	const delay = 20 * time.Millisecond
	const n = 8
	st, err := Open(t.TempDir(), Options{WriteDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < n; i++ {
		recs = append(recs, batchRecord(t, fmt.Sprintf("k/%d", i), 1))
	}
	start := time.Now()
	if err := st.SaveBatch(recs); err != nil {
		t.Fatal(err)
	}
	batchTime := time.Since(start)

	start = time.Now()
	for _, rec := range recs {
		if err := st.Save(rec); err != nil {
			t.Fatal(err)
		}
	}
	serialTime := time.Since(start)

	if serialTime < n*delay {
		t.Fatalf("serial saves took %v, must pay ≥ %v (one delay per save)", serialTime, n*delay)
	}
	if batchTime >= serialTime/4 {
		t.Fatalf("batch took %v vs serial %v; the batch must charge the delay once", batchTime, serialTime)
	}
}
