package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// ErrCorrupt matches every snapshot the decoder rejects: truncated,
// checksum-mismatched, wrong magic, unknown version, or structurally
// malformed. Callers decide policy (fail startup, or skip under
// RecoverIgnoreCorrupt); the sentinel is the typed boundary they key on.
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// File format constants (docs/PROTOCOL.md §4).
const (
	// magic opens every snapshot file. A file that does not start with it
	// was never a snapshot; one that does but fails the checksum was.
	magic = "CRSNAP"
	// version is the current snapshot format version. Decoders reject
	// unknown versions: the format carries consensus metadata, and
	// guessing at it would be a safety bug, not a compatibility feature.
	// Version 2 added the membership configuration section; version-1
	// files (fixed membership, epoch 0) are still accepted.
	version = 2
	// versionNoConfig is the pre-reconfiguration format: identical except
	// that no config section follows nextSeq.
	versionNoConfig = 1
	// suffix names snapshot files; everything else in the directory
	// (including temp files from interrupted saves) is ignored on load.
	suffix = ".snap"
)

// Record is one key's decoded snapshot: the object key plus the replica's
// durable state with the payload and learned states still in their
// marshaled form, so the byte-level codec stays independent of the CRDT
// registry (the fuzz target exercises it on arbitrary bytes).
type Record struct {
	Key     string
	Round   core.Round
	NextReq uint64
	NextSeq uint64
	Epoch   uint64   // membership config epoch (zero for v1 files)
	Source  string   // proposer that minted the config
	Members []string // the config's member set (nil for v1 files)
	State   []byte   // crdt.Marshal encoding of the acceptor payload
	Learned []byte   // nil when equivalent to State (the common case)
}

// EncodeRecord serializes a record:
//
//	magic "CRSNAP" | version u8 | key str | round (number varint,
//	proposer str, seq uvarint) | nextReq uvarint | nextSeq uvarint |
//	configFrame | payload stateFrame | learned stateFrame | sha256[32]
//
// The config frame (internal/wire/config.go) carries the membership
// configuration the replica had adopted; version-1 files predate it and
// decode with a zero config. The two state frames reuse the replica
// wire's state-frame codec (internal/wire/state.go): the payload is a
// full frame, the learned state a none frame when it equals the payload.
// The trailing SHA-256 covers every preceding byte.
func EncodeRecord(rec Record) []byte {
	w := wire.NewWriter(len(rec.State) + len(rec.Learned) + len(rec.Key) + 64)
	w.Fixed([]byte(magic))
	w.Byte(version)
	w.Str(rec.Key)
	w.Varint(rec.Round.Number)
	w.Str(string(rec.Round.ID.Proposer))
	w.Uvarint(rec.Round.ID.Seq)
	w.Uvarint(rec.NextReq)
	w.Uvarint(rec.NextSeq)
	wire.ConfigFrame{Epoch: rec.Epoch, Source: rec.Source, Members: rec.Members}.Append(w)
	wire.StateFrame{Kind: wire.StateFull, State: rec.State}.Append(w)
	learned := wire.StateFrame{Kind: wire.StateNone}
	if rec.Learned != nil {
		learned = wire.StateFrame{Kind: wire.StateFull, State: rec.Learned}
	}
	learned.Append(w)
	sum := sha256.Sum256(w.Bytes())
	w.Fixed(sum[:])
	return w.Bytes()
}

// corruptf wraps a decode failure so errors.Is(err, ErrCorrupt) holds.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// DecodeRecord parses and verifies a snapshot file's contents. Every
// rejection matches ErrCorrupt. The checksum is verified before any
// structure is parsed, so a flipped bit anywhere in the file is caught
// even when it would still decode.
func DecodeRecord(p []byte) (Record, error) {
	if len(p) < len(magic)+1+sha256.Size {
		return Record{}, corruptf("%d bytes is shorter than the fixed header and trailer", len(p))
	}
	body, trailer := p[:len(p)-sha256.Size], p[len(p)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return Record{}, corruptf("checksum mismatch")
	}
	if string(body[:len(magic)]) != magic {
		return Record{}, corruptf("bad magic %q", body[:len(magic)])
	}
	v := body[len(magic)]
	if v != version && v != versionNoConfig {
		return Record{}, corruptf("unsupported snapshot version %d (want %d or %d)", v, versionNoConfig, version)
	}
	r := wire.NewReader(body[len(magic)+1:])
	rec := Record{Key: r.Str()}
	rec.Round.Number = r.Varint()
	rec.Round.ID.Proposer = transport.NodeID(r.Str())
	rec.Round.ID.Seq = r.Uvarint()
	rec.NextReq = r.Uvarint()
	rec.NextSeq = r.Uvarint()
	if v >= version {
		cf := wire.ReadConfigFrame(r)
		rec.Epoch, rec.Source, rec.Members = cf.Epoch, cf.Source, cf.Members
	}
	payload := wire.ReadStateFrame(r)
	learned := wire.ReadStateFrame(r)
	if err := r.Done(); err != nil {
		return Record{}, corruptf("%v", err)
	}
	if payload.Kind != wire.StateFull {
		return Record{}, corruptf("payload frame kind %v, want full", payload.Kind)
	}
	rec.State = payload.State
	switch learned.Kind {
	case wire.StateNone:
	case wire.StateFull:
		rec.Learned = learned.State
	default:
		return Record{}, corruptf("learned frame kind %v, want none or full", learned.Kind)
	}
	return rec, nil
}

// FromSnapshot converts a replica's in-memory snapshot into a record,
// marshaling the states. The learned state is stored only when it differs
// from the payload (deterministic marshal makes the byte comparison an
// exact equivalence check).
func FromSnapshot(key string, snap core.Snapshot) (Record, error) {
	raw, err := crdt.Marshal(snap.State)
	if err != nil {
		return Record{}, fmt.Errorf("persist: marshal payload of %q: %w", key, err)
	}
	rec := Record{
		Key:     key,
		Round:   snap.Round,
		NextReq: snap.NextReq,
		NextSeq: snap.NextSeq,
		Epoch:   snap.Config.Epoch,
		Source:  string(snap.Config.Source),
		State:   raw,
	}
	if len(snap.Config.Members) > 0 {
		rec.Members = make([]string, len(snap.Config.Members))
		for i, m := range snap.Config.Members {
			rec.Members[i] = string(m)
		}
	}
	if snap.Learned != nil && snap.Learned != snap.State {
		lraw, err := crdt.Marshal(snap.Learned)
		if err != nil {
			return Record{}, fmt.Errorf("persist: marshal learned state of %q: %w", key, err)
		}
		if !bytes.Equal(raw, lraw) {
			rec.Learned = lraw
		}
	}
	return rec, nil
}

// Snapshot decodes the record's marshaled states into a core.Snapshot.
// The payload types must be registered in the CRDT registry; a snapshot
// of an unregistered or undecodable type is reported as corrupt (the
// caller cannot distinguish bit rot from a registry mismatch, and both
// mean this file cannot rehydrate a replica).
func (rec Record) Snapshot() (core.Snapshot, error) {
	state, err := crdt.Unmarshal(rec.State)
	if err != nil {
		return core.Snapshot{}, corruptf("payload of %q: %v", rec.Key, err)
	}
	snap := core.Snapshot{
		Round:   rec.Round,
		State:   state,
		NextReq: rec.NextReq,
		NextSeq: rec.NextSeq,
		Config:  core.Config{Epoch: rec.Epoch, Source: transport.NodeID(rec.Source)},
	}
	if len(rec.Members) > 0 {
		snap.Config.Members = make([]transport.NodeID, len(rec.Members))
		for i, m := range rec.Members {
			snap.Config.Members[i] = transport.NodeID(m)
		}
	}
	if rec.Learned != nil {
		learned, err := crdt.Unmarshal(rec.Learned)
		if err != nil {
			return core.Snapshot{}, corruptf("learned state of %q: %v", rec.Key, err)
		}
		snap.Learned = learned
	}
	return snap, nil
}

// SyncPolicy selects how hard Save pushes bytes toward the platter.
type SyncPolicy uint8

const (
	// SyncNone (the default) relies on the atomic rename alone: a crashed
	// or killed process always leaves a complete old or new snapshot, but
	// a power loss may roll back to an older one. This is the paper's
	// crash-recovery model and what the tests exercise.
	SyncNone SyncPolicy = iota
	// SyncAlways additionally fsyncs the snapshot file and its directory
	// on every save, surviving power loss at the cost of one or two disk
	// flushes per durable transition. With an emulated device
	// (Options.WriteDelay > 0) the deterministic emulated flush stands in
	// for the physical barriers — see Options.WriteDelay.
	SyncAlways
)

// RecoverPolicy selects what loading does with a corrupt snapshot file.
type RecoverPolicy uint8

const (
	// RecoverStrict (the default) fails the load: a replica must not
	// silently come up with less state than it promised a quorum it had.
	RecoverStrict RecoverPolicy = iota
	// RecoverIgnoreCorrupt skips corrupt files, so the affected keys start
	// fresh and re-learn their state from the cluster. Only safe when a
	// quorum of other replicas is intact — which is why it is an explicit
	// operator decision (-recover=ignore-corrupt), never a default.
	RecoverIgnoreCorrupt
)

// ParseRecoverPolicy parses the -recover flag values.
func ParseRecoverPolicy(s string) (RecoverPolicy, error) {
	switch s {
	case "strict":
		return RecoverStrict, nil
	case "ignore-corrupt":
		return RecoverIgnoreCorrupt, nil
	default:
		return RecoverStrict, fmt.Errorf("persist: unknown recover policy %q (want strict or ignore-corrupt)", s)
	}
}

// Options configure a Store.
type Options struct {
	Sync SyncPolicy
	// WriteDelay, when positive, emulates device flush latency: Save
	// sleeps it once per call and SaveBatch once per batch, at the point
	// where a real device would serve the flush. Benchmarks and tests use
	// it to make the group-commit advantage measurable independently of
	// the host's actual disk (and CPU count): N keys saved one batch pay
	// the delay once, saved serially they pay it N times.
	//
	// When WriteDelay is set alongside SyncAlways, the emulated flush
	// STANDS IN for the physical barriers — no fsync syscalls are issued.
	// This is the same substitution the transport makes for the network
	// (an emulated delay instead of a real NIC): the durability pipeline
	// keeps its exact structure and ordering, but the flush cost becomes
	// deterministic instead of whatever the host filesystem's journal
	// happens to serialize to under contention. Production stores leave
	// WriteDelay zero and get real fsyncs.
	WriteDelay time.Duration
	// BeforeBatchRename, when set, runs after a SaveBatch's temp files
	// are all written (and synced, under SyncAlways) but before any of
	// them is renamed into place — the injection point for modeling a
	// crash that tears a whole group-commit batch. An error fails the
	// batch: the temps are removed and no key's snapshot changes.
	BeforeBatchRename func(keys []string) error
}

// Store manages one replica's snapshot directory: one file per object
// key, each rewritten atomically. Save and SaveBatch are safe for
// concurrent use by writers of DISJOINT key sets (each shard's persister
// owns its shard's keys): temp files are unique per call and renames
// target distinct paths. Two concurrent writers of the same key, or a
// LoadAll concurrent with any writer, are not coordinated — callers
// quiesce writers before loading (cluster.Node.Restart does).
type Store struct {
	dir  string
	opts Options

	// beforeRename, when set by tests, runs after the temp file is fully
	// written but before the atomic rename — the injection point for
	// modeling a filesystem failure mid-save (torn-write safety test).
	beforeRename func(tmp string) error
}

// Open creates (if needed) and opens a snapshot directory. Temp files
// left behind by interrupted saves are removed; committed snapshots are
// never touched.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty snapshot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the snapshot directory.
func (s *Store) Dir() string { return s.dir }

const tmpPrefix = ".tmp-"

// maxHexName bounds the hex-encoded form of a key in a filename. Longer
// keys switch to a hashed name so no key length can exceed NAME_MAX; the
// true key always lives inside the file, the name only needs to be
// deterministic and collision-free.
const maxHexName = 128

// Path returns the snapshot file path for an object key. Short keys are
// hex encoded ("k<hex>.snap") so arbitrary key strings (path separators,
// empty, unicode) map to flat, unambiguous, still-greppable file names;
// keys whose hex form would overflow typical filename limits use the
// SHA-256 of the key instead ("h<hash>.snap").
func (s *Store) Path(key string) string {
	name := hex.EncodeToString([]byte(key))
	if len(name) > maxHexName {
		sum := sha256.Sum256([]byte(key))
		return filepath.Join(s.dir, "h"+hex.EncodeToString(sum[:])+suffix)
	}
	return filepath.Join(s.dir, "k"+name+suffix)
}

// Save atomically replaces the key's snapshot file: encode, write to a
// temp file in the same directory, then rename over the old file. A crash
// anywhere in between leaves the previous snapshot intact — the torn
// write lands in the temp file, which Open sweeps away.
func (s *Store) Save(rec Record) error {
	data := EncodeRecord(rec)
	f, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return fmt.Errorf("persist: save %q: %w", rec.Key, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("persist: save %q: %w", rec.Key, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if s.realSync() {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if s.beforeRename != nil {
		if err := s.beforeRename(tmp); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	s.emulateFlush()
	if err := os.Rename(tmp, s.Path(rec.Key)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("persist: save %q: %w", rec.Key, err)
	}
	if s.realSync() {
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("persist: save %q: %w", rec.Key, err)
		}
	}
	return nil
}

// emulateFlush charges Options.WriteDelay, the emulated device flush.
func (s *Store) emulateFlush() {
	if s.opts.WriteDelay > 0 {
		time.Sleep(s.opts.WriteDelay)
	}
}

// realSync reports whether saves issue physical fsync barriers: yes
// under SyncAlways with a real device, no when an emulated device
// (WriteDelay > 0) substitutes its deterministic flush.
func (s *Store) realSync() bool {
	return s.opts.Sync == SyncAlways && s.opts.WriteDelay == 0
}

// SaveBatch atomically replaces many keys' snapshot files as one group
// commit, paying the expensive per-commit costs roughly once for the
// whole batch: every record is written to its own temp file, the temps
// are fsynced concurrently under SyncAlways (the kernel overlaps the
// device barriers, so the batch waits about one flush, not N), then
// every temp is renamed into place and ONE directory sync covers all
// the renames — versus one serial fsync plus one directory sync per key
// with serial Saves. The emulated flush (Options.WriteDelay) is
// likewise charged once per batch.
//
// Failure granularity is the whole batch: on any error every temp file
// is removed and no key's committed snapshot changes (renames only start
// after every write succeeded, and a rename failure aborts before the
// directory sync that would publish the batch across a power loss), so
// the caller treats all the batch's keys as not-yet-durable. Keys
// outside the batch are untouched either way.
func (s *Store) SaveBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	tmps := make([]string, 0, len(recs))
	files := make([]*os.File, 0, len(recs))
	cleanup := func() {
		for _, f := range files {
			_ = f.Close()
		}
		for _, tmp := range tmps {
			_ = os.Remove(tmp)
		}
	}
	for i := range recs {
		data := EncodeRecord(recs[i])
		f, err := os.CreateTemp(s.dir, tmpPrefix)
		if err != nil {
			cleanup()
			return fmt.Errorf("persist: save batch (%q): %w", recs[i].Key, err)
		}
		tmps = append(tmps, f.Name())
		files = append(files, f)
		if _, err := f.Write(data); err != nil {
			cleanup()
			return fmt.Errorf("persist: save batch (%q): %w", recs[i].Key, err)
		}
	}
	// All writes landed; make them durable before any rename publishes
	// them. The fsyncs run concurrently: they have no ordering constraint
	// among themselves (only completion-before-rename matters), and
	// issuing them together is what lets a batch of N keys cost ~one
	// device barrier — the core of the group-commit win.
	if s.realSync() {
		syncErrs := make([]error, len(files))
		var wg sync.WaitGroup
		for i, f := range files {
			wg.Add(1)
			go func(i int, f *os.File) {
				defer wg.Done()
				syncErrs[i] = f.Sync()
			}(i, f)
		}
		wg.Wait()
		for i, err := range syncErrs {
			if err != nil {
				cleanup()
				return fmt.Errorf("persist: save batch (%q): %w", recs[i].Key, err)
			}
		}
	}
	for i, f := range files {
		if err := f.Close(); err != nil {
			files = files[i+1:] // earlier files are closed; clean the rest
			cleanup()
			return fmt.Errorf("persist: save batch (%q): %w", recs[i].Key, err)
		}
	}
	files = nil
	if s.opts.BeforeBatchRename != nil {
		keys := make([]string, len(recs))
		for i := range recs {
			keys[i] = recs[i].Key
		}
		if err := s.opts.BeforeBatchRename(keys); err != nil {
			cleanup()
			return fmt.Errorf("persist: save batch: %w", err)
		}
	}
	s.emulateFlush()
	for i := range recs {
		if err := os.Rename(tmps[i], s.Path(recs[i].Key)); err != nil {
			// Already-renamed keys hold their NEW snapshot — that is safe
			// (their state was fully written) but the caller must still
			// treat the whole batch as failed, and does: it simply
			// re-saves those keys on their next event.
			cleanup()
			return fmt.Errorf("persist: save batch (%q): %w", recs[i].Key, err)
		}
	}
	if s.realSync() {
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("persist: save batch: %w", err)
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveSnapshot marshals and saves one key's replica snapshot.
func (s *Store) SaveSnapshot(key string, snap core.Snapshot) error {
	rec, err := FromSnapshot(key, snap)
	if err != nil {
		return err
	}
	return s.Save(rec)
}

// KeySnapshot is one rehydratable key: the object key and its decoded
// replica snapshot.
type KeySnapshot struct {
	Key  string
	Snap core.Snapshot
}

// LoadAll reads every snapshot in the directory, sorted by key. Under
// RecoverStrict the first corrupt or undecodable file fails the load with
// an error matching ErrCorrupt and naming the file; under
// RecoverIgnoreCorrupt such files are skipped and counted in the second
// return value.
func (s *Store) LoadAll(policy RecoverPolicy) ([]KeySnapshot, int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %w", err)
	}
	var out []KeySnapshot
	skipped := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, suffix) ||
			(!strings.HasPrefix(name, "k") && !strings.HasPrefix(name, "h")) {
			continue
		}
		path := filepath.Join(s.dir, name)
		ks, err := loadFile(path)
		if err != nil {
			if policy == RecoverIgnoreCorrupt && errors.Is(err, ErrCorrupt) {
				skipped++
				continue
			}
			return nil, skipped, err
		}
		out = append(out, ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, skipped, nil
}

func loadFile(path string) (KeySnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return KeySnapshot{}, fmt.Errorf("persist: %s: %w", path, err)
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		return KeySnapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	snap, err := rec.Snapshot()
	if err != nil {
		return KeySnapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return KeySnapshot{Key: rec.Key, Snap: snap}, nil
}
