package persist

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// TestConfigRoundTrip: the v2 format carries the membership configuration
// through encode/decode and back into a core.Snapshot.
func TestConfigRoundTrip(t *testing.T) {
	snap := core.Snapshot{
		Round:   core.Round{Number: 3, ID: core.RoundID{Proposer: "n1", Seq: 4}},
		State:   crdt.NewGCounter().Inc("n1", 2),
		NextReq: 7,
		NextSeq: 2,
		Config: core.Config{
			Epoch:   5,
			Source:  "n2",
			Members: []transport.NodeID{"n1", "n2", "n3", "n4"},
		},
	}
	rec, err := FromSnapshot("cfg", snap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 5 || rec.Source != "n2" || len(rec.Members) != 4 {
		t.Fatalf("record config = epoch %d source %q members %v", rec.Epoch, rec.Source, rec.Members)
	}
	back, err := DecodeRecord(EncodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Config, snap.Config) {
		t.Fatalf("config = %+v, want %+v", got.Config, snap.Config)
	}
}

// TestDecodeAcceptsVersion1: a pre-reconfiguration (v1) snapshot file —
// identical layout, no config section — still decodes, with a zero
// config, so upgraded binaries recover directories written before the
// format bump.
func TestDecodeAcceptsVersion1(t *testing.T) {
	rec := sampleRecord(t)
	w := wire.NewWriter(256)
	w.Fixed([]byte(magic))
	w.Byte(versionNoConfig)
	w.Str(rec.Key)
	w.Varint(rec.Round.Number)
	w.Str(string(rec.Round.ID.Proposer))
	w.Uvarint(rec.Round.ID.Seq)
	w.Uvarint(rec.NextReq)
	w.Uvarint(rec.NextSeq)
	wire.StateFrame{Kind: wire.StateFull, State: rec.State}.Append(w)
	wire.StateFrame{Kind: wire.StateNone}.Append(w)
	sum := sha256.Sum256(w.Bytes())
	w.Fixed(sum[:])

	got, err := DecodeRecord(w.Bytes())
	if err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	if got.Key != rec.Key || got.Round != rec.Round || got.NextReq != rec.NextReq {
		t.Fatalf("v1 decode mismatch: got %+v want %+v", got, rec)
	}
	if got.Epoch != 0 || got.Source != "" || got.Members != nil {
		t.Fatalf("v1 config should be zero, got epoch %d source %q members %v", got.Epoch, got.Source, got.Members)
	}
	snap, err := got.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Config.Epoch != 0 || len(snap.Config.Members) != 0 {
		t.Fatalf("v1 snapshot config = %+v, want zero", snap.Config)
	}
}
