// Package persist stores replica snapshots as atomic, versioned,
// checksummed files — the durability half of the paper's log-free
// recovery claim: because the protocol keeps no log, a replica's entire
// durable state is its current CRDT payload plus constant-size consensus
// metadata, so recovery is "write one snapshot, read one snapshot", with
// nothing to replay (docs/PROTOCOL.md §4 specifies the file format,
// docs/ARCHITECTURE.md the recovery lifecycle).
//
// Each object key owns one file in the snapshot directory, rewritten
// whole on every durable-state transition via write-to-temp + rename, so
// a crash at any instant leaves either the old snapshot or the new one —
// never a torn mix. A SHA-256 trailer over the full contents rejects
// every other corruption (truncation, bit rot, partial page writes) with
// an error matching ErrCorrupt.
package persist
