// Package persist stores replica snapshots as atomic, versioned,
// checksummed files — the durability half of the paper's log-free
// recovery claim: because the protocol keeps no log, a replica's entire
// durable state is its current CRDT payload plus constant-size consensus
// metadata, so recovery is "write one snapshot, read one snapshot", with
// nothing to replay (docs/PROTOCOL.md §4 specifies the file format,
// docs/ARCHITECTURE.md the recovery lifecycle).
//
// Each object key owns one file in the snapshot directory, rewritten
// whole on every durable-state transition via write-to-temp + rename, so
// a crash at any instant leaves either the old snapshot or the new one —
// never a torn mix. A SHA-256 trailer over the full contents rejects
// every other corruption (truncation, bit rot, partial page writes) with
// an error matching ErrCorrupt.
//
// SaveBatch is the group-commit entry point used by the cluster's
// per-shard persister goroutines: many keys' records written and renamed
// together, then one directory sync for the lot, so a batch costs about
// one device barrier instead of one per key. Options.WriteDelay emulates
// a per-write device flush deterministically for benchmarks; when set
// alongside SyncAlways it stands in for the physical fsync barriers (see
// the Options docs).
package persist
