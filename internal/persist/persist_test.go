package persist

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// stateGen builds a pseudo-random state of one payload type. The map must
// cover the full codec registry — TestGeneratorsCoverRegistry guards that
// a newly registered CRDT cannot silently skip the snapshot round-trip
// property test.
var stateGen = map[string]func(r *rand.Rand) crdt.State{
	crdt.TypeGCounter: func(r *rand.Rand) crdt.State {
		c := crdt.NewGCounter()
		for i := 0; i < r.Intn(5); i++ {
			c = c.Inc(fmt.Sprintf("r%d", r.Intn(4)), uint64(r.Intn(10)+1))
		}
		return c
	},
	crdt.TypePNCounter: func(r *rand.Rand) crdt.State {
		c := crdt.NewPNCounter()
		for i := 0; i < r.Intn(5); i++ {
			rep := fmt.Sprintf("r%d", r.Intn(4))
			if r.Intn(2) == 0 {
				c = c.Inc(rep, uint64(r.Intn(10)+1))
			} else {
				c = c.Dec(rep, uint64(r.Intn(10)+1))
			}
		}
		return c
	},
	crdt.TypeMaxRegister: func(r *rand.Rand) crdt.State {
		m := crdt.NewMaxRegister()
		for i := 0; i < r.Intn(4); i++ {
			m = m.Set(int64(r.Intn(100) - 50))
		}
		return m
	},
	crdt.TypeLWWRegister: func(r *rand.Rand) crdt.State {
		l := crdt.NewLWWRegister()
		for i := 0; i < r.Intn(4); i++ {
			l = l.Set(fmt.Sprintf("v%d", r.Intn(8)), uint64(r.Intn(20)), fmt.Sprintf("a%d", r.Intn(3)))
		}
		return l
	},
	crdt.TypeMVRegister: func(r *rand.Rand) crdt.State {
		m := crdt.NewMVRegister()
		for i := 0; i < r.Intn(4); i++ {
			m = m.Set(fmt.Sprintf("v%d", r.Intn(8)), fmt.Sprintf("a%d", r.Intn(3)))
		}
		return m
	},
	crdt.TypeGSet: func(r *rand.Rand) crdt.State {
		s := crdt.NewGSet()
		for i := 0; i < r.Intn(6); i++ {
			s = s.Add(fmt.Sprintf("e%d", r.Intn(10)))
		}
		return s
	},
	crdt.TypeTwoPSet: func(r *rand.Rand) crdt.State {
		s := crdt.NewTwoPSet()
		for i := 0; i < r.Intn(6); i++ {
			e := fmt.Sprintf("e%d", r.Intn(10))
			if r.Intn(3) == 0 {
				s = s.Remove(e)
			} else {
				s = s.Add(e)
			}
		}
		return s
	},
	crdt.TypeORSet: func(r *rand.Rand) crdt.State {
		s := crdt.NewORSet()
		for i := 0; i < r.Intn(6); i++ {
			e := fmt.Sprintf("e%d", r.Intn(10))
			if r.Intn(3) == 0 {
				s = s.Remove(e)
			} else {
				s = s.Add(e, fmt.Sprintf("a%d", r.Intn(3)), uint64(r.Intn(100)))
			}
		}
		return s
	},
	crdt.TypeEWFlag: func(r *rand.Rand) crdt.State {
		f := crdt.NewEWFlag()
		for i := 0; i < r.Intn(5); i++ {
			if r.Intn(3) == 0 {
				f = f.Disable()
			} else {
				f = f.Enable(fmt.Sprintf("a%d", r.Intn(3)), uint64(r.Intn(100)))
			}
		}
		return f
	},
	crdt.TypeLWWMap: func(r *rand.Rand) crdt.State {
		m := crdt.NewLWWMap()
		for i := 0; i < r.Intn(6); i++ {
			k := fmt.Sprintf("k%d", r.Intn(5))
			if r.Intn(4) == 0 {
				m = m.Delete(k, uint64(r.Intn(20)), fmt.Sprintf("a%d", r.Intn(3)))
			} else {
				m = m.Set(k, fmt.Sprintf("v%d", r.Intn(8)), uint64(r.Intn(20)), fmt.Sprintf("a%d", r.Intn(3)))
			}
		}
		return m
	},
	crdt.TypeVClock: func(r *rand.Rand) crdt.State {
		v := crdt.NewVClock()
		for i := 0; i < r.Intn(6); i++ {
			v = v.Tick(fmt.Sprintf("a%d", r.Intn(4)))
		}
		return v
	},
}

func TestGeneratorsCoverRegistry(t *testing.T) {
	for _, name := range crdt.Names() {
		if _, ok := stateGen[name]; !ok {
			t.Errorf("registered type %q has no generator in persist_test.go", name)
		}
	}
}

func randomRound(r *rand.Rand) core.Round {
	return core.Round{
		Number: int64(r.Intn(1000)) - 1,
		ID: core.RoundID{
			Proposer: transport.NodeID(fmt.Sprintf("n%d", r.Intn(5))),
			Seq:      uint64(r.Intn(1 << 20)),
		},
	}
}

// TestSnapshotRoundTripAllTypes is the codec property test: for every
// registered CRDT type, encode→decode of a snapshot record is identity —
// byte-identical marshaled states, equal round metadata — and the decoded
// record rehydrates into a core.Snapshot whose states are equivalent to
// the originals.
func TestSnapshotRoundTripAllTypes(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, name := range crdt.Names() {
		gen, ok := stateGen[name]
		if !ok {
			t.Fatalf("no generator for %q", name)
		}
		for i := 0; i < 50; i++ {
			state := gen(r)
			learned := gen(r)
			snap := core.Snapshot{
				Round:   randomRound(r),
				State:   state,
				Learned: learned,
				NextReq: uint64(r.Intn(1 << 16)),
				NextSeq: uint64(r.Intn(1 << 16)),
			}
			key := fmt.Sprintf("%s/obj-%d", name, i)
			rec, err := FromSnapshot(key, snap)
			if err != nil {
				t.Fatalf("%s: FromSnapshot: %v", name, err)
			}
			back, err := DecodeRecord(EncodeRecord(rec))
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if back.Key != key || back.Round != snap.Round ||
				back.NextReq != snap.NextReq || back.NextSeq != snap.NextSeq {
				t.Fatalf("%s: metadata did not round-trip: %+v vs %+v", name, back, rec)
			}
			got, err := back.Snapshot()
			if err != nil {
				t.Fatalf("%s: rehydrate: %v", name, err)
			}
			if eq, err := crdt.Equivalent(got.State, state); err != nil || !eq {
				t.Fatalf("%s: payload not equivalent after round trip (eq=%t err=%v)", name, eq, err)
			}
			wantLearned := learned
			if got.Learned == nil {
				// Learned was byte-identical to the payload and elided.
				got.Learned = got.State
			}
			if eq, err := crdt.Equivalent(got.Learned, wantLearned); err != nil || !eq {
				t.Fatalf("%s: learned state not equivalent after round trip (eq=%t err=%v)", name, eq, err)
			}
		}
	}
}

// TestLearnedElidedWhenEquivalent: the learned frame must be StateNone
// when learned ≡ payload, keeping the common case at one state per file.
func TestLearnedElidedWhenEquivalent(t *testing.T) {
	c := crdt.NewGCounter().Inc("n1", 3)
	rec, err := FromSnapshot("k", core.Snapshot{State: c, Learned: c})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Learned != nil {
		t.Fatal("learned state stored despite being identical to the payload")
	}
	// Equivalent-but-distinct values elide too (deterministic marshal).
	c2 := crdt.NewGCounter().Inc("n1", 3)
	rec, err = FromSnapshot("k", core.Snapshot{State: c, Learned: c2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Learned != nil {
		t.Fatal("equivalent learned state stored despite identical encoding")
	}
}

func sampleRecord(t *testing.T) Record {
	t.Helper()
	rec, err := FromSnapshot("views", core.Snapshot{
		Round:   core.Round{Number: 7, ID: core.RoundID{Proposer: "n2", Seq: 9}},
		State:   crdt.NewGCounter().Inc("n1", 4),
		NextReq: 11,
		NextSeq: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestDecodeRejectsCorruption: every corruption class must come back as a
// typed ErrCorrupt — truncation, bit flips (checksum), bad magic, unknown
// version, trailing garbage.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := EncodeRecord(sampleRecord(t))
	if _, err := DecodeRecord(valid); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:10],
		"truncated": valid[:len(valid)-1],
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x01
	cases["bit flip"] = flip
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic
	extended := append(append([]byte(nil), valid...), 0xEE)
	cases["trailing byte"] = extended
	for name, data := range cases {
		if _, err := DecodeRecord(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDecodeRejectsUnknownVersion: a future-versioned file with a valid
// checksum is still refused — consensus metadata is not guessable.
func TestDecodeRejectsUnknownVersion(t *testing.T) {
	valid := EncodeRecord(sampleRecord(t))
	bumped := append([]byte(nil), valid[:len(valid)-sha256.Size]...)
	bumped[len(magic)] = version + 1
	// Re-checksum so only the version is wrong.
	sum := sha256.Sum256(bumped)
	bumped = append(bumped, sum[:]...)
	if _, err := DecodeRecord(bumped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestStoreSaveLoadAll: saved snapshots come back keyed and sorted, with
// weird key strings (empty, path separators) intact.
func TestStoreSaveLoadAll(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"", "or-set/sessions", "views", "a/b/c", "κλειδί"}
	for i, key := range keys {
		snap := core.Snapshot{
			Round:   core.Round{Number: int64(i)},
			State:   crdt.NewGCounter().Inc("n1", uint64(i+1)),
			NextReq: uint64(i),
		}
		if err := st.SaveSnapshot(key, snap); err != nil {
			t.Fatal(err)
		}
	}
	got, skipped, err := st.LoadAll(RecoverStrict)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(got) != len(keys) {
		t.Fatalf("loaded %d (skipped %d), want %d", len(got), skipped, len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatalf("keys not sorted: %q then %q", got[i-1].Key, got[i].Key)
		}
	}
	byKey := map[string]KeySnapshot{}
	for _, ks := range got {
		byKey[ks.Key] = ks
	}
	for i, key := range keys {
		ks, ok := byKey[key]
		if !ok {
			t.Fatalf("key %q missing after load", key)
		}
		if v := ks.Snap.State.(*crdt.GCounter).Value(); v != uint64(i+1) {
			t.Fatalf("key %q value = %d, want %d", key, v, i+1)
		}
	}
}

// TestStoreSaveOverwrites: a second save replaces the first atomically.
func TestStoreSaveOverwrites(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		snap := core.Snapshot{State: crdt.NewGCounter().Inc("n1", uint64(i))}
		if err := st.SaveSnapshot("k", snap); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := st.LoadAll(RecoverStrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d records, want 1", len(got))
	}
	if v := got[0].Snap.State.(*crdt.GCounter).Value(); v != 3 {
		t.Fatalf("value = %d, want the last save (3)", v)
	}
}

// TestLoadAllRecoverPolicies: a corrupted file fails a strict load with a
// typed error naming the file, and is skipped (counted) under
// ignore-corrupt while intact snapshots still load.
func TestLoadAllRecoverPolicies(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("good", core.Snapshot{State: crdt.NewGCounter().Inc("n1", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("bad", core.Snapshot{State: crdt.NewGCounter().Inc("n1", 9)}); err != nil {
		t.Fatal(err)
	}
	badPath := st.Path("bad")
	data, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := st.LoadAll(RecoverStrict); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict load err = %v, want ErrCorrupt", err)
	}
	got, skipped, err := st.LoadAll(RecoverIgnoreCorrupt)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(got) != 1 || got[0].Key != "good" {
		t.Fatalf("ignore-corrupt load = %d records (skipped %d), want just %q", len(got), skipped, "good")
	}
}

// TestTornWriteLeavesOldSnapshot is the atomicity test: a filesystem
// error injected after the temp file is written but before the rename
// must fail the save, leave no temp litter behind after reopen, and leave
// the previous snapshot fully intact.
func TestTornWriteLeavesOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("k", core.Snapshot{State: crdt.NewGCounter().Inc("n1", 5)}); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected fs error")
	st.beforeRename = func(tmp string) error {
		// Model a torn write: scribble on the temp file, then fail.
		if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		return injected
	}
	err = st.SaveSnapshot("k", core.Snapshot{State: crdt.NewGCounter().Inc("n1", 99)})
	if !errors.Is(err, injected) {
		t.Fatalf("save err = %v, want the injected error", err)
	}
	st.beforeRename = nil

	// Reopen (sweeping temp files, like a restart would) and load: the
	// old snapshot must be byte-for-byte recoverable.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, skipped, err := st2.LoadAll(RecoverStrict)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(got) != 1 {
		t.Fatalf("loaded %d records (skipped %d), want 1", len(got), skipped)
	}
	if v := got[0].Snap.State.(*crdt.GCounter).Value(); v != 5 {
		t.Fatalf("value = %d, want the pre-failure snapshot (5)", v)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != suffix {
			t.Fatalf("unexpected file %q left in snapshot dir", e.Name())
		}
	}
}

// TestLongKeysGetBoundedFilenames: a key of any length must map to a
// filename under NAME_MAX (hex doubles length, so long keys switch to a
// hashed name) and still save/load correctly — a client-chosen key must
// never be able to wedge persistence with ENAMETOOLONG.
func TestLongKeysGetBoundedFilenames(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("k", 300)
	short := "views"
	if name := filepath.Base(st.Path(long)); len(name) > 255 {
		t.Fatalf("filename for 300-byte key is %d chars", len(name))
	}
	if st.Path(long) == st.Path(long+"x") {
		t.Fatal("distinct long keys collided")
	}
	for i, key := range []string{long, long + "x", short} {
		if err := st.SaveSnapshot(key, core.Snapshot{State: crdt.NewGCounter().Inc("n1", uint64(i+1))}); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	got, skipped, err := st.LoadAll(RecoverStrict)
	if err != nil || skipped != 0 {
		t.Fatalf("load: %v (skipped %d)", err, skipped)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d records, want 3", len(got))
	}
	byKey := map[string]uint64{}
	for _, ks := range got {
		byKey[ks.Key] = ks.Snap.State.(*crdt.GCounter).Value()
	}
	if byKey[long] != 1 || byKey[long+"x"] != 2 || byKey[short] != 3 {
		t.Fatalf("values after load: %v", byKey)
	}
}

// TestOpenRejectsEmptyDir guards the Config plumbing: persistence must be
// explicitly pointed at a directory.
func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}

func TestParseRecoverPolicy(t *testing.T) {
	if p, err := ParseRecoverPolicy("strict"); err != nil || p != RecoverStrict {
		t.Fatalf("strict: %v %v", p, err)
	}
	if p, err := ParseRecoverPolicy("ignore-corrupt"); err != nil || p != RecoverIgnoreCorrupt {
		t.Fatalf("ignore-corrupt: %v %v", p, err)
	}
	if _, err := ParseRecoverPolicy("yolo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
