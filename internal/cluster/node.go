// Package cluster provides the asynchronous runtime that turns the pure
// protocol state machine of internal/core into live replicas: one event
// loop per node serializes client commands, inbound messages, and timers
// (the paper's serial-process assumption, §3.2), a retransmission timer per
// in-flight request covers message loss, and an optional per-proposer batch
// (§3.6) amortizes protocol runs across commands.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crdtsmr/internal/clock"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// ErrUnavailable is returned for commands submitted to a crashed node.
var ErrUnavailable = errors.New("cluster: node unavailable")

// ErrStopped is returned for commands submitted to a closed node.
var ErrStopped = errors.New("cluster: node stopped")

// Config configures every node of a cluster.
type Config struct {
	// Members lists the full replica group.
	Members []transport.NodeID
	// Initial is the initial CRDT payload s0, identical on all replicas.
	Initial crdt.State
	// Options are the protocol options (see core.Options).
	Options core.Options
	// Clock supplies timers; defaults to the wall clock.
	Clock clock.Clock
	// RetransmitInterval is how long a request waits for its quorum before
	// re-driving its messages. Default 100 ms.
	RetransmitInterval time.Duration
	// BatchInterval, when positive, enables §3.6 per-proposer batching:
	// commands buffer locally and flush every interval, one protocol run
	// per batch. The paper's evaluation uses 5 ms.
	BatchInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 100 * time.Millisecond
	}
	return c
}

// Node is one running replica: a core.Replica driven by an event loop.
type Node struct {
	id      transport.NodeID
	cfg     Config
	replica *core.Replica
	conn    transport.Conn

	events   chan nodeEvent
	counters chan chan core.Counters
	quit     chan struct{}
	wg       sync.WaitGroup

	// Loop-owned state (accessed only from the event loop).
	timers       map[uint64]clock.Timer
	crashed      bool
	batchUpdates []*updateOp
	batchQueries []*queryOp
	flushTimer   clock.Timer
}

type nodeEvent struct {
	kind    eventKind
	from    transport.NodeID
	payload []byte
	update  *updateOp
	query   *queryOp
	reqID   uint64
	crash   bool
	queries bool // evFlush: flush the query batch (else the update batch)
}

type eventKind uint8

const (
	evInbound eventKind = iota + 1
	evUpdate
	evQuery
	evTimeout
	evFlush
	evSetCrashed
)

type updateOp struct {
	fu   crdt.Update
	done chan updateResult
}

type updateResult struct {
	stats core.UpdateStats
	err   error
}

type queryOp struct {
	done chan queryResult
}

type queryResult struct {
	state crdt.State
	stats core.QueryStats
	err   error
}

// NewNode creates and starts a node. join binds the node's ID and inbound
// handler to a transport (e.g. a wrapper around Mesh.Join or NewTCP).
func NewNode(id transport.NodeID, cfg Config, join func(transport.NodeID, transport.Handler) transport.Conn) (*Node, error) {
	cfg = cfg.withDefaults()
	rep, err := core.NewReplica(id, cfg.Members, cfg.Initial, cfg.Options)
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:       id,
		cfg:      cfg,
		replica:  rep,
		events:   make(chan nodeEvent, 8192),
		counters: make(chan chan core.Counters),
		quit:     make(chan struct{}),
		timers:   make(map[uint64]clock.Timer),
	}
	n.conn = join(id, n.handleInbound)
	n.wg.Add(1)
	go n.loop()
	if cfg.BatchInterval > 0 {
		// De-phase this node's flush cycle from its peers': replicas that
		// flush in lockstep run their query protocols concurrently and
		// deny each other's votes every window. Spreading the phases
		// across the window keeps the per-window protocol runs of
		// different proposers disjoint in time.
		offset := cfg.BatchInterval * time.Duration(memberIndex(cfg.Members, id)) / time.Duration(len(cfg.Members))
		n.cfg.Clock.AfterFunc(offset, func() {
			n.post(nodeEvent{kind: evFlush})
		})
	}
	return n, nil
}

func memberIndex(members []transport.NodeID, id transport.NodeID) int {
	for i, m := range members {
		if m == id {
			return i
		}
	}
	return 0
}

// ID returns the node's ID.
func (n *Node) ID() transport.NodeID { return n.id }

// Counters returns a loop-synchronized snapshot of the protocol counters.
func (n *Node) Counters() core.Counters {
	res := make(chan core.Counters, 1)
	select {
	case n.counters <- res:
		select {
		case c := <-res:
			return c
		case <-n.quit:
		}
	case <-n.quit:
	}
	return core.Counters{}
}

// Update submits an update command and blocks until it completes or ctx is
// done.
func (n *Node) Update(ctx context.Context, fu crdt.Update) (core.UpdateStats, error) {
	op := &updateOp{fu: fu, done: make(chan updateResult, 1)}
	if err := n.submit(ctx, nodeEvent{kind: evUpdate, update: op}); err != nil {
		return core.UpdateStats{}, err
	}
	select {
	case res := <-op.done:
		return res.stats, res.err
	case <-ctx.Done():
		return core.UpdateStats{}, ctx.Err()
	case <-n.quit:
		return core.UpdateStats{}, ErrStopped
	}
}

// Query submits a query command and blocks until a state is learned or ctx
// is done. The returned state must be treated as immutable.
func (n *Node) Query(ctx context.Context) (crdt.State, core.QueryStats, error) {
	op := &queryOp{done: make(chan queryResult, 1)}
	if err := n.submit(ctx, nodeEvent{kind: evQuery, query: op}); err != nil {
		return nil, core.QueryStats{}, err
	}
	select {
	case res := <-op.done:
		return res.state, res.stats, res.err
	case <-ctx.Done():
		return nil, core.QueryStats{}, ctx.Err()
	case <-n.quit:
		return nil, core.QueryStats{}, ErrStopped
	}
}

// SetCrashed simulates a crash (true) or recovery (false). While crashed
// the node drops inbound messages and fails commands, but keeps its
// acceptor state — the paper assumes the crash-recovery model in which
// processes retain their internal state across failures (§2.1).
func (n *Node) SetCrashed(crashed bool) {
	n.post(nodeEvent{kind: evSetCrashed, crash: crashed})
}

// Close stops the event loop and detaches from the transport.
func (n *Node) Close() error {
	select {
	case <-n.quit:
		n.wg.Wait()
		return nil
	default:
	}
	close(n.quit)
	n.wg.Wait()
	return n.conn.Close()
}

func (n *Node) submit(ctx context.Context, ev nodeEvent) error {
	select {
	case n.events <- ev:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.quit:
		return ErrStopped
	}
}

func (n *Node) post(ev nodeEvent) {
	select {
	case n.events <- ev:
	case <-n.quit:
	}
}

func (n *Node) handleInbound(from transport.NodeID, payload []byte) {
	select {
	case n.events <- nodeEvent{kind: evInbound, from: from, payload: payload}:
	case <-n.quit:
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			n.shutdown()
			return
		case ev := <-n.events:
			n.handle(ev)
		case res := <-n.counters:
			res <- n.replica.Counters()
		}
		n.flushOutbox()
	}
}

func (n *Node) handle(ev nodeEvent) {
	switch ev.kind {
	case evInbound:
		if n.crashed {
			return
		}
		n.replica.Deliver(ev.from, ev.payload)
	case evUpdate:
		if n.crashed {
			ev.update.done <- updateResult{err: ErrUnavailable}
			return
		}
		if n.cfg.BatchInterval > 0 {
			n.batchUpdates = append(n.batchUpdates, ev.update)
			return
		}
		n.startUpdate([]*updateOp{ev.update})
	case evQuery:
		if n.crashed {
			ev.query.done <- queryResult{err: ErrUnavailable}
			return
		}
		if n.cfg.BatchInterval > 0 {
			n.batchQueries = append(n.batchQueries, ev.query)
			return
		}
		n.startQuery([]*queryOp{ev.query})
	case evTimeout:
		if n.crashed {
			return
		}
		if _, live := n.timers[ev.reqID]; live {
			n.replica.Retransmit(ev.reqID)
			n.armTimer(ev.reqID)
		}
	case evFlush:
		if !n.crashed {
			n.flushBatch(ev.queries)
		}
		// The update and query batches alternate, each flushing every
		// BatchInterval but offset by half a window. Flushing them at the
		// same instant would make every batched query collide with its own
		// node's MERGE broadcast and forfeit the fast path that batching
		// exists to enable (§3.6).
		if n.cfg.BatchInterval > 0 {
			next := !ev.queries
			n.flushTimer = n.cfg.Clock.AfterFunc(n.cfg.BatchInterval/2, func() {
				n.post(nodeEvent{kind: evFlush, queries: next})
			})
		}
	case evSetCrashed:
		n.crashed = ev.crash
		if ev.crash {
			n.failEverything()
		}
	}
}

func (n *Node) startUpdate(ops []*updateOp) {
	combined := func(s crdt.State) (crdt.State, error) {
		var err error
		for _, op := range ops {
			s, err = op.fu(s)
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	reqID, err := n.replica.SubmitUpdate(combined, func(stats core.UpdateStats, err error) {
		for _, op := range ops {
			op.done <- updateResult{stats: stats, err: err}
		}
	})
	if err != nil {
		for _, op := range ops {
			op.done <- updateResult{err: err}
		}
		return
	}
	if n.replica.Pending(reqID) {
		n.armTimer(reqID)
	}
}

func (n *Node) startQuery(ops []*queryOp) {
	reqID := n.replica.SubmitQuery(func(s crdt.State, stats core.QueryStats, err error) {
		for _, op := range ops {
			op.done <- queryResult{state: s, stats: stats, err: err}
		}
	})
	if n.replica.Pending(reqID) {
		n.armTimer(reqID)
	}
}

func (n *Node) flushBatch(queries bool) {
	if queries {
		if len(n.batchQueries) > 0 {
			ops := n.batchQueries
			n.batchQueries = nil
			n.startQuery(ops)
		}
		return
	}
	if len(n.batchUpdates) > 0 {
		ops := n.batchUpdates
		n.batchUpdates = nil
		n.startUpdate(ops)
	}
}

func (n *Node) armTimer(reqID uint64) {
	n.disarmTimer(reqID)
	n.timers[reqID] = n.cfg.Clock.AfterFunc(n.cfg.RetransmitInterval, func() {
		n.post(nodeEvent{kind: evTimeout, reqID: reqID})
	})
}

func (n *Node) disarmTimer(reqID uint64) {
	if t, ok := n.timers[reqID]; ok {
		t.Stop()
		delete(n.timers, reqID)
	}
}

// flushOutbox transmits pending envelopes and disarms timers of requests
// that completed during the last event.
func (n *Node) flushOutbox() {
	for _, e := range n.replica.TakeOutbox() {
		if !n.crashed {
			n.conn.Send(e.To, e.Payload)
		}
	}
	for reqID := range n.timers {
		if !n.replica.Pending(reqID) {
			n.disarmTimer(reqID)
		}
	}
}

// failEverything aborts in-flight and batched requests upon crash; their
// callers receive ErrAborted / ErrUnavailable.
func (n *Node) failEverything() {
	for reqID := range n.timers {
		n.disarmTimer(reqID)
		n.replica.Abort(reqID)
	}
	for _, op := range n.batchUpdates {
		op.done <- updateResult{err: ErrUnavailable}
	}
	for _, op := range n.batchQueries {
		op.done <- queryResult{err: ErrUnavailable}
	}
	n.batchUpdates, n.batchQueries = nil, nil
}

func (n *Node) shutdown() {
	if n.flushTimer != nil {
		n.flushTimer.Stop()
	}
	for reqID, t := range n.timers {
		t.Stop()
		delete(n.timers, reqID)
	}
}

// String renders the node for logs.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.id) }
