package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crdtsmr/internal/clock"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// ErrUnavailable is returned for commands submitted to a crashed node.
var ErrUnavailable = errors.New("cluster: node unavailable")

// ErrStopped is returned for commands submitted to a closed node.
var ErrStopped = errors.New("cluster: node stopped")

// DefaultKey is the object key of the single-object API: Update and Query
// operate on the object stored under this key.
const DefaultKey = ""

// Config configures every node of a cluster.
type Config struct {
	// Members lists the full replica group.
	Members []transport.NodeID
	// Initial is the initial CRDT payload s0 of the default object,
	// identical on all replicas.
	Initial crdt.State
	// InitialForKey, when set, supplies the initial payload s0 for keys
	// other than DefaultKey. It must be deterministic and identical across
	// replicas (it runs independently on every node when the key is first
	// touched). When nil, every key starts from a fresh zero value of
	// Initial's payload type.
	InitialForKey func(key string) crdt.State
	// Options are the protocol options (see core.Options).
	Options core.Options
	// Clock supplies timers; defaults to the wall clock.
	Clock clock.Clock
	// RetransmitInterval is how long a request waits for its quorum before
	// re-driving its messages. Default 100 ms.
	RetransmitInterval time.Duration
	// BatchInterval, when positive, enables §3.6 per-proposer batching:
	// commands buffer locally per key and flush every interval, one
	// protocol run per key per batch. The paper's evaluation uses 5 ms.
	BatchInterval time.Duration
	// StateTransfer selects the replica-wire state-transfer strategy for
	// every key: full payloads (default), digest-suppressed, or delta
	// (docs/PROTOCOL.md §3). It is copied into Options.Transfer unless
	// Options already selects a non-default mode.
	StateTransfer core.StateTransfer
	// DataDir, when non-empty, makes the node durable: every object's
	// acceptor payload and consensus metadata is snapshotted to this
	// directory after each durable-state transition — before the
	// resulting protocol messages leave the node, so nothing is promised
	// to a peer that the disk does not hold — and reloaded at startup and
	// by Restart (docs/ARCHITECTURE.md, "Recovery lifecycle"). Empty
	// disables persistence: a crashed node can only Recover with its
	// in-memory state, never Restart.
	DataDir string
	// PersistSync selects the snapshot sync policy (persist.SyncNone by
	// default: atomic renames survive process crashes; SyncAlways also
	// survives power loss).
	PersistSync persist.SyncPolicy
	// Recover selects how corrupt snapshot files are treated when
	// loading: fail startup (persist.RecoverStrict, the default) or skip
	// them so the affected keys start fresh and re-learn from the
	// cluster (persist.RecoverIgnoreCorrupt, an explicit operator
	// decision).
	Recover persist.RecoverPolicy
	// LinkBudget, when positive, caps each outbound replica link at this
	// many payload bytes per second (token bucket, capacity LinkBurst).
	// Envelopes over budget are delayed and coalesced per key instead of
	// flooding the wire — see docs/ARCHITECTURE.md, "Overload and
	// backpressure". Zero disables budgeting.
	LinkBudget int
	// LinkBurst is the bucket capacity in bytes. Defaults to one second
	// of LinkBudget; values below LinkBudget/10 are raised to it.
	LinkBurst int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 100 * time.Millisecond
	}
	if c.Options.Transfer == core.TransferFull {
		c.Options.Transfer = c.StateTransfer
	}
	if c.LinkBudget > 0 && c.LinkBurst <= 0 {
		c.LinkBurst = c.LinkBudget
	}
	return c
}

// initialFor resolves the initial payload for an object key.
func (c Config) initialFor(key string) (crdt.State, error) {
	if key == DefaultKey {
		return c.Initial, nil
	}
	if c.InitialForKey != nil {
		if s := c.InitialForKey(key); s != nil {
			return s, nil
		}
		return nil, fmt.Errorf("cluster: no initial state for key %q", key)
	}
	// States are immutable, but Initial may already hold data; fresh keys
	// must start from the type's bottom element so every replica agrees.
	return crdt.New(c.Initial.TypeName())
}

// Node is one running replica of the whole keyspace: a set of per-key
// core.Replica instances driven by a single event loop over a single
// transport connection.
type Node struct {
	id   transport.NodeID
	cfg  Config
	conn transport.Conn

	events chan nodeEvent
	calls  chan func()
	quit   chan struct{}
	wg     sync.WaitGroup

	store *persist.Store // nil when cfg.DataDir is empty

	// inboundDropped counts replica frames dropped because the event
	// queue was full. It is written from the transport's delivery
	// goroutine (the one place a full queue is observed), hence atomic.
	inboundDropped atomic.Uint64

	// Loop-owned state (accessed only from the event loop).
	replicas      map[string]*core.Replica
	timers        map[string]map[uint64]clock.Timer
	budgets       map[transport.NodeID]*linkBudget // per-link byte budgets (LinkBudget > 0)
	budgetTimers  map[transport.NodeID]bool        // links with a pending drain timer
	dirty         []string                         // keys whose replica may hold outbox envelopes
	droppedFrames uint64                           // inbound frames dropped before reaching a replica
	crashed       bool
	batchUpdates  map[string][]*updateOp
	batchQueries  map[string][]*queryOp
	flushTimer    clock.Timer
	savedVersion  map[string]uint64 // per-key StateVersion last persisted
	persistErrs   uint64            // failed snapshot writes (outbox + completions dropped)
	skippedSnaps  uint64            // corrupt snapshots skipped under RecoverIgnoreCorrupt
	notify        []keyedNotify     // client completions deferred past persistence
}

// keyedNotify is one deferred client completion, tagged with the object
// key whose event produced it so a failed snapshot write can withhold
// exactly that key's completions.
type keyedNotify struct {
	key string
	fn  func()
}

type nodeEvent struct {
	kind      eventKind
	from      transport.NodeID
	payload   []byte
	key       string
	update    *updateOp
	query     *queryOp
	reqID     uint64
	crash     bool
	queries   bool       // evFlush: flush the query batches (else the update batches)
	restarted chan error // evRestart: receives the rehydration result
}

type eventKind uint8

const (
	evInbound eventKind = iota + 1
	evUpdate
	evQuery
	evTimeout
	evFlush
	evSetCrashed
	evRestart
	evBudget // drain the link budget queue of peer `from`
)

type updateOp struct {
	fu   crdt.Update
	done chan updateResult
}

type updateResult struct {
	stats core.UpdateStats
	err   error
}

type queryOp struct {
	done chan queryResult
}

type queryResult struct {
	state crdt.State
	stats core.QueryStats
	err   error
}

// NewNode creates and starts a node. join binds the node's ID and inbound
// handler to a transport (e.g. a wrapper around Mesh.Join or NewTCP).
func NewNode(id transport.NodeID, cfg Config, join func(transport.NodeID, transport.Handler) transport.Conn) (*Node, error) {
	cfg = cfg.withDefaults()
	n := &Node{
		id:           id,
		cfg:          cfg,
		events:       make(chan nodeEvent, 8192),
		calls:        make(chan func()),
		quit:         make(chan struct{}),
		replicas:     make(map[string]*core.Replica),
		timers:       make(map[string]map[uint64]clock.Timer),
		budgets:      make(map[transport.NodeID]*linkBudget),
		budgetTimers: make(map[transport.NodeID]bool),
		batchUpdates: make(map[string][]*updateOp),
		batchQueries: make(map[string][]*queryOp),
		savedVersion: make(map[string]uint64),
	}
	if cfg.DataDir != "" {
		store, err := persist.Open(cfg.DataDir, persist.Options{Sync: cfg.PersistSync})
		if err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", id, err)
		}
		n.store = store
	}
	// Instantiate the default object eagerly: it validates the member list
	// and initial state once, at startup, rather than on the first command.
	rep, err := core.NewReplica(id, cfg.Members, cfg.Initial, cfg.Options)
	if err != nil {
		return nil, err
	}
	n.replicas[DefaultKey] = rep
	// Rehydrate before joining the transport: once the first message can
	// arrive, every key's acceptor must already hold its pre-crash round.
	if err := n.loadSnapshots(); err != nil {
		return nil, err
	}
	n.conn = join(id, n.handleInbound)
	n.wg.Add(1)
	go n.loop()
	if cfg.BatchInterval > 0 {
		// De-phase this node's flush cycle from its peers': replicas that
		// flush in lockstep run their query protocols concurrently and
		// deny each other's votes every window. Spreading the phases
		// across the window keeps the per-window protocol runs of
		// different proposers disjoint in time. The first slot starts one
		// window in, not at zero — a flush racing node startup could ship
		// a batch the instant a client enqueues it.
		offset := cfg.BatchInterval * time.Duration(memberIndex(cfg.Members, id)+1) / time.Duration(len(cfg.Members))
		n.cfg.Clock.AfterFunc(offset, func() {
			n.post(nodeEvent{kind: evFlush})
		})
	}
	return n, nil
}

func memberIndex(members []transport.NodeID, id transport.NodeID) int {
	for i, m := range members {
		if m == id {
			return i
		}
	}
	return 0
}

// ID returns the node's ID.
func (n *Node) ID() transport.NodeID { return n.id }

// call runs fn on the event loop and waits for it, for loop-synchronized
// inspection. Returns false if the node is stopped.
func (n *Node) call(fn func()) bool {
	done := make(chan struct{})
	select {
	case n.calls <- func() { fn(); close(done) }:
		select {
		case <-done:
			return true
		case <-n.quit:
			return false
		}
	case <-n.quit:
		return false
	}
}

// Counters returns a loop-synchronized snapshot of the protocol counters,
// summed across every object instantiated on this node. Frames dropped
// before reaching a replica — undecodable object envelope, or a key the
// local configuration rejects — count toward MalformedMsgs.
func (n *Node) Counters() core.Counters {
	var sum core.Counters
	n.call(func() {
		for _, rep := range n.replicas {
			sum.Add(rep.Counters())
		}
		sum.MalformedMsgs += n.droppedFrames
		for _, b := range n.budgets {
			sum.BudgetDelayed += b.delayed
			sum.BudgetCoalesced += b.coalesced
		}
	})
	sum.InboundDropped += n.inboundDropped.Load()
	return sum
}

// Keys returns the object keys instantiated on this node so far, sorted.
// A key appears once this node has served a command for it or received a
// protocol message about it.
func (n *Node) Keys() []string {
	var keys []string
	n.call(func() {
		keys = make([]string, 0, len(n.replicas))
		for k := range n.replicas {
			keys = append(keys, k)
		}
	})
	sort.Strings(keys)
	return keys
}

// Objects returns the number of object replicas instantiated on this node.
func (n *Node) Objects() int {
	count := 0
	n.call(func() { count = len(n.replicas) })
	return count
}

// Update submits an update command against the default object and blocks
// until it completes or ctx is done.
func (n *Node) Update(ctx context.Context, fu crdt.Update) (core.UpdateStats, error) {
	return n.UpdateKey(ctx, DefaultKey, fu)
}

// UpdateKey submits an update command against the object stored under key
// and blocks until it is durable on a quorum or ctx is done.
func (n *Node) UpdateKey(ctx context.Context, key string, fu crdt.Update) (core.UpdateStats, error) {
	op := &updateOp{fu: fu, done: make(chan updateResult, 1)}
	if err := n.submit(ctx, nodeEvent{kind: evUpdate, key: key, update: op}); err != nil {
		return core.UpdateStats{}, err
	}
	select {
	case res := <-op.done:
		return res.stats, res.err
	case <-ctx.Done():
		return core.UpdateStats{}, ctx.Err()
	case <-n.quit:
		return core.UpdateStats{}, ErrStopped
	}
}

// Query submits a query command against the default object and blocks until
// a state is learned or ctx is done.
func (n *Node) Query(ctx context.Context) (crdt.State, core.QueryStats, error) {
	return n.QueryKey(ctx, DefaultKey)
}

// QueryKey submits a query command against the object stored under key and
// blocks until a linearizable state is learned or ctx is done. The returned
// state must be treated as immutable.
func (n *Node) QueryKey(ctx context.Context, key string) (crdt.State, core.QueryStats, error) {
	op := &queryOp{done: make(chan queryResult, 1)}
	if err := n.submit(ctx, nodeEvent{kind: evQuery, key: key, query: op}); err != nil {
		return nil, core.QueryStats{}, err
	}
	select {
	case res := <-op.done:
		return res.state, res.stats, res.err
	case <-ctx.Done():
		return nil, core.QueryStats{}, ctx.Err()
	case <-n.quit:
		return nil, core.QueryStats{}, ErrStopped
	}
}

// ForgetPeer drops the digest/delta state-transfer caches every object
// replica on this node holds about the given peer — the per-key per-peer
// digest cache of docs/PROTOCOL.md §3. The runtime calls it when it
// declares a peer down; a peer that returns with its state intact simply
// re-earns its cache entries, and one that returns empty is caught by the
// MERGE-NACK fallback either way, so forgetting is purely conservative.
func (n *Node) ForgetPeer(id transport.NodeID) {
	n.call(func() {
		for _, rep := range n.replicas {
			rep.ForgetPeer(id)
		}
	})
}

// SetCrashed simulates a crash (true) or recovery (false). While crashed
// the node drops inbound messages and fails commands, but keeps its
// acceptor state — the paper assumes the crash-recovery model in which
// processes retain their internal state across failures (§2.1).
func (n *Node) SetCrashed(crashed bool) {
	n.post(nodeEvent{kind: evSetCrashed, crash: crashed})
}

// Restart models a full process restart on a durable node: every volatile
// structure is dropped — in-flight requests fail over to their clients,
// batches are rejected, all per-key replicas and their transfer caches
// are discarded — and the keyspace is rehydrated from the snapshot
// directory, exactly as a freshly exec'd process with the same -data-dir
// would come up. The transport binding survives (peers redial a real
// process anyway). This is the paper's recovery claim at runtime: no log
// replay, just one snapshot read per key.
//
// Restart requires a DataDir. If rehydration fails (a corrupt snapshot
// under the strict recover policy), the node stays crashed — refusing to
// serve is the only safe answer when the disk cannot reproduce what was
// promised to the quorum — and the error is returned.
//
// Restart travels the event channel, not the side-band call path, so it
// serializes behind an immediately preceding SetCrashed(true): the usual
// Crash-then-Restart sequence cannot observe the crash flag flipping back
// on after the rehydration.
func (n *Node) Restart() error {
	ev := nodeEvent{kind: evRestart, restarted: make(chan error, 1)}
	select {
	case n.events <- ev:
	case <-n.quit:
		return ErrStopped
	}
	select {
	case err := <-ev.restarted:
		return err
	case <-n.quit:
		return ErrStopped
	}
}

// restart runs on the event loop.
func (n *Node) restart() error {
	if n.store == nil {
		return errors.New("cluster: Restart requires a DataDir (volatile nodes can only Recover)")
	}
	n.failEverything()
	for key, byReq := range n.timers {
		for reqID, t := range byReq {
			t.Stop()
			delete(byReq, reqID)
		}
		delete(n.timers, key)
	}
	n.replicas = make(map[string]*core.Replica)
	n.savedVersion = make(map[string]uint64)
	n.dirty = n.dirty[:0]
	n.dropBudgetQueues()
	rep, err := core.NewReplica(n.id, n.cfg.Members, n.cfg.Initial, n.cfg.Options)
	if err != nil {
		n.crashed = true
		return err
	}
	n.replicas[DefaultKey] = rep
	if err := n.loadSnapshots(); err != nil {
		n.crashed = true
		return err
	}
	n.crashed = false
	return nil
}

// loadSnapshots rehydrates every persisted key: the replica is created
// from the configured initial state and the snapshot restored into it
// (Restore joins, so a snapshot can never regress below s0). A snapshot
// for a key the local configuration rejects fails the load — serving a
// keyspace the disk remembers but the config denies would be a silent
// split-brain between configuration and data.
func (n *Node) loadSnapshots() error {
	if n.store == nil {
		return nil
	}
	snaps, skipped, err := n.store.LoadAll(n.cfg.Recover)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", n.id, err)
	}
	n.skippedSnaps += uint64(skipped)
	for _, ks := range snaps {
		rep, ok := n.replicas[ks.Key]
		if !ok {
			s0, err := n.cfg.initialFor(ks.Key)
			if err != nil {
				return fmt.Errorf("cluster: %s: snapshot for unconfigured key %q: %w", n.id, ks.Key, err)
			}
			rep, err = core.NewReplica(n.id, n.cfg.Members, s0, n.cfg.Options)
			if err != nil {
				return err
			}
			n.replicas[ks.Key] = rep
		}
		if err := rep.Restore(ks.Snap); err != nil {
			return fmt.Errorf("cluster: %s: restore %q: %w", n.id, ks.Key, err)
		}
		n.savedVersion[ks.Key] = rep.StateVersion()
	}
	return nil
}

// PersistErrors returns how many snapshot writes have failed. Each
// failure dropped the affected key's outbound messages and withheld its
// client completions for that event (degrading to message loss, which
// the protocol tolerates) rather than promising peers or clients state
// the disk does not hold.
func (n *Node) PersistErrors() uint64 {
	var v uint64
	n.call(func() { v = n.persistErrs })
	return v
}

// SkippedSnapshots returns how many corrupt snapshot files were skipped
// under persist.RecoverIgnoreCorrupt, across startup and every Restart.
// A nonzero value means those keys came up with less state than the disk
// once held and re-learned from the cluster; operators should surface it
// (crdtsmrd prints it at startup).
func (n *Node) SkippedSnapshots() uint64 {
	var v uint64
	n.call(func() { v = n.skippedSnaps })
	return v
}

// Close stops the event loop and detaches from the transport.
func (n *Node) Close() error {
	select {
	case <-n.quit:
		n.wg.Wait()
		return nil
	default:
	}
	close(n.quit)
	n.wg.Wait()
	return n.conn.Close()
}

func (n *Node) submit(ctx context.Context, ev nodeEvent) error {
	select {
	case n.events <- ev:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.quit:
		return ErrStopped
	}
}

func (n *Node) post(ev nodeEvent) {
	select {
	case n.events <- ev:
	case <-n.quit:
	}
}

// handleInbound runs on the transport's delivery goroutine. It must
// never block: the same goroutine delivers replica-to-replica protocol
// traffic, so parking it on a full event queue would let client load
// stall the replica wire cluster-wide (head-of-line blocking across
// planes). A full queue instead drops the frame and counts it — the
// transport is best-effort already, and retransmission recovers exactly
// as it does from network loss.
func (n *Node) handleInbound(from transport.NodeID, payload []byte) {
	select {
	case n.events <- nodeEvent{kind: evInbound, from: from, payload: payload}:
	case <-n.quit:
	default:
		n.inboundDropped.Add(1)
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			n.shutdown()
			return
		case ev := <-n.events:
			n.handle(ev)
		case fn := <-n.calls:
			fn()
		}
		n.flushOutbox()
	}
}

// replicaFor returns the replica owning key, instantiating it on first
// touch. The key is marked dirty so its outbox is drained after the event.
func (n *Node) replicaFor(key string) (*core.Replica, error) {
	if rep, ok := n.replicas[key]; ok {
		n.dirty = append(n.dirty, key)
		return rep, nil
	}
	s0, err := n.cfg.initialFor(key)
	if err != nil {
		return nil, err
	}
	rep, err := core.NewReplica(n.id, n.cfg.Members, s0, n.cfg.Options)
	if err != nil {
		return nil, err
	}
	n.replicas[key] = rep
	n.dirty = append(n.dirty, key)
	return rep, nil
}

func (n *Node) handle(ev nodeEvent) {
	switch ev.kind {
	case evInbound:
		if n.crashed {
			return
		}
		key, inner, err := wire.UnpackEnvelope(ev.payload)
		if err != nil {
			// Malformed frame: drop, per the unreliable-network model, but
			// keep it visible in Counters — a peer speaking a different
			// wire format would otherwise be undiagnosable.
			n.droppedFrames++
			return
		}
		rep, err := n.replicaFor(key)
		if err != nil {
			// No agreed initial state for this key: drop, counted — a peer
			// whose configuration accepts the key would otherwise hang
			// against this node with no diagnostic trace here.
			n.droppedFrames++
			return
		}
		rep.Deliver(ev.from, inner)
	case evUpdate:
		if n.crashed {
			ev.update.done <- updateResult{err: ErrUnavailable}
			return
		}
		if n.cfg.BatchInterval > 0 {
			n.batchUpdates[ev.key] = append(n.batchUpdates[ev.key], ev.update)
			return
		}
		n.startUpdate(ev.key, []*updateOp{ev.update})
	case evQuery:
		if n.crashed {
			ev.query.done <- queryResult{err: ErrUnavailable}
			return
		}
		if n.cfg.BatchInterval > 0 {
			n.batchQueries[ev.key] = append(n.batchQueries[ev.key], ev.query)
			return
		}
		n.startQuery(ev.key, []*queryOp{ev.query})
	case evTimeout:
		if n.crashed {
			return
		}
		if _, live := n.timers[ev.key][ev.reqID]; live {
			if rep, ok := n.replicas[ev.key]; ok {
				n.dirty = append(n.dirty, ev.key)
				rep.Retransmit(ev.reqID)
				n.armTimer(ev.key, ev.reqID)
			}
		}
	case evFlush:
		if !n.crashed {
			n.flushBatches(ev.queries)
		}
		// The update and query batches alternate, each flushing every
		// BatchInterval but offset by half a window. Flushing them at the
		// same instant would make every batched query collide with its own
		// node's MERGE broadcast and forfeit the fast path that batching
		// exists to enable (§3.6).
		if n.cfg.BatchInterval > 0 {
			next := !ev.queries
			n.flushTimer = n.cfg.Clock.AfterFunc(n.cfg.BatchInterval/2, func() {
				n.post(nodeEvent{kind: evFlush, queries: next})
			})
		}
	case evBudget:
		n.drainBudget(ev.from)
	case evSetCrashed:
		n.crashed = ev.crash
		if ev.crash {
			n.failEverything()
			n.dropBudgetQueues()
		}
		// Entering or leaving a crash invalidates every round lease this
		// node holds: while it was down (or from the instant it stops
		// serving), other proposers may move the quorum's rounds, and a
		// resumed lease would skip the prepare that detects that. Dropping
		// is purely conservative — the next quorum read re-earns it.
		for _, rep := range n.replicas {
			rep.DropLease()
		}
	case evRestart:
		ev.restarted <- n.restart()
	}
}

func (n *Node) startUpdate(key string, ops []*updateOp) {
	rep, err := n.replicaFor(key)
	if err != nil {
		for _, op := range ops {
			op.done <- updateResult{err: err}
		}
		return
	}
	combined := func(s crdt.State) (crdt.State, error) {
		var err error
		for _, op := range ops {
			s, err = op.fu(s)
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	// The completion is deferred to flushOutbox's notify phase: on a
	// durable node the client must not observe success before the local
	// snapshot covering the update has hit disk.
	reqID, err := rep.SubmitUpdate(combined, func(stats core.UpdateStats, err error) {
		n.notify = append(n.notify, keyedNotify{key: key, fn: func() {
			for _, op := range ops {
				op.done <- updateResult{stats: stats, err: err}
			}
		}})
	})
	if err != nil {
		for _, op := range ops {
			op.done <- updateResult{err: err}
		}
		return
	}
	if rep.Pending(reqID) {
		n.armTimer(key, reqID)
	}
}

func (n *Node) startQuery(key string, ops []*queryOp) {
	rep, err := n.replicaFor(key)
	if err != nil {
		for _, op := range ops {
			op.done <- queryResult{err: err}
		}
		return
	}
	reqID := rep.SubmitQuery(func(s crdt.State, stats core.QueryStats, err error) {
		n.notify = append(n.notify, keyedNotify{key: key, fn: func() {
			for _, op := range ops {
				op.done <- queryResult{state: s, stats: stats, err: err}
			}
		}})
	})
	if rep.Pending(reqID) {
		n.armTimer(key, reqID)
	}
}

// flushBatches starts one protocol run per key holding buffered commands of
// the given kind — keys batch independently, so a hot key's protocol run
// does not serialize behind a cold key's.
func (n *Node) flushBatches(queries bool) {
	if queries {
		for key, ops := range n.batchQueries {
			delete(n.batchQueries, key)
			n.startQuery(key, ops)
		}
		return
	}
	for key, ops := range n.batchUpdates {
		delete(n.batchUpdates, key)
		n.startUpdate(key, ops)
	}
}

func (n *Node) armTimer(key string, reqID uint64) {
	n.disarmTimer(key, reqID)
	byReq, ok := n.timers[key]
	if !ok {
		byReq = make(map[uint64]clock.Timer)
		n.timers[key] = byReq
	}
	byReq[reqID] = n.cfg.Clock.AfterFunc(n.cfg.RetransmitInterval, func() {
		n.post(nodeEvent{kind: evTimeout, key: key, reqID: reqID})
	})
}

func (n *Node) disarmTimer(key string, reqID uint64) {
	if t, ok := n.timers[key][reqID]; ok {
		t.Stop()
		delete(n.timers[key], reqID)
		if len(n.timers[key]) == 0 {
			delete(n.timers, key)
		}
	}
}

// flushOutbox transmits pending envelopes of every replica touched by the
// last event — wrapped in the key's object-ID envelope — and disarms timers
// of requests that completed. Only dirty keys are visited, so per-event
// cost is independent of the size of the keyspace.
//
// On a durable node the key's snapshot is written first, whenever its
// durable state advanced: an ACK promising a round, a MERGED confirming a
// merge, must never outrun the disk. A failed snapshot write drops the
// key's outbound envelopes AND withholds the key's client completions
// instead — to its peers and clients alike the node behaves like a lossy
// link (the clients' requests time out and surface as uncertain), never
// like a liar claiming durability the disk does not hold. Surviving
// completions are released last, after the persistence point, so an
// acknowledged command is durable here even on a single-node cluster.
func (n *Node) flushOutbox() {
	var persistFailed map[string]bool
	for _, key := range n.dirty {
		rep, ok := n.replicas[key]
		if !ok {
			continue
		}
		out := rep.TakeOutbox()
		if n.store != nil && !n.crashed {
			if v := rep.StateVersion(); v != n.savedVersion[key] {
				if err := n.store.SaveSnapshot(key, rep.Snapshot()); err != nil {
					n.persistErrs++
					if persistFailed == nil {
						persistFailed = make(map[string]bool, 1)
					}
					persistFailed[key] = true
					out = nil
				} else {
					n.savedVersion[key] = v
				}
			}
		}
		for _, e := range out {
			if n.crashed {
				continue
			}
			packed := wire.PackEnvelope(key, e.Payload)
			if n.cfg.LinkBudget > 0 {
				n.sendBudgeted(e.To, key, packed)
			} else {
				n.conn.Send(e.To, packed)
			}
		}
		for reqID := range n.timers[key] {
			if !rep.Pending(reqID) {
				n.disarmTimer(key, reqID)
			}
		}
	}
	n.dirty = n.dirty[:0]
	if len(n.notify) > 0 {
		for _, kn := range n.notify {
			if !persistFailed[kn.key] {
				kn.fn()
			}
		}
		n.notify = n.notify[:0]
	}
}

// failEverything aborts in-flight and batched requests upon crash; their
// callers receive ErrAborted / ErrUnavailable.
func (n *Node) failEverything() {
	for key, byReq := range n.timers {
		rep := n.replicas[key]
		for reqID := range byReq {
			n.disarmTimer(key, reqID)
			if rep != nil {
				rep.Abort(reqID)
			}
		}
	}
	for key, ops := range n.batchUpdates {
		delete(n.batchUpdates, key)
		for _, op := range ops {
			op.done <- updateResult{err: ErrUnavailable}
		}
	}
	for key, ops := range n.batchQueries {
		delete(n.batchQueries, key)
		for _, op := range ops {
			op.done <- queryResult{err: ErrUnavailable}
		}
	}
}

func (n *Node) shutdown() {
	if n.flushTimer != nil {
		n.flushTimer.Stop()
	}
	for key, byReq := range n.timers {
		for reqID, t := range byReq {
			t.Stop()
			delete(byReq, reqID)
		}
		delete(n.timers, key)
	}
}

// String renders the node for logs.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.id) }
