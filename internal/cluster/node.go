package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crdtsmr/internal/clock"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// ErrUnavailable is returned for commands submitted to a crashed node.
var ErrUnavailable = errors.New("cluster: node unavailable")

// ErrStopped is returned for commands submitted to a closed node.
var ErrStopped = errors.New("cluster: node stopped")

// DefaultKey is the object key of the single-object API: Update and Query
// operate on the object stored under this key.
const DefaultKey = ""

// Config configures every node of a cluster.
type Config struct {
	// Members lists the replica group at boot. It seeds the node's
	// configuration view (epoch 0); reconfiguration supersedes it at
	// runtime (Node.Reconfigure, docs/ARCHITECTURE.md "Reconfiguration
	// lifecycle"), so after the first committed epoch the live member set
	// is Node.Members, not this field.
	Members []transport.NodeID
	// Joining starts the node as a joiner: its replicas begin with an
	// empty member set, refuse client commands (core.ErrNotMember → the
	// runtime's unavailable path), and serve no quorums until an existing
	// member reconfigures them in — at which point the configuration push
	// carries the full payload, bootstrapping the joiner's state in the
	// same message. Members is ignored for the protocol when Joining is
	// set (the transport still needs the node reachable by its ID).
	Joining bool
	// Initial is the initial CRDT payload s0 of the default object,
	// identical on all replicas.
	Initial crdt.State
	// InitialForKey, when set, supplies the initial payload s0 for keys
	// other than DefaultKey. It must be deterministic and identical across
	// replicas (it runs independently on every node when the key is first
	// touched). When nil, every key starts from a fresh zero value of
	// Initial's payload type.
	InitialForKey func(key string) crdt.State
	// Options are the protocol options (see core.Options).
	Options core.Options
	// Clock supplies timers; defaults to the wall clock.
	Clock clock.Clock
	// RetransmitInterval is how long a request waits for its quorum before
	// re-driving its messages. Default 100 ms.
	RetransmitInterval time.Duration
	// BatchInterval, when positive, enables §3.6 per-proposer batching:
	// commands buffer locally per key and flush every interval, one
	// protocol run per key per batch. The paper's evaluation uses 5 ms.
	BatchInterval time.Duration
	// Shards is the number of independent key-sharded event loops the
	// node runs. Keys hash to a shard; each shard owns its replicas,
	// timers, batches, and outbox with no cross-shard locks on the hot
	// path, so different keys' protocol work spreads across cores
	// (the per-object independence the paper's protocol guarantees —
	// replicas of different keys share nothing). Zero selects the
	// CRDTSMR_SHARDS environment variable when set, else
	// runtime.GOMAXPROCS(0). Single-key deployments gain nothing from
	// more than one shard.
	Shards int
	// StateTransfer selects the replica-wire state-transfer strategy for
	// every key: full payloads (default), digest-suppressed, or delta
	// (docs/PROTOCOL.md §3). It is copied into Options.Transfer unless
	// Options already selects a non-default mode.
	StateTransfer core.StateTransfer
	// DataDir, when non-empty, makes the node durable: every object's
	// acceptor payload and consensus metadata is snapshotted to this
	// directory after each durable-state transition — before the
	// resulting protocol messages leave the node, so nothing is promised
	// to a peer that the disk does not hold — and reloaded at startup and
	// by Restart (docs/ARCHITECTURE.md, "Recovery lifecycle"). Empty
	// disables persistence: a crashed node can only Recover with its
	// in-memory state, never Restart.
	DataDir string
	// PersistSync selects the snapshot sync policy (persist.SyncNone by
	// default: atomic renames survive process crashes; SyncAlways also
	// survives power loss).
	PersistSync persist.SyncPolicy
	// SerialPersist reverts durability to the synchronous
	// write-inside-the-event-loop path: each key's snapshot is saved
	// before the loop moves to the next event, so one key's disk flush
	// stalls every key on the shard. The default (false) runs a per-shard
	// persister goroutine with group commit instead: snapshot writes for
	// many keys accumulate while the disk is busy and land in one batch
	// with a single directory sync, overlapping disk latency with
	// protocol processing. Both paths uphold persist-before-ack per key.
	// This knob exists as the measured baseline of `bench -figure shards`
	// and as an operational escape hatch.
	SerialPersist bool
	// PersistWriteDelay emulates device flush latency for benchmarks and
	// tests: every persist.Store.Save sleeps this long, and every
	// SaveBatch sleeps it once for the whole batch (the group-commit
	// advantage under measurement). Zero (the default) for real disks.
	PersistWriteDelay time.Duration
	// Recover selects how corrupt snapshot files are treated when
	// loading: fail startup (persist.RecoverStrict, the default) or skip
	// them so the affected keys start fresh and re-learn from the
	// cluster (persist.RecoverIgnoreCorrupt, an explicit operator
	// decision).
	Recover persist.RecoverPolicy
	// LinkBudget, when positive, caps each outbound replica link at this
	// many payload bytes per second (token bucket, capacity LinkBurst).
	// Envelopes over budget are delayed and coalesced per key instead of
	// flooding the wire — see docs/ARCHITECTURE.md, "Overload and
	// backpressure". The budget divides evenly across shards (each shard
	// paces its own keys' traffic independently), so a single hot key is
	// governed by its shard's slice. Zero disables budgeting.
	LinkBudget int
	// LinkBurst is the bucket capacity in bytes. Defaults to one second
	// of LinkBudget; values below LinkBudget/10 are raised to it.
	LinkBurst int

	// persistHook, when set by tests, is installed as the snapshot
	// store's BeforeBatchRename hook: it runs after a group-commit
	// batch's temp files are written but before any rename, modeling a
	// crash that tears the whole batch.
	persistHook func(keys []string) error
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 100 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = defaultShards()
	}
	if c.Options.Transfer == core.TransferFull {
		c.Options.Transfer = c.StateTransfer
	}
	if c.LinkBudget > 0 && c.LinkBurst <= 0 {
		c.LinkBurst = c.LinkBudget
	}
	return c
}

// defaultShards resolves Config.Shards when unset: the CRDTSMR_SHARDS
// environment variable (the CI matrix knob), else one shard per
// schedulable CPU.
func defaultShards() int {
	if v := os.Getenv("CRDTSMR_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// initialFor resolves the initial payload for an object key.
func (c Config) initialFor(key string) (crdt.State, error) {
	if key == DefaultKey {
		return c.Initial, nil
	}
	if c.InitialForKey != nil {
		if s := c.InitialForKey(key); s != nil {
			return s, nil
		}
		return nil, fmt.Errorf("cluster: no initial state for key %q", key)
	}
	// States are immutable, but Initial may already hold data; fresh keys
	// must start from the type's bottom element so every replica agrees.
	return crdt.New(c.Initial.TypeName())
}

// Node is one running replica of the whole keyspace: Config.Shards
// independent key-sharded event loops over a single transport
// connection. Keys hash to a shard; each shard drives its keys'
// core.Replica instances, timers, batches, and (on durable nodes) its
// own group-commit persister, so one key's protocol work or disk flush
// never stalls keys on other shards (docs/ARCHITECTURE.md, "Threading
// model").
type Node struct {
	id   transport.NodeID
	cfg  Config
	conn transport.Conn

	shards []*shard
	quit   chan struct{}
	wg     sync.WaitGroup

	store *persist.Store // nil when cfg.DataDir is empty

	// The node's configuration view: the greatest membership configuration
	// any of its replicas has adopted. Configuration is a per-key fact in
	// the protocol (each key's replica group reconfigures through its own
	// joint-quorum round); the node view exists so replicas instantiated
	// AFTER a reconfiguration start from the current member set instead of
	// the boot-time Config.Members — a lazily created key on a frozen
	// member list would address removed peers and count quorums of a group
	// that no longer exists. Any skew between the view and an individual
	// key is repaired by the epoch anti-entropy on the first frame
	// exchanged for that key.
	cfgMu  sync.RWMutex
	curCfg core.Config
	// forgotten holds peers declared down by ForgetPeer and not heard from
	// since. Replicas instantiated while a peer is forgotten apply the
	// same ForgetPeer treatment at birth, so declaring a peer down is a
	// node-wide fact rather than a property of the replicas that happened
	// to exist at the time. A frame from the peer clears it.
	forgotten map[transport.NodeID]struct{}
	// flushGen numbers the batch-flush cadence. Each (re)start of the
	// flush chain bumps it and stamps its events; a flush event whose
	// generation is stale belongs to a superseded cadence (the membership
	// changed, moving this node's slot in the window) and is dropped.
	flushGen atomic.Uint64

	// inboundDropped counts replica frames dropped because a shard's
	// event queue was full; malformedFrames counts frames whose object
	// envelope failed to decode. Both are written from the transport's
	// delivery goroutine (routing happens there, before any loop), hence
	// atomic.
	inboundDropped  atomic.Uint64
	malformedFrames atomic.Uint64
	// skippedSnaps counts corrupt snapshot files skipped under
	// RecoverIgnoreCorrupt, across startup and every Restart. Written at
	// startup and from Restart's caller goroutine, hence atomic.
	skippedSnaps atomic.Uint64
}

// keyedNotify is one deferred client completion, tagged with the object
// key whose event produced it so a failed snapshot write can withhold
// exactly that key's completions.
type keyedNotify struct {
	key string
	fn  func()
}

type nodeEvent struct {
	kind      eventKind
	from      transport.NodeID
	payload   []byte
	key       string
	update    *updateOp
	query     *queryOp
	reqID     uint64
	crash     bool
	queries   bool                  // evFlush: flush the query batches (else the update batches)
	gen       uint64                // evFlush: the flush-chain generation this event belongs to
	reconfig  *reconfigOp           // evReconfig: this node-wide reconfiguration
	snaps     []persist.KeySnapshot // evRestore: this shard's keys to rehydrate
	restarted chan error            // evRestartPrep / evRestore: receives the phase result
}

// reconfigOp is one node-wide reconfiguration fanned out to every shard.
// Each shard submits the new member set to each of its instantiated keys
// and reports exactly one aggregate error (nil on success) once all of its
// keys' reconfiguration rounds have committed or failed.
type reconfigOp struct {
	members []transport.NodeID
	done    chan error // buffered to the shard count; one send per shard
}

type eventKind uint8

const (
	evInbound eventKind = iota + 1
	evUpdate
	evQuery
	evTimeout
	evFlush
	evSetCrashed
	evRestartPrep // drop volatile state, quiesce the persister, stay crashed
	evRestore     // rehydrate from the given snapshots and resume serving
	evBudget      // drain the link budget queue of peer `from`
	evReconfig    // drive this shard's keys through a membership change
)

type updateOp struct {
	fu   crdt.Update
	done chan updateResult
}

type updateResult struct {
	stats core.UpdateStats
	err   error
}

type queryOp struct {
	done chan queryResult
}

type queryResult struct {
	state crdt.State
	stats core.QueryStats
	err   error
}

// NewNode creates and starts a node. join binds the node's ID and inbound
// handler to a transport (e.g. a wrapper around Mesh.Join or NewTCP).
func NewNode(id transport.NodeID, cfg Config, join func(transport.NodeID, transport.Handler) transport.Conn) (*Node, error) {
	cfg = cfg.withDefaults()
	n := &Node{
		id:        id,
		cfg:       cfg,
		quit:      make(chan struct{}),
		forgotten: make(map[transport.NodeID]struct{}),
	}
	if !cfg.Joining {
		n.curCfg = core.Config{Members: append([]transport.NodeID(nil), cfg.Members...)}
	}
	if cfg.DataDir != "" {
		store, err := persist.Open(cfg.DataDir, persist.Options{
			Sync:              cfg.PersistSync,
			WriteDelay:        cfg.PersistWriteDelay,
			BeforeBatchRename: cfg.persistHook,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", id, err)
		}
		n.store = store
	}
	n.shards = make([]*shard, cfg.Shards)
	for i := range n.shards {
		n.shards[i] = newShard(n, i)
	}
	// Instantiate the default object eagerly: it validates the member list
	// and initial state once, at startup, rather than on the first command.
	// A joiner starts it with the empty configuration instead — it must
	// refuse commands until reconfigured in.
	var rep *core.Replica
	var err error
	if cfg.Joining {
		rep, err = core.NewReplicaConfig(id, core.Config{}, cfg.Initial, cfg.Options)
	} else {
		rep, err = core.NewReplica(id, cfg.Members, cfg.Initial, cfg.Options)
	}
	if err != nil {
		return nil, err
	}
	n.shardOf(DefaultKey).replicas[DefaultKey] = rep
	// Rehydrate before joining the transport: once the first message can
	// arrive, every key's acceptor must already hold its pre-crash round.
	// The shards' loops have not started, so installing directly is safe.
	if n.store != nil {
		snaps, skipped, err := n.store.LoadAll(cfg.Recover)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", id, err)
		}
		n.skippedSnaps.Add(uint64(skipped))
		for _, ks := range snaps {
			if err := n.shardOf(ks.Key).installSnapshot(ks); err != nil {
				return nil, err
			}
		}
	}
	n.conn = join(id, n.handleInbound)
	for _, s := range n.shards {
		n.wg.Add(1)
		go s.loop()
		if s.persistq != nil {
			n.wg.Add(1)
			go s.persister()
		}
	}
	n.startFlushChain()
	return n, nil
}

// startFlushChain (re)starts the batch-flush cadence under a fresh
// generation, de-phasing this node's flush cycle from its peers':
// replicas that flush in lockstep run their query protocols concurrently
// and deny each other's votes every window. Spreading the phases across
// the window keeps the per-window protocol runs of different proposers
// disjoint in time. Called at startup and again whenever the member set
// changes (the node's slot in the window moves with its member index);
// events of the superseded generation are dropped by the evFlush handler,
// so exactly one chain drives each shard.
func (n *Node) startFlushChain() {
	if n.cfg.BatchInterval <= 0 {
		return
	}
	gen := n.flushGen.Add(1)
	offset := flushOffset(n.currentConfig().Members, n.id, n.cfg.BatchInterval)
	for _, s := range n.shards {
		s := s
		n.cfg.Clock.AfterFunc(offset, func() {
			s.post(nodeEvent{kind: evFlush, gen: gen})
		})
	}
}

// flushOffset places this node's first flush slot within the batch
// window, by member index. The first slot starts a fraction of a window
// in, never at zero — a flush racing node startup could ship a batch the
// instant a client enqueues it. A node outside the member set (a joiner,
// or a node a reconfiguration removed) and an empty view get one full
// window: there is no slot to claim and nothing to de-phase against.
func flushOffset(members []transport.NodeID, id transport.NodeID, interval time.Duration) time.Duration {
	idx := memberIndex(members, id)
	if len(members) == 0 || idx < 0 {
		return interval
	}
	return interval * time.Duration(idx+1) / time.Duration(len(members))
}

// memberIndex returns id's position in members, or -1 when absent.
func memberIndex(members []transport.NodeID, id transport.NodeID) int {
	for i, m := range members {
		if m == id {
			return i
		}
	}
	return -1
}

// currentConfig returns the node's configuration view. The returned
// member slice is shared and must be treated as immutable.
func (n *Node) currentConfig() core.Config {
	n.cfgMu.RLock()
	defer n.cfgMu.RUnlock()
	return n.curCfg
}

// noteConfig folds one replica's adopted configuration into the node
// view, keeping the greatest. When the member set actually changed, the
// batch-flush cadence restarts so this node's flush slot tracks its index
// in the new membership (and its window length the new member count).
func (n *Node) noteConfig(cfg core.Config) {
	n.cfgMu.Lock()
	if !cfg.Supersedes(n.curCfg) {
		n.cfgMu.Unlock()
		return
	}
	changed := !sameMembers(n.curCfg.Members, cfg.Members)
	n.curCfg = cfg
	n.cfgMu.Unlock()
	if changed {
		n.startFlushChain()
	}
}

func sameMembers(a, b []transport.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Members returns the node's current membership view — the member set of
// the greatest configuration any of its replicas has adopted (boot-time
// Config.Members until the first reconfiguration commits).
func (n *Node) Members() []transport.NodeID {
	cfg := n.currentConfig()
	return append([]transport.NodeID(nil), cfg.Members...)
}

// Epoch returns the configuration epoch of the node's membership view.
func (n *Node) Epoch() uint64 { return n.currentConfig().Epoch }

// Reconfigure proposes the given member set to every object instantiated
// on this node and blocks until each key's reconfiguration round commits
// under the joint quorum (a majority of the old member set AND a majority
// of the new one must adopt it), or fails. New members learn each key's
// full payload from the configuration push itself — reconfiguring a
// joiner in IS its state bootstrap (docs/PROTOCOL.md §6).
//
// Reconfigure must be issued on a current member. Concurrent proposals
// for the same key converge deterministically but the loser surfaces
// core.ErrConfigConflict; operators are expected to serialize membership
// changes through one admin at a time. Keys instantiated on other nodes
// but never on this one are repaired lazily, by the epoch anti-entropy on
// their next frame.
func (n *Node) Reconfigure(ctx context.Context, members []transport.NodeID) error {
	op := &reconfigOp{
		members: append([]transport.NodeID(nil), members...),
		done:    make(chan error, len(n.shards)),
	}
	for _, s := range n.shards {
		if err := s.submit(ctx, nodeEvent{kind: evReconfig, reconfig: op}); err != nil {
			return err
		}
	}
	var errs []error
	for range n.shards {
		select {
		case err := <-op.done:
			if err != nil {
				errs = append(errs, err)
			}
		case <-ctx.Done():
			return ctx.Err()
		case <-n.quit:
			return ErrStopped
		}
	}
	return errors.Join(errs...)
}

// forgottenPeers snapshots the peers currently declared down.
func (n *Node) forgottenPeers() []transport.NodeID {
	n.cfgMu.RLock()
	defer n.cfgMu.RUnlock()
	if len(n.forgotten) == 0 {
		return nil
	}
	out := make([]transport.NodeID, 0, len(n.forgotten))
	for id := range n.forgotten {
		out = append(out, id)
	}
	return out
}

// unforget clears a peer's down mark: a frame from it proves it is back,
// and every transfer assumption built from here on is fresh.
func (n *Node) unforget(id transport.NodeID) {
	n.cfgMu.RLock()
	_, down := n.forgotten[id]
	n.cfgMu.RUnlock()
	if !down {
		return
	}
	n.cfgMu.Lock()
	delete(n.forgotten, id)
	n.cfgMu.Unlock()
}

// ID returns the node's ID.
func (n *Node) ID() transport.NodeID { return n.id }

// Shards returns the number of event-loop shards the node runs.
func (n *Node) Shards() int { return len(n.shards) }

// shardFor maps an object key to its owning shard index (FNV-1a). The
// mapping is a pure function of the key and the shard count, so every
// command and inbound message for a key lands on the same loop.
func (n *Node) shardFor(key string) int {
	if len(n.shards) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(len(n.shards)))
}

func (n *Node) shardOf(key string) *shard { return n.shards[n.shardFor(key)] }

// Counters returns a loop-synchronized snapshot of the protocol counters,
// summed across every object instantiated on this node, aggregated shard
// by shard in index order. Frames dropped before reaching a replica — an
// undecodable object envelope, or a key the local configuration rejects —
// count toward MalformedMsgs.
func (n *Node) Counters() core.Counters {
	var sum core.Counters
	for _, s := range n.shards {
		s.call(func() {
			for _, rep := range s.replicas {
				sum.Add(rep.Counters())
			}
			sum.MalformedMsgs += s.droppedFrames
			for _, b := range s.budgets {
				sum.BudgetDelayed += b.delayed
				sum.BudgetCoalesced += b.coalesced
			}
		})
	}
	sum.MalformedMsgs += n.malformedFrames.Load()
	sum.InboundDropped += n.inboundDropped.Load()
	return sum
}

// Keys returns the object keys instantiated on this node so far, sorted.
// A key appears once this node has served a command for it or received a
// protocol message about it.
func (n *Node) Keys() []string {
	var keys []string
	for _, s := range n.shards {
		s.call(func() {
			for k := range s.replicas {
				keys = append(keys, k)
			}
		})
	}
	sort.Strings(keys)
	return keys
}

// Objects returns the number of object replicas instantiated on this node.
func (n *Node) Objects() int {
	count := 0
	for _, s := range n.shards {
		s.call(func() { count += len(s.replicas) })
	}
	return count
}

// Update submits an update command against the default object and blocks
// until it completes or ctx is done.
func (n *Node) Update(ctx context.Context, fu crdt.Update) (core.UpdateStats, error) {
	return n.UpdateKey(ctx, DefaultKey, fu)
}

// UpdateKey submits an update command against the object stored under key
// and blocks until it is durable on a quorum or ctx is done.
func (n *Node) UpdateKey(ctx context.Context, key string, fu crdt.Update) (core.UpdateStats, error) {
	op := &updateOp{fu: fu, done: make(chan updateResult, 1)}
	if err := n.shardOf(key).submit(ctx, nodeEvent{kind: evUpdate, key: key, update: op}); err != nil {
		return core.UpdateStats{}, err
	}
	select {
	case res := <-op.done:
		return res.stats, res.err
	case <-ctx.Done():
		return core.UpdateStats{}, ctx.Err()
	case <-n.quit:
		return core.UpdateStats{}, ErrStopped
	}
}

// Query submits a query command against the default object and blocks until
// a state is learned or ctx is done.
func (n *Node) Query(ctx context.Context) (crdt.State, core.QueryStats, error) {
	return n.QueryKey(ctx, DefaultKey)
}

// QueryKey submits a query command against the object stored under key and
// blocks until a linearizable state is learned or ctx is done. The returned
// state must be treated as immutable.
func (n *Node) QueryKey(ctx context.Context, key string) (crdt.State, core.QueryStats, error) {
	op := &queryOp{done: make(chan queryResult, 1)}
	if err := n.shardOf(key).submit(ctx, nodeEvent{kind: evQuery, key: key, query: op}); err != nil {
		return nil, core.QueryStats{}, err
	}
	select {
	case res := <-op.done:
		return res.state, res.stats, res.err
	case <-ctx.Done():
		return nil, core.QueryStats{}, ctx.Err()
	case <-n.quit:
		return nil, core.QueryStats{}, ErrStopped
	}
}

// ForgetPeer drops the digest/delta state-transfer caches every object
// replica on this node holds about the given peer — the per-key per-peer
// digest cache of docs/PROTOCOL.md §3. The runtime calls it when it
// declares a peer down; a peer that returns with its state intact simply
// re-earns its cache entries, and one that returns empty is caught by the
// MERGE-NACK fallback either way, so forgetting is purely conservative.
// The drop fans out to the shards in index order.
//
// The peer stays marked down until the next frame arrives from it, and
// the mark applies to replicas instantiated in between: a key first
// touched after the peer was declared down starts with the same forgotten
// treatment, rather than resurrecting per-peer transfer assumptions a
// node-wide down declaration was meant to clear.
func (n *Node) ForgetPeer(id transport.NodeID) {
	n.cfgMu.Lock()
	n.forgotten[id] = struct{}{}
	n.cfgMu.Unlock()
	for _, s := range n.shards {
		s.call(func() {
			for _, rep := range s.replicas {
				rep.ForgetPeer(id)
			}
		})
	}
}

// SetCrashed simulates a crash (true) or recovery (false). While crashed
// the node drops inbound messages and fails commands, but keeps its
// acceptor state — the paper assumes the crash-recovery model in which
// processes retain their internal state across failures (§2.1). The flag
// fans out to the shards in index order; commands submitted after
// SetCrashed returns observe it on every shard.
func (n *Node) SetCrashed(crashed bool) {
	for _, s := range n.shards {
		s.post(nodeEvent{kind: evSetCrashed, crash: crashed})
	}
}

// Restart models a full process restart on a durable node: every volatile
// structure is dropped — in-flight requests fail over to their clients,
// batches are rejected, all per-key replicas and their transfer caches
// are discarded, pending group-commit batches are flushed to disk and
// their surviving completions delivered — and the keyspace is rehydrated
// from the snapshot directory, exactly as a freshly exec'd process with
// the same -data-dir would come up. The transport binding survives (peers
// redial a real process anyway). This is the paper's recovery claim at
// runtime: no log replay, just one snapshot read per key.
//
// Restart requires a DataDir. If rehydration fails (a corrupt snapshot
// under the strict recover policy), the node stays crashed — refusing to
// serve is the only safe answer when the disk cannot reproduce what was
// promised to the quorum — and the error is returned.
//
// Restart runs in two phases, both travelling each shard's event channel
// (never the side-band call path), so it serializes behind an immediately
// preceding SetCrashed(true): first every shard drops its volatile state,
// quiesces its persister, and parks crashed; then the snapshot directory
// is read once and each shard rehydrates its own keys and resumes.
func (n *Node) Restart() error {
	if n.store == nil {
		return errors.New("cluster: Restart requires a DataDir (volatile nodes can only Recover)")
	}
	if err := n.restartPhase(func(s *shard) nodeEvent {
		return nodeEvent{kind: evRestartPrep}
	}); err != nil {
		return err
	}
	// Every shard is parked crashed and every persister drained: the
	// directory is quiescent, so one scan serves all shards.
	snaps, skipped, err := n.store.LoadAll(n.cfg.Recover)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", n.id, err)
	}
	n.skippedSnaps.Add(uint64(skipped))
	byShard := make([][]persist.KeySnapshot, len(n.shards))
	for _, ks := range snaps {
		i := n.shardFor(ks.Key)
		byShard[i] = append(byShard[i], ks)
	}
	return n.restartPhase(func(s *shard) nodeEvent {
		return nodeEvent{kind: evRestore, snaps: byShard[s.idx]}
	})
}

// restartPhase posts one restart event to every shard, then collects
// every result. Posting everywhere before waiting anywhere keeps the
// phases concurrent across shards while the per-shard event order is
// preserved.
func (n *Node) restartPhase(ev func(*shard) nodeEvent) error {
	chans := make([]chan error, len(n.shards))
	for i, s := range n.shards {
		e := ev(s)
		e.restarted = make(chan error, 1)
		chans[i] = e.restarted
		select {
		case s.events <- e:
		case <-n.quit:
			return ErrStopped
		}
	}
	var errs []error
	for _, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				errs = append(errs, err)
			}
		case <-n.quit:
			return ErrStopped
		}
	}
	return errors.Join(errs...)
}

// PersistErrors returns how many snapshot writes have failed. Each
// failure dropped the affected key's outbound messages and withheld its
// client completions for that event (degrading to message loss, which
// the protocol tolerates) rather than promising peers or clients state
// the disk does not hold.
func (n *Node) PersistErrors() uint64 {
	var v uint64
	for _, s := range n.shards {
		s.call(func() { v += s.persistErrs })
	}
	return v
}

// SkippedSnapshots returns how many corrupt snapshot files were skipped
// under persist.RecoverIgnoreCorrupt, across startup and every Restart.
// A nonzero value means those keys came up with less state than the disk
// once held and re-learned from the cluster; operators should surface it
// (crdtsmrd prints it at startup).
func (n *Node) SkippedSnapshots() uint64 {
	return n.skippedSnaps.Load()
}

// Close stops every shard's event loop and persister and detaches from
// the transport.
func (n *Node) Close() error {
	select {
	case <-n.quit:
		n.wg.Wait()
		return nil
	default:
	}
	close(n.quit)
	n.wg.Wait()
	return n.conn.Close()
}

// handleInbound runs on the transport's delivery goroutine. It decodes
// the object envelope and routes the frame to the owning shard's queue.
// It must never block: the same goroutine delivers replica-to-replica
// protocol traffic, so parking it on a full event queue would let one
// hot shard stall the replica wire cluster-wide (head-of-line blocking
// across planes). A full queue instead drops the frame and counts it —
// the transport is best-effort already, and retransmission recovers
// exactly as it does from network loss.
func (n *Node) handleInbound(from transport.NodeID, payload []byte) {
	key, inner, err := wire.UnpackEnvelope(payload)
	if err != nil {
		// Malformed frame: drop, per the unreliable-network model, but
		// keep it visible in Counters — a peer speaking a different
		// wire format would otherwise be undiagnosable.
		n.malformedFrames.Add(1)
		return
	}
	n.unforget(from)
	s := n.shardOf(key)
	select {
	case s.events <- nodeEvent{kind: evInbound, from: from, key: key, payload: inner}:
	case <-n.quit:
	default:
		n.inboundDropped.Add(1)
	}
}

// String renders the node for logs.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.id) }
