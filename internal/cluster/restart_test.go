package cluster

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/transport"
)

func incBy(replica string, n uint64) crdt.Update {
	return func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(replica, n), nil
	}
}

func durableCluster(t *testing.T, dataDir string, recover persist.RecoverPolicy) (*Cluster, *transport.Mesh) {
	t.Helper()
	mesh := transport.NewMesh(transport.WithSeed(7))
	cl, err := New(mesh, Config{
		Members:            []transport.NodeID{"n1", "n2", "n3"},
		Initial:            crdt.NewGCounter(),
		RetransmitInterval: 20 * time.Millisecond,
		DataDir:            dataDir,
		Recover:            recover,
	})
	if err != nil {
		mesh.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		mesh.Close()
	})
	return cl, mesh
}

// TestRestartAllNodesRecoversFromDiskAlone is the strongest recovery
// claim the in-process harness can make: after EVERY node crashes and
// restarts, all volatile state in the cluster is gone, so the values the
// restarted cluster serves can only have come from the snapshot files.
func TestRestartAllNodesRecoversFromDiskAlone(t *testing.T) {
	cl, _ := durableCluster(t, t.TempDir(), persist.RecoverStrict)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	ids := []transport.NodeID{"n1", "n2", "n3"}
	if _, err := cl.Node("n1").UpdateKey(ctx, "k1", incBy("n1", 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Node("n2").UpdateKey(ctx, "k2", incBy("n2", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Node("n3").Update(ctx, incBy("n3", 1)); err != nil {
		t.Fatal(err)
	}

	for _, id := range ids {
		cl.Crash(id)
	}
	for _, id := range ids {
		if err := cl.Restart(id); err != nil {
			t.Fatalf("restart %s: %v", id, err)
		}
	}

	want := map[string]uint64{"k1": 3, "k2": 5, DefaultKey: 1}
	for _, id := range ids {
		for key, v := range want {
			s, _, err := cl.Node(id).QueryKey(ctx, key)
			if err != nil {
				t.Fatalf("query %q at %s after full restart: %v", key, id, err)
			}
			if got := s.(*crdt.GCounter).Value(); got != v {
				t.Fatalf("key %q at %s = %d after full restart, want %d", key, id, got, v)
			}
		}
		if errs := cl.Node(id).PersistErrors(); errs != 0 {
			t.Fatalf("%s reported %d persist errors", id, errs)
		}
	}
}

// TestRestartedNodeCatchesUpOnMissedUpdates: a node that was down while
// the majority kept committing must, after Restart, serve reads covering
// both its pre-crash snapshot and everything it missed.
func TestRestartedNodeCatchesUpOnMissedUpdates(t *testing.T) {
	cl, _ := durableCluster(t, t.TempDir(), persist.RecoverStrict)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := cl.Node("n1").UpdateKey(ctx, "k", incBy("n1", 2)); err != nil {
		t.Fatal(err)
	}
	cl.Crash("n1")
	if _, err := cl.Node("n2").UpdateKey(ctx, "k", incBy("n2", 4)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Restart("n1"); err != nil {
		t.Fatal(err)
	}
	s, _, err := cl.Node("n1").QueryKey(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 6 {
		t.Fatalf("restarted node read %d, want 6 (2 pre-crash + 4 missed)", got)
	}
}

// TestRestartRequiresDataDir: a volatile cluster cannot Restart — only
// Crash/Recover with retained memory.
func TestRestartRequiresDataDir(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cl, err := New(mesh, Config{
		Members: []transport.NodeID{"n1", "n2", "n3"},
		Initial: crdt.NewGCounter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Restart("n1"); err == nil {
		t.Fatal("Restart succeeded without a DataDir")
	}
	if err := cl.Restart("nope"); err == nil {
		t.Fatal("Restart of unknown node succeeded")
	}
}

// TestRestartCorruptSnapshotStrict: under the default strict policy a
// corrupted snapshot file must fail Restart with a typed error and leave
// the node refusing to serve — never silently up with less state than it
// promised a quorum it had.
func TestRestartCorruptSnapshotStrict(t *testing.T) {
	dataDir := t.TempDir()
	cl, _ := durableCluster(t, dataDir, persist.RecoverStrict)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := cl.Node("n1").UpdateKey(ctx, "k", incBy("n1", 7)); err != nil {
		t.Fatal(err)
	}
	corruptSnapshot(t, filepath.Join(dataDir, "n1"), "k")

	cl.Crash("n1")
	err := cl.Restart("n1")
	if !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("restart err = %v, want ErrCorrupt", err)
	}
	shortCtx, cancel2 := context.WithTimeout(ctx, time.Second)
	defer cancel2()
	if _, _, err := cl.Node("n1").QueryKey(shortCtx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("query on failed-restart node: %v, want ErrUnavailable", err)
	}
}

// TestRestartCorruptSnapshotIgnored: with the explicit ignore-corrupt
// policy the node comes up, the corrupted key starts fresh locally, and a
// quorum read still returns the true value (the other replicas hold it).
func TestRestartCorruptSnapshotIgnored(t *testing.T) {
	dataDir := t.TempDir()
	cl, _ := durableCluster(t, dataDir, persist.RecoverIgnoreCorrupt)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := cl.Node("n1").UpdateKey(ctx, "k", incBy("n1", 7)); err != nil {
		t.Fatal(err)
	}
	corruptSnapshot(t, filepath.Join(dataDir, "n1"), "k")

	cl.Crash("n1")
	if err := cl.Restart("n1"); err != nil {
		t.Fatalf("ignore-corrupt restart failed: %v", err)
	}
	s, _, err := cl.Node("n1").QueryKey(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 7 {
		t.Fatalf("quorum read after ignore-corrupt restart = %d, want 7", got)
	}
}

// corruptSnapshot flips a byte in the middle of one key's snapshot file.
func corruptSnapshot(t *testing.T, nodeDir, key string) {
	t.Helper()
	st, err := persist.Open(nodeDir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := st.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot for %q not on disk: %v", key, err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPersistFailureWithholdsAcknowledgement: when a snapshot write
// fails, the node must not tell the client the update succeeded — the
// command times out (surfacing as uncertain at higher layers) and the
// failure is counted. Simulated by replacing the node's snapshot
// directory with a plain file, which defeats even a root process.
func TestPersistFailureWithholdsAcknowledgement(t *testing.T) {
	dataDir := t.TempDir()
	cl, _ := durableCluster(t, dataDir, persist.RecoverStrict)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := cl.Node("n1").UpdateKey(ctx, "k", incBy("n1", 1)); err != nil {
		t.Fatal(err)
	}

	// Break n1's snapshot directory: every subsequent save fails.
	n1dir := filepath.Join(dataDir, "n1")
	if err := os.RemoveAll(n1dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(n1dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	shortCtx, cancel2 := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel2()
	if _, err := cl.Node("n1").UpdateKey(shortCtx, "k", incBy("n1", 1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("update with broken disk returned %v, want deadline exceeded (withheld ack)", err)
	}
	if errs := cl.Node("n1").PersistErrors(); errs == 0 {
		t.Fatal("persist failure not counted")
	}
}

// TestRestartPreservesTypedKeys: keys of different payload types restore
// with their types intact (the snapshot embeds the self-describing
// marshal).
func TestRestartPreservesTypedKeys(t *testing.T) {
	mesh := transport.NewMesh(transport.WithSeed(9))
	defer mesh.Close()
	cl, err := New(mesh, Config{
		Members: []transport.NodeID{"n1", "n2", "n3"},
		Initial: crdt.NewGCounter(),
		InitialForKey: func(key string) crdt.State {
			if key == "set" {
				return crdt.NewGSet()
			}
			return crdt.NewGCounter()
		},
		RetransmitInterval: 20 * time.Millisecond,
		DataDir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := cl.Node("n1").UpdateKey(ctx, "set", func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GSet).Add("alice"), nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []transport.NodeID{"n1", "n2", "n3"} {
		cl.Crash(id)
	}
	for _, id := range []transport.NodeID{"n1", "n2", "n3"} {
		if err := cl.Restart(id); err != nil {
			t.Fatal(err)
		}
	}
	s, _, err := cl.Node("n2").QueryKey(ctx, "set")
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*crdt.GSet).Contains("alice") {
		t.Fatal("g-set key lost its element across a full restart")
	}
}
