package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// TestBatchQueriesShareOneProtocolRun checks the §3.6 batching claim that
// buffered commands do not travel over the network: all queries of a batch
// complete from a single learned state, so the number of protocol-level
// queries is far below the number of client reads.
func TestBatchQueriesShareOneProtocolRun(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = 5 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 20*time.Second)
	n1 := c.Node("n1")

	const readers = 16
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, _, err := n1.Query(ctx); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	counters := n1.Counters()
	if counters.Queries == 0 {
		t.Fatal("no protocol queries ran")
	}
	if counters.Queries >= readers*5 {
		t.Fatalf("batching ran %d protocol queries for %d client reads", counters.Queries, readers*5)
	}
}

// TestBatchMixedCommandsLinearizable interleaves batched updates and
// queries and checks the query results never regress and finally include
// everything.
func TestBatchMixedCommandsLinearizable(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = 2 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 30*time.Second)

	var mu sync.Mutex
	var lastSeen uint64
	var wg sync.WaitGroup
	const writers = 4
	const writes = 20
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := c.Nodes()[w%3]
			for i := 0; i < writes; i++ {
				if _, err := node.Update(ctx, incSelf(node)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		n2 := c.Node("n2")
		for i := 0; i < 15; i++ {
			s, _, err := n2.Query(ctx)
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			v := s.(*crdt.GCounter).Value()
			mu.Lock()
			if v < lastSeen {
				t.Errorf("reads at one node regressed: %d after %d", v, lastSeen)
			}
			lastSeen = v
			mu.Unlock()
		}
	}()
	wg.Wait()

	s, _, err := c.Node("n3").Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != writers*writes {
		t.Fatalf("final value = %d, want %d", got, writers*writes)
	}
}

// TestBatchFlushSurvivesIdlePeriods checks that the flush timer keeps
// rearming with empty batches and still serves commands afterwards.
func TestBatchFlushSurvivesIdlePeriods(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 10*time.Second)
	n1 := c.Node("n1")

	if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // many empty flush cycles
	if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
		t.Fatal(err)
	}
	s, _, err := n1.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
}

// TestCrashFailsBatchedCommands checks that buffered commands fail fast
// when the node crashes between enqueue and flush.
func TestCrashFailsBatchedCommands(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = time.Hour // flush never fires on its own
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n1 := c.Node("n1")

	errCh := make(chan error, 1)
	go func() {
		_, err := n1.Update(context.Background(), incSelf(n1))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the op enqueue
	n1.SetCrashed(true)
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("batched command succeeded on crashed node")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batched command hung through the crash")
	}
}
