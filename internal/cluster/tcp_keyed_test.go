package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// reservePorts picks n distinct loopback addresses by binding and
// immediately releasing listeners, so the nodes' TCP transports can be
// configured with each other's addresses up front.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return addrs
}

// TestKeyedStoreOverTCP exercises the multi-object surface end to end over
// real sockets: three nodes connected by the TCP transport serve several
// independent keys, each key's protocol messages multiplexed over the
// object-ID envelope on the nodes' single connections.
func TestKeyedStoreOverTCP(t *testing.T) {
	ids := members(3)
	addrs := reservePorts(t, 3)
	book := make(map[transport.NodeID]string, 3)
	for i, id := range ids {
		book[id] = addrs[i]
	}

	cfg := Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
	nodes := make([]*Node, 0, 3)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for _, id := range ids {
		node, err := NewNode(id, cfg, func(nid transport.NodeID, h transport.Handler) transport.Conn {
			peers := make(map[transport.NodeID]string)
			for p, a := range book {
				if p != nid {
					peers[p] = a
				}
			}
			tcp, err := transport.NewTCP(nid, book[nid], peers, h)
			if err != nil {
				t.Fatalf("tcp %s: %v", nid, err)
			}
			return tcp
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const nKeys = 8
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("tcp/%d", k)
		at := nodes[k%len(nodes)]
		slot := string(at.ID())
		if _, err := at.UpdateKey(ctx, key, func(s crdt.State) (crdt.State, error) {
			return s.(*crdt.GCounter).Inc(slot, uint64(k+1)), nil
		}); err != nil {
			t.Fatalf("update %s over TCP: %v", key, err)
		}
	}

	// Linearizable keyed reads at a different replica than the writer.
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("tcp/%d", k)
		reader := nodes[(k+1)%len(nodes)]
		s, _, err := reader.QueryKey(ctx, key)
		if err != nil {
			t.Fatalf("query %s over TCP: %v", key, err)
		}
		if got := s.(*crdt.GCounter).Value(); got != uint64(k+1) {
			t.Fatalf("key %s = %d, want %d", key, got, k+1)
		}
	}

	// Every node instantiated the keys lazily from inbound TCP frames.
	for _, n := range nodes {
		if got := n.Objects(); got < nKeys {
			t.Fatalf("node %s holds %d objects, want ≥ %d", n.ID(), got, nKeys)
		}
	}
}
