package cluster

import (
	"testing"
	"time"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// tcpNode pairs a Node with the TCP endpoint it joined through, so tests
// can edit the address book the way a deployment would (member-add on one
// member, hello handshake everywhere else).
type tcpNode struct {
	node *Node
	tcp  *transport.TCP
}

func newTCPNode(t *testing.T, id transport.NodeID, cfg Config) tcpNode {
	t.Helper()
	var tcp *transport.TCP
	n, err := NewNode(id, cfg, func(nid transport.NodeID, h transport.Handler) transport.Conn {
		tp, err := transport.NewTCP(nid, "127.0.0.1:0", nil, h)
		if err != nil {
			t.Fatalf("%s: %v", nid, err)
		}
		tcp = tp
		return tp
	})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return tcpNode{node: n, tcp: tcp}
}

// TestTCPReconfigureGrowLearnsDialBack pins the production join path that
// the in-process Mesh (a shared address space) structurally cannot
// exercise: over real sockets each endpoint holds its own address book,
// and when a joiner is admitted only the member that served the admission
// knows where the joiner listens. Every other member must learn a
// dial-back path from the joiner's transport hello (§1.1) the first time
// it is contacted — without that, their votes to the joiner drop on the
// floor and the joiner's quorum reads stall forever even though its own
// messages keep arriving everywhere.
func TestTCPReconfigureGrowLearnsDialBack(t *testing.T) {
	cfg := testConfig(3)
	nodes := map[transport.NodeID]tcpNode{
		"n1": newTCPNode(t, "n1", cfg),
		"n2": newTCPNode(t, "n2", cfg),
		"n3": newTCPNode(t, "n3", cfg),
	}
	// Symmetric static books among the founders, as -peers would set up.
	for id, a := range nodes {
		for id2, b := range nodes {
			if id != id2 {
				a.tcp.AddPeer(id2, b.tcp.Addr())
			}
		}
	}

	ctx := ctxWith(t, 30*time.Second)
	if _, err := nodes["n1"].node.UpdateKey(ctx, "k", incBy("n1", 7)); err != nil {
		t.Fatal(err)
	}

	// The joiner knows all founders; of the founders, only n1 (the member
	// serving the admission) is told the joiner's address.
	jcfg := cfg
	jcfg.Joining = true
	joiner := newTCPNode(t, "n4", jcfg)
	for id, a := range nodes {
		joiner.tcp.AddPeer(id, a.tcp.Addr())
	}
	nodes["n1"].tcp.AddPeer("n4", joiner.tcp.Addr())

	if err := nodes["n1"].node.Reconfigure(ctx, members(4)); err != nil {
		t.Fatalf("reconfigure 3→4: %v", err)
	}

	// The joiner's first read runs a full quorum round against peers that
	// never had it in their books; it completes only because its own
	// outbound connections taught them a dial-back path.
	s, err := waitServing(ctx, joiner.node, "k")
	if err != nil {
		t.Fatalf("joiner query after reconfigure: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 7 {
		t.Fatalf("joiner read %d, want 7 (bootstrap payload missing)", got)
	}
	if _, err := joiner.node.UpdateKey(ctx, "k", incBy("n4", 3)); err != nil {
		t.Fatalf("joiner update after reconfigure: %v", err)
	}
	s, _, err = nodes["n2"].node.QueryKey(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 10 {
		t.Fatalf("read %d after joiner update, want 10", got)
	}

	// Shrink away the admitting member: the joiner must keep serving with
	// a quorum drawn from peers it reached only via learned addresses.
	if err := nodes["n2"].node.Reconfigure(ctx, []transport.NodeID{"n2", "n3", "n4"}); err != nil {
		t.Fatalf("reconfigure 4→3: %v", err)
	}
	_ = nodes["n1"].node.Close()
	s, err = waitServing(ctx, joiner.node, "k")
	if err != nil {
		t.Fatalf("joiner query after shrink: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 10 {
		t.Fatalf("joiner read %d after shrink, want 10", got)
	}
	if _, err := joiner.node.UpdateKey(ctx, "k", incBy("n4", 1)); err != nil {
		t.Fatalf("joiner update after shrink: %v", err)
	}
}
