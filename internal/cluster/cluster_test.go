package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

func members(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}

func testConfig(n int) Config {
	return Config{
		Members:            members(n),
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
}

func incSelf(n *Node) crdt.Update {
	id := string(n.ID())
	return func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(id, 1), nil
	}
}

func ctxWith(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestClusterUpdateVisibleToQueryAnywhere(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := ctxWith(t, 5*time.Second)
	n1, n2 := c.Node("n1"), c.Node("n2")

	stats, err := n1.Update(ctx, incSelf(n1))
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if stats.RoundTrips != 1 {
		t.Fatalf("update RTTs = %d, want 1", stats.RoundTrips)
	}
	s, qstats, err := n2.Query(ctx)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("value = %d, want 1 (update visibility)", got)
	}
	if qstats.Attempts < 1 {
		t.Fatalf("stats = %+v", qstats)
	}
}

func TestClusterConcurrentClientsConverge(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := ctxWith(t, 30*time.Second)
	const clientsPerNode = 4
	const opsPerClient = 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	for _, n := range c.Nodes() {
		for i := 0; i < clientsPerNode; i++ {
			wg.Add(1)
			go func(n *Node) {
				defer wg.Done()
				for j := 0; j < opsPerClient; j++ {
					if _, err := n.Update(ctx, incSelf(n)); err != nil {
						failures.Add(1)
						return
					}
					if j%5 == 0 {
						if _, _, err := n.Query(ctx); err != nil {
							failures.Add(1)
							return
						}
					}
				}
			}(n)
		}
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d clients failed", failures.Load())
	}

	want := uint64(3 * clientsPerNode * opsPerClient)
	s, _, err := c.Node("n3").Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != want {
		t.Fatalf("final value = %d, want %d", got, want)
	}
}

func TestClusterBatchingCompletesAllCommands(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = 2 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := ctxWith(t, 30*time.Second)
	const clients = 8
	const ops = 10
	var wg sync.WaitGroup
	var failed atomic.Int64
	n1 := c.Node("n1")
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d clients failed", failed.Load())
	}
	s, _, err := c.Node("n2").Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != clients*ops {
		t.Fatalf("value = %d, want %d", got, clients*ops)
	}
	// Batching should have needed far fewer protocol runs than commands.
	counters := n1.Counters()
	if counters.Updates >= clients*ops {
		t.Fatalf("updates ran %d protocol rounds for %d commands; batching ineffective", counters.Updates, clients*ops)
	}
}

func TestClusterMinorityCrashContinues(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 10*time.Second)

	c.Crash("n3")
	n1 := c.Node("n1")
	if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
		t.Fatalf("update with minority crash: %v", err)
	}
	s, _, err := n1.Query(ctx)
	if err != nil {
		t.Fatalf("query with minority crash: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("value = %d", got)
	}

	// Commands on the crashed node fail fast.
	if _, err := c.Node("n3").Update(ctx, incSelf(c.Node("n3"))); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("crashed node err = %v, want ErrUnavailable", err)
	}
}

func TestClusterMajorityCrashBlocks(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Crash("n2")
	c.Crash("n3")
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	n1 := c.Node("n1")
	if _, err := n1.Update(ctx, incSelf(n1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded without a quorum", err)
	}
}

func TestClusterCrashRecoveryKeepsState(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 10*time.Second)

	n1, n3 := c.Node("n1"), c.Node("n3")
	if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
		t.Fatal(err)
	}
	c.Crash("n3")
	for i := 0; i < 3; i++ {
		if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Recover("n3")
	s, _, err := n3.Query(ctx)
	if err != nil {
		t.Fatalf("query on recovered node: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 4 {
		t.Fatalf("value = %d, want 4 (crash-recovery keeps state and learns the rest)", got)
	}
}

func TestClusterLossyNetwork(t *testing.T) {
	mesh := transport.NewMesh(transport.WithLoss(0.15), transport.WithSeed(11))
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.RetransmitInterval = 10 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 30*time.Second)

	n1, n2 := c.Node("n1"), c.Node("n2")
	for i := 0; i < 10; i++ {
		if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	s, _, err := n2.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 10 {
		t.Fatalf("value = %d, want 10 despite loss", got)
	}
}

func TestClusterDelayedNetwork(t *testing.T) {
	mesh := transport.NewMesh(transport.WithDelay(100*time.Microsecond, 2*time.Millisecond), transport.WithSeed(3))
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 20*time.Second)
	n1 := c.Node("n1")
	for i := 0; i < 5; i++ {
		if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
			t.Fatal(err)
		}
	}
	s, _, err := c.Node("n2").Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 5 {
		t.Fatalf("value = %d", got)
	}
}

func TestNodeCloseUnblocksClients(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Crash the other two so the request can never finish; then close.
	c.Crash("n2")
	c.Crash("n3")
	n1 := c.Node("n1")
	errCh := make(chan error, 1)
	go func() {
		_, err := n1.Update(context.Background(), incSelf(n1))
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after Close")
	}
	if err := n1.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestClusterContextCancel(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n1 := c.Node("n1")
	if _, _, err := n1.Query(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClusterQueryStatsPaths(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 10*time.Second)

	n1 := c.Node("n1")
	if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
		t.Fatal(err)
	}
	// Give the third MERGE a moment to land everywhere, then a quiet-state
	// query must use the consistent-quorum fast path.
	time.Sleep(50 * time.Millisecond)
	_, stats, err := n1.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Path != core.LearnConsistentQuorum || stats.RoundTrips != 1 {
		t.Fatalf("stats = %+v, want consistent quorum in 1 RTT", stats)
	}
}

func TestClusterUpdateFunctionError(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 5*time.Second)

	boom := errors.New("boom")
	_, err = c.Node("n1").Update(ctx, func(crdt.State) (crdt.State, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestNewClusterRejectsBadConfig(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Initial = nil
	if _, err := New(mesh, cfg); err == nil {
		t.Fatal("nil initial state accepted")
	}
}

// TestClusterStateTransferModes runs a mixed workload through every
// state-transfer mode over the mesh and requires identical linearizable
// results, with the fast-path counters proving the cheap frames were
// actually used, and a crash/recover cycle (which drops the survivors'
// digest caches via ForgetPeer) surviving in delta mode.
func TestClusterStateTransferModes(t *testing.T) {
	for _, mode := range []core.StateTransfer{core.TransferFull, core.TransferDigest, core.TransferDelta} {
		t.Run(mode.String(), func(t *testing.T) {
			mesh := transport.NewMesh(transport.WithSeed(5))
			defer mesh.Close()
			cfg := testConfig(3)
			cfg.StateTransfer = mode
			c, err := New(mesh, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			ctx := ctxWith(t, 20*time.Second)
			n1, n2, n3 := c.Node("n1"), c.Node("n2"), c.Node("n3")
			for i := 0; i < 6; i++ {
				if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
					t.Fatal(err)
				}
				if s, _, err := n2.Query(ctx); err != nil {
					t.Fatal(err)
				} else if v := s.(*crdt.GCounter).Value(); v != uint64(i+1) {
					t.Fatalf("read %d after %d updates", v, i+1)
				}
			}

			// Crash n3 (survivors forget it), keep working, recover, and
			// require it to catch up and serve.
			c.Crash("n3")
			if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
				t.Fatal(err)
			}
			c.Recover("n3")
			var v uint64
			deadline := time.Now().Add(10 * time.Second)
			for {
				s, _, err := n3.Query(ctx)
				if err == nil {
					v = s.(*crdt.GCounter).Value()
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("n3 never recovered: %v", err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			if v != 7 {
				t.Fatalf("recovered read = %d, want 7", v)
			}

			counters := n1.Counters()
			counters.Add(n2.Counters())
			counters.Add(n3.Counters())
			switch mode {
			case core.TransferFull:
				if counters.DigestReplies != 0 || counters.DeltaMerges != 0 || counters.DigestMerges != 0 {
					t.Fatalf("full mode used digest frames: %+v", counters)
				}
			case core.TransferDigest:
				if counters.DigestReplies == 0 {
					t.Fatal("digest mode never sent a digest-only reply")
				}
			case core.TransferDelta:
				if counters.DigestReplies == 0 || counters.DeltaMerges == 0 {
					t.Fatalf("delta mode fast paths unused: digestReplies=%d deltaMerges=%d",
						counters.DigestReplies, counters.DeltaMerges)
				}
			}
		})
	}
}
