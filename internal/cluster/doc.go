// Package cluster provides the asynchronous runtime that turns the pure
// protocol state machine of internal/core into live replicas. A node
// runs Config.Shards independent key-sharded event loops: keys hash to a
// shard, and each shard's loop serializes its keys' client commands,
// inbound messages, and timers (the paper's serial-process assumption,
// §3.2, per shard), with a retransmission timer per in-flight request
// covering message loss and an optional per-proposer batch (§3.6)
// amortizing protocol runs across commands. Shards share nothing on the
// hot path — per-object independence means replicas of different keys
// never interact — so different keys' protocol work spreads across
// cores (docs/ARCHITECTURE.md, "Threading model").
//
// A node is not limited to one replicated object: because the protocol
// keeps no cross-command log, replication instances compose per key. Each
// object key owns an independent core.Replica (payload + round counter,
// nothing more), all keys share the node's transport connection, and
// protocol messages carry an object-ID envelope (internal/wire) that
// routes them to the right instance. Replicas are instantiated lazily on
// first touch — locally by a command, remotely by the first inbound
// message for the key.
//
// Durable nodes (Config.DataDir) decouple disk latency from the loops:
// each shard owns a persister goroutine that commits snapshot writes in
// groups (persist.Store.SaveBatch — one directory sync per batch), and
// the loop releases a key's outbound envelopes and client completions
// only after the writes ordered before them have landed
// (persist-before-ack, kept per key). Config.SerialPersist restores the
// synchronous one-Save-per-event path for comparison.
package cluster
