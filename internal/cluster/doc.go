// Package cluster provides the asynchronous runtime that turns the pure
// protocol state machine of internal/core into live replicas: one event
// loop per node serializes client commands, inbound messages, and timers
// (the paper's serial-process assumption, §3.2), a retransmission timer per
// in-flight request covers message loss, and an optional per-proposer batch
// (§3.6) amortizes protocol runs across commands.
//
// A node is not limited to one replicated object: because the protocol
// keeps no cross-command log, replication instances compose per key. Each
// object key owns an independent core.Replica (payload + round counter,
// nothing more), all keys share the node's event loop and transport
// connection, and protocol messages carry an object-ID envelope
// (internal/wire) that routes them to the right instance. Replicas are
// instantiated lazily on first touch — locally by a command, remotely by
// the first inbound message for the key.
package cluster
