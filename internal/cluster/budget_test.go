package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

func TestLinkBudgetTakeRefillDrain(t *testing.T) {
	base := time.Unix(1000, 0)
	b := newLinkBudget(1000, 300, base) // 1000 B/s, 300 B bucket

	// The bucket starts full: 300 bytes are admitted immediately.
	if !b.take(base, 200) {
		t.Fatal("full bucket refused an affordable frame")
	}
	if !b.take(base, 100) {
		t.Fatal("bucket refused the frame that exactly drains it")
	}
	// Empty now; the next frame must wait for refill.
	if b.take(base, 50) {
		t.Fatal("empty bucket admitted a frame")
	}
	b.delay("k", make([]byte, 50))
	if got := b.delayed; got != 1 {
		t.Fatalf("delayed = %d, want 1", got)
	}
	// With a backlog, new traffic must not overtake it even when the
	// bucket could afford it.
	if b.take(base.Add(time.Second), 10) {
		t.Fatal("frame overtook the delayed backlog")
	}
	// eta for the 50-byte head at 1000 B/s from empty: 50 ms.
	if eta := b.eta(base); eta <= 0 || eta > 50*time.Millisecond {
		t.Fatalf("eta = %v, want (0, 50ms]", eta)
	}
	// After 100 ms the bucket holds 100 tokens: the head drains.
	out := b.drain(base.Add(100 * time.Millisecond))
	if len(out) != 1 || out[0].key != "k" || len(out[0].packed) != 50 {
		t.Fatalf("drain = %+v, want the one 50-byte frame for k", out)
	}
	if len(b.queue) != 0 {
		t.Fatalf("queue not empty after drain: %d", len(b.queue))
	}
	// Refill caps at the burst no matter how long the link idles: the
	// full burst is affordable, and nothing more at the same instant.
	idle := base.Add(time.Hour)
	if !b.take(idle, 300) {
		t.Fatal("bucket refused its full burst after a long idle")
	}
	if b.take(idle, 1) {
		t.Fatal("bucket held more than its burst capacity after a long idle")
	}
}

func TestLinkBudgetCoalescesSameKey(t *testing.T) {
	base := time.Unix(0, 0)
	b := newLinkBudget(1000, 100, base)
	if !b.take(base, 100) {
		t.Fatal("full bucket refused")
	}
	b.delay("a", []byte("old-a"))
	b.delay("b", []byte("old-b"))
	b.delay("a", []byte("new-a")) // replaces old-a in place
	if b.coalesced != 1 || b.delayed != 3 {
		t.Fatalf("coalesced=%d delayed=%d, want 1 and 3", b.coalesced, b.delayed)
	}
	out := b.drain(base.Add(time.Second))
	if len(out) != 2 {
		t.Fatalf("drained %d envelopes, want 2", len(out))
	}
	// FIFO order is by first enqueue; the payload is the newest.
	if out[0].key != "a" || string(out[0].packed) != "new-a" {
		t.Fatalf("head = %s %q, want a new-a", out[0].key, out[0].packed)
	}
	if out[1].key != "b" || string(out[1].packed) != "old-b" {
		t.Fatalf("second = %s %q, want b old-b", out[1].key, out[1].packed)
	}
}

func TestLinkBudgetOversizedFrame(t *testing.T) {
	base := time.Unix(0, 0)
	b := newLinkBudget(1000, 200, base)
	// A frame larger than the whole bucket is admitted when the bucket is
	// full — refusing it forever would wedge the link, not pace it.
	if !b.take(base, 500) {
		t.Fatal("full bucket refused an oversized frame")
	}
	if b.tokens != 0 {
		t.Fatalf("tokens = %v after oversized send, want 0", b.tokens)
	}
	// And it drains from the queue once the bucket refills to capacity.
	b.delay("k", make([]byte, 500))
	if out := b.drain(base.Add(50 * time.Millisecond)); len(out) != 0 {
		t.Fatal("oversized frame drained before the bucket was full")
	}
	if out := b.drain(base.Add(time.Second)); len(out) != 1 {
		t.Fatal("oversized frame never drained")
	}
}

// TestLinkBudgetDeterministic feeds the same seeded schedule of admits,
// delays, and drains through two budget instances and requires identical
// traces: the budget takes time as an argument and does no I/O of its
// own, so under a virtual clock the whole pacing layer must replay
// exactly (the same property the simulation suites rely on).
func TestLinkBudgetDeterministic(t *testing.T) {
	run := func() []string {
		base := time.Unix(0, 0)
		b := newLinkBudget(1000, 300, base)
		rng := rand.New(rand.NewSource(42))
		var trace []string
		now := base
		for i := 0; i < 1000; i++ {
			now = now.Add(time.Duration(rng.Intn(5000)) * time.Microsecond)
			key := fmt.Sprintf("k%d", rng.Intn(4))
			n := 50 + rng.Intn(300)
			if b.take(now, n) {
				trace = append(trace, fmt.Sprintf("send %s %d", key, n))
			} else {
				b.delay(key, make([]byte, n))
				trace = append(trace, fmt.Sprintf("queue %s %d", key, n))
			}
			if rng.Intn(3) == 0 {
				for _, d := range b.drain(now) {
					trace = append(trace, fmt.Sprintf("drain %s %d", d.key, len(d.packed)))
				}
				trace = append(trace, fmt.Sprintf("eta %v", b.eta(now)))
			}
		}
		return trace
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same-seed budget schedules diverged")
	}
}

// TestClusterLinkBudgetPacesAndConverges runs a cluster whose replica
// links are squeezed far below the workload's natural byte rate and
// requires (a) every command still completes and converges — pacing
// degrades latency, never correctness — and (b) the budget visibly
// worked: envelopes were delayed, and retransmissions of a paced key
// coalesced into the queued frame instead of piling up behind it.
func TestClusterLinkBudgetPacesAndConverges(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.LinkBudget = 512
	cfg.LinkBurst = 64 // one small frame, then the 512 B/s rate governs
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := ctxWith(t, 30*time.Second)
	n1 := c.Node("n1")
	const updates = 5
	for i := 0; i < updates; i++ {
		if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
			t.Fatalf("update %d under link budget: %v", i, err)
		}
	}
	s, _, err := c.Node("n2").Query(ctx)
	if err != nil {
		t.Fatalf("query under link budget: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != updates {
		t.Fatalf("value = %d, want %d", got, updates)
	}

	var sum, perNode = n1.Counters(), c.Node("n2").Counters()
	sum.Add(perNode)
	sum.Add(c.Node("n3").Counters())
	if sum.BudgetDelayed == 0 {
		t.Fatalf("no envelope was ever delayed: %+v", sum)
	}
	if sum.BudgetCoalesced == 0 {
		t.Fatalf("no delayed envelope coalesced (retransmits should have superseded queued frames): %+v", sum)
	}
}

// TestHandleInboundNeverBlocks is the regression test for the
// head-of-line bug: handleInbound runs on the transport's delivery
// goroutine, and with a shard's event loop wedged and its 8192-slot
// event queue full it used to park that goroutine — stalling every
// peer's replica traffic behind one slow node. It must instead drop,
// count, and return immediately, and the node must serve normally once
// the loop resumes.
func TestHandleInboundNeverBlocks(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n1 := c.Node("n1")

	// Wedge the default key's shard loop on a side-band call. Frames are
	// routed by envelope key before they reach any loop, so the flood
	// must target the wedged shard's keys to fill its queue.
	sh := n1.shardOf(DefaultKey)
	unblock := make(chan struct{})
	go sh.call(func() { <-unblock })
	time.Sleep(10 * time.Millisecond) // let the loop pick the call up

	// Flood well past the queue capacity from this (foreign) goroutine,
	// exactly as the transport's delivery goroutine would, with decodable
	// envelopes addressed to the wedged shard.
	frame := wire.PackEnvelope(DefaultKey, []byte("junk"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3*cap(sh.events); i++ {
			n1.handleInbound("n2", frame)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handleInbound blocked on a full event queue")
	}

	close(unblock)
	ctx := ctxWith(t, 10*time.Second)
	if _, err := n1.Update(ctx, incSelf(n1)); err != nil {
		t.Fatalf("node wedged after inbound flood: %v", err)
	}
	if got := n1.Counters().InboundDropped; got == 0 {
		t.Fatal("no dropped inbound frame was counted")
	}
}
