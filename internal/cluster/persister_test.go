package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/transport"
)

// TestAckImpliesDurableGroupCommit is the direct persist-before-ack
// probe for the asynchronous pipeline: after every acknowledged update,
// the key's snapshot on disk — read back cold, through the real decoder
// — must already cover that update. The emulated write delay keeps the
// persister slow enough that a broken barrier (acking off the in-memory
// state) would be caught immediately.
func TestAckImpliesDurableGroupCommit(t *testing.T) {
	dataDir := t.TempDir()
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(1)
	cfg.Members = []transport.NodeID{"n1"}
	cfg.Shards = 2
	cfg.DataDir = dataDir
	cfg.PersistWriteDelay = 2 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 20*time.Second)
	n1 := c.Node("n1")

	st, err := persist.Open(n1.store.Dir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const key = "durable"
	for i := uint64(1); i <= 5; i++ {
		if _, err := n1.UpdateKey(ctx, key, incBy("n1", 1)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		// The ack has been observed; nothing else writes this key, so the
		// directory is quiescent for it and a cold read is exact.
		snaps, _, err := st.LoadAll(persist.RecoverStrict)
		if err != nil {
			t.Fatalf("after ack %d: %v", i, err)
		}
		var got uint64
		found := false
		for _, ks := range snaps {
			if ks.Key == key {
				got = ks.Snap.State.(*crdt.GCounter).Value()
				found = true
			}
		}
		if !found {
			t.Fatalf("ack %d observed but no snapshot for %q on disk", i, key)
		}
		if got < i {
			t.Fatalf("ack %d observed but disk holds %d (ack outran the disk)", i, got)
		}
	}
}

// TestGroupCommitTornBatchUncertainty is the crash-injection test for
// group commit: a hook tears whole batches between temp-write and
// rename, exactly where a process crash would. Every key in a torn
// batch must surface as an uncertain (timed-out) op with its completion
// withheld; keys persisted before the tear must recover their
// acknowledged values cleanly after a full restart; and the torn keys
// must come back empty — the disk never promised them anything.
func TestGroupCommitTornBatchUncertainty(t *testing.T) {
	dataDir := t.TempDir()
	var armed atomic.Bool
	var tornBatches [][]string
	var tornMu sync.Mutex
	var firstTear sync.Once
	hook := func(keys []string) error {
		if !armed.Load() {
			return nil
		}
		// Stall the first torn batch so the concurrently submitted keys
		// pile into the next one — the multi-key torn batch under test.
		firstTear.Do(func() { time.Sleep(100 * time.Millisecond) })
		tornMu.Lock()
		tornBatches = append(tornBatches, append([]string(nil), keys...))
		tornMu.Unlock()
		return errors.New("injected crash between temp-write and rename")
	}

	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(1)
	cfg.Members = []transport.NodeID{"n1"}
	cfg.Shards = 1 // one shard, one persister: all torn keys share a pipeline
	cfg.DataDir = dataDir
	cfg.PersistWriteDelay = 5 * time.Millisecond
	cfg.persistHook = hook
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 30*time.Second)
	n1 := c.Node("n1")

	// Phase 1, hook disarmed: commit a baseline keyspace durably.
	want := map[string]uint64{}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("good/%d", i)
		if _, err := n1.UpdateKey(ctx, key, incBy("n1", uint64(i+1))); err != nil {
			t.Fatalf("baseline %s: %v", key, err)
		}
		want[key] = uint64(i + 1)
	}

	// Phase 2, hook armed: every batch tears. Submit updates for fresh
	// keys concurrently so they group-commit together; each must time
	// out — the ack withheld because its snapshot never reached disk.
	armed.Store(true)
	tornKeys := []string{"torn/a", "torn/b", "torn/c", "torn/d"}
	var wg sync.WaitGroup
	for i, key := range tornKeys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			if i > 0 {
				time.Sleep(20 * time.Millisecond) // land inside the stalled first tear
			}
			opCtx, cancel := context.WithTimeout(ctx, 700*time.Millisecond)
			defer cancel()
			_, err := n1.UpdateKey(opCtx, key, incBy("n1", 1))
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("torn-batch update %s: err = %v, want deadline exceeded (uncertain)", key, err)
			}
		}(i, key)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := n1.PersistErrors(); got == 0 {
		t.Fatal("torn batches not counted as persist errors")
	}
	tornMu.Lock()
	multi := false
	for _, batch := range tornBatches {
		if len(batch) > 1 {
			multi = true
		}
	}
	tornMu.Unlock()
	if !multi {
		t.Fatalf("no multi-key batch ever formed (batches: %v); the group-commit path was not exercised", tornBatches)
	}

	// Phase 3, hook disarmed: the node must self-heal — the next save for
	// a torn key succeeds and its completions flow again.
	armed.Store(false)
	if _, err := n1.UpdateKey(ctx, "good/0", incBy("n1", 1)); err != nil {
		t.Fatalf("update after disarming hook: %v", err)
	}
	want["good/0"]++

	// Full restart: baseline keys recover their acknowledged values from
	// disk; torn keys never reached the disk, so they restart at zero —
	// a lawful resolution of an op whose ack was withheld.
	c.Crash("n1")
	if err := c.Restart("n1"); err != nil {
		t.Fatalf("restart: %v", err)
	}
	for key, v := range want {
		s, _, err := n1.QueryKey(ctx, key)
		if err != nil {
			t.Fatalf("query %s after restart: %v", key, err)
		}
		if got := s.(*crdt.GCounter).Value(); got != v {
			t.Fatalf("key %s = %d after restart, want %d", key, got, v)
		}
	}
	for _, key := range tornKeys {
		s, _, err := n1.QueryKey(ctx, key)
		if err != nil {
			t.Fatalf("query %s after restart: %v", key, err)
		}
		if got := s.(*crdt.GCounter).Value(); got != 0 {
			t.Fatalf("torn key %s = %d after restart, want 0 (its batch never renamed)", key, got)
		}
	}
}

// TestGroupCommitBatchesUnderLatency: concurrent updates to many keys on
// one shard must complete in far less wall time than serial persistence
// would need — the whole point of group commit is that N keys' flushes
// share one emulated device barrier. This is the small in-package cousin
// of the bench guard in internal/bench.
func TestGroupCommitBatchesUnderLatency(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(1)
	cfg.Members = []transport.NodeID{"n1"}
	cfg.Shards = 1
	cfg.DataDir = t.TempDir()
	cfg.PersistSync = persist.SyncAlways
	cfg.PersistWriteDelay = 10 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 30*time.Second)
	n1 := c.Node("n1")

	const nKeys = 32
	start := time.Now()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("k/%d", k)
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			if _, err := n1.UpdateKey(ctx, key, incBy("n1", 1)); err != nil {
				failed.Add(1)
			}
		}(key)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d updates failed", failed.Load())
	}
	elapsed := time.Since(start)
	serialFloor := time.Duration(nKeys) * cfg.PersistWriteDelay
	if elapsed >= serialFloor/2 {
		t.Fatalf("32 keys took %v; serial persistence needs ≥ %v — group commit is not batching", elapsed, serialFloor)
	}
}
