package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"crdtsmr/internal/checker"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// TestReconfigureGrowBootstrapsJoiner: the basic online-growth path. A
// joiner added to the mesh refuses commands (it holds no quorum and must
// not serve reads before its first joint-quorum-committed epoch); after a
// member reconfigures it in, it serves both updates and queries, and its
// very first read observes data written before it existed — the
// configuration push carries the full payload, so joining IS the state
// bootstrap.
func TestReconfigureGrowBootstrapsJoiner(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 30*time.Second)

	if _, err := c.Node("n1").UpdateKey(ctx, "k", incBy("n1", 7)); err != nil {
		t.Fatal(err)
	}

	n4, err := c.AddNode("n4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n4.UpdateKey(ctx, "k", incBy("n4", 1)); !errors.Is(err, core.ErrNotMember) {
		t.Fatalf("joiner update err = %v, want ErrNotMember", err)
	}
	if _, _, err := n4.QueryKey(ctx, "k"); !errors.Is(err, core.ErrNotMember) {
		t.Fatalf("joiner query err = %v, want ErrNotMember", err)
	}

	if err := c.Node("n1").Reconfigure(ctx, members(4)); err != nil {
		t.Fatalf("reconfigure 3→4: %v", err)
	}
	if got := c.Node("n1").Epoch(); got != 1 {
		t.Fatalf("n1 epoch = %d after first reconfiguration, want 1", got)
	}

	// The joint quorum can commit before the joiner's own ack (a majority
	// of old and of new members suffices), so the joiner may adopt the
	// configuration moments after Reconfigure returns.
	s, err := waitServing(ctx, n4, "k")
	if err != nil {
		t.Fatalf("joiner query after reconfigure: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 7 {
		t.Fatalf("joiner read %d, want 7 (bootstrap payload missing)", got)
	}
	if _, err := n4.UpdateKey(ctx, "k", incBy("n4", 3)); err != nil {
		t.Fatalf("joiner update after reconfigure: %v", err)
	}
	s, _, err = c.Node("n2").QueryKey(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 10 {
		t.Fatalf("read %d after joiner update, want 10", got)
	}
}

// waitServing retries a query until the node serves it — riding out the
// window between a committed reconfiguration and its propagation to this
// node (the joint quorum does not require every new member's ack).
func waitServing(ctx context.Context, n *Node, key string) (crdt.State, error) {
	for {
		s, _, err := n.QueryKey(ctx, key)
		if !errors.Is(err, core.ErrNotMember) {
			return s, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// TestLazyReplicaUsesCurrentMembership pins the tentpole bugfix at the
// runtime layer: a key first touched AFTER a reconfiguration must get a
// replica built from the node's current membership view, not the frozen
// boot-time Config.Members. The probe: shrink the group to {n1} alone,
// take the other nodes down, then update a brand-new key at n1 — under
// the current view the quorum is 1 and the update completes locally;
// under the frozen view it would wait forever for a majority of three.
func TestLazyReplicaUsesCurrentMembership(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 20*time.Second)

	if err := c.Node("n1").Reconfigure(ctx, []transport.NodeID{"n1"}); err != nil {
		t.Fatalf("reconfigure 3→1: %v", err)
	}
	mesh.SetDown("n2", true)
	mesh.SetDown("n3", true)

	if _, err := c.Node("n1").UpdateKey(ctx, "fresh/key", incBy("n1", 1)); err != nil {
		t.Fatalf("update on lazily instantiated key under single-member config: %v", err)
	}
	s, _, err := c.Node("n1").QueryKey(ctx, "fresh/key")
	if err != nil {
		t.Fatalf("query on lazily instantiated key: %v", err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("read %d, want 1", got)
	}
	if got := c.Node("n1").Members(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("n1 membership view = %v, want [n1]", got)
	}
}

// TestForgetPeerCoversLazyReplicas is the regression test for the
// ForgetPeer gap: declaring a peer down must be a node-wide fact, applied
// to replicas instantiated after the call — not only to the keys that
// happened to exist at the time — and must be cleared when the peer is
// heard from again, so a returned peer re-earns transfer assumptions from
// fresh traffic instead of staying forgotten forever.
func TestForgetPeerCoversLazyReplicas(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	c, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 20*time.Second)
	n1 := c.Node("n1")

	mesh.SetDown("n2", true)
	n1.ForgetPeer("n2")
	if got := n1.forgottenPeers(); len(got) != 1 || got[0] != "n2" {
		t.Fatalf("forgotten peers = %v after ForgetPeer(n2), want [n2]", got)
	}

	// A key instantiated while n2 is down must carry the down mark (its
	// replica gets the same ForgetPeer treatment at birth) and still make
	// quorum with {n1, n3}.
	if _, err := n1.UpdateKey(ctx, "late/key", incBy("n1", 1)); err != nil {
		t.Fatalf("update on key instantiated after ForgetPeer: %v", err)
	}

	// Traffic from n2 clears the mark: run a command at n2 so it sends
	// frames to n1 again.
	mesh.SetDown("n2", false)
	if _, err := c.Node("n2").UpdateKey(ctx, "late/key", incBy("n2", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(n1.forgottenPeers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("forgotten peers = %v, n2 not cleared by inbound traffic", n1.forgottenPeers())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlushOffsetGuards pins the batch-interval offset fix: the offset
// must be well-defined for an empty member list and for a node outside
// the member set (a joiner, or a node a reconfiguration removed) — the
// old expression divided by len(members) and treated "absent" as index 0.
func TestFlushOffsetGuards(t *testing.T) {
	interval := 10 * time.Millisecond
	ids := members(4)
	if got := flushOffset(nil, "n1", interval); got != interval {
		t.Fatalf("flushOffset(empty) = %v, want %v", got, interval)
	}
	if got := flushOffset(ids, "stranger", interval); got != interval {
		t.Fatalf("flushOffset(absent id) = %v, want %v", got, interval)
	}
	var seen []time.Duration
	for _, id := range ids {
		off := flushOffset(ids, id, interval)
		if off <= 0 || off > interval {
			t.Fatalf("flushOffset(%s) = %v outside (0, %v]", id, off, interval)
		}
		for _, prev := range seen {
			if prev == off {
				t.Fatalf("flushOffset collision at %v: members must de-phase", off)
			}
		}
		seen = append(seen, off)
	}
	if memberIndex(ids, "stranger") != -1 {
		t.Fatal("memberIndex of absent id must be -1")
	}
}

// TestBatchedClusterSurvivesReconfigure: with §3.6 batching enabled, a
// membership change restarts the flush cadence under a new generation
// (the node's slot in the window moves with its member index). The old
// chain must die and exactly one new chain must keep flushing — a lost
// cadence would strand every batched command forever.
func TestBatchedClusterSurvivesReconfigure(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = 2 * time.Millisecond
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 30*time.Second)

	if _, err := c.Node("n2").UpdateKey(ctx, "k", incBy("n2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Node("n1").Reconfigure(ctx, []transport.NodeID{"n1", "n2"}); err != nil {
		t.Fatalf("reconfigure 3→2: %v", err)
	}
	// Batched commands after the membership change must still flush, on
	// every surviving member.
	for _, id := range []transport.NodeID{"n1", "n2"} {
		if _, err := c.Node(id).UpdateKey(ctx, "k", incBy(string(id), 1)); err != nil {
			t.Fatalf("batched update at %s after reconfigure: %v", id, err)
		}
	}
	s, _, err := c.Node("n1").QueryKey(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 3 {
		t.Fatalf("read %d after post-reconfigure batches, want 3", got)
	}
	if _, err := c.Node("n3").UpdateKey(ctx, "k", incBy("n3", 1)); !errors.Is(err, core.ErrNotMember) {
		t.Fatalf("removed node update err = %v, want ErrNotMember", err)
	}
}

// TestMembershipChaosGrowAndShrink is the acceptance chaos test: a live
// 3-node cluster scales to 5 and back to 3 mid-workload, and the full
// recorded history must be per-key linearizable — clients may see
// timeouts during transitions (none are expected here, since n1–n3 are
// members of every configuration), but never an inconsistent read.
// Joiners are verified to refuse reads before their first committed
// epoch and to serve immediately after; removed nodes refuse commands
// after the shrink commits.
func TestMembershipChaosGrowAndShrink(t *testing.T) {
	mesh := transport.NewMesh(transport.WithSeed(41), transport.WithDelay(0, 2*time.Millisecond))
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Shards = 4
	cfg.RetransmitInterval = 10 * time.Millisecond
	cfg.StateTransfer = core.TransferDelta
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 120*time.Second)

	const nKeys = 8
	const opsPerPhase = 3
	core3 := members(3)
	kh := checker.NewKeyedHistory()

	phase := func(serve []transport.NodeID) {
		var wg sync.WaitGroup
		for k := 0; k < nKeys; k++ {
			key := fmt.Sprintf("key/%d", k)
			at := serve[k%len(serve)]
			wg.Add(1)
			go func(key string, at transport.NodeID) {
				defer wg.Done()
				h := kh.For(key)
				n := c.Node(at)
				for i := 0; i < opsPerPhase; i++ {
					id := h.Begin(checker.OpInc)
					if _, err := n.UpdateKey(ctx, key, incBy(string(at)+key, 1)); err != nil {
						h.Discard(id)
						t.Errorf("update %s at %s: %v", key, at, err)
						return
					}
					h.End(id, 0)

					id = h.Begin(checker.OpRead)
					s, _, err := n.QueryKey(ctx, key)
					if err != nil {
						h.Discard(id)
						t.Errorf("query %s at %s: %v", key, at, err)
						return
					}
					h.End(id, s.(*crdt.GCounter).Value())
				}
			}(key, at)
		}
		wg.Wait()
	}

	phase(core3) // healthy 3-node baseline

	// Grow 3→5. The joiners must refuse reads until their first
	// joint-quorum-committed epoch.
	n4, err := c.AddNode("n4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	n5, err := c.AddNode("n5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Node{n4, n5} {
		if _, _, err := j.QueryKey(ctx, "key/0"); !errors.Is(err, core.ErrNotMember) {
			t.Fatalf("joiner %s read before committed epoch: err = %v, want ErrNotMember", j.ID(), err)
		}
	}
	// Reconfigure mid-workload: the old members keep serving while the
	// membership change commits under the joint quorum; their in-flight
	// requests migrate across the epoch bump and retransmission repairs
	// any frame refused during the transition.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		phase(core3)
	}()
	if err := c.Node("n1").Reconfigure(ctx, members(5)); err != nil {
		t.Fatalf("reconfigure 3→5: %v", err)
	}
	wg.Wait()

	// Let the commit propagate to the joiners for every key before they
	// serve their share of the workload (their own acks are not required
	// for the joint quorum).
	for _, j := range []*Node{n4, n5} {
		for k := 0; k < nKeys; k++ {
			if _, err := waitServing(ctx, j, fmt.Sprintf("key/%d", k)); err != nil {
				t.Fatalf("joiner %s never began serving key/%d: %v", j.ID(), k, err)
			}
		}
	}

	phase(members(5)) // all five serve, joiners included

	// Shrink 5→3 mid-workload on the surviving members.
	wg.Add(1)
	go func() {
		defer wg.Done()
		phase(core3)
	}()
	if err := c.Node("n1").Reconfigure(ctx, core3); err != nil {
		t.Fatalf("reconfigure 5→3: %v", err)
	}
	wg.Wait()

	// The removed nodes refuse commands once the shrink reaches them.
	for _, j := range []*Node{n4, n5} {
		if _, err := j.UpdateKey(ctx, "key/0", incBy("late", 1)); !errors.Is(err, core.ErrNotMember) {
			t.Fatalf("removed %s update err = %v, want ErrNotMember", j.ID(), err)
		}
	}
	if err := c.RemoveNode("n4"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode("n5"); err != nil {
		t.Fatal(err)
	}

	phase(core3) // back to three, the departed endpoints gone for good
	if t.Failed() {
		return
	}
	if err := checker.CheckKeyedLinearizable(kh); err != nil {
		t.Fatalf("membership chaos history not per-key linearizable: %v", err)
	}
	if got := c.Node("n1").Epoch(); got != 2 {
		t.Fatalf("n1 epoch = %d after grow+shrink, want 2", got)
	}
}
