package cluster

import (
	"time"

	"crdtsmr/internal/transport"
)

// linkBudget is a token-bucket byte budget for one directed replica link,
// in the shape ROADMAP names for overload safety: a bucket refilled at
// Rate bytes/sec up to Burst bytes, paired with a per-key coalescer for
// envelopes the bucket cannot admit yet. It is owned by one shard's event
// loop (never accessed concurrently), takes the current time as an
// argument everywhere, and performs no I/O itself — the loop sends what
// take/drain admit — so it runs identically under the wall clock and
// under clock.Sim (the virtual-time determinism tests rely on this).
//
// Delayed envelopes queue FIFO per link, at most one per object key: a
// newer envelope for a key replaces the queued one in place (counted as
// coalesced). Replacement is message loss to the receiver, which the
// protocol tolerates by construction — the transport is best-effort and
// retransmission re-drives pending requests — while the newest message
// for a key is the one that supersedes its predecessors' state anyway
// (MERGE payloads only grow in the lattice order).
type linkBudget struct {
	rate  float64 // bytes per second
	burst float64 // bucket capacity, bytes

	tokens float64
	last   time.Time

	queue []delayedEnvelope

	delayed   uint64 // envelopes that could not be sent immediately
	coalesced uint64 // queued envelopes replaced by a newer same-key one
}

// delayedEnvelope is one queued, already-packed wire frame.
type delayedEnvelope struct {
	key    string
	packed []byte
}

func newLinkBudget(rate, burst float64, now time.Time) *linkBudget {
	if burst < rate/10 {
		burst = rate / 10 // at least 100 ms of rate, so small frames always fit
	}
	return &linkBudget{rate: rate, burst: burst, tokens: burst, last: now}
}

func (b *linkBudget) refill(now time.Time) {
	if now.After(b.last) {
		b.tokens += b.rate * now.Sub(b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take admits one packed envelope of n bytes, charging the bucket. It
// refuses when the link already has a backlog (FIFO: new traffic must not
// overtake delayed traffic) or when the bucket lacks the tokens. Frames
// larger than the whole bucket are admitted when the bucket is full —
// they can never be afforded otherwise, and refusing them forever would
// wedge the link rather than pace it.
func (b *linkBudget) take(now time.Time, n int) bool {
	if len(b.queue) > 0 {
		return false
	}
	b.refill(now)
	need := float64(n)
	if need > b.burst {
		need = b.burst
	}
	if b.tokens < need {
		return false
	}
	b.tokens -= float64(n)
	if b.tokens < 0 {
		b.tokens = 0
	}
	return true
}

// delay queues a packed envelope behind the budget, coalescing with a
// queued envelope for the same key.
func (b *linkBudget) delay(key string, packed []byte) {
	b.delayed++
	for i := range b.queue {
		if b.queue[i].key == key {
			b.queue[i].packed = packed
			b.coalesced++
			return
		}
	}
	b.queue = append(b.queue, delayedEnvelope{key: key, packed: packed})
}

// drain pops every queued envelope the bucket can afford now, in FIFO
// order, and returns them for the loop to transmit.
func (b *linkBudget) drain(now time.Time) []delayedEnvelope {
	b.refill(now)
	var out []delayedEnvelope
	for len(b.queue) > 0 {
		head := b.queue[0]
		need := float64(len(head.packed))
		if need > b.burst {
			need = b.burst
		}
		if b.tokens < need {
			break
		}
		b.tokens -= float64(len(head.packed))
		if b.tokens < 0 {
			b.tokens = 0
		}
		out = append(out, head)
		b.queue[0] = delayedEnvelope{}
		b.queue = b.queue[1:]
	}
	if len(b.queue) == 0 {
		b.queue = nil
	}
	return out
}

// eta reports how long until the bucket can afford the queued head, zero
// when it can already (or nothing is queued).
func (b *linkBudget) eta(now time.Time) time.Duration {
	if len(b.queue) == 0 {
		return 0
	}
	b.refill(now)
	need := float64(len(b.queue[0].packed))
	if need > b.burst {
		need = b.burst
	}
	missing := need - b.tokens
	if missing <= 0 {
		return 0
	}
	return time.Duration(missing / b.rate * float64(time.Second))
}

// budgetFor returns the shard's budget of the link to peer, creating it
// lazily. The node's configured budget divides evenly across shards —
// each shard paces its own keys' share of the link without cross-shard
// coordination, so the node-wide rate still sums to Config.LinkBudget
// (exactly under even key spread, approximately under skew).
func (s *shard) budgetFor(peer transport.NodeID) *linkBudget {
	if b, ok := s.budgets[peer]; ok {
		return b
	}
	shards := float64(len(s.n.shards))
	b := newLinkBudget(float64(s.n.cfg.LinkBudget)/shards, float64(s.n.cfg.LinkBurst)/shards, s.n.cfg.Clock.Now())
	s.budgets[peer] = b
	return b
}

// sendBudgeted transmits one packed frame to peer, or queues it when the
// link's budget cannot admit it yet, arming a drain timer for the queued
// head. Called only from the shard's event loop.
func (s *shard) sendBudgeted(peer transport.NodeID, key string, packed []byte) {
	b := s.budgetFor(peer)
	if b.take(s.n.cfg.Clock.Now(), len(packed)) {
		s.n.conn.Send(peer, packed)
		return
	}
	b.delay(key, packed)
	s.armBudgetTimer(peer, b)
}

// armBudgetTimer schedules the next drain attempt for peer's queue, if
// one is not already pending.
func (s *shard) armBudgetTimer(peer transport.NodeID, b *linkBudget) {
	if s.budgetTimers[peer] || len(b.queue) == 0 {
		return
	}
	s.budgetTimers[peer] = true
	wait := b.eta(s.n.cfg.Clock.Now())
	if wait <= 0 {
		wait = time.Millisecond
	}
	s.n.cfg.Clock.AfterFunc(wait, func() {
		s.post(nodeEvent{kind: evBudget, from: peer})
	})
}

// drainBudget runs on the shard's event loop when peer's drain timer
// fires.
func (s *shard) drainBudget(peer transport.NodeID) {
	delete(s.budgetTimers, peer)
	b, ok := s.budgets[peer]
	if !ok {
		return
	}
	for _, d := range b.drain(s.n.cfg.Clock.Now()) {
		if !s.crashed {
			s.n.conn.Send(peer, d.packed)
		}
	}
	s.armBudgetTimer(peer, b)
}

// dropBudgetQueues discards every delayed envelope (crash or restart:
// queued frames are indistinguishable from in-flight ones, and the
// transport would drop them anyway).
func (s *shard) dropBudgetQueues() {
	for _, b := range s.budgets {
		b.queue = nil
	}
}
