package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"crdtsmr/internal/clock"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// shard is one of a node's independent event loops, owning a disjoint
// slice of the keyspace (Node.shardFor). Everything below the channel
// fields is loop-owned: accessed only from this shard's loop goroutine,
// never locked, never shared with another shard — the per-object
// independence of the paper's protocol means replicas of different keys
// have nothing to say to each other, so the shards need no cross-shard
// synchronization on the hot path.
type shard struct {
	n   *Node
	idx int

	events chan nodeEvent
	calls  chan func()

	// Loop-owned state (accessed only from this shard's event loop).
	replicas      map[string]*core.Replica
	timers        map[string]map[uint64]clock.Timer
	budgets       map[transport.NodeID]*linkBudget // per-link byte budgets (LinkBudget > 0)
	budgetTimers  map[transport.NodeID]bool        // links with a pending drain timer
	dirty         []string                         // keys whose replica may hold outbox envelopes
	dirtySet      map[string]struct{}              // membership of dirty (one entry per key per event)
	droppedFrames uint64                           // inbound frames dropped before reaching a replica
	crashed       bool
	batchUpdates  map[string][]*updateOp
	batchQueries  map[string][]*queryOp
	flushTimer    clock.Timer
	savedVersion  map[string]uint64   // per-key StateVersion last durably persisted
	inflight      map[string]uint64   // per-key StateVersion submitted to the persister, not yet durable
	persistBroken map[string]struct{} // keys whose persistence pipeline failed; releases withheld until a save succeeds
	persistErrs   uint64              // failed snapshot writes (outbox + completions dropped)
	notify        []keyedNotify       // client completions deferred past persistence

	// Group-commit persistence pipeline; nil on volatile nodes and under
	// Config.SerialPersist (see persister.go).
	persistq chan persistReq
	relMu    sync.Mutex
	rel      []persistDone
	relSig   chan struct{}
}

func newShard(n *Node, idx int) *shard {
	s := &shard{
		n:             n,
		idx:           idx,
		events:        make(chan nodeEvent, 8192),
		calls:         make(chan func()),
		replicas:      make(map[string]*core.Replica),
		timers:        make(map[string]map[uint64]clock.Timer),
		budgets:       make(map[transport.NodeID]*linkBudget),
		budgetTimers:  make(map[transport.NodeID]bool),
		dirtySet:      make(map[string]struct{}),
		batchUpdates:  make(map[string][]*updateOp),
		batchQueries:  make(map[string][]*queryOp),
		savedVersion:  make(map[string]uint64),
		inflight:      make(map[string]uint64),
		persistBroken: make(map[string]struct{}),
	}
	if n.store != nil && !n.cfg.SerialPersist {
		s.persistq = make(chan persistReq, 1024)
		s.relSig = make(chan struct{}, 1)
	}
	return s
}

// call runs fn on the shard's event loop and waits for it, for
// loop-synchronized inspection. Returns false if the node is stopped.
func (s *shard) call(fn func()) bool {
	done := make(chan struct{})
	select {
	case s.calls <- func() { fn(); close(done) }:
		select {
		case <-done:
			return true
		case <-s.n.quit:
			return false
		}
	case <-s.n.quit:
		return false
	}
}

func (s *shard) submit(ctx context.Context, ev nodeEvent) error {
	select {
	case s.events <- ev:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.n.quit:
		return ErrStopped
	}
}

func (s *shard) post(ev nodeEvent) {
	select {
	case s.events <- ev:
	case <-s.n.quit:
	}
}

func (s *shard) loop() {
	defer s.n.wg.Done()
	for {
		select {
		case <-s.n.quit:
			s.shutdown()
			return
		case ev := <-s.events:
			s.handle(ev)
		case fn := <-s.calls:
			fn()
		case <-s.relSig: // nil (blocks forever) without a persister
			s.processReleases()
		}
		s.flushAfterEvent()
	}
}

// markDirty records that key's replica may hold outbox envelopes, once:
// one event can touch the same replica many times (deliver, retransmit,
// submit), and re-scanning the key's outbox and snapshot version per
// touch is pure waste.
func (s *shard) markDirty(key string) {
	if _, ok := s.dirtySet[key]; ok {
		return
	}
	s.dirtySet[key] = struct{}{}
	s.dirty = append(s.dirty, key)
}

// replicaFor returns the replica owning key, instantiating it on first
// touch. The key is marked dirty so its outbox is drained after the event.
//
// A fresh replica starts from the node's configuration view, not the
// boot-time Config.Members: after a reconfiguration, a lazily created key
// must address the current member set, not the group the node booted
// with. Peers currently declared down get the same ForgetPeer treatment
// existing replicas received, so the down declaration covers keys
// instantiated after it.
func (s *shard) replicaFor(key string) (*core.Replica, error) {
	if rep, ok := s.replicas[key]; ok {
		s.markDirty(key)
		return rep, nil
	}
	s0, err := s.n.cfg.initialFor(key)
	if err != nil {
		return nil, err
	}
	rep, err := core.NewReplicaConfig(s.n.id, s.n.currentConfig(), s0, s.n.cfg.Options)
	if err != nil {
		return nil, err
	}
	for _, p := range s.n.forgottenPeers() {
		rep.ForgetPeer(p)
	}
	s.replicas[key] = rep
	s.markDirty(key)
	return rep, nil
}

func (s *shard) handle(ev nodeEvent) {
	switch ev.kind {
	case evInbound:
		if s.crashed {
			return
		}
		rep, err := s.replicaFor(ev.key)
		if err != nil {
			// No agreed initial state for this key: drop, counted — a peer
			// whose configuration accepts the key would otherwise hang
			// against this node with no diagnostic trace here.
			s.droppedFrames++
			return
		}
		// A frame can carry a configuration this replica adopts (a
		// RECONFIG, or the anti-entropy repair after an epoch mismatch);
		// fold any adoption into the node view so later-instantiated keys
		// start from it.
		adoptions := rep.Counters().ConfigAdoptions
		rep.Deliver(ev.from, ev.payload)
		if rep.Counters().ConfigAdoptions != adoptions {
			s.n.noteConfig(rep.ConfigState())
		}
	case evUpdate:
		if s.crashed {
			ev.update.done <- updateResult{err: ErrUnavailable}
			return
		}
		if s.n.cfg.BatchInterval > 0 {
			s.batchUpdates[ev.key] = append(s.batchUpdates[ev.key], ev.update)
			return
		}
		s.startUpdate(ev.key, []*updateOp{ev.update})
	case evQuery:
		if s.crashed {
			ev.query.done <- queryResult{err: ErrUnavailable}
			return
		}
		if s.n.cfg.BatchInterval > 0 {
			s.batchQueries[ev.key] = append(s.batchQueries[ev.key], ev.query)
			return
		}
		s.startQuery(ev.key, []*queryOp{ev.query})
	case evTimeout:
		if s.crashed {
			return
		}
		if _, live := s.timers[ev.key][ev.reqID]; live {
			if rep, ok := s.replicas[ev.key]; ok {
				s.markDirty(ev.key)
				rep.Retransmit(ev.reqID)
				s.armTimer(ev.key, ev.reqID)
			}
		}
	case evFlush:
		// A stale generation is a superseded cadence: the membership
		// changed and startFlushChain began a new chain with this node's
		// new slot in the window. Dropping the event (instead of re-arming)
		// is what terminates the old chain.
		if ev.gen != s.n.flushGen.Load() {
			return
		}
		if !s.crashed {
			s.flushBatches(ev.queries)
		}
		// The update and query batches alternate, each flushing every
		// BatchInterval but offset by half a window. Flushing them at the
		// same instant would make every batched query collide with its own
		// node's MERGE broadcast and forfeit the fast path that batching
		// exists to enable (§3.6).
		if s.n.cfg.BatchInterval > 0 {
			next := !ev.queries
			s.flushTimer = s.n.cfg.Clock.AfterFunc(s.n.cfg.BatchInterval/2, func() {
				s.post(nodeEvent{kind: evFlush, queries: next, gen: ev.gen})
			})
		}
	case evReconfig:
		s.startReconfigure(ev.reconfig)
	case evBudget:
		s.drainBudget(ev.from)
	case evSetCrashed:
		s.crashed = ev.crash
		if ev.crash {
			s.failEverything()
			s.dropBudgetQueues()
		}
		// Entering or leaving a crash invalidates every round lease this
		// node holds: while it was down (or from the instant it stops
		// serving), other proposers may move the quorum's rounds, and a
		// resumed lease would skip the prepare that detects that. Dropping
		// is purely conservative — the next quorum read re-earns it.
		for _, rep := range s.replicas {
			rep.DropLease()
		}
	case evRestartPrep:
		ev.restarted <- s.restartPrep()
	case evRestore:
		ev.restarted <- s.restore(ev.snaps)
	}
}

func (s *shard) startUpdate(key string, ops []*updateOp) {
	rep, err := s.replicaFor(key)
	if err != nil {
		for _, op := range ops {
			op.done <- updateResult{err: err}
		}
		return
	}
	combined := func(st crdt.State) (crdt.State, error) {
		var err error
		for _, op := range ops {
			st, err = op.fu(st)
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	// The completion is deferred to the flush's notify phase: on a
	// durable node the client must not observe success before the local
	// snapshot covering the update has hit disk.
	reqID, err := rep.SubmitUpdate(combined, func(stats core.UpdateStats, err error) {
		s.notify = append(s.notify, keyedNotify{key: key, fn: func() {
			for _, op := range ops {
				op.done <- updateResult{stats: stats, err: err}
			}
		}})
	})
	if err != nil {
		for _, op := range ops {
			op.done <- updateResult{err: err}
		}
		return
	}
	if rep.Pending(reqID) {
		s.armTimer(key, reqID)
	}
}

func (s *shard) startQuery(key string, ops []*queryOp) {
	rep, err := s.replicaFor(key)
	if err != nil {
		for _, op := range ops {
			op.done <- queryResult{err: err}
		}
		return
	}
	reqID := rep.SubmitQuery(func(st crdt.State, stats core.QueryStats, err error) {
		s.notify = append(s.notify, keyedNotify{key: key, fn: func() {
			for _, op := range ops {
				op.done <- queryResult{state: st, stats: stats, err: err}
			}
		}})
	})
	if rep.Pending(reqID) {
		s.armTimer(key, reqID)
	}
}

// reconfigAgg aggregates one shard's per-key reconfiguration outcomes.
// It lives on the loop (callbacks fire from Deliver and Abort, both
// loop-run), so no locking: pending counts keys whose rounds are still
// gathering their joint quorum, and the shard's single result is sent
// when the last one settles — but never before submission finishes, so a
// key that commits synchronously (a single-member group) cannot conclude
// the shard while later keys are still being submitted.
type reconfigAgg struct {
	op        *reconfigOp
	pending   int
	submitted bool
	errs      []error
}

func (a *reconfigAgg) settle(err error) {
	if err != nil {
		a.errs = append(a.errs, err)
	}
	a.pending--
	a.maybeFinish()
}

func (a *reconfigAgg) maybeFinish() {
	if a.submitted && a.pending == 0 {
		a.op.done <- errors.Join(a.errs...)
	}
}

// startReconfigure submits the new member set to every key instantiated
// on this shard, in sorted key order for determinism. Each key runs its
// own reconfiguration round (configuration is per-key state); the shard
// reports once, when all of them have committed or failed. Lost RECONFIGs
// are re-driven by the same retransmit timers as any other request.
func (s *shard) startReconfigure(op *reconfigOp) {
	if s.crashed {
		op.done <- ErrUnavailable
		return
	}
	keys := make([]string, 0, len(s.replicas))
	for k := range s.replicas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	agg := &reconfigAgg{op: op}
	for _, key := range keys {
		rep := s.replicas[key]
		s.markDirty(key)
		agg.pending++
		reqID, err := rep.SubmitReconfigure(op.members, func(err error) {
			agg.settle(err)
		})
		if err != nil {
			agg.pending--
			agg.errs = append(agg.errs, fmt.Errorf("key %q: %w", key, err))
			continue
		}
		// The proposer self-adopts the candidate configuration on
		// submission; surface it to the node view right away so keys
		// instantiated during the round already use the new member set.
		s.n.noteConfig(rep.ConfigState())
		if rep.Pending(reqID) {
			s.armTimer(key, reqID)
		}
	}
	agg.submitted = true
	agg.maybeFinish()
}

// flushBatches starts one protocol run per key holding buffered commands of
// the given kind — keys batch independently, so a hot key's protocol run
// does not serialize behind a cold key's.
func (s *shard) flushBatches(queries bool) {
	if queries {
		for key, ops := range s.batchQueries {
			delete(s.batchQueries, key)
			s.startQuery(key, ops)
		}
		return
	}
	for key, ops := range s.batchUpdates {
		delete(s.batchUpdates, key)
		s.startUpdate(key, ops)
	}
}

func (s *shard) armTimer(key string, reqID uint64) {
	s.disarmTimer(key, reqID)
	byReq, ok := s.timers[key]
	if !ok {
		byReq = make(map[uint64]clock.Timer)
		s.timers[key] = byReq
	}
	byReq[reqID] = s.n.cfg.Clock.AfterFunc(s.n.cfg.RetransmitInterval, func() {
		s.post(nodeEvent{kind: evTimeout, key: key, reqID: reqID})
	})
}

func (s *shard) disarmTimer(key string, reqID uint64) {
	if t, ok := s.timers[key][reqID]; ok {
		t.Stop()
		delete(s.timers[key], reqID)
		if len(s.timers[key]) == 0 {
			delete(s.timers, key)
		}
	}
}

// flushAfterEvent runs after every loop iteration: it drains the outbox
// of every replica the event touched and releases deferred client
// completions, through whichever durability path the node runs —
// synchronous (volatile nodes and SerialPersist) or the group-commit
// persister pipeline.
func (s *shard) flushAfterEvent() {
	if s.persistq == nil {
		s.flushOutboxSerial()
		return
	}
	s.flushOutboxAsync()
}

func (s *shard) clearDirty() {
	for _, key := range s.dirty {
		delete(s.dirtySet, key)
	}
	s.dirty = s.dirty[:0]
}

// flushOutboxSerial transmits pending envelopes of every replica touched
// by the last event — wrapped in the key's object-ID envelope — and
// disarms timers of requests that completed. Only dirty keys are visited,
// so per-event cost is independent of the size of the keyspace.
//
// On a durable node the key's snapshot is written first, whenever its
// durable state advanced: an ACK promising a round, a MERGED confirming a
// merge, must never outrun the disk. A failed snapshot write drops the
// key's outbound envelopes AND withholds the key's client completions
// instead — to its peers and clients alike the node behaves like a lossy
// link (the clients' requests time out and surface as uncertain), never
// like a liar claiming durability the disk does not hold. Surviving
// completions are released last, after the persistence point, so an
// acknowledged command is durable here even on a single-node cluster.
func (s *shard) flushOutboxSerial() {
	var persistFailed map[string]bool
	for _, key := range s.dirty {
		rep, ok := s.replicas[key]
		if !ok {
			continue
		}
		out := rep.TakeOutbox()
		if s.n.store != nil && !s.crashed {
			if v := rep.StateVersion(); v != s.savedVersion[key] {
				if err := s.n.store.SaveSnapshot(key, rep.Snapshot()); err != nil {
					s.persistErrs++
					if persistFailed == nil {
						persistFailed = make(map[string]bool, 1)
					}
					persistFailed[key] = true
					out = nil
				} else {
					s.savedVersion[key] = v
				}
			}
		}
		for _, e := range out {
			if s.crashed {
				continue
			}
			packed := wire.PackEnvelope(key, e.Payload)
			if s.n.cfg.LinkBudget > 0 {
				s.sendBudgeted(e.To, key, packed)
			} else {
				s.n.conn.Send(e.To, packed)
			}
		}
		for reqID := range s.timers[key] {
			if !rep.Pending(reqID) {
				s.disarmTimer(key, reqID)
			}
		}
	}
	s.clearDirty()
	if len(s.notify) > 0 {
		for _, kn := range s.notify {
			if !persistFailed[kn.key] {
				kn.fn()
			}
		}
		s.notify = s.notify[:0]
	}
}

// failEverything aborts in-flight and batched requests upon crash; their
// callers receive ErrAborted / ErrUnavailable.
func (s *shard) failEverything() {
	for key, byReq := range s.timers {
		rep := s.replicas[key]
		for reqID := range byReq {
			s.disarmTimer(key, reqID)
			if rep != nil {
				rep.Abort(reqID)
			}
		}
	}
	for key, ops := range s.batchUpdates {
		delete(s.batchUpdates, key)
		for _, op := range ops {
			op.done <- updateResult{err: ErrUnavailable}
		}
	}
	for key, ops := range s.batchQueries {
		delete(s.batchQueries, key)
		for _, op := range ops {
			op.done <- queryResult{err: ErrUnavailable}
		}
	}
}

// installSnapshot rehydrates one persisted key: the replica is created
// from the configured initial state and the snapshot restored into it
// (Restore joins, so a snapshot can never regress below s0). A snapshot
// for a key the local configuration rejects fails the load — serving a
// keyspace the disk remembers but the config denies would be a silent
// split-brain between configuration and data. Called before the loop
// starts (NewNode) or on the loop (restore), never concurrently.
func (s *shard) installSnapshot(ks persist.KeySnapshot) error {
	rep, ok := s.replicas[ks.Key]
	if !ok {
		s0, err := s.n.cfg.initialFor(ks.Key)
		if err != nil {
			return fmt.Errorf("cluster: %s: snapshot for unconfigured key %q: %w", s.n.id, ks.Key, err)
		}
		rep, err = core.NewReplicaConfig(s.n.id, s.n.currentConfig(), s0, s.n.cfg.Options)
		if err != nil {
			return err
		}
		s.replicas[ks.Key] = rep
	}
	if err := rep.Restore(ks.Snap); err != nil {
		return fmt.Errorf("cluster: %s: restore %q: %w", s.n.id, ks.Key, err)
	}
	// The snapshot may carry a configuration newer than the node's view
	// (the common case at startup: the view is the boot-time member list,
	// the disk has what this key had actually adopted).
	if cfg := rep.ConfigState(); len(cfg.Members) > 0 {
		s.n.noteConfig(cfg)
	}
	s.savedVersion[ks.Key] = rep.StateVersion()
	return nil
}

// restartPrep is restart phase one, on the loop: quiesce the persister
// (pending group-commit batches land on disk and their surviving
// completions are delivered — they were promised before the restart),
// then drop every volatile structure and park crashed until restore.
func (s *shard) restartPrep() error {
	if s.n.store == nil {
		return errRestartVolatile
	}
	if err := s.drainPersister(); err != nil {
		return err
	}
	s.failEverything()
	for key, byReq := range s.timers {
		for reqID, t := range byReq {
			t.Stop()
			delete(byReq, reqID)
		}
		delete(s.timers, key)
	}
	// The aborts above carry errors, not acknowledgements — nothing about
	// them needs to be durable, so they bypass the (now empty) pipeline.
	for _, kn := range s.notify {
		kn.fn()
	}
	s.notify = s.notify[:0]
	s.replicas = make(map[string]*core.Replica)
	s.savedVersion = make(map[string]uint64)
	s.inflight = make(map[string]uint64)
	s.persistBroken = make(map[string]struct{})
	s.clearDirty()
	s.dropBudgetQueues()
	s.crashed = true
	return nil
}

// restore is restart phase two, on the loop: rehydrate this shard's keys
// from the snapshots the caller read and resume serving. On error the
// shard stays crashed — refusing to serve is the only safe answer when
// the disk cannot reproduce what was promised to the quorum.
func (s *shard) restore(snaps []persist.KeySnapshot) error {
	if s.n.shardFor(DefaultKey) == s.idx {
		rep, err := core.NewReplicaConfig(s.n.id, s.n.currentConfig(), s.n.cfg.Initial, s.n.cfg.Options)
		if err != nil {
			return err
		}
		s.replicas[DefaultKey] = rep
	}
	for _, ks := range snaps {
		if err := s.installSnapshot(ks); err != nil {
			return err
		}
	}
	s.crashed = false
	return nil
}

func (s *shard) shutdown() {
	if s.flushTimer != nil {
		s.flushTimer.Stop()
	}
	for key, byReq := range s.timers {
		for reqID, t := range byReq {
			t.Stop()
			delete(byReq, reqID)
		}
		delete(s.timers, key)
	}
}
