package cluster

import (
	"fmt"
	"path/filepath"

	"crdtsmr/internal/transport"
)

// Cluster is a convenience wrapper running one Node per member over a
// shared in-process Mesh — the deployment used by the examples, the
// integration tests, and the benchmark harness (the paper's three replicas
// on a LAN, §4).
type Cluster struct {
	mesh  *transport.Mesh
	nodes map[transport.NodeID]*Node
	order []transport.NodeID
}

// New starts a node for every member of cfg over the given mesh. When
// cfg.DataDir is set, every node persists into its own subdirectory
// (<DataDir>/<id>), mirroring one process per replica each with its own
// -data-dir.
func New(mesh *transport.Mesh, cfg Config) (*Cluster, error) {
	c := &Cluster{
		mesh:  mesh,
		nodes: make(map[transport.NodeID]*Node, len(cfg.Members)),
		order: append([]transport.NodeID(nil), cfg.Members...),
	}
	for _, id := range cfg.Members {
		nodeCfg := cfg
		if cfg.DataDir != "" {
			nodeCfg.DataDir = filepath.Join(cfg.DataDir, string(id))
		}
		n, err := NewNode(id, nodeCfg, func(id transport.NodeID, h transport.Handler) transport.Conn {
			return mesh.Join(id, h)
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start %s: %w", id, err)
		}
		c.nodes[id] = n
	}
	return c, nil
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id transport.NodeID) *Node { return c.nodes[id] }

// Nodes returns the nodes in member order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		if n, ok := c.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Crash simulates a crash of the named node: the mesh drops its traffic
// and the node fails its commands. Internal state is retained
// (crash-recovery model, §2.1). The survivors drop their digest/delta
// transfer caches about the crashed node — peer-down is the signal that
// bounds how stale those caches can get.
func (c *Cluster) Crash(id transport.NodeID) {
	c.mesh.SetDown(id, true)
	if n := c.nodes[id]; n != nil {
		n.SetCrashed(true)
	}
	for oid, n := range c.nodes {
		if oid != id {
			n.ForgetPeer(id)
		}
	}
}

// Recover brings a crashed node back with its retained state.
func (c *Cluster) Recover(id transport.NodeID) {
	c.mesh.SetDown(id, false)
	if n := c.nodes[id]; n != nil {
		n.SetCrashed(false)
	}
}

// Restart brings a node back the hard way: its volatile state is
// discarded and the keyspace rehydrated from its snapshot directory, as
// if the process had been killed and re-exec'd with the same -data-dir.
// The survivors' digest/delta caches about the node are dropped first
// (the restarted node's own caches are gone with its volatile state), so
// the PR 4 transfer machinery re-earns its assumptions from fresh
// traffic. Works on a crashed node (the usual sequence: Crash, then
// Restart) and on a live one (a rolling restart). Requires the cluster
// to have been created with a DataDir.
func (c *Cluster) Restart(id transport.NodeID) error {
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("cluster: restart of unknown node %s", id)
	}
	for oid, o := range c.nodes {
		if oid != id {
			o.ForgetPeer(id)
		}
	}
	if err := n.Restart(); err != nil {
		return err
	}
	c.mesh.SetDown(id, false)
	return nil
}

// Close stops every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		_ = n.Close()
	}
}
