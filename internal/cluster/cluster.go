package cluster

import (
	"fmt"
	"path/filepath"

	"crdtsmr/internal/transport"
)

// Cluster is a convenience wrapper running one Node per member over a
// shared in-process Mesh — the deployment used by the examples, the
// integration tests, and the benchmark harness (the paper's three replicas
// on a LAN, §4).
type Cluster struct {
	mesh  *transport.Mesh
	nodes map[transport.NodeID]*Node
	order []transport.NodeID
}

// New starts a node for every member of cfg over the given mesh. When
// cfg.DataDir is set, every node persists into its own subdirectory
// (<DataDir>/<id>), mirroring one process per replica each with its own
// -data-dir.
func New(mesh *transport.Mesh, cfg Config) (*Cluster, error) {
	c := &Cluster{
		mesh:  mesh,
		nodes: make(map[transport.NodeID]*Node, len(cfg.Members)),
		order: append([]transport.NodeID(nil), cfg.Members...),
	}
	for _, id := range cfg.Members {
		nodeCfg := cfg
		if cfg.DataDir != "" {
			nodeCfg.DataDir = filepath.Join(cfg.DataDir, string(id))
		}
		n, err := NewNode(id, nodeCfg, func(id transport.NodeID, h transport.Handler) transport.Conn {
			return mesh.Join(id, h)
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start %s: %w", id, err)
		}
		c.nodes[id] = n
	}
	return c, nil
}

// AddNode starts a new node on the cluster's mesh as a joiner: it comes
// up with an empty member set, refuses client commands, and serves no
// quorums until an existing member reconfigures it in with
// Node.Reconfigure — which also bootstraps its per-key state from the
// configuration pushes. cfg is the node's configuration (typically the
// same one the cluster was created with); its Members field is ignored
// for the protocol and Joining is forced on. With a DataDir set the
// joiner persists into its own subdirectory like every other node.
func (c *Cluster) AddNode(id transport.NodeID, cfg Config) (*Node, error) {
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("cluster: node %s already exists", id)
	}
	cfg.Joining = true
	if cfg.DataDir != "" {
		cfg.DataDir = filepath.Join(cfg.DataDir, string(id))
	}
	n, err := NewNode(id, cfg, func(id transport.NodeID, h transport.Handler) transport.Conn {
		return c.mesh.Join(id, h)
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: add %s: %w", id, err)
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return n, nil
}

// RemoveNode stops the named node and detaches it from the mesh. The
// caller is expected to have reconfigured it out of the member set first
// (Node.Reconfigure on a survivor); removing a current member is a crash,
// which the protocol tolerates but the operator presumably did not mean.
func (c *Cluster) RemoveNode(id transport.NodeID) error {
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("cluster: remove of unknown node %s", id)
	}
	delete(c.nodes, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return n.Close()
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id transport.NodeID) *Node { return c.nodes[id] }

// Nodes returns the nodes in member order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		if n, ok := c.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Crash simulates a crash of the named node: the mesh drops its traffic
// and the node fails its commands. Internal state is retained
// (crash-recovery model, §2.1). The survivors drop their digest/delta
// transfer caches about the crashed node — peer-down is the signal that
// bounds how stale those caches can get.
func (c *Cluster) Crash(id transport.NodeID) {
	c.mesh.SetDown(id, true)
	if n := c.nodes[id]; n != nil {
		n.SetCrashed(true)
	}
	for oid, n := range c.nodes {
		if oid != id {
			n.ForgetPeer(id)
		}
	}
}

// Recover brings a crashed node back with its retained state.
func (c *Cluster) Recover(id transport.NodeID) {
	c.mesh.SetDown(id, false)
	if n := c.nodes[id]; n != nil {
		n.SetCrashed(false)
	}
}

// Restart brings a node back the hard way: its volatile state is
// discarded and the keyspace rehydrated from its snapshot directory, as
// if the process had been killed and re-exec'd with the same -data-dir.
// The survivors' digest/delta caches about the node are dropped first
// (the restarted node's own caches are gone with its volatile state), so
// the PR 4 transfer machinery re-earns its assumptions from fresh
// traffic. Works on a crashed node (the usual sequence: Crash, then
// Restart) and on a live one (a rolling restart). Requires the cluster
// to have been created with a DataDir.
func (c *Cluster) Restart(id transport.NodeID) error {
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("cluster: restart of unknown node %s", id)
	}
	for oid, o := range c.nodes {
		if oid != id {
			o.ForgetPeer(id)
		}
	}
	if err := n.Restart(); err != nil {
		return err
	}
	c.mesh.SetDown(id, false)
	return nil
}

// Close stops every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		_ = n.Close()
	}
}
