package cluster

import (
	"fmt"

	"crdtsmr/internal/transport"
)

// Cluster is a convenience wrapper running one Node per member over a
// shared in-process Mesh — the deployment used by the examples, the
// integration tests, and the benchmark harness (the paper's three replicas
// on a LAN, §4).
type Cluster struct {
	mesh  *transport.Mesh
	nodes map[transport.NodeID]*Node
	order []transport.NodeID
}

// New starts a node for every member of cfg over the given mesh.
func New(mesh *transport.Mesh, cfg Config) (*Cluster, error) {
	c := &Cluster{
		mesh:  mesh,
		nodes: make(map[transport.NodeID]*Node, len(cfg.Members)),
		order: append([]transport.NodeID(nil), cfg.Members...),
	}
	for _, id := range cfg.Members {
		n, err := NewNode(id, cfg, func(id transport.NodeID, h transport.Handler) transport.Conn {
			return mesh.Join(id, h)
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start %s: %w", id, err)
		}
		c.nodes[id] = n
	}
	return c, nil
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id transport.NodeID) *Node { return c.nodes[id] }

// Nodes returns the nodes in member order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		if n, ok := c.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Crash simulates a crash of the named node: the mesh drops its traffic
// and the node fails its commands. Internal state is retained
// (crash-recovery model, §2.1). The survivors drop their digest/delta
// transfer caches about the crashed node — peer-down is the signal that
// bounds how stale those caches can get.
func (c *Cluster) Crash(id transport.NodeID) {
	c.mesh.SetDown(id, true)
	if n := c.nodes[id]; n != nil {
		n.SetCrashed(true)
	}
	for oid, n := range c.nodes {
		if oid != id {
			n.ForgetPeer(id)
		}
	}
}

// Recover brings a crashed node back with its retained state.
func (c *Cluster) Recover(id transport.NodeID) {
	c.mesh.SetDown(id, false)
	if n := c.nodes[id]; n != nil {
		n.SetCrashed(false)
	}
}

// Close stops every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		_ = n.Close()
	}
}
