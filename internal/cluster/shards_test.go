package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/internal/checker"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// TestShardForDeterministicAndSpread pins the routing contract: the
// key→shard map is a pure function of key and shard count (every
// command and inbound frame for a key must land on the same loop), and
// a realistic keyspace actually spreads across the shards — a hash
// collapsing to one shard would silently void the whole design.
func TestShardForDeterministicAndSpread(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Shards = 4
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := c.Node("n1")
	if got := n.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	hit := make(map[int]int)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("obj/%02d", i)
		s1 := n.shardFor(key)
		if s2 := n.shardFor(key); s2 != s1 {
			t.Fatalf("shardFor(%q) unstable: %d then %d", key, s1, s2)
		}
		if s1 < 0 || s1 >= 4 {
			t.Fatalf("shardFor(%q) = %d out of range", key, s1)
		}
		hit[s1]++
	}
	if len(hit) < 3 {
		t.Fatalf("64 keys landed on only %d of 4 shards: %v", len(hit), hit)
	}
}

// TestDefaultShardsEnvOverride: Config.Shards = 0 resolves through
// CRDTSMR_SHARDS (the CI matrix knob) before falling back to GOMAXPROCS.
func TestDefaultShardsEnvOverride(t *testing.T) {
	t.Setenv("CRDTSMR_SHARDS", "3")
	if got := defaultShards(); got != 3 {
		t.Fatalf("defaultShards() = %d with CRDTSMR_SHARDS=3", got)
	}
	t.Setenv("CRDTSMR_SHARDS", "bogus")
	if got := defaultShards(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("defaultShards() = %d with bogus env, want GOMAXPROCS", got)
	}
	t.Setenv("CRDTSMR_SHARDS", "")
	if got := defaultShards(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("defaultShards() = %d with empty env, want GOMAXPROCS", got)
	}
}

// TestShardedChaosPartitionRollingRestart is the keyed-linearizability
// chaos test for the sharded runtime: a durable 3-node cluster with 4
// shards per node and delta state transfer serves a multi-key workload
// through a minority partition and a rolling restart of every node, and
// (a) the recorded history must be per-key linearizable, (b) after ALL
// nodes crash and restart — wiping every byte of volatile state,
// including anything sitting in a group-commit batch — every
// acknowledged increment must still be readable everywhere, which is
// persist-before-ack observed end to end.
func TestShardedChaosPartitionRollingRestart(t *testing.T) {
	mesh := transport.NewMesh(transport.WithSeed(23))
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Shards = 4
	cfg.RetransmitInterval = 10 * time.Millisecond
	cfg.StateTransfer = core.TransferDelta
	cfg.DataDir = t.TempDir()
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 120*time.Second)

	const nKeys = 12
	const opsPerPhase = 4
	ids := members(3)
	kh := checker.NewKeyedHistory()
	var acked [nKeys]atomic.Uint64

	// Keys must exercise more than one shard or the test degenerates to
	// the single-loop case.
	shardsHit := make(map[int]bool)
	for k := 0; k < nKeys; k++ {
		shardsHit[c.Node("n1").shardFor(fmt.Sprintf("key/%d", k))] = true
	}
	if len(shardsHit) < 2 {
		t.Fatalf("all %d keys hash to one shard; pick different key names", nKeys)
	}

	phase := func(healthy []transport.NodeID) {
		var wg sync.WaitGroup
		for k := 0; k < nKeys; k++ {
			key := fmt.Sprintf("key/%d", k)
			at := healthy[k%len(healthy)]
			wg.Add(1)
			go func(k int, key string, at transport.NodeID) {
				defer wg.Done()
				h := kh.For(key)
				n := c.Node(at)
				for i := 0; i < opsPerPhase; i++ {
					id := h.Begin(checker.OpInc)
					if _, err := n.UpdateKey(ctx, key, incBy(string(at)+key, 1)); err != nil {
						h.Discard(id)
						t.Errorf("update %s at %s: %v", key, at, err)
						return
					}
					h.End(id, 0)
					acked[k].Add(1)

					id = h.Begin(checker.OpRead)
					s, _, err := n.QueryKey(ctx, key)
					if err != nil {
						h.Discard(id)
						t.Errorf("query %s at %s: %v", key, at, err)
						return
					}
					h.End(id, s.(*crdt.GCounter).Value())
				}
			}(k, key, at)
		}
		wg.Wait()
	}

	phase(ids) // healthy baseline
	mesh.SetDown("n3", true)
	phase([]transport.NodeID{"n1", "n2"}) // minority partitioned away
	mesh.SetDown("n3", false)
	phase(ids) // healed
	for _, down := range ids {
		// Rolling restart: crash one node mid-workload, keep the quorum
		// serving, bring it back from disk.
		c.Crash(down)
		var healthy []transport.NodeID
		for _, id := range ids {
			if id != down {
				healthy = append(healthy, id)
			}
		}
		phase(healthy)
		if err := c.Restart(down); err != nil {
			t.Fatalf("rolling restart of %s: %v", down, err)
		}
	}
	phase(ids) // healed again
	if t.Failed() {
		return
	}

	if err := checker.CheckKeyedLinearizable(kh); err != nil {
		t.Fatalf("chaos history not per-key linearizable: %v", err)
	}

	// Full-cluster restart: every acknowledged op must survive on disk
	// alone (group-commit batches included).
	for _, id := range ids {
		c.Crash(id)
	}
	for _, id := range ids {
		if err := c.Restart(id); err != nil {
			t.Fatalf("full restart of %s: %v", id, err)
		}
	}
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("key/%d", k)
		want := acked[k].Load()
		for _, id := range ids {
			s, _, err := c.Node(id).QueryKey(ctx, key)
			if err != nil {
				t.Fatalf("query %q at %s after full restart: %v", key, id, err)
			}
			if got := s.(*crdt.GCounter).Value(); got < want {
				t.Fatalf("key %q at %s = %d after full restart, want ≥ %d acked (persist-before-ack violated)",
					key, id, got, want)
			}
		}
	}
}

// TestShardCountEquivalenceSingleKey: a sequential single-key workload
// must produce bit-identical observable behavior at 1 shard and at 4 —
// sharding partitions the keyspace across loops, it must never change
// what any one key's replication computes. The workload is sequential,
// so every read's value is fully determined by the acknowledged writes
// before it, independent of goroutine scheduling; mesh delivery shares
// one seed so the runs face the same network.
func TestShardCountEquivalenceSingleKey(t *testing.T) {
	run := func(shards int) []uint64 {
		mesh := transport.NewMesh(transport.WithSeed(77))
		defer mesh.Close()
		cfg := testConfig(3)
		cfg.Shards = shards
		cfg.DataDir = t.TempDir()
		c, err := New(mesh, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx := ctxWith(t, 60*time.Second)

		const key = "the-key"
		h := checker.NewHistory()
		var values []uint64
		for i := 0; i < 12; i++ {
			at := c.Node(members(3)[i%3])
			id := h.Begin(checker.OpInc)
			if _, err := at.UpdateKey(ctx, key, incBy(fmt.Sprintf("slot%d", i%3), 1)); err != nil {
				t.Fatalf("shards=%d op %d: %v", shards, i, err)
			}
			h.End(id, 0)
			rd := c.Node(members(3)[(i+1)%3])
			id = h.Begin(checker.OpRead)
			s, _, err := rd.QueryKey(ctx, key)
			if err != nil {
				t.Fatalf("shards=%d read %d: %v", shards, i, err)
			}
			v := s.(*crdt.GCounter).Value()
			h.End(id, v)
			values = append(values, v)
		}
		if err := checker.CheckCounterLinearizable(h.Ops()); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return values
	}

	one, four := run(1), run(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("read %d diverged: shards=1 saw %d, shards=4 saw %d\n1: %v\n4: %v",
				i, one[i], four[i], one, four)
		}
	}
}

// TestShardFanoutCrashAndForget: SetCrashed and ForgetPeer must take
// effect on every shard — a command for any key, whichever shard owns
// it, observes the crash once SetCrashed returns.
func TestShardFanoutCrashAndForget(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Shards = 4
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 10*time.Second)
	n1 := c.Node("n1")

	// Warm a key on every shard.
	keys := make([]string, 0, 8)
	for i := 0; len(keys) < 8 && i < 256; i++ {
		keys = append(keys, fmt.Sprintf("warm/%d", i))
	}
	for _, key := range keys {
		if _, err := n1.UpdateKey(ctx, key, incBy("n1", 1)); err != nil {
			t.Fatal(err)
		}
	}

	n1.SetCrashed(true)
	for _, key := range keys {
		if _, err := n1.UpdateKey(ctx, key, incBy("n1", 1)); err != ErrUnavailable {
			t.Fatalf("update %q on crashed node: err = %v, want ErrUnavailable", key, err)
		}
	}
	n1.SetCrashed(false)
	n1.ForgetPeer("n2") // must not deadlock or panic across shards
	for _, key := range keys {
		if _, err := n1.UpdateKey(ctx, key, incBy("n1", 1)); err != nil {
			t.Fatalf("update %q after recover: %v", key, err)
		}
	}
}

// TestSerialPersistPathStillWorks: the SerialPersist escape hatch (and
// bench baseline) must behave exactly like the seed's synchronous path,
// including surviving a full restart.
func TestSerialPersistPathStillWorks(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Shards = 2
	cfg.SerialPersist = true
	cfg.DataDir = t.TempDir()
	c, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxWith(t, 20*time.Second)

	if _, err := c.Node("n1").UpdateKey(ctx, "k", incBy("n1", 5)); err != nil {
		t.Fatal(err)
	}
	for _, id := range members(3) {
		c.Crash(id)
	}
	for _, id := range members(3) {
		if err := c.Restart(id); err != nil {
			t.Fatal(err)
		}
	}
	s, _, err := c.Node("n2").QueryKey(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 5 {
		t.Fatalf("serial-persist cluster read %d after restart, want 5", got)
	}
}
