package cluster

import (
	"errors"

	"crdtsmr/internal/persist"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

var errRestartVolatile = errors.New("cluster: Restart requires a DataDir (volatile nodes can only Recover)")

// The group-commit persistence pipeline. On a durable node (unless
// Config.SerialPersist), the shard's event loop never writes a snapshot
// itself: after each event it packages the touched keys' snapshot
// records, outbound envelopes, and deferred client completions into
// persistReqs and hands them to this shard's persister goroutine. The
// persister drains its queue opportunistically — every request that
// arrives while the disk is busy joins the next batch — and commits a
// whole batch with persist.Store.SaveBatch: every key's temp file
// written, then renamed, then ONE directory sync for all of them. Each
// committed request is pushed onto the shard's release queue, and the
// loop (woken by relSig) releases its envelopes and completions.
//
// The persist-before-ack contract survives intact, per key: a request's
// envelopes and completions are released only after every snapshot write
// ordered before it (in the shard's FIFO pipeline) has landed, and a
// failed write marks its key broken — that key's releases are withheld,
// degrading it to a lossy link, until a later save succeeds — while every
// other key's releases proceed.
//
// The release queue is unbounded (mutex + slice) by design: the persister
// must never block on the loop, because the loop blocks sending to
// persistq when the queue fills — a bounded release path would deadlock
// the two against each other.

// outEnv is one packed wire frame awaiting release to a peer.
type outEnv struct {
	to    transport.NodeID
	frame []byte
}

// persistReq is one event's durability work for one key, in shard-FIFO
// order: an optional snapshot record to write, plus the envelopes and
// completions that must not be released before it (and everything queued
// ahead of it for this key) is durable.
type persistReq struct {
	key     string
	rec     *persist.Record // nil when the key's durable state did not advance
	version uint64          // StateVersion rec covers
	envs    []outEnv
	notify  []func()
	barrier chan struct{} // drain marker (restartPrep): closed once all prior requests committed
}

// persistDone is one committed (or failed) request on the release queue.
type persistDone struct {
	req persistReq
	ok  bool // the batch containing req's write committed (always true when req.rec == nil)
}

// enqueuePersist hands one request to the persister, blocking if the
// queue is full. Blocking here is safe: the persister never blocks on
// the loop (releases go through the unbounded release queue), so the
// queue always drains.
func (s *shard) enqueuePersist(req persistReq) {
	select {
	case s.persistq <- req:
	case <-s.n.quit:
	}
}

// flushOutboxAsync is flushAfterEvent's durable-node path: it collects
// each dirty key's outbox and (when the key's durable state advanced) its
// snapshot record, attaches the event's deferred completions, and feeds
// everything to the persister. Nothing is sent or acknowledged here — the
// release happens in processReleases once the disk confirms.
func (s *shard) flushOutboxAsync() {
	if len(s.dirty) == 0 && len(s.notify) == 0 {
		return
	}
	reqs := make([]persistReq, 0, len(s.dirty))
	reqIdx := make(map[string]int, len(s.dirty))
	for _, key := range s.dirty {
		rep, ok := s.replicas[key]
		if !ok {
			continue
		}
		out := rep.TakeOutbox()
		req := persistReq{key: key}
		if !s.crashed {
			if v := rep.StateVersion(); v != s.savedVersion[key] && v != s.inflight[key] {
				rec, err := persist.FromSnapshot(key, rep.Snapshot())
				if err != nil {
					// Marshal failure is a persist failure: the key degrades
					// to a lossy link until a later snapshot encodes.
					s.persistErrs++
					s.persistBroken[key] = struct{}{}
				} else {
					req.rec = &rec
					req.version = v
					s.inflight[key] = v
				}
			}
			for _, e := range out {
				req.envs = append(req.envs, outEnv{to: e.To, frame: wire.PackEnvelope(key, e.Payload)})
			}
		}
		for reqID := range s.timers[key] {
			if !rep.Pending(reqID) {
				s.disarmTimer(key, reqID)
			}
		}
		if req.rec != nil || len(req.envs) > 0 {
			reqIdx[key] = len(reqs)
			reqs = append(reqs, req)
		}
	}
	s.clearDirty()
	// Completions ride their key's request — or an empty one, so a
	// completion for a key with an earlier write still in flight waits
	// its turn in the FIFO.
	for _, kn := range s.notify {
		i, ok := reqIdx[kn.key]
		if !ok {
			i = len(reqs)
			reqIdx[kn.key] = i
			reqs = append(reqs, persistReq{key: kn.key})
		}
		reqs[i].notify = append(reqs[i].notify, kn.fn)
	}
	s.notify = s.notify[:0]
	for i := range reqs {
		s.enqueuePersist(reqs[i])
	}
}

// persister runs as this shard's dedicated persistence goroutine: take
// everything currently queued, commit it as one batch, repeat. The
// batch size self-tunes to disk latency — the slower the device, the
// more requests accumulate per commit, which is the whole point of
// group commit.
func (s *shard) persister() {
	defer s.n.wg.Done()
	for {
		var batch []persistReq
		select {
		case <-s.n.quit:
			return
		case req := <-s.persistq:
			batch = append(batch, req)
		}
	drain:
		for {
			select {
			case req := <-s.persistq:
				batch = append(batch, req)
			default:
				break drain
			}
		}
		s.commitBatch(batch)
	}
}

// commitBatch writes the batch's snapshot records — deduplicated to the
// last record per key, since a later record supersedes an earlier one
// for the same key within a batch — in one SaveBatch, then pushes every
// request onto the release queue with the batch's verdict. SaveBatch is
// all-or-nothing, so a failure fails exactly the requests carrying
// records in this batch (the torn-batch keys); record-less requests for
// other keys ride through unharmed, and the loop's persistBroken
// tracking withholds releases for any key whose disk state is behind.
func (s *shard) commitBatch(batch []persistReq) {
	lastRec := make(map[string]int, len(batch))
	for i, req := range batch {
		if req.rec != nil {
			lastRec[req.key] = i
		}
	}
	var recs []persist.Record
	for i, req := range batch {
		if req.rec != nil && lastRec[req.key] == i {
			recs = append(recs, *req.rec)
		}
	}
	ok := true
	if len(recs) > 0 {
		ok = s.n.store.SaveBatch(recs) == nil
	}
	dones := make([]persistDone, 0, len(batch))
	for _, req := range batch {
		if req.barrier != nil {
			continue
		}
		dones = append(dones, persistDone{req: req, ok: ok})
	}
	s.pushReleases(dones)
	// Barriers close after their batch's releases are visible to the
	// loop, so a drain that observes the barrier has everything.
	for _, req := range batch {
		if req.barrier != nil {
			close(req.barrier)
		}
	}
}

func (s *shard) pushReleases(dones []persistDone) {
	if len(dones) == 0 {
		return
	}
	s.relMu.Lock()
	s.rel = append(s.rel, dones...)
	s.relMu.Unlock()
	select {
	case s.relSig <- struct{}{}:
	default:
	}
}

// processReleases runs on the loop: for each committed request, settle
// the key's durability bookkeeping, then release its envelopes and
// completions — unless the key is broken (its disk state is behind its
// promised state), in which case both are withheld: peers and clients
// see a lossy link, never an ack the disk cannot back.
func (s *shard) processReleases() {
	s.relMu.Lock()
	dones := s.rel
	s.rel = nil
	s.relMu.Unlock()
	for _, d := range dones {
		key := d.req.key
		if d.req.rec != nil {
			if d.ok {
				s.savedVersion[key] = d.req.version
				if s.inflight[key] == d.req.version {
					delete(s.inflight, key)
				}
				delete(s.persistBroken, key)
			} else {
				s.persistErrs++
				delete(s.inflight, key)
				s.persistBroken[key] = struct{}{}
			}
		}
		if _, broken := s.persistBroken[key]; broken || (d.req.rec != nil && !d.ok) {
			continue
		}
		if !s.crashed {
			for _, e := range d.req.envs {
				if s.n.cfg.LinkBudget > 0 {
					s.sendBudgeted(e.to, key, e.frame)
				} else {
					s.n.conn.Send(e.to, e.frame)
				}
			}
		}
		for _, fn := range d.req.notify {
			fn()
		}
	}
}

// drainPersister quiesces the pipeline: a barrier travels the queue
// behind every pending request, and the loop processes releases until
// the barrier reports all of them committed. Called on the loop
// (restartPrep); no new requests can be enqueued meanwhile because the
// loop is here.
func (s *shard) drainPersister() error {
	if s.persistq == nil {
		return nil
	}
	b := make(chan struct{})
	select {
	case s.persistq <- persistReq{key: "", barrier: b}:
	case <-s.n.quit:
		return ErrStopped
	}
	for {
		s.processReleases()
		select {
		case <-b:
			s.processReleases()
			return nil
		case <-s.relSig:
		case <-s.n.quit:
			return ErrStopped
		}
	}
}
