package bench

import (
	"io"
	"reflect"
	"testing"
	"time"
)

func protocolsScale(seed int64) Scale {
	return Scale{
		Duration: 800 * time.Millisecond, // virtual scaling knob: 32 sessions, 800 mixed ops
		Replicas: 3,
		Net:      NetProfile{Seed: seed}, // below the floor: FigureProtocols substitutes the LAN profile
	}
}

// TestFigureProtocolsDeterministic: the whole shootout runs in virtual
// time, so two runs from the same seed must produce identical series —
// every Y value, not approximately.
func TestFigureProtocolsDeterministic(t *testing.T) {
	a, err := FigureProtocols(io.Discard, protocolsScale(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigureProtocols(io.Discard, protocolsScale(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatalf("same seed produced different series:\n%+v\n%+v", a.Series, b.Series)
	}
	c, err := FigureProtocols(io.Discard, protocolsScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Series, c.Series) {
		t.Fatal("different seeds produced identical series — seed is not wired through")
	}
}

// TestFigureProtocolsLatencyGuard is the CI regression floor for the
// paper's headline property: on the hot-key read-after-write session, the
// log-free protocol's median-replica p50 must beat both log-based RSM
// baselines by at least 25%. The measurement is virtual-time (hop delays
// dominate, CPU speed cancels out), so the assertion is latency-bound and
// holds on a single-CPU runner.
func TestFigureProtocolsLatencyGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full shootout figure")
	}
	fig, err := FigureProtocols(io.Discard, protocolsScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if fig.Schema != FigureSchema || fig.Figure != "protocols" {
		t.Fatalf("figure header = %+v", fig)
	}
	AssertProtocolsGuard(t, fig)
}

// AssertProtocolsGuard checks the latency-bound regression floor on a
// protocols figure record. Shared with the CI bench-smoke step, which
// re-checks the record it just generated.
func AssertProtocolsGuard(t *testing.T, fig *FigureJSON) {
	t.Helper()
	sess := fig.SeriesNamed("session p50 median")
	if sess == nil {
		t.Fatalf("missing 'session p50 median' series: %+v", fig.Series)
	}
	get := func(name string) float64 {
		i := ProtocolIndex(fig, name)
		if i < 0 || i >= len(sess.Y) {
			t.Fatalf("protocol %q not in figure (protocols=%v, %d points)", name, fig.Params["protocols"], len(sess.Y))
		}
		return sess.Y[i]
	}
	crdt := get("crdtsmr/delta")
	paxos := get("paxos")
	raft := get("raft")
	if crdt <= 0 || paxos <= 0 || raft <= 0 {
		t.Fatalf("degenerate session p50s: crdt=%v paxos=%v raft=%v", crdt, paxos, raft)
	}
	const floor = 1.25
	if paxos < crdt*floor {
		t.Errorf("crdtsmr advantage over paxos below floor: %0.f µs vs %0.f µs (want ≥ %.2fx)",
			crdt, paxos, floor)
	}
	if raft < crdt*floor {
		t.Errorf("crdtsmr advantage over raft below floor: %0.f µs vs %0.f µs (want ≥ %.2fx)",
			crdt, raft, floor)
	}
}
