package bench

import (
	"io"
	"testing"
	"time"
)

// TestFigureShardsGroupCommitSpeedup is the acceptance run for the
// sharded-event-loop + group-commit figure (the PR's ≥2× gate): with 4
// shards, 64 keys, and a 1 ms emulated per-write flush under SyncAlways,
// durable update throughput must be at least 2× the serial-persist
// single-loop baseline. The run is latency-bound, not CPU-bound: the
// baseline pays the emulated flush sleep once per dirty key, serially,
// on its only event loop, while the group-commit pipeline overlaps those
// sleeps (many keys per batch, persister off the loop, shards in
// parallel) — sleeping in parallel needs no extra cores, so the
// assertion holds on a single-CPU box where a CPU-scaling claim would
// not. (The emulated flush also stands in for the physical fsync, and
// the sweep keeps snapshot files on tmpfs, so neither the host's fsync
// behavior nor its disk's syscall latency leaks into the ratio; the
// measured margin is ~4-5×, gated at 2×.)
func TestFigureShardsGroupCommitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-bound measurement")
	}
	// The serial baseline's closed-loop queueing delay reaches ~100 ms;
	// the measured window must be a healthy multiple of that latency or
	// per-row sampling noise swamps the ratio.
	s := Scale{
		Duration: 2500 * time.Millisecond,
		Warmup:   300 * time.Millisecond,
		Replicas: 3,
		Net:      LANProfile(),
	}
	fig, err := FigureShards(io.Discard, s)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Schema != FigureSchema || fig.Figure != "shards" {
		t.Fatalf("figure header = %+v", fig)
	}

	serial, group := fig.SeriesNamed("serial-persist"), fig.SeriesNamed("group-commit")
	if serial == nil || group == nil {
		t.Fatalf("missing series: %+v", fig.Series)
	}
	if len(serial.Y) != 1 || serial.Y[0] <= 0 {
		t.Fatalf("serial baseline malformed: %+v", serial)
	}
	base := serial.Y[0]
	var fourShard float64
	for i, x := range group.X {
		if x == 4 {
			fourShard = group.Y[i]
		}
	}
	if fourShard <= 0 {
		t.Fatalf("no 4-shard group-commit point: %+v", group)
	}
	if speedup := fourShard / base; speedup < 2 {
		t.Fatalf("4-shard group commit = %.0f updates/s vs serial %.0f (%.2fx), want ≥ 2x",
			fourShard, base, speedup)
	}
}
