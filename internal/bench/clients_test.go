package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunNetSystem(t *testing.T) {
	sys, err := NewNetSystem(3, 4, 0, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := Run(sys, RunConfig{Clients: 12, ReadFraction: 0.5, Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors in failure-free run", res.Errors)
	}
	if res.ReadLat.Count == 0 || res.UpdateLat.Count == 0 {
		t.Fatalf("one-sided workload recorded: %+v", res)
	}
}

func TestNetSystemCrashSurfacesErrors(t *testing.T) {
	sys, err := NewNetSystem(3, 2, 0, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// The load generator reconnects on errors, so a mid-run crash must
	// not sink the whole run (Figure 4 behaviour over the network path).
	res := Run(sys, RunConfig{
		Clients:      6,
		ReadFraction: 0.5,
		Duration:     600 * time.Millisecond,
		Warmup:       50 * time.Millisecond,
		FailAfter:    200 * time.Millisecond,
		FailReplica:  2,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed across the crash")
	}
}

func TestFigureClients(t *testing.T) {
	s := tinyScale()
	var buf bytes.Buffer
	if err := FigureClients(&buf, s, []int{1, 2}, []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure C") || !strings.Contains(out, "keys\\clients") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "with per-key") {
		t.Fatalf("missing batched sweep:\n%s", out)
	}
}
