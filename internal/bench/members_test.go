package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestFigureMembersNoStall is the CI guard behind `bench -figure members`:
// at a tiny scale the online grow/shrink timeline must produce a figure at
// all (both reconfigurations commit) with the built-in stall and shed
// guards passing, and the record must carry the series and commit
// latencies downstream tooling reads.
func TestFigureMembersNoStall(t *testing.T) {
	s := DefaultScale()
	s.Duration = 500 * time.Millisecond
	s.Warmup = 100 * time.Millisecond
	var buf bytes.Buffer
	fig, err := FigureMembers(&buf, s, 12)
	if err != nil {
		t.Fatalf("members figure: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"ops", "read_p95", "update_p95"} {
		series := fig.SeriesNamed(name)
		if series == nil || len(series.Y) == 0 {
			t.Fatalf("figure record missing series %q", name)
		}
	}
	for _, p := range []string{"grow_commit_ms", "shrink_commit_ms"} {
		v, ok := fig.Params[p].(float64)
		if !ok || v <= 0 {
			t.Fatalf("figure param %s = %v, want a positive duration", p, fig.Params[p])
		}
	}
	out := buf.String()
	if !strings.Contains(out, "member-add m1") || !strings.Contains(out, "member-remove n1") {
		t.Fatalf("timeline table missing reconfiguration markers:\n%s", out)
	}
}
