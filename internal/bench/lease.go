package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"crdtsmr/internal/core"
)

// leaseNetFloor is the minimum emulated per-message delay for the lease
// figure. The fast path saves protocol round trips, so the measurement
// must be latency-bound — with near-zero delays (or on a single-CPU box)
// scheduler noise would swamp the RTT saving. Profiles below the floor
// are replaced with a wide-jitter WAN-ish hop, whose reordering is what
// puts replication traffic in flight during reads.
const leaseNetFloor = 500 * time.Microsecond

// primeRead runs one synchronous read at replica 0 before the measured
// window opens. A lease only installs when a read's quorum agrees on the
// round, which never happens while traffic keeps rounds in motion;
// installed in an idle moment it self-sustains, because leased reads do
// not mint rounds. The lease-off run gets the same priming read so the
// two workloads stay identical.
func primeRead(sys *CRDTSystem) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _, err := sys.Client(0).Read(ctx)
	return err
}

// FigureLease measures the round-lease query fast path (docs/PROTOCOL.md
// §5) on a read-after-write session at one pinned proposer: the client
// fires an increment and immediately reads the same hot key while the
// update's MERGEs are still in flight. Without the lease, the read's
// PREPARE races every MERGE — any quorum member that has not merged yet
// breaks the quorum's state agreement and the read pays the vote phase
// (2+ RTTs), more often as the quorum widens, and the update's round
// clobber can deny the vote on top. The leased read skips PREPARE and
// tolerates laggards — the acceptor's coverage check passes because the
// proposal subsumes whatever the acceptor is missing — so it stays at
// one round trip regardless of cluster size.
//
// The sweep is over replica count: the off-path penalty grows with the
// quorum, the leased path does not.
func FigureLease(w io.Writer, s Scale) (*FigureJSON, error) {
	replicaSweep := []int{3, 5, 7}
	net := s.Net
	if net.MaxDelay < leaseNetFloor {
		net = NetProfile{MinDelay: 500 * time.Microsecond, MaxDelay: 4 * time.Millisecond, Seed: net.Seed}
	}

	fig := &FigureJSON{
		Schema: FigureSchema,
		Figure: "lease",
		GitSHA: buildGitSHA(),
		Params: map[string]any{
			"workload":     "read-after-async-write, one pinned proposer, hot key",
			"replicas":     replicaSweep,
			"duration_ms":  s.Duration.Milliseconds(),
			"min_delay_us": net.MinDelay.Microseconds(),
			"max_delay_us": net.MaxDelay.Microseconds(),
			"seed":         net.Seed,
		},
	}
	off := FigureSeries{Name: "read p50, lease off", Unit: "us"}
	on := FigureSeries{Name: "read p50, lease on", Unit: "us"}
	hits := FigureSeries{Name: "lease hits", Unit: "count"}
	fallbacks := FigureSeries{Name: "lease fallbacks", Unit: "count"}

	fmt.Fprintf(w, "Figure lease: read-after-write p50 at one pinned proposer (%s–%s hop delay)\n",
		net.MinDelay, net.MaxDelay)
	fmt.Fprintf(w, "  %-10s %14s %14s %12s %10s %10s\n",
		"replicas", "lease off", "lease on", "reduction", "hits", "fallbacks")

	for _, reps := range replicaSweep {
		var p50 [2]time.Duration
		var counters [2]core.Counters
		for i, lease := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Lease = lease
			sys, err := NewCRDTSystemOpts(reps, 0, net, opts)
			if err != nil {
				return nil, err
			}
			if err := primeRead(sys); err != nil {
				sys.Close()
				return nil, err
			}
			stats, err := runReadAfterWrite(sys, s.Duration, s.Warmup)
			if err != nil {
				sys.Close()
				return nil, err
			}
			p50[i] = stats.P50
			counters[i] = sys.Counters()
			sys.Close()
		}
		reduction := 0.0
		if p50[0] > 0 {
			reduction = 1 - float64(p50[1])/float64(p50[0])
		}
		fmt.Fprintf(w, "  %-10d %14s %14s %11.0f%% %10d %10d\n",
			reps, fmtDur(p50[0]), fmtDur(p50[1]), reduction*100,
			counters[1].LeaseHits, counters[1].LeaseFallbacks)

		x := float64(reps)
		off.X, off.Y = append(off.X, x), append(off.Y, float64(p50[0].Microseconds()))
		on.X, on.Y = append(on.X, x), append(on.Y, float64(p50[1].Microseconds()))
		hits.X, hits.Y = append(hits.X, x), append(hits.Y, float64(counters[1].LeaseHits))
		fallbacks.X, fallbacks.Y = append(fallbacks.X, x), append(fallbacks.Y, float64(counters[1].LeaseFallbacks))
	}
	fig.Series = []FigureSeries{off, on, hits, fallbacks}
	return fig, nil
}

// runReadAfterWrite drives the session loop: submit an increment
// asynchronously, immediately read the key, wait for both, repeat. Read
// latencies inside the warmup are discarded.
func runReadAfterWrite(sys *CRDTSystem, duration, warmup time.Duration) (LatencyStats, error) {
	cl := sys.Pinned(0).Client(0)
	ctx, cancel := context.WithTimeout(context.Background(), warmup+duration+10*time.Second)
	defer cancel()
	deadline := time.Now().Add(warmup + duration)
	measureFrom := time.Now().Add(warmup)

	var samples []time.Duration
	for time.Now().Before(deadline) {
		upDone := make(chan error, 1)
		go func() { upDone <- cl.Inc(ctx) }()
		// A brief stagger orders the two submissions at the node: the read
		// must snapshot a state that includes the increment, or it would
		// measure a plain read instead of a read-after-write.
		time.Sleep(100 * time.Microsecond)
		t0 := time.Now()
		_, _, err := cl.Read(ctx)
		lat := time.Since(t0)
		if uerr := <-upDone; uerr != nil {
			return LatencyStats{}, uerr
		}
		if err != nil {
			return LatencyStats{}, err
		}
		if t0.After(measureFrom) {
			samples = append(samples, lat)
		}
	}
	if len(samples) == 0 {
		return LatencyStats{}, fmt.Errorf("measurement window produced no reads")
	}
	return summarize(samples), nil
}
