package bench

import (
	"context"
	"fmt"
	"io"
	"time"
)

// FigureMembers measures the protocol across an online membership change
// (beyond the paper; docs/PROTOCOL.md §6): a closed-loop workload at 10 %
// updates runs for eight intervals while an admin grows the group by a
// fresh joiner (whose state bootstrap is the reconfiguration push itself)
// and then reconfigures a boot member out. The paper's no-leader argument
// for Figure 4 extends to reconfiguration: there is no election to wait
// out, so the timeline should show a latency blip at each commit but no
// unavailability window.
//
// The figure is its own guard, so the CI smoke run fails loudly:
//
//   - stall guard: every full measured interval must complete operations;
//   - shed guard: client errors (ErrNotMember redirects off the removed
//     member) must stay a small multiple of the client count — bounded
//     fail-over, not thrash.
func FigureMembers(w io.Writer, s Scale, clients int) (*FigureJSON, error) {
	if clients <= 0 {
		clients = 64
	}
	sys, err := NewCRDTSystem(s.Replicas, 0, s.Net)
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	duration := 4 * s.Duration // the timeline needs several intervals
	interval := duration / 8
	growAt := 2 * interval
	shrinkAt := 5 * interval
	removed := sys.ids[0]

	// The admin runs beside the workload, serialized like a real operator:
	// the shrink is not proposed until the grow round has committed.
	type adminReport struct {
		growLat, shrinkLat time.Duration
		err                error
	}
	adminCh := make(chan adminReport, 1)
	start := time.Now()
	go func() {
		var rep adminReport
		ctx, cancel := context.WithTimeout(context.Background(), duration+30*time.Second)
		defer cancel()
		time.Sleep(time.Until(start.Add(s.Warmup + growAt)))
		t0 := time.Now()
		if err := sys.Grow(ctx, "m1"); err != nil {
			rep.err = fmt.Errorf("grow m1: %w", err)
			adminCh <- rep
			return
		}
		rep.growLat = time.Since(t0)
		time.Sleep(time.Until(start.Add(s.Warmup + shrinkAt)))
		t0 = time.Now()
		if err := sys.Shrink(ctx, removed); err != nil {
			rep.err = fmt.Errorf("shrink %s: %w", removed, err)
			adminCh <- rep
			return
		}
		rep.shrinkLat = time.Since(t0)
		adminCh <- rep
	}()

	res := Run(sys, RunConfig{
		Clients:      clients,
		ReadFraction: 0.90,
		Duration:     duration,
		Warmup:       s.Warmup,
		Interval:     interval,
	})
	admin := <-adminCh
	if admin.err != nil {
		return nil, admin.err
	}

	fmt.Fprintf(w, "Figure members: p95 latency per interval across an online membership change (%d clients, 10%% updates)\n", clients)
	fmt.Fprintf(w, "\n  grow commit %s (3→4, joiner m1 bootstrapped by the round), shrink commit %s (4→3, %s removed)\n",
		fmtDur(admin.growLat), fmtDur(admin.shrinkLat), removed)
	fmt.Fprintf(w, "  %-10s %14s %14s %10s\n", "interval", "read p95", "update p95", "ops")
	timeline := res.Timeline
	for len(timeline) > 0 && timeline[len(timeline)-1].Ops == 0 {
		timeline = timeline[:len(timeline)-1] // trailing partial interval
	}
	growIv := int(growAt / interval)
	shrinkIv := int(shrinkAt / interval)
	for _, iv := range timeline {
		marker := ""
		switch iv.Index {
		case growIv:
			marker = "  <- member-add m1"
		case shrinkIv:
			marker = fmt.Sprintf("  <- member-remove %s", removed)
		}
		fmt.Fprintf(w, "  %-10d %14s %14s %10d%s\n", iv.Index, fmtDur(iv.ReadP95), fmtDur(iv.UpdateP95), iv.Ops, marker)
	}
	fmt.Fprintf(w, "  median throughput %.0f req/s, %d ops, %d client errors (fail-over off %s)\n",
		res.Throughput, res.Ops, res.Errors, removed)

	// Stall guard: reconfiguration must never close the availability
	// window — a full interval with zero completed operations means it did.
	full := timeline
	if len(full) > 1 {
		full = full[:len(full)-1]
	}
	for _, iv := range full {
		if iv.Ops == 0 {
			return nil, fmt.Errorf("bench: members stall guard: interval %d completed no operations", iv.Index)
		}
	}
	// Shed guard: the removed member refuses with ErrNotMember and clients
	// fail over once or twice; anything beyond a small multiple of the
	// client count means they thrashed instead of settling.
	if res.Errors > 6*clients {
		return nil, fmt.Errorf("bench: members shed guard: %d client errors for %d clients", res.Errors, clients)
	}

	fig := &FigureJSON{
		Schema: FigureSchema,
		Figure: "members",
		GitSHA: buildGitSHA(),
		Params: map[string]any{
			"clients":          clients,
			"replicas":         s.Replicas,
			"read_fraction":    0.90,
			"interval_ms":      float64(interval) / float64(time.Millisecond),
			"grow_interval":    growIv,
			"shrink_interval":  shrinkIv,
			"removed_member":   string(removed),
			"grow_commit_ms":   float64(admin.growLat) / float64(time.Millisecond),
			"shrink_commit_ms": float64(admin.shrinkLat) / float64(time.Millisecond),
			"errors":           res.Errors,
			"throughput":       res.Throughput,
		},
	}
	ops := FigureSeries{Name: "ops", Unit: "ops/interval"}
	readP95 := FigureSeries{Name: "read_p95", Unit: "ms"}
	updateP95 := FigureSeries{Name: "update_p95", Unit: "ms"}
	for _, iv := range timeline {
		x := float64(iv.Index)
		ops.X = append(ops.X, x)
		ops.Y = append(ops.Y, float64(iv.Ops))
		readP95.X = append(readP95.X, x)
		readP95.Y = append(readP95.Y, float64(iv.ReadP95)/float64(time.Millisecond))
		updateP95.X = append(updateP95.X, x)
		updateP95.Y = append(updateP95.Y, float64(iv.UpdateP95)/float64(time.Millisecond))
	}
	fig.Series = []FigureSeries{ops, readP95, updateP95}
	return fig, nil
}
