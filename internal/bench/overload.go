package bench

// The overload figure: what admission control buys when clients offer
// more load than the cluster should accept. Closed-loop workers drive
// the served store through the real TCP client path at offered
// concurrencies well past the in-flight caps, once with admission
// control engaged (small MaxTotalInFlight, excess answered StatusBusy
// and absorbed by client backoff) and once with the caps far out of
// reach (everything admitted and queued). The two series make the
// trade visible: shedding keeps the executing set small, so completed
// operations keep bounded tails, at the price of busy retries;
// queueing admits everything and lets the tail grow with the offered
// load.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/store"
)

// Admission limits for the "admission on" series. Deliberately small so
// the sweep's upper offered loads overshoot them severalfold; the "off"
// series uses the server defaults (1024 conns, 4096 in flight), which
// the sweep never approaches.
const (
	overloadPerConnInFlight = 8  // per-connection pipelining cap
	overloadTotalInFlight   = 16 // per-server executing cap
	overloadKeys            = 8
	overloadReplicas        = 3
)

// overloadResult is one (offered load, admission setting) measurement.
type overloadResult struct {
	Offered    int
	Completed  int
	Goodput    float64 // completed operations per second of measured window
	Lat        LatencyStats
	ShedReqs   uint64 // server-side StatusBusy sheds (admission on only)
	ShedConns  uint64
	BusyGaveUp int // operations whose client exhausted retries on ErrBusy
}

// runOverload drives `offered` closed-loop workers against a fresh
// 3-replica served store for the measured window and reports goodput
// and completion-latency statistics. Workers share one pooled client
// per server; an operation that exhausts the client's retry budget on
// ErrBusy is counted as given up — not an error — and the worker moves
// on, which is exactly the contract StatusBusy promises (the operation
// provably did not execute).
func runOverload(offered int, opts server.Options, duration, warmup time.Duration, net NetProfile) (overloadResult, error) {
	mesh := net.mesh()
	ids := members(overloadReplicas)
	st, err := store.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 10 * time.Millisecond,
	})
	if err != nil {
		mesh.Close()
		return overloadResult{}, err
	}
	defer mesh.Close()
	defer st.Close()

	var servers []*server.Server
	var clients []*client.Client
	defer func() {
		for _, cl := range clients {
			_ = cl.Close()
		}
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()
	for _, id := range ids {
		srv, err := server.Start(st.Node(id), "127.0.0.1:0", opts)
		if err != nil {
			return overloadResult{}, err
		}
		servers = append(servers, srv)
		// The retry budget absorbs shedding: backoff long enough to let
		// the executing set drain, attempts plentiful enough that giving
		// up stays the exception even at the top of the sweep.
		// Pool 4 × per-conn cap 8 lets the connections collectively offer
		// twice the server-wide cap, so the global tier actually trips:
		// per-conn semaphores alone would otherwise gate the executing
		// set at exactly MaxTotalInFlight and nothing would ever shed.
		cl, err := client.New([]string{srv.Addr()},
			client.WithPool(4),
			client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}))
		if err != nil {
			return overloadResult{}, err
		}
		clients = append(clients, cl)
	}
	keys := make([]string, overloadKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj/%04d", i)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	measureFrom := start.Add(warmup)
	stopAt := start.Add(warmup + duration)

	type workerStats struct {
		lat    []time.Duration
		gaveUp int
	}
	stats := make([]workerStats, offered)
	errc := make(chan error, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		i := i
		cl := clients[i%len(clients)]
		ctr := cl.Counter(keys[i%len(keys)])
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := &stats[i]
			for op := 0; ; op++ {
				opStart := time.Now()
				if opStart.After(stopAt) {
					return
				}
				var err error
				if op%3 == 2 {
					_, err = ctr.Value(ctx)
				} else {
					err = ctr.Inc(ctx, 1)
				}
				if opStart.Before(measureFrom) {
					continue
				}
				switch {
				case err == nil:
					rec.lat = append(rec.lat, time.Since(opStart))
				case errors.Is(err, client.ErrBusy):
					rec.gaveUp++
				default:
					errc <- fmt.Errorf("worker %d op %d: %w", i, op, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(measureFrom)
	select {
	case err := <-errc:
		return overloadResult{}, err
	default:
	}

	res := overloadResult{Offered: offered}
	var all []time.Duration
	for i := range stats {
		all = append(all, stats[i].lat...)
		res.BusyGaveUp += stats[i].gaveUp
	}
	res.Completed = len(all)
	res.Goodput = float64(res.Completed) / elapsed.Seconds()
	res.Lat = summarize(all)
	for _, srv := range servers {
		res.ShedReqs += srv.ShedRequests()
		res.ShedConns += srv.ShedConns()
	}
	return res, nil
}

// FigureOverload sweeps offered closed-loop load past the admission
// limits and reports goodput and p99 completion latency with admission
// control on (tight caps, StatusBusy sheds, client backoff) and off
// (caps out of reach, everything queues). Emits a BENCH_overload.json
// record via the returned FigureJSON.
func FigureOverload(w io.Writer, s Scale) (*FigureJSON, error) {
	sweep := s.Clients
	fig := &FigureJSON{
		Schema: FigureSchema,
		Figure: "overload",
		GitSHA: buildGitSHA(),
		Params: map[string]any{
			"workload":     "closed-loop 2:1 inc:read, 8 keys, pooled TCP clients",
			"replicas":     overloadReplicas,
			"offered":      sweep,
			"max_inflight": overloadPerConnInFlight,
			"max_total":    overloadTotalInFlight,
			"duration_ms":  s.Duration.Milliseconds(),
			"min_delay_us": s.Net.MinDelay.Microseconds(),
			"max_delay_us": s.Net.MaxDelay.Microseconds(),
			"seed":         s.Net.Seed,
		},
	}
	goodOn := FigureSeries{Name: "goodput, admission on", Unit: "ops/s"}
	goodOff := FigureSeries{Name: "goodput, admission off", Unit: "ops/s"}
	p99On := FigureSeries{Name: "p99, admission on", Unit: "us"}
	p99Off := FigureSeries{Name: "p99, admission off", Unit: "us"}
	sheds := FigureSeries{Name: "requests shed", Unit: "count"}

	fmt.Fprintf(w, "Figure overload: goodput and p99 vs offered load (%d replicas, per-server cap %d in flight when on)\n",
		overloadReplicas, overloadTotalInFlight)
	fmt.Fprintf(w, "  %-10s %14s %12s %14s %12s %10s %10s\n",
		"offered", "goodput off", "p99 off", "goodput on", "p99 on", "shed", "gave up")

	for _, offered := range sweep {
		off, err := runOverload(offered, server.Options{}, s.Duration, s.Warmup, s.Net)
		if err != nil {
			return nil, err
		}
		on, err := runOverload(offered, server.Options{
			MaxInFlight:      overloadPerConnInFlight,
			MaxTotalInFlight: overloadTotalInFlight,
		}, s.Duration, s.Warmup, s.Net)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "  %-10d %14.0f %12s %14.0f %12s %10d %10d\n",
			offered, off.Goodput, fmtDur(off.Lat.P99), on.Goodput, fmtDur(on.Lat.P99),
			on.ShedReqs, on.BusyGaveUp)

		x := float64(offered)
		goodOn.X, goodOn.Y = append(goodOn.X, x), append(goodOn.Y, on.Goodput)
		goodOff.X, goodOff.Y = append(goodOff.X, x), append(goodOff.Y, off.Goodput)
		p99On.X, p99On.Y = append(p99On.X, x), append(p99On.Y, float64(on.Lat.P99.Microseconds()))
		p99Off.X, p99Off.Y = append(p99Off.X, x), append(p99Off.Y, float64(off.Lat.P99.Microseconds()))
		sheds.X, sheds.Y = append(sheds.X, x), append(sheds.Y, float64(on.ShedReqs))
	}
	fig.Series = []FigureSeries{goodOff, goodOn, p99Off, p99On, sheds}
	return fig, nil
}
