// Package bench is the evaluation harness: a closed-loop load generator
// equivalent to the paper's Basho Bench setup (§4: each client submits a
// request to one of the three replicas and waits for the reply before
// submitting the next; clients are spread evenly over replicas; throughput
// is aggregated in 1 s intervals and reported as the median), plus the
// drivers that regenerate every figure of the evaluation section.
package bench
