package bench

import (
	"fmt"
	"io"
	"time"
)

// Scale shrinks or grows the experiments relative to the paper's setup so
// the full evaluation can run anywhere from a CI job to a long unattended
// sweep.
type Scale struct {
	Duration time.Duration // per measurement (paper: 10 min)
	Warmup   time.Duration
	Clients  []int         // client sweep (paper: 1..4096)
	Batch    time.Duration // batching window (paper: 5 ms)
	Replicas int           // paper: 3
	Net      NetProfile
}

// DefaultScale finishes in a few minutes and preserves the figures' shape.
func DefaultScale() Scale {
	return Scale{
		Duration: 2 * time.Second,
		Warmup:   300 * time.Millisecond,
		Clients:  []int{1, 8, 64, 256},
		Batch:    5 * time.Millisecond,
		Replicas: 3,
		Net:      LANProfile(),
	}
}

// systemSpec names a system constructor for the sweeps.
type systemSpec struct {
	name  string
	build func() (System, error)
}

func (s Scale) systems() []systemSpec {
	return []systemSpec{
		{"CRDT Paxos", func() (System, error) { return NewCRDTSystem(s.Replicas, 0, s.Net) }},
		{"CRDT Paxos w/batching", func() (System, error) { return NewCRDTSystem(s.Replicas, s.Batch, s.Net) }},
		{"Raft", func() (System, error) { return NewRaftSystem(s.Replicas, s.Net) }},
		{"Multi-Paxos", func() (System, error) { return NewPaxosSystem(s.Replicas, s.Net) }},
	}
}

// Figure1 regenerates the throughput comparison (paper Figure 1): median
// throughput vs. number of clients for five read mixes across the four
// systems on three replicas.
func Figure1(w io.Writer, s Scale) error {
	readMixes := []float64{1.00, 0.95, 0.90, 0.50, 0.00}
	fmt.Fprintf(w, "Figure 1: throughput (requests/s, median of %s intervals) on %d replicas\n", time.Second, s.Replicas)
	for _, mix := range readMixes {
		fmt.Fprintf(w, "\n  %.0f%% reads\n", mix*100)
		fmt.Fprintf(w, "  %-24s", "clients")
		for _, c := range s.Clients {
			fmt.Fprintf(w, "%12d", c)
		}
		fmt.Fprintln(w)
		for _, spec := range s.systems() {
			fmt.Fprintf(w, "  %-24s", spec.name)
			for _, clients := range s.Clients {
				sys, err := spec.build()
				if err != nil {
					return err
				}
				res := Run(sys, RunConfig{
					Clients:      clients,
					ReadFraction: mix,
					Duration:     s.Duration,
					Warmup:       s.Warmup,
				})
				sys.Close()
				fmt.Fprintf(w, "%12.0f", res.Throughput)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Figure2 regenerates the 95th-percentile latency comparison (paper
// Figure 2): read and update p95 latency vs. number of clients with 10 %
// updates.
func Figure2(w io.Writer, s Scale) error {
	fmt.Fprintf(w, "Figure 2: 95th percentile latency with 10%% updates on %d replicas\n", s.Replicas)
	type row struct {
		name    string
		reads   []time.Duration
		updates []time.Duration
	}
	var rows []row
	for _, spec := range s.systems() {
		r := row{name: spec.name}
		for _, clients := range s.Clients {
			sys, err := spec.build()
			if err != nil {
				return err
			}
			res := Run(sys, RunConfig{
				Clients:      clients,
				ReadFraction: 0.90,
				Duration:     s.Duration,
				Warmup:       s.Warmup,
			})
			sys.Close()
			r.reads = append(r.reads, res.ReadLat.P95)
			r.updates = append(r.updates, res.UpdateLat.P95)
		}
		rows = append(rows, r)
	}
	for _, part := range []string{"read", "update"} {
		fmt.Fprintf(w, "\n  %s p95 latency\n", part)
		fmt.Fprintf(w, "  %-24s", "clients")
		for _, c := range s.Clients {
			fmt.Fprintf(w, "%12d", c)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-24s", r.name)
			vals := r.reads
			if part == "update" {
				vals = r.updates
			}
			for _, v := range vals {
				fmt.Fprintf(w, "%12s", fmtDur(v))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Figure3 regenerates the read round-trip distribution (paper Figure 3):
// the cumulative percentage of reads processed within k round trips, with
// and without batching, for several client counts at 10 % updates. The
// paper's headline: with 5 ms batches, more than 97 % of reads finish
// within two round trips.
func Figure3(w io.Writer, s Scale, clientCounts []int) (headline float64, err error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{16, 32, 64, 128}
	}
	const maxRTT = 15
	fmt.Fprintf(w, "Figure 3: cumulative %% of reads by round trips (10%% updates, %d replicas)\n", s.Replicas)
	for _, batch := range []time.Duration{0, s.Batch} {
		label := "without batching"
		if batch > 0 {
			label = fmt.Sprintf("with %s batching", batch)
		}
		fmt.Fprintf(w, "\n  %s\n", label)
		fmt.Fprintf(w, "  %-12s", "round trips")
		for k := 1; k <= 8; k++ {
			fmt.Fprintf(w, "%9d", k)
		}
		fmt.Fprintln(w)
		for _, clients := range clientCounts {
			sys, err := NewCRDTSystem(s.Replicas, batch, s.Net)
			if err != nil {
				return 0, err
			}
			res := Run(sys, RunConfig{
				Clients:      clients,
				ReadFraction: 0.90,
				Duration:     s.Duration,
				Warmup:       s.Warmup,
			})
			sys.Close()
			cdf := res.ReadRTTs.CDF(maxRTT)
			fmt.Fprintf(w, "  %4d clients", clients)
			for k := 0; k < 8; k++ {
				fmt.Fprintf(w, "%8.1f%%", cdf[k])
			}
			fmt.Fprintln(w)
			// The headline is the worst batched row across client counts.
			if batch > 0 && (headline == 0 || cdf[1] < headline) {
				headline = cdf[1]
			}
		}
	}
	fmt.Fprintf(w, "\n  headline (batching, ≤2 RTTs, worst client count): %.1f%% (paper: >97%%)\n", headline)
	return headline, nil
}

// Figure4 regenerates the node-failure timeline (paper Figure 4): p95 read
// and update latency per interval with one replica crashing mid-run, 64
// clients, 10 % updates, with and without batching. The paper's point:
// no leader means no unavailability window, only a modest latency bump.
func Figure4(w io.Writer, s Scale, clients int) error {
	if clients <= 0 {
		clients = 64
	}
	fmt.Fprintf(w, "Figure 4: p95 latency per interval across a node failure (%d clients, 10%% updates)\n", clients)
	for _, batch := range []time.Duration{0, s.Batch} {
		label := "without batching"
		if batch > 0 {
			label = fmt.Sprintf("with %s batching", batch)
		}
		sys, err := NewCRDTSystem(s.Replicas, batch, s.Net)
		if err != nil {
			return err
		}
		duration := 4 * s.Duration // timeline needs several intervals
		res := Run(sys, RunConfig{
			Clients:      clients,
			ReadFraction: 0.90,
			Duration:     duration,
			Warmup:       s.Warmup,
			Interval:     duration / 8,
			FailAfter:    duration / 2,
			FailReplica:  2,
		})
		sys.Close()
		fmt.Fprintf(w, "\n  %s (replica n3 fails at interval %d)\n", label, 4)
		fmt.Fprintf(w, "  %-10s %14s %14s %10s\n", "interval", "read p95", "update p95", "ops")
		timeline := res.Timeline
		for len(timeline) > 0 && timeline[len(timeline)-1].Ops == 0 {
			timeline = timeline[:len(timeline)-1] // trailing partial interval
		}
		for _, iv := range timeline {
			marker := ""
			if iv.Index == 4 {
				marker = "  <- failure"
			}
			fmt.Fprintf(w, "  %-10d %14s %14s %10d%s\n", iv.Index, fmtDur(iv.ReadP95), fmtDur(iv.UpdateP95), iv.Ops, marker)
		}
	}
	return nil
}
