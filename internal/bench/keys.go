package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/store"
	"crdtsmr/internal/transport"
)

// --- sharded multi-object store under benchmark ---

// MultiCRDTSystem runs the paper's protocol as a sharded store: nKeys
// independent G-Counter objects over one replica group, every key its own
// replication instance multiplexed on the nodes' event loops. Client i
// works key i mod nKeys at replica (i / nKeys) mod replicas, so each key's
// clients are spread across replicas.
type MultiCRDTSystem struct {
	name string
	mesh *transport.Mesh
	st   *store.Store
	ids  []transport.NodeID
	keys []string
}

// NewMultiCRDTSystem starts the sharded store over n replicas and nKeys
// keys. batch enables per-key §3.6 batching.
func NewMultiCRDTSystem(n, nKeys int, batch time.Duration, net NetProfile) (*MultiCRDTSystem, error) {
	return NewMultiCRDTSystemOpts(n, nKeys, MultiOpts{Batch: batch}, net)
}

// MultiOpts configures the store beyond the defaults: batching, event-loop
// sharding, and the durability pipeline. The zero value reproduces
// NewMultiCRDTSystem's volatile, default-sharded store.
type MultiOpts struct {
	// Batch enables per-key §3.6 batching.
	Batch time.Duration
	// DataDir, when non-empty, makes every node durable (each persists
	// into its own subdirectory).
	DataDir string
	// Shards sets the per-node event-loop shard count (0 = default).
	Shards int
	// SerialPersist forces the synchronous one-Save-per-event durability
	// path — the pre-group-commit baseline the shards figure compares
	// against.
	SerialPersist bool
	// PersistSync and PersistWriteDelay pass through to the snapshot
	// store: the sync policy and the emulated per-write device latency.
	PersistSync       persist.SyncPolicy
	PersistWriteDelay time.Duration
	// Retransmit overrides the 10 ms retransmit interval. The durability
	// benchmarks must: with per-write flush latency, op latencies sit in
	// the 10-500 ms range, and a 10 ms timer floods the slow rows' event
	// queues with duplicate MERGEs until fresh frames are dropped.
	Retransmit time.Duration
}

// NewMultiCRDTSystemOpts is NewMultiCRDTSystem with explicit store
// options; the durability benchmarks use it to pit the serial-persist
// baseline against the sharded group-commit pipeline.
func NewMultiCRDTSystemOpts(n, nKeys int, o MultiOpts, net NetProfile) (*MultiCRDTSystem, error) {
	if nKeys <= 0 {
		return nil, fmt.Errorf("bench: need at least one key, got %d", nKeys)
	}
	name := fmt.Sprintf("CRDT Paxos sharded(%d keys)", nKeys)
	if o.Batch > 0 {
		name = fmt.Sprintf("CRDT Paxos sharded(%d keys) w/batching(%s)", nKeys, o.Batch)
	}
	retransmit := o.Retransmit
	if retransmit <= 0 {
		retransmit = 10 * time.Millisecond
	}
	mesh := net.mesh()
	ids := members(n)
	st, err := store.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		BatchInterval:      o.Batch,
		RetransmitInterval: retransmit,
		Shards:             o.Shards,
		DataDir:            o.DataDir,
		SerialPersist:      o.SerialPersist,
		PersistSync:        o.PersistSync,
		PersistWriteDelay:  o.PersistWriteDelay,
	})
	if err != nil {
		mesh.Close()
		return nil, err
	}
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj/%04d", i)
	}
	return &MultiCRDTSystem{name: name, mesh: mesh, st: st, ids: ids, keys: keys}, nil
}

// Name implements System.
func (s *MultiCRDTSystem) Name() string { return s.name }

// Client implements System.
func (s *MultiCRDTSystem) Client(i int) Client {
	key := s.keys[i%len(s.keys)]
	at := s.ids[(i/len(s.keys))%len(s.ids)]
	return &multiClient{st: s.st, at: at, key: key, slot: string(at)}
}

// Crash implements System.
func (s *MultiCRDTSystem) Crash(replica int) { s.st.Crash(s.ids[replica%len(s.ids)]) }

// Recover implements System.
func (s *MultiCRDTSystem) Recover(replica int) { s.st.Recover(s.ids[replica%len(s.ids)]) }

// Close implements System.
func (s *MultiCRDTSystem) Close() {
	s.st.Close()
	s.mesh.Close()
}

type multiClient struct {
	st   *store.Store
	at   transport.NodeID
	key  string
	slot string
}

func (c *multiClient) Inc(ctx context.Context) error {
	_, err := c.st.Update(ctx, c.at, c.key, func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(c.slot, 1), nil
	})
	return err
}

func (c *multiClient) Read(ctx context.Context) (int64, int, error) {
	s, stats, err := c.st.Query(ctx, c.at, c.key)
	if err != nil {
		return 0, 0, err
	}
	return int64(s.(*crdt.GCounter).Value()), stats.RoundTrips, nil
}

// --- keys-vs-throughput sweep ---

// KeySweepPoint is one measurement of the sweep: the sharded store under
// clientsPerKey closed-loop clients per key, at a given key count.
type KeySweepPoint struct {
	Keys    int
	Clients int
	Result  Result

	// UpdatesPerSec and ReadsPerSec split the aggregate rate by kind
	// (completed operations over the measured window).
	UpdatesPerSec float64
	ReadsPerSec   float64
}

// RunKeysSweep measures aggregate throughput as the keyspace grows with a
// fixed per-key load: for each key count k it runs k×clientsPerKey clients
// against a fresh sharded store. Because keys are independent replication
// groups with no shared ordering machinery, aggregate throughput grows
// with the key count until the nodes' event loops saturate — the sharding
// story Multi-Paxos and Raft cannot tell without per-key logs.
func RunKeysSweep(s Scale, keyCounts []int, clientsPerKey int, readFraction float64, batch time.Duration) ([]KeySweepPoint, error) {
	points := make([]KeySweepPoint, 0, len(keyCounts))
	for _, k := range keyCounts {
		sys, err := NewMultiCRDTSystem(s.Replicas, k, batch, s.Net)
		if err != nil {
			return nil, err
		}
		res := Run(sys, RunConfig{
			Clients:      k * clientsPerKey,
			ReadFraction: readFraction,
			Duration:     s.Duration,
			Warmup:       s.Warmup,
			Seed:         s.Net.Seed,
		})
		sys.Close()
		if res.Errors > 0 {
			return nil, fmt.Errorf("bench: %d errors at %d keys", res.Errors, k)
		}
		secs := res.Elapsed.Seconds()
		p := KeySweepPoint{Keys: k, Clients: k * clientsPerKey, Result: res}
		if secs > 0 {
			p.UpdatesPerSec = float64(res.UpdateLat.Count) / secs
			p.ReadsPerSec = float64(res.ReadLat.Count) / secs
		}
		points = append(points, p)
	}
	return points, nil
}

// FigureKeys reports the keys-vs-throughput sweep (the repository's
// scaling experiment beyond the paper's single-object evaluation):
// aggregate and per-kind throughput of the sharded store as the key count
// grows with clientsPerKey closed-loop clients per key, with and without
// per-key batching.
func FigureKeys(w io.Writer, s Scale, keyCounts []int, clientsPerKey int) error {
	const readFraction = 0.5
	fmt.Fprintf(w, "Figure K: sharded store throughput vs key count (%d replicas, %d clients/key, %.0f%% reads)\n",
		s.Replicas, clientsPerKey, readFraction*100)
	for _, batch := range []time.Duration{0, s.Batch} {
		label := "without batching"
		if batch > 0 {
			label = fmt.Sprintf("with per-key %s batching", batch)
		}
		fmt.Fprintf(w, "\n  %s\n", label)
		fmt.Fprintf(w, "  %6s %9s %12s %12s %12s %12s\n",
			"keys", "clients", "ops/s", "updates/s", "reads/s", "read p95")
		points, err := RunKeysSweep(s, keyCounts, clientsPerKey, readFraction, batch)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Fprintf(w, "  %6d %9d %12.0f %12.0f %12.0f %12s\n",
				p.Keys, p.Clients, p.Result.Throughput, p.UpdatesPerSec, p.ReadsPerSec,
				p.Result.ReadLat.P95.Round(time.Microsecond))
		}
	}
	return nil
}
