package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{
		Duration: 250 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Clients:  []int{4},
		Batch:    2 * time.Millisecond,
		Replicas: 3,
		Net:      NetProfile{Seed: 1}, // zero delay for speed
	}
}

func TestRunCRDTSystem(t *testing.T) {
	sys, err := NewCRDTSystem(3, 0, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := Run(sys, RunConfig{Clients: 4, ReadFraction: 0.5, Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors in failure-free run", res.Errors)
	}
	if res.ReadLat.Count == 0 || res.UpdateLat.Count == 0 {
		t.Fatalf("one-sided workload recorded: %+v", res)
	}
	if len(res.ReadRTTs) == 0 {
		t.Fatal("no RTT samples for CRDT Paxos reads")
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunRaftSystem(t *testing.T) {
	sys, err := NewRaftSystem(3, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := Run(sys, RunConfig{Clients: 3, ReadFraction: 0.5, Duration: 400 * time.Millisecond, Warmup: 200 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
}

func TestRunPaxosSystem(t *testing.T) {
	sys, err := NewPaxosSystem(3, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := Run(sys, RunConfig{Clients: 3, ReadFraction: 0.5, Duration: 400 * time.Millisecond, Warmup: 200 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
}

func TestRunWithFailureInjection(t *testing.T) {
	sys, err := NewCRDTSystem(3, 0, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := Run(sys, RunConfig{
		Clients:      6,
		ReadFraction: 0.9,
		Duration:     500 * time.Millisecond,
		Warmup:       50 * time.Millisecond,
		Interval:     100 * time.Millisecond,
		FailAfter:    250 * time.Millisecond,
		FailReplica:  2,
	})
	if res.Ops == 0 {
		t.Fatal("no ops despite minority failure")
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	// Ops keep completing after the failure (continuous availability).
	post := 0
	for _, iv := range res.Timeline[3:] {
		post += iv.Ops
	}
	if post == 0 {
		t.Fatal("no operations after the failure: availability lost")
	}
}

func TestLatencyStats(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	st := summarize(samples)
	if st.Count != 100 || st.P50 != 50*time.Millisecond || st.P95 != 95*time.Millisecond || st.Max != 100*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st := summarize(nil); st.Count != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestRTTHistogramCDF(t *testing.T) {
	h := RTTHistogram{1: 80, 2: 15, 3: 5}
	cdf := h.CDF(5)
	if cdf[0] != 80 || cdf[1] != 95 || cdf[2] != 100 || cdf[4] != 100 {
		t.Fatalf("cdf = %v", cdf)
	}
	empty := RTTHistogram{}
	if got := empty.CDF(3); got[2] != 0 {
		t.Fatalf("empty cdf = %v", got)
	}
}

func TestMedianThroughput(t *testing.T) {
	if got := medianThroughput([]int{100, 300, 200}, time.Second); got != 200 {
		t.Fatalf("median = %f", got)
	}
	if got := medianThroughput([]int{100, 200}, time.Second); got != 150 {
		t.Fatalf("even median = %f", got)
	}
	if got := medianThroughput(nil, time.Second); got != 0 {
		t.Fatalf("empty median = %f", got)
	}
	if got := medianThroughput([]int{500}, 500*time.Millisecond); got != 1000 {
		t.Fatalf("interval scaling = %f", got)
	}
}

func TestFigure3Driver(t *testing.T) {
	var buf bytes.Buffer
	headline, err := Figure3(&buf, tinyScale(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "with 2ms batching") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if headline <= 0 {
		t.Fatalf("headline = %f", headline)
	}
}

func TestFigure4Driver(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure4(&buf, tinyScale(), 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "failure") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
