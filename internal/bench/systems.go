package bench

import (
	"context"
	"fmt"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/paxos"
	"crdtsmr/internal/raft"
	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// Client is one closed-loop benchmark client bound to a replica.
type Client interface {
	// Inc submits one increment and blocks until it completes.
	Inc(ctx context.Context) error
	// Read submits one linearizable read and blocks for the value and the
	// number of protocol round trips it took (0 if the system does not
	// report round trips).
	Read(ctx context.Context) (value int64, rtts int, err error)
}

// System is a replicated counter deployment under benchmark.
type System interface {
	Name() string
	// Client returns the i-th client's handle; clients are spread evenly
	// across replicas (the paper's load distribution).
	Client(i int) Client
	// Crash takes down one replica (Figure 4).
	Crash(replica int)
	// Recover brings it back.
	Recover(replica int)
	Close()
}

// NetProfile configures the emulated network.
type NetProfile struct {
	MinDelay time.Duration
	MaxDelay time.Duration
	Seed     int64
}

// LANProfile approximates the paper's 10 Gbit/s cluster interconnect:
// tens of microseconds per message hop, so a protocol round trip costs
// 40-160 µs — small against the 5 ms batching window, as on the paper's
// testbed.
func LANProfile() NetProfile {
	return NetProfile{MinDelay: 20 * time.Microsecond, MaxDelay: 80 * time.Microsecond, Seed: 1}
}

func (p NetProfile) mesh() *transport.Mesh {
	opts := []transport.MeshOption{transport.WithSeed(p.Seed)}
	if p.MaxDelay > 0 {
		opts = append(opts, transport.WithDelay(p.MinDelay, p.MaxDelay))
	}
	return transport.NewMesh(opts...)
}

func members(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}

// --- CRDT Paxos (this paper) ---

// CRDTSystem runs the paper's protocol on a replicated G-Counter.
type CRDTSystem struct {
	name  string
	mesh  *transport.Mesh
	clust *cluster.Cluster
	ids   []transport.NodeID
	cfg   cluster.Config // kept for starting joiners (FigureMembers)
}

// NewCRDTSystem starts the paper's protocol over n replicas. batch enables
// §3.6 batching (the paper evaluates 5 ms).
func NewCRDTSystem(n int, batch time.Duration, net NetProfile) (*CRDTSystem, error) {
	return NewCRDTSystemOpts(n, batch, net, core.DefaultOptions())
}

// NewCRDTSystemOpts is NewCRDTSystem with explicit protocol options, used
// by the ablation benchmarks (e.g. seeded prepares, §3.2).
func NewCRDTSystemOpts(n int, batch time.Duration, net NetProfile, opts core.Options) (*CRDTSystem, error) {
	name := "CRDT Paxos"
	if batch > 0 {
		name = fmt.Sprintf("CRDT Paxos w/batching(%s)", batch)
	}
	mesh := net.mesh()
	ids := members(n)
	cfg := cluster.Config{
		Members:       ids,
		Initial:       crdt.NewGCounter(),
		Options:       opts,
		BatchInterval: batch,
		// The retransmit timeout doubles as the vote-grace period when a
		// crashed acceptor leaves a denied vote undecidable (Figure 4);
		// keep it a small multiple of the protocol round trip.
		RetransmitInterval: 10 * time.Millisecond,
	}
	clust, err := cluster.New(mesh, cfg)
	if err != nil {
		mesh.Close()
		return nil, err
	}
	return &CRDTSystem{name: name, mesh: mesh, clust: clust, ids: ids, cfg: cfg}, nil
}

// Name implements System.
func (s *CRDTSystem) Name() string { return s.name }

// Client implements System.
func (s *CRDTSystem) Client(i int) Client {
	id := s.ids[i%len(s.ids)]
	return &crdtClient{node: s.clust.Node(id), slot: string(id)}
}

// Pinned returns a view of the system whose clients all attach to one
// replica instead of spreading across the cluster. The lease figure uses
// it: a round lease belongs to a single proposer, so the fast path only
// shows when the read load stays put.
func (s *CRDTSystem) Pinned(replica int) System {
	return &pinnedSystem{CRDTSystem: s, replica: replica}
}

type pinnedSystem struct {
	*CRDTSystem
	replica int
}

// Client implements System: every client index maps to the pinned replica.
func (p *pinnedSystem) Client(int) Client { return p.CRDTSystem.Client(p.replica) }

// Grow starts a fresh joiner on the mesh and reconfigures it into the
// member group from an existing member, returning once the round commits
// under the joint quorum. The joiner's state bootstrap is the
// reconfiguration push itself (FigureMembers).
func (s *CRDTSystem) Grow(ctx context.Context, id transport.NodeID) error {
	if _, err := s.clust.AddNode(id, s.cfg); err != nil {
		return err
	}
	proposer := s.clust.Node(s.ids[0])
	return proposer.Reconfigure(ctx, append(proposer.Members(), id))
}

// Shrink reconfigures the given member out of the group, proposing from a
// surviving boot member. The removed node keeps running and refusing
// commands — clients bound to it fail over, which is the behaviour the
// members figure measures.
func (s *CRDTSystem) Shrink(ctx context.Context, id transport.NodeID) error {
	var proposer *cluster.Node
	for _, nid := range s.ids {
		if nid != id {
			proposer = s.clust.Node(nid)
			break
		}
	}
	if proposer == nil {
		return fmt.Errorf("bench: no surviving proposer to remove %s", id)
	}
	var target []transport.NodeID
	for _, m := range proposer.Members() {
		if m != id {
			target = append(target, m)
		}
	}
	return proposer.Reconfigure(ctx, target)
}

// Counters sums the protocol counters across all replicas.
func (s *CRDTSystem) Counters() core.Counters {
	var sum core.Counters
	for _, node := range s.clust.Nodes() {
		sum.Add(node.Counters())
	}
	return sum
}

// Crash implements System.
func (s *CRDTSystem) Crash(replica int) { s.clust.Crash(s.ids[replica%len(s.ids)]) }

// Recover implements System.
func (s *CRDTSystem) Recover(replica int) { s.clust.Recover(s.ids[replica%len(s.ids)]) }

// Close implements System.
func (s *CRDTSystem) Close() {
	s.clust.Close()
	s.mesh.Close()
}

type crdtClient struct {
	node *cluster.Node
	slot string
}

func (c *crdtClient) Inc(ctx context.Context) error {
	_, err := c.node.Update(ctx, func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(c.slot, 1), nil
	})
	return err
}

func (c *crdtClient) Read(ctx context.Context) (int64, int, error) {
	s, stats, err := c.node.Query(ctx)
	if err != nil {
		return 0, 0, err
	}
	return int64(s.(*crdt.GCounter).Value()), stats.RoundTrips, nil
}

// --- Raft baseline ---

// RaftSystem runs the Raft baseline on a replicated integer.
type RaftSystem struct {
	mesh  *transport.Mesh
	nodes []*raft.Node
}

// NewRaftSystem starts a Raft cluster of n replicas.
func NewRaftSystem(n int, net NetProfile) (*RaftSystem, error) {
	mesh := net.mesh()
	ids := members(n)
	cfg := raft.Config{Members: ids, ElectionTimeout: 100 * time.Millisecond}
	s := &RaftSystem{mesh: mesh}
	for _, id := range ids {
		node, err := raft.NewNode(id, cfg, rsm.NewCounter(), func(id transport.NodeID, h transport.Handler) transport.Conn {
			return mesh.Join(id, h)
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.nodes = append(s.nodes, node)
	}
	return s, nil
}

// Name implements System.
func (s *RaftSystem) Name() string { return "Raft" }

// Client implements System.
func (s *RaftSystem) Client(i int) Client {
	return &raftClient{node: s.nodes[i%len(s.nodes)]}
}

// Crash implements System.
func (s *RaftSystem) Crash(replica int) {
	node := s.nodes[replica%len(s.nodes)]
	s.mesh.SetDown(node.ID(), true)
	node.SetCrashed(true)
}

// Recover implements System.
func (s *RaftSystem) Recover(replica int) {
	node := s.nodes[replica%len(s.nodes)]
	s.mesh.SetDown(node.ID(), false)
	node.SetCrashed(false)
}

// Close implements System.
func (s *RaftSystem) Close() {
	for _, node := range s.nodes {
		_ = node.Close()
	}
	s.mesh.Close()
}

type raftClient struct {
	node *raft.Node
}

func (c *raftClient) Inc(ctx context.Context) error {
	_, err := c.node.Execute(ctx, rsm.EncodeInc(1))
	return err
}

func (c *raftClient) Read(ctx context.Context) (int64, int, error) {
	// The paper's Raft baseline appends consistent reads to the log.
	res, err := c.node.Execute(ctx, rsm.EncodeRead())
	if err != nil {
		return 0, 0, err
	}
	v, err := rsm.DecodeValue(res)
	return v, 0, err
}

// --- Multi-Paxos baseline ---

// PaxosSystem runs the Multi-Paxos baseline (with leader read leases) on a
// replicated integer.
type PaxosSystem struct {
	mesh  *transport.Mesh
	nodes []*paxos.Node
}

// NewPaxosSystem starts a Multi-Paxos cluster of n replicas.
func NewPaxosSystem(n int, net NetProfile) (*PaxosSystem, error) {
	mesh := net.mesh()
	ids := members(n)
	cfg := paxos.Config{Members: ids, ElectionTimeout: 100 * time.Millisecond}
	s := &PaxosSystem{mesh: mesh}
	for _, id := range ids {
		node, err := paxos.NewNode(id, cfg, rsm.NewCounter(), func(id transport.NodeID, h transport.Handler) transport.Conn {
			return mesh.Join(id, h)
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.nodes = append(s.nodes, node)
	}
	return s, nil
}

// Name implements System.
func (s *PaxosSystem) Name() string { return "Multi-Paxos" }

// Client implements System.
func (s *PaxosSystem) Client(i int) Client {
	return &paxosClient{node: s.nodes[i%len(s.nodes)]}
}

// Crash implements System.
func (s *PaxosSystem) Crash(replica int) {
	node := s.nodes[replica%len(s.nodes)]
	s.mesh.SetDown(node.ID(), true)
	node.SetCrashed(true)
}

// Recover implements System.
func (s *PaxosSystem) Recover(replica int) {
	node := s.nodes[replica%len(s.nodes)]
	s.mesh.SetDown(node.ID(), false)
	node.SetCrashed(false)
}

// Close implements System.
func (s *PaxosSystem) Close() {
	for _, node := range s.nodes {
		_ = node.Close()
	}
	s.mesh.Close()
}

type paxosClient struct {
	node *paxos.Node
}

func (c *paxosClient) Inc(ctx context.Context) error {
	_, err := c.node.Execute(ctx, rsm.EncodeInc(1))
	return err
}

func (c *paxosClient) Read(ctx context.Context) (int64, int, error) {
	// Reads go through the lease fast path at the leader.
	res, err := c.node.Read(ctx, rsm.EncodeRead())
	if err != nil {
		return 0, 0, err
	}
	v, err := rsm.DecodeValue(res)
	return v, 0, err
}
