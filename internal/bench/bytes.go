package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// The bytes figure measures the axis the state-transfer refactor moves:
// replica-wire payload bytes per operation, as a function of object size,
// for the three -state-transfer modes. Unlike the throughput figures it
// runs a fixed operation count and reads transport.Stats byte counters,
// so the result is wall-clock independent — the right methodology on a
// small box, and the honest one for a bandwidth claim.

// BytesPoint is one (mode, object size) measurement of the bytes sweep.
type BytesPoint struct {
	Mode     core.StateTransfer
	Elements int // OR-set size the cluster is converged on
	StateLen int // marshaled size of that state, for context

	// Replica-wire payload bytes per operation (all messages of the
	// protocol run: PREPARE/ACK for reads, MERGE/MERGED for updates),
	// measured via the mesh's byte counters over Ops operations.
	ReadBytes float64 // linearizable read on the converged state
	AddBytes  float64 // add of a fresh element (state grows)
	NoopBytes float64 // add-if-absent of a present element (state unchanged)

	Ops int
}

// Reduction returns how many times fewer read bytes p uses than base.
func (p BytesPoint) Reduction(base BytesPoint) float64 {
	if p.ReadBytes == 0 {
		return 0
	}
	return base.ReadBytes / p.ReadBytes
}

// RunBytesSweep measures replica-wire bytes per operation on a converged
// or-set cluster for every state-transfer mode at every object size.
func RunBytesSweep(replicas int, sizes []int, ops int) ([]BytesPoint, error) {
	modes := []core.StateTransfer{core.TransferFull, core.TransferDigest, core.TransferDelta}
	points := make([]BytesPoint, 0, len(sizes)*len(modes))
	for _, size := range sizes {
		for _, mode := range modes {
			p, err := runBytesPoint(replicas, size, ops, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: bytes point %d/%v: %w", size, mode, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func runBytesPoint(replicas, size, ops int, mode core.StateTransfer) (BytesPoint, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Zero-delay mesh: delay shapes latency, not bytes.
	mesh := transport.NewMesh(transport.WithSeed(1))
	defer mesh.Close()
	ids := members(replicas)
	clust, err := cluster.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewORSet(),
		Options:            core.DefaultOptions(),
		StateTransfer:      mode,
		RetransmitInterval: time.Second,
	})
	if err != nil {
		return BytesPoint{}, err
	}
	defer clust.Close()

	// Converge the cluster on a size-element set: one populating update,
	// then a no-op sync update per node so every replica both holds the
	// full state and has acknowledged a MERGE (establishing the digest
	// views the cheap frames need).
	full := crdt.NewORSet()
	for i := 0; i < size; i++ {
		full = full.Add(fmt.Sprintf("elem-%06d", i), "seed", uint64(i))
	}
	raw, err := crdt.Marshal(full)
	if err != nil {
		return BytesPoint{}, err
	}
	p := BytesPoint{Mode: mode, Elements: size, StateLen: len(raw), Ops: ops}

	n0 := clust.Node(ids[0])
	if _, err := n0.Update(ctx, func(s crdt.State) (crdt.State, error) {
		return s.Merge(full)
	}); err != nil {
		return BytesPoint{}, err
	}
	sync := func() error {
		for _, id := range ids {
			if _, err := clust.Node(id).Update(ctx, func(s crdt.State) (crdt.State, error) {
				return s, nil
			}); err != nil {
				return err
			}
		}
		return waitQuiescent(ctx, mesh)
	}
	if err := sync(); err != nil {
		return BytesPoint{}, err
	}

	measure := func(op func(i int) error) (float64, error) {
		if err := waitQuiescent(ctx, mesh); err != nil {
			return 0, err
		}
		before := mesh.Stats().BytesSent
		for i := 0; i < ops; i++ {
			if err := op(i); err != nil {
				return 0, err
			}
		}
		if err := waitQuiescent(ctx, mesh); err != nil {
			return 0, err
		}
		return float64(mesh.Stats().BytesSent-before) / float64(ops), nil
	}

	// Converged reads, spread across the replicas.
	p.ReadBytes, err = measure(func(i int) error {
		_, _, err := clust.Node(ids[i%len(ids)]).Query(ctx)
		return err
	})
	if err != nil {
		return BytesPoint{}, err
	}

	// No-op adds: the element is already present, the state is unchanged.
	p.NoopBytes, err = measure(func(i int) error {
		_, err := n0.Update(ctx, func(s crdt.State) (crdt.State, error) {
			set := s.(*crdt.ORSet)
			if set.Contains("elem-000000") {
				return set, nil
			}
			return set.Add("elem-000000", "w", uint64(i)), nil
		})
		return err
	})
	if err != nil {
		return BytesPoint{}, err
	}

	// Fresh adds: the state grows by one element per op.
	p.AddBytes, err = measure(func(i int) error {
		_, err := n0.Update(ctx, func(s crdt.State) (crdt.State, error) {
			return s.(*crdt.ORSet).Add(fmt.Sprintf("new-%06d", i), "w", uint64(size+i)), nil
		})
		return err
	})
	if err != nil {
		return BytesPoint{}, err
	}
	return p, nil
}

// waitQuiescent blocks until the mesh has resolved every submitted
// message (delivered or dropped) and the count is stable, so byte
// snapshots don't bleed between measurement windows.
func waitQuiescent(ctx context.Context, mesh *transport.Mesh) error {
	stable := 0
	var last uint64
	for {
		st := mesh.Stats()
		if st.Sent == st.Delivered+st.Dropped && st.Sent == last {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		last = st.Sent
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// FigureBytes reports the bytes sweep: replica-wire payload bytes per
// operation against a converged or-set cluster, by object size and
// state-transfer mode, plus the read-path reduction factor vs full-state
// transfer. This is the refactor's headline: on a converged keyspace the
// wire cost of a read is O(digest), not O(state).
func FigureBytes(w io.Writer, replicas int, sizes []int, ops int) error {
	points, err := RunBytesSweep(replicas, sizes, ops)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure B: replica-wire bytes/op on a converged or-set (%d replicas, %d ops/point)\n", replicas, ops)
	fmt.Fprintf(w, "\n  %8s %10s %8s %12s %12s %14s %10s\n",
		"elements", "state B", "mode", "read B/op", "add B/op", "noop-add B/op", "read ×less")
	var base BytesPoint
	for _, p := range points {
		if p.Mode == core.TransferFull {
			base = p
		}
		reduction := "—"
		if p.Mode != core.TransferFull {
			reduction = fmt.Sprintf("%.1fx", p.Reduction(base))
		}
		fmt.Fprintf(w, "  %8d %10d %8s %12.0f %12.0f %14.0f %10s\n",
			p.Elements, p.StateLen, p.Mode, p.ReadBytes, p.AddBytes, p.NoopBytes, reduction)
	}
	return nil
}
