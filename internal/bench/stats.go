package bench

import (
	"fmt"
	"sort"
	"time"
)

// LatencyStats summarizes a latency sample set.
type LatencyStats struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// summarize computes latency statistics; it sorts the input in place.
func summarize(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return LatencyStats{
		Count: len(samples),
		Mean:  sum / time.Duration(len(samples)),
		P50:   percentile(samples, 0.50),
		P95:   percentile(samples, 0.95),
		P99:   percentile(samples, 0.99),
		Max:   samples[len(samples)-1],
	}
}

// percentile reads the p-quantile from an ascending sample set.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// medianThroughput computes the median of per-interval operation counts —
// the paper's reporting methodology ("request data aggregation in 1 s
// intervals", medians with confidence intervals).
func medianThroughput(perInterval []int, interval time.Duration) float64 {
	if len(perInterval) == 0 {
		return 0
	}
	sorted := append([]int(nil), perInterval...)
	sort.Ints(sorted)
	med := float64(sorted[len(sorted)/2])
	if len(sorted)%2 == 0 {
		med = (float64(sorted[len(sorted)/2-1]) + med) / 2
	}
	return med / interval.Seconds()
}

// RTTHistogram counts reads by the number of round trips they needed
// (Figure 3's x-axis).
type RTTHistogram map[int]int

// CDF returns the cumulative percentage of reads processed within k round
// trips for k = 1..max.
func (h RTTHistogram) CDF(max int) []float64 {
	total := 0
	for _, c := range h {
		total += c
	}
	out := make([]float64, max)
	if total == 0 {
		return out
	}
	cum := 0
	for k := 1; k <= max; k++ {
		cum += h[k]
		out[k-1] = 100 * float64(cum) / float64(total)
	}
	return out
}

// Merge adds other's counts into h.
func (h RTTHistogram) Merge(other RTTHistogram) {
	for k, c := range other {
		h[k] += c
	}
}

// fmtDur renders a duration in milliseconds with two decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
