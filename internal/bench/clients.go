package bench

// The network-path scenario: the sharded store served to closed-loop
// clients through the real client/server stack — TCP sockets, frame
// codec, pipelined connections — while the replicas talk to each other
// over the emulated mesh. The replica mesh keeps the configured emulated
// delay, so per-key traffic stays latency-bound and throughput scaling
// with clients and keys is visible even on a single-CPU box; the client
// path is real, so the measurement includes the full serving overhead
// (framing, demultiplexing, goroutine dispatch).

import (
	"context"
	"fmt"
	"io"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/store"
	"crdtsmr/internal/transport"
)

// NetSystem is the sharded store behind the network serving layer. Bench
// client i works key i mod nKeys through the server of replica
// (i / nKeys) mod replicas, one pooled pipelined client library instance
// per server.
type NetSystem struct {
	name    string
	mesh    *transport.Mesh
	st      *store.Store
	ids     []transport.NodeID
	servers []*server.Server
	clients []*client.Client // one per server, shared by bench clients
	keys    []string
}

// NewNetSystem starts the sharded store over n replicas and nKeys keys,
// each replica fronted by a TCP server on an ephemeral loopback port.
func NewNetSystem(n, nKeys int, batch time.Duration, net NetProfile) (*NetSystem, error) {
	if nKeys <= 0 {
		return nil, fmt.Errorf("bench: need at least one key, got %d", nKeys)
	}
	name := fmt.Sprintf("CRDT Paxos served(%d keys)", nKeys)
	if batch > 0 {
		name = fmt.Sprintf("CRDT Paxos served(%d keys) w/batching(%s)", nKeys, batch)
	}
	mesh := net.mesh()
	ids := members(n)
	st, err := store.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		BatchInterval:      batch,
		RetransmitInterval: 10 * time.Millisecond,
	})
	if err != nil {
		mesh.Close()
		return nil, err
	}
	s := &NetSystem{name: name, mesh: mesh, st: st, ids: ids}
	for _, id := range ids {
		srv, err := server.Start(st.Node(id), "127.0.0.1:0", server.Options{})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.servers = append(s.servers, srv)
		// Each server gets one client-library instance bound to it alone:
		// bench clients of a replica share its pool and pipeline over a
		// few connections, and a crashed replica surfaces errors instead
		// of silently failing over (Run redirects, as for other systems).
		cl, err := client.New([]string{srv.Addr()},
			client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}),
			client.WithPool(4))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.clients = append(s.clients, cl)
	}
	s.keys = make([]string, nKeys)
	for i := range s.keys {
		s.keys[i] = fmt.Sprintf("obj/%04d", i)
	}
	return s, nil
}

// Name implements System.
func (s *NetSystem) Name() string { return s.name }

// Client implements System.
func (s *NetSystem) Client(i int) Client {
	key := s.keys[i%len(s.keys)]
	cl := s.clients[(i/len(s.keys))%len(s.clients)]
	return &netClient{cl: cl, key: key, ctr: cl.Counter(key)}
}

// Crash implements System.
func (s *NetSystem) Crash(replica int) { s.st.Crash(s.ids[replica%len(s.ids)]) }

// Recover implements System.
func (s *NetSystem) Recover(replica int) { s.st.Recover(s.ids[replica%len(s.ids)]) }

// Close implements System.
func (s *NetSystem) Close() {
	for _, cl := range s.clients {
		_ = cl.Close()
	}
	for _, srv := range s.servers {
		_ = srv.Close()
	}
	s.st.Close()
	s.mesh.Close()
}

type netClient struct {
	cl  *client.Client
	key string
	ctr *client.Counter
}

func (c *netClient) Inc(ctx context.Context) error { return c.ctr.Inc(ctx, 1) }

// Read queries through the raw client so the protocol round-trip count
// the response carries reaches the RTT histogram, like the other systems.
func (c *netClient) Read(ctx context.Context) (int64, int, error) {
	st, info, err := c.cl.Query(ctx, c.key)
	if err != nil {
		return 0, 0, err
	}
	g, ok := st.(*crdt.GCounter)
	if !ok {
		return 0, 0, fmt.Errorf("bench: payload of %q is %s, not a G-Counter", c.key, st.TypeName())
	}
	return int64(g.Value()), info.RoundTrips, nil
}

// ClientsSweepPoint is one measurement of the clients × keys sweep.
type ClientsSweepPoint struct {
	Keys    int
	Clients int
	Result  Result
}

// RunClientsSweep measures the served store under a clients × keys grid:
// for every key count, every client count of the sweep runs against a
// fresh NetSystem. Clients spread over keys round-robin and over replicas
// per key, like the in-process sweeps.
func RunClientsSweep(s Scale, keyCounts, clientCounts []int, readFraction float64, batch time.Duration) ([]ClientsSweepPoint, error) {
	var points []ClientsSweepPoint
	for _, k := range keyCounts {
		for _, clients := range clientCounts {
			sys, err := NewNetSystem(s.Replicas, k, batch, s.Net)
			if err != nil {
				return nil, err
			}
			res := Run(sys, RunConfig{
				Clients:      clients,
				ReadFraction: readFraction,
				Duration:     s.Duration,
				Warmup:       s.Warmup,
				Seed:         s.Net.Seed,
			})
			sys.Close()
			if res.Errors > 0 {
				return nil, fmt.Errorf("bench: %d errors at %d keys, %d clients", res.Errors, k, clients)
			}
			points = append(points, ClientsSweepPoint{Keys: k, Clients: clients, Result: res})
		}
	}
	return points, nil
}

// FigureClients reports the many-clients network-path sweep: throughput
// of the served store (real TCP client path, emulated replica mesh) as
// the closed-loop client count grows, one row per keyspace size. The
// comparison against Figure K's in-process numbers isolates the cost of
// the serving layer itself.
func FigureClients(w io.Writer, s Scale, keyCounts, clientCounts []int) error {
	const readFraction = 0.9
	fmt.Fprintf(w, "Figure C: served-store throughput vs clients (%d replicas, %.0f%% reads, TCP client path)\n",
		s.Replicas, readFraction*100)
	for _, batch := range []time.Duration{0, s.Batch} {
		label := "without batching"
		if batch > 0 {
			label = fmt.Sprintf("with per-key %s batching", batch)
		}
		fmt.Fprintf(w, "\n  %s\n", label)
		fmt.Fprintf(w, "  %-12s", "keys\\clients")
		for _, c := range clientCounts {
			fmt.Fprintf(w, "%12d", c)
		}
		fmt.Fprintln(w)
		points, err := RunClientsSweep(s, keyCounts, clientCounts, readFraction, batch)
		if err != nil {
			return err
		}
		i := 0
		for _, k := range keyCounts {
			fmt.Fprintf(w, "  %-12d", k)
			for range clientCounts {
				fmt.Fprintf(w, "%12.0f", points[i].Result.Throughput)
				i++
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
