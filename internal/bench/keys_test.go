package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunMultiCRDTSystem(t *testing.T) {
	sys, err := NewMultiCRDTSystem(3, 16, 0, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := Run(sys, RunConfig{Clients: 32, ReadFraction: 0.5, Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors in failure-free run", res.Errors)
	}
	if res.ReadLat.Count == 0 || res.UpdateLat.Count == 0 {
		t.Fatalf("one-sided workload recorded: %+v", res)
	}
}

func TestMultiCRDTSystemClientSpread(t *testing.T) {
	sys, err := NewMultiCRDTSystem(3, 4, 0, NetProfile{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Clients 0..3 hit distinct keys; clients 0, 4, 8 share a key but sit
	// on distinct replicas.
	c0 := sys.Client(0).(*multiClient)
	c4 := sys.Client(4).(*multiClient)
	c8 := sys.Client(8).(*multiClient)
	if c0.key != c4.key || c4.key != c8.key {
		t.Fatalf("clients 0/4/8 keys = %s/%s/%s, want same key", c0.key, c4.key, c8.key)
	}
	if c0.at == c4.at || c4.at == c8.at || c0.at == c8.at {
		t.Fatalf("clients 0/4/8 replicas = %s/%s/%s, want all distinct", c0.at, c4.at, c8.at)
	}
	c1 := sys.Client(1).(*multiClient)
	if c0.key == c1.key {
		t.Fatalf("clients 0/1 share key %s, want distinct keys", c0.key)
	}
}

// TestKeysSweepThroughputGrows is the scaling acceptance check: with a
// fixed per-key client load, aggregate update throughput must grow as the
// keyspace widens, because keys are independent replication instances.
// The per-key load is latency-bound (emulated network delay), the regime
// in which sharding pays: a single key's closed-loop clients cannot use
// the hardware, many keys together can.
func TestKeysSweepThroughputGrows(t *testing.T) {
	s := Scale{
		Duration: 400 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Replicas: 3,
		Net:      NetProfile{MinDelay: 200 * time.Microsecond, MaxDelay: 600 * time.Microsecond, Seed: 1},
	}
	points, err := RunKeysSweep(s, []int{1, 8}, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	one, many := points[0], points[1]
	if one.UpdatesPerSec <= 0 || many.UpdatesPerSec <= 0 {
		t.Fatalf("no update throughput recorded: %+v vs %+v", one, many)
	}
	if many.UpdatesPerSec <= one.UpdatesPerSec {
		t.Fatalf("aggregate update throughput did not grow with keys: 1 key %.0f/s vs 8 keys %.0f/s",
			one.UpdatesPerSec, many.UpdatesPerSec)
	}
	if many.Result.Throughput <= one.Result.Throughput {
		t.Fatalf("aggregate throughput did not grow with keys: %.0f vs %.0f",
			one.Result.Throughput, many.Result.Throughput)
	}
}

func TestFigureKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scale{
		Duration: 150 * time.Millisecond,
		Warmup:   30 * time.Millisecond,
		Batch:    2 * time.Millisecond,
		Replicas: 3,
		Net:      NetProfile{Seed: 1},
	}
	var buf bytes.Buffer
	if err := FigureKeys(&buf, s, []int{1, 4}, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure K", "without batching", "with per-key", "updates/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}
