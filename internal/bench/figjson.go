package bench

import (
	"encoding/json"
	"os"
	"runtime/debug"
)

// FigureSchema versions the BENCH_<figure>.json layout. Bump it on any
// incompatible change so downstream tooling can reject files it does not
// understand.
const FigureSchema = 1

// FigureJSON is the machine-readable record of one figure run, written
// next to the human-readable table as BENCH_<figure>.json. It exists so
// CI can archive figure outputs and compare runs across commits without
// parsing the text tables.
type FigureJSON struct {
	Schema int    `json:"schema"`
	Figure string `json:"figure"`
	// GitSHA is the VCS revision stamped into the binary, when the build
	// carried one (go build -buildvcs); empty otherwise. Callers with a
	// better source (CI) may overwrite it before writing.
	GitSHA string         `json:"git_sha"`
	Params map[string]any `json:"params"`
	Series []FigureSeries `json:"series"`
}

// FigureSeries is one named curve: Y[i] measured at X[i].
type FigureSeries struct {
	Name string    `json:"name"`
	Unit string    `json:"unit,omitempty"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// SeriesNamed returns the series with the given name, or nil.
func (f *FigureJSON) SeriesNamed(name string) *FigureSeries {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// WriteFile writes the figure record as indented JSON.
func (f *FigureJSON) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// buildGitSHA returns the module's VCS revision when the running binary
// was built with VCS stamping, else "".
func buildGitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
}
