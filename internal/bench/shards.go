package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"crdtsmr/internal/persist"
)

// Fixed shape of the shards figure: a keyspace wide enough that every
// shard count under test has keys to spread, enough closed-loop writers
// to keep all shards busy, and a 1 ms emulated device flush under
// SyncAlways so persistence — not the CPU — is the bottleneck. Because
// WriteDelay > 0 substitutes the deterministic emulated flush for the
// physical fsync barriers (see persist.Options.WriteDelay), the figure
// is latency-bound and hardware-independent: the group-commit and
// sharding wins come from overlapping emulated flush sleeps, which
// works identically on one core or sixty-four and does not depend on
// how the host filesystem's journal serializes contended fsyncs.
//
// The client count stays well under the serial baseline's saturation
// knee: at 1 ms per Save one loop sustains ~10³ saves/s, and closed-loop
// latency is clients/throughput — too many clients and the baseline
// row's queueing delay outruns the runner's post-stop drain deadline.
// 32 writers over 64 keys still keep tens of keys dirty at once, which
// is all the group-commit batcher needs.
const (
	shardsFigKeys       = 64
	shardsFigClients    = 32
	shardsFigWriteDelay = time.Millisecond
	// With flush-bound op latencies (tens to hundreds of ms) the seed's
	// 10 ms retransmit timer is pathological: every in-flight key
	// re-MERGEs ~10×/op, and the serial row's flush-blocked loops drop
	// fresh frames behind the duplicates. 100 ms keeps retransmission a
	// recovery mechanism instead of the dominant load.
	shardsFigRetransmit = 100 * time.Millisecond
)

// ShardsPoint is one row of the shards figure: the durable multi-key
// store at a given shard count and persistence mode.
type ShardsPoint struct {
	Name   string // row label
	Shards int
	Serial bool // serial one-Save-per-event persistence (the baseline)
	Result Result

	UpdatesPerSec float64
	// Speedup is UpdatesPerSec over the serial baseline's (1.0 for the
	// baseline row itself).
	Speedup float64
}

// RunShardsSweep measures the durability pipeline: a durable 3-replica
// store under an all-update workload with SyncAlways and an emulated
// per-write device flush, first with the seed's serial persistence on a
// single event loop (every key behind one goroutine and one flush), then
// with the asynchronous group-commit persister at growing shard counts.
// Each row gets a fresh store on a fresh data directory.
func RunShardsSweep(s Scale, shardCounts []int) ([]ShardsPoint, error) {
	type rowSpec struct {
		name   string
		shards int
		serial bool
	}
	rows := []rowSpec{{"serial-persist", 1, true}}
	for _, n := range shardCounts {
		rows = append(rows, rowSpec{fmt.Sprintf("group-commit/%d-shard", n), n, false})
	}

	// Snapshot directories live on tmpfs when the host has one: the
	// figure models its device with the emulated flush, so the real
	// filesystem must stay off the critical path — on a virtio disk the
	// per-key create/rename syscalls cost as much as the emulated flush
	// itself and their latency is noisy, which would turn a latency-bound
	// figure into a measurement of the host's I/O stack.
	tmpBase := "/dev/shm"
	if st, err := os.Stat(tmpBase); err != nil || !st.IsDir() {
		tmpBase = "" // fall back to the default temp dir
	}

	points := make([]ShardsPoint, 0, len(rows))
	for _, row := range rows {
		dir, err := os.MkdirTemp(tmpBase, "bench-shards-*")
		if err != nil {
			return nil, err
		}
		sys, err := NewMultiCRDTSystemOpts(s.Replicas, shardsFigKeys, MultiOpts{
			DataDir:           dir,
			Shards:            row.shards,
			SerialPersist:     row.serial,
			PersistSync:       persist.SyncAlways,
			PersistWriteDelay: shardsFigWriteDelay,
			Retransmit:        shardsFigRetransmit,
		}, s.Net)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		res := Run(sys, RunConfig{
			Clients:      shardsFigClients,
			ReadFraction: 0, // updates only: every op exercises the persistence pipeline
			Duration:     s.Duration,
			Warmup:       s.Warmup,
			Seed:         s.Net.Seed,
		})
		sys.Close()
		os.RemoveAll(dir)
		if res.Errors > 0 {
			return nil, fmt.Errorf("bench: %d errors in the %s row", res.Errors, row.name)
		}
		p := ShardsPoint{Name: row.name, Shards: row.shards, Serial: row.serial, Result: res}
		if secs := res.Elapsed.Seconds(); secs > 0 {
			p.UpdatesPerSec = float64(res.UpdateLat.Count) / secs
		}
		points = append(points, p)
	}
	base := points[0].UpdatesPerSec
	for i := range points {
		if base > 0 {
			points[i].Speedup = points[i].UpdatesPerSec / base
		}
	}
	return points, nil
}

// FigureShards reports the sharded-event-loop + group-commit experiment:
// update throughput and tail latency of the durable store as persistence
// moves off the event loop (serial → group commit) and the keyspace
// spreads across event-loop shards. The baseline row reproduces the
// seed's architecture — one loop, one synchronous Save per dirty key —
// so the table reads as "what the refactor bought".
func FigureShards(w io.Writer, s Scale) (*FigureJSON, error) {
	shardCounts := []int{1, 2, 4}
	fmt.Fprintf(w, "Figure S: durable update throughput vs shards and persistence mode\n")
	fmt.Fprintf(w, "  (%d replicas, %d keys, %d clients, SyncAlways, %s emulated flush/write)\n",
		s.Replicas, shardsFigKeys, shardsFigClients, shardsFigWriteDelay)
	points, err := RunShardsSweep(s, shardCounts)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "  %-22s %6s %12s %10s %10s %10s\n",
		"configuration", "shards", "updates/s", "p50", "p99", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "  %-22s %6d %12.0f %10s %10s %9.2fx\n",
			p.Name, p.Shards, p.UpdatesPerSec,
			fmtDur(p.Result.UpdateLat.P50), fmtDur(p.Result.UpdateLat.P99), p.Speedup)
	}

	fig := &FigureJSON{
		Schema: FigureSchema,
		Figure: "shards",
		GitSHA: buildGitSHA(),
		Params: map[string]any{
			"replicas":       s.Replicas,
			"keys":           shardsFigKeys,
			"clients":        shardsFigClients,
			"read_fraction":  0.0,
			"sync":           "always",
			"write_delay_ms": float64(shardsFigWriteDelay) / float64(time.Millisecond),
			"duration_ms":    float64(s.Duration) / float64(time.Millisecond),
			"seed":           s.Net.Seed,
		},
	}
	serial := FigureSeries{Name: "serial-persist", Unit: "updates/s"}
	group := FigureSeries{Name: "group-commit", Unit: "updates/s"}
	groupP99 := FigureSeries{Name: "group-commit p99", Unit: "ms"}
	for _, p := range points {
		ms := float64(p.Result.UpdateLat.P99) / float64(time.Millisecond)
		if p.Serial {
			serial.X = append(serial.X, float64(p.Shards))
			serial.Y = append(serial.Y, p.UpdatesPerSec)
			fig.Params["serial_p99_ms"] = ms
			continue
		}
		group.X = append(group.X, float64(p.Shards))
		group.Y = append(group.Y, p.UpdatesPerSec)
		groupP99.X = append(groupP99.X, float64(p.Shards))
		groupP99.Y = append(groupP99.Y, ms)
	}
	fig.Series = []FigureSeries{serial, group, groupP99}
	return fig, nil
}
