package bench

import (
	"fmt"
	"io"
	"time"

	"crdtsmr/internal/shootout"
)

// protocolNetFloor is the minimum emulated hop delay for the shootout: the
// figure compares protocol round-trip counts, so the hops must dominate.
// Unlike the wall-clock figures this one runs in virtual time, so the
// floor is about the figure meaning what it says, not about CPU noise.
const protocolNetFloor = 500 * time.Microsecond

// FigureProtocols races the paper's protocol (all three state-transfer
// modes) against Multi-Paxos RSM, Raft RSM, and generalized lattice
// agreement on one shared keyed counter/or-set workload over one
// latency-emulated fabric (internal/shootout). Two phases:
//
//   - hot-key read-after-write sessions, client pinned at each replica in
//     turn: the log-free protocol completes the session in quorum round
//     trips from any replica, the log-based RSMs pay leader forwarding at
//     followers. The median-across-replicas session p50 is the guarded
//     headline number.
//   - a mixed keyed workload (closed-loop clients, 90% reads): throughput,
//     read/update p50/p99, replica-wire bytes per op, and the busiest
//     link's byte share (leader concentration).
//
// Everything runs in virtual time, so every number is a deterministic
// function of the seed and the assertions CI makes over the output are
// latency-bound, not CPU-bound.
func FigureProtocols(w io.Writer, s Scale) (*FigureJSON, error) {
	net := shootout.Net{MinDelay: s.Net.MinDelay, MaxDelay: s.Net.MaxDelay}
	if net.MaxDelay < protocolNetFloor {
		net = shootout.LAN()
	}
	seed := s.Net.Seed
	replicas := s.Replicas
	if replicas <= 0 {
		replicas = 3
	}

	// Work amounts derive from Scale.Duration so -duration scales the
	// figure, but they are op counts, not wall time: the run is virtual.
	sessions := scaleCount(s.Duration, 25*time.Millisecond, 16, 400)
	warmup := sessions / 8
	mixedOps := scaleCount(s.Duration, time.Millisecond, 240, 8000)
	const mixedClients, mixedKeys, readFrac = 6, 4, 0.9

	specs := shootout.Specs()
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	fig := &FigureJSON{
		Schema: FigureSchema,
		Figure: "protocols",
		GitSHA: buildGitSHA(),
		Params: map[string]any{
			"protocols":     names,
			"replicas":      replicas,
			"seed":          seed,
			"min_delay_us":  net.MinDelay.Microseconds(),
			"max_delay_us":  net.MaxDelay.Microseconds(),
			"sessions":      sessions,
			"mixed_ops":     mixedOps,
			"mixed_clients": mixedClients,
			"mixed_keys":    mixedKeys,
			"read_frac":     readFrac,
			"workload":      "phase A: hot-key read-after-write sessions per pinned replica; phase B: mixed keyed counter/or-set ops",
		},
	}
	series := map[string]*FigureSeries{
		"session p50 median": {Name: "session p50 median", Unit: "us"},
		"session p50 worst":  {Name: "session p50 worst", Unit: "us"},
		"throughput":         {Name: "throughput", Unit: "ops/s"},
		"read p50":           {Name: "read p50", Unit: "us"},
		"read p99":           {Name: "read p99", Unit: "us"},
		"update p50":         {Name: "update p50", Unit: "us"},
		"update p99":         {Name: "update p99", Unit: "us"},
		"bytes per op":       {Name: "bytes per op", Unit: "B"},
		"max link share":     {Name: "max link share", Unit: "frac"},
	}
	add := func(name string, x int, y float64) {
		sr := series[name]
		sr.X = append(sr.X, float64(x))
		sr.Y = append(sr.Y, y)
	}

	fmt.Fprintf(w, "Figure protocols: %d replicas, %s–%s hop delay, virtual time (seed %d)\n",
		replicas, net.MinDelay, net.MaxDelay, seed)
	fmt.Fprintf(w, "  %-16s %12s %12s %12s %10s %10s %10s %10s %10s %8s\n",
		"protocol", "sess p50 med", "sess p50 max", "ops/s", "rd p50", "rd p99", "up p50", "up p99", "B/op", "link%")

	for i, sp := range specs {
		sess, err := shootout.ReadAfterWrite(sp, replicas, net, seed, sessions, warmup)
		if err != nil {
			return nil, fmt.Errorf("figure protocols: %w", err)
		}
		worst := sess.PerReplica[0]
		for _, d := range sess.PerReplica {
			if d > worst {
				worst = d
			}
		}
		mx, err := shootout.MixedWorkload(sp, replicas, net, seed, mixedClients, mixedKeys, mixedOps, readFrac)
		if err != nil {
			return nil, fmt.Errorf("figure protocols: %w", err)
		}
		add("session p50 median", i, float64(sess.Median.Microseconds()))
		add("session p50 worst", i, float64(worst.Microseconds()))
		add("throughput", i, mx.Throughput)
		add("read p50", i, float64(mx.ReadP50.Microseconds()))
		add("read p99", i, float64(mx.ReadP99.Microseconds()))
		add("update p50", i, float64(mx.UpdateP50.Microseconds()))
		add("update p99", i, float64(mx.UpdateP99.Microseconds()))
		add("bytes per op", i, mx.BytesPerOp)
		add("max link share", i, mx.MaxLinkShare)
		fmt.Fprintf(w, "  %-16s %12s %12s %12.0f %10s %10s %10s %10s %10.0f %7.0f%%\n",
			sp.Name, fmtDur(sess.Median), fmtDur(worst), mx.Throughput,
			fmtDur(mx.ReadP50), fmtDur(mx.ReadP99), fmtDur(mx.UpdateP50), fmtDur(mx.UpdateP99),
			mx.BytesPerOp, mx.MaxLinkShare*100)
	}

	order := []string{"session p50 median", "session p50 worst", "throughput",
		"read p50", "read p99", "update p50", "update p99", "bytes per op", "max link share"}
	for _, name := range order {
		fig.Series = append(fig.Series, *series[name])
	}
	return fig, nil
}

// scaleCount maps a wall-clock -duration knob onto a virtual op count:
// one op per unit, clamped to [lo, hi].
func scaleCount(d, unit time.Duration, lo, hi int) int {
	n := int(d / unit)
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// ProtocolIndex returns the X position of the named protocol in a
// FigureProtocols record, or -1.
func ProtocolIndex(fig *FigureJSON, name string) int {
	names, ok := fig.Params["protocols"].([]string)
	if !ok {
		// A record re-read from JSON decodes as []any.
		raw, ok := fig.Params["protocols"].([]any)
		if !ok {
			return -1
		}
		for i, v := range raw {
			if s, ok := v.(string); ok && s == name {
				return i
			}
		}
		return -1
	}
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}
