package bench

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// RunConfig parameterizes one closed-loop measurement.
type RunConfig struct {
	Clients      int
	ReadFraction float64 // e.g. 0.95 for "95 % reads"
	Duration     time.Duration
	Warmup       time.Duration // excluded from statistics
	Interval     time.Duration // aggregation interval (default 1 s, paper's setting)
	Seed         int64

	// FailAfter, when positive, crashes FailReplica that long into the
	// measured window (Figure 4).
	FailAfter   time.Duration
	FailReplica int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// IntervalStat is one aggregation interval of the timeline (Figure 4).
type IntervalStat struct {
	Index     int
	Ops       int
	ReadP95   time.Duration
	UpdateP95 time.Duration
}

// Result is one measurement.
type Result struct {
	System       string
	Clients      int
	ReadFraction float64
	Ops          int
	Errors       int
	Elapsed      time.Duration

	// Throughput is the median of per-interval rates (paper methodology).
	Throughput float64
	ReadLat    LatencyStats
	UpdateLat  LatencyStats
	ReadRTTs   RTTHistogram
	Timeline   []IntervalStat
}

type clientRecorder struct {
	readLat   []time.Duration
	updateLat []time.Duration
	rtts      RTTHistogram
	errors    int
	// per-sample interval tags for the timeline
	readIv   []int
	updateIv []int
}

// Run drives cfg.Clients closed-loop clients against the system and
// aggregates the results. The system is left running (callers own Close).
func Run(sys System, cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	recorders := make([]*clientRecorder, cfg.Clients)
	var wg sync.WaitGroup

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	stopAt := start.Add(cfg.Warmup + cfg.Duration)

	if cfg.FailAfter > 0 {
		failTimer := time.AfterFunc(cfg.Warmup+cfg.FailAfter, func() { sys.Crash(cfg.FailReplica) })
		defer failTimer.Stop()
	}

	for i := 0; i < cfg.Clients; i++ {
		i := i
		rec := &clientRecorder{rtts: make(RTTHistogram)}
		recorders[i] = rec
		cl := sys.Client(i)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			redirects := 0
			for {
				now := time.Now()
				if now.After(stopAt) {
					return
				}
				isRead := rng.Float64() < cfg.ReadFraction
				opStart := time.Now()
				opCtx, opCancel := context.WithDeadline(ctx, stopAt.Add(5*time.Second))
				var err error
				var rtts int
				if isRead {
					_, rtts, err = cl.Read(opCtx)
				} else {
					err = cl.Inc(opCtx)
				}
				opCancel()
				lat := time.Since(opStart)
				if opStart.Before(measureFrom) {
					continue
				}
				if err != nil {
					rec.errors++
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						return
					}
					// Replica unavailable (e.g. crashed): reconnect to the
					// next replica, as a production client library would,
					// keeping the offered load constant (Figure 4).
					redirects++
					cl = sys.Client(i + redirects)
					select {
					case <-time.After(10 * time.Millisecond):
					case <-ctx.Done():
						return
					}
					continue
				}
				iv := int(opStart.Sub(measureFrom) / cfg.Interval)
				if isRead {
					rec.readLat = append(rec.readLat, lat)
					rec.readIv = append(rec.readIv, iv)
					if rtts > 0 {
						rec.rtts[rtts]++
					}
				} else {
					rec.updateLat = append(rec.updateLat, lat)
					rec.updateIv = append(rec.updateIv, iv)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(measureFrom)

	return aggregate(sys.Name(), cfg, recorders, elapsed)
}

func aggregate(name string, cfg RunConfig, recorders []*clientRecorder, elapsed time.Duration) Result {
	res := Result{
		System:       name,
		Clients:      cfg.Clients,
		ReadFraction: cfg.ReadFraction,
		Elapsed:      elapsed,
		ReadRTTs:     make(RTTHistogram),
	}
	var reads, updates []time.Duration
	nIntervals := int(cfg.Duration/cfg.Interval) + 1
	perInterval := make([]int, nIntervals)
	ivReads := make([][]time.Duration, nIntervals)
	ivUpdates := make([][]time.Duration, nIntervals)

	for _, rec := range recorders {
		res.Errors += rec.errors
		reads = append(reads, rec.readLat...)
		updates = append(updates, rec.updateLat...)
		res.ReadRTTs.Merge(rec.rtts)
		for i, iv := range rec.readIv {
			if iv >= 0 && iv < nIntervals {
				perInterval[iv]++
				ivReads[iv] = append(ivReads[iv], rec.readLat[i])
			}
		}
		for i, iv := range rec.updateIv {
			if iv >= 0 && iv < nIntervals {
				perInterval[iv]++
				ivUpdates[iv] = append(ivUpdates[iv], rec.updateLat[i])
			}
		}
	}
	res.Ops = len(reads) + len(updates)

	// Drop the trailing partial interval from the throughput median.
	full := perInterval
	if len(full) > 1 {
		full = full[:len(full)-1]
	}
	res.Throughput = medianThroughput(full, cfg.Interval)
	res.ReadLat = summarize(reads)
	res.UpdateLat = summarize(updates)

	for iv := 0; iv < nIntervals; iv++ {
		res.Timeline = append(res.Timeline, IntervalStat{
			Index:     iv,
			Ops:       perInterval[iv],
			ReadP95:   summarize(ivReads[iv]).P95,
			UpdateP95: summarize(ivUpdates[iv]).P95,
		})
	}
	return res
}
