package bench

import (
	"io"
	"testing"
	"time"
)

// TestFigureLeaseFastPath is the acceptance run for the round-lease
// figure: on the widest cluster in the sweep the lease must actually
// fire (hits > 0) and cut the median read-after-write latency by at
// least 30%. The run is latency-bound (FigureLease floors the emulated
// hop delay), so the assertion holds on a single-CPU box where a
// CPU-throughput claim would not.
func TestFigureLeaseFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-bound measurement")
	}
	s := Scale{
		Duration: 900 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
		Net:      NetProfile{Seed: 1}, // below the floor: FigureLease substitutes the WAN-ish profile
	}
	fig, err := FigureLease(io.Discard, s)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Schema != FigureSchema || fig.Figure != "lease" {
		t.Fatalf("figure header = %+v", fig)
	}

	hits := fig.SeriesNamed("lease hits")
	off, on := fig.SeriesNamed("read p50, lease off"), fig.SeriesNamed("read p50, lease on")
	if hits == nil || off == nil || on == nil {
		t.Fatalf("missing series: %+v", fig.Series)
	}
	// Assert on the last sweep point — the widest cluster, where the
	// lease-off vote-phase penalty is largest and the margin is widest.
	last := len(off.Y) - 1
	if last < 0 || len(on.Y) != len(off.Y) || len(hits.Y) != len(off.Y) {
		t.Fatalf("ragged series: off=%v on=%v hits=%v", off.Y, on.Y, hits.Y)
	}
	if hits.Y[last] == 0 {
		t.Fatalf("lease never fired: hits=%v", hits.Y)
	}
	if off.Y[last] <= 0 || on.Y[last] <= 0 {
		t.Fatalf("empty p50 samples: off=%v on=%v", off.Y, on.Y)
	}
	reduction := 1 - on.Y[last]/off.Y[last]
	if reduction < 0.30 {
		t.Fatalf("lease cut read p50 by %.0f%% (off %v µs, on %v µs), want ≥ 30%%",
			reduction*100, off.Y[last], on.Y[last])
	}
}
