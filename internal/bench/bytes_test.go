package bench

import (
	"testing"

	"crdtsmr/internal/core"
)

// TestBytesSweepConvergedReduction is the acceptance gate of the digest
// refactor: on a converged 3-replica or-set at 1k-element states, digest
// (and delta) transfer must cut replica-wire bytes per read by at least
// 5x against full-state transfer — measured with the transport byte
// counters, not wall time. Delta mode must also cut the cost of a
// growing update by at least 5x (full mode re-ships the whole set).
func TestBytesSweepConvergedReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second byte sweep")
	}
	points, err := RunBytesSweep(3, []int{1000}, 20)
	if err != nil {
		t.Fatal(err)
	}
	byMode := make(map[core.StateTransfer]BytesPoint, len(points))
	for _, p := range points {
		byMode[p.Mode] = p
	}
	full, digest, delta := byMode[core.TransferFull], byMode[core.TransferDigest], byMode[core.TransferDelta]

	if full.StateLen < 10000 {
		t.Fatalf("1k-element state marshals to only %dB — object not at size", full.StateLen)
	}
	// Full mode ships the state in every ACK: reads must cost state-scale
	// bytes, or the baseline itself is broken.
	if full.ReadBytes < float64(full.StateLen) {
		t.Fatalf("full-mode read = %.0f B/op, below one state (%d B)", full.ReadBytes, full.StateLen)
	}
	for _, p := range []BytesPoint{digest, delta} {
		if r := p.Reduction(full); r < 5 {
			t.Errorf("%v read reduction = %.1fx (%.0f vs %.0f B/op), want ≥ 5x",
				p.Mode, r, p.ReadBytes, full.ReadBytes)
		}
	}
	if full.AddBytes < 5*delta.AddBytes {
		t.Errorf("delta add = %.0f B/op vs full %.0f B/op, want ≥ 5x reduction",
			delta.AddBytes, full.AddBytes)
	}
	// Digest mode cannot shrink growing updates (the state changed), but
	// no-op updates must collapse to digest scale in both cheap modes.
	for _, p := range []BytesPoint{digest, delta} {
		if full.NoopBytes < 5*p.NoopBytes {
			t.Errorf("%v noop-add = %.0f B/op vs full %.0f B/op, want ≥ 5x reduction",
				p.Mode, p.NoopBytes, full.NoopBytes)
		}
	}
}
