package checker

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// OpKind distinguishes counter operations.
type OpKind uint8

const (
	// OpInc is an increment (an update command; no return value).
	OpInc OpKind = iota + 1
	// OpRead is a read (a query command returning the counter value).
	OpRead
)

// Op is one completed operation with its real-time interval. Timestamps
// come from any strictly monotonic logical clock; only their order matters.
type Op struct {
	Kind   OpKind
	Value  uint64 // read result; ignored for increments
	Invoke int64
	Return int64
}

// History records operations concurrently and hands out the logical clock.
type History struct {
	mu    sync.Mutex
	clock int64
	ops   []Op
	open  map[int]*Op
	next  int
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{open: make(map[int]*Op)}
}

// Begin records an invocation and returns its handle.
func (h *History) Begin(kind OpKind) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clock++
	id := h.next
	h.next++
	h.open[id] = &Op{Kind: kind, Invoke: h.clock}
	return id
}

// End records a completion. Value is the read result (0 for increments).
func (h *History) End(id int, value uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	op, ok := h.open[id]
	if !ok {
		return
	}
	delete(h.open, id)
	h.clock++
	op.Return = h.clock
	op.Value = value
	h.ops = append(h.ops, *op)
}

// Discard drops a still-open operation (e.g. one that was aborted). Ops
// that never completed impose no linearizability obligation for reads but
// an aborted increment may or may not have taken effect; callers should
// only discard operations whose effects are provably absent, or treat the
// run as inconclusive.
func (h *History) Discard(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.open, id)
}

// Abandon closes a still-open operation whose fate is unknown — e.g. an
// increment in flight at a replica that crashed. The op is recorded with
// an unbounded return time (Jepsen's :info convention), so the checker
// must allow it to take effect at any later point, or never: it can raise
// a read's upper bound but never contributes to a lower bound. Use
// Discard instead for operations whose effects are provably absent (reads
// always qualify).
func (h *History) Abandon(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	op, ok := h.open[id]
	if !ok {
		return
	}
	delete(h.open, id)
	op.Return = math.MaxInt64
	h.ops = append(h.ops, *op)
}

// Clock returns the current logical time.
func (h *History) Clock() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.clock
}

// Ops returns the completed operations.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Op, len(h.ops))
	copy(out, h.ops)
	return out
}

// OpenOps returns the number of invoked but not completed operations.
func (h *History) OpenOps() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.open)
}

// CheckCounterLinearizable checks the two necessary conditions for a
// history of increments and reads over a counter starting at 0 to be
// linearizable, and returns a description of the first violation found:
//
//	(A) every read r returns between the number of increments that
//	    completed before r was invoked and the number of increments
//	    invoked before r returned, and
//	(B) reads that do not overlap return non-decreasing values.
//
// Every violation it reports is a real linearizability violation. The
// conditions are not complete: in rare histories a read's value forces an
// increment's linearization point early enough to contradict a later read,
// which (A)+(B) do not propagate (see the brute-force cross-validation
// test for a concrete instance). BruteForceLinearizable decides exactly on
// small histories; the protocol explorer additionally checks the paper's
// §3.1 conditions, which are the actual specification, exactly.
func CheckCounterLinearizable(ops []Op) error {
	var incs, reads []Op
	for _, op := range ops {
		switch op.Kind {
		case OpInc:
			incs = append(incs, op)
		case OpRead:
			reads = append(reads, op)
		}
	}

	// (A) interval bounds per read.
	for _, r := range reads {
		low, high := 0, 0
		for _, inc := range incs {
			if inc.Return < r.Invoke {
				low++
			}
			if inc.Invoke < r.Return {
				high++
			}
		}
		if uint64(low) > r.Value || r.Value > uint64(high) {
			return fmt.Errorf("checker: read [%d,%d] returned %d outside [%d,%d]",
				r.Invoke, r.Return, r.Value, low, high)
		}
	}

	// (B) monotonicity across non-overlapping reads.
	sorted := make([]Op, len(reads))
	copy(sorted, reads)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Return < sorted[j].Return })
	for i, r1 := range sorted {
		for _, r2 := range sorted[i+1:] {
			if r1.Return < r2.Invoke && r1.Value > r2.Value {
				return fmt.Errorf("checker: sequential reads regressed: [%d,%d]=%d then [%d,%d]=%d",
					r1.Invoke, r1.Return, r1.Value, r2.Invoke, r2.Return, r2.Value)
			}
		}
	}
	return nil
}

// BruteForceLinearizable decides linearizability by explicit search for a
// valid linearization (Wing & Gong style). Exponential; intended only to
// cross-validate CheckCounterLinearizable on small histories in tests.
func BruteForceLinearizable(ops []Op) bool {
	n := len(ops)
	if n > 20 {
		panic("checker: brute force limited to 20 operations")
	}
	// done is a bitmask of linearized ops; value is implied by the number
	// of linearized increments, so memoizing on the mask alone is sound.
	seen := make(map[uint32]bool)
	var search func(mask uint32, value uint64) bool
	search = func(mask uint32, value uint64) bool {
		if mask == (uint32(1)<<n)-1 {
			return true
		}
		if seen[mask] {
			return false
		}
		seen[mask] = true
		// The next linearized op must not begin after some pending op has
		// already returned: candidate c is schedulable iff no unlinearized
		// op o has o.Return < c.Invoke.
		for c := 0; c < n; c++ {
			if mask&(1<<c) != 0 {
				continue
			}
			schedulable := true
			for o := 0; o < n; o++ {
				if o == c || mask&(1<<o) != 0 {
					continue
				}
				if ops[o].Return < ops[c].Invoke {
					schedulable = false
					break
				}
			}
			if !schedulable {
				continue
			}
			op := ops[c]
			switch op.Kind {
			case OpInc:
				if search(mask|1<<c, value+1) {
					return true
				}
			case OpRead:
				if op.Value == value && search(mask|1<<c, value) {
					return true
				}
			}
		}
		return false
	}
	return search(0, 0)
}
