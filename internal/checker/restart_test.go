package checker

import (
	"testing"

	"crdtsmr/internal/core"
)

// TestExploreCrashRestartModes is the crash/restart sweep of the
// persistence subsystem: the same seeds driven with and without injected
// crash/restart events, across all three state-transfer modes, under
// message loss and duplication. Every run must pass the full checker
// (Validity, Stability, Consistency, linearizability, convergence), and
// because the crash scheduler draws from its own RNG, the command
// schedule — and therefore the converged final value — must be identical
// between a crashing run and a never-crashing run of the same seed, and
// across all modes: recovery from snapshots changes what survives a
// crash, never what the cluster computes.
func TestExploreCrashRestartModes(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	modes := []core.StateTransfer{core.TransferFull, core.TransferDigest, core.TransferDelta}
	totalRestarts, totalAbandoned := 0, 0
	for seed := 0; seed < seeds; seed++ {
		var baseline *ExploreResult
		for _, mode := range modes {
			for _, crashes := range []int{0, 3} {
				opts := core.DefaultOptions()
				opts.Transfer = mode
				res, err := Explore(ExploreConfig{
					Seed:        int64(9000 + seed),
					Replicas:    3,
					Ops:         40,
					ReadRatio:   0.5,
					InjectEvery: 1,
					Loss:        0.10,
					Duplication: 0.10,
					Crashes:     crashes,
					Options:     opts,
				})
				if err != nil {
					t.Fatalf("seed %d mode %v crashes %d: %v (restarts=%d abandoned=%d)",
						seed, mode, crashes, err, res.Restarts, res.Abandoned)
				}
				if crashes > 0 && res.Restarts != crashes {
					t.Fatalf("seed %d mode %v: injected %d restarts, want %d", seed, mode, res.Restarts, crashes)
				}
				if crashes == 0 && res.Restarts != 0 {
					t.Fatalf("seed %d mode %v: crash-free run restarted %d times", seed, mode, res.Restarts)
				}
				if baseline == nil {
					baseline = res
					continue
				}
				if res.UpdatesSubmitted != baseline.UpdatesSubmitted {
					t.Fatalf("seed %d mode %v crashes %d: submitted %d updates, baseline %d — command schedule diverged",
						seed, mode, crashes, res.UpdatesSubmitted, baseline.UpdatesSubmitted)
				}
				if res.FinalValue != baseline.FinalValue {
					t.Fatalf("seed %d mode %v crashes %d: converged to %d, baseline %d",
						seed, mode, crashes, res.FinalValue, baseline.FinalValue)
				}
				totalRestarts += res.Restarts
				totalAbandoned += res.Abandoned
			}
		}
	}
	if totalRestarts == 0 {
		t.Fatal("the sweep never injected a restart")
	}
	// If no crash ever caught an update in flight, the fate-unknown
	// machinery (History.Abandon) was never exercised and the sweep is
	// weaker than it claims.
	if totalAbandoned == 0 {
		t.Fatal("no crash ever abandoned an in-flight update across the sweep")
	}
}

// TestExploreCrashRestartDeterministic: crash/restart runs must stay
// fully reproducible from the seed, histories included.
func TestExploreCrashRestartDeterministic(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Transfer = core.TransferDelta
	run := func() *ExploreResult {
		res, err := Explore(ExploreConfig{
			Seed: 311, Replicas: 3, Ops: 30, ReadRatio: 0.5, InjectEvery: 1,
			Loss: 0.15, Duplication: 0.1, Crashes: 4, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Restarts != b.Restarts ||
		a.Abandoned != b.Abandoned || a.FinalValue != b.FinalValue {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths diverge: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("histories diverge at op %d: %+v vs %+v", i, a.History[i], b.History[i])
		}
	}
}

// TestExploreCrashCountExact: the crash scheduler must deliver exactly
// cfg.Crashes events even when the integer-division thresholds collide
// (Crashes close to or exceeding Ops).
func TestExploreCrashCountExact(t *testing.T) {
	for _, tc := range []struct{ ops, crashes int }{
		{10, 10}, {10, 7}, {5, 9}, {40, 1},
	} {
		res, err := Explore(ExploreConfig{
			Seed: 99, Replicas: 3, Ops: tc.ops, ReadRatio: 0.5,
			Crashes: tc.crashes, Options: core.DefaultOptions(),
		})
		if err != nil {
			t.Fatalf("ops=%d crashes=%d: %v", tc.ops, tc.crashes, err)
		}
		if res.Restarts != tc.crashes {
			t.Fatalf("ops=%d crashes=%d: %d restarts injected", tc.ops, tc.crashes, res.Restarts)
		}
	}
}

// TestExploreCrashRestartCleanNetwork: crashes alone (no loss, no
// duplication) across a larger seed range — isolates recovery from the
// loss machinery.
func TestExploreCrashRestartCleanNetwork(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Explore(ExploreConfig{
			Seed:      int64(400 + seed),
			Replicas:  5,
			Ops:       50,
			ReadRatio: 0.4,
			Crashes:   5,
			Options:   core.DefaultOptions(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v (restarts=%d)", seed, err, res.Restarts)
		}
		if res.Restarts != 5 {
			t.Fatalf("seed %d: %d restarts, want 5", seed, res.Restarts)
		}
	}
}
