package checker

import (
	"testing"

	"crdtsmr/internal/core"
)

// TestExploreManySeeds is the repository's equivalent of the paper's
// protocol-scheduler validation: hundreds of random message interleavings,
// each checked against Validity, Stability, Consistency, linearizability,
// and convergence.
func TestExploreManySeeds(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 20
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Explore(ExploreConfig{
			Seed:      int64(seed),
			Replicas:  3,
			Ops:       60,
			ReadRatio: 0.5,
			Options:   core.DefaultOptions(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v (updates=%d queries=%d delivered=%d)",
				seed, err, res.UpdatesDone, res.QueriesDone, res.Delivered)
		}
		if res.UpdatesDone+res.QueriesDone == 0 {
			t.Fatalf("seed %d: nothing completed", seed)
		}
	}
}

func TestExploreFiveReplicas(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		if _, err := Explore(ExploreConfig{
			Seed:      int64(1000 + seed),
			Replicas:  5,
			Ops:       40,
			ReadRatio: 0.4,
			Options:   core.DefaultOptions(),
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestExploreReadOnlyNeverRetries(t *testing.T) {
	// With no updates every query must learn by consistent quorum on the
	// first attempt: the workload is conflict-free (§4.1). This is a claim
	// about the base two-phase protocol, so the lease fast path is off —
	// with it on, reads from different proposers steal each other's lease
	// (a fallback counts as a retry) and leased hits learn by vote.
	opts := core.DefaultOptions()
	opts.Lease = false
	res, err := Explore(ExploreConfig{
		Seed:      7,
		Replicas:  3,
		Ops:       50,
		ReadRatio: 1.0,
		Options:   opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAttempts > 1 {
		t.Fatalf("read-only workload retried (max attempts %d)", res.MaxAttempts)
	}
	for i, q := range res.Queries {
		if q.Stats.Path != core.LearnConsistentQuorum {
			t.Fatalf("query %d path = %v, want consistent quorum", i, q.Stats.Path)
		}
		if q.Stats.RoundTrips != 1 {
			t.Fatalf("query %d RTTs = %d, want 1", i, q.Stats.RoundTrips)
		}
	}
}

func TestExploreUpdateOnly(t *testing.T) {
	res, err := Explore(ExploreConfig{
		Seed:      11,
		Replicas:  3,
		Ops:       80,
		ReadRatio: 0,
		Options:   core.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesDone != 80 {
		t.Fatalf("updates done = %d, want 80", res.UpdatesDone)
	}
}

func TestExploreWithoutGLAStability(t *testing.T) {
	// The base protocol (§3.2, without the §3.4 refinement) must still pass
	// Validity/Stability/Consistency and counter linearizability.
	opts := core.Options{GLAStability: false}
	for seed := 0; seed < 40; seed++ {
		if _, err := Explore(ExploreConfig{
			Seed:      int64(2000 + seed),
			Replicas:  3,
			Ops:       50,
			ReadRatio: 0.5,
			Options:   opts,
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestExploreWithSeededPrepares(t *testing.T) {
	opts := core.Options{GLAStability: true, SeedPrepare: true}
	for seed := 0; seed < 40; seed++ {
		if _, err := Explore(ExploreConfig{
			Seed:      int64(3000 + seed),
			Replicas:  3,
			Ops:       50,
			ReadRatio: 0.5,
			Options:   opts,
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestExploreSmallRunsExactlyLinearizable runs many small explorations and
// decides linearizability exactly with the exhaustive checker, closing the
// completeness gap of the interval conditions for these runs.
func TestExploreSmallRunsExactlyLinearizable(t *testing.T) {
	seeds := 400
	if testing.Short() {
		seeds = 50
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Explore(ExploreConfig{
			Seed:      int64(9000 + seed),
			Replicas:  3,
			Ops:       14,
			ReadRatio: 0.5,
			Options:   core.DefaultOptions(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.History) > 20 {
			t.Fatalf("seed %d: history too large for exact check: %d", seed, len(res.History))
		}
		if !BruteForceLinearizable(res.History) {
			t.Fatalf("seed %d: history not linearizable: %+v", seed, res.History)
		}
	}
}

func TestExploreDeterministic(t *testing.T) {
	run := func() *ExploreResult {
		res, err := Explore(ExploreConfig{Seed: 42, Replicas: 3, Ops: 40, ReadRatio: 0.5, Options: core.DefaultOptions()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.UpdatesDone != b.UpdatesDone || a.QueriesDone != b.QueriesDone {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("histories diverge at op %d", i)
		}
	}
}
