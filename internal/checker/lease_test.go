package checker

import (
	"testing"

	"crdtsmr/internal/core"
)

// TestExploreLeaseEquivalence is the acceptance sweep of the round-lease
// fast path (docs/PROTOCOL.md §5): the same seeds, the same injected
// workload, driven with the lease on and off across every state-transfer
// mode. Both runs must pass the full checker — Validity, Stability,
// Consistency, linearizability, convergence — and converge to identical
// outcomes: the lease changes round trips, never results. The sweep must
// also actually exercise the fast path (LeaseHits > 0), or the
// equivalence proves nothing.
func TestExploreLeaseEquivalence(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	modes := []core.StateTransfer{core.TransferFull, core.TransferDigest, core.TransferDelta}
	var hits, fallbacks uint64
	for seed := 0; seed < seeds; seed++ {
		for _, mode := range modes {
			var results [2]*ExploreResult
			for i, lease := range []bool{false, true} {
				opts := core.DefaultOptions()
				opts.Transfer = mode
				opts.Lease = lease
				// InjectEvery spaces the ops out; flooding them (1) keeps
				// every round in motion and the fast path never fires.
				res, err := Explore(ExploreConfig{
					Seed:        int64(9000 + seed),
					Replicas:    3,
					Ops:         40,
					ReadRatio:   0.6,
					InjectEvery: 6,
					Options:     opts,
				})
				if err != nil {
					t.Fatalf("seed %d mode %v lease=%v: %v", seed, mode, lease, err)
				}
				results[i] = res
			}
			off, on := results[0], results[1]
			if on.UpdatesSubmitted != off.UpdatesSubmitted {
				t.Fatalf("seed %d mode %v: lease-on injected %d updates, lease-off %d — injection schedule diverged",
					seed, mode, on.UpdatesSubmitted, off.UpdatesSubmitted)
			}
			if on.FinalValue != off.FinalValue {
				t.Fatalf("seed %d mode %v: lease-on converged to %d, lease-off to %d",
					seed, mode, on.FinalValue, off.FinalValue)
			}
			if c := off.Counters; c.LeaseHits != 0 || c.LeaseFallbacks != 0 {
				t.Fatalf("seed %d mode %v: lease-off run used the fast path: %+v", seed, mode, c)
			}
			hits += on.Counters.LeaseHits
			fallbacks += on.Counters.LeaseFallbacks
		}
	}
	if hits == 0 {
		t.Fatal("lease-on sweep never learned via the fast path")
	}
	if fallbacks == 0 {
		t.Fatal("lease-on sweep never exercised the fallback — steals/denials untested")
	}
}

// TestExploreLeaseEquivalenceUnderChaos repeats the equivalence sweep
// with message loss, duplication, and crash/restart events: a restarted
// replica must drop its lease (never resume it), and the outcomes must
// still match a lease-off run of the same schedule.
func TestExploreLeaseEquivalenceUnderChaos(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	var hits uint64
	for seed := 0; seed < seeds; seed++ {
		var results [2]*ExploreResult
		for i, lease := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Transfer = core.TransferDelta
			opts.Lease = lease
			// InjectEvery spaces the ops out: flooding all of them at once
			// keeps every round in motion and the fast path never fires,
			// which would leave the crash/restart lease-drop rule untested.
			res, err := Explore(ExploreConfig{
				Seed:        int64(11000 + seed),
				Replicas:    3,
				Ops:         40,
				ReadRatio:   0.6,
				InjectEvery: 6,
				Loss:        0.08,
				Duplication: 0.10,
				Crashes:     2,
				Options:     opts,
			})
			if err != nil {
				t.Fatalf("seed %d lease=%v: %v (retransmits=%d)", seed, lease, err, res.Retransmits)
			}
			results[i] = res
		}
		off, on := results[0], results[1]
		if on.UpdatesSubmitted != off.UpdatesSubmitted {
			t.Fatalf("seed %d: injection schedule diverged (%d vs %d)",
				seed, on.UpdatesSubmitted, off.UpdatesSubmitted)
		}
		if on.FinalValue != off.FinalValue {
			t.Fatalf("seed %d: lease-on converged to %d, lease-off to %d",
				seed, on.FinalValue, off.FinalValue)
		}
		hits += on.Counters.LeaseHits
	}
	if hits == 0 {
		t.Fatal("chaos sweep never learned via the fast path")
	}
}
