package checker

import (
	"fmt"
	"sort"
	"sync"
)

// KeyedHistory records operation histories of a multi-object store, one
// History per object key. The sharded store promises linearizability per
// key — concurrent operations on different keys impose no cross-key
// ordering obligations, because each key is an independent replication
// instance — so a multi-object history is checked by deciding every key's
// sub-history independently.
type KeyedHistory struct {
	mu sync.Mutex
	hs map[string]*History
}

// NewKeyedHistory returns an empty keyed history.
func NewKeyedHistory() *KeyedHistory {
	return &KeyedHistory{hs: make(map[string]*History)}
}

// For returns the history of one key, creating it on first use. The
// returned History is safe for concurrent recording.
func (k *KeyedHistory) For(key string) *History {
	k.mu.Lock()
	defer k.mu.Unlock()
	h, ok := k.hs[key]
	if !ok {
		h = NewHistory()
		k.hs[key] = h
	}
	return h
}

// Keys returns the recorded keys, sorted.
func (k *KeyedHistory) Keys() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	keys := make([]string, 0, len(k.hs))
	for key := range k.hs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// Ops returns the total number of completed operations across all keys.
func (k *KeyedHistory) Ops() int {
	total := 0
	k.mu.Lock()
	hs := make([]*History, 0, len(k.hs))
	for _, h := range k.hs {
		hs = append(hs, h)
	}
	k.mu.Unlock()
	for _, h := range hs {
		total += len(h.Ops())
	}
	return total
}

// CheckKeyedLinearizable checks every key's counter sub-history with
// CheckCounterLinearizable and reports the first violating key. Like the
// single-key checker the conditions are necessary, not complete; every
// reported violation is real.
func CheckKeyedLinearizable(k *KeyedHistory) error {
	for _, key := range k.Keys() {
		if err := CheckCounterLinearizable(k.For(key).Ops()); err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
	}
	return nil
}
