package checker

import (
	"fmt"
	"math/rand"
	"sort"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// ExploreConfig parameterizes one randomized protocol exploration.
type ExploreConfig struct {
	Seed        int64
	Replicas    int
	Ops         int     // client commands to inject
	ReadRatio   float64 // fraction of commands that are reads
	Options     core.Options
	MaxSteps    int // safety bound on message deliveries (default 200k)
	InjectEvery int // inject a command roughly every k scheduler actions (default 2)

	// Loss drops each delivered message with the given probability;
	// Duplication re-enqueues it for a second delivery. Under either,
	// the exploration stands in for the runtime's retransmit timers:
	// whenever the network goes quiescent with requests still in flight,
	// every replica re-drives them (RetransmitAll) before the drain
	// continues.
	Loss        float64
	Duplication float64

	// Crashes injects that many crash/restart events, spread across the
	// injection phase at seeded points: a replica (chosen by a dedicated
	// RNG, so the injection schedule stays identical to a crash-free run
	// of the same seed) is replaced by a fresh one rehydrated from its
	// latest snapshot — the in-memory model of cluster.Restart with a
	// -data-dir. Snapshots are maintained after every state-changing
	// action, mirroring the runtime's persist-before-send rule. The
	// crashed replica's in-flight updates are recorded as fate-unknown
	// (History.Abandon) and its in-flight queries discarded.
	Crashes int

	// Reconfigs injects that many reconfiguration rounds at seeded points
	// across the injection phase, alternately growing the group by a fresh
	// joiner (j1, j2, …) and shrinking it back to the original member set —
	// single-member steps, the deployment contract of docs/PROTOCOL.md §6.
	// Commands keep flowing throughout and may land on a joiner before it
	// adopted the config that admits it, or on a replica a shrink just
	// removed; those fail with ErrNotMember, modeling a client that must
	// refresh its member list, and are settled in the history accordingly
	// (submit-time refusals vanish, mid-flight removals become
	// fate-unknown). The checker's conditions are then enforced over the
	// members of the final configuration.
	Reconfigs int
}

// QueryObs is one completed query: its real-time interval and learned state.
type QueryObs struct {
	Invoke, Return int64
	State          crdt.State
	Stats          core.QueryStats
}

// ExploreResult reports what an exploration observed.
type ExploreResult struct {
	Delivered   int
	UpdatesDone int
	QueriesDone int
	Queries     []QueryObs // in completion order
	History     []Op
	MaxAttempts int // worst query retry count observed

	UpdatesSubmitted int           // increments accepted for submission (the convergence ceiling)
	FinalValue       uint64        // converged counter value after the drain
	Retransmits      int           // quiescent-with-in-flight retransmit rounds
	Counters         core.Counters // summed protocol counters of all replicas
	Restarts         int           // crash/restart events injected
	Abandoned        int           // in-flight updates whose fate a crash or removal made unknown

	Reconfigs        int                // reconfiguration rounds committed
	ReconfigFailures int                // reconfiguration rounds refused or superseded
	FinalMembers     []transport.NodeID // members of the greatest adopted configuration
	FinalEpoch       uint64             // epoch of that configuration
}

// Explore runs a cluster of core replicas over a deterministic fabric,
// injecting increments and reads at random replicas while delivering
// messages in seeded-random order, then drains the network and checks:
//
//   - Validity (Thm 3.1): every learned counter value is at most the number
//     of submitted updates.
//   - Stability (Thm 3.5): for queries where q1 completes before q2 is
//     submitted, s1 ⊑ s2. (Overlapping queries are only constrained by
//     Consistency.)
//   - Consistency (Thm 3.8): all learned states are pairwise comparable.
//   - Update Visibility / Update Stability (Thms 3.9, 3.10) via
//     linearizability of the full increment/read history.
//   - Convergence: after draining, every replica stores the full state.
//
// It returns the observations, or an error describing the first violated
// condition.
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200000
	}
	if cfg.InjectEvery <= 0 {
		cfg.InjectEvery = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fabric := transport.NewFabric(cfg.Seed + 1)
	fabric.SetLoss(cfg.Loss)
	fabric.SetDuplication(cfg.Duplication)

	// members is the CURRENT member list (it changes when Reconfigs > 0);
	// base is the boot-time set it grows from and shrinks back to; all is
	// every replica ever started, joiners included, for the bookkeeping
	// that must outlive membership (snapshots, retransmit rounds).
	members := make([]transport.NodeID, cfg.Replicas)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	base := append([]transport.NodeID(nil), members...)
	all := append([]transport.NodeID(nil), members...)
	replicas := make(map[transport.NodeID]*core.Replica, cfg.Replicas)
	conns := make(map[transport.NodeID]*transport.FabricConn, cfg.Replicas)

	flush := func(id transport.NodeID) {
		for _, e := range replicas[id].TakeOutbox() {
			conns[id].Send(e.To, e.Payload)
		}
	}
	join := func(id transport.NodeID) {
		conns[id] = fabric.Join(id, func(from transport.NodeID, payload []byte) {
			replicas[id].Deliver(from, payload)
			flush(id)
		})
	}
	for _, id := range members {
		rep, err := core.NewReplica(id, members, crdt.NewGCounter(), cfg.Options)
		if err != nil {
			return nil, err
		}
		replicas[id] = rep
		join(id)
	}

	res := &ExploreResult{}
	hist := NewHistory()
	updatesSubmitted := 0

	// Per-replica open operations: a crash (or a removal failing requests
	// mid-flight) must settle the history ops it kills (updates become
	// fate-unknown, reads vanish).
	openOps := make(map[transport.NodeID]map[int]OpKind, len(members))
	for _, id := range members {
		openOps[id] = make(map[int]OpKind)
	}

	inject := func() {
		id := members[rng.Intn(len(members))]
		rep := replicas[id]
		open := openOps[id]
		if rng.Float64() < cfg.ReadRatio {
			opID := hist.Begin(OpRead)
			open[opID] = OpRead
			invoke := hist.Clock()
			rep.SubmitQuery(func(s crdt.State, stats core.QueryStats, err error) {
				delete(open, opID)
				if err != nil {
					hist.Discard(opID)
					return
				}
				if stats.Attempts > res.MaxAttempts {
					res.MaxAttempts = stats.Attempts
				}
				res.QueriesDone++
				hist.End(opID, s.(*crdt.GCounter).Value())
				res.Queries = append(res.Queries, QueryObs{
					Invoke: invoke,
					Return: hist.Clock(),
					State:  s,
					Stats:  stats,
				})
			})
		} else {
			opID := hist.Begin(OpInc)
			open[opID] = OpInc
			updatesSubmitted++
			slot := string(id)
			_, err := rep.SubmitUpdate(func(s crdt.State) (crdt.State, error) {
				return s.(*crdt.GCounter).Inc(slot, 1), nil
			}, func(stats core.UpdateStats, err error) {
				delete(open, opID)
				if err != nil {
					// Failed mid-flight (a reconfiguration removed the
					// proposer): the increment is in the proposer's durable
					// payload but may or may not ever reach the group —
					// fate-unknown, exactly like a crash-killed update.
					hist.Abandon(opID)
					res.Abandoned++
					return
				}
				res.UpdatesDone++
				hist.End(opID, 0)
			})
			if err != nil {
				// Refused at submission (replica not a member): provably
				// never applied anywhere, so it neither enters the history
				// nor counts toward the convergence target.
				delete(open, opID)
				hist.Discard(opID)
				updatesSubmitted--
			}
		}
		flush(id)
	}

	// Snapshot maintenance, modeling the runtime's persist-on-transition
	// rule: after every scheduler action, any replica whose durable state
	// advanced gets its in-memory snapshot refreshed — so a crash always
	// restores exactly the state the replica held, including every update
	// it applied locally (which is what makes convergence to the full
	// submitted count survive crashes even under message loss).
	snaps := make(map[transport.NodeID]core.Snapshot, len(members))
	savedVersion := make(map[transport.NodeID]uint64, len(members))
	persistAll := func() {
		for _, id := range all {
			if v := replicas[id].StateVersion(); v != savedVersion[id] || snaps[id].State == nil {
				snaps[id] = replicas[id].Snapshot()
				savedVersion[id] = v
			}
		}
	}
	persistAll()

	// Crash scheduling: a dedicated RNG and injected-op-count thresholds
	// keep the command schedule (and therefore UpdatesSubmitted) exactly
	// identical to a crash-free run of the same seed. The thresholds are
	// a sorted queue (clamped to ≥1, duplicates kept) so exactly
	// cfg.Crashes events fire even when integer division collides — e.g.
	// Crashes close to or exceeding Ops.
	// Reconfiguration rounds are serialized like a real admin would: the
	// next round fires only after the previous one settled (committed,
	// superseded, or lost with its crashed proposer) — the single-admin
	// contract of docs/PROTOCOL.md §6. These are declared before crash()
	// because a crash of the round's proposer is one of the settling events:
	// proposer-side round state is volatile, so the callback can never fire.
	recfgPending := false
	var recfgProposer transport.NodeID

	crashRng := rand.New(rand.NewSource(cfg.Seed + 2))
	crashQueue := make([]int, 0, cfg.Crashes)
	for i := 1; i <= cfg.Crashes; i++ {
		pos := cfg.Ops * i / (cfg.Crashes + 1)
		if pos < 1 {
			pos = 1
		}
		crashQueue = append(crashQueue, pos)
	}
	crash := func() {
		id := members[crashRng.Intn(len(members))]
		// Settle the history: killed updates have unknown fate (their
		// local effect is durable, but without a proposer to retransmit,
		// reaching a quorum is not guaranteed); killed reads have none.
		opIDs := make([]int, 0, len(openOps[id]))
		for opID := range openOps[id] {
			opIDs = append(opIDs, opID)
		}
		sort.Ints(opIDs) // map order would make the history nondeterministic
		for _, opID := range opIDs {
			if openOps[id][opID] == OpInc {
				hist.Abandon(opID)
				res.Abandoned++
			} else {
				hist.Discard(opID)
			}
		}
		openOps[id] = make(map[int]OpKind)
		if recfgPending && id == recfgProposer {
			// The pending round died with its proposer: the minted config is
			// durable (and may still spread through anti-entropy), but no
			// commit can ever be reported for it.
			recfgPending = false
			res.ReconfigFailures++
		}
		// Reconstruct at the snapshot's own configuration: Restore only
		// adopts a config that strictly supersedes the replica's, so a
		// snapshot taken at the epoch the replica booted with must be
		// seeded through the constructor, not the restore path.
		rep, err := core.NewReplicaConfig(id, snaps[id].Config, crdt.NewGCounter(), cfg.Options)
		if err != nil {
			panic(err) // a replica with this id was constructed before
		}
		if err := rep.Restore(snaps[id]); err != nil {
			panic(err) // snapshot came from an identically configured replica
		}
		replicas[id] = rep
		savedVersion[id] = rep.StateVersion()
		snaps[id] = rep.Snapshot()
		res.Restarts++
	}

	// Reconfiguration scheduling, built like crash scheduling: a dedicated
	// RNG and injected-op-count thresholds. Rounds alternate between growing
	// the group by a fresh joiner and proposing the original set back —
	// single-member deltas either way, the deployment contract that keeps
	// every acked update's quorum overlapping the surviving members
	// (docs/PROTOCOL.md §6). The proposer is always drawn from the base set,
	// which is a member of every configuration this schedule proposes.
	recfgRng := rand.New(rand.NewSource(cfg.Seed + 3))
	recfgQueue := make([]int, 0, cfg.Reconfigs)
	if cfg.Ops > 0 {
		for i := 1; i <= cfg.Reconfigs; i++ {
			pos := cfg.Ops * i / (cfg.Reconfigs + 1)
			if pos < 1 {
				pos = 1
			}
			recfgQueue = append(recfgQueue, pos)
		}
	}
	joiners := 0
	reconfig := func() {
		var target []transport.NodeID
		if len(members) == len(base) {
			// Grow: start a fresh non-member replica (empty boot config —
			// it refuses commands and waits for the config push that the
			// reconfiguration round itself delivers, payload included).
			joiners++
			jid := transport.NodeID(fmt.Sprintf("j%d", joiners))
			rep, err := core.NewReplicaConfig(jid, core.Config{}, crdt.NewGCounter(), cfg.Options)
			if err != nil {
				panic(err) // fresh id, empty config: cannot fail
			}
			replicas[jid] = rep
			join(jid)
			openOps[jid] = make(map[int]OpKind)
			all = append(all, jid)
			snaps[jid] = rep.Snapshot()
			savedVersion[jid] = rep.StateVersion()
			target = append(append([]transport.NodeID(nil), members...), jid)
		} else {
			target = append([]transport.NodeID(nil), base...)
		}
		proposer := base[recfgRng.Intn(len(base))]
		// Mark pending before submitting: with a single-replica group the
		// commit (and so the callback clearing the mark) is synchronous.
		recfgPending = true
		recfgProposer = proposer
		_, err := replicas[proposer].SubmitReconfigure(target, func(err error) {
			recfgPending = false
			if err != nil {
				res.ReconfigFailures++ // superseded by a competing config
				return
			}
			res.Reconfigs++
		})
		if err != nil {
			// Refused at submission (the proposer lags behind a config that
			// removed it, or its crash-lost round is still formally open).
			// The member list the checker tracks stays put; a later round
			// re-proposes from wherever the group actually converged.
			recfgPending = false
			res.ReconfigFailures++
			return
		}
		// The proposer self-adopted before broadcasting, so its view — the
		// one the checker now injects against — really is the new set.
		// Laggards refusing commands until the config reaches them is part
		// of the model being checked.
		members = target
		flush(proposer)
	}

	inFlight := func() int {
		n := 0
		for _, rep := range replicas {
			n += rep.InFlight()
		}
		return n
	}

	// Interleave injections with deliveries, then drain. Under loss the
	// drain can go quiescent with requests still in flight; the runtime's
	// retransmit timers are modeled by re-driving every in-flight request
	// (in member order, for determinism) and continuing.
	injected := 0
	steps := 0
	for steps < cfg.MaxSteps && (injected < cfg.Ops || fabric.Pending() > 0 || inFlight() > 0 || len(recfgQueue) > 0) {
		if injected < cfg.Ops && (fabric.Pending() == 0 || steps%cfg.InjectEvery == 0) {
			inject()
			injected++
			persistAll() // snapshot before a crash can interleave
			for len(crashQueue) > 0 && injected >= crashQueue[0] {
				crashQueue = crashQueue[1:]
				crash()
			}
		}
		// Serialized reconfiguration rounds: a due round waits for the
		// previous one to settle, so late rounds can fire during the drain
		// (which keeps retransmitting the pending round to settlement).
		if len(recfgQueue) > 0 && injected >= recfgQueue[0] && !recfgPending {
			recfgQueue = recfgQueue[1:]
			reconfig()
		}
		if fabric.Step() {
			res.Delivered++
		} else if injected >= cfg.Ops && inFlight() > 0 {
			res.Retransmits++
			for _, id := range all {
				replicas[id].RetransmitAll()
				flush(id)
			}
		}
		persistAll()
		steps++
	}
	if fabric.Pending() > 0 {
		return res, fmt.Errorf("checker: network not quiescent after %d steps", cfg.MaxSteps)
	}
	// Eventual liveness (§3.5): updates are finite and every lost message
	// is eventually retransmitted, so after the drain no request may
	// remain in flight.
	for id, rep := range replicas {
		if rep.InFlight() != 0 {
			return res, fmt.Errorf("checker: %s still has %d requests in flight after drain", id, rep.InFlight())
		}
	}

	// The final configuration is the lattice maximum over every replica ever
	// started (the drain retransmitted any pending reconfiguration to
	// completion, so at least its proposer and joint quorum hold it).
	// Conditions are enforced over its members that have actually adopted a
	// configuration admitting them — a joiner the commit outran may still
	// sit at its empty boot config, which the sync round's anti-entropy
	// repairs, but only if traffic reaches it.
	final := replicas[all[0]].ConfigState()
	for _, id := range all[1:] {
		if c := replicas[id].ConfigState(); c.Supersedes(final) {
			final = c
		}
	}
	syncMembers := make([]transport.NodeID, 0, len(final.Members))
	for _, id := range final.Members {
		if rep := replicas[id]; rep != nil && rep.IsMember() {
			syncMembers = append(syncMembers, id)
		}
	}
	if len(syncMembers) == 0 {
		return res, fmt.Errorf("checker: no member of the final config %v adopted a config admitting it", final.Members)
	}

	// Under loss or duplication the drain can leave laggards: a completed
	// update's MERGE to a non-quorum peer may have been lost with nothing
	// in flight to retransmit it. Convergence is an eventual-delivery
	// property, so model "eventually": one lossless no-op sync update per
	// member re-ships every payload (or its digest, under digest/delta
	// transfer — either way the receiver ends up dominating it). Crashes
	// need the same treatment: an abandoned update is durable in its
	// submitter's restored payload but has no proposer left to retransmit
	// its MERGEs, so only the sync round provably spreads it. Reconfigured
	// runs need it twice over — the sync MERGEs are what push the final
	// config (EPOCH-NACK, then config push) to members that lag behind it,
	// so the loop keeps the retransmit fallback: a sync update can go
	// quiescent mid-migration when its quorum recomputes under an adoption.
	if cfg.Loss > 0 || cfg.Duplication > 0 || cfg.Crashes > 0 || cfg.Reconfigs > 0 {
		fabric.SetLoss(0)
		fabric.SetDuplication(0)
		for _, id := range syncMembers {
			if _, err := replicas[id].SubmitUpdate(func(s crdt.State) (crdt.State, error) { return s, nil }, nil); err != nil {
				return res, fmt.Errorf("checker: sync update at %s: %w", id, err)
			}
			flush(id)
		}
		for n := 0; n < cfg.MaxSteps && (fabric.Pending() > 0 || inFlight() > 0); n++ {
			if fabric.Step() {
				res.Delivered++
			} else if inFlight() > 0 {
				res.Retransmits++
				for _, id := range all {
					replicas[id].RetransmitAll()
					flush(id)
				}
			}
		}
		if fabric.Pending() > 0 {
			return res, fmt.Errorf("checker: network not quiescent after %d lossless sync steps", cfg.MaxSteps)
		}
		for id, rep := range replicas {
			if rep.InFlight() != 0 {
				return res, fmt.Errorf("checker: %s still has %d requests in flight after lossless sync", id, rep.InFlight())
			}
		}
	}
	for _, rep := range replicas {
		res.Counters.Add(rep.Counters())
	}

	res.UpdatesSubmitted = updatesSubmitted
	res.FinalEpoch = final.Epoch
	res.FinalMembers = append([]transport.NodeID(nil), final.Members...)
	// Report the value a replica actually converged to (not the expected
	// count — the convergence check below compares the two).
	res.FinalValue = replicas[syncMembers[0]].LocalState().(*crdt.GCounter).Value()
	if err := checkConditions(res, updatesSubmitted); err != nil {
		return res, err
	}
	if cfg.Reconfigs == 0 {
		// Convergence: every replica's local payload holds every update.
		for id, rep := range replicas {
			if v := rep.LocalState().(*crdt.GCounter).Value(); v != uint64(updatesSubmitted) {
				return res, fmt.Errorf("checker: %s converged to %d, want %d", id, v, updatesSubmitted)
			}
		}
	} else {
		// With reconfigurations the exact count is unattainable: an update
		// abandoned by its proposer's removal is durable only in a payload
		// the group no longer syncs from. What must still hold: the final
		// members agree on one value, every COMPLETED update is in it
		// (single-member steps guarantee a surviving holder, the sync round
		// spreads it), and it never exceeds the submissions.
		for _, id := range syncMembers {
			if v := replicas[id].LocalState().(*crdt.GCounter).Value(); v != res.FinalValue {
				return res, fmt.Errorf("checker: final members diverge: %s at %d, %s at %d", id, v, syncMembers[0], res.FinalValue)
			}
		}
		if res.FinalValue < uint64(res.UpdatesDone) || res.FinalValue > uint64(updatesSubmitted) {
			return res, fmt.Errorf("checker: final value %d outside [completed %d, submitted %d]", res.FinalValue, res.UpdatesDone, updatesSubmitted)
		}
	}
	res.History = hist.Ops()
	if err := CheckCounterLinearizable(res.History); err != nil {
		return res, err
	}
	return res, nil
}

func checkConditions(res *ExploreResult, updatesSubmitted int) error {
	// Validity: no learned value exceeds the submitted updates.
	for i, q := range res.Queries {
		if v := q.State.(*crdt.GCounter).Value(); v > uint64(updatesSubmitted) {
			return fmt.Errorf("checker: validity: query %d learned %d with only %d updates submitted", i, v, updatesSubmitted)
		}
	}
	// Stability: non-overlapping queries learn monotone states.
	for i, q1 := range res.Queries {
		for j, q2 := range res.Queries {
			if q1.Return >= q2.Invoke {
				continue
			}
			le, err := q1.State.Compare(q2.State)
			if err != nil {
				return err
			}
			if !le {
				return fmt.Errorf("checker: stability: query %d (done %d) !⊑ query %d (begun %d)", i, q1.Return, j, q2.Invoke)
			}
		}
	}
	// Consistency: pairwise comparable.
	for i := range res.Queries {
		for j := i + 1; j < len(res.Queries); j++ {
			ok, err := crdt.Comparable(res.Queries[i].State, res.Queries[j].State)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("checker: consistency: states of queries %d and %d incomparable", i, j)
			}
		}
	}
	return nil
}
