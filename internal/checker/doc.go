// Package checker validates the replication protocol: it records operation
// histories, decides linearizability for increment/read counters, and runs
// the protocol under a seeded scheduler that enforces random interleavings
// of incoming messages — the methodology the paper reports for its own
// implementation ("The implementation's correctness was tested using a
// protocol scheduler that enforces random interleavings of incoming
// messages", §4).
package checker
