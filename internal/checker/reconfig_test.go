package checker

import (
	"fmt"
	"testing"

	"crdtsmr/internal/core"
	"crdtsmr/internal/transport"
)

// TestExploreReconfigSweep is the satellite sweep of the online-membership
// change: for each seed and each state-transfer mode it runs the workload
// twice — once with a static member set and once with reconfiguration
// rounds (grow by a joiner, shrink back, repeatedly) interleaved with
// message loss, duplication, and crash/restarts — and both runs must pass
// the full checker: Validity, Stability, Consistency, linearizability of
// the surviving history, and convergence of the final configuration's
// members. The dynamic runs must also actually reconfigure: rounds commit,
// configs get adopted beyond the proposer, and at least one stale-epoch
// message is NACKed somewhere in the sweep, or the pass proves nothing
// about the reconfiguration path.
func TestExploreReconfigSweep(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	modes := []core.StateTransfer{core.TransferFull, core.TransferDigest, core.TransferDelta}
	var committed, adoptions, epochNacks, abandoned int
	for seed := 0; seed < seeds; seed++ {
		for _, mode := range modes {
			opts := core.DefaultOptions()
			opts.Transfer = mode
			base := ExploreConfig{
				Seed:        int64(9000 + seed),
				Replicas:    3,
				Ops:         50,
				ReadRatio:   0.4,
				InjectEvery: 1,
				Loss:        0.08,
				Duplication: 0.10,
				Crashes:     2,
				Options:     opts,
			}

			static := base
			if _, err := Explore(static); err != nil {
				t.Fatalf("seed %d mode %v static: %v", seed, mode, err)
			}

			dynamic := base
			dynamic.Reconfigs = 4
			res, err := Explore(dynamic)
			if err != nil {
				t.Fatalf("seed %d mode %v reconfig: %v", seed, mode, err)
			}
			if res.Reconfigs+res.ReconfigFailures != dynamic.Reconfigs {
				t.Fatalf("seed %d mode %v: %d committed + %d failed != %d scheduled rounds",
					seed, mode, res.Reconfigs, res.ReconfigFailures, dynamic.Reconfigs)
			}
			// Single-member steps from a 3-replica base: the final member
			// set is the base or the base plus the latest joiner.
			if n := len(res.FinalMembers); n != 3 && n != 4 {
				t.Fatalf("seed %d mode %v: final config has %d members (%v)", seed, mode, n, res.FinalMembers)
			}
			committed += res.Reconfigs
			adoptions += int(res.Counters.ConfigAdoptions)
			epochNacks += int(res.Counters.EpochNacks)
			abandoned += res.Abandoned
		}
	}
	if committed == 0 {
		t.Fatal("no reconfiguration round committed across the sweep")
	}
	if adoptions <= committed {
		// Every commit implies the proposer's self-adoption; strictly more
		// adoptions means configs actually propagated to other replicas.
		t.Fatalf("configs never propagated beyond proposers: %d adoptions for %d commits", adoptions, committed)
	}
	if epochNacks == 0 {
		t.Fatal("no stale-epoch message was ever NACKed across the sweep")
	}
	t.Logf("sweep: %d commits, %d adoptions, %d epoch-nacks, %d abandoned updates",
		committed, adoptions, epochNacks, abandoned)
}

// TestExploreReconfigGrowShrinkAlternates pins the schedule's shape on one
// seed without faults: every round commits, the epochs climb one per
// round, and the final configuration (an even number of rounds) is the
// base set again.
func TestExploreReconfigAllCommitWithoutFaults(t *testing.T) {
	res, err := Explore(ExploreConfig{
		Seed:        424242,
		Replicas:    3,
		Ops:         60,
		ReadRatio:   0.3,
		InjectEvery: 1,
		Reconfigs:   4,
		Options:     core.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs != 4 || res.ReconfigFailures != 0 {
		t.Fatalf("fault-free run: %d committed, %d failed, want 4/0", res.Reconfigs, res.ReconfigFailures)
	}
	if res.FinalEpoch != 4 {
		t.Fatalf("final epoch %d after 4 serial rounds, want 4", res.FinalEpoch)
	}
	want := []transport.NodeID{"n1", "n2", "n3"}
	if fmt.Sprint(res.FinalMembers) != fmt.Sprint(want) {
		t.Fatalf("final members %v after grow/shrink/grow/shrink, want %v", res.FinalMembers, want)
	}
	if res.FinalValue != uint64(res.UpdatesSubmitted) {
		// No loss and no crashes: nothing may be stranded, even across
		// reconfigurations.
		t.Fatalf("fault-free run converged to %d of %d submitted", res.FinalValue, res.UpdatesSubmitted)
	}
}

// TestExploreReconfigDeterministic: reconfiguration scheduling must stay
// reproducible from the seed, like crash scheduling.
func TestExploreReconfigDeterministic(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Transfer = core.TransferDigest
	run := func() *ExploreResult {
		res, err := Explore(ExploreConfig{
			Seed: 99, Replicas: 3, Ops: 40, ReadRatio: 0.5, InjectEvery: 1,
			Loss: 0.15, Duplication: 0.1, Crashes: 2, Reconfigs: 3, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.FinalValue != b.FinalValue ||
		a.Reconfigs != b.Reconfigs || a.ReconfigFailures != b.ReconfigFailures ||
		a.FinalEpoch != b.FinalEpoch || fmt.Sprint(a.FinalMembers) != fmt.Sprint(b.FinalMembers) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("histories diverge at op %d", i)
		}
	}
}
