package checker

import (
	"strings"
	"sync"
	"testing"
)

func TestKeyedHistoryIndependentKeys(t *testing.T) {
	kh := NewKeyedHistory()

	// Key a: inc then read 1 — linearizable.
	a := kh.For("a")
	id := a.Begin(OpInc)
	a.End(id, 0)
	id = a.Begin(OpRead)
	a.End(id, 1)

	// Key b: read 5 with no increments — would be a violation if keys
	// shared a history, and is one within key b.
	b := kh.For("b")
	id = b.Begin(OpRead)
	b.End(id, 5)

	err := CheckKeyedLinearizable(kh)
	if err == nil {
		t.Fatal("violation on key b not reported")
	}
	if !strings.Contains(err.Error(), `key "b"`) {
		t.Fatalf("violation attributed to wrong key: %v", err)
	}
}

func TestKeyedHistoryAllKeysClean(t *testing.T) {
	kh := NewKeyedHistory()
	for _, key := range []string{"x", "y", "z"} {
		h := kh.For(key)
		for i := 0; i < 3; i++ {
			id := h.Begin(OpInc)
			h.End(id, 0)
		}
		id := h.Begin(OpRead)
		h.End(id, 3)
	}
	if err := CheckKeyedLinearizable(kh); err != nil {
		t.Fatalf("clean keyed history rejected: %v", err)
	}
	if got := kh.Keys(); len(got) != 3 {
		t.Fatalf("keys = %v", got)
	}
	if got := kh.Ops(); got != 12 {
		t.Fatalf("ops = %d, want 12", got)
	}
}

// TestKeyedHistoryCrossKeyReordersAllowed pins down the per-key contract:
// a history that would violate single-object linearizability when merged is
// acceptable when the conflicting operations hit different keys.
func TestKeyedHistoryCrossKeyReordersAllowed(t *testing.T) {
	kh := NewKeyedHistory()
	a, b := kh.For("a"), kh.For("b")

	// Sequentially: inc(a); read(b)=0; inc(b); read(a)=1. Merged into one
	// object this would read 0 after a completed increment — a violation.
	id := a.Begin(OpInc)
	a.End(id, 0)
	id = b.Begin(OpRead)
	b.End(id, 0)
	id = b.Begin(OpInc)
	b.End(id, 0)
	id = a.Begin(OpRead)
	a.End(id, 1)

	if err := CheckKeyedLinearizable(kh); err != nil {
		t.Fatalf("per-key linearizable history rejected: %v", err)
	}

	// Cross-check the premise: the same four ops on ONE key do violate.
	single := NewHistory()
	id = single.Begin(OpInc)
	single.End(id, 0)
	id = single.Begin(OpRead)
	single.End(id, 0)
	if CheckCounterLinearizable(single.Ops()) == nil {
		// read 0 after a completed increment
		t.Fatal("merged history unexpectedly accepted")
	}
}

func TestKeyedHistoryConcurrentRecording(t *testing.T) {
	kh := NewKeyedHistory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := string(rune('a' + g%4))
			h := kh.For(key)
			for i := 0; i < 50; i++ {
				id := h.Begin(OpInc)
				h.End(id, 0)
			}
		}(g)
	}
	wg.Wait()
	if got := kh.Ops(); got != 8*50 {
		t.Fatalf("ops = %d, want %d", got, 8*50)
	}
	if err := CheckKeyedLinearizable(kh); err != nil {
		t.Fatal(err)
	}
}
