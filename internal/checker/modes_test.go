package checker

import (
	"testing"

	"crdtsmr/internal/core"
)

// TestExploreStateTransferModesUnderLossAndDuplication is the
// interleaving sweep of the state-transfer refactor: the same seeds, the
// same injected workload (InjectEvery=1 pins the injection schedule to
// the seed, independent of how many messages each mode produces), driven
// through full, digest, and delta transfer over a fabric that loses and
// duplicates messages. Every mode must pass the full checker — Validity,
// Stability, Consistency, linearizability, convergence — and converge to
// the identical final value as full-state mode.
func TestExploreStateTransferModesUnderLossAndDuplication(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	modes := []core.StateTransfer{core.TransferFull, core.TransferDigest, core.TransferDelta}
	var digestReplies, deltaMerges uint64
	for seed := 0; seed < seeds; seed++ {
		results := make(map[core.StateTransfer]*ExploreResult, len(modes))
		for _, mode := range modes {
			opts := core.DefaultOptions()
			opts.Transfer = mode
			res, err := Explore(ExploreConfig{
				Seed:        int64(5000 + seed),
				Replicas:    3,
				Ops:         40,
				ReadRatio:   0.5,
				InjectEvery: 1,
				Loss:        0.10,
				Duplication: 0.15,
				Options:     opts,
			})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v (retransmits=%d)", seed, mode, err, res.Retransmits)
			}
			results[mode] = res
		}
		full := results[core.TransferFull]
		for _, mode := range modes[1:] {
			r := results[mode]
			if r.UpdatesSubmitted != full.UpdatesSubmitted {
				t.Fatalf("seed %d: %v injected %d updates, full injected %d — injection schedule diverged",
					seed, mode, r.UpdatesSubmitted, full.UpdatesSubmitted)
			}
			if r.FinalValue != full.FinalValue {
				t.Fatalf("seed %d: %v converged to %d, full to %d", seed, mode, r.FinalValue, full.FinalValue)
			}
		}
		if c := results[core.TransferFull].Counters; c.DigestReplies != 0 || c.DeltaMerges != 0 || c.DigestMerges != 0 {
			t.Fatalf("seed %d: full mode used digest frames: %+v", seed, c)
		}
		digestReplies += results[core.TransferDigest].Counters.DigestReplies
		deltaMerges += results[core.TransferDelta].Counters.DeltaMerges
	}
	// The sweep must actually exercise the cheap frames, or the pass above
	// proves nothing about them.
	if digestReplies == 0 {
		t.Fatal("digest mode never produced a digest-only reply across the sweep")
	}
	if deltaMerges == 0 {
		t.Fatal("delta mode never shipped a delta across the sweep")
	}
}

// TestExploreLossRetransmitsDeterministic: the loss/duplication drain
// (with its retransmit rounds) must stay reproducible from the seed.
func TestExploreLossRetransmitsDeterministic(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Transfer = core.TransferDelta
	run := func() *ExploreResult {
		res, err := Explore(ExploreConfig{
			Seed: 77, Replicas: 3, Ops: 30, ReadRatio: 0.5, InjectEvery: 1,
			Loss: 0.2, Duplication: 0.2, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Retransmits != b.Retransmits || a.FinalValue != b.FinalValue {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("histories diverge at op %d", i)
		}
	}
}
