package core

import (
	"testing"
	"testing/quick"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

func inc(replica string) crdt.Update {
	return func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(replica, 1), nil
	}
}

func TestAcceptorInitialState(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	if a.round != initRound() {
		t.Fatalf("round = %v", a.round)
	}
	if got := a.state.(*crdt.GCounter).Value(); got != 0 {
		t.Fatalf("value = %d", got)
	}
}

func TestAcceptorApplyUpdateSetsWriteMarker(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	s, err := a.applyUpdate(inc("n1"), Round{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("returned value = %d", got)
	}
	if a.round.ID != writeID {
		t.Fatalf("round ID = %v, want write marker", a.round.ID)
	}
	if a.round.Number != 0 {
		t.Fatalf("round number changed to %d", a.round.Number)
	}
}

func TestAcceptorMergeSetsWriteMarker(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	if err := a.handleMerge(crdt.NewGCounter().Inc("x", 5), Round{}); err != nil {
		t.Fatal(err)
	}
	if got := a.state.(*crdt.GCounter).Value(); got != 5 {
		t.Fatalf("value = %d", got)
	}
	if a.round.ID != writeID {
		t.Fatal("merge must clobber the round ID")
	}
}

func TestAcceptorIncrementalPrepareAlwaysAccepted(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	id := RoundID{Proposer: "p1", Seq: 7}
	reply, round, _, err := a.handlePrepare(Round{Number: NumberIncremental, ID: id}, nil)
	if err != nil || reply != msgAck {
		t.Fatalf("reply = %v, err = %v", reply, err)
	}
	if round.Number != 1 || round.ID != id {
		t.Fatalf("round = %v, want (1, p1#7)", round)
	}
	// Again: the number keeps growing, so it is always accepted.
	id2 := RoundID{Proposer: "p2", Seq: 1}
	reply, round, _, err = a.handlePrepare(Round{Number: NumberIncremental, ID: id2}, nil)
	if err != nil || reply != msgAck || round.Number != 2 || round.ID != id2 {
		t.Fatalf("second incremental: reply=%v round=%v err=%v", reply, round, err)
	}
}

func TestAcceptorFixedPrepareRules(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	high := Round{Number: 5, ID: RoundID{Proposer: "p1", Seq: 1}}
	reply, round, _, _ := a.handlePrepare(high, nil)
	if reply != msgAck || round != high {
		t.Fatalf("high fixed prepare: reply=%v round=%v", reply, round)
	}
	// A lower number is rejected; the NACK carries the current round.
	low := Round{Number: 3, ID: RoundID{Proposer: "p2", Seq: 1}}
	reply, round, state, _ := a.handlePrepare(low, nil)
	if reply != msgNack {
		t.Fatalf("low fixed prepare accepted")
	}
	if round != high {
		t.Fatalf("NACK round = %v, want %v", round, high)
	}
	if state == nil {
		t.Fatal("NACK must carry the acceptor state")
	}
	// The same number is rejected too (strictly greater required)...
	same := Round{Number: 5, ID: RoundID{Proposer: "p2", Seq: 9}}
	if reply, _, _, _ := a.handlePrepare(same, nil); reply != msgNack {
		t.Fatal("equal-number fixed prepare from another proposer accepted")
	}
	// ...except for the exact current round (idempotent retransmit).
	if reply, _, _, _ := a.handlePrepare(high, nil); reply != msgAck {
		t.Fatal("retransmitted identical prepare should be re-acked")
	}
}

func TestAcceptorPrepareMergesSeed(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	seed := crdt.NewGCounter().Inc("x", 3)
	_, _, state, err := a.handlePrepare(Round{Number: NumberIncremental, ID: RoundID{Proposer: "p", Seq: 1}}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := state.(*crdt.GCounter).Value(); got != 3 {
		t.Fatalf("ACK state = %d, want 3 (seed merged)", got)
	}
	// Merging a prepare seed must NOT clobber the round ID (only updates do).
	if a.round.ID == writeID {
		t.Fatal("prepare seed set the write marker")
	}
}

func TestAcceptorVoteRoundEquality(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	id := RoundID{Proposer: "p1", Seq: 1}
	_, round, _, _ := a.handlePrepare(Round{Number: NumberIncremental, ID: id}, nil)

	// Vote with the exact round succeeds.
	proposal := crdt.NewGCounter().Inc("y", 2)
	reply, _, _, err := a.handleVote(round, proposal)
	if err != nil || reply != msgVoted {
		t.Fatalf("vote denied: %v, %v", reply, err)
	}
	// The proposal was merged before replying (Lemma 3.4(ii)).
	if got := a.state.(*crdt.GCounter).Value(); got != 2 {
		t.Fatalf("state after vote = %d, want 2", got)
	}

	// An update intervenes; the same round must now be denied (line 45).
	if _, err := a.applyUpdate(inc("n1"), Round{}); err != nil {
		t.Fatal(err)
	}
	reply, nackRound, nackState, _ := a.handleVote(round, proposal)
	if reply != msgVoted && reply != msgNack {
		t.Fatalf("unexpected reply %v", reply)
	}
	if reply != msgNack {
		t.Fatal("vote after intervening update must be denied")
	}
	if nackRound.ID != writeID {
		t.Fatalf("NACK round = %v, want write marker", nackRound)
	}
	if nackState == nil {
		t.Fatal("vote NACK must carry the acceptor state")
	}
}

func TestAcceptorVoteMergesEvenWhenDenied(t *testing.T) {
	a := newAcceptor(crdt.NewGCounter())
	wrong := Round{Number: 9, ID: RoundID{Proposer: "p9", Seq: 9}}
	proposal := crdt.NewGCounter().Inc("z", 4)
	reply, _, _, err := a.handleVote(wrong, proposal)
	if err != nil || reply != msgNack {
		t.Fatalf("reply = %v, err = %v", reply, err)
	}
	if got := a.state.(*crdt.GCounter).Value(); got != 4 {
		t.Fatalf("state = %d: line 44 merges the proposal before the round check", got)
	}
}

func TestAcceptorStateMonotone(t *testing.T) {
	// Lemma 3.2: the acceptor payload only grows, whatever mix of
	// operations is applied.
	f := func(ops []uint8) bool {
		a := newAcceptor(crdt.NewGCounter())
		prev := a.state
		seq := uint64(0)
		for _, op := range ops {
			seq++
			switch op % 4 {
			case 0:
				_, _ = a.applyUpdate(inc("n1"), Round{})
			case 1:
				_ = a.handleMerge(crdt.NewGCounter().Inc("m", uint64(op)), Round{})
			case 2:
				_, _, _, _ = a.handlePrepare(Round{Number: NumberIncremental, ID: RoundID{Proposer: "p", Seq: seq}}, crdt.NewGCounter().Inc("s", uint64(op)))
			case 3:
				_, _, _, _ = a.handleVote(Round{Number: int64(op), ID: RoundID{Proposer: "q", Seq: seq}}, crdt.NewGCounter().Inc("v", uint64(op)))
			}
			le, err := prev.Compare(a.state)
			if err != nil || !le {
				return false
			}
			prev = a.state
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptorRoundNumberMonotone(t *testing.T) {
	// Invariant I4's precondition: prepares only ever raise the number.
	f := func(nums []int16) bool {
		a := newAcceptor(crdt.NewGCounter())
		prev := a.round.Number
		for i, n := range nums {
			r := Round{Number: int64(n), ID: RoundID{Proposer: "p", Seq: uint64(i + 1)}}
			if n < 0 {
				r.Number = NumberIncremental
			}
			_, _, _, _ = a.handlePrepare(r, nil)
			if a.round.Number < prev {
				return false
			}
			prev = a.round.Number
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundOrdering(t *testing.T) {
	cases := []struct {
		a, b Round
		less bool
	}{
		{Round{Number: 1, ID: RoundID{"p", 1}}, Round{Number: 2, ID: RoundID{"p", 1}}, true},
		{Round{Number: 2, ID: RoundID{"p", 1}}, Round{Number: 1, ID: RoundID{"p", 1}}, false},
		{Round{Number: 1, ID: RoundID{"a", 1}}, Round{Number: 1, ID: RoundID{"b", 1}}, true},
		{Round{Number: 1, ID: RoundID{"a", 1}}, Round{Number: 1, ID: RoundID{"a", 2}}, true},
		{Round{Number: 1, ID: RoundID{"a", 2}}, Round{Number: 1, ID: RoundID{"a", 2}}, false},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("case %d: %v < %v = %t, want %t", i, c.a, c.b, got, c.less)
		}
	}
	if !(Round{Number: NumberIncremental}).Incremental() {
		t.Fatal("⊥ round not incremental")
	}
	if (Round{Number: 0}).Incremental() {
		t.Fatal("round 0 reported incremental")
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	states := []crdt.State{nil, crdt.NewGCounter().Inc("a", 3)}
	for _, typ := range []msgType{msgMerge, msgMerged, msgPrepare, msgAck, msgVote, msgVoted, msgNack} {
		for _, s := range states {
			in := &message{
				Type:    typ,
				Req:     12345,
				Attempt: 7,
				Round:   Round{Number: 42, ID: RoundID{Proposer: "px", Seq: 9}},
				State:   s,
			}
			raw, err := in.encode()
			if err != nil {
				t.Fatalf("%v: %v", typ, err)
			}
			out, err := decodeMessage(raw)
			if err != nil {
				t.Fatalf("%v: %v", typ, err)
			}
			if out.Type != in.Type || out.Req != in.Req || out.Attempt != in.Attempt || out.Round != in.Round {
				t.Fatalf("%v: fields changed: %+v vs %+v", typ, in, out)
			}
			if (out.State == nil) != (in.State == nil) {
				t.Fatalf("%v: state presence changed", typ)
			}
			if in.State != nil {
				eq, err := crdt.Equivalent(in.State, out.State)
				if err != nil || !eq {
					t.Fatalf("%v: state not equivalent after round trip", typ)
				}
			}
		}
	}
}

func TestMessageDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeMessage(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := decodeMessage([]byte{0}); err == nil {
		t.Fatal("zero type decoded")
	}
	if _, err := decodeMessage([]byte{99, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown type decoded")
	}
	m := &message{Type: msgAck, Round: Round{Number: 1, ID: RoundID{Proposer: "p", Seq: 1}}, State: crdt.NewGCounter()}
	raw, err := m.encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(raw); cut++ {
		if _, err := decodeMessage(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := decodeMessage(append(raw, 0xAB)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestQuickRoundCodec(t *testing.T) {
	f := func(num int64, prop string, seq uint64) bool {
		in := Round{Number: num, ID: RoundID{Proposer: transport.NodeID(prop), Seq: seq}}
		m := &message{Type: msgMerged, Round: in}
		raw, err := m.encode()
		if err != nil {
			return false
		}
		out, err := decodeMessage(raw)
		return err == nil && out.Round == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
