// Package core implements the paper's contribution: a leaderless, logless
// protocol providing linearizable state machine replication of state-based
// CRDTs by solving generalized lattice agreement (Skrzypczak, Schintke,
// Schütt: "Linearizable State Machine Replication of State-Based CRDTs
// without Logs", PODC 2019, Algorithm 2).
//
// Replica is a deterministic, single-threaded protocol state machine: client
// commands and network messages go in, envelopes and completions come out.
// The async runtime (internal/cluster) drives it from an event loop; the
// interleaving checker (internal/checker) drives it synchronously from a
// seeded scheduler. The protocol state per replica beyond the CRDT payload
// itself is a single round — no command log, no leader.
package core
