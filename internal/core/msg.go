package core

import (
	"fmt"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/wire"
)

// msgType tags the protocol messages of Algorithm 2.
type msgType uint8

const (
	// msgMerge carries an updated payload state to remote acceptors
	// (update path, line 4).
	msgMerge msgType = iota + 1
	// msgMerged acknowledges a MERGE (line 35).
	msgMerged
	// msgPrepare announces a proposer's intent to learn a state (line 10).
	msgPrepare
	// msgAck answers a successful PREPARE with the acceptor's round and
	// payload state (line 42).
	msgAck
	// msgVote proposes a state to learn under a round (line 17).
	msgVote
	// msgVoted accepts a VOTE (line 47). Per the §3.6 optimization it
	// carries no payload: the proposer remembers what it proposed.
	msgVoted
	// msgNack denies a PREPARE or VOTE, carrying the acceptor's current
	// round and payload state so the proposer can retry informedly
	// (§3.2 "Retrying Requests").
	msgNack
)

func (t msgType) String() string {
	switch t {
	case msgMerge:
		return "MERGE"
	case msgMerged:
		return "MERGED"
	case msgPrepare:
		return "PREPARE"
	case msgAck:
		return "ACK"
	case msgVote:
		return "VOTE"
	case msgVoted:
		return "VOTED"
	case msgNack:
		return "NACK"
	default:
		return fmt.Sprintf("msgType(%d)", uint8(t))
	}
}

// message is the single wire format for all protocol messages. Req and
// Attempt correlate replies with the proposer's in-flight request and its
// current retry attempt, implementing the request-tracking convention of
// §3.2; replies for stale attempts are discarded.
type message struct {
	Type    msgType
	Req     uint64
	Attempt uint32
	Round   Round
	State   crdt.State // nil when the message carries no payload
}

// encode serializes the message. Layout:
//
//	type(1) | req uvarint | attempt uvarint | round | hasState(1) | [state]
func (m *message) encode() ([]byte, error) {
	w := wire.NewWriter(64)
	w.Byte(byte(m.Type))
	w.Uvarint(m.Req)
	w.Uvarint(uint64(m.Attempt))
	m.Round.encode(w)
	if m.State == nil {
		w.Bool(false)
		return w.Bytes(), nil
	}
	w.Bool(true)
	raw, err := crdt.Marshal(m.State)
	if err != nil {
		return nil, fmt.Errorf("core: encode %s: %w", m.Type, err)
	}
	w.Raw(raw)
	return w.Bytes(), nil
}

// decodeMessage parses a message produced by encode.
func decodeMessage(p []byte) (*message, error) {
	r := wire.NewReader(p)
	m := &message{
		Type:    msgType(r.Byte()),
		Req:     r.Uvarint(),
		Attempt: uint32(r.Uvarint()),
		Round:   decodeRound(r),
	}
	if r.Bool() {
		raw := r.Raw()
		if r.Err() != nil {
			return nil, r.Err()
		}
		s, err := crdt.Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("core: decode %s state: %w", m.Type, err)
		}
		m.State = s
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("core: decode %s: %w", m.Type, err)
	}
	if m.Type < msgMerge || m.Type > msgNack {
		return nil, fmt.Errorf("core: unknown message type %d", m.Type)
	}
	return m, nil
}
