package core

import (
	"fmt"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// msgType tags the protocol messages of Algorithm 2.
type msgType uint8

const (
	// msgMerge carries an updated payload state to remote acceptors
	// (update path, line 4). Under digest or delta state transfer the
	// payload may be replaced by a digest the receiver recognizes, or by
	// a delta against a baseline it recognizes (docs/PROTOCOL.md §3).
	msgMerge msgType = iota + 1
	// msgMerged acknowledges a MERGE (line 35).
	msgMerged
	// msgPrepare announces a proposer's intent to learn a state (line 10).
	// Under digest state transfer it also carries the digest of the
	// proposer's local payload, enabling digest-only replies.
	msgPrepare
	// msgAck answers a successful PREPARE with the acceptor's round and
	// payload state (line 42) — or, when the acceptor's state matches the
	// digest the PREPARE announced, with the digest alone.
	msgAck
	// msgVote proposes a state to learn under a round (line 17).
	msgVote
	// msgVoted accepts a VOTE (line 47). Per the §3.6 optimization it
	// carries no payload: the proposer remembers what it proposed.
	msgVoted
	// msgNack denies a PREPARE or VOTE, carrying the acceptor's current
	// round and payload state so the proposer can retry informedly
	// (§3.2 "Retrying Requests"). Prepare-phase NACKs may be digest-only
	// under the same rule as ACKs.
	msgNack
	// msgMergeNack answers a digest-only or delta MERGE whose digest or
	// baseline the receiver does not recognize: the sender must fall back
	// to the full payload (docs/PROTOCOL.md §3.3).
	msgMergeNack
	// msgReconfig carries a configuration — NewEpoch, Source, Members —
	// plus the sender's full payload state. It is both the proposal of a
	// reconfiguration round (JOIN/LEAVE in one frame: the receiver adopts
	// the config if it supersedes its own) and the config-push that brings
	// a lagging or joining replica current in one message: config plus
	// payload is the complete bootstrap of a log-free replica
	// (docs/PROTOCOL.md §6).
	msgReconfig
	// msgReconfigAck accepts a RECONFIG: the sender has adopted the config
	// whose epoch the ack's Epoch field names. The proposer commits once
	// acks form a joint quorum (majority of old ∧ majority of new).
	msgReconfigAck
	// msgEpochNack answers any message whose epoch does not match the
	// receiver's, carrying the receiver's config (epoch, source, members)
	// and no payload. A receiver that learns of a greater config from the
	// nack adopts it; one that holds a greater config answers with a
	// RECONFIG push. Either way the two sides converge without any
	// retransmission schedule of their own.
	msgEpochNack
)

// msgFlagLease is OR'd into the wire type byte (docs/PROTOCOL.md §5). On
// ACK/VOTED it is the acceptor's lease capability hint: replicas that
// understand round leases always set it, so a proposer only installs a
// lease when every quorum member advertised the capability — a mixed
// cluster with pre-lease binaries simply never forms leases. On MERGE it
// marks a lease-holder update whose round the acceptor may preserve
// instead of clobbering. Pre-lease decoders reject the unknown high bit
// as an invalid type, which the protocols tolerate as message loss.
const msgFlagLease = 0x80

func (t msgType) String() string {
	switch t {
	case msgMerge:
		return "MERGE"
	case msgMerged:
		return "MERGED"
	case msgPrepare:
		return "PREPARE"
	case msgAck:
		return "ACK"
	case msgVote:
		return "VOTE"
	case msgVoted:
		return "VOTED"
	case msgNack:
		return "NACK"
	case msgMergeNack:
		return "MERGE-NACK"
	case msgReconfig:
		return "RECONFIG"
	case msgReconfigAck:
		return "RECONFIG-ACK"
	case msgEpochNack:
		return "EPOCH-NACK"
	default:
		return fmt.Sprintf("msgType(%d)", uint8(t))
	}
}

// message is the single wire format for all protocol messages. Req and
// Attempt correlate replies with the proposer's in-flight request and its
// current retry attempt, implementing the request-tracking convention of
// §3.2; replies for stale attempts are discarded.
//
// The trailing state frame describes the payload transfer: by value
// (State), by digest (Digest), or by delta (State as the delta plus
// Baseline/Digest naming the states it connects). A zero Kind with a
// non-nil State encodes as wire.StateFull, keeping pre-digest callers and
// the legacy wire layout unchanged.
type message struct {
	Type    msgType
	Req     uint64
	Attempt uint32

	// Epoch is the sender's configuration epoch (docs/PROTOCOL.md §6).
	// Every message carries it; a receiver whose epoch differs answers
	// with EPOCH-NACK instead of processing the message, so traffic from
	// a stale configuration can never count toward a current quorum.
	Epoch uint64

	Round Round

	// Config fields, present on RECONFIG and EPOCH-NACK frames only: the
	// epoch being proposed or held, the proposer that minted it, and its
	// member set.
	NewEpoch uint64
	Source   transport.NodeID
	Members  []transport.NodeID

	// Lease carries the msgFlagLease bit: a capability hint on ACK/VOTED
	// replies, a preserve-this-round marker on lease-holder MERGEs.
	Lease bool

	Kind     wire.StateKind
	State    crdt.State  // full payload, or the delta for wire.StateDelta
	Digest   crdt.Digest // sender state digest (digest/full+digest), or delta result
	Baseline crdt.Digest // delta baseline digest

	// StateRaw is the marshaled payload exactly as received, kept by the
	// decoder so receivers can fingerprint full states without
	// re-encoding them. It is not consulted by encode.
	StateRaw []byte
}

// hasConfig reports whether the message type carries a config frame.
func hasConfig(t msgType) bool { return t == msgReconfig || t == msgEpochNack }

// encode serializes the message. Layout:
//
//	type(1) | req uvarint | attempt uvarint | epoch uvarint | round |
//	[configFrame] | stateFrame
//
// where the configFrame (internal/wire/config.go) is present only on
// RECONFIG and EPOCH-NACK frames, and stateFrame is the versioned
// state-transfer frame of internal/wire/state.go.
func (m *message) encode() ([]byte, error) {
	kind := m.Kind
	if kind == wire.StateNone && m.State != nil {
		kind = wire.StateFull
	}
	frame := wire.StateFrame{Kind: kind, Digest: m.Digest, Baseline: m.Baseline}
	if kind.HasPayload() {
		if m.State == nil {
			return nil, fmt.Errorf("core: encode %s: %v frame without a state", m.Type, kind)
		}
		raw, err := crdt.Marshal(m.State)
		if err != nil {
			return nil, fmt.Errorf("core: encode %s: %w", m.Type, err)
		}
		frame.State = raw
	}

	// Marshaling the state first lets the header+frame land in one
	// precisely sized buffer: 128 bytes generously covers the fixed header
	// (type, varints, round, frame digests) for any realistic round/ID.
	w := wire.MakeWriter(make([]byte, 0, 128+len(frame.State)))
	b := byte(m.Type)
	if m.Lease {
		b |= msgFlagLease
	}
	w.Byte(b)
	w.Uvarint(m.Req)
	w.Uvarint(uint64(m.Attempt))
	w.Uvarint(m.Epoch)
	m.Round.encode(&w)
	if hasConfig(m.Type) {
		cf := wire.ConfigFrame{Epoch: m.NewEpoch, Source: string(m.Source), Members: make([]string, len(m.Members))}
		for i, id := range m.Members {
			cf.Members[i] = string(id)
		}
		cf.Append(&w)
	}
	frame.Append(&w)
	return w.Bytes(), nil
}

// decodeMessage parses a message produced by encode.
func decodeMessage(p []byte) (*message, error) {
	r := wire.NewReader(p)
	raw := r.Byte()
	m := &message{
		Type:    msgType(raw &^ msgFlagLease),
		Lease:   raw&msgFlagLease != 0,
		Req:     r.Uvarint(),
		Attempt: uint32(r.Uvarint()),
		Epoch:   r.Uvarint(),
		Round:   decodeRound(r),
	}
	if hasConfig(m.Type) {
		cf := wire.ReadConfigFrame(r)
		m.NewEpoch = cf.Epoch
		m.Source = transport.NodeID(cf.Source)
		m.Members = make([]transport.NodeID, len(cf.Members))
		for i, id := range cf.Members {
			m.Members[i] = transport.NodeID(id)
		}
	}
	frame := wire.ReadStateFrame(r)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("core: decode %s: %w", m.Type, err)
	}
	m.Kind = frame.Kind
	m.Digest = crdt.Digest(frame.Digest)
	m.Baseline = crdt.Digest(frame.Baseline)
	if frame.Kind.HasPayload() {
		s, err := crdt.Unmarshal(frame.State)
		if err != nil {
			return nil, fmt.Errorf("core: decode %s state: %w", m.Type, err)
		}
		m.State = s
		m.StateRaw = frame.State
	}
	if m.Type < msgMerge || m.Type > msgEpochNack {
		return nil, fmt.Errorf("core: unknown message type %d", m.Type)
	}
	return m, nil
}
