package core

import (
	"sort"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// SubmitReconfigure starts a reconfiguration round proposing a new member
// set (docs/PROTOCOL.md §6). The proposer mints the next epoch, adopts it
// locally, and broadcasts RECONFIG — config plus its full payload — to
// the union of the old and new member sets. done fires with nil once a
// joint quorum (a majority of the old members AND a majority of the new)
// has accepted, with ErrConfigConflict if a competing configuration
// supersedes the proposal first, or with ErrAborted on Abort.
//
// At most one reconfiguration may be in flight per replica; the member
// set is validated and canonicalized (sorted, duplicate-free). Proposing
// a set that removes this replica is allowed — the node drives the round
// to commit and then refuses further client commands with ErrNotMember.
func (r *Replica) SubmitReconfigure(members []transport.NodeID, done func(error)) (uint64, error) {
	if !r.member {
		return 0, ErrNotMember
	}
	if r.reconfig != nil {
		return 0, ErrReconfigInFlight
	}
	norm, err := normalizeMembers(members)
	if err != nil {
		return 0, err
	}
	old := r.cfg
	cand := Config{Epoch: old.Epoch + 1, Source: r.id, Members: norm}
	r.nextReq++
	req := &reconfigReq{
		id:    r.nextReq,
		cfg:   cand,
		old:   old.Members,
		acked: map[transport.NodeID]bool{r.id: true},
		done:  done,
	}
	seen := map[transport.NodeID]bool{r.id: true}
	for _, set := range [][]transport.NodeID{old.Members, norm} {
		for _, id := range set {
			if !seen[id] {
				seen[id] = true
				req.targets = append(req.targets, id)
			}
		}
	}
	sort.Slice(req.targets, func(i, j int) bool { return req.targets[i] < req.targets[j] })

	// Self-adoption before broadcast: the proposer is the first acceptor
	// of its own proposal, and every message it sends from here on is
	// stamped with the new epoch. In-flight requests migrate (queries
	// restart, update quorums recompute) exactly as on a remote adoption.
	r.adoptConfig(cand, nil)
	r.reconfig = req
	for _, p := range req.targets {
		r.sendReconfig(p, req.id)
	}
	r.maybeCommitReconfig()
	return req.id, nil
}

// sendReconfig ships the replica's current configuration and full payload
// to one peer: the reconfiguration proposal while one is pending, and the
// config-push that repairs epoch mismatches otherwise. Carrying the
// payload makes it the complete bootstrap of a joining replica — the
// paper's log-free state is one CRDT join away, no log replay.
func (r *Replica) sendReconfig(to transport.NodeID, reqID uint64) {
	r.send(to, &message{
		Type:     msgReconfig,
		Req:      reqID,
		NewEpoch: r.cfg.Epoch,
		Source:   r.cfg.Source,
		Members:  r.cfg.Members,
		State:    r.acc.state,
	})
}

// pushConfig is sendReconfig in its anti-entropy role, named for the call
// sites that repair a lagging peer.
func (r *Replica) pushConfig(to transport.NodeID, reqID uint64) {
	r.sendReconfig(to, reqID)
}

// sendEpochNack tells a peer holding a different configuration what this
// replica's config is (members, no payload). The peer adopts it if it
// supersedes its own, or pushes its greater config back.
func (r *Replica) sendEpochNack(to transport.NodeID, reqID uint64) {
	r.send(to, &message{
		Type:     msgEpochNack,
		Req:      reqID,
		NewEpoch: r.cfg.Epoch,
		Source:   r.cfg.Source,
		Members:  r.cfg.Members,
	})
}

// adoptConfig installs cand if it supersedes the current config, merging
// an optional pushed payload, and migrates every in-flight request to the
// new configuration. Returns whether the config changed.
func (r *Replica) adoptConfig(cand Config, state crdt.State) bool {
	if !cand.Supersedes(r.cfg) {
		return false
	}
	if state != nil {
		if merged, err := r.acc.state.Merge(state); err == nil {
			r.acc.state = merged
		} else {
			r.counters.MalformedMsgs++
		}
	}
	// The quorum system changed under every in-flight vote: clobber the
	// acceptor round (as an update would) so no VOTE counted under the old
	// configuration can still succeed here, and drop the lease — it was
	// proven against a quorum that no longer exists.
	r.acc.clobberRound(Round{})
	r.lease = nil
	// Transfer caches are only maintained for members; drop assumptions
	// about nodes the new configuration removed.
	for _, p := range r.peers {
		if !contains(cand.Members, p) {
			r.xfer.forget(p)
		}
	}
	r.setConfig(cand)
	r.version++
	r.counters.ConfigAdoptions++
	// A competing configuration supersedes any reconfiguration this
	// replica still has pending: report the conflict; the config has
	// already converged to the winner.
	if r.reconfig != nil && !sameConfig(r.reconfig.cfg, cand) {
		req := r.reconfig
		r.reconfig = nil
		if req.done != nil {
			req.done(ErrConfigConflict)
		}
	}
	r.migrateInFlight()
	return true
}

// migrateInFlight moves every in-flight client request onto the replica's
// (just-adopted) configuration: updates recompute their quorum against
// the new member set, queries restart their attempt. If the new
// configuration removed this replica, everything fails with ErrNotMember
// instead — clients refresh their member list and retry elsewhere.
func (r *Replica) migrateInFlight() {
	if !r.member {
		ids := make([]uint64, 0, len(r.updates)+len(r.queries))
		for id := range r.updates {
			ids = append(ids, id)
		}
		for id := range r.queries {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if req, ok := r.updates[id]; ok {
				delete(r.updates, id)
				if req.done != nil {
					req.done(UpdateStats{}, ErrNotMember)
				}
				continue
			}
			req := r.queries[id]
			delete(r.queries, id)
			if req.done != nil {
				req.done(nil, QueryStats{RoundTrips: req.rtts, Attempts: int(req.attempt)}, ErrNotMember)
			}
		}
		return
	}

	// Updates: the local acceptor has merged; MERGEDs from acceptors no
	// longer in the group no longer count, ones already gathered from
	// staying members still do. An update that now has its quorum
	// completes; one that needs more is re-driven by retransmission
	// (Retransmit sends full-state MERGEs to every unacked current peer,
	// including members that just joined).
	upIDs := make([]uint64, 0, len(r.updates))
	for id := range r.updates {
		upIDs = append(upIDs, id)
	}
	sort.Slice(upIDs, func(i, j int) bool { return upIDs[i] < upIDs[j] })
	for _, id := range upIDs {
		req := r.updates[id]
		acked := 0
		for _, p := range r.peers {
			if req.acked[p] {
				acked++
			}
		}
		req.pending = r.quorum - 1 - acked
		if req.pending <= 0 {
			delete(r.updates, id)
			if req.hasDig && acked < len(r.peers) {
				r.retired = req
			}
			r.completeUpdate(req)
		}
	}

	// Queries: the attempt in flight was addressed to the old member set
	// under a round the adoption just clobbered; restart it (counted as a
	// retry) under the new configuration.
	qIDs := make([]uint64, 0, len(r.queries))
	for id := range r.queries {
		qIDs = append(qIDs, id)
	}
	sort.Slice(qIDs, func(i, j int) bool { return qIDs[i] < qIDs[j] })
	for _, id := range qIDs {
		req := r.queries[id]
		req.leased = false
		r.startAttempt(req, Round{Number: NumberIncremental}, r.prepareSeed(req.gathered))
	}
}

// maybeCommitReconfig completes the pending reconfiguration once its
// joint quorum is in.
func (r *Replica) maybeCommitReconfig() {
	req := r.reconfig
	if req == nil || !req.committed() {
		return
	}
	r.reconfig = nil
	r.counters.ReconfigCommits++
	if req.done != nil {
		req.done(nil)
	}
}

// onReconfig processes a RECONFIG frame: a reconfiguration proposal or a
// config push. The config lattice decides — adopt and ack anything
// greater, re-ack the current config idempotently (retransmits), answer
// anything older with EPOCH-NACK so the sender converges forward.
func (r *Replica) onReconfig(from transport.NodeID, m *message) {
	if len(m.Members) == 0 {
		r.counters.MalformedMsgs++
		return
	}
	cand := Config{Epoch: m.NewEpoch, Source: m.Source, Members: m.Members}
	switch {
	case sameConfig(cand, r.cfg):
		if m.State != nil {
			merged, err := r.acc.state.Merge(m.State)
			if err != nil {
				r.counters.MalformedMsgs++
				return
			}
			r.acc.state = merged
			r.acc.clobberRound(Round{})
			r.version++
		}
		r.send(from, &message{Type: msgReconfigAck, Req: m.Req})
	case cand.Supersedes(r.cfg):
		r.adoptConfig(cand, m.State)
		r.send(from, &message{Type: msgReconfigAck, Req: m.Req})
	default:
		r.counters.EpochNacks++
		r.sendEpochNack(from, m.Req)
	}
}

// onReconfigAck counts an acceptance toward the pending reconfiguration's
// joint quorum. Acks are matched by epoch: any ack at the proposal's
// epoch answers a frame this replica sent carrying exactly that config
// (a competing same-epoch config would have been acked to its own
// proposer, not here).
func (r *Replica) onReconfigAck(from transport.NodeID, m *message) {
	req := r.reconfig
	if req == nil || m.Epoch != req.cfg.Epoch || req.acked[from] {
		r.counters.StaleMsgs++
		return
	}
	req.acked[from] = true
	r.maybeCommitReconfig()
}

// onEpochNack reconciles configurations after a peer refused a message:
// adopt the peer's config if it is ahead, push ours if it is behind.
func (r *Replica) onEpochNack(from transport.NodeID, m *message) {
	cand := Config{Epoch: m.NewEpoch, Source: m.Source, Members: m.Members}
	switch {
	case cand.Supersedes(r.cfg):
		if len(m.Members) == 0 {
			r.counters.MalformedMsgs++
			return
		}
		r.adoptConfig(cand, nil)
	case sameConfig(cand, r.cfg):
		// Crossed messages during convergence; nothing to repair.
	default:
		r.pushConfig(from, m.Req)
	}
}
