package core

import (
	"errors"
	"testing"

	"crdtsmr/internal/crdt"
)

// --- retry accounting (the Retries counter must equal Σ(attempts-1)) ---

// TestRetriesMatchAttempts drives a mix of clean and retried queries at
// one proposer and checks the invariant the counter promises: Retries is
// exactly the number of extra attempts reported across all queries — a
// retransmit is not a retry, and no retry is ever counted twice.
func TestRetriesMatchAttempts(t *testing.T) {
	opts := DefaultOptions()
	opts.Lease = false
	nw := newNet(t, 3, opts)
	n1, n2, n3 := nw.reps["n1"], nw.reps["n2"], nw.reps["n3"]

	extra := 0
	query := func() {
		n2.SubmitQuery(func(_ crdt.State, st QueryStats, err error) {
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			extra += st.Attempts - 1
		})
	}

	// Clean query: one attempt.
	query()
	nw.pump()
	nw.drain()

	// Vote-denied query: diverge states so the vote phase runs, then land
	// updates on the remote acceptors mid-vote so their denials force a
	// retry.
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))
	query()
	nw.pump()
	nw.deliver(ofType(msgPrepare))
	nw.deliver(func(e env) bool { return e.typ == msgAck && e.from == "n1" })
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n3.SubmitUpdate(incAt(n3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))
	nw.drain()

	if extra == 0 {
		t.Fatal("schedule produced no retries — the invariant was not exercised")
	}
	if got := n2.Counters().Retries; got != uint64(extra) {
		t.Fatalf("Retries = %d, want Σ(attempts-1) = %d", got, extra)
	}
}

// TestRetransmitQueryKeepsAttempt: a retransmit after loss re-sends the
// in-flight attempt's PREPARE — it must not burn the attempt, count a
// retry, or change the round, and ACKs gathered before the loss keep
// counting.
func TestRetransmitQueryKeepsAttempt(t *testing.T) {
	opts := DefaultOptions()
	opts.Lease = false
	nw := newNet(t, 3, opts)
	n1 := nw.reps["n1"]

	var stats QueryStats
	var got crdt.State
	id := n1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.drop(ofType(msgPrepare)) // both broadcast PREPAREs lost

	n1.Retransmit(id)
	nw.pump()
	if n := nw.deliver(ofType(msgPrepare)); n != 2 {
		t.Fatalf("retransmit re-sent %d PREPAREs, want 2", n)
	}
	nw.drain()
	if got == nil {
		t.Fatal("query did not complete after retransmit")
	}
	if stats.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 — a retransmit is not a retry", stats.Attempts)
	}
	if c := n1.Counters().Retries; c != 0 {
		t.Fatalf("Retries = %d, want 0", c)
	}
}

// TestRetransmitQueryVotePhase: losing the VOTE broadcast and
// retransmitting must re-send VOTEs (not restart the query), and replies
// already gathered stay valid.
func TestRetransmitQueryVotePhase(t *testing.T) {
	opts := DefaultOptions()
	opts.Lease = false
	nw := newNet(t, 3, opts)
	n1, n2 := nw.reps["n1"], nw.reps["n2"]

	// Diverge states so the query needs the vote phase.
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	var stats QueryStats
	var got crdt.State
	id := n2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.deliver(ofType(msgPrepare))
	nw.deliver(ofType(msgAck))
	nw.drop(ofType(msgVote)) // the VOTE broadcast is lost

	n2.Retransmit(id)
	nw.pump()
	if n := nw.deliver(ofType(msgVote)); n == 0 {
		t.Fatal("retransmit sent no VOTEs")
	}
	nw.drain()
	if got == nil {
		t.Fatal("query did not complete")
	}
	if stats.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", stats.Attempts)
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("learned %d, want 1", v)
	}
}

// --- the vote-grace period: a denied vote + a silent peer must not wedge ---

// TestRetransmitVoteGrace: a vote phase holding one denial and one peer
// that never answers (crashed or silently partitioned — the proposer
// cannot tell) is undecidable: re-sending the VOTE cannot help, because
// the denial stands until the round moves. The retransmit timeout is the
// only escape, so Retransmit must retry the query instead of re-sending,
// or a minority partition wedges every in-flight read forever.
func TestRetransmitVoteGrace(t *testing.T) {
	opts := DefaultOptions()
	opts.Lease = false
	nw := newNet(t, 3, opts)
	n2, n3 := nw.reps["n2"], nw.reps["n3"]

	// n3 moves ahead with an update n2 never sees, so the query needs the
	// vote phase.
	if _, err := n3.SubmitUpdate(incAt(n3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	var got crdt.State
	var stats QueryStats
	id := n2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.drop(toNode("n1")) // n1 is silently down for the whole query
	nw.deliver(ofType(msgPrepare))
	nw.deliver(ofType(msgAck))
	// Land another update at n3 mid-vote so its round moves and the VOTE
	// is denied; now votes={n2}, denials={n3}, and n1 will never answer.
	if _, err := n3.SubmitUpdate(incAt(n3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))
	nw.drop(toNode("n1"))
	nw.deliver(ofType(msgVote))
	nw.deliver(ofType(msgNack))
	if got != nil {
		t.Fatal("query decided without a vote quorum")
	}

	n2.Retransmit(id)
	nw.pump()
	nw.drop(toNode("n1")) // n1 stays silent; the quorum is {n2, n3}
	nw.drain()
	if got == nil {
		t.Fatal("query wedged: retransmit re-sent the undecidable vote instead of retrying")
	}
	if stats.Attempts < 2 {
		t.Fatalf("attempts = %d, want ≥ 2 (the grace retry burns the attempt)", stats.Attempts)
	}
	if v := counterValue(t, got); v != 2 {
		t.Fatalf("learned %d, want 2", v)
	}
}

// TestRetransmitVoteGraceLeased is the same wedge on the prepare-skip
// fast path: the leased VOTE is denied by an acceptor whose payload the
// proposal does not cover, the third replica never answers, and the
// retransmit timeout must drive the lease fallback.
func TestRetransmitVoteGraceLeased(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n2, n3 := nw.reps["n2"], nw.reps["n3"]

	// Install the lease at n2 with a clean quorum read.
	n2.SubmitQuery(func(_ crdt.State, _ QueryStats, err error) {
		if err != nil {
			t.Fatalf("install query: %v", err)
		}
	})
	nw.pump()
	nw.drain()
	if !n2.Leased() {
		t.Fatal("lease not installed by the clean read")
	}

	// n3 moves ahead with an update the lease holder never sees.
	if _, err := n3.SubmitUpdate(incAt(n3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	var got crdt.State
	var stats QueryStats
	id := n2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("leased query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.drop(toNode("n1")) // n1 is silently down
	// n3's coverage check denies the leased VOTE (its payload is not ≤
	// the proposal); votes={n2}, denials={n3}, n1 outstanding forever.
	nw.deliver(ofType(msgVote))
	nw.deliver(ofType(msgNack))
	if got != nil {
		t.Fatal("leased query decided without a vote quorum")
	}

	n2.Retransmit(id)
	nw.pump()
	nw.drop(toNode("n1"))
	nw.drain()
	if got == nil {
		t.Fatal("leased query wedged: retransmit must fall back, not re-send the denied VOTE")
	}
	if stats.Leased {
		t.Fatal("query still reports the fast path after falling back")
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("learned %d, want 1 — the fallback must gather n3's update", v)
	}
	if c := n2.Counters().LeaseFallbacks; c != 1 {
		t.Fatalf("LeaseFallbacks = %d, want 1", c)
	}
}

// --- aborted updates must still converge the cluster (delta mode) ---

// TestAbortedUpdateStillServesFullPayload: a client abandons an update
// whose delta MERGE a peer later rejects. The proposer no longer has an
// in-flight request, but the payload was already merged locally and
// counted by the abort — the retired slot must answer the MERGE-NACK
// with the full state, or the peer would silently miss the update.
func TestAbortedUpdateStillServesFullPayload(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDelta))
	n1, n2 := nw.reps["n1"], nw.reps["n2"]

	// Converge once so n1 holds delta baselines for its peers.
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	// n2's caches go stale: it forgets n1 and moves its payload with an
	// update n1 never sees, so n1's next delta baseline is unrecognizable.
	n2.ForgetPeer("n1")
	if _, err := n2.SubmitUpdate(incAt(n2), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(func(e env) bool { return e.from == "n2" && e.typ == msgMerge })

	// n1 submits, the client gives up before any MERGED arrives.
	aborted := false
	id, err := n1.SubmitUpdate(incAt(n1), func(_ UpdateStats, err error) {
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("done error = %v, want ErrAborted", err)
		}
		aborted = true
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.pump()
	n1.Abort(id)
	if !aborted {
		t.Fatal("abort did not fire the completion")
	}

	// n2 rejects the delta; the answer must come from the retired slot.
	nw.deliver(func(e env) bool { return e.typ == msgMerge && e.to == "n2" })
	if n := nw.deliver(func(e env) bool { return e.typ == msgMergeNack }); n != 1 {
		t.Fatalf("delivered %d MERGE-NACKs, want 1", n)
	}
	nw.drain()
	if got := n1.Counters().MergeFallbacks; got != 1 {
		t.Fatalf("MergeFallbacks = %d, want 1", got)
	}

	// n2 holds all three updates despite the abort: the first converged
	// round, its own, and the aborted one served in full from the retired
	// slot.
	if v := counterValue(t, n2.acc.state); v != 3 {
		t.Fatalf("n2 converged to %d, want 3", v)
	}
}
