package core

import (
	"fmt"
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// newNetWith is newNet with an explicit initial payload, for transfer
// tests that need non-counter types.
func newNetWith(t *testing.T, n int, opts Options, s0 func() crdt.State) *net {
	t.Helper()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nw := &net{t: t, reps: make(map[transport.NodeID]*Replica, n)}
	for _, id := range members {
		rep, err := NewReplica(id, members, s0(), opts)
		if err != nil {
			t.Fatal(err)
		}
		nw.reps[id] = rep
	}
	return nw
}

func digestOpts(mode StateTransfer) Options {
	o := DefaultOptions()
	o.Transfer = mode
	return o
}

// kinds decodes the pool and returns the state-frame kind of every
// message matching the filter.
func (nw *net) kinds(match func(env) bool) []wire.StateKind {
	var out []wire.StateKind
	for _, e := range nw.pool {
		if !match(e) {
			continue
		}
		m, err := decodeMessage(e.payload)
		if err != nil {
			nw.t.Fatalf("undecodable pooled message: %v", err)
		}
		out = append(out, m.Kind)
	}
	return out
}

func TestParseStateTransfer(t *testing.T) {
	for _, mode := range []StateTransfer{TransferFull, TransferDigest, TransferDelta} {
		got, err := ParseStateTransfer(mode.String())
		if err != nil || got != mode {
			t.Fatalf("ParseStateTransfer(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseStateTransfer("compressed"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestDigestModeConvergedQueryIsDigestOnly: once the cluster is converged,
// a query's remote ACKs must carry only digests, and the query must still
// learn the correct state by consistent quorum in one round trip.
func TestDigestModeConvergedQuery(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDigest))
	n1, n2 := nw.reps["n1"], nw.reps["n2"]

	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain() // cluster converged: all acceptors hold the same payload

	var learned crdt.State
	var stats QueryStats
	n2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		learned, stats = s, st
	})
	nw.pump()
	// The broadcast PREPAREs must announce the proposer's digest.
	for _, k := range nw.kinds(ofType(msgPrepare)) {
		if k != wire.StateDigest {
			t.Fatalf("PREPARE kind = %v, want digest", k)
		}
	}
	nw.deliver(ofType(msgPrepare))
	// Both remote ACKs must be digest-only.
	acks := nw.kinds(ofType(msgAck))
	if len(acks) != 2 {
		t.Fatalf("got %d pooled ACKs, want 2", len(acks))
	}
	for _, k := range acks {
		if k != wire.StateDigest {
			t.Fatalf("ACK kind = %v, want digest", k)
		}
	}
	nw.drain()
	if learned == nil {
		t.Fatal("query did not complete")
	}
	if v := counterValue(t, learned); v != 1 {
		t.Fatalf("learned %d, want 1", v)
	}
	if stats.Path != LearnConsistentQuorum || stats.RoundTrips != 1 {
		t.Fatalf("stats = %+v, want consistent quorum in 1 RTT", stats)
	}
	c1, c3 := nw.reps["n1"].Counters(), nw.reps["n3"].Counters()
	if c1.DigestReplies == 0 || c3.DigestReplies == 0 {
		t.Fatalf("acceptors sent no digest replies: n1=%d n3=%d", c1.DigestReplies, c3.DigestReplies)
	}
}

// TestDigestModeDivergedQueryFallsBackToFullAcks: an acceptor whose state
// does not match the announced digest must answer with its full payload,
// and the query must learn the join.
func TestDigestModeDivergedQuery(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDigest))
	n1, n2 := nw.reps["n1"], nw.reps["n2"]

	// An update whose MERGEs never arrive leaves n1 ahead of n2/n3.
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	var learned crdt.State
	n2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		learned = s
	})
	nw.pump()
	nw.deliver(ofType(msgPrepare))
	for _, k := range nw.kinds(func(e env) bool { return e.typ == msgAck && e.from == "n1" }) {
		if k != wire.StateFull {
			t.Fatalf("diverged ACK kind = %v, want full", k)
		}
	}
	nw.drain()
	if learned == nil {
		t.Fatal("query did not complete")
	}
	if v := counterValue(t, learned); v != 1 {
		t.Fatalf("learned %d, want 1 (n1's unmerged update must be visible)", v)
	}
}

// TestDeltaModeSendsDeltas: after a first full MERGE is acknowledged,
// subsequent MERGEs to that peer must ship join-decomposition deltas, and
// every replica must still converge to the full state.
func TestDeltaModeSendsDeltas(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDelta))
	n1 := nw.reps["n1"]

	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	for _, k := range nw.kinds(ofType(msgMerge)) {
		if k != wire.StateFull {
			t.Fatalf("first MERGE kind = %v, want full", k)
		}
	}
	nw.drain()

	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	kinds := nw.kinds(ofType(msgMerge))
	if len(kinds) != 2 {
		t.Fatalf("got %d MERGEs, want 2", len(kinds))
	}
	for _, k := range kinds {
		if k != wire.StateDelta {
			t.Fatalf("second MERGE kind = %v, want delta", k)
		}
	}
	nw.drain()
	if got := n1.Counters().DeltaMerges; got != 2 {
		t.Fatalf("DeltaMerges = %d, want 2", got)
	}
	for id, rep := range nw.reps {
		if v := counterValue(t, rep.LocalState()); v != 2 {
			t.Fatalf("%s converged to %d, want 2", id, v)
		}
	}
}

// TestDigestModeSuppressesUnchangedMerge: an update that leaves the
// payload unchanged (add-if-absent on a converged OR-set) must ship only
// digests, not the set.
func TestDigestModeSuppressesUnchangedMerge(t *testing.T) {
	nw := newNetWith(t, 3, digestOpts(TransferDigest), func() crdt.State { return crdt.NewORSet() })
	n1 := nw.reps["n1"]

	addX := func(s crdt.State) (crdt.State, error) {
		set := s.(*crdt.ORSet)
		if set.Contains("x") {
			return set, nil
		}
		return set.Add("x", "n1", 1), nil
	}
	if _, err := n1.SubmitUpdate(addX, nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	done := false
	if _, err := n1.SubmitUpdate(addX, func(UpdateStats, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	kinds := nw.kinds(ofType(msgMerge))
	if len(kinds) != 2 {
		t.Fatalf("got %d MERGEs, want 2", len(kinds))
	}
	for _, k := range kinds {
		if k != wire.StateDigest {
			t.Fatalf("no-op MERGE kind = %v, want digest", k)
		}
	}
	nw.drain()
	if !done {
		t.Fatal("suppressed update never completed")
	}
	if got := n1.Counters().DigestMerges; got != 2 {
		t.Fatalf("DigestMerges = %d, want 2", got)
	}
}

// TestMergeNackFallsBackToFull: a receiver that does not recognize a
// delta's baseline must MERGE-NACK, and the sender must resend the full
// payload so the update still completes.
func TestMergeNackFallsBackToFull(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDelta))
	n1, n2 := nw.reps["n1"], nw.reps["n2"]

	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	// n2 loses its digest cache (the runtime declared n1 down and back),
	// and its payload moves past n1's baseline via a local update whose
	// MERGEs n1 never sees — so neither the ring nor the own-state check
	// can recognize the baseline.
	n2.ForgetPeer("n1")
	if _, err := n2.SubmitUpdate(incAt(n2), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(func(e env) bool { return e.from == "n2" && e.typ == msgMerge })

	done := false
	if _, err := n1.SubmitUpdate(incAt(n1), func(UpdateStats, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	// n1 ships deltas; n2 must refuse its unknown baseline.
	nw.deliver(func(e env) bool { return e.typ == msgMerge && e.to == "n2" })
	if got := nw.kinds(func(e env) bool { return e.typ == msgMergeNack }); len(got) != 1 {
		t.Fatalf("got %d MERGE-NACKs, want 1", len(got))
	}
	nw.drain()
	if !done {
		t.Fatal("update never completed after fallback")
	}
	if got := n1.Counters().MergeFallbacks; got != 1 {
		t.Fatalf("MergeFallbacks = %d, want 1", got)
	}
	// The fallback re-baselines: the next update to n2 is a delta again.
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	for _, k := range nw.kinds(func(e env) bool { return e.typ == msgMerge && e.to == "n2" }) {
		if k != wire.StateDelta {
			t.Fatalf("post-fallback MERGE kind = %v, want delta", k)
		}
	}
	nw.drain()
}

// TestTransferModesLearnIdenticalStates drives the same workload through
// all three transfer modes and requires identical convergence.
func TestTransferModesConvergeIdentically(t *testing.T) {
	for _, mode := range []StateTransfer{TransferFull, TransferDigest, TransferDelta} {
		t.Run(mode.String(), func(t *testing.T) {
			nw := newNet(t, 3, digestOpts(mode))
			for i := 0; i < 5; i++ {
				rep := nw.reps[transport.NodeID(fmt.Sprintf("n%d", i%3+1))]
				if _, err := rep.SubmitUpdate(incAt(rep), nil); err != nil {
					t.Fatal(err)
				}
				nw.pump()
				nw.drain()
			}
			var learned crdt.State
			nw.reps["n3"].SubmitQuery(func(s crdt.State, _ QueryStats, err error) {
				if err != nil {
					t.Fatal(err)
				}
				learned = s
			})
			nw.pump()
			nw.drain()
			if v := counterValue(t, learned); v != 5 {
				t.Fatalf("learned %d, want 5", v)
			}
			for id, rep := range nw.reps {
				if v := counterValue(t, rep.LocalState()); v != 5 {
					t.Fatalf("%s converged to %d, want 5", id, v)
				}
			}
		})
	}
}

// TestForgetPeerDropsTransferCaches pins the bounded-cache contract: the
// runtime's peer-down signal clears both sides of the digest cache for
// exactly that peer.
func TestForgetPeerDropsTransferCaches(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDelta))
	n1 := nw.reps["n1"]
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if len(n1.xfer.views) != 2 {
		t.Fatalf("views = %d peers, want 2", len(n1.xfer.views))
	}
	n2 := nw.reps["n2"]
	if len(n2.xfer.seen) != 1 {
		t.Fatalf("n2 seen rings = %d, want 1", len(n2.xfer.seen))
	}
	n1.ForgetPeer("n2")
	if _, ok := n1.xfer.views["n2"]; ok {
		t.Fatal("view of n2 survived ForgetPeer")
	}
	if _, ok := n1.xfer.views["n3"]; !ok {
		t.Fatal("view of n3 was dropped too")
	}
	n2.ForgetPeer("n1")
	if len(n2.xfer.seen) != 0 {
		t.Fatal("n2's digest ring for n1 survived ForgetPeer")
	}
}

func TestDigestRing(t *testing.T) {
	var ring digestRing
	mk := func(b byte) crdt.Digest {
		var d crdt.Digest
		d[0] = b
		return d
	}
	for i := 0; i < digestRingSize+3; i++ {
		ring.add(mk(byte(i)))
	}
	if ring.contains(mk(0)) || ring.contains(mk(2)) {
		t.Fatal("evicted digests still present")
	}
	for i := 3; i < digestRingSize+3; i++ {
		if !ring.contains(mk(byte(i))) {
			t.Fatalf("recent digest %d missing", i)
		}
	}
	ring.add(mk(5)) // duplicate must not evict anything
	if !ring.contains(mk(3)) {
		t.Fatal("duplicate add evicted the oldest entry")
	}
}
