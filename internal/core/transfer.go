package core

import (
	"fmt"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// StateTransfer selects how MERGE/ACK/NACK messages move payload state on
// the replica wire (docs/PROTOCOL.md §3). All three modes implement the
// same protocol and interoperate — receivers understand every frame kind
// regardless of their own mode, and the mode only governs what a node
// initiates (replies answer in whatever form the inbound frame asked
// for: even a full-mode acceptor sends a digest-only ACK to a PREPARE
// that announced a matching digest) — but a uniform cluster-wide
// setting is what makes the savings land.
type StateTransfer uint8

const (
	// TransferFull always ships complete payloads — the paper's wire
	// format, and the default.
	TransferFull StateTransfer = iota
	// TransferDigest announces the proposer's state digest in PREPARE so
	// converged acceptors answer digest-only ACKs/NACKs, and suppresses
	// MERGE payloads a peer has already acknowledged.
	TransferDigest
	// TransferDelta additionally ships join-decomposition deltas in MERGE
	// for payload types implementing crdt.DeltaState, against the last
	// state each peer acknowledged.
	TransferDelta
)

func (t StateTransfer) String() string {
	switch t {
	case TransferFull:
		return "full"
	case TransferDigest:
		return "digest"
	case TransferDelta:
		return "delta"
	default:
		return fmt.Sprintf("StateTransfer(%d)", uint8(t))
	}
}

// ParseStateTransfer parses the -state-transfer flag values.
func ParseStateTransfer(s string) (StateTransfer, error) {
	switch s {
	case "full":
		return TransferFull, nil
	case "digest":
		return TransferDigest, nil
	case "delta":
		return TransferDelta, nil
	default:
		return TransferFull, fmt.Errorf("core: unknown state-transfer mode %q (want full, digest, or delta)", s)
	}
}

// peerView is the proposer-side record of the last payload state a peer
// acknowledged merging from this replica. Any acknowledged state is a
// sound delta baseline forever: the peer's payload only grows, so it
// dominates everything it ever merged. The full state is retained only in
// delta mode (it is the delta subtrahend); digest mode keeps the digest
// alone.
type peerView struct {
	state  crdt.State // nil under TransferDigest
	digest crdt.Digest
}

// digestRingSize bounds the per-peer digest cache: how many of a peer's
// recent MERGE states an acceptor remembers having merged. A small ring
// tolerates a few reordered or duplicated deltas in flight; anything
// older falls back to a MERGE-NACK and a full-state resend.
const digestRingSize = 8

// digestRing is a fixed-size record of recently merged state digests.
type digestRing struct {
	buf [digestRingSize]crdt.Digest
	n   int // filled slots
	pos int // next overwrite position
}

func (r *digestRing) add(d crdt.Digest) {
	if r.contains(d) {
		return
	}
	r.buf[r.pos] = d
	r.pos = (r.pos + 1) % digestRingSize
	if r.n < digestRingSize {
		r.n++
	}
}

func (r *digestRing) contains(d crdt.Digest) bool {
	for i := 0; i < r.n; i++ {
		if r.buf[i] == d {
			return true
		}
	}
	return false
}

// transferState bundles the digest/delta bookkeeping of one replica. Its
// memory is bounded by the membership: one peerView and one digestRing
// per peer, entries created only for configured peers and dropped by
// ForgetPeer when the runtime declares a peer down.
type transferState struct {
	digests crdt.MemoDigest                  // memoized digest of the local payload
	views   map[transport.NodeID]*peerView   // proposer side: per-peer last-acked state
	seen    map[transport.NodeID]*digestRing // acceptor side: per-peer merged digests
}

func newTransferState() transferState {
	return transferState{
		views: make(map[transport.NodeID]*peerView),
		seen:  make(map[transport.NodeID]*digestRing),
	}
}

func (t *transferState) ring(from transport.NodeID) *digestRing {
	r, ok := t.seen[from]
	if !ok {
		r = &digestRing{}
		t.seen[from] = r
	}
	return r
}

func (t *transferState) forget(peer transport.NodeID) {
	delete(t.views, peer)
	delete(t.seen, peer)
}
