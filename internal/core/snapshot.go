package core

import (
	"errors"
	"fmt"

	"crdtsmr/internal/crdt"
)

// Snapshot is the complete durable state of one object replica — the
// paper's headline recovery claim made concrete: a log-free replica
// recovers from its current CRDT payload plus constant-size consensus
// metadata, with no log replay (§1, "memory overhead of a single counter
// per replica"). Everything else a Replica holds (in-flight requests,
// digest/delta transfer caches, the retired-update slot) is volatile and
// safe to lose: requests fail over to the client's retry path and the
// caches repopulate from traffic.
//
// The fields:
//
//   - Round is the acceptor's promised round. Persisting it is the safety
//     half of recovery — a restored acceptor must never promise a lower
//     round than it did before the crash, or a stale proposer could count
//     a quorum it no longer has.
//   - State is the acceptor payload; Learned is the largest state this
//     replica returned to a client (GLA-Stability, §3.4), so reads stay
//     monotone across a restart too.
//   - NextReq and NextSeq are the proposer's monotone counters. NextSeq
//     feeds round IDs; restoring it keeps post-restart rounds distinct
//     from every round this proposer issued before the crash (round IDs
//     must never repeat, or late replies to a pre-crash request could be
//     counted toward a post-crash one with the same ID).
//   - Config is the membership configuration the replica had adopted
//     (docs/PROTOCOL.md §6). Persisting it is what keeps a reconfigured
//     group safe across restarts: a replica that acked a new config and
//     crashed must not come back serving quorums of the old member set.
type Snapshot struct {
	Round   Round
	State   crdt.State
	Learned crdt.State
	NextReq uint64
	NextSeq uint64
	Config  Config
}

// Snapshot returns the replica's current durable state. The contained
// states are immutable; the snapshot is valid until the next mutation and
// cheap to take (no copying, no encoding).
func (r *Replica) Snapshot() Snapshot {
	return Snapshot{
		Round:   r.acc.round,
		State:   r.acc.state,
		Learned: r.learned,
		NextReq: r.nextReq,
		NextSeq: r.nextSeq,
		Config:  r.ConfigState(),
	}
}

// StateVersion counts durable-state transitions: it increases whenever a
// Snapshot taken now could differ from one taken before (payload merged,
// round adopted, state learned, a proposer counter advanced). Runtimes
// persisting snapshots compare it against the version they last wrote to
// skip no-op writes. It may overcount (bumping on a transition that left
// the state equivalent) but never undercounts.
func (r *Replica) StateVersion() uint64 { return r.version }

// Restore rehydrates a replica from a snapshot, merging it into the
// replica's current state: the payload and learned states are joined, the
// round and the proposer counters take the maximum. Joining (rather than
// overwriting) makes Restore monotone — restoring an old snapshot onto a
// replica that has already moved on can never regress the promised round
// or shrink the payload, which is the recovery safety argument in one
// line. Restore is intended for freshly constructed replicas, before any
// command or message is processed.
func (r *Replica) Restore(snap Snapshot) error {
	if snap.State == nil {
		return errors.New("core: restore with nil state")
	}
	merged, err := r.acc.state.Merge(snap.State)
	if err != nil {
		return fmt.Errorf("core: restore payload: %w", err)
	}
	learned := snap.Learned
	if learned == nil {
		learned = snap.State
	}
	mergedLearned, err := r.learned.Merge(learned)
	if err != nil {
		return fmt.Errorf("core: restore learned state: %w", err)
	}
	r.acc.state = merged
	r.learned = mergedLearned
	if r.acc.round.Less(snap.Round) {
		r.acc.round = snap.Round
	}
	if snap.NextReq > r.nextReq {
		r.nextReq = snap.NextReq
	}
	if snap.NextSeq > r.nextSeq {
		r.nextSeq = snap.NextSeq
	}
	// The config joins like everything else: adopt the snapshot's if it
	// supersedes the one the replica was constructed with (it usually does
	// — construction seeds the node's boot-time view, the snapshot has what
	// this replica had actually adopted), keep the newer one otherwise.
	if snap.Config.Supersedes(r.cfg) && len(snap.Config.Members) > 0 {
		r.setConfig(snap.Config)
	}
	// The round lease is deliberately absent from Snapshot and dropped
	// here: a restarted replica must re-earn its fast path through a full
	// quorum read — while it was down, other proposers may have moved the
	// quorum's rounds, and resuming a pre-crash lease would skip the very
	// prepare that detects that.
	r.lease = nil
	r.version++
	return nil
}
