package core

import (
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

func newSnapReplica(t *testing.T, id transport.NodeID) *Replica {
	t.Helper()
	members := []transport.NodeID{"n1", "n2", "n3"}
	rep, err := NewReplica(id, members, crdt.NewGCounter(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSnapshotRestoreRoundTrip: a snapshot taken after local activity,
// restored onto a fresh replica, reproduces the durable state exactly —
// payload, learned state, round, and both proposer counters.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rep := newSnapReplica(t, "n1")
	if _, err := rep.SubmitUpdate(inc("n1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.SubmitUpdate(inc("n1"), nil); err != nil {
		t.Fatal(err)
	}
	// Adopt a concrete round so the snapshot carries more than the write
	// marker.
	fixed := Round{Number: 9, ID: RoundID{Proposer: "n2", Seq: 4}}
	if reply, _, _, err := rep.acc.handlePrepare(fixed, nil); err != nil || reply != msgAck {
		t.Fatalf("prepare: reply=%v err=%v", reply, err)
	}
	snap := rep.Snapshot()

	restored := newSnapReplica(t, "n1")
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := restored.LocalState().(*crdt.GCounter).Value(); got != 2 {
		t.Fatalf("restored payload value = %d, want 2", got)
	}
	if restored.acc.round != snap.Round {
		t.Fatalf("restored round = %v, want %v", restored.acc.round, snap.Round)
	}
	if restored.nextReq != snap.NextReq || restored.nextSeq != snap.NextSeq {
		t.Fatalf("restored counters = (%d,%d), want (%d,%d)",
			restored.nextReq, restored.nextSeq, snap.NextReq, snap.NextSeq)
	}
	eq, err := crdt.Equivalent(restored.learned, snap.Learned)
	if err != nil || !eq {
		t.Fatalf("restored learned state mismatch (eq=%t err=%v)", eq, err)
	}
}

// TestRestoredAcceptorNeverRegressesRound is the recovery safety argument
// as a unit test: an acceptor that promised round 9 before the crash must,
// after Restore, NACK a fixed prepare at any lower round — exactly as the
// pre-crash acceptor would have.
func TestRestoredAcceptorNeverRegressesRound(t *testing.T) {
	rep := newSnapReplica(t, "n1")
	promised := Round{Number: 9, ID: RoundID{Proposer: "n2", Seq: 7}}
	if reply, _, _, err := rep.acc.handlePrepare(promised, nil); err != nil || reply != msgAck {
		t.Fatalf("prepare: reply=%v err=%v", reply, err)
	}
	snap := rep.Snapshot()

	restored := newSnapReplica(t, "n1")
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	lower := Round{Number: 5, ID: RoundID{Proposer: "n3", Seq: 1}}
	reply, round, _, err := restored.acc.handlePrepare(lower, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reply != msgNack {
		t.Fatalf("restored acceptor ACKed round %v below its promised %v", lower, promised)
	}
	if round != promised {
		t.Fatalf("NACK carries round %v, want the promised %v", round, promised)
	}
	// A higher round is still accepted: the restored acceptor is not stuck.
	higher := Round{Number: 12, ID: RoundID{Proposer: "n3", Seq: 2}}
	if reply, _, _, err := restored.acc.handlePrepare(higher, nil); err != nil || reply != msgAck {
		t.Fatalf("higher prepare: reply=%v err=%v", reply, err)
	}
}

// TestRestoreIsMonotone: restoring a stale snapshot onto a replica that
// has already adopted a higher round and a larger payload changes nothing
// — Restore joins, never overwrites.
func TestRestoreIsMonotone(t *testing.T) {
	stale := newSnapReplica(t, "n1")
	if _, err := stale.SubmitUpdate(inc("n1"), nil); err != nil {
		t.Fatal(err)
	}
	snap := stale.Snapshot() // value 1, write-marker round

	rep := newSnapReplica(t, "n1")
	for i := 0; i < 3; i++ {
		if _, err := rep.SubmitUpdate(inc("n1"), nil); err != nil {
			t.Fatal(err)
		}
	}
	high := Round{Number: 20, ID: RoundID{Proposer: "n3", Seq: 9}}
	if reply, _, _, err := rep.acc.handlePrepare(high, nil); err != nil || reply != msgAck {
		t.Fatalf("prepare: reply=%v err=%v", reply, err)
	}
	if err := rep.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if rep.acc.round != high {
		t.Fatalf("stale restore regressed round to %v from %v", rep.acc.round, high)
	}
	if got := rep.LocalState().(*crdt.GCounter).Value(); got != 3 {
		t.Fatalf("stale restore changed payload value to %d", got)
	}
	if rep.nextReq != 3 {
		t.Fatalf("stale restore regressed nextReq to %d", rep.nextReq)
	}
}

// TestRestoredProposerRoundIDsStayFresh: round IDs issued after a restore
// must be distinct from every round the proposer issued before the crash
// (NextSeq persists), or late replies to pre-crash prepares could be
// counted toward post-crash requests carrying the same ID.
func TestRestoredProposerRoundIDsStayFresh(t *testing.T) {
	rep := newSnapReplica(t, "n1")
	for i := 0; i < 4; i++ {
		rep.SubmitQuery(func(crdt.State, QueryStats, error) {})
	}
	preCrashSeq := rep.nextSeq
	if preCrashSeq == 0 {
		t.Fatal("queries issued no rounds")
	}
	snap := rep.Snapshot()

	restored := newSnapReplica(t, "n1")
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restored.SubmitQuery(func(crdt.State, QueryStats, error) {})
	if restored.nextSeq <= preCrashSeq {
		t.Fatalf("post-restore seq %d does not exceed pre-crash seq %d", restored.nextSeq, preCrashSeq)
	}
}

// TestRestoreRejectsMismatchedPayload: a snapshot of a different payload
// type must be rejected, not merged.
func TestRestoreRejectsMismatchedPayload(t *testing.T) {
	rep := newSnapReplica(t, "n1")
	if err := rep.Restore(Snapshot{State: crdt.NewGSet()}); err == nil {
		t.Fatal("restore accepted a g-set snapshot into a g-counter replica")
	}
	if err := rep.Restore(Snapshot{}); err == nil {
		t.Fatal("restore accepted a nil payload")
	}
}

// TestStateVersionAdvancesOnDurableTransitions: every path that can
// change the snapshot must move StateVersion, so runtimes keyed on it
// never skip a needed write.
func TestStateVersionAdvancesOnDurableTransitions(t *testing.T) {
	rep := newSnapReplica(t, "n1")
	v0 := rep.StateVersion()
	if _, err := rep.SubmitUpdate(inc("n1"), nil); err != nil {
		t.Fatal(err)
	}
	v1 := rep.StateVersion()
	if v1 <= v0 {
		t.Fatalf("update did not advance version: %d -> %d", v0, v1)
	}
	rep.SubmitQuery(func(crdt.State, QueryStats, error) {})
	v2 := rep.StateVersion()
	if v2 <= v1 {
		t.Fatalf("query prepare did not advance version: %d -> %d", v1, v2)
	}
	if err := rep.Restore(rep.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if rep.StateVersion() <= v2 {
		t.Fatal("restore did not advance version")
	}
}
