package core

import (
	"errors"
	"fmt"
	"sort"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// Options configure optional protocol behaviours.
type Options struct {
	// GLAStability, when true, makes the replica remember its largest
	// learned state and return the maximum of it and each newly learned
	// state, upgrading the paper's Stability condition to GLA-Stability
	// (§3.4: "states learned at the same process increase monotonically").
	GLAStability bool

	// SeedPrepare, when true, includes the local acceptor's current payload
	// in the first PREPARE of every query. §3.2 notes this "can speed-up
	// convergence of the payload states held by acceptors"; §3.6 notes
	// omitting a payload saves bandwidth. Retries after a NACK always seed
	// with the LUB of every payload received so far, regardless of this
	// option.
	SeedPrepare bool

	// Transfer selects the state-transfer strategy of the replica wire:
	// full payloads (the paper's format, the default), digest-suppressed
	// payloads, or deltas (docs/PROTOCOL.md §3). It changes only how many
	// bytes move, never what is learned.
	Transfer StateTransfer

	// Lease enables the §3.6 prepare-skip fast path (docs/PROTOCOL.md §5):
	// after a query learns with every quorum member agreeing on the round
	// and advertising the lease capability, the proposer records a round
	// lease and subsequent queries go straight to the vote phase. Any
	// NACK, lease steal, peer-failure signal, or restart falls back to the
	// unmodified two-phase protocol, so the option changes round trips,
	// never outcomes.
	Lease bool
}

// DefaultOptions match the configuration evaluated in the paper (§4):
// the §3.6 bandwidth optimizations on, GLA-Stability maintained, and the
// §3.6 prepare-skip round lease enabled.
func DefaultOptions() Options {
	return Options{GLAStability: true, SeedPrepare: false, Lease: true}
}

// LearnPath records how a query learned its state, for the round-trip
// distribution of Figure 3.
type LearnPath uint8

const (
	// LearnConsistentQuorum: a quorum of ACKs carried equivalent states;
	// the second phase was skipped (one round trip).
	LearnConsistentQuorum LearnPath = iota + 1
	// LearnVote: a quorum voted for the proposed LUB (two round trips).
	LearnVote
)

func (p LearnPath) String() string {
	switch p {
	case LearnConsistentQuorum:
		return "consistent-quorum"
	case LearnVote:
		return "vote"
	default:
		return fmt.Sprintf("LearnPath(%d)", uint8(p))
	}
}

// QueryStats describes how a completed query was processed.
type QueryStats struct {
	// RoundTrips counts message rounds the proposer initiated: each
	// PREPARE broadcast and each VOTE broadcast is one round trip.
	RoundTrips int
	// Attempts counts protocol attempts (1 = no retry).
	Attempts int
	// Path is the learn path of the final, successful attempt.
	Path LearnPath
	// Leased reports that the query took the prepare-skip fast path
	// (docs/PROTOCOL.md §5) and learned without falling back.
	Leased bool
}

// UpdateStats describes a completed update. Updates always take exactly one
// round trip (§3.2); the struct exists for symmetry and future extension.
type UpdateStats struct {
	RoundTrips int
}

// Envelope is an outbound protocol message for the runtime to transmit.
type Envelope struct {
	To      transport.NodeID
	Payload []byte
}

// UpdateDone is invoked exactly once when an update completes.
type UpdateDone func(UpdateStats, error)

// QueryDone is invoked exactly once when a query learns a state. The state
// must be treated as immutable.
type QueryDone func(crdt.State, QueryStats, error)

// ErrAborted is reported to completion callbacks when a request is
// abandoned by Abort (e.g. client timeout or node shutdown).
var ErrAborted = errors.New("core: request aborted")

// Replica is one protocol participant implementing both roles of
// Algorithm 2: proposer (processes client commands) and acceptor
// (replicated storage).
//
// Replica is NOT safe for concurrent use. All methods must be called from
// a single goroutine ("serial processes", §3.2); internal/cluster provides
// the event loop. After any call, the runtime must drain TakeOutbox and
// transmit the envelopes.
type Replica struct {
	id     transport.NodeID
	cfg    Config             // current configuration (epoch, source, members)
	peers  []transport.NodeID // remote members only (excludes id), derived from cfg
	quorum int                // majority of cfg.Members, derived from cfg
	member bool               // whether id ∈ cfg.Members, derived from cfg
	opts   Options

	// reconfig is the in-flight reconfiguration round this replica
	// proposed, nil when none. At most one per replica: a second proposal
	// before commit returns ErrReconfigInFlight.
	reconfig *reconfigReq

	acc  acceptor
	xfer transferState // digest/delta bookkeeping (Transfer != TransferFull)

	// lease is the round lease of the prepare-skip fast path, nil when no
	// lease is held. It is deliberately volatile: never snapshotted, and
	// dropped on ForgetPeer — a restarted or partitioned replica must
	// re-earn its lease through a full quorum read (docs/PROTOCOL.md §5).
	lease *leaseState

	nextReq  uint64
	nextSeq  uint64
	version  uint64 // durable-state transition counter (see StateVersion)
	updates  map[uint64]*updateReq
	queries  map[uint64]*queryReq
	learned  crdt.State // largest learned state (GLA-Stability, §3.4)
	outbox   []Envelope
	counters Counters

	// retired is the most recent update that answered its client at
	// quorum with MERGEDs still outstanding. Late MERGEDs matching it
	// keep updating the per-peer views (so the slower peers still earn
	// digest/delta MERGEs) without retaining unbounded per-command state
	// — a single slot, overwritten by the next such update.
	retired *updateReq
}

// Counters aggregates protocol-level statistics across all requests
// processed by this replica.
type Counters struct {
	Updates            uint64 // completed updates
	Queries            uint64 // completed queries
	ConsistentQuorum   uint64 // queries learned by consistent quorum
	ByVote             uint64 // queries learned by vote
	Retries            uint64 // query retry attempts
	StaleMsgs          uint64 // messages for unknown/stale requests
	MalformedMsgs      uint64 // messages that failed to decode or merge
	PreparesAccepted   uint64 // acceptor-side ACKs sent
	PreparesRejected   uint64 // acceptor-side NACKs to prepares
	VotesAccepted      uint64 // acceptor-side VOTED sent
	VotesRejected      uint64 // acceptor-side NACKs to votes
	IncrementalPrepare uint64 // prepares issued with ⊥ number
	FixedPrepare       uint64 // prepares issued with a concrete number
	DigestReplies      uint64 // ACK/NACK replies sent digest-only (payload suppressed)
	DigestMerges       uint64 // MERGE messages sent digest-only
	DeltaMerges        uint64 // MERGE messages sent as deltas
	MergeFallbacks     uint64 // full-payload resends after a MERGE-NACK
	LeaseHits          uint64 // queries learned via the prepare-skip fast path
	LeaseFallbacks     uint64 // leased attempts that fell back to a full prepare
	EpochNacks         uint64 // messages refused for a mismatched config epoch
	ConfigAdoptions    uint64 // configurations adopted (reconfigs, pushes, nacks)
	ReconfigCommits    uint64 // reconfiguration rounds this replica committed as proposer

	// Runtime-level overload counters. The replica itself never sets
	// them; the cluster runtime fills them into its aggregated snapshot
	// (like the node's malformed-frame count rides MalformedMsgs).
	InboundDropped  uint64 // inbound replica frames dropped on a full event queue
	BudgetDelayed   uint64 // outbound envelopes delayed by a link's byte budget
	BudgetCoalesced uint64 // delayed envelopes superseded by a newer one for the same key
}

// Add accumulates o into c, field by field. Runtimes aggregating many
// replicas (e.g. a multi-object node) use it so the aggregation stays next
// to the struct definition and cannot miss newly added fields.
func (c *Counters) Add(o Counters) {
	c.Updates += o.Updates
	c.Queries += o.Queries
	c.ConsistentQuorum += o.ConsistentQuorum
	c.ByVote += o.ByVote
	c.Retries += o.Retries
	c.StaleMsgs += o.StaleMsgs
	c.MalformedMsgs += o.MalformedMsgs
	c.PreparesAccepted += o.PreparesAccepted
	c.PreparesRejected += o.PreparesRejected
	c.VotesAccepted += o.VotesAccepted
	c.VotesRejected += o.VotesRejected
	c.IncrementalPrepare += o.IncrementalPrepare
	c.FixedPrepare += o.FixedPrepare
	c.DigestReplies += o.DigestReplies
	c.DigestMerges += o.DigestMerges
	c.DeltaMerges += o.DeltaMerges
	c.MergeFallbacks += o.MergeFallbacks
	c.LeaseHits += o.LeaseHits
	c.LeaseFallbacks += o.LeaseFallbacks
	c.EpochNacks += o.EpochNacks
	c.ConfigAdoptions += o.ConfigAdoptions
	c.ReconfigCommits += o.ReconfigCommits
	c.InboundDropped += o.InboundDropped
	c.BudgetDelayed += o.BudgetDelayed
	c.BudgetCoalesced += o.BudgetCoalesced
}

// leaseState is the proposer-side record of a round lease: the last
// learned state and the round a full quorum confirmed as the highest
// established, with every member advertising the lease capability. The
// digest (kept under digest/delta transfer) lets a quiescent leased VOTE
// ship no payload at all.
type leaseState struct {
	round  Round
	state  crdt.State
	digest crdt.Digest
	hasDig bool
}

type updateReq struct {
	id      uint64
	state   crdt.State  // the merged payload broadcast in MERGE
	digest  crdt.Digest // digest of state (digest/delta transfer only)
	hasDig  bool
	round   Round // lease round the MERGE asks acceptors to preserve
	lease   bool  // this update was issued while holding the lease
	acked   map[transport.NodeID]bool
	done    UpdateDone
	pending int // remote MERGED replies still needed
}

type queryPhase uint8

const (
	phasePrepare queryPhase = iota + 1
	phaseVote
)

type queryReq struct {
	id      uint64
	attempt uint32
	phase   queryPhase

	round    Round                        // round of the current attempt (as sent)
	acks     map[transport.NodeID]ackInfo // ACKs of the current attempt
	votes    map[transport.NodeID]bool    // VOTED of the current attempt
	denials  map[transport.NodeID]bool    // vote-phase NACKs of the current attempt
	proposed crdt.State                   // state sent in VOTE
	gathered crdt.State                   // LUB of every payload seen (retry seed)

	// prepared is the local payload whose digest the current attempt's
	// PREPARE announced; digest-only ACK/NACK replies resolve to it
	// (digest equality is state equality).
	prepared    crdt.State
	preparedDig crdt.Digest
	hasPrepared bool

	// seed is the payload the current attempt's PREPARE carried, kept so
	// a retransmit can re-send the same attempt instead of burning it.
	seed crdt.State

	// leased marks an attempt running the prepare-skip fast path;
	// leasable/leaseRound accumulate whether the current attempt proved a
	// round quorum-established with every member lease-capable, making it
	// installable on completion.
	leased     bool
	leasable   bool
	leaseRound Round

	// propDig is the digest of the leased attempt's proposal
	// (digest/delta transfer only): it drives per-peer VOTE payload
	// suppression and, once a peer VOTEDs, records that peer's view.
	propDig    crdt.Digest
	hasPropDig bool

	rtts int
	done QueryDone
}

type ackInfo struct {
	round Round
	state crdt.State
	lease bool // the acceptor advertised the lease capability
}

// NewReplica creates a protocol participant at the initial configuration
// (epoch 0). id must appear in members, which lists the full cluster (the
// quorum system is majority over members). s0 is the initial payload
// state, identical on every replica.
func NewReplica(id transport.NodeID, members []transport.NodeID, s0 crdt.State, opts Options) (*Replica, error) {
	if !contains(members, id) {
		return nil, fmt.Errorf("core: replica %s not in member list %v", id, members)
	}
	return NewReplicaConfig(id, Config{Members: members}, s0, opts)
}

// NewReplicaConfig creates a protocol participant seeded with an explicit
// configuration — a later epoch on a node that already adopted one, or an
// empty member set for a joining replica. A replica whose id is not in
// cfg.Members starts as a non-member: it refuses client commands
// (ErrNotMember) and serves no quorums, but accepts configuration pushes,
// which is exactly how a joiner waits to be reconfigured in
// (docs/ARCHITECTURE.md, "Reconfiguration lifecycle").
func NewReplicaConfig(id transport.NodeID, cfg Config, s0 crdt.State, opts Options) (*Replica, error) {
	if s0 == nil {
		return nil, errors.New("core: nil initial state")
	}
	r := &Replica{
		id:      id,
		opts:    opts,
		acc:     newAcceptor(s0),
		xfer:    newTransferState(),
		updates: make(map[uint64]*updateReq),
		queries: make(map[uint64]*queryReq),
		learned: s0,
	}
	r.setConfig(cfg)
	return r, nil
}

// setConfig installs cfg and re-derives everything membership determines:
// the remote peer list, the quorum size, and whether this replica is a
// member at all. Callers handle in-flight request migration.
func (r *Replica) setConfig(cfg Config) {
	r.cfg = cfg
	r.peers = r.peers[:0]
	for _, m := range cfg.Members {
		if m != r.id {
			r.peers = append(r.peers, m)
		}
	}
	r.quorum = majority(cfg.Members)
	r.member = contains(cfg.Members, r.id)
}

// isPeer reports whether id is a configured remote peer. Digest and delta
// caches are only maintained for configured peers, which bounds them by
// the membership.
func (r *Replica) isPeer(id transport.NodeID) bool {
	for _, p := range r.peers {
		if p == id {
			return true
		}
	}
	return false
}

// ForgetPeer drops every digest/delta transfer assumption held about the
// given peer: the last state it acknowledged (delta baselines) and the
// digests of its MERGE payloads merged here. The runtime calls it when it
// declares a peer down; the caches repopulate as traffic resumes, and a
// stale assumption would anyway only cost a MERGE-NACK round trip, never
// correctness.
func (r *Replica) ForgetPeer(peer transport.NodeID) {
	r.xfer.forget(peer)
	// A peer declared down is a membership-health signal: drop the round
	// lease so the next query re-proves its round through a full quorum
	// read rather than fast-pathing on possibly partitioned state. Purely
	// a liveness choice — a stale lease would only cost NACKs — but it
	// keeps fast-path behaviour predictable across failures.
	r.lease = nil
}

// Leased reports whether the replica currently holds a round lease.
func (r *Replica) Leased() bool { return r.lease != nil }

// DropLease relinquishes the round lease, if held. Runtimes call it on
// crash/partition signals; the next successful quorum read re-installs it.
func (r *Replica) DropLease() { r.lease = nil }

// ID returns the replica's node ID.
func (r *Replica) ID() transport.NodeID { return r.id }

// Quorum returns the quorum size (majority of the current member set).
func (r *Replica) Quorum() int { return r.quorum }

// Epoch returns the replica's current configuration epoch.
func (r *Replica) Epoch() uint64 { return r.cfg.Epoch }

// ConfigState returns a copy of the replica's current configuration.
func (r *Replica) ConfigState() Config {
	members := make([]transport.NodeID, len(r.cfg.Members))
	copy(members, r.cfg.Members)
	return Config{Epoch: r.cfg.Epoch, Source: r.cfg.Source, Members: members}
}

// IsMember reports whether this replica belongs to the current member
// set. A non-member (a joiner awaiting its first committed epoch, or a
// node a reconfiguration removed) refuses client commands.
func (r *Replica) IsMember() bool { return r.member }

// LocalState returns the local acceptor's current payload. It reflects
// only this replica's view and is NOT linearizable; use SubmitQuery for
// linearizable reads.
func (r *Replica) LocalState() crdt.State { return r.acc.state }

// Counters returns a snapshot of the protocol counters.
func (r *Replica) Counters() Counters { return r.counters }

// TakeOutbox returns and clears the outbound envelopes produced since the
// last call. The runtime must transmit them (best effort).
func (r *Replica) TakeOutbox() []Envelope {
	out := r.outbox
	r.outbox = nil
	return out
}

// InFlight returns the number of client requests not yet completed,
// counting a pending reconfiguration as one.
func (r *Replica) InFlight() int {
	n := len(r.updates) + len(r.queries)
	if r.reconfig != nil {
		n++
	}
	return n
}

// Pending reports whether the given request is still in flight.
func (r *Replica) Pending(reqID uint64) bool {
	if _, ok := r.updates[reqID]; ok {
		return true
	}
	if _, ok := r.queries[reqID]; ok {
		return true
	}
	return r.reconfig != nil && r.reconfig.id == reqID
}

func (r *Replica) send(to transport.NodeID, m *message) {
	// Every outbound message is stamped with the current config epoch, so
	// receivers can refuse traffic from a stale configuration before it
	// reaches the protocol handlers (docs/PROTOCOL.md §6).
	m.Epoch = r.cfg.Epoch
	p, err := m.encode()
	if err != nil {
		// Encoding fails only for unmarshalable states — a programming
		// error in the payload type. Dropping the message degrades to a
		// lost message, which the protocol tolerates.
		r.counters.MalformedMsgs++
		return
	}
	r.outbox = append(r.outbox, Envelope{To: to, Payload: p})
}

func (r *Replica) broadcast(m *message) {
	for _, p := range r.peers {
		r.send(p, m)
	}
}

// SubmitUpdate starts an update command (Algorithm 2, lines 1-6): the
// update function is applied at the local acceptor and the resulting state
// is broadcast in MERGE messages; done fires once a quorum (counting this
// replica) has merged. Returns the request ID, or an error if the update
// function itself failed (in which case done is not called).
func (r *Replica) SubmitUpdate(fu crdt.Update, done UpdateDone) (uint64, error) {
	if !r.member {
		return 0, ErrNotMember
	}
	// A lease-holder update carries the leased round on its MERGEs: the
	// holder's own leased reads always propose a superset of its updates
	// (same serial process), so preserving the round at acceptors that
	// still hold it keeps the fast path alive across the holder's writes.
	// Updates from any other proposer still clobber, which is what forces
	// a leased read overlapping a foreign committed update to fall back.
	var keep Round
	if r.opts.Lease && r.lease != nil {
		keep = r.lease.round
	}
	s, err := r.acc.applyUpdate(fu, keep)
	if err != nil {
		return 0, fmt.Errorf("core: update function: %w", err)
	}
	r.version++ // payload replaced, round clobbered, nextReq advances
	r.nextReq++
	req := &updateReq{
		id:      r.nextReq,
		state:   s,
		round:   keep,
		lease:   keep.ID.Proposer != "",
		acked:   make(map[transport.NodeID]bool, len(r.peers)),
		done:    done,
		pending: r.quorum - 1, // the local acceptor already merged
	}
	if r.opts.Transfer != TransferFull {
		if d, derr := r.xfer.digests.Of(s); derr == nil {
			req.digest, req.hasDig = d, true
		}
	}
	if req.pending <= 0 {
		r.completeUpdate(req)
		return req.id, nil
	}
	r.updates[req.id] = req
	for _, p := range r.peers {
		r.sendMerge(req, p)
	}
	return req.id, nil
}

// sendMerge ships the update's payload to one peer in the cheapest form
// the transfer mode and the per-peer view allow: a digest alone when the
// peer already acknowledged exactly this state, a delta against the last
// state it acknowledged (delta mode, delta-capable payloads), or the full
// payload. Full is always safe; the other forms are verified by the
// receiver against its own digest cache and fall back via MERGE-NACK.
func (r *Replica) sendMerge(req *updateReq, to transport.NodeID) {
	if req.hasDig {
		if view, ok := r.xfer.views[to]; ok {
			if view.digest == req.digest {
				r.counters.DigestMerges++
				r.send(to, &message{Type: msgMerge, Req: req.id, Kind: wire.StateDigest, Digest: req.digest, Round: req.round, Lease: req.lease})
				return
			}
			if r.opts.Transfer == TransferDelta && view.state != nil {
				if ds, ok := req.state.(crdt.DeltaState); ok {
					if delta, err := ds.Delta(view.state); err == nil {
						r.counters.DeltaMerges++
						r.send(to, &message{
							Type: msgMerge, Req: req.id, Kind: wire.StateDelta,
							State: delta, Digest: req.digest, Baseline: view.digest,
							Round: req.round, Lease: req.lease,
						})
						return
					}
				}
			}
		}
	}
	r.send(to, &message{Type: msgMerge, Req: req.id, State: req.state, Round: req.round, Lease: req.lease})
}

// SubmitQuery starts a query command (Algorithm 2, lines 7-24). done fires
// with the learned state once a quorum agrees. The caller applies its query
// function to the learned state (equivalently to line 15/24 sending
// fq(s) to the client).
func (r *Replica) SubmitQuery(done QueryDone) uint64 {
	r.nextReq++
	if !r.member {
		// Fail through the callback (the signature has no error return):
		// a non-member holds no quorum and must not serve reads.
		id := r.nextReq
		if done != nil {
			done(nil, QueryStats{}, ErrNotMember)
		}
		return id
	}
	req := &queryReq{
		id:   r.nextReq,
		done: done,
	}
	r.queries[req.id] = req
	if r.opts.Lease && r.lease != nil {
		r.startLeaseAttempt(req)
	} else {
		r.startAttempt(req, Round{Number: NumberIncremental}, r.prepareSeed(nil))
	}
	return req.id
}

// prepareSeed decides which payload accompanies a PREPARE. Per §3.6, s0 is
// never sent; the first prepare is empty unless SeedPrepare is set, and
// retries send the LUB gathered so far.
func (r *Replica) prepareSeed(gathered crdt.State) crdt.State {
	if gathered != nil {
		return gathered
	}
	if r.opts.SeedPrepare {
		return r.acc.state
	}
	return nil
}

// startAttempt begins a (re)prepare attempt for a query with the given
// round template (incremental or fixed) and optional payload seed.
// Retries are counted here and nowhere else — every path that restarts a
// query (NACK, inconsistent rounds, vote denial, lease fallback) funnels
// through this function, so Retries == Σ(Attempts−1) holds exactly.
func (r *Replica) startAttempt(req *queryReq, round Round, seed crdt.State) {
	req.attempt++
	if req.attempt > 1 {
		r.counters.Retries++
	}
	r.beginPrepare(req, round, seed)
}

// beginPrepare resets the attempt's phase state and broadcasts its
// PREPARE. It is separate from startAttempt so a fixed prepare denied by
// the local acceptor can morph into an incremental prepare without
// burning another attempt — nothing of the denied prepare was broadcast,
// so reusing the attempt number is safe and no retry is recorded.
func (r *Replica) beginPrepare(req *queryReq, round Round, seed crdt.State) {
	req.phase = phasePrepare
	req.leased = false
	req.leasable = false
	req.acks = make(map[transport.NodeID]ackInfo, len(r.peers)+1)
	req.votes = nil
	req.denials = nil
	req.proposed = nil
	req.prepared, req.preparedDig, req.hasPrepared = nil, crdt.Digest{}, false
	req.seed = seed

	// nextSeq advances and the local acceptor (below) merges the seed and
	// adopts the round: one durable transition either way.
	r.version++
	r.nextSeq++
	round.ID = RoundID{Proposer: r.id, Seq: r.nextSeq}
	req.round = round
	if round.Incremental() {
		r.counters.IncrementalPrepare++
	} else {
		r.counters.FixedPrepare++
	}

	// The local acceptor processes the PREPARE synchronously — it is the
	// same serial process (§3.2). Remote acceptors get it broadcast.
	reply, accRound, accState, err := r.acc.handlePrepare(round, seed)
	if err == nil && reply == msgAck {
		req.acks[r.id] = ackInfo{round: accRound, state: accState, lease: true}
	} else if err == nil {
		// A fixed prepare below the local round: morph into an incremental
		// prepare (always self-accepted, so this recurses at most once).
		req.gathered = r.mergeGathered(req.gathered, accState)
		r.beginPrepare(req, Round{Number: NumberIncremental}, r.prepareSeed(req.gathered))
		return
	}
	req.rtts++
	m := &message{Type: msgPrepare, Req: req.id, Attempt: req.attempt, Round: round, State: seed}
	if r.opts.Transfer != TransferFull {
		// Announce the digest of the local post-prepare payload: a remote
		// acceptor whose payload matches answers with the digest alone,
		// and onAck resolves it back to req.prepared. The digest is
		// computed after the local prepare so it covers the seed — the
		// exact state a converged remote acceptor ends up with.
		if d, derr := r.xfer.digests.Of(r.acc.state); derr == nil {
			req.prepared, req.preparedDig, req.hasPrepared = r.acc.state, d, true
			m.Digest = d
			if seed == nil {
				m.Kind = wire.StateDigest
			} else {
				m.Kind = wire.StateFullDigest
			}
		}
	}
	r.broadcast(m)

	// A single-replica cluster decides immediately.
	r.maybeDecidePrepare(req)
}

// startLeaseAttempt runs the prepare-skip fast path (docs/PROTOCOL.md §5):
// holding a round lease, the proposer goes straight to the vote phase at
// the leased round. The proposal merges the leased (last learned) state
// with the local payload, so it covers everything the lease-installing
// quorum had established plus every update this replica submitted since —
// the two sources a linearizable read from this proposer must reflect. An
// acceptor whose round moved on NACKs, and once a vote quorum becomes
// impossible the query falls back to the full two-phase protocol.
func (r *Replica) startLeaseAttempt(req *queryReq) {
	lease := r.lease
	req.attempt++
	req.phase = phaseVote
	req.leased = true
	req.leasable = false
	req.round = lease.round
	req.acks = nil
	req.votes = make(map[transport.NodeID]bool, len(r.peers)+1)
	req.denials = make(map[transport.NodeID]bool, len(r.peers))
	prop := r.mergeGathered(lease.state, r.acc.state)
	req.proposed = prop
	// gathered restarts empty: the proposal is local information (the
	// local acceptor merges it in the synchronous vote below), so a
	// fallback only needs to seed what remote denials actually taught us.
	req.gathered = nil

	// The local acceptor votes synchronously; a denial means the lease is
	// already stale here (a foreign update or competing prepare moved the
	// local round), so fall back before broadcasting anything.
	reply, _, _, err := r.acc.handleVote(lease.round, prop)
	r.version++
	if err != nil || reply != msgVoted {
		// Nothing was gathered from the wire yet, so the fallback starts
		// like a fresh first attempt: unseeded (§3.6 — the local payload
		// is never shipped in a first prepare).
		r.leaseFallback(req)
		return
	}
	req.votes[r.id] = true
	req.rtts++
	if r.opts.Transfer != TransferFull {
		if d, derr := r.xfer.digests.Of(prop); derr == nil {
			req.propDig, req.hasPropDig = d, true
		}
	}
	for _, p := range r.peers {
		m := &message{Type: msgVote, Req: req.id, Attempt: req.attempt, Round: lease.round, State: prop, Lease: true}
		if req.hasPropDig {
			// Digest-suppressed leased VOTE: ship no payload to a peer that
			// provably already holds it — either the cluster is quiescent
			// (the proposal still equals the leased state every quorum
			// member confirmed) or this peer's last acknowledged state is
			// exactly the proposal (it merged the holder's updates). The
			// acceptor verifies the digest against its own payload and
			// NACKs with the full state on any mismatch.
			quiescent := lease.hasDig && req.propDig == lease.digest
			view, seen := r.xfer.views[p]
			if quiescent || (seen && view.digest == req.propDig) {
				m.State, m.Kind, m.Digest = nil, wire.StateDigest, req.propDig
			}
		}
		r.send(p, m)
	}
	r.maybeDecideVote(req)
}

// leaseFallback abandons the fast path for the unmodified two-phase
// protocol: the lease is dropped (the next quorum read re-installs it)
// and the query restarts with an incremental prepare seeded with
// everything gathered so far, which counts as a retry.
func (r *Replica) leaseFallback(req *queryReq) {
	r.counters.LeaseFallbacks++
	r.lease = nil
	req.leased = false
	r.startAttempt(req, Round{Number: NumberIncremental}, r.prepareSeed(req.gathered))
}

func (r *Replica) mergeGathered(acc, s crdt.State) crdt.State {
	if s == nil {
		return acc
	}
	if acc == nil {
		return s
	}
	merged, err := acc.Merge(s)
	if err != nil {
		r.counters.MalformedMsgs++
		return acc
	}
	return merged
}

// Deliver processes one inbound protocol message. Malformed messages are
// dropped (counted), matching the unreliable-network model.
func (r *Replica) Deliver(from transport.NodeID, payload []byte) {
	m, err := decodeMessage(payload)
	if err != nil {
		r.counters.MalformedMsgs++
		return
	}
	// Configuration traffic is handled before the epoch gate: it is the
	// anti-entropy channel that repairs epoch mismatches.
	switch m.Type {
	case msgReconfig:
		r.onReconfig(from, m)
		return
	case msgReconfigAck:
		r.onReconfigAck(from, m)
		return
	case msgEpochNack:
		r.onEpochNack(from, m)
		return
	}
	if m.Epoch != r.cfg.Epoch {
		// Stale- or future-epoch traffic never reaches the protocol: a
		// quorum counted across configurations would not be a quorum of
		// either. The two sides converge instead — a sender behind us gets
		// our config pushed (with the full payload: the log-free bootstrap
		// in one message); a sender ahead of us is told our config so it
		// pushes its own back.
		r.counters.EpochNacks++
		if m.Epoch < r.cfg.Epoch {
			r.pushConfig(from, m.Req)
		} else {
			r.sendEpochNack(from, m.Req)
		}
		return
	}
	switch m.Type {
	case msgMerge:
		r.onMerge(from, m)
	case msgMerged:
		r.onMerged(from, m)
	case msgPrepare:
		r.onPrepare(from, m)
	case msgAck:
		r.onAck(from, m)
	case msgVote:
		r.onVote(from, m)
	case msgVoted:
		r.onVoted(from, m)
	case msgNack:
		r.onNack(from, m)
	case msgMergeNack:
		r.onMergeNack(from, m)
	}
}

// --- acceptor-side message handling ---

func (r *Replica) onMerge(from transport.NodeID, m *message) {
	// A node tracks per-peer merge digests only when digest transfer is
	// on locally; a full-mode node still answers digest and delta frames
	// correctly (safety never depends on the cache), it just recognizes
	// fewer baselines and forces more full-state fallbacks.
	track := r.opts.Transfer != TransferFull && r.isPeer(from)
	// A lease-holder MERGE names the round the sender's lease rests on;
	// acceptors still at exactly that round keep it (clobberRound).
	keep := Round{}
	if m.Lease {
		keep = m.Round
	}
	switch m.Kind {
	case wire.StateFull, wire.StateFullDigest:
		if m.State == nil {
			r.counters.MalformedMsgs++
			return
		}
		if err := r.acc.handleMerge(m.State, keep); err != nil {
			r.counters.MalformedMsgs++
			return
		}
		r.version++
		if track && len(m.StateRaw) > 0 {
			// Fingerprint the sender's state from the wire bytes — the
			// digest is defined over exactly this encoding.
			r.xfer.ring(from).add(crdt.DigestOfMarshaled(m.StateRaw))
		}
	case wire.StateDigest:
		// Payload suppressed: the sender believes this acceptor already
		// holds a state dominating the one with this digest. Verify, or
		// demand the full payload.
		if !r.dominates(from, m.Digest, track) {
			r.send(from, &message{Type: msgMergeNack, Req: m.Req})
			return
		}
	case wire.StateDelta:
		if m.State == nil {
			r.counters.MalformedMsgs++
			return
		}
		if r.dominates(from, m.Digest, track) {
			// The resulting state is already covered here (duplicate or
			// reordered delta): acknowledge without merging.
			break
		}
		if !r.dominates(from, m.Baseline, track) {
			// Unknown baseline: merging the delta alone could lose the
			// part of the sender's state the baseline carried.
			r.send(from, &message{Type: msgMergeNack, Req: m.Req})
			return
		}
		if err := r.acc.handleMerge(m.State, keep); err != nil {
			r.counters.MalformedMsgs++
			return
		}
		r.version++
		if track {
			// baseline ⊔ delta = the sender's full state: merged here, so
			// its digest is now a recognized baseline for future deltas.
			r.xfer.ring(from).add(m.Digest)
		}
	default:
		r.counters.MalformedMsgs++
		return
	}
	r.send(from, &message{Type: msgMerged, Req: m.Req})
}

// dominates reports whether the local payload provably dominates the state
// with digest d as last shipped by peer from: either that exact state was
// merged here earlier (the per-peer digest ring — payloads only grow, so
// once merged, dominated forever) or the local payload IS that state.
func (r *Replica) dominates(from transport.NodeID, d crdt.Digest, track bool) bool {
	if d.IsZero() {
		return false
	}
	if ring, ok := r.xfer.seen[from]; ok && ring.contains(d) {
		return true
	}
	if own, err := r.xfer.digests.Of(r.acc.state); err == nil && own == d {
		if track {
			r.xfer.ring(from).add(d)
		}
		return true
	}
	return false
}

// onMergeNack is the full-state fallback of digest and delta MERGEs: the
// receiver did not recognize what we assumed it had. Drop the stale view
// and resend the complete payload.
func (r *Replica) onMergeNack(from transport.NodeID, m *message) {
	req, ok := r.updates[m.Req]
	if !ok && r.retired != nil && r.retired.id == m.Req {
		// The update answered its client at quorum with this peer's
		// MERGED outstanding; its payload must still reach the peer, or
		// the cluster would not converge.
		req, ok = r.retired, true
	}
	if !ok || req.acked[from] {
		// Stale or duplicated NACK: in particular, don't drop the view —
		// a duplicate arriving after the fallback's MERGED would wipe the
		// freshly re-established baseline.
		r.counters.StaleMsgs++
		return
	}
	delete(r.xfer.views, from)
	r.counters.MergeFallbacks++
	r.send(from, &message{Type: msgMerge, Req: req.id, State: req.state})
}

func (r *Replica) onPrepare(from transport.NodeID, m *message) {
	reply, round, state, err := r.acc.handlePrepare(m.Round, m.State)
	if err != nil {
		r.counters.MalformedMsgs++
		return
	}
	// The prepare may have merged a seed and adopted a round; bumping on
	// NACKs too overcounts at worst (StateVersion is allowed to).
	r.version++
	if reply == msgAck {
		r.counters.PreparesAccepted++
	} else {
		r.counters.PreparesRejected++
	}
	// Lease is the capability hint (docs/PROTOCOL.md §5): this acceptor
	// understands round leases, so a proposer quorum of hinted replies may
	// install one. Old binaries never set the bit.
	out := &message{Type: reply, Req: m.Req, Attempt: m.Attempt, Round: round, State: state, Lease: true}
	if m.Kind.HasDigest() && state != nil {
		// The PREPARE announced the proposer's payload digest. If the
		// local post-prepare payload matches, the proposer already holds
		// this exact state: answer with the digest alone (the converged
		// fast path that makes a quorum read cost O(digest) bytes).
		if own, derr := r.xfer.digests.Of(state); derr == nil && own == m.Digest {
			out.State, out.Kind, out.Digest = nil, wire.StateDigest, own
			r.counters.DigestReplies++
		}
	}
	r.send(from, out)
}

func (r *Replica) onVote(from transport.NodeID, m *message) {
	digestVerified := false
	if m.Kind == wire.StateDigest {
		// Digest-suppressed leased VOTE: the holder proposes the exact
		// state it believes this acceptor already has. Verify by digest —
		// on a match the merge-before-reply of handleVote is a no-op and
		// voting is a pure round check; on a mismatch deny with the full
		// local state so the proposer gathers it and falls back.
		own, derr := r.xfer.digests.Of(r.acc.state)
		if derr != nil || own != m.Digest {
			r.counters.VotesRejected++
			r.send(from, &message{Type: msgNack, Req: m.Req, Attempt: m.Attempt, Round: r.acc.round, State: r.acc.state, Lease: true})
			return
		}
		digestVerified = true
		m.State = nil
	} else if m.Lease {
		// A leased VOTE skipped the prepare phase, so the round-equality
		// check alone does not prove the proposal covers this acceptor —
		// an incremental PREPARE delivered late can re-mint the leased
		// round (Number = local+1 collides) at an acceptor whose payload
		// moved on. Re-verify the consistent-quorum condition here: vote
		// only if the local payload is covered by the proposal. Any update
		// committed before the read began sits in a quorum of payloads and
		// so forces a denial in every intersecting vote quorum.
		if m.State == nil {
			r.counters.MalformedMsgs++
			return
		}
		le, cerr := r.acc.state.Compare(m.State)
		if cerr != nil {
			r.counters.MalformedMsgs++
			return
		}
		if !le {
			// Merge-before-deny (Lemma 3.4(ii)): the proposer gathers the
			// denial's state, so its fallback retry converges.
			if merged, merr := r.acc.state.Merge(m.State); merr == nil {
				r.acc.state = merged
				r.version++
			}
			r.counters.VotesRejected++
			r.send(from, &message{Type: msgNack, Req: m.Req, Attempt: m.Attempt, Round: r.acc.round, State: r.acc.state, Lease: true})
			return
		}
	}
	reply, round, state, err := r.acc.handleVote(m.Round, m.State)
	if err != nil {
		r.counters.MalformedMsgs++
		return
	}
	r.version++ // the vote's proposed state was merged into the payload
	if reply == msgVoted {
		r.counters.VotesAccepted++
	} else {
		r.counters.VotesRejected++
	}
	out := &message{Type: reply, Req: m.Req, Attempt: m.Attempt, Round: round, State: state, Lease: true}
	if reply == msgNack && digestVerified {
		// Round-mismatch denial of a digest-verified leased VOTE: the
		// payload here IS the proposer's proposal, so the digest alone
		// lets the proposer resolve the denial's state without shipping
		// a full payload back.
		out.State, out.Kind, out.Digest = nil, wire.StateDigest, m.Digest
	}
	r.send(from, out)
}

// --- proposer-side message handling ---

func (r *Replica) onMerged(from transport.NodeID, m *message) {
	req, ok := r.updates[m.Req]
	if !ok {
		if r.retired != nil && r.retired.id == m.Req && !r.retired.acked[from] {
			// A straggler MERGED for an already-answered update: no client
			// to notify, but the peer's view still advances.
			r.retired.acked[from] = true
			r.noteAcked(r.retired, from)
			if len(r.retired.acked) >= len(r.peers) {
				r.retired = nil
			}
			return
		}
		r.counters.StaleMsgs++
		return
	}
	if req.acked[from] {
		return // duplicate
	}
	req.acked[from] = true
	r.noteAcked(req, from)
	req.pending--
	if req.pending <= 0 {
		delete(r.updates, req.id)
		if req.hasDig && len(req.acked) < len(r.peers) {
			r.retired = req
		}
		r.completeUpdate(req)
	}
}

// noteAcked records that the peer durably merged req.state: any
// acknowledged state is a sound delta baseline forever (the peer's
// payload only grows), so it replaces the per-peer view.
func (r *Replica) noteAcked(req *updateReq, from transport.NodeID) {
	if !req.hasDig || !r.isPeer(from) {
		return
	}
	view := &peerView{digest: req.digest}
	if r.opts.Transfer == TransferDelta {
		view.state = req.state
	}
	r.xfer.views[from] = view
}

func (r *Replica) completeUpdate(req *updateReq) {
	r.counters.Updates++
	if req.done != nil {
		req.done(UpdateStats{RoundTrips: 1}, nil)
	}
}

func (r *Replica) onAck(from transport.NodeID, m *message) {
	req, ok := r.queries[m.Req]
	if !ok || m.Attempt != req.attempt || req.phase != phasePrepare {
		r.counters.StaleMsgs++
		return
	}
	if _, dup := req.acks[from]; dup {
		return
	}
	state := m.State
	if m.Kind == wire.StateDigest {
		// Digest-only ACK: the acceptor's state equals the one whose
		// digest our PREPARE announced — resolve it locally.
		if !req.hasPrepared || m.Digest != req.preparedDig {
			r.counters.MalformedMsgs++
			return
		}
		state = req.prepared
	}
	if state == nil {
		r.counters.MalformedMsgs++
		return
	}
	req.acks[from] = ackInfo{round: m.Round, state: state, lease: m.Lease}
	req.gathered = r.mergeGathered(req.gathered, state)
	r.maybeDecidePrepare(req)
}

// maybeDecidePrepare implements lines 11-21: once ACKs from a quorum have
// arrived, either learn by consistent quorum, move to the vote phase, or
// retry with a fixed prepare at a higher round number.
func (r *Replica) maybeDecidePrepare(req *queryReq) {
	if req.phase != phasePrepare || len(req.acks) < r.quorum {
		return
	}
	// One sweep over the quorum: state identity, round agreement, and the
	// lease capability hints. Round agreement is the lease precondition
	// and is NOT automatic even when every ACK answered our own prepare —
	// under incremental prepares each acceptor substitutes its own
	// number+1, so concurrent traffic leaves them disagreeing.
	states := make([]crdt.State, 0, len(req.acks))
	identical := true
	var common Round
	sameRound := true
	allLeased := true
	first := true
	for _, a := range req.acks {
		if len(states) > 0 && a.state != states[0] {
			identical = false
		}
		states = append(states, a.state)
		if first {
			common, first = a.round, false
		} else if a.round != common {
			sameRound = false
		}
		if !a.lease {
			allLeased = false
		}
	}
	if r.opts.Lease && sameRound && allLeased {
		// Whatever this attempt learns, the quorum has confirmed common as
		// the highest round established and every member is lease-capable:
		// the lease is installable once the query completes.
		req.leasable, req.leaseRound = true, common
	}
	if identical {
		// Every ACK resolved to the same state value — the norm under
		// digest transfer, where digest-only ACKs all resolve to the
		// prepared state. Trivially a consistent quorum: skip the O(n)
		// merge-and-compare sweep.
		r.finishQuery(req, states[0], LearnConsistentQuorum)
		return
	}
	lub, err := crdt.MergeAll(states...)
	if err != nil {
		r.counters.MalformedMsgs++
		r.retryQuery(req)
		return
	}

	// (a) Learned by consistent quorum: all ACK states equivalent to ⊔S̆.
	consistent := true
	for _, s := range states {
		eq, eqErr := crdt.Equivalent(s, lub)
		if eqErr != nil || !eq {
			consistent = false
			break
		}
	}
	if consistent {
		r.finishQuery(req, lub, LearnConsistentQuorum)
		return
	}

	// (b) Consistent rounds: propose ⊔S̆ under the common round.
	if sameRound {
		req.phase = phaseVote
		req.proposed = lub
		req.votes = make(map[transport.NodeID]bool, len(r.peers)+1)
		req.denials = make(map[transport.NodeID]bool, len(r.peers))
		req.round = common
		req.rtts++

		// Local acceptor votes synchronously. A local denial means an
		// update already intervened here; per §3.2 retry straight away.
		reply, _, accState, voteErr := r.acc.handleVote(common, lub)
		r.version++
		if voteErr == nil && reply != msgVoted {
			req.gathered = r.mergeGathered(req.gathered, accState)
			r.retryQuery(req)
			return
		}
		if voteErr == nil {
			req.votes[r.id] = true
		}
		r.broadcast(&message{Type: msgVote, Req: req.id, Attempt: req.attempt, Round: common, State: lub})
		r.maybeDecideVote(req)
		return
	}

	// (c) Inconsistent rounds: retry with a fixed prepare at max(R̆)+1
	// (lines 19-21), seeded with the gathered LUB.
	max := common
	for _, a := range req.acks {
		if max.Less(a.round) {
			max = a.round
		}
	}
	r.startAttempt(req, Round{Number: max.Number + 1}, r.prepareSeed(req.gathered))
}

func (r *Replica) onVoted(from transport.NodeID, m *message) {
	req, ok := r.queries[m.Req]
	if !ok || m.Attempt != req.attempt || req.phase != phaseVote {
		r.counters.StaleMsgs++
		return
	}
	req.votes[from] = true
	if !m.Lease {
		req.leasable = false
	}
	if req.leased && req.hasPropDig && r.isPeer(from) {
		// VOTED to a leased VOTE confirms the peer merged the proposal
		// before replying, so the proposal is a sound per-peer baseline —
		// the next leased read or digest/delta MERGE can build on it.
		view := &peerView{digest: req.propDig}
		if r.opts.Transfer == TransferDelta {
			view.state = req.proposed
		}
		r.xfer.views[from] = view
	}
	r.maybeDecideVote(req)
}

func (r *Replica) maybeDecideVote(req *queryReq) {
	if req.phase == phaseVote && len(req.votes) >= r.quorum {
		// Learned by vote: the proposed state is established in a quorum.
		r.finishQuery(req, req.proposed, LearnVote)
	}
}

func (r *Replica) onNack(from transport.NodeID, m *message) {
	req, ok := r.queries[m.Req]
	if !ok || m.Attempt != req.attempt {
		r.counters.StaleMsgs++
		return
	}
	// §3.2 "Retrying Requests": a proposer that receives a NACK before a
	// quorum of ACK or VOTED messages must retry, with an incremental
	// prepare seeded with the LUB of every payload received so far (this
	// is what makes the retry loop converge, §3.5).
	state := m.State
	if m.Kind == wire.StateDigest && req.hasPrepared && m.Digest == req.preparedDig {
		state = req.prepared // digest-only NACK: the acceptor holds our prepared state
	} else if m.Kind == wire.StateDigest && req.hasPropDig && m.Digest == req.propDig {
		state = req.proposed // digest-only NACK to a leased VOTE: it holds our proposal
	}
	if state != req.proposed {
		// The proposal itself is never worth gathering: the local acceptor
		// merged it when it voted, so a retry's learn already covers it.
		req.gathered = r.mergeGathered(req.gathered, state)
	}
	switch req.phase {
	case phasePrepare:
		// A prepare NACK (fixed prepare below the acceptor's round) dooms
		// the phase: retry immediately.
		r.retryQuery(req)
	case phaseVote:
		// A denied vote may still be outvoted: retry only once a quorum of
		// VOTED can no longer arrive from acceptors that have not replied.
		// (A crashed acceptor never replies; the runtime's retransmit
		// timeout covers that case.)
		req.denials[from] = true
		replies := len(req.votes) + len(req.denials)
		outstanding := len(r.peers) + 1 - replies
		if len(req.votes)+outstanding < r.quorum {
			if req.leased {
				r.leaseFallback(req)
			} else {
				r.retryQuery(req)
			}
		}
	}
}

// retryQuery restarts a query with an incremental prepare seeded with the
// LUB of everything seen so far. §3.2: retrying with an incremental prepare
// guarantees eventual liveness; each failed iteration folds at least one
// more acceptor's updates into the seed (§3.5).
func (r *Replica) retryQuery(req *queryReq) {
	r.startAttempt(req, Round{Number: NumberIncremental}, r.prepareSeed(req.gathered))
}

func (r *Replica) finishQuery(req *queryReq, learned crdt.State, path LearnPath) {
	delete(r.queries, req.id)
	r.counters.Queries++
	if path == LearnConsistentQuorum {
		r.counters.ConsistentQuorum++
	} else {
		r.counters.ByVote++
	}

	if req.leased {
		r.counters.LeaseHits++
		// Refresh the lease with the just-learned state so the next leased
		// read's digest matches again — unless it was dropped or replaced
		// while this read was in flight (never resurrect a dropped lease).
		if r.lease != nil && r.lease.round == req.round {
			r.installLease(req.round, learned)
		}
	} else if req.leasable {
		// Install a fresh lease: the attempt proved leaseRound is the
		// highest round established in a quorum with every member
		// lease-capable. Never replace a newer lease with an older round —
		// a concurrent query may have installed one while this attempt's
		// stragglers arrived.
		if r.lease == nil || !req.leaseRound.Less(r.lease.round) {
			r.installLease(req.leaseRound, learned)
		}
	}

	if r.opts.GLAStability {
		// §3.4: remember the largest learned state; return the max. The
		// two are always comparable because the protocol guarantees
		// Consistency (Theorem 3.8).
		le, err := r.learned.Compare(learned)
		switch {
		case err == nil && le:
			r.learned = learned
			r.version++
		case err == nil:
			learned = r.learned
		}
	}

	if req.done != nil {
		req.done(learned, QueryStats{RoundTrips: req.rtts, Attempts: int(req.attempt), Path: path, Leased: req.leased}, nil)
	}
}

// installLease records (or refreshes) the round lease. The digest of the
// leased state is memoized under digest/delta transfer so quiescent
// leased VOTEs can ship no payload.
func (r *Replica) installLease(round Round, state crdt.State) {
	l := &leaseState{round: round, state: state}
	if r.opts.Transfer != TransferFull {
		if d, err := r.xfer.digests.Of(state); err == nil {
			l.digest, l.hasDig = d, true
		}
	}
	r.lease = l
}

// Retransmit re-drives an in-flight request after a runtime timeout,
// covering message loss. Updates re-broadcast MERGE to acceptors that have
// not acknowledged (idempotent: merge is) — always as the full payload,
// since a lost digest or delta frame is indistinguishable from a receiver
// that could not use it. Queries re-send the current attempt's outstanding
// messages: progress already gathered (ACKs, VOTEDs) is kept, the attempt
// is not burned, and no retry is recorded — re-delivery is idempotent at
// the acceptor, and an acceptor that moved on answers NACK, which drives
// the normal retry machinery.
func (r *Replica) Retransmit(reqID uint64) {
	if req, ok := r.updates[reqID]; ok {
		for _, p := range r.peers {
			if !req.acked[p] {
				r.send(p, &message{Type: msgMerge, Req: req.id, State: req.state, Round: req.round, Lease: req.lease})
			}
		}
		return
	}
	if req, ok := r.queries[reqID]; ok {
		r.retransmitQuery(req)
		return
	}
	if r.reconfig != nil && r.reconfig.id == reqID {
		for _, p := range r.reconfig.targets {
			if !r.reconfig.acked[p] {
				r.sendReconfig(p, r.reconfig.id)
			}
		}
	}
}

// retransmitQuery re-sends the in-flight attempt's messages to the peers
// that have not answered it.
func (r *Replica) retransmitQuery(req *queryReq) {
	switch req.phase {
	case phasePrepare:
		m := &message{Type: msgPrepare, Req: req.id, Attempt: req.attempt, Round: req.round, State: req.seed}
		if req.hasPrepared {
			m.Digest = req.preparedDig
			if req.seed == nil {
				m.Kind = wire.StateDigest
			} else {
				m.Kind = wire.StateFullDigest
			}
		}
		for _, p := range r.peers {
			if _, ok := req.acks[p]; !ok {
				r.send(p, m)
			}
		}
	case phaseVote:
		if len(req.denials) > 0 {
			// Vote-grace period (Figure 4): a denied vote waits only for
			// acceptors that may still outvote the denial, but a silently
			// crashed or partitioned acceptor never replies at all — it
			// cannot be distinguished from a slow one except by this
			// timeout. Re-sending the same VOTE cannot help (the denial
			// stands until the round moves), so treat the vote as
			// undecidable and retry through the normal NACK machinery.
			if req.leased {
				r.leaseFallback(req)
			} else {
				r.retryQuery(req)
			}
			return
		}
		// Always the full proposal, never digest-suppressed: a lost leased
		// VOTE is indistinguishable from a receiver that could not verify
		// the digest.
		m := &message{Type: msgVote, Req: req.id, Attempt: req.attempt, Round: req.round, State: req.proposed, Lease: req.leased}
		for _, p := range r.peers {
			if !req.votes[p] && !req.denials[p] {
				r.send(p, m)
			}
		}
	}
}

// RetransmitAll re-drives every in-flight request in request-ID order.
// Deterministic runtimes (the interleaving checker) use it in place of
// per-request timers when the network goes quiescent under loss.
func (r *Replica) RetransmitAll() {
	ids := make([]uint64, 0, len(r.updates)+len(r.queries)+1)
	for id := range r.updates {
		ids = append(ids, id)
	}
	for id := range r.queries {
		ids = append(ids, id)
	}
	if r.reconfig != nil {
		ids = append(ids, r.reconfig.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r.Retransmit(id)
	}
}

// Abort abandons an in-flight request; its completion callback fires with
// ErrAborted. Aborting an unknown (e.g. already completed) request is a
// no-op.
func (r *Replica) Abort(reqID uint64) {
	if req, ok := r.updates[reqID]; ok {
		delete(r.updates, reqID)
		if req.hasDig && len(req.acked) < len(r.peers) {
			// The client gives up, but the payload must still reach every
			// peer: a digest or delta MERGE a peer rejects is answered
			// from the retired slot with the full state (onMergeNack) —
			// without this, an aborted delta-mode update could leave that
			// peer unconverged until unrelated later traffic.
			r.retired = req
		}
		if req.done != nil {
			req.done(UpdateStats{}, ErrAborted)
		}
		return
	}
	if req, ok := r.queries[reqID]; ok {
		delete(r.queries, reqID)
		if req.done != nil {
			req.done(nil, QueryStats{RoundTrips: req.rtts, Attempts: int(req.attempt)}, ErrAborted)
		}
		return
	}
	if r.reconfig != nil && r.reconfig.id == reqID {
		req := r.reconfig
		r.reconfig = nil
		// The adopted config stays — epochs only move forward — but the
		// proposer stops driving the round; anti-entropy (config pushes on
		// epoch mismatch) still spreads it.
		if req.done != nil {
			req.done(ErrAborted)
		}
	}
}
