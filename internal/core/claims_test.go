package core

import (
	"fmt"
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// TestMessageOverheadConstant checks the paper's abstract-level claim that
// "the message size overhead for coordination consists of a single counter
// per message": the encoded size of every protocol message minus its
// payload state must stay (small and) constant as the CRDT grows.
func TestMessageOverheadConstant(t *testing.T) {
	overheadFor := func(slots int) int {
		c := crdt.NewGCounter()
		for i := 0; i < slots; i++ {
			c = c.Inc(fmt.Sprintf("replica-%05d", i), uint64(i+1))
		}
		stateBytes, err := crdt.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		m := &message{
			Type:    msgPrepare,
			Req:     1 << 40,
			Attempt: 3,
			Round:   Round{Number: 1 << 30, ID: RoundID{Proposer: "some-proposer", Seq: 1 << 20}},
			State:   c,
		}
		raw, err := m.encode()
		if err != nil {
			t.Fatal(err)
		}
		return len(raw) - len(stateBytes)
	}

	small := overheadFor(1)
	large := overheadFor(10000)
	// The only size-dependent bytes are the payload's uvarint length
	// prefix (framing, ≤ 9 bytes), not coordination state.
	if large-small > 9 {
		t.Fatalf("coordination overhead grew with the state: %dB at 1 slot vs %dB at 10k slots", small, large)
	}
	if small > 64 {
		t.Fatalf("coordination overhead is %dB, expected a few dozen bytes (a round + ids)", small)
	}
}

// TestEventualLivenessAfterFiniteUpdates exercises §3.5: with a finite
// number of updates, every query eventually learns a state, because each
// failed incremental prepare folds at least one more acceptor's updates
// into the retry seed. We create maximal interference — every acceptor's
// state diverges and rounds are scrambled — then run a query with no
// further updates and require completion without any runtime timer.
func TestEventualLivenessAfterFiniteUpdates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		fabric := transport.NewFabric(seed)
		members := []transport.NodeID{"n1", "n2", "n3", "n4", "n5"}
		reps := make(map[transport.NodeID]*Replica, len(members))
		conns := make(map[transport.NodeID]*transport.FabricConn, len(members))
		flush := func(id transport.NodeID) {
			for _, e := range reps[id].TakeOutbox() {
				conns[id].Send(e.To, e.Payload)
			}
		}
		for _, id := range members {
			rep, err := NewReplica(id, members, crdt.NewGCounter(), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			reps[id] = rep
			id := id
			conns[id] = fabric.Join(id, func(from transport.NodeID, payload []byte) {
				reps[id].Deliver(from, payload)
				flush(id)
			})
		}

		// Interference phase: updates at every node, queries at every node,
		// messages delivered in random order but only partially (half the
		// traffic stalls in the pool to maximize divergence).
		for _, id := range members {
			slot := string(id)
			if _, err := reps[id].SubmitUpdate(func(s crdt.State) (crdt.State, error) {
				return s.(*crdt.GCounter).Inc(slot, 1), nil
			}, nil); err != nil {
				t.Fatal(err)
			}
			reps[id].SubmitQuery(nil)
			flush(id)
		}
		fabric.Run(10) // deliver only a few messages, leaving chaos behind

		// The updates are finite (none from here on). A fresh query must
		// complete purely by message-driven retries during the drain.
		done := false
		reps["n1"].SubmitQuery(func(s crdt.State, stats QueryStats, err error) {
			if err != nil {
				t.Fatalf("seed %d: query failed: %v", seed, err)
			}
			done = true
		})
		flush("n1")
		fabric.Drain(100000)
		if !done {
			t.Fatalf("seed %d: query never learned a state (liveness)", seed)
		}
	}
}

// TestUpdateStabilityOrdering drives Theorem 3.9's scenario directly: u1
// completes, then u2 is submitted; any state that includes u2 must include
// u1. With a G-Counter we verify via slots: no learned state may contain
// u2's slot value without u1's.
func TestUpdateStabilityOrdering(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r2 := nw.reps["n1"], nw.reps["n2"]

	// u1 at n1 completes against quorum {n1, n2}; n3 never hears of it.
	u1Done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(UpdateStats, error) { u1Done = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.deliver(func(e env) bool { return e.typ == msgMerge && e.to == "n2" })
	nw.deliver(ofType(msgMerged))
	if !u1Done {
		t.Fatal("u1 incomplete")
	}
	nw.drop(ofType(msgMerge))

	// u2 at n2 (submitted after u1 completed).
	if _, err := r2.SubmitUpdate(incAt(r2), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	// Every learned state that includes u2 must include u1, at every node.
	for _, rep := range nw.reps {
		var got crdt.State
		rep.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = s
		})
		nw.pump()
		nw.drain()
		c := got.(*crdt.GCounter)
		if c.Slot("n2") > 0 && c.Slot("n1") == 0 {
			t.Fatalf("update stability violated at %s: u2 visible without u1 (%v)", rep.ID(), c)
		}
	}
}
