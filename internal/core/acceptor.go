package core

import (
	"crdtsmr/internal/crdt"
)

// acceptor is the replicated-storage role of Algorithm 2 (lines 25-47).
// Its entire internal state is the CRDT payload plus a single round — the
// paper's "memory overhead of a single counter per replica". It has no log
// and never allocates per-command state.
type acceptor struct {
	state crdt.State
	round Round
}

func newAcceptor(s0 crdt.State) acceptor {
	return acceptor{state: s0, round: initRound()}
}

// applyUpdate executes an update function locally (lines 28-31): the new
// state replaces the payload and the round ID is clobbered with the write
// marker so concurrent VOTE proposals fail their round-equality check.
func (a *acceptor) applyUpdate(fu crdt.Update) (crdt.State, error) {
	s, err := fu(a.state)
	if err != nil {
		return nil, err
	}
	a.state = s
	a.round.ID = writeID
	return s, nil
}

// handleMerge merges a remote update's payload (lines 32-35).
func (a *acceptor) handleMerge(s crdt.State) error {
	merged, err := a.state.Merge(s)
	if err != nil {
		return err
	}
	a.state = merged
	a.round.ID = writeID
	return nil
}

// handlePrepare processes a PREPARE message (lines 36-42). It returns the
// reply to send: an ACK carrying the acceptor's round and payload, or a
// NACK (carrying the same information, per §3.2 "Retrying Requests") when a
// fixed prepare's round number does not exceed the current one.
//
// An incremental prepare (⊥ number) is always accepted: the acceptor
// substitutes its own round number + 1, which is strictly greater (line 39).
// A fixed prepare re-sent with the acceptor's exact current round is
// re-acknowledged idempotently, so proposers can retransmit over lossy
// links without being forced into a retry.
func (a *acceptor) handlePrepare(r Round, s crdt.State) (reply msgType, round Round, state crdt.State, err error) {
	if s != nil {
		merged, mergeErr := a.state.Merge(s)
		if mergeErr != nil {
			return 0, Round{}, nil, mergeErr
		}
		a.state = merged
	}
	if r.Incremental() {
		r = Round{Number: a.round.Number + 1, ID: r.ID}
	}
	switch {
	case a.round.Number < r.Number:
		a.round = r
		return msgAck, a.round, a.state, nil
	case a.round == r:
		// Idempotent retransmit of an already-adopted fixed prepare.
		return msgAck, a.round, a.state, nil
	default:
		return msgNack, a.round, a.state, nil
	}
}

// handleVote processes a VOTE message (lines 43-47). The proposed state is
// merged unconditionally — it only contains states already present in a
// quorum of ACKs (Lemma 3.4(ii) relies on this merge happening before the
// VOTED reply). The vote succeeds only if the acceptor's round still equals
// the proposal's round, i.e. no update or competing prepare intervened.
func (a *acceptor) handleVote(r Round, s crdt.State) (reply msgType, round Round, state crdt.State, err error) {
	if s != nil {
		merged, mergeErr := a.state.Merge(s)
		if mergeErr != nil {
			return 0, Round{}, nil, mergeErr
		}
		a.state = merged
	}
	if r == a.round {
		return msgVoted, a.round, nil, nil
	}
	return msgNack, a.round, a.state, nil
}
