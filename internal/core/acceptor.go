package core

import (
	"crdtsmr/internal/crdt"
)

// acceptor is the replicated-storage role of Algorithm 2 (lines 25-47).
// Its entire internal state is the CRDT payload plus a single round — the
// paper's "memory overhead of a single counter per replica". It has no log
// and never allocates per-command state.
type acceptor struct {
	state crdt.State
	round Round
}

func newAcceptor(s0 crdt.State) acceptor {
	return acceptor{state: s0, round: initRound()}
}

// applyUpdate executes an update function locally (lines 28-31): the new
// state replaces the payload and the round is clobbered per clobberRound,
// so concurrent VOTE proposals fail their round-equality check unless the
// update came from the current lease holder at the preserved round.
func (a *acceptor) applyUpdate(fu crdt.Update, keep Round) (crdt.State, error) {
	s, err := fu(a.state)
	if err != nil {
		return nil, err
	}
	a.state = s
	a.clobberRound(keep)
	return s, nil
}

// handleMerge merges a remote update's payload (lines 32-35).
func (a *acceptor) handleMerge(s crdt.State, keep Round) error {
	merged, err := a.state.Merge(s)
	if err != nil {
		return err
	}
	a.state = merged
	a.clobberRound(keep)
	return nil
}

// clobberRound invalidates in-flight votes after an update mutates the
// payload — unless the update was issued by the holder of a round lease
// at exactly the acceptor's current round (docs/PROTOCOL.md §5), in which
// case the round survives: the holder's own leased reads always propose a
// superset of its updates, and any *other* proposer's committed state
// still forces a NACK because its round differs. keep is only honored
// when it names a real proposer round — the initRound/writeID sentinels
// have an empty Proposer, so a zero keep never accidentally preserves the
// initial round.
func (a *acceptor) clobberRound(keep Round) {
	if keep.ID.Proposer == "" || a.round != keep {
		a.round.ID = writeID
	}
}

// handlePrepare processes a PREPARE message (lines 36-42). It returns the
// reply to send: an ACK carrying the acceptor's round and payload, or a
// NACK (carrying the same information, per §3.2 "Retrying Requests") when a
// fixed prepare's round number does not exceed the current one.
//
// An incremental prepare (⊥ number) is always accepted: the acceptor
// substitutes its own round number + 1, which is strictly greater (line 39).
// A fixed prepare re-sent with the acceptor's exact current round is
// re-acknowledged idempotently, so proposers can retransmit over lossy
// links without being forced into a retry.
func (a *acceptor) handlePrepare(r Round, s crdt.State) (reply msgType, round Round, state crdt.State, err error) {
	if s != nil {
		merged, mergeErr := a.state.Merge(s)
		if mergeErr != nil {
			return 0, Round{}, nil, mergeErr
		}
		a.state = merged
	}
	if r.Incremental() {
		if a.round.ID == r.ID {
			// Duplicate of an incremental prepare already adopted (round
			// IDs are unique per prepare instance): re-ACK the adopted
			// round instead of bumping the number again, so a proposer
			// retransmitting over a lossy link gathers consistent rounds.
			return msgAck, a.round, a.state, nil
		}
		r = Round{Number: a.round.Number + 1, ID: r.ID}
	}
	switch {
	case a.round.Number < r.Number:
		a.round = r
		return msgAck, a.round, a.state, nil
	case a.round == r:
		// Idempotent retransmit of an already-adopted fixed prepare.
		return msgAck, a.round, a.state, nil
	default:
		return msgNack, a.round, a.state, nil
	}
}

// handleVote processes a VOTE message (lines 43-47). The proposed state is
// merged unconditionally — it only contains states already present in a
// quorum of ACKs (Lemma 3.4(ii) relies on this merge happening before the
// VOTED reply). The vote succeeds only if the acceptor's round still equals
// the proposal's round, i.e. no update or competing prepare intervened.
func (a *acceptor) handleVote(r Round, s crdt.State) (reply msgType, round Round, state crdt.State, err error) {
	if s != nil {
		merged, mergeErr := a.state.Merge(s)
		if mergeErr != nil {
			return 0, Round{}, nil, mergeErr
		}
		a.state = merged
	}
	if r == a.round {
		return msgVoted, a.round, nil, nil
	}
	return msgNack, a.round, a.state, nil
}
