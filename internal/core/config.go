package core

import (
	"errors"
	"fmt"
	"sort"

	"crdtsmr/internal/transport"
)

// Config is the versioned membership of one object's replica group. The
// member set is no longer frozen at construction: a reconfiguration round
// (SubmitReconfigure) proposes a new set, commits under a joint quorum —
// a majority of the old members AND a majority of the new — and bumps the
// epoch, after which messages stamped with a stale epoch are answered
// with an EPOCH-NACK instead of being processed (docs/PROTOCOL.md §6).
//
// Configs form a join-semilattice ordered by (Epoch, Source): every
// replica adopts the greatest config it has seen, so divergent proposals
// (two proposers racing the same epoch) converge deterministically even
// before the conflict is reported back to the losing proposer. Source is
// the proposer that minted the epoch; the initial config has an empty
// Source, which every minted config supersedes at equal epoch.
type Config struct {
	Epoch   uint64
	Source  transport.NodeID
	Members []transport.NodeID
}

// Supersedes reports whether c is strictly greater than o in the config
// order: by epoch, then by minting proposer.
func (c Config) Supersedes(o Config) bool {
	if c.Epoch != o.Epoch {
		return c.Epoch > o.Epoch
	}
	return c.Source > o.Source
}

// sameConfig reports whether two configs are the same lattice element.
// Epoch and Source identify a config completely — a proposer mints at
// most one member set per epoch — so the member lists need no comparison.
func sameConfig(a, b Config) bool {
	return a.Epoch == b.Epoch && a.Source == b.Source
}

// contains reports whether id appears in members.
func contains(members []transport.NodeID, id transport.NodeID) bool {
	for _, m := range members {
		if m == id {
			return true
		}
	}
	return false
}

// majority is the quorum size over a member set.
func majority(members []transport.NodeID) int { return len(members)/2 + 1 }

// normalizeMembers validates and canonicalizes a proposed member set:
// non-empty, no duplicates, sorted (so every replica stores and ships the
// same list for the same set).
func normalizeMembers(members []transport.NodeID) ([]transport.NodeID, error) {
	if len(members) == 0 {
		return nil, errors.New("core: empty member set")
	}
	out := make([]transport.NodeID, len(members))
	copy(out, members)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			return nil, fmt.Errorf("core: duplicate member %s", out[i])
		}
	}
	return out, nil
}

// ErrNotMember is returned for commands submitted to a replica that is
// not (or is no longer, after a reconfiguration removed it) a member of
// its group. Clients should refresh their member list and retry against
// a current member.
var ErrNotMember = errors.New("core: replica is not a member of the current configuration")

// ErrReconfigInFlight is returned by SubmitReconfigure while an earlier
// reconfiguration of the same object has not committed yet.
var ErrReconfigInFlight = errors.New("core: reconfiguration already in flight")

// ErrConfigConflict is reported to a reconfiguration's completion callback
// when a competing configuration superseded the proposal before it could
// commit. The object's config has converged to the winner; the caller
// re-reads it and retries if its change is still wanted.
var ErrConfigConflict = errors.New("core: reconfiguration superseded by a competing configuration")

// reconfigReq is the proposer-side state of one reconfiguration round.
type reconfigReq struct {
	id      uint64
	cfg     Config             // the proposed config (epoch = old+1, source = this replica)
	old     []transport.NodeID // the member set the proposal replaces
	targets []transport.NodeID // union(old, new) minus self: everyone who must hear the proposal
	acked   map[transport.NodeID]bool
	done    func(error)
}

// committed reports whether the joint quorum has been reached: a majority
// of the old member set and a majority of the new have both accepted.
func (req *reconfigReq) committed() bool {
	oldAcks, newAcks := 0, 0
	for id, ok := range req.acked {
		if !ok {
			continue
		}
		if contains(req.old, id) {
			oldAcks++
		}
		if contains(req.cfg.Members, id) {
			newAcks++
		}
	}
	return oldAcks >= majority(req.old) && newAcks >= majority(req.cfg.Members)
}
