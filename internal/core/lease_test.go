package core

import (
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/wire"
)

// --- round-lease fast path (docs/PROTOCOL.md §5) ---

// installLeaseAt runs one full quorum read at rep and drains, leaving rep
// holding a round lease.
func installLeaseAt(t *testing.T, nw *net, rep *Replica) {
	t.Helper()
	rep.SubmitQuery(func(_ crdt.State, _ QueryStats, err error) {
		if err != nil {
			t.Fatalf("lease-installing query: %v", err)
		}
	})
	nw.pump()
	nw.drain()
	if !rep.Leased() {
		t.Fatalf("%s holds no lease after a quorum read", rep.ID())
	}
}

func TestLeasedReadSkipsPrepare(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n1 := nw.reps["n1"]
	installLeaseAt(t, nw, n1)

	var got crdt.State
	var stats QueryStats
	n1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("leased query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	if n := len(nw.pool); n != 2 {
		t.Fatalf("leased read broadcast %d messages, want 2 VOTEs", n)
	}
	for _, e := range nw.pool {
		if e.typ != msgVote {
			t.Fatalf("leased read sent %v, want only VOTEs (no PREPARE)", e.typ)
		}
	}
	nw.drain()
	if got == nil {
		t.Fatal("leased query did not complete")
	}
	if !stats.Leased || stats.Attempts != 1 || stats.RoundTrips != 1 || stats.Path != LearnVote {
		t.Fatalf("stats = %+v, want leased vote learn in 1 attempt / 1 RTT", stats)
	}
	c := n1.Counters()
	if c.LeaseHits != 1 || c.LeaseFallbacks != 0 {
		t.Fatalf("counters = hits %d fallbacks %d, want 1/0", c.LeaseHits, c.LeaseFallbacks)
	}
}

// TestLeaseSurvivesHolderUpdate: the holder's own updates preserve the
// leased round at every acceptor (the MERGE carries the keep round), so
// a read-after-own-write still takes the fast path and sees the write.
func TestLeaseSurvivesHolderUpdate(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n1 := nw.reps["n1"]
	installLeaseAt(t, nw, n1)

	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !n1.Leased() {
		t.Fatal("holder's own update dropped its lease")
	}

	var got crdt.State
	var stats QueryStats
	n1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("leased query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.drain()
	if !stats.Leased {
		t.Fatalf("read after own write fell off the fast path: %+v", stats)
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("leased read learned %d, want 1 (own committed update)", v)
	}
}

// TestLeaseStealFallsBack: a quorum read at another proposer moves every
// acceptor's round, so the old holder's next leased read is denied
// locally and falls back to the full two-phase protocol — one retry,
// correct result.
func TestLeaseStealFallsBack(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n1, n2 := nw.reps["n1"], nw.reps["n2"]
	installLeaseAt(t, nw, n1)
	installLeaseAt(t, nw, n2) // steals: every acceptor adopts n2's round

	var stats QueryStats
	n1.SubmitQuery(func(_ crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		stats = st
	})
	nw.pump()
	nw.drain()
	if stats.Leased {
		t.Fatalf("stolen lease still fast-pathed: %+v", stats)
	}
	if stats.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (leased attempt + fallback)", stats.Attempts)
	}
	c := n1.Counters()
	if c.LeaseFallbacks != 1 || c.Retries != 1 {
		t.Fatalf("fallbacks %d retries %d, want 1/1", c.LeaseFallbacks, c.Retries)
	}
}

// TestForeignUpdateDeniesLeasedRead: an update by a non-holder clobbers
// the leased round; the next leased read must fall back and still return
// the committed value.
func TestForeignUpdateDeniesLeasedRead(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n1, n3 := nw.reps["n1"], nw.reps["n3"]
	installLeaseAt(t, nw, n1)

	if _, err := n3.SubmitUpdate(incAt(n3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	var got crdt.State
	var stats QueryStats
	n1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.drain()
	if stats.Leased {
		t.Fatalf("read fast-pathed across a foreign update: %+v", stats)
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("learned %d, want 1 (n3's committed update)", v)
	}
}

// TestLateIncrementalPrepareCannotRevalidateLease is the distilled
// linearizability regression: an incremental PREPARE delivered late can
// re-mint the leased round (Number = local+1 collides) at an acceptor
// whose payload has moved past the lease. The leased VOTE's coverage
// check must deny there, or the read would return a state missing a
// committed update.
func TestLateIncrementalPrepareCannotRevalidateLease(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n1, n3 := nw.reps["n1"], nw.reps["n3"]

	// n1's lease installs from quorum {n1,n2}; its PREPARE to n3 stays in
	// flight.
	n1.SubmitQuery(func(_ crdt.State, _ QueryStats, err error) {
		if err != nil {
			t.Fatalf("install query: %v", err)
		}
	})
	nw.pump()
	nw.deliver(func(e env) bool { return e.typ == msgPrepare && e.to == "n2" })
	nw.deliver(func(e env) bool { return e.typ == msgAck && e.from == "n2" })
	if !n1.Leased() {
		t.Fatal("no lease installed from quorum {n1,n2}")
	}

	// n3's update commits at quorum {n3,n2}; n1 never hears of it.
	if _, err := n3.SubmitUpdate(incAt(n3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.deliver(func(e env) bool { return e.typ == msgMerge && e.to == "n2" })
	nw.deliver(func(e env) bool { return e.typ == msgMerged && e.to == "n3" })
	nw.drop(func(e env) bool { return e.typ == msgMerge && e.to == "n1" })

	// The stale PREPARE finally reaches n3: it re-mints exactly the leased
	// round (its number was still below the lease's).
	nw.deliver(func(e env) bool { return e.typ == msgPrepare && e.to == "n3" })
	nw.drop(func(e env) bool { return e.typ == msgAck })

	// n1's leased read: local vote passes (nothing touched n1), but n3 —
	// despite holding the leased round — knows a committed update the
	// proposal lacks and must deny. The read falls back and returns 1.
	var got crdt.State
	n1.SubmitQuery(func(s crdt.State, _ QueryStats, err error) {
		if err != nil {
			t.Fatalf("leased query: %v", err)
		}
		got = s
	})
	nw.pump()
	nw.drain()
	if got == nil {
		t.Fatal("query did not complete")
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("read returned %d, want 1 — missed a committed update", v)
	}
	if nw.reps["n3"].Counters().VotesRejected == 0 {
		t.Fatal("n3 voted for a proposal that missed its committed update")
	}
}

// TestLeaseDropSignals: ForgetPeer, DropLease, and Restore must all
// relinquish the lease — a restarted or partition-suspecting replica
// re-earns its fast path through a full quorum read.
func TestLeaseDropSignals(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	n1 := nw.reps["n1"]

	installLeaseAt(t, nw, n1)
	n1.ForgetPeer("n2")
	if n1.Leased() {
		t.Fatal("lease survived ForgetPeer")
	}

	installLeaseAt(t, nw, n1)
	n1.DropLease()
	if n1.Leased() {
		t.Fatal("lease survived DropLease")
	}

	installLeaseAt(t, nw, n1)
	if err := n1.Restore(n1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n1.Leased() {
		t.Fatal("lease survived Restore — a restarted replica must re-earn it")
	}
}

// TestLeasedReadDigestSuppressed: under digest transfer a quiescent
// leased read ships no payload — the VOTE carries the proposal's digest
// and the acceptors verify it against their own payloads.
func TestLeasedReadDigestSuppressed(t *testing.T) {
	nw := newNet(t, 3, digestOpts(TransferDigest))
	n1 := nw.reps["n1"]
	if _, err := n1.SubmitUpdate(incAt(n1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	installLeaseAt(t, nw, n1)

	var stats QueryStats
	n1.SubmitQuery(func(_ crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("leased query: %v", err)
		}
		stats = st
	})
	nw.pump()
	for _, k := range nw.kinds(ofType(msgVote)) {
		if k != wire.StateDigest {
			t.Fatalf("leased VOTE kind = %v, want digest-only", k)
		}
	}
	nw.drain()
	if !stats.Leased {
		t.Fatalf("quiescent read fell off the fast path: %+v", stats)
	}
}
