package core

import (
	"errors"
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// addJoiner adds a blank joiner replica (empty config, non-member) to the
// harness, the way a freshly provisioned node waits to be reconfigured in.
func (nw *net) addJoiner(id transport.NodeID, opts Options) *Replica {
	nw.t.Helper()
	rep, err := NewReplicaConfig(id, Config{}, crdt.NewGCounter(), opts)
	if err != nil {
		nw.t.Fatal(err)
	}
	nw.reps[id] = rep
	return rep
}

func members(ids ...string) []transport.NodeID {
	out := make([]transport.NodeID, len(ids))
	for i, id := range ids {
		out[i] = transport.NodeID(id)
	}
	return out
}

func TestReconfigureAddMember(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	r4 := nw.addJoiner("n4", DefaultOptions())

	// Pre-reconfig history the joiner must inherit through the config push.
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	var commitErr error
	committed := false
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3", "n4"), func(err error) {
		commitErr, committed = err, true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	if !committed || commitErr != nil {
		t.Fatalf("reconfiguration: committed=%v err=%v", committed, commitErr)
	}
	for id, rep := range nw.reps {
		cfg := rep.ConfigState()
		if cfg.Epoch != 1 || cfg.Source != "n1" || len(cfg.Members) != 4 {
			t.Fatalf("%s config = %+v, want epoch 1 source n1 with 4 members", id, cfg)
		}
		if !rep.IsMember() {
			t.Fatalf("%s should be a member after the reconfiguration", id)
		}
		if rep.Quorum() != 3 {
			t.Fatalf("%s quorum = %d, want 3 of 4", id, rep.Quorum())
		}
	}
	// The config push bootstrapped the joiner's payload — no log replay.
	if v := counterValue(t, r4.LocalState()); v != 1 {
		t.Fatalf("joiner payload = %d, want 1 (bootstrapped by config push)", v)
	}

	// The grown cluster serves commands with the new quorum.
	done := false
	if _, err := r4.SubmitUpdate(incAt(r4), func(_ UpdateStats, err error) {
		if err != nil {
			t.Fatalf("update on joiner: %v", err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("update on joined member did not complete")
	}
}

func TestReconfigureRemoveMember(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r3 := nw.reps["n1"], nw.reps["n3"]

	var commitErr error
	committed := false
	if _, err := r1.SubmitReconfigure(members("n1", "n2"), func(err error) {
		commitErr, committed = err, true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !committed || commitErr != nil {
		t.Fatalf("reconfiguration: committed=%v err=%v", committed, commitErr)
	}

	if r3.IsMember() {
		t.Fatal("n3 should no longer be a member")
	}
	if _, err := r3.SubmitUpdate(incAt(r3), nil); !errors.Is(err, ErrNotMember) {
		t.Fatalf("update on removed member: err = %v, want ErrNotMember", err)
	}
	var qErr error
	r3.SubmitQuery(func(_ crdt.State, _ QueryStats, err error) { qErr = err })
	if !errors.Is(qErr, ErrNotMember) {
		t.Fatalf("query on removed member: err = %v, want ErrNotMember", qErr)
	}

	// The shrunk pair still serves linearizable reads (quorum 2 of 2).
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	var got uint64
	r1.SubmitQuery(func(s crdt.State, _ QueryStats, err error) {
		if err != nil {
			t.Fatalf("query after shrink: %v", err)
		}
		got = counterValue(t, s)
	})
	nw.pump()
	nw.drain()
	if got != 1 {
		t.Fatalf("read %d after shrink, want 1", got)
	}
}

func TestJoinerRefusesCommandsUntilConfigured(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r4 := nw.addJoiner("n4", DefaultOptions())

	if r4.IsMember() {
		t.Fatal("blank joiner must not be a member")
	}
	if _, err := r4.SubmitUpdate(incAt(r4), nil); !errors.Is(err, ErrNotMember) {
		t.Fatalf("joiner update: err = %v, want ErrNotMember", err)
	}
	var qErr error
	r4.SubmitQuery(func(_ crdt.State, _ QueryStats, err error) { qErr = err })
	if !errors.Is(qErr, ErrNotMember) {
		t.Fatalf("joiner query: err = %v, want ErrNotMember", qErr)
	}
	if _, err := r4.SubmitReconfigure(members("n4"), nil); !errors.Is(err, ErrNotMember) {
		t.Fatalf("joiner reconfigure: err = %v, want ErrNotMember", err)
	}

	if _, err := nw.reps["n1"].SubmitReconfigure(members("n1", "n2", "n3", "n4"), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !r4.IsMember() {
		t.Fatal("joiner should be a member after the committed reconfiguration")
	}
	done := false
	if _, err := r4.SubmitUpdate(incAt(r4), func(_ UpdateStats, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("update after joining did not complete")
	}
}

func TestStaleEpochTrafficIsRefusedAndRepaired(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r3 := nw.reps["n1"], nw.reps["n3"]

	// n3 misses the reconfiguration entirely: drop its RECONFIG.
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3"), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(func(e env) bool { return e.typ == msgReconfig && e.to == "n3" })
	nw.drain()
	if r3.Epoch() != 0 {
		t.Fatalf("n3 epoch = %d, want 0 (missed the reconfig)", r3.Epoch())
	}

	// A stale-epoch update from n3 must not count toward any quorum at the
	// new epoch — it is refused, and the refusal repairs n3's config.
	if _, err := r3.SubmitUpdate(incAt(r3), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	before := r1.Counters().EpochNacks
	nw.drain()
	if r1.Counters().EpochNacks == before {
		t.Fatal("stale-epoch MERGE was not refused")
	}
	if r3.Epoch() != 1 {
		t.Fatalf("n3 epoch = %d after repair, want 1", r3.Epoch())
	}
	// The refused update converges once n3 retransmits at the new epoch.
	r3.RetransmitAll()
	nw.pump()
	nw.drain()
	if v := counterValue(t, r1.LocalState()); v != 1 {
		t.Fatalf("n1 payload = %d, want 1 after the repaired retransmission", v)
	}
}

func TestConcurrentReconfigurationsConverge(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r2 := nw.reps["n1"], nw.reps["n2"]

	var err1, err2 error
	if _, err := r1.SubmitReconfigure(members("n1", "n2"), func(err error) { err1 = err }); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.SubmitReconfigure(members("n2", "n3"), func(err error) { err2 = err }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	// (1, n2) supersedes (1, n1): every replica converges to n2's proposal,
	// n1's is reported as a conflict.
	if !errors.Is(err1, ErrConfigConflict) {
		t.Fatalf("n1's proposal: err = %v, want ErrConfigConflict", err1)
	}
	if err2 != nil {
		t.Fatalf("n2's proposal: err = %v, want commit", err2)
	}
	want := nw.reps["n2"].ConfigState()
	for id, rep := range nw.reps {
		cfg := rep.ConfigState()
		if !sameConfig(cfg, want) {
			t.Fatalf("%s config = %+v, want %+v", id, cfg, want)
		}
	}
	if nw.reps["n1"].IsMember() {
		t.Fatal("n1 should have been removed by the winning proposal")
	}
}

func TestReconfigureRejectsSecondInFlight(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.SubmitReconfigure(members("n1", "n2"), nil); !errors.Is(err, ErrReconfigInFlight) {
		t.Fatalf("second reconfigure: err = %v, want ErrReconfigInFlight", err)
	}
	if _, err := r1.SubmitReconfigure(members("n1", "n1", "n2"), nil); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := r1.SubmitReconfigure(nil, nil); err == nil {
		t.Fatal("empty member set accepted")
	}
}

func TestReconfigureRetransmitCoversLoss(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]

	committed := false
	id, err := r1.SubmitReconfigure(members("n1", "n2", "n3"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		committed = true
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.pump()
	// Lose every proposal; the round must make no progress.
	if n := nw.drop(ofType(msgReconfig)); n != 2 {
		t.Fatalf("dropped %d RECONFIGs, want 2", n)
	}
	nw.drain()
	if committed {
		t.Fatal("committed without any remote ack")
	}
	if !r1.Pending(id) {
		t.Fatal("reconfiguration should still be pending")
	}
	r1.Retransmit(id)
	nw.pump()
	nw.drain()
	if !committed {
		t.Fatal("retransmitted reconfiguration did not commit")
	}
	if r1.Pending(id) {
		t.Fatal("committed reconfiguration still pending")
	}
}

func TestReconfigureAbort(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	var got error
	id, err := r1.SubmitReconfigure(members("n1", "n2", "n3", "n4"), func(err error) { got = err })
	if err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgReconfig))
	r1.Abort(id)
	if !errors.Is(got, ErrAborted) {
		t.Fatalf("aborted reconfiguration: err = %v, want ErrAborted", got)
	}
	// The minted epoch stays adopted — epochs never roll back.
	if r1.Epoch() != 1 {
		t.Fatalf("epoch = %d after abort, want 1", r1.Epoch())
	}
}

func TestInFlightQueryRestartsAcrossReconfiguration(t *testing.T) {
	opts := DefaultOptions()
	opts.Lease = false
	nw := newNet(t, 3, opts)
	r1 := nw.reps["n1"]

	var stats QueryStats
	done := false
	r1.SubmitQuery(func(_ crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		stats, done = st, true
	})
	nw.pump()
	// Lose every PREPARE: the query is stuck mid-prepare when the member
	// set changes under it.
	nw.drop(ofType(msgPrepare))
	if done {
		t.Fatal("query completed with its PREPAREs dropped")
	}
	if _, err := r1.SubmitReconfigure(members("n1", "n2"), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	// The restarted PREPARE may race ahead of the RECONFIG to the peer and
	// be refused at the old epoch; the runtime's retransmit timer covers
	// that, modeled here by one retransmission sweep.
	if !done {
		r1.RetransmitAll()
		nw.pump()
		nw.drain()
	}
	if !done {
		t.Fatal("query did not complete after restarting under the new config")
	}
	if stats.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (restart counted as a retry)", stats.Attempts)
	}
}

func TestInFlightUpdateCompletesUnderShrunkQuorum(t *testing.T) {
	nw := newNet(t, 5, DefaultOptions())
	r1 := nw.reps["n1"]

	done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(_ UpdateStats, err error) {
		if err != nil {
			t.Fatalf("update: %v", err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	// Deliver one MERGE+MERGED (n2): 2 of 5 merged — short of quorum 3.
	nw.deliver(func(e env) bool { return e.to == "n2" && e.typ == msgMerge })
	nw.deliver(func(e env) bool { return e.from == "n2" && e.typ == msgMerged })
	if done {
		t.Fatal("update completed below quorum")
	}
	nw.drop(ofType(msgMerge))
	// Shrinking to {n1, n2, n3} drops the quorum to 2: the acks already
	// gathered (self + n2) now suffice and the update completes at adoption.
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3"), nil); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("update did not complete when the new quorum was already met")
	}
	nw.pump()
	nw.drain()
}

func TestSnapshotCarriesConfig(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3", "n4"), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	snap := r1.Snapshot()
	if snap.Config.Epoch != 1 || len(snap.Config.Members) != 4 {
		t.Fatalf("snapshot config = %+v, want epoch 1 with 4 members", snap.Config)
	}

	// A restart constructed at the boot-time (epoch 0) membership adopts
	// the snapshot's newer config.
	fresh, err := NewReplica("n1", members("n1", "n2", "n3"), crdt.NewGCounter(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	cfg := fresh.ConfigState()
	if cfg.Epoch != 1 || cfg.Source != "n1" || len(cfg.Members) != 4 {
		t.Fatalf("restored config = %+v, want the snapshot's", cfg)
	}
	if fresh.Quorum() != 3 {
		t.Fatalf("restored quorum = %d, want 3 of 4", fresh.Quorum())
	}

	// The reverse never regresses: restoring an old (epoch 0) snapshot onto
	// a replica already at epoch 1 keeps the newer config.
	old := Snapshot{State: crdt.NewGCounter(), Config: Config{Members: members("n1", "n2", "n3")}}
	if err := fresh.Restore(old); err != nil {
		t.Fatal(err)
	}
	if fresh.Epoch() != 1 {
		t.Fatalf("epoch = %d after restoring an old snapshot, want 1", fresh.Epoch())
	}
}

func TestEpochNackRepairsBothDirections(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r2 := nw.reps["n1"], nw.reps["n2"]

	// Partition n2 away from the reconfiguration.
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3"), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(func(e env) bool { return e.to == "n2" })
	nw.drain()
	if r2.Epoch() != 0 {
		t.Fatalf("n2 epoch = %d, want 0", r2.Epoch())
	}

	// Ahead-of-us direction: n1 (epoch 1) receives n2's stale MERGE and
	// pushes its config; behind-us direction: n2 (epoch 0) receives n1's
	// newer-epoch PREPARE and answers EPOCH-NACK, prompting the same push.
	if _, err := r2.SubmitUpdate(incAt(r2), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if r2.Epoch() != 1 {
		t.Fatalf("n2 epoch = %d after anti-entropy, want 1", r2.Epoch())
	}
	for _, rep := range nw.reps {
		if !sameConfig(rep.ConfigState(), r1.ConfigState()) {
			t.Fatalf("configs did not converge: %s has %+v", rep.ID(), rep.ConfigState())
		}
	}
}

func TestReconfigureSingleReplicaGrowth(t *testing.T) {
	// A 1-node group growing to 3 is the bootstrap path of a fresh cluster.
	nw := &net{t: t, reps: make(map[transport.NodeID]*Replica)}
	r1, err := NewReplica("n1", members("n1"), crdt.NewGCounter(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nw.reps["n1"] = r1
	nw.addJoiner("n2", DefaultOptions())
	nw.addJoiner("n3", DefaultOptions())

	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	committed := false
	if _, err := r1.SubmitReconfigure(members("n1", "n2", "n3"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		committed = true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !committed {
		t.Fatal("growth from a single replica did not commit")
	}
	for id, rep := range nw.reps {
		if rep.Quorum() != 2 {
			t.Fatalf("%s quorum = %d, want 2 of 3", id, rep.Quorum())
		}
		if v := counterValue(t, rep.LocalState()); v != 1 {
			t.Fatalf("%s payload = %d, want 1", id, v)
		}
	}
}
