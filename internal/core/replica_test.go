package core

import (
	"errors"
	"fmt"
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// --- manual harness: exact control over message delivery order ---

type env struct {
	from, to transport.NodeID
	typ      msgType
	payload  []byte
}

// net wires replicas together with an explicit message pool so tests can
// deliver messages in any order, drop them, or inspect them.
type net struct {
	t    *testing.T
	reps map[transport.NodeID]*Replica
	pool []env
}

func newNet(t *testing.T, n int, opts Options) *net {
	t.Helper()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nw := &net{t: t, reps: make(map[transport.NodeID]*Replica, n)}
	for _, id := range members {
		rep, err := NewReplica(id, members, crdt.NewGCounter(), opts)
		if err != nil {
			t.Fatal(err)
		}
		nw.reps[id] = rep
	}
	return nw
}

// pump drains every replica's outbox into the pool.
func (nw *net) pump() {
	for _, rep := range nw.reps {
		for _, e := range rep.TakeOutbox() {
			m, err := decodeMessage(e.Payload)
			if err != nil {
				nw.t.Fatalf("undecodable outbound message: %v", err)
			}
			nw.pool = append(nw.pool, env{from: rep.ID(), to: e.To, typ: m.Type, payload: e.Payload})
		}
	}
}

// deliver delivers (and removes) every pooled message matching the filter,
// in pool order, pumping newly produced messages afterwards. It returns how
// many messages it delivered.
func (nw *net) deliver(match func(env) bool) int {
	delivered := 0
	for i := 0; i < len(nw.pool); {
		e := nw.pool[i]
		if !match(e) {
			i++
			continue
		}
		nw.pool = append(nw.pool[:i], nw.pool[i+1:]...)
		if rep, ok := nw.reps[e.to]; ok {
			rep.Deliver(e.from, e.payload)
			nw.pump()
		}
		delivered++
	}
	return delivered
}

// drain delivers every message until the pool is empty.
func (nw *net) drain() {
	for len(nw.pool) > 0 {
		nw.deliver(func(env) bool { return true })
	}
}

// drop removes matching messages from the pool without delivering them.
func (nw *net) drop(match func(env) bool) int {
	dropped := 0
	for i := 0; i < len(nw.pool); {
		if match(nw.pool[i]) {
			nw.pool = append(nw.pool[:i], nw.pool[i+1:]...)
			dropped++
			continue
		}
		i++
	}
	return dropped
}

func toNode(id transport.NodeID) func(env) bool {
	return func(e env) bool { return e.to == id }
}

func ofType(t msgType) func(env) bool {
	return func(e env) bool { return e.typ == t }
}

func incAt(rep *Replica) crdt.Update {
	id := string(rep.ID())
	return func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(id, 1), nil
	}
}

func counterValue(t *testing.T, s crdt.State) uint64 {
	t.Helper()
	c, ok := s.(*crdt.GCounter)
	if !ok {
		t.Fatalf("state is %T, want *crdt.GCounter", s)
	}
	return c.Value()
}

// --- update path ---

func TestUpdateSingleRoundTrip(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]

	var gotStats UpdateStats
	done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(st UpdateStats, err error) {
		if err != nil {
			t.Fatalf("update failed: %v", err)
		}
		gotStats, done = st, true
	}); err != nil {
		t.Fatal(err)
	}
	nw.pump()

	// The update applied locally before any message was delivered.
	if v := counterValue(t, r1.LocalState()); v != 1 {
		t.Fatalf("local value = %d, want 1", v)
	}
	// Two MERGE messages go out; one MERGED back suffices (quorum 2 incl. self).
	if n := nw.deliver(toNode("n2")); n != 1 {
		t.Fatalf("delivered %d MERGEs to n2, want 1", n)
	}
	if done {
		t.Fatal("update completed before any MERGED arrived")
	}
	if n := nw.deliver(func(e env) bool { return e.typ == msgMerged }); n != 1 {
		t.Fatalf("delivered %d MERGED, want 1", n)
	}
	if !done {
		t.Fatal("update not complete after quorum")
	}
	if gotStats.RoundTrips != 1 {
		t.Fatalf("round trips = %d, want 1", gotStats.RoundTrips)
	}
	// n3 eventually receives its MERGE too.
	nw.drain()
	if v := counterValue(t, nw.reps["n3"].LocalState()); v != 1 {
		t.Fatalf("n3 value = %d, want 1", v)
	}
}

func TestUpdateSingleReplicaCompletesImmediately(t *testing.T) {
	nw := newNet(t, 1, DefaultOptions())
	r1 := nw.reps["n1"]
	done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(st UpdateStats, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("single-replica update should complete synchronously")
	}
}

func TestUpdateFunctionErrorPropagates(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	boom := errors.New("boom")
	called := false
	_, err := r1.SubmitUpdate(func(crdt.State) (crdt.State, error) { return nil, boom }, func(UpdateStats, error) {
		called = true
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if called {
		t.Fatal("done must not fire for a failed update function")
	}
}

func TestUpdateDuplicateMergedCountsOnce(t *testing.T) {
	nw := newNet(t, 5, DefaultOptions()) // quorum 3: needs 2 remote MERGED
	r1 := nw.reps["n1"]
	done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(st UpdateStats, err error) { done = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.deliver(toNode("n2"))
	// Deliver n2's MERGED twice (network duplication).
	var merged env
	for _, e := range nw.pool {
		if e.typ == msgMerged {
			merged = e
		}
	}
	nw.deliver(ofType(msgMerged))
	if done {
		t.Fatal("one remote MERGED should not complete a quorum-3 update")
	}
	r1.Deliver(merged.from, merged.payload) // duplicate
	if done {
		t.Fatal("duplicate MERGED must not double-count")
	}
	nw.drain()
	if !done {
		t.Fatal("update did not complete")
	}
}

// --- query fast path ---

func TestQueryConsistentQuorumOneRoundTrip(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]

	// Settle an update everywhere first.
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()

	var got crdt.State
	var stats QueryStats
	r1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	nw.drain()

	if got == nil {
		t.Fatal("query did not complete")
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("learned value = %d, want 1", v)
	}
	if stats.Path != LearnConsistentQuorum {
		t.Fatalf("path = %v, want consistent quorum", stats.Path)
	}
	if stats.RoundTrips != 1 || stats.Attempts != 1 {
		t.Fatalf("stats = %+v, want 1 RTT / 1 attempt", stats)
	}
}

// --- query vote path ---

func TestQueryLearnsByVoteWhenStatesDiverge(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r2 := nw.reps["n1"], nw.reps["n2"]

	// An update at n1 whose MERGEs never arrive: n1 holds value 1, the
	// others hold 0.
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	var got crdt.State
	var stats QueryStats
	r2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()

	// Deliver n1's ACK first so the deciding quorum is {n2 (self), n1}
	// with states {0, 1}: inconsistent states, consistent rounds → vote.
	if n := nw.deliver(toNode("n1")); n != 1 {
		t.Fatalf("delivered %d PREPAREs to n1, want 1", n)
	}
	if n := nw.deliver(func(e env) bool { return e.typ == msgAck && e.from == "n1" }); n != 1 {
		t.Fatalf("delivered %d ACKs from n1, want 1", n)
	}
	if got != nil {
		t.Fatal("query decided before vote phase")
	}
	nw.drain()

	if got == nil {
		t.Fatal("query did not complete")
	}
	if stats.Path != LearnVote {
		t.Fatalf("path = %v, want vote", stats.Path)
	}
	if stats.RoundTrips != 2 || stats.Attempts != 1 {
		t.Fatalf("stats = %+v, want 2 RTTs / 1 attempt", stats)
	}
	// The learned state includes the partially merged update.
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("learned value = %d, want 1", v)
	}
	// Update Visibility consequence: the vote pushed the state into a
	// quorum; n2 now stores it.
	if v := counterValue(t, r2.LocalState()); v != 1 {
		t.Fatalf("n2 local value after vote = %d, want 1", v)
	}
}

func TestQueryVoteDeniedByInterveningUpdateRetries(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r2 := nw.reps["n1"], nw.reps["n2"]

	// Diverge states: update at n1, MERGEs dropped.
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	var got crdt.State
	var stats QueryStats
	r2.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	// Reach the vote phase via n1's ACK (as in the previous test), but let
	// n3 adopt the round too so its VOTE denial is meaningful.
	nw.deliver(ofType(msgPrepare))
	nw.deliver(func(e env) bool { return e.typ == msgAck && e.from == "n1" })

	// Before the VOTEs arrive, updates land on both remote acceptors:
	// their round IDs become the write marker and the votes must be denied
	// (line 45). With a quorum of denials the proposer retries.
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.reps["n3"].SubmitUpdate(incAt(nw.reps["n3"]), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	nw.drain()
	if got == nil {
		t.Fatal("query did not complete")
	}
	if stats.Attempts < 2 {
		t.Fatalf("attempts = %d, want a retry", stats.Attempts)
	}
	// The retry's prepare seed folds in the NACK payloads (§3.5), so the
	// learned state includes between one and all three submitted updates.
	if v := counterValue(t, got); v < 1 || v > 3 {
		t.Fatalf("learned value = %d, want 1..3", v)
	}
	if nw.reps["n2"].Counters().Retries == 0 {
		t.Fatal("expected a retry counter tick")
	}
}

func TestQueryInconsistentRoundsTriggersFixedPrepare(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1, r2, r3 := nw.reps["n1"], nw.reps["n2"], nw.reps["n3"]

	// Raise n1's round number to 1 via a query at n2 whose PREPARE reaches
	// only n1 (the query itself stays in flight).
	r2.SubmitQuery(nil)
	nw.pump()
	nw.deliver(func(e env) bool { return e.typ == msgPrepare && e.to == "n1" })
	nw.drop(func(env) bool { return true })

	// Diverge n1's state with a local update (keeps round number 1).
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(ofType(msgMerge))

	// A query at n3 now sees: self ACK with round (1, n3#x) and state s0,
	// n1's ACK with round (2, n3#x) and the updated state — inconsistent
	// states AND inconsistent rounds, so neither fast path applies and the
	// proposer must retry with a fixed prepare at max+1 (lines 19-21).
	var stats QueryStats
	var got crdt.State
	r3.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		got, stats = s, st
	})
	nw.pump()
	if n := nw.deliver(func(e env) bool { return e.to == "n1" && e.typ == msgPrepare }); n != 1 {
		t.Fatalf("delivered %d PREPAREs to n1, want 1", n)
	}
	if n := nw.deliver(func(e env) bool { return e.typ == msgAck && e.from == "n1" }); n != 1 {
		t.Fatalf("delivered %d ACKs from n1, want 1", n)
	}
	nw.drain()

	if got == nil {
		t.Fatal("query did not complete")
	}
	if stats.Attempts < 2 {
		t.Fatalf("attempts = %d, want ≥ 2", stats.Attempts)
	}
	if r3.Counters().FixedPrepare == 0 {
		t.Fatal("expected a fixed prepare retry")
	}
	// The learned state includes n1's update, gathered during the retry.
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("learned value = %d, want 1", v)
	}
}

// --- linearizability conditions (manual schedules) ---

func TestUpdateVisibility(t *testing.T) {
	// Theorem 3.10: if update u completes before query q is submitted, q's
	// learned state includes u.
	nw := newNet(t, 3, DefaultOptions())
	r1, r3 := nw.reps["n1"], nw.reps["n3"]

	updateDone := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(UpdateStats, error) { updateDone = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	// Deliver the MERGE only to n2 — quorum {n1, n2} completes the update
	// while n3 has never heard of it.
	nw.deliver(func(e env) bool { return e.typ == msgMerge && e.to == "n2" })
	nw.deliver(ofType(msgMerged))
	if !updateDone {
		t.Fatal("update should be complete with quorum {n1,n2}")
	}
	nw.drop(ofType(msgMerge)) // n3's copy is lost

	var got crdt.State
	r3.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = s
	})
	nw.pump()
	nw.drain()
	if got == nil {
		t.Fatal("query did not complete")
	}
	if v := counterValue(t, got); v != 1 {
		t.Fatalf("query at n3 learned %d, want 1 (update visibility)", v)
	}
}

func TestStabilitySequentialQueries(t *testing.T) {
	// Theorem 3.5: states learned by subsequent queries grow monotonically,
	// across different proposers.
	nw := newNet(t, 3, DefaultOptions())
	r1, r2, r3 := nw.reps["n1"], nw.reps["n2"], nw.reps["n3"]

	var learned []crdt.State
	runQuery := func(rep *Replica) {
		done := false
		rep.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
			if err != nil {
				t.Fatal(err)
			}
			learned = append(learned, s)
			done = true
		})
		nw.pump()
		nw.drain()
		if !done {
			t.Fatal("query did not complete")
		}
	}

	for i := 0; i < 3; i++ {
		if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
			t.Fatal(err)
		}
		nw.pump()
		nw.drop(func(e env) bool { return e.typ == msgMerge && e.to == "n3" }) // keep n3 stale
		nw.drain()
		runQuery(r2)
		runQuery(r3)
		runQuery(r1)
	}
	for i := 1; i < len(learned); i++ {
		le, err := learned[i-1].Compare(learned[i])
		if err != nil || !le {
			t.Fatalf("stability violated between query %d and %d: %v !⊑ %v", i-1, i, learned[i-1], learned[i])
		}
	}
}

func TestGLAStabilityMonotoneAtProcess(t *testing.T) {
	// §3.4: with GLA-Stability, states learned at the same process increase
	// monotonically even when replies for concurrent queries arrive out of
	// order. Two concurrent queries at n1; the one started later completes
	// first with a larger state; the earlier one must still return
	// something at least as large.
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]

	var first, second crdt.State
	r1.SubmitQuery(func(s crdt.State, st QueryStats, err error) { first = s })
	nw.pump()
	q1Msgs := make([]env, len(nw.pool))
	copy(q1Msgs, nw.pool)
	nw.pool = nil // stall q1's PREPAREs

	// An update raises the state, then q2 completes fully.
	if _, err := r1.SubmitUpdate(incAt(r1), nil); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	r1.SubmitQuery(func(s crdt.State, st QueryStats, err error) { second = s })
	nw.pump()
	nw.drain()
	if second == nil {
		t.Fatal("q2 did not complete")
	}
	if v := counterValue(t, second); v != 1 {
		t.Fatalf("q2 learned %d, want 1", v)
	}

	// Now q1's stale messages flow; without §3.4 it could learn 0.
	nw.pool = q1Msgs
	nw.drain()
	if first == nil {
		t.Fatal("q1 did not complete")
	}
	if v := counterValue(t, first); v < 1 {
		t.Fatalf("q1 learned %d after q2 learned 1: GLA-Stability violated", v)
	}
}

// --- retransmission, aborts, failures ---

func TestRetransmitUpdateAfterLoss(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	done := false
	id, err := r1.SubmitUpdate(incAt(r1), func(UpdateStats, error) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(func(env) bool { return true }) // all MERGEs lost
	if done {
		t.Fatal("update completed with no acks")
	}
	r1.Retransmit(id)
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("retransmit did not complete the update")
	}
	// Retransmit of a completed request is a no-op.
	r1.Retransmit(id)
	nw.pump()
	if len(nw.pool) != 0 {
		t.Fatal("retransmit of completed request produced messages")
	}
}

func TestRetransmitQueryAfterLoss(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	var got crdt.State
	id := r1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = s
	})
	nw.pump()
	nw.drop(func(env) bool { return true }) // all PREPAREs lost
	r1.Retransmit(id)
	nw.pump()
	nw.drain()
	if got == nil {
		t.Fatal("query did not complete after retransmit")
	}
}

func TestAbortQuery(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	var gotErr error
	id := r1.SubmitQuery(func(s crdt.State, st QueryStats, err error) { gotErr = err })
	nw.pump()
	r1.Abort(id)
	if !errors.Is(gotErr, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", gotErr)
	}
	if r1.InFlight() != 0 {
		t.Fatal("aborted request still in flight")
	}
	// Late replies to the aborted request are discarded as stale.
	before := r1.Counters().StaleMsgs
	nw.drain()
	if r1.Counters().StaleMsgs == before {
		t.Fatal("late replies not counted as stale")
	}
}

func TestAbortUpdate(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	var gotErr error
	id, err := r1.SubmitUpdate(incAt(r1), func(st UpdateStats, e error) { gotErr = e })
	if err != nil {
		t.Fatal(err)
	}
	r1.Abort(id)
	if !errors.Is(gotErr, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", gotErr)
	}
	r1.Abort(9999) // unknown: no-op
}

func TestQuerySurvivesMinorityCrash(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	// n3 is dead: drop everything addressed to it.
	var got crdt.State
	r1.SubmitQuery(func(s crdt.State, st QueryStats, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = s
	})
	nw.pump()
	nw.drop(toNode("n3"))
	nw.drain()
	if got == nil {
		t.Fatal("query did not survive minority crash")
	}
}

func TestUpdateSurvivesMinorityCrash(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(UpdateStats, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drop(toNode("n3"))
	nw.drain()
	if !done {
		t.Fatal("update did not survive minority crash")
	}
}

// --- constructor validation ---

func TestNewReplicaValidation(t *testing.T) {
	members := []transport.NodeID{"a", "b", "c"}
	if _, err := NewReplica("zz", members, crdt.NewGCounter(), DefaultOptions()); err == nil {
		t.Fatal("id outside member list should fail")
	}
	if _, err := NewReplica("a", members, nil, DefaultOptions()); err == nil {
		t.Fatal("nil initial state should fail")
	}
	r, err := NewReplica("a", members, crdt.NewGCounter(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Quorum() != 2 {
		t.Fatalf("quorum = %d, want 2", r.Quorum())
	}
	if r.ID() != "a" {
		t.Fatalf("id = %s", r.ID())
	}
}

func TestReplicaIgnoresGarbageMessages(t *testing.T) {
	nw := newNet(t, 3, DefaultOptions())
	r1 := nw.reps["n1"]
	r1.Deliver("n2", []byte{0x00})
	r1.Deliver("n2", nil)
	r1.Deliver("n2", []byte{0xff, 0x01, 0x02})
	if r1.Counters().MalformedMsgs == 0 {
		t.Fatal("garbage not counted")
	}
	// Replica still works afterwards.
	done := false
	if _, err := r1.SubmitUpdate(incAt(r1), func(UpdateStats, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("replica wedged after garbage")
	}
}
