package shootout

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"crdtsmr/internal/transport"
)

// settleTime is the virtual warmup before any measurement: long enough
// for the log-based protocols to elect (≈2·ElectionTimeout plus a round
// trip) and for the Paxos lease to validate off heartbeats.
const settleTime = 400 * time.Millisecond

// virtualCap aborts a run whose backend stopped making progress.
const virtualCap = 5 * time.Minute

// SessionStats is the hot-key read-after-write figure for one backend.
type SessionStats struct {
	// PerReplica holds the session p50 with the client pinned at each
	// replica in turn (fresh same-seed run per pin, so the leader lands on
	// the same node every time and the pin sweeps leader and followers).
	PerReplica []time.Duration
	// Median across replicas: the latency a client at a random replica
	// sees. Log-based protocols pay forwarding at followers; the leaderless
	// protocol serves every replica alike. This is the guarded metric.
	Median time.Duration
	// Errors counts sessions that completed with a failed op (excluded
	// from the samples).
	Errors int
}

// ReadAfterWrite runs the paper's hot-key session at every pin: fire an
// increment, read the same key 100µs later (virtual), wait for both;
// repeat. The first warmup sessions are discarded.
func ReadAfterWrite(spec Spec, n int, net Net, seed int64, sessions, warmup int) (SessionStats, error) {
	out := SessionStats{PerReplica: make([]time.Duration, n)}
	for pin := 0; pin < n; pin++ {
		p50, errs, err := sessionRun(spec, n, net, seed, pin, sessions, warmup)
		if err != nil {
			return SessionStats{}, fmt.Errorf("%s pin %d: %w", spec.Name, pin, err)
		}
		out.PerReplica[pin] = p50
		out.Errors += errs
	}
	sorted := append([]time.Duration(nil), out.PerReplica...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out.Median = sorted[len(sorted)/2]
	return out, nil
}

func sessionRun(spec Spec, n int, net Net, seed int64, pin, sessions, warmup int) (time.Duration, int, error) {
	sim := NewSim(seed, net)
	backend, err := spec.New(sim, n)
	if err != nil {
		return 0, 0, err
	}
	const key = "c-hot"
	// Settle: elections, then one priming read at the pin so per-key state
	// and leases exist before measurement.
	sim.RunUntil(settleTime)
	primed := false
	backend.Read(pin, key, func(int64, error) { primed = true })
	if !sim.RunUntilDone(virtualCap, func() bool { return primed }) {
		return 0, 0, fmt.Errorf("priming read never completed")
	}

	var samples []time.Duration
	errs, completed := 0, 0
	var start func()
	start = func() {
		if completed >= sessions {
			return
		}
		idx := completed
		t0 := sim.Now()
		incDone, readDone, failed := false, false, false
		finish := func() {
			if !incDone || !readDone {
				return
			}
			completed++
			if failed {
				errs++
			} else if idx >= warmup {
				samples = append(samples, sim.Now()-t0)
			}
			start()
		}
		backend.Inc(pin, key, func(err error) {
			if err != nil {
				failed = true
			}
			incDone = true
			finish()
		})
		// The read trails the write by a virtual beat so it snapshots a
		// state with the increment in flight — the read-after-write race.
		sim.After(100*time.Microsecond, func() {
			backend.Read(pin, key, func(_ int64, err error) {
				if err != nil {
					failed = true
				}
				readDone = true
				finish()
			})
		})
	}
	start()
	if !sim.RunUntilDone(virtualCap, func() bool { return completed >= sessions }) {
		return 0, 0, fmt.Errorf("stalled after %d/%d sessions", completed, sessions)
	}
	if len(samples) == 0 {
		return 0, 0, fmt.Errorf("no successful sessions (%d errors)", errs)
	}
	return percentile(samples, 50), errs, nil
}

// MixedStats is the shared keyed-workload figure for one backend.
type MixedStats struct {
	Throughput   float64 // completed ops per virtual second
	ReadP50      time.Duration
	ReadP99      time.Duration
	UpdateP50    time.Duration
	UpdateP99    time.Duration
	BytesPerOp   float64 // replica-wire payload bytes per completed op
	MaxLinkShare float64 // busiest directed link's share of wire bytes
	Completed    int
	Failed       int
}

// MixedWorkload races one backend on the shared keyed workload: clients
// pinned round-robin over replicas, each running a closed loop of ops
// against a small keyspace of counters and or-sets, readFrac of them
// reads. Latencies, throughput, and wire bytes are all virtual-time and
// byte-counter based — deterministic for a given seed.
func MixedWorkload(spec Spec, n int, net Net, seed int64, clients, keys, ops int, readFrac float64) (MixedStats, error) {
	sim := NewSim(seed, net)
	backend, err := spec.New(sim, n)
	if err != nil {
		return MixedStats{}, err
	}
	sim.RunUntil(settleTime)
	primed := 0
	for r := 0; r < n; r++ {
		backend.Read(r, "c0", func(int64, error) { primed++ })
	}
	if !sim.RunUntilDone(virtualCap, func() bool { return primed == n }) {
		return MixedStats{}, fmt.Errorf("%s: priming reads stalled", spec.Name)
	}

	base := sim.Fab.Stats()
	t0 := sim.Now()
	var reads, updates []time.Duration
	completed, failed, done := 0, 0, 0
	perClient := (ops + clients - 1) / clients
	for c := 0; c < clients; c++ {
		c := c
		rng := rand.New(rand.NewSource(seed + int64(c)*7919))
		replica := c % n
		issued := 0
		var next func()
		next = func() {
			if issued >= perClient {
				done++
				return
			}
			issued++
			t1 := sim.Now()
			isRead := rng.Float64() < readFrac
			isSet := rng.Intn(4) == 0 // 25% of traffic on or-sets
			j := rng.Intn(keys)
			settle := func(err error, lat *[]time.Duration) {
				if err != nil {
					failed++
				} else {
					completed++
					*lat = append(*lat, sim.Now()-t1)
				}
				next()
			}
			switch {
			case isRead && !isSet:
				backend.Read(replica, fmt.Sprintf("c%d", j), func(_ int64, err error) { settle(err, &reads) })
			case isRead && isSet:
				backend.Card(replica, fmt.Sprintf("s%d", j), func(_ int64, err error) { settle(err, &reads) })
			case !isRead && !isSet:
				backend.Inc(replica, fmt.Sprintf("c%d", j), func(err error) { settle(err, &updates) })
			default:
				elem := fmt.Sprintf("e%d", rng.Intn(64))
				backend.AddElem(replica, fmt.Sprintf("s%d", j), elem, func(err error) { settle(err, &updates) })
			}
		}
		next()
	}
	if !sim.RunUntilDone(virtualCap, func() bool { return done == clients }) {
		return MixedStats{}, fmt.Errorf("%s: workload stalled (%d/%d clients done)", spec.Name, done, clients)
	}
	elapsed := sim.Now() - t0
	if elapsed <= 0 || completed == 0 {
		return MixedStats{}, fmt.Errorf("%s: empty measurement window", spec.Name)
	}
	stats := sim.Fab.Stats()
	bytesDelta := float64(stats.BytesSent - base.BytesSent)
	out := MixedStats{
		Throughput:   float64(completed) / elapsed.Seconds(),
		ReadP50:      percentile(reads, 50),
		ReadP99:      percentile(reads, 99),
		UpdateP50:    percentile(updates, 50),
		UpdateP99:    percentile(updates, 99),
		BytesPerOp:   bytesDelta / float64(completed),
		MaxLinkShare: maxLinkShare(stats.Links, base.Links, bytesDelta),
		Completed:    completed,
		Failed:       failed,
	}
	return out, nil
}

// maxLinkShare finds the busiest directed link's share of measured bytes —
// a leader-concentration signature: log-based protocols funnel traffic
// through the leader's links, the leaderless protocol spreads it.
func maxLinkShare(end, base map[transport.Link]transport.LinkStats, total float64) float64 {
	if total <= 0 {
		return 0
	}
	var max float64
	for l, s := range end {
		d := float64(s.BytesSent - base[l].BytesSent)
		if d > max {
			max = d
		}
	}
	return max / total
}

// percentile returns the p-th percentile of samples (nearest-rank).
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * p / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
