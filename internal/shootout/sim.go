package shootout

import (
	"container/heap"
	"math/rand"
	"time"

	"crdtsmr/internal/transport"
)

// Net describes the emulated network for one race: per-message delay drawn
// uniformly from [MinDelay, MaxDelay], plus optional loss and duplication.
type Net struct {
	MinDelay time.Duration
	MaxDelay time.Duration
	Loss     float64
	Dup      float64
}

// LAN is a datacenter-ish profile; the protocol gaps it produces are
// round-trip multiples, so any latency floor works.
func LAN() Net {
	return Net{MinDelay: 500 * time.Microsecond, MaxDelay: 4 * time.Millisecond}
}

// Sim is a discrete-event simulator marrying a delay-mode transport.Fabric
// with a virtual timer wheel. All protocol code, timers, and workload
// logic run single-threaded inside Sim events, so every run is a pure
// function of the seed — latency and throughput results are deterministic
// and independent of host CPU speed, which is what lets the shootout
// assert latency bounds on a 1-CPU CI box.
type Sim struct {
	Fab *transport.Fabric

	rng    *rand.Rand
	timers timerHeap
	seq    uint64
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
}

// Stop cancels the timer if it has not fired.
func (t *Timer) Stop() {
	if t != nil {
		t.stopped = true
	}
}

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among equal deadlines
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*Timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// NewSim builds a simulator over a fresh Fabric configured from net.
func NewSim(seed int64, net Net) *Sim {
	fab := transport.NewFabric(seed)
	min, max := net.MinDelay, net.MaxDelay
	if max <= 0 {
		min, max = LAN().MinDelay, LAN().MaxDelay
	}
	fab.SetDelay(min, max)
	if net.Loss > 0 {
		fab.SetLoss(net.Loss)
	}
	if net.Dup > 0 {
		fab.SetDuplication(net.Dup)
	}
	// A distinct stream from the fabric's keeps timer jitter decoupled
	// from message-delay draws.
	return &Sim{Fab: fab, rng: rand.New(rand.NewSource(seed ^ 0x5f00d))}
}

// Now returns the virtual clock.
func (s *Sim) Now() time.Duration { return s.Fab.Now() }

// Rng returns the simulator's RNG, for seeded jitter and workload choice.
func (s *Sim) Rng() *rand.Rand { return s.rng }

// After schedules fn at Now()+d. fn runs inside the event loop.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	s.seq++
	t := &Timer{at: s.Now() + d, seq: s.seq, fn: fn}
	heap.Push(&s.timers, t)
	return t
}

// step executes the earliest event not after limit. It returns false when
// no such event exists.
func (s *Sim) step(limit time.Duration) bool {
	for len(s.timers) > 0 && s.timers[0].stopped {
		heap.Pop(&s.timers)
	}
	var tAt time.Duration
	hasT := len(s.timers) > 0
	if hasT {
		tAt = s.timers[0].at
	}
	mAt, hasM := s.Fab.NextDeadline()
	switch {
	case hasT && (!hasM || tAt <= mAt):
		if tAt > limit {
			return false
		}
		t := heap.Pop(&s.timers).(*Timer)
		s.Fab.AdvanceTo(t.at)
		t.fn()
		return true
	case hasM:
		if mAt > limit {
			return false
		}
		s.Fab.Step()
		return true
	}
	return false
}

// RunUntil executes every event scheduled up to the virtual instant t and
// leaves the clock there.
func (s *Sim) RunUntil(t time.Duration) {
	for s.step(t) {
	}
	s.Fab.AdvanceTo(t)
}

// RunUntilDone executes events until done reports true or the virtual
// clock would pass limit. It reports whether done was reached.
func (s *Sim) RunUntilDone(limit time.Duration, done func() bool) bool {
	for !done() {
		if !s.step(limit) {
			return done()
		}
	}
	return true
}
