package shootout

import (
	"errors"
	"math/rand"
	"time"

	"crdtsmr/internal/paxos"
	"crdtsmr/internal/raft"
	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// epoch anchors the virtual clock for protocol code that wants a
// time.Time (the Paxos lease logic). Virtual instant d maps to epoch+d.
var epoch = time.Unix(0, 0)

// logRep is the narrow waist over the two log-based pure replicas, letting
// one virtual-time node runtime (logNode) drive both. It mirrors what
// paxos.Node and raft.Node do over goroutines and wall clocks.
type logRep interface {
	propose(cmd []byte, done func([]byte, error))
	proposeRead(cmd []byte, done func([]byte, error))
	readLocal(now time.Time, cmd []byte) ([]byte, bool)
	deliver(from transport.NodeID, payload []byte, now time.Time) bool
	electionTick(now time.Time)
	heartbeat(now time.Time)
	flushTo(conn transport.Conn)
	retryable(err error) bool
}

type paxosRep struct{ r *paxos.Replica }

func (p paxosRep) propose(cmd []byte, done func([]byte, error)) { p.r.Propose(cmd, paxos.Done(done)) }
func (p paxosRep) proposeRead(cmd []byte, done func([]byte, error)) {
	p.r.ProposeRead(cmd, paxos.Done(done))
}
func (p paxosRep) readLocal(now time.Time, cmd []byte) ([]byte, bool) {
	return p.r.ReadLocal(now, cmd)
}
func (p paxosRep) deliver(from transport.NodeID, payload []byte, now time.Time) bool {
	return p.r.Deliver(from, payload, now)
}
func (p paxosRep) electionTick(now time.Time) {
	p.r.StartElection(now)
	p.r.FailForwards()
}
func (p paxosRep) heartbeat(now time.Time) { p.r.HeartbeatTick(now) }
func (p paxosRep) flushTo(conn transport.Conn) {
	for _, e := range p.r.TakeOutbox() {
		conn.Send(e.To, e.Payload)
	}
}
func (p paxosRep) retryable(err error) bool {
	return errors.Is(err, paxos.ErrNoLeader) || errors.Is(err, paxos.ErrLostLeadership)
}

type raftRep struct{ r *raft.Replica }

func (q raftRep) propose(cmd []byte, done func([]byte, error)) { q.r.Propose(cmd, raft.Done(done)) }

// proposeRead rides the log: the Raft baseline has no read lease, so
// linearizable reads pay a full commit round (rsm.EncodeReadKey results
// are produced at the read's log position).
func (q raftRep) proposeRead(cmd []byte, done func([]byte, error)) { q.r.Propose(cmd, raft.Done(done)) }
func (q raftRep) readLocal(time.Time, []byte) ([]byte, bool)       { return nil, false }
func (q raftRep) deliver(from transport.NodeID, payload []byte, _ time.Time) bool {
	return q.r.Deliver(from, payload)
}
func (q raftRep) electionTick(time.Time) {
	q.r.ElectionTimeout()
	q.r.FailForwards()
}
func (q raftRep) heartbeat(time.Time) { q.r.HeartbeatTick() }
func (q raftRep) flushTo(conn transport.Conn) {
	for _, e := range q.r.TakeOutbox() {
		conn.Send(e.To, e.Payload)
	}
}
func (q raftRep) retryable(err error) bool {
	return errors.Is(err, raft.ErrNoLeader) || errors.Is(err, raft.ErrLostLeadership)
}

// logNode is the single-threaded virtual-time equivalent of the goroutine
// node runtimes: election timer with seeded jitter, heartbeat cadence, and
// outbox flushing after every replica interaction.
type logNode struct {
	sim   *Sim
	id    transport.NodeID
	rep   logRep
	rec   *rsm.Recorder
	store *rsm.Store
	conn  transport.Conn
	rng   *rand.Rand
	elect *Timer
	down  bool
}

type logBackend struct {
	sim   *Sim
	nodes []*logNode
}

func newPaxosBackend(s *Sim, n int) (Backend, error) {
	return newLogBackend(s, n, func(id transport.NodeID, members []transport.NodeID, sm rsm.StateMachine) (logRep, error) {
		rep, err := paxos.NewReplica(id, members, sm)
		if err != nil {
			return nil, err
		}
		rep.LeaseDuration = LeaseDuration
		return paxosRep{r: rep}, nil
	})
}

func newRaftBackend(s *Sim, n int) (Backend, error) {
	return newLogBackend(s, n, func(id transport.NodeID, members []transport.NodeID, sm rsm.StateMachine) (logRep, error) {
		rep, err := raft.NewReplica(id, members, sm)
		if err != nil {
			return nil, err
		}
		return raftRep{r: rep}, nil
	})
}

func newLogBackend(s *Sim, n int, mk func(transport.NodeID, []transport.NodeID, rsm.StateMachine) (logRep, error)) (Backend, error) {
	b := &logBackend{sim: s}
	members := Members(n)
	for _, id := range members {
		store := rsm.NewStore()
		rec := rsm.NewRecorder(store)
		rep, err := mk(id, members, rec)
		if err != nil {
			return nil, err
		}
		node := &logNode{
			sim:   s,
			id:    id,
			rep:   rep,
			rec:   rec,
			store: store,
			rng:   rand.New(rand.NewSource(s.Rng().Int63())),
		}
		node.conn = s.Fab.Join(id, func(from transport.NodeID, payload []byte) {
			if node.down {
				return
			}
			if node.rep.deliver(from, payload, epoch.Add(s.Now())) {
				node.resetElection()
			}
			node.flush()
		})
		b.nodes = append(b.nodes, node)
		node.resetElection()
		node.scheduleHeartbeat()
	}
	return b, nil
}

func (n *logNode) flush() {
	if n.down {
		return
	}
	n.rep.flushTo(n.conn)
}

func (n *logNode) resetElection() {
	n.elect.Stop()
	d := ElectionTimeout + time.Duration(n.rng.Int63n(int64(ElectionTimeout)))
	n.elect = n.sim.After(d, func() {
		if !n.down {
			n.rep.electionTick(epoch.Add(n.sim.Now()))
			n.flush()
		}
		n.resetElection()
	})
}

func (n *logNode) scheduleHeartbeat() {
	n.sim.After(HeartbeatInterval, func() {
		if !n.down {
			n.rep.heartbeat(epoch.Add(n.sim.Now()))
			n.flush()
		}
		n.scheduleHeartbeat()
	})
}

// execute drives one client operation with the node-runtime retry
// discipline, adapted to the write-safety rule the conformance harness
// needs: a write attempt is retried internally only while nothing has been
// transmitted for it (a synchronous ErrNoLeader, e.g. before the first
// election); once a write has been proposed or forwarded, any failure or
// try-timeout surfaces to the caller, because the command may still
// commit. Reads have no effects and retry freely until the op deadline.
func (n *logNode) execute(cmd []byte, read bool, done func([]byte, error)) {
	deadline := n.sim.Now() + OpTimeout
	n.attempt(cmd, read, deadline, done)
}

func (n *logNode) attempt(cmd []byte, read bool, deadline time.Duration, done func([]byte, error)) {
	if read {
		if res, ok := n.rep.readLocal(epoch.Add(n.sim.Now()), cmd); ok {
			done(res, nil)
			return
		}
	}
	var (
		settled  bool
		guard    *Timer
		sync     = true
		syncErr  error
		syncRes  []byte
		syncDone bool
	)
	retryLater := func() {
		backoff := HeartbeatInterval
		if n.sim.Now()+backoff >= deadline {
			done(nil, ErrOpTimeout)
			return
		}
		n.sim.After(backoff, func() { n.attempt(cmd, read, deadline, done) })
	}
	handle := func(res []byte, err error) {
		if settled {
			return
		}
		settled = true
		guard.Stop()
		if err == nil {
			done(res, nil)
			return
		}
		if read && n.sim.Now() < deadline {
			retryLater() // reads are effect-free: always safe to retry
			return
		}
		done(nil, err)
	}
	submit := func(res []byte, err error) {
		if sync {
			syncDone, syncRes, syncErr = true, res, err
			return
		}
		handle(res, err)
	}
	if read {
		n.rep.proposeRead(cmd, submit)
	} else {
		n.rep.propose(cmd, submit)
	}
	sync = false
	n.flush()
	if syncDone {
		// The callback fired inside propose: nothing was transmitted for
		// this attempt, so even a write is safe to retry.
		if syncErr != nil && n.rep.retryable(syncErr) {
			retryLater()
			return
		}
		done(syncRes, syncErr)
		return
	}
	guard = n.sim.After(2*ElectionTimeout, func() {
		if settled {
			return
		}
		settled = true
		if read && n.sim.Now() < deadline {
			retryLater()
			return
		}
		done(nil, ErrOpTimeout) // in-flight write: fate unknown
	})
}

// Inc implements Backend.
func (b *logBackend) Inc(replica int, key string, done func(error)) {
	b.nodes[replica].execute(rsm.EncodeIncKey(key, 1), false, func(_ []byte, err error) {
		done(err)
	})
}

// Read implements Backend.
func (b *logBackend) Read(replica int, key string, done func(int64, error)) {
	b.nodes[replica].execute(rsm.EncodeReadKey(key), true, func(res []byte, err error) {
		if err != nil {
			done(0, err)
			return
		}
		v, err := rsm.DecodeValue(res)
		done(v, err)
	})
}

// AddElem implements Backend.
func (b *logBackend) AddElem(replica int, key, elem string, done func(error)) {
	b.nodes[replica].execute(rsm.EncodeAddKey(key, elem), false, func(_ []byte, err error) {
		done(err)
	})
}

// Card implements Backend.
func (b *logBackend) Card(replica int, key string, done func(int64, error)) {
	b.nodes[replica].execute(rsm.EncodeCardKey(key), true, func(res []byte, err error) {
		if err != nil {
			done(0, err)
			return
		}
		v, err := rsm.DecodeValue(res)
		done(v, err)
	})
}

// AppliedLog implements AppliedLogger.
func (b *logBackend) AppliedLog(replica int) []string {
	return b.nodes[replica].rec.Log()
}
