package shootout

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"crdtsmr/internal/checker"
	"crdtsmr/internal/transport"
)

// TestSimTimersInterleaveWithMessages pins the event-loop contract: timers
// and deliveries pop in deadline order, with timers winning ties, and the
// virtual clock is monotone through both.
func TestSimTimersInterleaveWithMessages(t *testing.T) {
	sim := NewSim(1, Net{MinDelay: time.Millisecond, MaxDelay: time.Millisecond})
	var log []string
	conn := sim.Fab.Join("a", func(from transport.NodeID, p []byte) {})
	sim.Fab.Join("b", func(from transport.NodeID, p []byte) {
		log = append(log, fmt.Sprintf("msg@%v", sim.Now()))
	})
	sim.After(500*time.Microsecond, func() { log = append(log, fmt.Sprintf("t1@%v", sim.Now())) })
	sim.After(time.Millisecond, func() { log = append(log, fmt.Sprintf("t2@%v", sim.Now())) })
	conn.Send("b", []byte{1}) // delivers at 1ms, after t1, tied with t2 (timer wins)
	sim.RunUntil(10 * time.Millisecond)
	want := []string{"t1@500µs", "t2@1ms", "msg@1ms"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	if sim.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v after RunUntil(10ms)", sim.Now())
	}
}

// TestSimDeterministic pins that two sims with the same seed produce the
// same timer/message interleaving and clock readings.
func TestSimDeterministic(t *testing.T) {
	run := func() []string {
		sim := NewSim(99, LAN())
		var log []string
		var conns [3]*transport.FabricConn
		for i := 0; i < 3; i++ {
			i := i
			conns[i] = sim.Fab.Join(transport.NodeID(fmt.Sprintf("n%d", i+1)), func(from transport.NodeID, p []byte) {
				log = append(log, fmt.Sprintf("%d<-%s@%v", i, from, sim.Now()))
			})
		}
		for i := 0; i < 10; i++ {
			conns[i%3].Send(transport.NodeID(fmt.Sprintf("n%d", (i+1)%3+1)), []byte{byte(i)})
		}
		sim.After(2*time.Millisecond, func() { log = append(log, fmt.Sprintf("t@%v", sim.Now())) })
		sim.RunUntil(20 * time.Millisecond)
		return log
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}

// TestAllBackendsServeWorkload smoke-runs every raced configuration on a
// small mixed workload over a clean network and checks basic sanity.
func TestAllBackendsServeWorkload(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			st, err := MixedWorkload(spec, 3, LAN(), 7, 6, 4, 60, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			if st.Failed != 0 {
				t.Fatalf("%d failed ops on a clean network: %+v", st.Failed, st)
			}
			if st.Completed < 60 {
				t.Fatalf("completed %d < 60", st.Completed)
			}
			if st.Throughput <= 0 || st.ReadP50 <= 0 || st.UpdateP50 <= 0 {
				t.Fatalf("degenerate stats: %+v", st)
			}
		})
	}
}

// TestMixedWorkloadDeterministic: the whole figure pipeline is a pure
// function of the seed, for every backend.
func TestMixedWorkloadDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			a, err := MixedWorkload(spec, 3, LAN(), 21, 6, 4, 40, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			b, err := MixedWorkload(spec, 3, LAN(), 21, 6, 4, 40, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestReadAfterWriteLatencyOrdering pins the paper's qualitative claim in
// virtual time: the log-free protocol's hot-key read-after-write session,
// seen from the median replica, beats both log-based RSMs (whose follower
// replicas pay leader forwarding). This is the same property the CI
// regression guard enforces through the bench figure.
func TestReadAfterWriteLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	get := func(name string) SessionStats {
		sp, err := SpecNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ReadAfterWrite(sp, 3, LAN(), 5, 20, 4)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	crdt := get("crdtsmr/delta")
	paxos := get("paxos")
	raft := get("raft")
	t.Logf("session p50 medians: crdtsmr=%v paxos=%v raft=%v", crdt.Median, paxos.Median, raft.Median)
	t.Logf("per-replica: crdtsmr=%v paxos=%v raft=%v", crdt.PerReplica, paxos.PerReplica, raft.PerReplica)
	if crdt.Median >= paxos.Median {
		t.Errorf("crdtsmr median %v not below paxos %v", crdt.Median, paxos.Median)
	}
	if crdt.Median >= raft.Median {
		t.Errorf("crdtsmr median %v not below raft %v", crdt.Median, raft.Median)
	}
}

// TestConformAllProtocols drives every protocol through seeded loss and
// duplication on one counter and asserts the resulting history is
// linearizable, plus quiescent convergence of final reads.
func TestConformAllProtocols(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, spec := range ConformSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, seed := range seeds {
				net := LAN()
				net.Loss, net.Dup = 0.1, 0.1
				res, err := Conform(spec, ConformConfig{
					Seed:     seed,
					Replicas: 3,
					Ops:      80,
					Net:      net,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := checker.CheckCounterLinearizable(res.Ops); err != nil {
					t.Fatalf("seed %d: history not linearizable: %v", seed, err)
				}
				// Final reads are sequential, so the checker's condition (B)
				// already forces them non-decreasing; also pin bounds.
				last := res.FinalReads[len(res.FinalReads)-1]
				if last < int64(res.Incs) || last > int64(res.Incs+res.Abandoned) {
					t.Fatalf("seed %d: final read %d outside [%d, %d]",
						seed, last, res.Incs, res.Incs+res.Abandoned)
				}
				if res.Reads == 0 || res.Incs == 0 {
					t.Fatalf("seed %d: degenerate run %+v", seed, res)
				}
				t.Logf("seed %d: incs=%d abandoned=%d reads=%d failedReads=%d final=%v",
					seed, res.Incs, res.Abandoned, res.Reads, res.FailedRds, res.FinalReads)
			}
		})
	}
}

// TestConformWithPartitions adds minority-partition episodes on top of
// loss for the two protocols with leader failover (the interesting case)
// and the paper's protocol.
func TestConformWithPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"crdtsmr", "paxos", "raft"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var spec Spec
			for _, sp := range ConformSpecs() {
				if sp.Name == name {
					spec = sp
				}
			}
			net := LAN()
			net.Loss = 0.05
			res, err := Conform(spec, ConformConfig{
				Seed:       11,
				Replicas:   3,
				Ops:        100,
				Net:        net,
				Partitions: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := checker.CheckCounterLinearizable(res.Ops); err != nil {
				t.Fatalf("history not linearizable: %v", err)
			}
			t.Logf("incs=%d abandoned=%d reads=%d failedReads=%d final=%v",
				res.Incs, res.Abandoned, res.Reads, res.FailedRds, res.FinalReads)
		})
	}
}
