package shootout

import (
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

func newCRDTFull(s *Sim, n int) (Backend, error) {
	return newCRDTBackend(s, n, core.TransferFull)
}
func newCRDTDigest(s *Sim, n int) (Backend, error) {
	return newCRDTBackend(s, n, core.TransferDigest)
}
func newCRDTDelta(s *Sim, n int) (Backend, error) {
	return newCRDTBackend(s, n, core.TransferDelta)
}

// crdtBackend races the paper's protocol: per-key log-free core.Replica
// rounds, multiplexed over one fabric connection per node with the same
// object-ID envelope cluster.Node uses. A periodic virtual timer drives
// RetransmitAll for loss recovery, mirroring the node runtime.
type crdtBackend struct {
	sim   *Sim
	opts  core.Options
	nodes []*crdtNode
}

type crdtNode struct {
	b       *crdtBackend
	id      transport.NodeID
	conn    transport.Conn
	members []transport.NodeID
	reps    map[string]*core.Replica
	keys    []string // insertion order: deterministic retransmit sweep
	seq     uint64   // or-set add tag sequence, unique per (actor, seq)
}

func newCRDTBackend(s *Sim, n int, mode core.StateTransfer) (Backend, error) {
	opts := core.DefaultOptions()
	opts.Transfer = mode
	b := &crdtBackend{sim: s, opts: opts}
	members := Members(n)
	for _, id := range members {
		node := &crdtNode{b: b, id: id, members: members, reps: make(map[string]*core.Replica)}
		node.conn = s.Fab.Join(id, node.inbound)
		b.nodes = append(b.nodes, node)
		b.scheduleRetransmit(node)
	}
	return b, nil
}

func (b *crdtBackend) scheduleRetransmit(node *crdtNode) {
	b.sim.After(RetransmitEvery, func() {
		for _, key := range node.keys {
			if rep := node.reps[key]; rep.InFlight() > 0 {
				rep.RetransmitAll()
				node.flush(key, rep)
			}
		}
		b.scheduleRetransmit(node)
	})
}

func (node *crdtNode) inbound(from transport.NodeID, payload []byte) {
	key, inner, err := wire.UnpackEnvelope(payload)
	if err != nil {
		return
	}
	rep, err := node.replica(key)
	if err != nil {
		return
	}
	rep.Deliver(from, inner)
	node.flush(key, rep)
}

// initialFor picks the object type by key prefix, the same convention the
// server layer uses: 's…' keys are or-sets, everything else a g-counter.
func initialFor(key string) crdt.State {
	if len(key) > 0 && key[0] == 's' {
		return crdt.NewORSet()
	}
	return crdt.NewGCounter()
}

func (node *crdtNode) replica(key string) (*core.Replica, error) {
	if rep, ok := node.reps[key]; ok {
		return rep, nil
	}
	rep, err := core.NewReplica(node.id, node.members, initialFor(key), node.b.opts)
	if err != nil {
		return nil, err
	}
	node.reps[key] = rep
	node.keys = append(node.keys, key)
	return rep, nil
}

func (node *crdtNode) flush(key string, rep *core.Replica) {
	for _, e := range rep.TakeOutbox() {
		node.conn.Send(e.To, wire.PackEnvelope(key, e.Payload))
	}
}

// submitUpdate runs one mutation with the shared op-timeout guard.
func (b *crdtBackend) submitUpdate(replica int, key string, fu crdt.Update, done func(error)) {
	node := b.nodes[replica]
	rep, err := node.replica(key)
	if err != nil {
		done(err)
		return
	}
	settled := false
	guard := b.sim.After(OpTimeout, func() {
		if !settled {
			settled = true
			done(ErrOpTimeout)
		}
	})
	_, err = rep.SubmitUpdate(fu, func(_ core.UpdateStats, err error) {
		if settled {
			return
		}
		settled = true
		guard.Stop()
		done(err)
	})
	if err != nil && !settled {
		settled = true
		guard.Stop()
		done(err)
	}
	node.flush(key, rep)
}

func (b *crdtBackend) submitQuery(replica int, key string, read func(crdt.State) int64, done func(int64, error)) {
	node := b.nodes[replica]
	rep, err := node.replica(key)
	if err != nil {
		done(0, err)
		return
	}
	settled := false
	guard := b.sim.After(OpTimeout, func() {
		if !settled {
			settled = true
			done(0, ErrOpTimeout)
		}
	})
	rep.SubmitQuery(func(st crdt.State, _ core.QueryStats, err error) {
		if settled {
			return
		}
		settled = true
		guard.Stop()
		if err != nil {
			done(0, err)
			return
		}
		done(read(st), nil)
	})
	node.flush(key, rep)
}

// Inc implements Backend.
func (b *crdtBackend) Inc(replica int, key string, done func(error)) {
	slot := string(b.nodes[replica].id)
	b.submitUpdate(replica, key, func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(slot, 1), nil
	}, done)
}

// Read implements Backend.
func (b *crdtBackend) Read(replica int, key string, done func(int64, error)) {
	b.submitQuery(replica, key, func(s crdt.State) int64 {
		return int64(s.(*crdt.GCounter).Value())
	}, done)
}

// AddElem implements Backend.
func (b *crdtBackend) AddElem(replica int, key, elem string, done func(error)) {
	node := b.nodes[replica]
	node.seq++
	actor, seq := string(node.id), node.seq
	b.submitUpdate(replica, key, func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.ORSet).Add(elem, actor, seq), nil
	}, done)
}

// Card implements Backend.
func (b *crdtBackend) Card(replica int, key string, done func(int64, error)) {
	b.submitQuery(replica, key, func(s crdt.State) int64 {
		return int64(len(s.(*crdt.ORSet).Elements()))
	}, done)
}
