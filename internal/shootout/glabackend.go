package shootout

import (
	"fmt"
	"strings"

	"crdtsmr/internal/gla"
	"crdtsmr/internal/transport"
)

// glaBackend races generalized lattice agreement (arXiv:1810.05871): every
// operation is a fresh unique command joined into the replicated CmdSet
// lattice; an operation completes when a learned value contains its
// command. Reads are read markers — the learned value that carries the
// marker is the linearization snapshot, and the counter value is the
// number of increment commands for that key inside it. Learned values form
// a chain (lattice agreement safety), so those snapshots are linearizable.
//
// Command syntax ("i"ncrement, "a"dd, "r"ead marker; node+seq make every
// command unique):
//
//	i:<key>:<node>:<seq>
//	a:<key>:<elem>:<node>:<seq>
//	r:<node>:<seq>
type glaBackend struct {
	sim   *Sim
	nodes []*glaNode
}

type glaNode struct {
	b       *glaBackend
	id      transport.NodeID
	rep     *gla.Replica
	conn    transport.Conn
	seq     uint64
	pending []*glaOp // completion scan order = submission order (determinism)
}

type glaOp struct {
	cmd     string
	settled bool
	fire    func(learned gla.CmdSet)
}

func newGLABackend(s *Sim, n int) (Backend, error) {
	b := &glaBackend{sim: s}
	members := Members(n)
	for _, id := range members {
		node := &glaNode{b: b, id: id}
		rep, err := gla.NewReplica(id, members, node.onLearn)
		if err != nil {
			return nil, err
		}
		node.rep = rep
		node.conn = s.Fab.Join(id, func(from transport.NodeID, payload []byte) {
			node.rep.Deliver(from, payload)
			node.flush()
		})
		b.nodes = append(b.nodes, node)
		b.scheduleRetransmit(node)
	}
	return b, nil
}

func (b *glaBackend) scheduleRetransmit(node *glaNode) {
	b.sim.After(RetransmitEvery, func() {
		if node.rep.InFlight() {
			node.rep.Retransmit()
			node.flush()
		}
		b.scheduleRetransmit(node)
	})
}

func (node *glaNode) flush() {
	for _, e := range node.rep.TakeOutbox() {
		node.conn.Send(e.To, e.Payload)
	}
}

func (node *glaNode) onLearn(val gla.CmdSet, _ uint64) {
	// Filter first, fire after: fire callbacks run closed-loop clients that
	// submit new ops synchronously, appending to node.pending — mutating it
	// mid-iteration would drop those ops on the floor.
	var fired []*glaOp
	kept := node.pending[:0]
	for _, op := range node.pending {
		if op.settled {
			continue
		}
		if _, ok := val[op.cmd]; ok {
			op.settled = true
			fired = append(fired, op)
			continue
		}
		kept = append(kept, op)
	}
	node.pending = kept
	for _, op := range fired {
		op.fire(val)
	}
}

// submit proposes cmd and schedules fire when some learned value includes
// it, with the shared op-timeout guard.
func (node *glaNode) submit(cmd string, fire func(gla.CmdSet), fail func(error)) {
	op := &glaOp{cmd: cmd, fire: fire}
	node.pending = append(node.pending, op)
	node.b.sim.After(OpTimeout, func() {
		if !op.settled {
			op.settled = true
			fail(ErrOpTimeout) // the command may still be learned later
		}
	})
	node.rep.ReceiveValue(cmd)
	node.flush()
}

func (node *glaNode) nextSeq() uint64 {
	node.seq++
	return node.seq
}

// countIncs returns the counter value key takes in the learned snapshot.
func countIncs(val gla.CmdSet, key string) int64 {
	prefix := "i:" + key + ":"
	n := int64(0)
	for cmd := range val {
		if strings.HasPrefix(cmd, prefix) {
			n++
		}
	}
	return n
}

// countElems returns the distinct elements added to set key in the
// learned snapshot.
func countElems(val gla.CmdSet, key string) int64 {
	prefix := "a:" + key + ":"
	elems := make(map[string]struct{})
	for cmd := range val {
		rest, ok := strings.CutPrefix(cmd, prefix)
		if !ok {
			continue
		}
		if i := strings.Index(rest, ":"); i >= 0 {
			elems[rest[:i]] = struct{}{}
		}
	}
	return int64(len(elems))
}

// Inc implements Backend.
func (b *glaBackend) Inc(replica int, key string, done func(error)) {
	node := b.nodes[replica]
	cmd := fmt.Sprintf("i:%s:%s:%d", key, node.id, node.nextSeq())
	node.submit(cmd, func(gla.CmdSet) { done(nil) }, done)
}

// Read implements Backend.
func (b *glaBackend) Read(replica int, key string, done func(int64, error)) {
	node := b.nodes[replica]
	cmd := fmt.Sprintf("r:%s:%d", node.id, node.nextSeq())
	node.submit(cmd,
		func(val gla.CmdSet) { done(countIncs(val, key), nil) },
		func(err error) { done(0, err) })
}

// AddElem implements Backend.
func (b *glaBackend) AddElem(replica int, key, elem string, done func(error)) {
	node := b.nodes[replica]
	cmd := fmt.Sprintf("a:%s:%s:%s:%d", key, elem, node.id, node.nextSeq())
	node.submit(cmd, func(gla.CmdSet) { done(nil) }, done)
}

// Card implements Backend.
func (b *glaBackend) Card(replica int, key string, done func(int64, error)) {
	node := b.nodes[replica]
	cmd := fmt.Sprintf("r:%s:%d", node.id, node.nextSeq())
	node.submit(cmd,
		func(val gla.CmdSet) { done(countElems(val, key), nil) },
		func(err error) { done(0, err) })
}
