// Package shootout races the paper's log-free CRDT SMR protocol against
// three baselines — Multi-Paxos RSM, Raft RSM, and generalized lattice
// agreement (arXiv:1810.05871) — on one shared keyed counter/or-set
// workload over one latency-emulated transport.Fabric.
//
// Everything runs in virtual time: the fabric stamps per-message delivery
// deadlines from the seeded rng, a deterministic event loop (Sim)
// interleaves message deliveries with protocol timers, and every latency,
// throughput, or wire-byte figure is a pure function of the seed. That
// makes the numbers latency-bound rather than CPU-bound, so CI can assert
// cross-protocol ratios on a one-core box without flaking.
//
// The package has three consumers:
//
//   - internal/bench builds the `-figure protocols` shootout figure from
//     ReadAfterWrite and MixedWorkload,
//   - the conformance harness (Conform) drives every backend through a
//     seeded fault schedule and hands the resulting history to
//     internal/checker's counter linearizability checker, and
//   - the property tests for internal/paxos and internal/raft reuse the
//     backends to assert "same seed, same decided log" determinism.
package shootout
