package shootout

import (
	"fmt"
	"math/rand"
	"time"

	"crdtsmr/internal/checker"
)

// ConformConfig parameterizes one conformance run: Ops operations on a
// single hot counter key, issued from seeded random replicas at a fixed
// virtual cadence, under the configured fault model.
type ConformConfig struct {
	Seed     int64
	Replicas int
	Ops      int
	ReadFrac float64 // fraction of ops that are reads (default 0.5)
	Net      Net

	// Partitions > 0 inserts that many partition episodes into the run:
	// a rotating minority is cut off from the rest for PartitionFor, then
	// healed. Episodes are spread evenly across the injection window.
	Partitions   int
	PartitionFor time.Duration
}

// ConformResult is the evidence from one run, for the caller to judge.
type ConformResult struct {
	Ops       []checker.Op // completed + abandoned ops, checker order
	Incs      int          // increments that completed successfully
	Abandoned int          // increments whose fate is unknown
	Reads     int          // reads that completed successfully
	FailedRds int          // reads that errored (discarded, no obligation)
	// FinalReads holds one post-quiescence read per replica, issued
	// sequentially (each completes before the next begins).
	FinalReads []int64
	// AppliedLogs holds each replica's applied-command log when the backend
	// records one (log-based protocols), else nil.
	AppliedLogs [][]string
}

// Conform drives one backend through a seeded fault schedule on a single
// counter key and collects a linearizability history: successful ops are
// recorded with End, failed reads are discarded (effect-free), and failed
// increments are abandoned — their effect may still land, so they raise
// the reads' upper bound forever after. The caller asserts
// checker.CheckCounterLinearizable over Result.Ops and whatever
// convergence properties the protocol promises for FinalReads.
func Conform(spec Spec, cfg ConformConfig) (*ConformResult, error) {
	if cfg.Replicas <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("shootout: bad conform config %+v", cfg)
	}
	if cfg.ReadFrac == 0 {
		cfg.ReadFrac = 0.5
	}
	sim := NewSim(cfg.Seed, cfg.Net)
	backend, err := spec.New(sim, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	const key = "c-conform"
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x10c4))
	hist := checker.NewHistory()
	res := &ConformResult{}

	// Injection schedule: one op every gap, starting after settle. Fixed
	// times keep the schedule independent of op completion, so concurrency
	// between ops (the interesting part of a linearizability history)
	// arises naturally whenever an op outlives the gap.
	const gap = 2 * time.Millisecond
	settled := 0
	for i := 0; i < cfg.Ops; i++ {
		at := settleTime + time.Duration(i)*gap
		replica := rng.Intn(cfg.Replicas)
		isRead := rng.Float64() < cfg.ReadFrac
		sim.After(at-sim.Now(), func() {
			if isRead {
				id := hist.Begin(checker.OpRead)
				backend.Read(replica, key, func(val int64, err error) {
					settled++
					if err != nil {
						res.FailedRds++
						hist.Discard(id)
						return
					}
					res.Reads++
					hist.End(id, uint64(val))
				})
				return
			}
			id := hist.Begin(checker.OpInc)
			backend.Inc(replica, key, func(err error) {
				settled++
				if err != nil {
					res.Abandoned++
					hist.Abandon(id) // fate unknown: may still take effect
					return
				}
				res.Incs++
				hist.End(id, 0)
			})
		})
	}

	// Partition episodes: cut a rotating minority off for PartitionFor.
	window := time.Duration(cfg.Ops) * gap
	for ep := 0; ep < cfg.Partitions; ep++ {
		at := settleTime + window*time.Duration(ep)/time.Duration(cfg.Partitions)
		minority := (cfg.Replicas - 1) / 2
		members := Members(cfg.Replicas)
		cut := members[(ep*minority)%cfg.Replicas : (ep*minority)%cfg.Replicas+1]
		if minority > 1 {
			lo := (ep * minority) % cfg.Replicas
			cut = nil
			for k := 0; k < minority; k++ {
				cut = append(cut, members[(lo+k)%cfg.Replicas])
			}
		}
		dur := cfg.PartitionFor
		if dur == 0 {
			dur = 4 * ElectionTimeout
		}
		sim.After(at-sim.Now(), func() {
			for _, a := range cut {
				for _, m := range members {
					in := false
					for _, c := range cut {
						if c == m {
							in = true
						}
					}
					if !in {
						sim.Fab.Block(a, m)
						sim.Fab.Block(m, a)
					}
				}
			}
			sim.After(dur, func() {
				for _, a := range cut {
					for _, m := range members {
						sim.Fab.Unblock(a, m)
						sim.Fab.Unblock(m, a)
					}
				}
			})
		})
	}

	// Drain: every op settles by its OpTimeout guard, so this terminates.
	if !sim.RunUntilDone(virtualCap, func() bool { return settled == cfg.Ops }) {
		return nil, fmt.Errorf("%s: conform run stalled (%d/%d ops settled)", spec.Name, settled, cfg.Ops)
	}
	// Quiesce past any last partition heal and in-flight retransmissions.
	sim.RunUntil(sim.Now() + 2*LeaseDuration)

	// Final sequential reads, one per replica, each completing before the
	// next begins — these join the history, so the checker also enforces
	// that post-quiescence reads are mutually consistent with everything.
	for r := 0; r < cfg.Replicas; r++ {
		val, err := finalRead(sim, backend, hist, r, key)
		if err != nil {
			return nil, fmt.Errorf("%s: final read at replica %d: %w", spec.Name, r, err)
		}
		res.FinalReads = append(res.FinalReads, val)
	}

	if lg, ok := backend.(AppliedLogger); ok {
		for r := 0; r < cfg.Replicas; r++ {
			res.AppliedLogs = append(res.AppliedLogs, lg.AppliedLog(r))
		}
	}
	res.Ops = hist.Ops()
	return res, nil
}

// finalRead issues one read and runs the sim until it settles, retrying a
// few times (bounded) on error — by quiescence reads should succeed.
func finalRead(sim *Sim, backend Backend, hist *checker.History, replica int, key string) (int64, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		done := false
		var val int64
		var opErr error
		id := hist.Begin(checker.OpRead)
		backend.Read(replica, key, func(v int64, err error) {
			done, val, opErr = true, v, err
		})
		if !sim.RunUntilDone(virtualCap, func() bool { return done }) {
			hist.Discard(id)
			return 0, fmt.Errorf("read stalled")
		}
		if opErr == nil {
			hist.End(id, uint64(val))
			return val, nil
		}
		hist.Discard(id)
		lastErr = opErr
		sim.RunUntil(sim.Now() + 2*ElectionTimeout)
	}
	return 0, lastErr
}
