package shootout

import (
	"errors"
	"fmt"
	"time"

	"crdtsmr/internal/transport"
)

// Protocol timers, in virtual time. They are deliberately paper-ish
// (election timeouts two orders above the hop delay) so the log-based
// baselines run in their steady state, not in election churn.
const (
	// ElectionTimeout is the base leader-liveness timeout for Paxos and
	// Raft; per-node jitter in [ET, 2·ET) breaks election ties.
	ElectionTimeout = 60 * time.Millisecond
	// HeartbeatInterval is the leader replication/lease cadence.
	HeartbeatInterval = 12 * time.Millisecond
	// LeaseDuration is the Paxos leader read-lease window.
	LeaseDuration = 4 * ElectionTimeout
	// RetransmitEvery drives the quorum-protocol retransmission timers
	// (crdtsmr rounds, GLA proposals) that recover from message loss.
	RetransmitEvery = 30 * time.Millisecond
	// OpTimeout bounds one client operation including internal retries;
	// afterwards the attempt's fate is unknown (lost or still committing).
	OpTimeout = 1 * time.Second
)

// ErrOpTimeout reports an operation whose fate is unknown after OpTimeout:
// a write may still commit. Conformance harnesses must treat such writes
// as abandoned, never blindly retried.
var ErrOpTimeout = errors.New("shootout: operation timed out")

// Backend is one protocol wired into a Sim: n replicas joined to the
// fabric, exposing the shared keyed counter/or-set workload surface. Done
// callbacks fire inside the event loop, exactly once. By convention
// counter keys start with 'c' and set keys with 's'. Write errors mean
// "fate unknown" unless the backend documents otherwise; reads are
// effect-free and may be retried freely.
type Backend interface {
	Inc(replica int, key string, done func(err error))
	Read(replica int, key string, done func(val int64, err error))
	AddElem(replica int, key, elem string, done func(err error))
	Card(replica int, key string, done func(val int64, err error))
}

// AppliedLogger is implemented by log-based backends (Paxos, Raft): the
// sequence of commands each replica applied to its state machine, for
// "same seed, identical decided values" assertions.
type AppliedLogger interface {
	AppliedLog(replica int) []string
}

// Spec names a backend constructor for sweeps.
type Spec struct {
	Name string
	New  func(s *Sim, n int) (Backend, error)
}

// Specs returns every raced configuration: the paper's protocol in all
// three state-transfer modes, the two log-based baselines, and GLA.
func Specs() []Spec {
	return []Spec{
		{Name: "crdtsmr/full", New: newCRDTFull},
		{Name: "crdtsmr/digest", New: newCRDTDigest},
		{Name: "crdtsmr/delta", New: newCRDTDelta},
		{Name: "paxos", New: newPaxosBackend},
		{Name: "raft", New: newRaftBackend},
		{Name: "gla", New: newGLABackend},
	}
}

// ConformSpecs returns one configuration per protocol for the conformance
// harness (the crdtsmr transfer modes share a round protocol; delta is the
// most intricate, so it stands for the family).
func ConformSpecs() []Spec {
	return []Spec{
		{Name: "crdtsmr", New: newCRDTDelta},
		{Name: "paxos", New: newPaxosBackend},
		{Name: "raft", New: newRaftBackend},
		{Name: "gla", New: newGLABackend},
	}
}

// SpecNamed returns the spec with the given name.
func SpecNamed(name string) (Spec, error) {
	for _, sp := range Specs() {
		if sp.Name == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("shootout: unknown backend %q", name)
}

// Members returns the canonical n-replica membership n1..nN.
func Members(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}
