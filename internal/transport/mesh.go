package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Mesh is an in-process asynchronous network. Every endpoint owns a
// delivery goroutine, so handlers run serially per node but concurrently
// across nodes — the same execution model as one OS process per replica.
//
// The failure model is configured with options: per-message delay
// (uniformly distributed between min and max, which also causes
// reordering), independent loss and duplication probabilities, and
// explicit link blocking or node crash via SetDown/Block.
type Mesh struct {
	cfg meshConfig

	mu     sync.RWMutex
	eps    map[NodeID]*MeshConn
	down   map[NodeID]bool
	blocks map[[2]NodeID]bool
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	bytes     atomic.Uint64
	bytesSent atomic.Uint64
	links     linkTable
}

type meshConfig struct {
	minDelay  time.Duration
	maxDelay  time.Duration
	loss      float64
	duplicate float64
	seed      int64
	inboxSize int
}

// MeshOption configures a Mesh.
type MeshOption func(*meshConfig)

// WithDelay makes every message take a uniform random delay in [min, max].
// Unequal delays reorder messages, matching the paper's system model.
func WithDelay(min, max time.Duration) MeshOption {
	return func(c *meshConfig) { c.minDelay, c.maxDelay = min, max }
}

// WithLoss drops each message independently with probability p.
func WithLoss(p float64) MeshOption {
	return func(c *meshConfig) { c.loss = p }
}

// WithDuplication delivers each message twice with probability p.
func WithDuplication(p float64) MeshOption {
	return func(c *meshConfig) { c.duplicate = p }
}

// WithSeed fixes the RNG seed for reproducible delay/loss decisions.
func WithSeed(seed int64) MeshOption {
	return func(c *meshConfig) { c.seed = seed }
}

// WithInboxSize sets the per-endpoint inbound queue length. When an inbox
// overflows, messages are dropped (counted in Stats.Dropped) — overload
// behaves like loss, which the protocols must tolerate anyway.
func WithInboxSize(n int) MeshOption {
	return func(c *meshConfig) { c.inboxSize = n }
}

// NewMesh creates an empty mesh.
func NewMesh(opts ...MeshOption) *Mesh {
	cfg := meshConfig{seed: 1, inboxSize: 16384}
	for _, o := range opts {
		o(&cfg)
	}
	return &Mesh{
		cfg:    cfg,
		eps:    make(map[NodeID]*MeshConn),
		down:   make(map[NodeID]bool),
		blocks: make(map[[2]NodeID]bool),
		rng:    rand.New(rand.NewSource(cfg.seed)),
	}
}

// Join registers a node and starts its delivery goroutine. The handler is
// invoked serially, one message at a time.
func (m *Mesh) Join(id NodeID, h Handler) *MeshConn {
	c := &MeshConn{
		mesh:    m,
		id:      id,
		handler: h,
		inbox:   make(chan inbound, m.cfg.inboxSize),
		quit:    make(chan struct{}),
	}
	m.mu.Lock()
	m.eps[id] = c
	m.mu.Unlock()
	c.wg.Add(1)
	go c.deliverLoop()
	return c
}

// SetDown marks a node crashed (true) or recovered (false). Messages to or
// from a down node are dropped, but the node's endpoint and handler state
// survive: the paper assumes the crash-recovery model in which processes
// keep their internal state across failures.
func (m *Mesh) SetDown(id NodeID, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[id] = down
}

// Block drops all messages from a to b (one direction) until Unblock.
func (m *Mesh) Block(from, to NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks[[2]NodeID{from, to}] = true
}

// Unblock re-enables the link from a to b.
func (m *Mesh) Unblock(from, to NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blocks, [2]NodeID{from, to})
}

// Partition splits the cluster into groups; links across groups are blocked
// in both directions, links within a group are unblocked.
func (m *Mesh) Partition(groups ...[]NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks = make(map[[2]NodeID]bool)
	side := make(map[NodeID]int)
	for i, g := range groups {
		for _, id := range g {
			side[id] = i
		}
	}
	for a, sa := range side {
		for b, sb := range side {
			if sa != sb {
				m.blocks[[2]NodeID{a, b}] = true
			}
		}
	}
}

// Heal removes all link blocks.
func (m *Mesh) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks = make(map[[2]NodeID]bool)
}

// Stats returns the current transport counters.
func (m *Mesh) Stats() Stats {
	return Stats{
		Sent:      m.sent.Load(),
		Delivered: m.delivered.Load(),
		Dropped:   m.dropped.Load(),
		Bytes:     m.bytes.Load(),
		BytesSent: m.bytesSent.Load(),
		Links:     m.links.snapshot(),
	}
}

// Close shuts down every endpoint and waits for delivery goroutines.
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	eps := make([]*MeshConn, 0, len(m.eps))
	for _, c := range m.eps {
		eps = append(eps, c)
	}
	m.mu.Unlock()
	for _, c := range eps {
		_ = c.Close()
	}
}

func (m *Mesh) route(from, to NodeID, payload []byte) {
	m.sent.Add(1)
	m.bytesSent.Add(uint64(len(payload)))
	m.links.sent(from, to, len(payload))
	m.mu.RLock()
	dst, ok := m.eps[to]
	deliverable := ok && !m.closed && !m.down[from] && !m.down[to] && !m.blocks[[2]NodeID{from, to}]
	m.mu.RUnlock()
	if !deliverable {
		m.dropped.Add(1)
		return
	}

	copies := 1
	var delay time.Duration
	if m.cfg.loss > 0 || m.cfg.duplicate > 0 || m.cfg.maxDelay > 0 {
		m.rngMu.Lock()
		if m.cfg.loss > 0 && m.rng.Float64() < m.cfg.loss {
			copies = 0
		} else if m.cfg.duplicate > 0 && m.rng.Float64() < m.cfg.duplicate {
			copies = 2
		}
		if m.cfg.maxDelay > 0 {
			delay = m.cfg.minDelay
			if jitter := m.cfg.maxDelay - m.cfg.minDelay; jitter > 0 {
				delay += time.Duration(m.rng.Int63n(int64(jitter)))
			}
		}
		m.rngMu.Unlock()
	}
	if copies == 0 {
		m.dropped.Add(1)
		return
	}

	msg := inbound{from: from, payload: payload}
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, func() { dst.enqueue(msg) })
		} else {
			dst.enqueue(msg)
		}
	}
}

type inbound struct {
	from    NodeID
	payload []byte
}

// MeshConn is a node's endpoint into a Mesh.
type MeshConn struct {
	mesh    *Mesh
	id      NodeID
	handler Handler
	inbox   chan inbound
	quit    chan struct{}
	wg      sync.WaitGroup
	closed  sync.Once
}

var _ Conn = (*MeshConn)(nil)

// ID implements Conn.
func (c *MeshConn) ID() NodeID { return c.id }

// Send implements Conn. Self-sends are delivered through the same path as
// remote sends so that delivery order relative to other messages is
// preserved.
func (c *MeshConn) Send(to NodeID, payload []byte) {
	c.mesh.route(c.id, to, payload)
}

// Close implements Conn.
func (c *MeshConn) Close() error {
	c.closed.Do(func() {
		close(c.quit)
		c.mesh.mu.Lock()
		delete(c.mesh.eps, c.id)
		c.mesh.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

func (c *MeshConn) enqueue(msg inbound) {
	select {
	case <-c.quit:
		c.mesh.dropped.Add(1)
	case c.inbox <- msg:
	default:
		// Inbox full: treat as loss under overload.
		c.mesh.dropped.Add(1)
	}
}

func (c *MeshConn) deliverLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			return
		case msg := <-c.inbox:
			c.mesh.delivered.Add(1)
			c.mesh.bytes.Add(uint64(len(msg.payload)))
			c.mesh.links.delivered(msg.from, c.id, len(msg.payload))
			c.handler(msg.from, msg.payload)
		}
	}
}
