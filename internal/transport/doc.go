// Package transport provides the message-passing substrates the replication
// protocols run on, matching the paper's system model (§2.1): asynchronous
// processes exchanging unreliable messages that may be delayed, reordered,
// or lost.
//
// Three implementations share one interface:
//
//   - Mesh: an in-process asynchronous network of goroutine endpoints with
//     seeded, configurable delay, loss, duplication, link blocking, and node
//     crash, used by the benchmark harness and integration tests.
//   - Fabric: a single-threaded deterministic network whose message
//     delivery order is driven by a seeded scheduler, used by the
//     protocol-interleaving checker (the paper tested correctness with "a
//     protocol scheduler that enforces random interleavings of incoming
//     messages", §4).
//   - TCP: a length-prefixed framing transport over net.Conn for
//     multi-process deployments.
package transport
