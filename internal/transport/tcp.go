package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCP is a transport over real sockets for multi-process deployments.
// Frames are length-prefixed: [uvarint total][uvarint fromLen][from][payload].
// Outbound connections are dialed lazily and redialed on the next Send after
// a failure; a failed write drops the message, preserving the unreliable
// best-effort semantics of Conn.
type TCP struct {
	id    NodeID
	peers map[NodeID]string

	handler Handler
	ln      net.Listener

	mu      sync.Mutex
	conns   map[NodeID]*tcpPeer
	inbound map[net.Conn]struct{}

	quit   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	bytes     atomic.Uint64
	bytesSent atomic.Uint64
	links     linkTable
}

var _ Conn = (*TCP)(nil)

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

// NewTCP starts a TCP endpoint listening on listenAddr. peers maps every
// remote node ID to its dialable address. The handler is invoked serially
// per inbound connection.
func NewTCP(id NodeID, listenAddr string, peers map[NodeID]string, h Handler) (*TCP, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	book := make(map[NodeID]string, len(peers))
	for k, v := range peers {
		book[k] = v
	}
	t := &TCP{
		id:      id,
		peers:   book,
		handler: h,
		ln:      ln,
		conns:   make(map[NodeID]*tcpPeer),
		inbound: make(map[net.Conn]struct{}),
		quit:    make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address (useful with ":0" listeners).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// helloMagic opens a transport-level handshake frame: the first frame a
// dialer writes on a new connection advertises its own listener address,
// so the receiver learns a dial-back path to peers its address book
// never contained — a joiner admitted after this endpoint started would
// otherwise be able to reach everyone while nobody could answer it. The
// leading zero byte cannot open a valid object envelope, so a receiver
// without the intercept drops the frame as malformed and the handshake
// degrades to the old behaviour.
var helloMagic = []byte("\x00crdtsmr-hello\x00")

// learnPeer records the dial-back address an inbound connection's hello
// frame advertised. A listener bound to an unspecified host (":port",
// "0.0.0.0", "::") advertises an undialable address; the host the
// connection actually came from replaces it.
func (t *TCP) learnPeer(from NodeID, addr string, conn net.Conn) {
	if from == "" || from == t.id || addr == "" {
		return
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return
	}
	ip := net.ParseIP(host)
	if host == "" || (ip != nil && ip.IsUnspecified()) {
		rhost, _, err := net.SplitHostPort(conn.RemoteAddr().String())
		if err != nil {
			return
		}
		addr = net.JoinHostPort(rhost, port)
	}
	t.AddPeer(from, addr)
}

// AddPeer registers (or re-addresses) a dialable peer at runtime, so a
// node can reach a member that joined after this endpoint was
// constructed. An existing connection to the peer is kept; the new
// address applies from the next (re)dial.
func (t *TCP) AddPeer(to NodeID, addr string) {
	t.mu.Lock()
	t.peers[to] = addr
	t.mu.Unlock()
}

// ID implements Conn.
func (t *TCP) ID() NodeID { return t.id }

// Send implements Conn. Loopback sends are dispatched inline on a separate
// goroutine to preserve non-blocking semantics.
func (t *TCP) Send(to NodeID, payload []byte) {
	t.sent.Add(1)
	t.bytesSent.Add(uint64(len(payload)))
	t.links.sent(t.id, to, len(payload))
	if to == t.id {
		msg := make([]byte, len(payload))
		copy(msg, payload)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			select {
			case <-t.quit:
			default:
				t.delivered.Add(1)
				t.bytes.Add(uint64(len(msg)))
				t.links.delivered(t.id, t.id, len(msg))
				t.handler(t.id, msg)
			}
		}()
		return
	}
	p, err := t.peer(to)
	if err != nil {
		t.dropped.Add(1)
		return
	}
	if err := p.write(t.id, payload); err != nil {
		t.dropConn(to, p)
		t.dropped.Add(1)
	}
}

// Stats returns the endpoint's counters. Links covers the links this
// endpoint terminates: outbound (From == ID) and inbound (To == ID).
func (t *TCP) Stats() Stats {
	return Stats{
		Sent:      t.sent.Load(),
		Delivered: t.delivered.Load(),
		Dropped:   t.dropped.Load(),
		Bytes:     t.bytes.Load(),
		BytesSent: t.bytesSent.Load(),
		Links:     t.links.snapshot(),
	}
}

// Close implements Conn: it stops the listener, closes every connection,
// and waits for reader goroutines to drain.
func (t *TCP) Close() error {
	t.closed.Do(func() {
		close(t.quit)
		_ = t.ln.Close()
		t.mu.Lock()
		for _, p := range t.conns {
			p.mu.Lock()
			if p.conn != nil {
				_ = p.conn.Close()
			}
			p.mu.Unlock()
		}
		t.conns = make(map[NodeID]*tcpPeer)
		// Accepted connections must be closed too, or their reader
		// goroutines stay blocked and Close deadlocks in wg.Wait.
		for conn := range t.inbound {
			_ = conn.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}

func (t *TCP) peer(to NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	if p, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return p, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %s", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	p := &tcpPeer{conn: conn, bw: bufio.NewWriter(conn)}
	// Advertise this node's listener before any payload: the remote may
	// have started without this node in its address book, and replies it
	// sends are dropped until it learns where to dial.
	hello := append(append(make([]byte, 0, len(helloMagic)+len(t.Addr())), helloMagic...), t.Addr()...)
	if err := p.write(t.id, hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: hello %s: %w", to, err)
	}
	t.mu.Lock()
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	t.conns[to] = p
	t.mu.Unlock()
	return p, nil
}

func (t *TCP) dropConn(to NodeID, p *tcpPeer) {
	p.mu.Lock()
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
	p.mu.Unlock()
	t.mu.Lock()
	if t.conns[to] == p {
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

func (p *tcpPeer) write(from NodeID, payload []byte) error {
	frame := make([]byte, 0, len(payload)+len(from)+12)
	frame = binary.AppendUvarint(frame, uint64(len(from)))
	frame = append(frame, from...)
	frame = append(frame, payload...)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(frame)))

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return io.ErrClosedPipe
	}
	if _, err := p.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := p.bw.Write(frame); err != nil {
		return err
	}
	return p.bw.Flush()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.quit:
				return
			default:
				continue
			}
		}
		t.mu.Lock()
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// maxFrameSize bounds a single frame to protect against corrupt length
// prefixes; CRDT states in this repository are far smaller.
const maxFrameSize = 64 << 20

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		select {
		case <-t.quit:
			return
		default:
		}
		total, err := binary.ReadUvarint(br)
		if err != nil || total > maxFrameSize {
			return
		}
		frame := make([]byte, total)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		fromLen, n := binary.Uvarint(frame)
		if n <= 0 || uint64(len(frame)-n) < fromLen {
			return
		}
		from := NodeID(frame[n : n+int(fromLen)])
		payload := frame[n+int(fromLen):]
		if bytes.HasPrefix(payload, helloMagic) {
			t.learnPeer(from, string(payload[len(helloMagic):]), conn)
			continue
		}
		t.delivered.Add(1)
		t.bytes.Add(uint64(len(payload)))
		t.links.delivered(from, t.id, len(payload))
		t.handler(from, payload)
	}
}
