package transport

import (
	"math/rand"
)

// Fabric is a deterministic single-threaded network for protocol testing.
// Sends append to a pending pool; Step removes one pending message chosen
// by the seeded scheduler and delivers it synchronously, so every
// interleaving of message arrivals is reachable and reproducible from the
// seed. This is the "protocol scheduler that enforces random interleavings
// of incoming messages" the paper used to validate its implementation (§4).
//
// Fabric is not safe for concurrent use: the scheduler, the handlers it
// invokes, and any client-operation injection must run on one goroutine.
type Fabric struct {
	rng     *rand.Rand
	eps     map[NodeID]Handler
	pending []pendingMsg
	down    map[NodeID]bool
	blocks  map[[2]NodeID]bool
	loss    float64
	dup     float64
	stats   Stats
	links   linkTable
}

type pendingMsg struct {
	from, to NodeID
	payload  []byte
}

// NewFabric creates a deterministic network seeded with seed.
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		rng:    rand.New(rand.NewSource(seed)),
		eps:    make(map[NodeID]Handler),
		down:   make(map[NodeID]bool),
		blocks: make(map[[2]NodeID]bool),
	}
}

// SetLoss drops each delivered message with probability p at Step time.
func (f *Fabric) SetLoss(p float64) { f.loss = p }

// SetDuplication re-enqueues each delivered message with probability p at
// Step time, so it is delivered again later (and may be duplicated again).
// Together with the scheduler's random delivery order this exercises the
// at-least-once message model the protocols must tolerate.
func (f *Fabric) SetDuplication(p float64) { f.dup = p }

// Join registers a node.
func (f *Fabric) Join(id NodeID, h Handler) *FabricConn {
	f.eps[id] = h
	return &FabricConn{fabric: f, id: id}
}

// SetDown marks a node crashed or recovered. Pending messages to a crashed
// node are retained but dropped at delivery time if the node is still down.
func (f *Fabric) SetDown(id NodeID, down bool) { f.down[id] = down }

// Block drops messages from a to b at delivery time until Unblock.
func (f *Fabric) Block(from, to NodeID) { f.blocks[[2]NodeID{from, to}] = true }

// Unblock re-enables the link from a to b.
func (f *Fabric) Unblock(from, to NodeID) { delete(f.blocks, [2]NodeID{from, to}) }

// Pending returns the number of undelivered messages.
func (f *Fabric) Pending() int { return len(f.pending) }

// Step delivers one pending message chosen uniformly at random and returns
// true, or returns false if no messages are pending. Handlers run inline
// and may send further messages, which join the pool.
func (f *Fabric) Step() bool {
	for len(f.pending) > 0 {
		i := f.rng.Intn(len(f.pending))
		msg := f.pending[i]
		last := len(f.pending) - 1
		f.pending[i] = f.pending[last]
		f.pending = f.pending[:last]

		h, ok := f.eps[msg.to]
		if !ok || f.down[msg.to] || f.down[msg.from] || f.blocks[[2]NodeID{msg.from, msg.to}] {
			f.stats.Dropped++
			continue
		}
		if f.loss > 0 && f.rng.Float64() < f.loss {
			f.stats.Dropped++
			continue
		}
		if f.dup > 0 && f.rng.Float64() < f.dup {
			f.pending = append(f.pending, msg)
		}
		f.stats.Delivered++
		f.stats.Bytes += uint64(len(msg.payload))
		f.links.delivered(msg.from, msg.to, len(msg.payload))
		h(msg.from, msg.payload)
		return true
	}
	return false
}

// Run delivers up to maxSteps messages and returns how many were delivered.
// It stops early when the network is quiescent.
func (f *Fabric) Run(maxSteps int) int {
	n := 0
	for n < maxSteps && f.Step() {
		n++
	}
	return n
}

// Drain delivers messages until quiescence (no pending messages). It
// returns the number of delivered messages and gives up after a safety
// bound to keep broken protocols from looping forever.
func (f *Fabric) Drain(bound int) int {
	n := 0
	for n < bound && f.Step() {
		n++
	}
	return n
}

// Stats returns the fabric's counters.
func (f *Fabric) Stats() Stats {
	out := f.stats
	out.Links = f.links.snapshot()
	return out
}

// FabricConn is a node's endpoint into a Fabric.
type FabricConn struct {
	fabric *Fabric
	id     NodeID
}

var _ Conn = (*FabricConn)(nil)

// ID implements Conn.
func (c *FabricConn) ID() NodeID { return c.id }

// Send implements Conn: the message joins the pending pool and is delivered
// by a future Step.
func (c *FabricConn) Send(to NodeID, payload []byte) {
	c.fabric.stats.Sent++
	c.fabric.stats.BytesSent += uint64(len(payload))
	c.fabric.links.sent(c.id, to, len(payload))
	c.fabric.pending = append(c.fabric.pending, pendingMsg{from: c.id, to: to, payload: payload})
}

// Close implements Conn.
func (c *FabricConn) Close() error {
	delete(c.fabric.eps, c.id)
	return nil
}
