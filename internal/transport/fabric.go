package transport

import (
	"math/rand"
	"time"
)

// Fabric is a deterministic single-threaded network for protocol testing.
// Sends append to a pending pool; Step removes one pending message chosen
// by the seeded scheduler and delivers it synchronously, so every
// interleaving of message arrivals is reachable and reproducible from the
// seed. This is the "protocol scheduler that enforces random interleavings
// of incoming messages" the paper used to validate its implementation (§4).
//
// With SetDelay the fabric switches from adversarial random-order delivery
// to latency emulation on a virtual clock: each message is stamped with a
// delivery deadline drawn from the seeded delay window, Step delivers the
// earliest deadline first, and Now advances to that deadline. Virtual time
// makes latency and throughput measurements deterministic functions of the
// seed — independent of wall-clock scheduling and host CPU — which is what
// lets the protocol-shootout figures assert latency bounds in CI.
//
// Fabric is not safe for concurrent use: the scheduler, the handlers it
// invokes, and any client-operation injection must run on one goroutine.
type Fabric struct {
	rng      *rand.Rand
	eps      map[NodeID]Handler
	pending  []pendingMsg
	down     map[NodeID]bool
	blocks   map[[2]NodeID]bool
	loss     float64
	dup      float64
	delayed  bool
	delayMin time.Duration
	delayMax time.Duration
	now      time.Duration
	stats    Stats
	links    linkTable
}

type pendingMsg struct {
	from, to NodeID
	payload  []byte
	at       time.Duration // virtual delivery deadline; meaningful in delay mode only
}

// NewFabric creates a deterministic network seeded with seed.
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		rng:    rand.New(rand.NewSource(seed)),
		eps:    make(map[NodeID]Handler),
		down:   make(map[NodeID]bool),
		blocks: make(map[[2]NodeID]bool),
	}
}

// SetLoss drops each delivered message with probability p at Step time.
func (f *Fabric) SetLoss(p float64) { f.loss = p }

// SetDuplication re-enqueues each delivered message with probability p at
// Step time, so it is delivered again later (and may be duplicated again).
// Together with the scheduler's random delivery order this exercises the
// at-least-once message model the protocols must tolerate.
func (f *Fabric) SetDuplication(p float64) { f.dup = p }

// SetDelay switches the fabric into virtual-time latency emulation: every
// subsequent Send stamps the message with a deadline Now()+d, d drawn
// uniformly from [min, max] by the seeded RNG, and Step delivers messages
// in deadline order, advancing the virtual clock. Duplicated messages draw
// a fresh delay. The legacy random-order mode (no SetDelay call) consumes
// the RNG in exactly the same sequence as before this method existed, so
// recorded exploration seeds keep reproducing.
func (f *Fabric) SetDelay(min, max time.Duration) {
	if max < min {
		min, max = max, min
	}
	f.delayed = true
	f.delayMin, f.delayMax = min, max
}

// Now returns the virtual clock, which starts at zero and advances only in
// delay mode, to each delivered (or dropped) message's deadline.
func (f *Fabric) Now() time.Duration { return f.now }

// AdvanceTo moves the virtual clock forward to t (never backward). Drivers
// use it to account for timer events that fall between message deadlines.
func (f *Fabric) AdvanceTo(t time.Duration) {
	if t > f.now {
		f.now = t
	}
}

// NextDeadline returns the earliest pending delivery deadline. The second
// result is false when no message is pending or the fabric is not in delay
// mode.
func (f *Fabric) NextDeadline() (time.Duration, bool) {
	if !f.delayed || len(f.pending) == 0 {
		return 0, false
	}
	at := f.pending[0].at
	for _, m := range f.pending[1:] {
		if m.at < at {
			at = m.at
		}
	}
	return at, true
}

// drawDelay picks one message's in-flight latency from the delay window.
func (f *Fabric) drawDelay() time.Duration {
	d := f.delayMin
	if jitter := f.delayMax - f.delayMin; jitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(jitter) + 1))
	}
	return d
}

// Join registers a node.
func (f *Fabric) Join(id NodeID, h Handler) *FabricConn {
	f.eps[id] = h
	return &FabricConn{fabric: f, id: id}
}

// SetDown marks a node crashed or recovered. Pending messages to a crashed
// node are retained but dropped at delivery time if the node is still down.
func (f *Fabric) SetDown(id NodeID, down bool) { f.down[id] = down }

// Block drops messages from a to b at delivery time until Unblock.
func (f *Fabric) Block(from, to NodeID) { f.blocks[[2]NodeID{from, to}] = true }

// Unblock re-enables the link from a to b.
func (f *Fabric) Unblock(from, to NodeID) { delete(f.blocks, [2]NodeID{from, to}) }

// Pending returns the number of undelivered messages.
func (f *Fabric) Pending() int { return len(f.pending) }

// Step delivers one pending message and returns true, or returns false if
// no messages are pending. In the legacy mode the message is chosen
// uniformly at random; in delay mode it is the earliest deadline (FIFO on
// ties) and the virtual clock advances to it. Handlers run inline and may
// send further messages, which join the pool.
func (f *Fabric) Step() bool {
	for len(f.pending) > 0 {
		var msg pendingMsg
		if f.delayed {
			i := 0
			for j := 1; j < len(f.pending); j++ {
				if f.pending[j].at < f.pending[i].at {
					i = j
				}
			}
			msg = f.pending[i]
			// Order-preserving removal keeps equal-deadline messages FIFO,
			// so delivery order is a pure function of deadlines and send
			// order, not of pool layout.
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			f.AdvanceTo(msg.at)
		} else {
			i := f.rng.Intn(len(f.pending))
			msg = f.pending[i]
			last := len(f.pending) - 1
			f.pending[i] = f.pending[last]
			f.pending = f.pending[:last]
		}

		h, ok := f.eps[msg.to]
		if !ok || f.down[msg.to] || f.down[msg.from] || f.blocks[[2]NodeID{msg.from, msg.to}] {
			f.stats.Dropped++
			continue
		}
		if f.loss > 0 && f.rng.Float64() < f.loss {
			f.stats.Dropped++
			continue
		}
		if f.dup > 0 && f.rng.Float64() < f.dup {
			if f.delayed {
				msg.at = f.now + f.drawDelay()
			}
			f.pending = append(f.pending, msg)
		}
		f.stats.Delivered++
		f.stats.Bytes += uint64(len(msg.payload))
		f.links.delivered(msg.from, msg.to, len(msg.payload))
		h(msg.from, msg.payload)
		return true
	}
	return false
}

// Run delivers up to maxSteps messages and returns how many were delivered.
// It stops early when the network is quiescent.
func (f *Fabric) Run(maxSteps int) int {
	n := 0
	for n < maxSteps && f.Step() {
		n++
	}
	return n
}

// Drain delivers messages until quiescence (no pending messages). It
// returns the number of delivered messages and gives up after a safety
// bound to keep broken protocols from looping forever.
func (f *Fabric) Drain(bound int) int {
	n := 0
	for n < bound && f.Step() {
		n++
	}
	return n
}

// Stats returns the fabric's counters.
func (f *Fabric) Stats() Stats {
	out := f.stats
	out.Links = f.links.snapshot()
	return out
}

// FabricConn is a node's endpoint into a Fabric.
type FabricConn struct {
	fabric *Fabric
	id     NodeID
}

var _ Conn = (*FabricConn)(nil)

// ID implements Conn.
func (c *FabricConn) ID() NodeID { return c.id }

// Send implements Conn: the message joins the pending pool and is delivered
// by a future Step. In delay mode the deadline is stamped here, at the
// virtual send instant.
func (c *FabricConn) Send(to NodeID, payload []byte) {
	f := c.fabric
	f.stats.Sent++
	f.stats.BytesSent += uint64(len(payload))
	f.links.sent(c.id, to, len(payload))
	msg := pendingMsg{from: c.id, to: to, payload: payload}
	if f.delayed {
		msg.at = f.now + f.drawDelay()
	}
	f.pending = append(f.pending, msg)
}

// Close implements Conn.
func (c *FabricConn) Close() error {
	delete(c.fabric.eps, c.id)
	return nil
}
