package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect accumulates delivered messages behind a mutex so tests can make
// assertions after the transport quiesces.
type collect struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collect) handler(from NodeID, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, string(from)+":"+string(payload))
}

func (c *collect) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestMeshDelivers(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var got collect
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", got.handler)
	for i := 0; i < 10; i++ {
		a.Send("b", []byte(fmt.Sprintf("m%d", i)))
	}
	waitFor(t, func() bool { return got.len() == 10 })
	st := m.Stats()
	if st.Sent != 10 || st.Delivered != 10 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMeshSelfSend(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var got collect
	var a *MeshConn
	a = m.Join("a", got.handler)
	a.Send("a", []byte("loop"))
	waitFor(t, func() bool { return got.len() == 1 })
}

func TestMeshLossDropsSome(t *testing.T) {
	m := NewMesh(WithLoss(0.5), WithSeed(7))
	defer m.Close()
	var delivered atomic.Int64
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", func(NodeID, []byte) { delivered.Add(1) })
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send("b", []byte("x"))
	}
	waitFor(t, func() bool {
		st := m.Stats()
		return st.Delivered+st.Dropped == n
	})
	st := m.Stats()
	if st.Dropped < n/4 || st.Dropped > 3*n/4 {
		t.Fatalf("dropped %d of %d with loss=0.5", st.Dropped, n)
	}
	if int64(st.Delivered) != delivered.Load() {
		t.Fatalf("stats delivered %d != handler count %d", st.Delivered, delivered.Load())
	}
}

func TestMeshDownNodeDropsTraffic(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var got collect
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", got.handler)
	m.SetDown("b", true)
	a.Send("b", []byte("lost"))
	waitFor(t, func() bool { return m.Stats().Dropped == 1 })
	m.SetDown("b", false)
	a.Send("b", []byte("ok"))
	waitFor(t, func() bool { return got.len() == 1 })
}

func TestMeshPartitionAndHeal(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var got collect
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", got.handler)
	m.Join("c", func(NodeID, []byte) {})
	m.Partition([]NodeID{"a"}, []NodeID{"b", "c"})
	a.Send("b", []byte("blocked"))
	waitFor(t, func() bool { return m.Stats().Dropped == 1 })
	m.Heal()
	a.Send("b", []byte("through"))
	waitFor(t, func() bool { return got.len() == 1 })
}

// TestMeshRepartition checks that a second Partition call replaces the
// first split rather than stacking on top of it, that traffic within one
// side flows, and that a node named in no group is unrestricted — the
// semantics the chaos tests lean on when they move the partition line
// between phases.
func TestMeshRepartition(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var gotB, gotC, gotD collect
	a := m.Join("a", func(NodeID, []byte) {})
	b := m.Join("b", gotB.handler)
	m.Join("c", gotC.handler)
	m.Join("d", gotD.handler)

	// First split: {a} | {b, c}; d is in no group and reaches everyone.
	m.Partition([]NodeID{"a"}, []NodeID{"b", "c"})
	a.Send("b", []byte("x")) // across the split: dropped
	waitFor(t, func() bool { return m.Stats().Dropped == 1 })
	b.Send("c", []byte("x")) // within a side: delivered
	waitFor(t, func() bool { return gotC.len() == 1 })
	a.Send("d", []byte("x")) // to an unlisted node: delivered
	waitFor(t, func() bool { return gotD.len() == 1 })

	// Moving the line must unblock a→b and block b→c.
	m.Partition([]NodeID{"a", "b"}, []NodeID{"c"})
	dropped := m.Stats().Dropped
	b.Send("c", []byte("x"))
	waitFor(t, func() bool { return m.Stats().Dropped == dropped+1 })
	a.Send("b", []byte("x"))
	waitFor(t, func() bool { return gotB.len() == 1 })
	if gotC.len() != 1 {
		t.Fatalf("c received %d messages across the moved partition line, want 1", gotC.len())
	}
}

func TestMeshBlockIsDirectional(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var gotA, gotB collect
	a := m.Join("a", gotA.handler)
	b := m.Join("b", gotB.handler)
	m.Block("a", "b")
	a.Send("b", []byte("x")) // dropped
	b.Send("a", []byte("y")) // delivered
	waitFor(t, func() bool { return gotA.len() == 1 })
	if gotB.len() != 0 {
		t.Fatal("blocked direction delivered")
	}
	m.Unblock("a", "b")
	a.Send("b", []byte("x2"))
	waitFor(t, func() bool { return gotB.len() == 1 })
}

func TestMeshDelayReorders(t *testing.T) {
	m := NewMesh(WithDelay(0, 3*time.Millisecond), WithSeed(42))
	defer m.Close()
	var got collect
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", got.handler)
	const n = 200
	for i := 0; i < n; i++ {
		a.Send("b", []byte(fmt.Sprintf("%04d", i)))
	}
	waitFor(t, func() bool { return got.len() == n })
	inOrder := true
	got.mu.Lock()
	for i := 1; i < len(got.msgs); i++ {
		if got.msgs[i] < got.msgs[i-1] {
			inOrder = false
			break
		}
	}
	got.mu.Unlock()
	if inOrder {
		t.Fatal("expected at least one reordering under random delay")
	}
}

func TestMeshDuplication(t *testing.T) {
	m := NewMesh(WithDuplication(1.0), WithSeed(1))
	defer m.Close()
	var got collect
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", got.handler)
	a.Send("b", []byte("dup"))
	waitFor(t, func() bool { return got.len() == 2 })
}

func TestMeshCloseIdempotent(t *testing.T) {
	m := NewMesh()
	c := m.Join("a", func(NodeID, []byte) {})
	m.Close()
	m.Close()
	c.Send("b", []byte("after close")) // must not panic
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMeshSendToUnknownPeer(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	a := m.Join("a", func(NodeID, []byte) {})
	a.Send("ghost", []byte("x"))
	waitFor(t, func() bool { return m.Stats().Dropped == 1 })
}

func TestFabricDeterministicInterleaving(t *testing.T) {
	run := func(seed int64) []string {
		f := NewFabric(seed)
		var log []string
		a := f.Join("a", func(from NodeID, p []byte) { log = append(log, "a<-"+string(p)) })
		f.Join("b", func(from NodeID, p []byte) { log = append(log, "b<-"+string(p)) })
		for i := 0; i < 5; i++ {
			a.Send("b", []byte(fmt.Sprintf("m%d", i)))
		}
		f.Drain(100)
		return log
	}
	first := run(123)
	second := run(123)
	if len(first) != 5 {
		t.Fatalf("delivered %d, want 5", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged: %v vs %v", first, second)
		}
	}
	other := run(456)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("seeds 123 and 456 produced the same order (possible but unlikely)")
	}
}

func TestFabricHandlersCanSend(t *testing.T) {
	f := NewFabric(1)
	var finalGot string
	var b, c *FabricConn
	a := f.Join("a", func(NodeID, []byte) {})
	b = f.Join("b", func(from NodeID, p []byte) { c.Send("c", append([]byte("fwd:"), p...)) })
	_ = b
	c = f.Join("c", func(from NodeID, p []byte) { finalGot = string(p) })
	// Register c's own conn under a separate variable; sending from b's
	// handler uses c's conn (the identity only matters for routing).
	a.Send("b", []byte("x"))
	f.Drain(100)
	if finalGot != "fwd:x" {
		t.Fatalf("got %q", finalGot)
	}
}

func TestFabricDownAndBlocked(t *testing.T) {
	f := NewFabric(9)
	got := 0
	a := f.Join("a", func(NodeID, []byte) {})
	f.Join("b", func(NodeID, []byte) { got++ })
	f.SetDown("b", true)
	a.Send("b", []byte("x"))
	f.Drain(10)
	if got != 0 {
		t.Fatal("delivered to down node")
	}
	f.SetDown("b", false)
	f.Block("a", "b")
	a.Send("b", []byte("x"))
	f.Drain(10)
	if got != 0 {
		t.Fatal("delivered over blocked link")
	}
	f.Unblock("a", "b")
	a.Send("b", []byte("x"))
	f.Drain(10)
	if got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestFabricLoss(t *testing.T) {
	f := NewFabric(4)
	f.SetLoss(1.0)
	got := 0
	a := f.Join("a", func(NodeID, []byte) {})
	f.Join("b", func(NodeID, []byte) { got++ })
	for i := 0; i < 10; i++ {
		a.Send("b", []byte("x"))
	}
	f.Drain(100)
	if got != 0 {
		t.Fatalf("loss=1.0 delivered %d", got)
	}
	if f.Stats().Dropped != 10 {
		t.Fatalf("dropped = %d", f.Stats().Dropped)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var gotB collect
	readyA := make(chan *TCP, 1)
	// Bring up b first on an ephemeral port, then a with b's address.
	b, err := NewTCP("b", "127.0.0.1:0", nil, func(from NodeID, p []byte) {
		gotB.handler(from, p)
		// Reply to a through our own transport.
		tb := <-readyA
		_ = tb // a's transport, to learn its address, is wired below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var gotA collect
	a, err := NewTCP("a", "127.0.0.1:0", map[NodeID]string{"b": b.Addr()}, gotA.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	readyA <- a

	a.Send("b", []byte("ping"))
	waitFor(t, func() bool { return gotB.len() == 1 })
	gotB.mu.Lock()
	msg := gotB.msgs[0]
	gotB.mu.Unlock()
	if msg != "a:ping" {
		t.Fatalf("b received %q", msg)
	}
	st := a.Stats()
	if st.Sent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTCPBidirectional(t *testing.T) {
	var gotA, gotB collect
	b, err := NewTCP("b", "127.0.0.1:0", nil, gotB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", "127.0.0.1:0", map[NodeID]string{"b": b.Addr()}, gotA.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// b learns a's address after a is up (address books can be asymmetric).
	b.AddPeer("a", a.Addr())

	for i := 0; i < 50; i++ {
		a.Send("b", []byte(fmt.Sprintf("to-b-%d", i)))
		b.Send("a", []byte(fmt.Sprintf("to-a-%d", i)))
	}
	waitFor(t, func() bool { return gotA.len() == 50 && gotB.len() == 50 })
}

func TestTCPSelfSend(t *testing.T) {
	var got collect
	a, err := NewTCP("a", "127.0.0.1:0", nil, got.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send("a", []byte("self"))
	waitFor(t, func() bool { return got.len() == 1 })
}

// TestTCPAddPeer: an endpoint constructed without a peer reaches it once
// AddPeer registers the address at runtime — the path a running replica
// takes when a member joins after boot.
func TestTCPAddPeer(t *testing.T) {
	var gotB collect
	b, err := NewTCP("b", "127.0.0.1:0", nil, gotB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", "127.0.0.1:0", nil, gotB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Send("b", []byte("early"))
	if st := a.Stats(); st.Dropped != 1 {
		t.Fatalf("send before AddPeer: stats = %+v, want 1 drop", st)
	}
	a.AddPeer("b", b.Addr())
	a.Send("b", []byte("late"))
	waitFor(t, func() bool { return gotB.len() == 1 })
}

// TestTCPHelloLearnsDialBack: an endpoint whose address book never
// contained a peer learns the dial-back path from the hello frame the
// peer's own dial advertises — the joiner scenario, where a freshly
// admitted member can dial every configured peer but none of them was
// configured with it, so without the hello their replies are dropped
// forever and the joiner's quorums never complete.
func TestTCPHelloLearnsDialBack(t *testing.T) {
	var gotA, gotB collect
	b, err := NewTCP("b", "127.0.0.1:0", nil, gotB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", "127.0.0.1:0", map[NodeID]string{"b": b.Addr()}, gotA.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Send("b", []byte("request"))
	waitFor(t, func() bool { return gotB.len() == 1 })
	// b never ran AddPeer("a", ...): the reply is deliverable only if the
	// hello on a's dial taught b where a listens.
	b.Send("a", []byte("reply"))
	waitFor(t, func() bool { return gotA.len() == 1 })
	if st := b.Stats(); st.Dropped != 0 {
		t.Fatalf("reply was dropped: stats = %+v", st)
	}
}

// TestTCPHelloUnspecifiedHost: a listener bound to an unspecified host
// advertises an undialable address (":port"); the receiver substitutes
// the host the connection actually came from.
func TestTCPHelloUnspecifiedHost(t *testing.T) {
	var gotA, gotB collect
	b, err := NewTCP("b", "127.0.0.1:0", nil, gotB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", ":0", map[NodeID]string{"b": b.Addr()}, gotA.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Send("b", []byte("request"))
	waitFor(t, func() bool { return gotB.len() == 1 })
	b.Send("a", []byte("reply"))
	waitFor(t, func() bool { return gotA.len() == 1 })
}

func TestTCPSendToUnknownPeerDrops(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0", nil, func(NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send("nowhere", []byte("x"))
	if st := a.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTCPPeerCrashDropsThenRecovers(t *testing.T) {
	var gotB atomic.Int64
	b, err := NewTCP("b", "127.0.0.1:0", nil, func(NodeID, []byte) { gotB.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	a, err := NewTCP("a", "127.0.0.1:0", map[NodeID]string{"b": addr}, func(NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Send("b", []byte("one"))
	waitFor(t, func() bool { return gotB.Load() == 1 })
	b.Close()

	// Sends while b is down are eventually detected and dropped (the first
	// write after a close may appear to succeed due to kernel buffering).
	waitFor(t, func() bool {
		a.Send("b", []byte("void"))
		return a.Stats().Dropped > 0
	})

	// b restarts on the same address; a redials lazily and delivery resumes.
	b2, err := NewTCP("b", addr, nil, func(NodeID, []byte) { gotB.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	waitFor(t, func() bool {
		a.Send("b", []byte("again"))
		return gotB.Load() >= 2
	})
}

// --- per-link byte accounting, one test per substrate ---

func TestMeshByteStatsPerLink(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	var got collect
	a := m.Join("a", func(NodeID, []byte) {})
	b := m.Join("b", got.handler)
	a.Send("b", make([]byte, 100))
	a.Send("b", make([]byte, 50))
	b.Send("a", make([]byte, 7))
	waitFor(t, func() bool { st := m.Stats(); return st.Delivered == 3 })
	st := m.Stats()
	if st.BytesSent != 157 || st.Bytes != 157 {
		t.Fatalf("bytes sent/delivered = %d/%d, want 157/157", st.BytesSent, st.Bytes)
	}
	ab := st.Links[Link{From: "a", To: "b"}]
	if ab.Sent != 2 || ab.BytesSent != 150 || ab.Delivered != 2 || ab.BytesDelivered != 150 {
		t.Fatalf("a→b link = %+v", ab)
	}
	ba := st.Links[Link{From: "b", To: "a"}]
	if ba.Sent != 1 || ba.BytesSent != 7 || ba.BytesDelivered != 7 {
		t.Fatalf("b→a link = %+v", ba)
	}
}

func TestMeshByteStatsCountSendOnDrop(t *testing.T) {
	m := NewMesh()
	defer m.Close()
	a := m.Join("a", func(NodeID, []byte) {})
	m.Join("b", func(NodeID, []byte) {})
	m.SetDown("b", true)
	a.Send("b", make([]byte, 64))
	waitFor(t, func() bool { return m.Stats().Dropped == 1 })
	st := m.Stats()
	if st.BytesSent != 64 || st.Bytes != 0 {
		t.Fatalf("bytes sent/delivered = %d/%d, want 64/0", st.BytesSent, st.Bytes)
	}
	l := st.Links[Link{From: "a", To: "b"}]
	if l.BytesSent != 64 || l.BytesDelivered != 0 {
		t.Fatalf("a→b link = %+v", l)
	}
}

func TestFabricByteStatsPerLink(t *testing.T) {
	f := NewFabric(3)
	a := f.Join("a", func(NodeID, []byte) {})
	b := f.Join("b", func(NodeID, []byte) {})
	a.Send("b", make([]byte, 20))
	b.Send("a", make([]byte, 5))
	f.Drain(10)
	st := f.Stats()
	if st.BytesSent != 25 || st.Bytes != 25 {
		t.Fatalf("bytes sent/delivered = %d/%d, want 25/25", st.BytesSent, st.Bytes)
	}
	ab := st.Links[Link{From: "a", To: "b"}]
	if ab.Sent != 1 || ab.BytesSent != 20 || ab.Delivered != 1 || ab.BytesDelivered != 20 {
		t.Fatalf("a→b link = %+v", ab)
	}
}

func TestFabricDuplication(t *testing.T) {
	f := NewFabric(11)
	f.SetDuplication(0.5)
	got := 0
	a := f.Join("a", func(NodeID, []byte) {})
	f.Join("b", func(NodeID, []byte) { got++ })
	const n = 200
	for i := 0; i < n; i++ {
		a.Send("b", []byte("x"))
	}
	f.Drain(10 * n)
	if got <= n || got >= 3*n {
		t.Fatalf("delivered %d of %d sends with dup=0.5, want strictly more than sent", got, n)
	}
	if int(f.Stats().Delivered) != got {
		t.Fatalf("stats delivered %d != handler count %d", f.Stats().Delivered, got)
	}
}

func TestFabricDuplicationDeterministic(t *testing.T) {
	run := func() uint64 {
		f := NewFabric(21)
		f.SetDuplication(0.3)
		a := f.Join("a", func(NodeID, []byte) {})
		f.Join("b", func(NodeID, []byte) {})
		for i := 0; i < 100; i++ {
			a.Send("b", []byte("x"))
		}
		f.Drain(10000)
		return f.Stats().Delivered
	}
	if first, second := run(), run(); first != second {
		t.Fatalf("same seed diverged under duplication: %d vs %d", first, second)
	}
}

func TestTCPByteStatsPerLink(t *testing.T) {
	var gotB collect
	b, err := NewTCP("b", "127.0.0.1:0", nil, gotB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", "127.0.0.1:0", map[NodeID]string{"b": b.Addr()}, func(NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send("b", make([]byte, 40))
	a.Send("b", make([]byte, 2))
	waitFor(t, func() bool { return gotB.len() == 2 })

	sa := a.Stats()
	if sa.BytesSent != 42 {
		t.Fatalf("a bytes sent = %d, want 42", sa.BytesSent)
	}
	if l := sa.Links[Link{From: "a", To: "b"}]; l.Sent != 2 || l.BytesSent != 42 {
		t.Fatalf("a's a→b link = %+v", l)
	}
	sb := b.Stats()
	if sb.Bytes != 42 {
		t.Fatalf("b bytes delivered = %d, want 42", sb.Bytes)
	}
	if l := sb.Links[Link{From: "a", To: "b"}]; l.Delivered != 2 || l.BytesDelivered != 42 {
		t.Fatalf("b's a→b link = %+v", l)
	}

	// Loopback counts on both sides of the same endpoint.
	a.Send("a", make([]byte, 9))
	waitFor(t, func() bool { return a.Stats().Delivered == 1 })
	if l := a.Stats().Links[Link{From: "a", To: "a"}]; l.BytesSent != 9 || l.BytesDelivered != 9 {
		t.Fatalf("loopback link = %+v", l)
	}
}

func TestFabricDelayOrdersByDeadline(t *testing.T) {
	f := NewFabric(7)
	f.SetDelay(time.Millisecond, time.Millisecond) // fixed latency: FIFO
	var log []string
	a := f.Join("a", func(from NodeID, p []byte) { log = append(log, string(p)) })
	f.Join("b", func(NodeID, []byte) {})
	for i := 0; i < 5; i++ {
		a.Send("a", []byte(fmt.Sprintf("m%d", i)))
	}
	if at, ok := f.NextDeadline(); !ok || at != time.Millisecond {
		t.Fatalf("NextDeadline = %v, %v", at, ok)
	}
	f.Drain(100)
	for i, got := range log {
		if want := fmt.Sprintf("m%d", i); got != want {
			t.Fatalf("fixed-latency delivery reordered: %v", log)
		}
	}
	if f.Now() != time.Millisecond {
		t.Fatalf("virtual clock = %v, want 1ms", f.Now())
	}

	// A message sent at Now() is stamped relative to the advanced clock.
	a.Send("a", []byte("late"))
	if at, ok := f.NextDeadline(); !ok || at != 2*time.Millisecond {
		t.Fatalf("NextDeadline after advance = %v, %v", at, ok)
	}
}

func TestFabricDelayDeterministicAndJittered(t *testing.T) {
	run := func(seed int64) ([]string, time.Duration) {
		f := NewFabric(seed)
		f.SetDelay(500*time.Microsecond, 4*time.Millisecond)
		var log []string
		a := f.Join("a", func(from NodeID, p []byte) { log = append(log, string(p)) })
		f.Join("b", func(NodeID, []byte) {})
		for i := 0; i < 20; i++ {
			a.Send("a", []byte(fmt.Sprintf("m%d", i)))
		}
		f.Drain(100)
		return log, f.Now()
	}
	log1, now1 := run(42)
	log2, now2 := run(42)
	if len(log1) != 20 || now1 != now2 {
		t.Fatalf("same seed diverged: %d delivered, now %v vs %v", len(log1), now1, now2)
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("same seed diverged: %v vs %v", log1, log2)
		}
	}
	reordered := false
	for i, got := range log1 {
		if got != fmt.Sprintf("m%d", i) {
			reordered = true
		}
	}
	if !reordered {
		t.Log("jittered window delivered in send order (possible but unlikely)")
	}
	if now1 > 4*time.Millisecond || now1 < 500*time.Microsecond {
		t.Fatalf("clock %v outside the delay window", now1)
	}
}

func TestFabricAdvanceToMonotone(t *testing.T) {
	f := NewFabric(1)
	if _, ok := f.NextDeadline(); ok {
		t.Fatal("legacy mode reported a deadline")
	}
	f.SetDelay(time.Millisecond, time.Millisecond)
	f.AdvanceTo(3 * time.Millisecond)
	if f.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v", f.Now())
	}
	f.AdvanceTo(time.Millisecond) // never backward
	if f.Now() != 3*time.Millisecond {
		t.Fatalf("clock moved backward to %v", f.Now())
	}
}

func TestFabricDelayDuplicationDrawsFreshDeadline(t *testing.T) {
	f := NewFabric(3)
	f.SetDelay(time.Millisecond, time.Millisecond)
	f.SetDuplication(1.0)
	got := 0
	a := f.Join("a", func(NodeID, []byte) { got++ })
	a.Send("a", []byte("x"))
	if !f.Step() {
		t.Fatal("no step")
	}
	f.SetDuplication(0)
	if !f.Step() {
		t.Fatal("duplicate was not re-enqueued")
	}
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	if f.Now() != 2*time.Millisecond {
		t.Fatalf("duplicate kept the old deadline: clock %v, want 2ms", f.Now())
	}
}
