// Package transport provides the message-passing substrates the replication
// protocols run on, matching the paper's system model (§2.1): asynchronous
// processes exchanging unreliable messages that may be delayed, reordered,
// or lost.
//
// Three implementations share one interface:
//
//   - Mesh: an in-process asynchronous network of goroutine endpoints with
//     seeded, configurable delay, loss, duplication, link blocking, and node
//     crash, used by the benchmark harness and integration tests.
//   - Fabric: a single-threaded deterministic network whose message
//     delivery order is driven by a seeded scheduler, used by the
//     protocol-interleaving checker (the paper tested correctness with "a
//     protocol scheduler that enforces random interleavings of incoming
//     messages", §4).
//   - TCP: a length-prefixed framing transport over net.Conn for
//     multi-process deployments.
package transport

import "errors"

// NodeID identifies a process in the system Π = {p1, ..., pN}.
type NodeID string

// Handler processes one inbound message. Implementations must be safe for
// the delivery discipline of the transport that invokes them: Mesh and TCP
// call the handler from exactly one delivery goroutine per endpoint (serial
// processes, as the paper assumes); Fabric calls it from the scheduler's
// goroutine.
type Handler func(from NodeID, payload []byte)

// Conn is a node's endpoint into a transport.
type Conn interface {
	// ID returns the local node ID.
	ID() NodeID
	// Send transmits payload to the named peer. Delivery is best-effort:
	// the message may be delayed, reordered, duplicated, or silently
	// dropped, per the system model. Send never blocks on the receiver.
	Send(to NodeID, payload []byte)
	// Close detaches the endpoint. Pending inbound messages are discarded.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Stats aggregates transport-level counters, used by the evaluation to
// report message and byte overhead.
type Stats struct {
	Sent      uint64 // messages submitted to Send
	Delivered uint64 // messages handed to handlers
	Dropped   uint64 // messages lost (loss model, overflow, or down node)
	Bytes     uint64 // payload bytes delivered
}
