package transport

import "errors"

// NodeID identifies a process in the system Π = {p1, ..., pN}.
type NodeID string

// Handler processes one inbound message. Implementations must be safe for
// the delivery discipline of the transport that invokes them: Mesh and TCP
// call the handler from exactly one delivery goroutine per endpoint (serial
// processes, as the paper assumes); Fabric calls it from the scheduler's
// goroutine.
type Handler func(from NodeID, payload []byte)

// Conn is a node's endpoint into a transport.
type Conn interface {
	// ID returns the local node ID.
	ID() NodeID
	// Send transmits payload to the named peer. Delivery is best-effort:
	// the message may be delayed, reordered, duplicated, or silently
	// dropped, per the system model. Send never blocks on the receiver.
	Send(to NodeID, payload []byte)
	// Close detaches the endpoint. Pending inbound messages are discarded.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Stats aggregates transport-level counters, used by the evaluation to
// report message and byte overhead.
type Stats struct {
	Sent      uint64 // messages submitted to Send
	Delivered uint64 // messages handed to handlers
	Dropped   uint64 // messages lost (loss model, overflow, or down node)
	Bytes     uint64 // payload bytes delivered
}
