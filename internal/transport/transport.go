package transport

import (
	"errors"
	"sync"
	"sync/atomic"
)

// NodeID identifies a process in the system Π = {p1, ..., pN}.
type NodeID string

// Handler processes one inbound message. Implementations must be safe for
// the delivery discipline of the transport that invokes them: Mesh and TCP
// call the handler from exactly one delivery goroutine per endpoint (serial
// processes, as the paper assumes); Fabric calls it from the scheduler's
// goroutine.
type Handler func(from NodeID, payload []byte)

// Conn is a node's endpoint into a transport.
type Conn interface {
	// ID returns the local node ID.
	ID() NodeID
	// Send transmits payload to the named peer. Delivery is best-effort:
	// the message may be delayed, reordered, duplicated, or silently
	// dropped, per the system model. Send never blocks on the receiver.
	Send(to NodeID, payload []byte)
	// Close detaches the endpoint. Pending inbound messages are discarded.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Stats aggregates transport-level counters, used by the evaluation to
// report message and byte overhead. All three substrates (Mesh, Fabric,
// TCP) fill every field, so byte-level comparisons — e.g. the state
// transfer modes of bench -figure bytes — read identically everywhere.
type Stats struct {
	Sent      uint64 // messages submitted to Send
	Delivered uint64 // messages handed to handlers
	Dropped   uint64 // messages lost (loss model, overflow, or down node)
	Bytes     uint64 // payload bytes delivered
	BytesSent uint64 // payload bytes submitted to Send (incl. later drops)

	// Links breaks traffic down per directed link. The map is a snapshot;
	// a TCP endpoint reports only links it terminates (from == local ID
	// for sent, to == local ID for delivered), while Mesh and Fabric see
	// every link.
	Links map[Link]LinkStats
}

// Link is one directed sender→receiver pair.
type Link struct {
	From, To NodeID
}

// LinkStats counts one directed link's traffic.
type LinkStats struct {
	Sent           uint64 // messages submitted
	Delivered      uint64 // messages handed to the receiving handler
	BytesSent      uint64 // payload bytes submitted
	BytesDelivered uint64 // payload bytes delivered
}

// linkTable is the shared per-link accumulator behind every substrate's
// Stats. The link set is small and stabilizes immediately (it is the
// membership squared at most), so a sync.Map keeps the steady-state send
// and delivery paths lock-free — one read-only map hit plus atomic adds,
// preserving the contention profile the throughput figures had before
// per-link accounting existed.
type linkTable struct {
	m sync.Map // Link -> *linkCounters
}

type linkCounters struct {
	sent, delivered, bytesSent, bytesDelivered atomic.Uint64
}

func (t *linkTable) get(l Link) *linkCounters {
	if c, ok := t.m.Load(l); ok {
		return c.(*linkCounters)
	}
	c, _ := t.m.LoadOrStore(l, &linkCounters{})
	return c.(*linkCounters)
}

func (t *linkTable) sent(from, to NodeID, n int) {
	c := t.get(Link{From: from, To: to})
	c.sent.Add(1)
	c.bytesSent.Add(uint64(n))
}

func (t *linkTable) delivered(from, to NodeID, n int) {
	c := t.get(Link{From: from, To: to})
	c.delivered.Add(1)
	c.bytesDelivered.Add(uint64(n))
}

// snapshot copies the table for a Stats result.
func (t *linkTable) snapshot() map[Link]LinkStats {
	out := make(map[Link]LinkStats)
	t.m.Range(func(k, v any) bool {
		c := v.(*linkCounters)
		out[k.(Link)] = LinkStats{
			Sent:           c.sent.Load(),
			Delivered:      c.delivered.Load(),
			BytesSent:      c.bytesSent.Load(),
			BytesDelivered: c.bytesDelivered.Load(),
		}
		return true
	})
	return out
}
