package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is a cancellable pending callback, mirroring time.Timer's AfterFunc
// form.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// Clock supplies the current time and one-shot timers.
type Clock interface {
	Now() time.Time
	AfterFunc(d time.Duration, f func()) Timer
}

// Real returns the wall clock backed by package time.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return time.AfterFunc(d, f)
}

var _ Clock = realClock{}

// Sim is a deterministic simulated clock. Time only moves when Advance is
// called; due timers fire synchronously inside Advance in timestamp order
// (ties broken by scheduling order), on the caller's goroutine.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers simTimerHeap
}

var _ Clock = (*Sim)(nil)

// NewSim returns a simulated clock starting at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{clock: s, when: s.now.Add(d), seq: s.seq, f: f}
	s.seq++
	heap.Push(&s.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every timer due at or before
// the new time in order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for {
		if len(s.timers) == 0 || s.timers[0].when.After(target) {
			break
		}
		t := heap.Pop(&s.timers).(*simTimer)
		if t.stopped {
			continue
		}
		// Fire with the clock set to the timer's due time and the lock
		// released, so callbacks can schedule new timers.
		s.now = t.when
		s.mu.Unlock()
		t.f()
		s.mu.Lock()
	}
	s.now = target
	s.mu.Unlock()
}

// PendingTimers returns the number of scheduled, unfired, unstopped timers.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

type simTimer struct {
	clock   *Sim
	when    time.Time
	seq     uint64
	f       func()
	stopped bool
	index   int
}

func (t *simTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

type simTimerHeap []*simTimer

func (h simTimerHeap) Len() int { return len(h) }

func (h simTimerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h simTimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *simTimerHeap) Push(x any) {
	t := x.(*simTimer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *simTimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
