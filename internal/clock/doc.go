// Package clock abstracts time for the replication protocols so the same
// protocol code runs against the wall clock in production and against a
// manually advanced simulated clock in deterministic tests.
package clock
