package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSimAdvanceFiresInOrder(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var order []int
	s.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	s.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	s.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })

	s.Advance(15 * time.Millisecond)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after 15ms fired %v, want [1]", order)
	}
	s.Advance(100 * time.Millisecond)
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", order)
	}
	if got := s.Now(); !got.Equal(time.Unix(0, 0).Add(115 * time.Millisecond)) {
		t.Fatalf("Now = %v", got)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	fired := false
	timer := s.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if got := s.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d, want 0", got)
	}
}

func TestSimTimerReschedulesFromCallback(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var fires int
	var schedule func()
	schedule = func() {
		s.AfterFunc(10*time.Millisecond, func() {
			fires++
			if fires < 3 {
				schedule()
			}
		})
	}
	schedule()
	s.Advance(100 * time.Millisecond)
	if fires != 3 {
		t.Fatalf("fires = %d, want 3", fires)
	}
}

func TestSimSameDeadlineFIFO(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	s.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestSimCallbackSeesDueTime(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var at time.Time
	s.AfterFunc(25*time.Millisecond, func() { at = s.Now() })
	s.Advance(time.Second)
	if want := time.Unix(0, 0).Add(25 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw Now=%v, want %v", at, want)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := Real()
	var fired atomic.Bool
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() {
		fired.Store(true)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if !fired.Load() {
		t.Fatal("flag not set")
	}
	if c.Now().IsZero() {
		t.Fatal("real Now is zero")
	}
}
