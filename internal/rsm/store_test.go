package rsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// allOpcodeCommands is one command per opcode, covering every encoder.
func allOpcodeCommands() [][]byte {
	return [][]byte{
		EncodeInc(7),
		EncodeInc(-3),
		EncodeRead(),
		EncodeNoop(),
		EncodeIncKey("c0", 5),
		EncodeIncKey("c1", -2),
		EncodeReadKey("c0"),
		EncodeReadKey("missing"),
		EncodeAddKey("s0", "apple"),
		EncodeAddKey("s0", "pear"),
		EncodeAddKey("s1", "apple"),
		EncodeCardKey("s0"),
		EncodeCardKey("missing"),
	}
}

func TestStoreApplyKeyedOps(t *testing.T) {
	s := NewStore()
	s.Apply(EncodeIncKey("c0", 5))
	s.Apply(EncodeIncKey("c0", -2))
	s.Apply(EncodeIncKey("c1", 10))
	if got, err := DecodeValue(s.Apply(EncodeReadKey("c0"))); err != nil || got != 3 {
		t.Fatalf("read c0 = %d, %v", got, err)
	}
	if got := s.CounterValue("c1"); got != 10 {
		t.Fatalf("c1 = %d", got)
	}
	s.Apply(EncodeAddKey("s0", "apple"))
	s.Apply(EncodeAddKey("s0", "apple")) // idempotent
	s.Apply(EncodeAddKey("s0", "pear"))
	if got, err := DecodeValue(s.Apply(EncodeCardKey("s0"))); err != nil || got != 2 {
		t.Fatalf("card s0 = %d, %v", got, err)
	}
	// Plain counter opcodes act on the empty key.
	s.Apply(EncodeInc(4))
	if got, err := DecodeValue(s.Apply(EncodeRead())); err != nil || got != 4 {
		t.Fatalf("read \"\" = %d, %v", got, err)
	}
}

// TestStoreApplyDeterminism replays a seeded random command stream into
// two stores and requires identical results and byte-equal snapshots at
// every step — the core contract a replicated state machine owes the log.
func TestStoreApplyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cmds := make([][]byte, 300)
	for i := range cmds {
		key := fmt.Sprintf("k%d", rng.Intn(4))
		switch rng.Intn(6) {
		case 0:
			cmds[i] = EncodeIncKey(key, int64(rng.Intn(20)-10))
		case 1:
			cmds[i] = EncodeReadKey(key)
		case 2:
			cmds[i] = EncodeAddKey(key, fmt.Sprintf("e%d", rng.Intn(8)))
		case 3:
			cmds[i] = EncodeCardKey(key)
		case 4:
			cmds[i] = EncodeInc(int64(rng.Intn(5)))
		default:
			b := make([]byte, rng.Intn(6))
			rng.Read(b)
			cmds[i] = b // garbage must be a deterministic no-op
		}
	}
	a, b := NewStore(), NewStore()
	for i, cmd := range cmds {
		ra, rb := a.Apply(cmd), b.Apply(cmd)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("cmd %d: results diverged: %x vs %x", i, ra, rb)
		}
		if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
			t.Fatalf("cmd %d: snapshots diverged", i)
		}
	}
}

// TestStoreSnapshotRestoreAllOpcodes round-trips a state built from every
// opcode and checks the restored store answers reads identically and
// re-snapshots byte-equal (the snapshot encoding is canonical).
func TestStoreSnapshotRestoreAllOpcodes(t *testing.T) {
	s := NewStore()
	for _, cmd := range allOpcodeCommands() {
		s.Apply(cmd)
	}
	snap := s.Snapshot()

	r := NewStore()
	r.Apply(EncodeIncKey("junk", 99)) // restore must replace, not merge
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Snapshot(), snap) {
		t.Fatal("restored snapshot is not byte-equal")
	}
	for _, key := range []string{"", "c0", "c1", "junk"} {
		if r.CounterValue(key) != s.CounterValue(key) {
			t.Fatalf("counter %q: %d vs %d", key, r.CounterValue(key), s.CounterValue(key))
		}
	}
	for _, key := range []string{"s0", "s1"} {
		if r.Card(key) != s.Card(key) {
			t.Fatalf("set %q: %d vs %d", key, r.Card(key), s.Card(key))
		}
	}
}

func TestStoreRestoreRejectsGarbage(t *testing.T) {
	s := NewStore()
	s.Apply(EncodeIncKey("keep", 1))
	for _, bad := range [][]byte{{0xff}, []byte("nonsense"), bytes.Repeat([]byte{0x01}, 3)} {
		if err := s.Restore(bad); err == nil {
			t.Fatalf("Restore(%x) accepted garbage", bad)
		}
	}
	if s.CounterValue("keep") != 1 {
		t.Fatal("failed restore corrupted the state")
	}
}

func TestDecodeCommandRoundTrip(t *testing.T) {
	for _, cmd := range allOpcodeCommands() {
		c, err := DecodeCommand(cmd)
		if err != nil {
			t.Fatalf("DecodeCommand(%x): %v", cmd, err)
		}
		if !bytes.Equal(c.Encode(), cmd) {
			t.Fatalf("re-encode mismatch: %x vs %x", c.Encode(), cmd)
		}
	}
	for _, bad := range [][]byte{nil, {}, {0}, {99}, append(EncodeRead(), 0x01), EncodeIncKey("k", 1)[:3]} {
		if _, err := DecodeCommand(bad); err == nil {
			t.Fatalf("DecodeCommand(%x) accepted a bad command", bad)
		}
	}
}

func TestRecorderLogsAppliedSequence(t *testing.T) {
	rec := NewRecorder(NewStore())
	cmds := [][]byte{EncodeIncKey("c0", 1), EncodeReadKey("c0"), EncodeNoop()}
	for _, cmd := range cmds {
		rec.Apply(cmd)
	}
	log := rec.Log()
	if len(log) != len(cmds) {
		t.Fatalf("log length %d, want %d", len(log), len(cmds))
	}
	for i := range cmds {
		if log[i] != string(cmds[i]) {
			t.Fatalf("log[%d] = %x, want %x", i, log[i], cmds[i])
		}
	}
	// Snapshot/Restore delegate to the inner machine.
	snap := rec.Snapshot()
	other := NewStore()
	if err := other.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if other.CounterValue("c0") != 1 {
		t.Fatalf("snapshot did not delegate: c0 = %d", other.CounterValue("c0"))
	}
}

// FuzzDecodeCommand: the decoder must never panic, must round-trip every
// command it accepts, and Apply of arbitrary bytes must stay deterministic
// across two fresh stores. Seed corpus committed under testdata/fuzz.
func FuzzDecodeCommand(f *testing.F) {
	for _, cmd := range allOpcodeCommands() {
		f.Add(cmd)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Byte-equality is too strong here: varints admit non-minimal
		// encodings. The invariant is semantic — re-encoding an accepted
		// command decodes to the same command.
		c, err := DecodeCommand(data)
		if err == nil {
			c2, err2 := DecodeCommand(c.Encode())
			if err2 != nil || c2 != c {
				t.Fatalf("round-trip mismatch: %x -> %+v -> %x (%v)", data, c, c.Encode(), err2)
			}
		}
		a, b := NewStore(), NewStore()
		if ra, rb := a.Apply(data), b.Apply(data); !bytes.Equal(ra, rb) {
			t.Fatalf("Apply nondeterministic: %x vs %x", ra, rb)
		}
		if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
			t.Fatal("Apply left diverged states")
		}
	})
}
