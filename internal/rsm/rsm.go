package rsm

import (
	"fmt"
	"sync"

	"crdtsmr/internal/wire"
)

// StateMachine is the deterministic state machine replicated by a
// log-based protocol. Commands and results are opaque bytes; Apply must be
// deterministic. Snapshot/Restore support log compaction.
type StateMachine interface {
	Apply(cmd []byte) []byte
	Snapshot() []byte
	Restore(snapshot []byte) error
}

// Counter command opcodes.
const (
	opInc byte = iota + 1
	opRead
	opNoop
)

// EncodeInc builds an increment-by-delta command.
func EncodeInc(delta int64) []byte {
	w := wire.NewWriter(10)
	w.Byte(opInc)
	w.Varint(delta)
	return w.Bytes()
}

// EncodeRead builds a read command. The paper's Raft baseline appends
// consistent reads to the command log; the read's result is the counter
// value at its position in the log.
func EncodeRead() []byte { return []byte{opRead} }

// EncodeNoop builds a no-op command (used by leaders to commit entries
// from previous terms and to keep heartbeats uniform).
func EncodeNoop() []byte { return []byte{opNoop} }

// DecodeValue parses the result of a read command.
func DecodeValue(result []byte) (int64, error) {
	r := wire.NewReader(result)
	v := r.Varint()
	if err := r.Done(); err != nil {
		return 0, fmt.Errorf("rsm: bad read result: %w", err)
	}
	return v, nil
}

// Counter is the replicated integer state machine. It is safe for
// concurrent use; the log-based protocols apply from a single goroutine
// but tests and metrics may read concurrently.
type Counter struct {
	mu sync.Mutex
	v  int64
}

var _ StateMachine = (*Counter)(nil)

// NewCounter returns a counter at zero.
func NewCounter() *Counter { return &Counter{} }

// Value returns the current value.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Apply implements StateMachine.
func (c *Counter) Apply(cmd []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(cmd) == 0 {
		return nil
	}
	r := wire.NewReader(cmd)
	switch r.Byte() {
	case opInc:
		c.v += r.Varint()
		return nil
	case opRead:
		w := wire.NewWriter(10)
		w.Varint(c.v)
		return w.Bytes()
	default: // opNoop and unknown commands do nothing
		return nil
	}
}

// Snapshot implements StateMachine.
func (c *Counter) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.NewWriter(10)
	w.Varint(c.v)
	return w.Bytes()
}

// Restore implements StateMachine.
func (c *Counter) Restore(snapshot []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := wire.NewReader(snapshot)
	v := r.Varint()
	if err := r.Done(); err != nil {
		return fmt.Errorf("rsm: bad snapshot: %w", err)
	}
	c.v = v
	return nil
}
