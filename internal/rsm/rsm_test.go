package rsm

import (
	"testing"
	"testing/quick"
)

func TestCounterApplyIncAndRead(t *testing.T) {
	c := NewCounter()
	if res := c.Apply(EncodeInc(5)); res != nil {
		t.Fatalf("inc returned %v", res)
	}
	c.Apply(EncodeInc(-2))
	v, err := DecodeValue(c.Apply(EncodeRead()))
	if err != nil || v != 3 {
		t.Fatalf("read = %d, %v; want 3", v, err)
	}
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d", got)
	}
}

func TestCounterNoopAndGarbage(t *testing.T) {
	c := NewCounter()
	c.Apply(EncodeNoop())
	c.Apply(nil)
	c.Apply([]byte{0xFF, 1, 2})
	if got := c.Value(); got != 0 {
		t.Fatalf("noop/garbage changed value to %d", got)
	}
}

func TestCounterSnapshotRestore(t *testing.T) {
	c := NewCounter()
	c.Apply(EncodeInc(42))
	snap := c.Snapshot()

	fresh := NewCounter()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Value(); got != 42 {
		t.Fatalf("restored value = %d, want 42", got)
	}
	if err := fresh.Restore([]byte{}); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if err := fresh.Restore([]byte{0x80}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestDecodeValueRejectsGarbage(t *testing.T) {
	if _, err := DecodeValue(nil); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := DecodeValue([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestQuickCounterSumsDeltas(t *testing.T) {
	f := func(deltas []int16) bool {
		c := NewCounter()
		var want int64
		for _, d := range deltas {
			c.Apply(EncodeInc(int64(d)))
			want += int64(d)
		}
		v, err := DecodeValue(c.Apply(EncodeRead()))
		return err == nil && v == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		c := NewCounter()
		c.Apply(EncodeInc(v))
		fresh := NewCounter()
		if err := fresh.Restore(c.Snapshot()); err != nil {
			return false
		}
		return fresh.Value() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
