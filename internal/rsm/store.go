package rsm

import (
	"fmt"
	"sort"
	"sync"

	"crdtsmr/internal/wire"
)

// Keyed command opcodes, extending the plain counter opcodes. The protocol
// shootout drives every log-based baseline through one Store holding named
// counters and named sets, so all protocols replicate the same workload.
const (
	opIncKey  byte = 4 // key, varint delta
	opReadKey byte = 5 // key
	opAddKey  byte = 6 // key, element
	opCardKey byte = 7 // key
)

// Command is the decoded form of a state-machine command. Op is one of the
// package opcodes; Key/Elem/Delta are filled per opcode.
type Command struct {
	Op    byte
	Key   string
	Elem  string
	Delta int64
}

// DecodeCommand parses an encoded command strictly: trailing bytes or a
// truncated field are errors. Apply implementations treat undecodable
// commands as no-ops, so a bad command can never diverge replicas.
func DecodeCommand(cmd []byte) (Command, error) {
	if len(cmd) == 0 {
		return Command{}, fmt.Errorf("rsm: empty command")
	}
	r := wire.NewReader(cmd)
	c := Command{Op: r.Byte()}
	switch c.Op {
	case opInc:
		c.Delta = r.Varint()
	case opRead, opNoop:
	case opIncKey:
		c.Key = r.Str()
		c.Delta = r.Varint()
	case opReadKey, opCardKey:
		c.Key = r.Str()
	case opAddKey:
		c.Key = r.Str()
		c.Elem = r.Str()
	default:
		return Command{}, fmt.Errorf("rsm: unknown opcode %d", c.Op)
	}
	if err := r.Done(); err != nil {
		return Command{}, fmt.Errorf("rsm: bad command: %w", err)
	}
	return c, nil
}

// IsRead reports whether the command is effect-free (a read). Reads may be
// served outside the log (e.g. from a leader lease), so replica applied
// logs are only comparable after filtering them out.
func (c Command) IsRead() bool {
	return c.Op == opRead || c.Op == opReadKey || c.Op == opCardKey
}

// Encode is the inverse of DecodeCommand.
func (c Command) Encode() []byte {
	w := wire.NewWriter(2 + len(c.Key) + len(c.Elem) + 10)
	w.Byte(c.Op)
	switch c.Op {
	case opInc:
		w.Varint(c.Delta)
	case opIncKey:
		w.Str(c.Key)
		w.Varint(c.Delta)
	case opReadKey, opCardKey:
		w.Str(c.Key)
	case opAddKey:
		w.Str(c.Key)
		w.Str(c.Elem)
	}
	return w.Bytes()
}

// EncodeIncKey builds an increment command against a named counter.
func EncodeIncKey(key string, delta int64) []byte {
	return Command{Op: opIncKey, Key: key, Delta: delta}.Encode()
}

// EncodeReadKey builds a read command against a named counter. Like
// EncodeRead, the read rides the log so its result is linearizable.
func EncodeReadKey(key string) []byte {
	return Command{Op: opReadKey, Key: key}.Encode()
}

// EncodeAddKey builds an add-element command against a named set.
func EncodeAddKey(key, elem string) []byte {
	return Command{Op: opAddKey, Key: key, Elem: elem}.Encode()
}

// EncodeCardKey builds a cardinality read against a named set.
func EncodeCardKey(key string) []byte {
	return Command{Op: opCardKey, Key: key}.Encode()
}

// Store is the keyed replicated state machine: named int64 counters plus
// named string sets. It also accepts the plain Counter opcodes, which act
// on the counter with the empty key. Like Counter it is safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	counters map[string]int64
	sets     map[string]map[string]struct{}
}

var _ StateMachine = (*Store)(nil)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		counters: make(map[string]int64),
		sets:     make(map[string]map[string]struct{}),
	}
}

// CounterValue returns the named counter (zero if absent).
func (s *Store) CounterValue(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// Card returns the named set's cardinality (zero if absent).
func (s *Store) Card(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sets[key])
}

// Apply implements StateMachine. Undecodable commands are deterministic
// no-ops with a nil result.
func (s *Store) Apply(cmd []byte) []byte {
	c, err := DecodeCommand(cmd)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch c.Op {
	case opInc, opIncKey:
		s.counters[c.Key] += c.Delta
		return nil
	case opRead, opReadKey:
		w := wire.NewWriter(10)
		w.Varint(s.counters[c.Key])
		return w.Bytes()
	case opAddKey:
		set, ok := s.sets[c.Key]
		if !ok {
			set = make(map[string]struct{})
			s.sets[c.Key] = set
		}
		set[c.Elem] = struct{}{}
		return nil
	case opCardKey:
		w := wire.NewWriter(10)
		w.Varint(int64(len(s.sets[c.Key])))
		return w.Bytes()
	default: // opNoop
		return nil
	}
}

// Snapshot implements StateMachine. The encoding is canonical — keys and
// elements are sorted — so equal states produce byte-equal snapshots.
func (s *Store) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := wire.NewWriter(64)
	ckeys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	w.Uvarint(uint64(len(ckeys)))
	for _, k := range ckeys {
		w.Str(k)
		w.Varint(s.counters[k])
	}
	skeys := make([]string, 0, len(s.sets))
	for k := range s.sets {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	w.Uvarint(uint64(len(skeys)))
	for _, k := range skeys {
		w.Str(k)
		set := s.sets[k]
		elems := make([]string, 0, len(set))
		for e := range set {
			elems = append(elems, e)
		}
		sort.Strings(elems)
		w.Uvarint(uint64(len(elems)))
		for _, e := range elems {
			w.Str(e)
		}
	}
	return w.Bytes()
}

// Restore implements StateMachine.
func (s *Store) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	counters := make(map[string]int64)
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		k := r.Str()
		counters[k] = r.Varint()
	}
	sets := make(map[string]map[string]struct{})
	for i, n := 0, int(r.Uvarint()); i < n && r.Err() == nil; i++ {
		k := r.Str()
		set := make(map[string]struct{})
		for j, m := 0, int(r.Uvarint()); j < m && r.Err() == nil; j++ {
			set[r.Str()] = struct{}{}
		}
		sets[k] = set
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("rsm: bad store snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters, s.sets = counters, sets
	return nil
}

// Recorder wraps a StateMachine and records every applied command, so
// tests can assert that replicas of a log-based protocol applied identical
// command sequences (the "same seeds, identical decided values" property).
type Recorder struct {
	mu    sync.Mutex
	inner StateMachine
	log   []string
}

var _ StateMachine = (*Recorder)(nil)

// NewRecorder wraps sm.
func NewRecorder(sm StateMachine) *Recorder { return &Recorder{inner: sm} }

// Apply implements StateMachine, recording cmd before delegating.
func (r *Recorder) Apply(cmd []byte) []byte {
	r.mu.Lock()
	r.log = append(r.log, string(cmd))
	r.mu.Unlock()
	return r.inner.Apply(cmd)
}

// Snapshot implements StateMachine.
func (r *Recorder) Snapshot() []byte { return r.inner.Snapshot() }

// Restore implements StateMachine. The applied log is not rewound: a
// restore means the replica skipped entries via state transfer, which the
// prefix-compatibility tests account for by avoiding compaction.
func (r *Recorder) Restore(snapshot []byte) error { return r.inner.Restore(snapshot) }

// Log returns a copy of the applied command sequence.
func (r *Recorder) Log() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}
