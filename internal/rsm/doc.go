// Package rsm defines the replicated-state-machine glue shared by the
// log-based baseline protocols (internal/raft, internal/paxos): an opaque
// command interface with snapshot support, and the replicated integer
// counter both baselines replicate in the paper's evaluation ("For
// Multi-Paxos and Raft, we used a simple replicated integer as the
// counter", §4).
package rsm
