// Package paxos implements Multi-Paxos (Lamport, "Paxos Made Simple", 2001)
// as the second baseline of the paper's evaluation: a stable leader elected
// by a phase-1 exchange over the log suffix, one phase-2 round per command
// slot, in-order application, command-log truncation, and leader read
// leases — the optimization the paper attributes to its Multi-Paxos
// comparison system ("the Multi-Paxos implementation employs leader read
// leases", §4.1). Reads at a leader holding a valid lease are served from
// local state without any message exchange.
//
// As with internal/core and internal/raft, Replica is a pure,
// single-threaded protocol state machine; Node adds the event loop,
// election/heartbeat timers, and the lease clock.
package paxos
