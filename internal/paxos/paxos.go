package paxos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// ErrNoLeader is reported when a command cannot be routed to a leader.
var ErrNoLeader = errors.New("paxos: no known leader")

// ErrLostLeadership is reported when a pending command's leader was
// superseded before the command was chosen.
var ErrLostLeadership = errors.New("paxos: leadership lost before commit")

// Done receives a chosen command's result.
type Done func(result []byte, err error)

type role uint8

const (
	follower role = iota + 1
	preparing
	leading
)

type slot struct {
	ballot    Ballot
	cmd       []byte
	committed bool
}

// Replica is the pure Multi-Paxos state machine.
type Replica struct {
	id     transport.NodeID
	peers  []transport.NodeID
	quorum int
	sm     rsm.StateMachine

	promised Ballot
	role     role
	leader   transport.NodeID

	// Slots, compacted: slots[i] is slot base+i (slot numbering begins at 1).
	slots []slot
	base  uint64 // lowest retained slot number

	commitUpTo  uint64 // all slots ≤ commitUpTo are chosen
	lastApplied uint64

	// Phase-1 candidate state.
	prepareBallot Ballot
	promises      map[transport.NodeID]*message

	// Leader state.
	nextSlot   uint64
	accepts    map[uint64]map[transport.NodeID]bool // slot -> acceptor acks
	proposals  map[uint64]*proposal                 // slot -> waiting client
	applied    map[transport.NodeID]uint64          // follower applied watermarks
	leaseAcked map[transport.NodeID]time.Time       // follower ack times (lease)

	// Follower lease promise: no promise to other ballots until this time.
	leaseHoldUntil time.Time

	// readBarrier is the highest slot adopted when this replica last won an
	// election. Lease reads are disabled until it is applied: a fresh leader
	// holds acks (so its lease looks valid) before it has re-committed the
	// previous leader's suffix, and serving reads in that window would miss
	// entries that were already committed and acknowledged to clients.
	readBarrier uint64

	// Client forwarding (origin side).
	forwards      map[uint64]Done
	nextForwardID uint64

	// Forward dedup (receiver side): request IDs already seen per origin.
	// The network may duplicate a forwarded command; without this a leader
	// would append — and commit — the same non-idempotent command twice.
	forwardSeen map[transport.NodeID]map[uint64]struct{}
	forwardMax  map[transport.NodeID]uint64

	// LeaseDuration bounds both the leader's local-read window and the
	// followers' promise-withholding window. Must be identical clusterwide.
	LeaseDuration time.Duration
	// CompactEvery truncates the applied log prefix after this many slots.
	CompactEvery int
	// MaxRetained caps retention for crashed stragglers: the leader may
	// truncate past a follower that is more than this many slots behind,
	// falling back to snapshot transfer when it returns (0 = never).
	MaxRetained int

	outbox []Envelope
}

type proposal struct {
	ballot Ballot
	done   Done
}

// NewReplica creates a Multi-Paxos participant. members must include id.
func NewReplica(id transport.NodeID, members []transport.NodeID, sm rsm.StateMachine) (*Replica, error) {
	peers := make([]transport.NodeID, 0, len(members)-1)
	self := false
	for _, m := range members {
		if m == id {
			self = true
			continue
		}
		peers = append(peers, m)
	}
	if !self {
		return nil, fmt.Errorf("paxos: %s not in member list %v", id, members)
	}
	return &Replica{
		id:            id,
		peers:         peers,
		quorum:        len(members)/2 + 1,
		sm:            sm,
		role:          follower,
		base:          1,
		nextSlot:      1,
		forwards:      make(map[uint64]Done),
		forwardSeen:   make(map[transport.NodeID]map[uint64]struct{}),
		forwardMax:    make(map[transport.NodeID]uint64),
		LeaseDuration: 500 * time.Millisecond,
		CompactEvery:  4096,
	}, nil
}

// ID returns the replica ID.
func (r *Replica) ID() transport.NodeID { return r.id }

// IsLeader reports whether this replica currently leads.
func (r *Replica) IsLeader() bool { return r.role == leading }

// Leader returns the best-known leader, or "".
func (r *Replica) Leader() transport.NodeID {
	if r.role == leading {
		return r.id
	}
	return r.leader
}

// LogLen returns the number of retained slots (for truncation tests).
func (r *Replica) LogLen() int { return len(r.slots) }

// TakeOutbox returns and clears pending outbound messages.
func (r *Replica) TakeOutbox() []Envelope {
	out := r.outbox
	r.outbox = nil
	return out
}

func (r *Replica) send(to transport.NodeID, m *message) {
	r.outbox = append(r.outbox, Envelope{To: to, Payload: m.encode()})
}

func (r *Replica) broadcast(m *message) {
	for _, p := range r.peers {
		r.send(p, m)
	}
}

func (r *Replica) slotAt(n uint64) *slot {
	if n < r.base {
		return nil
	}
	for uint64(len(r.slots)) <= n-r.base {
		r.slots = append(r.slots, slot{})
	}
	return &r.slots[n-r.base]
}

// --- leadership ---

// StartElection begins phase 1 with a ballot exceeding every ballot seen.
// The runtime calls this on leader-liveness timeout; now is the lease
// clock (a follower that recently renewed another leader's lease refuses).
func (r *Replica) StartElection(now time.Time) {
	if r.role == leading {
		// A leader holding a valid lease is its own liveness proof: the
		// runtime's election timer only resets on messages that indicate a
		// live leader, which the leader itself never receives, so without
		// this guard a healthy leader deposes itself every election timeout
		// (dropping its lease and in-flight proposals with it).
		if r.leaseValid(now) {
			return
		}
		// Deposing ourselves: in-flight proposals may still commit under
		// the old ballot, but their callbacks cannot survive the ballot
		// change — fail them as fate-unknown, exactly like stepDown does.
		r.failProposals()
	}
	r.prepareBallot = Ballot{N: r.promised.N + 1, ID: r.id}
	r.promised = r.prepareBallot
	r.role = preparing
	r.leader = ""
	r.promises = map[transport.NodeID]*message{r.id: r.selfPromise()}
	r.broadcast(&message{Type: mPrepare, Ballot: r.prepareBallot, From: r.base})
	r.maybeLead()
}

func (r *Replica) selfPromise() *message {
	return &message{Ballot: r.prepareBallot, Accepted: r.acceptedFrom(r.base), Applied: r.lastApplied}
}

func (r *Replica) acceptedFrom(from uint64) []slotCmd {
	var out []slotCmd
	for i, s := range r.slots {
		n := r.base + uint64(i)
		if n >= from && s.cmd != nil {
			out = append(out, slotCmd{Slot: n, Ballot: s.ballot, Cmd: s.cmd})
		}
	}
	return out
}

func (r *Replica) maybeLead() {
	if r.role != preparing || len(r.promises) < r.quorum {
		return
	}
	r.role = leading
	r.leader = r.id
	r.accepts = make(map[uint64]map[transport.NodeID]bool)
	r.proposals = make(map[uint64]*proposal)
	r.applied = map[transport.NodeID]uint64{r.id: r.lastApplied}
	r.leaseAcked = make(map[transport.NodeID]time.Time)

	// Adopt the highest-ballot accepted command per slot and re-propose the
	// whole suffix; fill gaps with no-ops.
	adopted := make(map[uint64]slotCmd)
	maxSlot := r.commitUpTo
	for _, p := range r.promises {
		for _, a := range p.Accepted {
			if cur, ok := adopted[a.Slot]; !ok || cur.Ballot.Less(a.Ballot) {
				adopted[a.Slot] = a
			}
			if a.Slot > maxSlot {
				maxSlot = a.Slot
			}
		}
	}
	r.nextSlot = maxSlot + 1
	r.readBarrier = maxSlot
	for n := r.commitUpTo + 1; n <= maxSlot; n++ {
		cmd := rsm.EncodeNoop()
		if a, ok := adopted[n]; ok {
			cmd = a.Cmd
		}
		r.proposeSlot(n, cmd, nil)
	}
}

// --- client commands ---

// Propose submits a command. Leaders assign it a slot; followers forward to
// the known leader; with no leader known the callback fires with
// ErrNoLeader.
func (r *Replica) Propose(cmd []byte, done Done) {
	r.submit(cmd, false, done)
}

// ProposeRead submits a read command. A follower forwards it flagged as a
// read so the leader can answer from its read lease without a log round —
// the paper's baseline behaviour (clients spread over replicas, reads
// answered by the leaseholder). Leaders fall back to the log when their
// lease is not valid; the node runtime short-circuits the leader-local
// case before calling this.
func (r *Replica) ProposeRead(cmd []byte, done Done) {
	r.submit(cmd, true, done)
}

func (r *Replica) submit(cmd []byte, read bool, done Done) {
	switch {
	case r.role == leading:
		n := r.nextSlot
		r.nextSlot++
		r.proposeSlot(n, cmd, done)
	case r.leader != "":
		r.nextForwardID++
		fid := r.nextForwardID
		r.forwards[fid] = done
		r.send(r.leader, &message{Type: mForward, ReqID: fid, Cmd: cmd, Read: read})
	default:
		done(nil, ErrNoLeader)
	}
}

// ReadLocal serves a linearizable read at a leader holding a valid lease:
// no message exchange, applied directly to the local state machine. It
// reports false if this replica is not a leader with a valid lease, in
// which case the caller must fall back to Propose with a read command.
func (r *Replica) ReadLocal(now time.Time, cmd []byte) ([]byte, bool) {
	if r.role != leading || r.lastApplied < r.readBarrier || !r.leaseValid(now) {
		return nil, false
	}
	return r.sm.Apply(cmd), true
}

// leaseValid reports whether a quorum (counting the leader itself) renewed
// the lease within LeaseDuration.
func (r *Replica) leaseValid(now time.Time) bool {
	count := 1 // self
	for _, t := range r.leaseAcked {
		if now.Sub(t) < r.LeaseDuration {
			count++
		}
	}
	return count >= r.quorum
}

// FailForwards aborts forwarded commands awaiting a (possibly dead) leader.
func (r *Replica) FailForwards() {
	for id, done := range r.forwards {
		delete(r.forwards, id)
		done(nil, ErrNoLeader)
	}
}

func (r *Replica) proposeSlot(n uint64, cmd []byte, done Done) {
	s := r.slotAt(n)
	s.ballot = r.prepareBallot
	s.cmd = cmd
	if done != nil {
		r.proposals[n] = &proposal{ballot: r.prepareBallot, done: done}
	}
	r.accepts[n] = map[transport.NodeID]bool{r.id: true}
	r.broadcast(&message{Type: mAccept, Ballot: r.prepareBallot, Slot: n, Cmd: cmd, UpTo: r.commitUpTo})
	r.maybeChoose(n)
}

// HeartbeatTick makes a leader broadcast liveness, its commit watermark,
// and the cluster-wide applied watermark used for log truncation. now is
// the lease clock: it rides the heartbeat and is echoed in the ack, so the
// leader's lease window is anchored at send time. Anchoring at ack-receive
// time would let the leader serve reads for one network round trip after a
// follower's promise-withholding window lapsed — a stale-read hole.
func (r *Replica) HeartbeatTick(now time.Time) {
	if r.role != leading {
		return
	}
	trunc := r.minApplied()
	if r.MaxRetained > 0 && r.commitUpTo > uint64(r.MaxRetained) {
		if floor := r.commitUpTo - uint64(r.MaxRetained); floor > trunc {
			trunc = floor
		}
	}
	r.broadcast(&message{
		Type:     mHeartbeat,
		Ballot:   r.prepareBallot,
		UpTo:     r.commitUpTo,
		Truncate: trunc,
		Sent:     now.UnixNano(),
	})
	// Retransmit un-chosen proposals to peers that have not accepted them:
	// an accept (or its ack) can be lost, and nothing else re-offers the
	// slot, so a single drop would wedge the commit pipeline behind it
	// forever. Re-accepting is idempotent (same ballot, same slot). Walk
	// slots in order, not the accepts map — send order must be
	// deterministic for same-seed runs to decide identically.
	for n := r.commitUpTo + 1; n < r.nextSlot; n++ {
		acks := r.accepts[n]
		if acks == nil {
			continue
		}
		s := r.slotAt(n)
		if s == nil || s.committed || s.cmd == nil {
			continue
		}
		for _, p := range r.peers {
			if !acks[p] {
				r.send(p, &message{Type: mAccept, Ballot: r.prepareBallot, Slot: n, Cmd: s.cmd, UpTo: r.commitUpTo})
			}
		}
	}
	r.maybeCompact(trunc)
}

func (r *Replica) minApplied() uint64 {
	min := r.lastApplied
	for _, p := range r.peers {
		if r.applied[p] < min {
			min = r.applied[p]
		}
	}
	return min
}

// --- message handling ---

// Deliver processes one inbound message. It returns true when the message
// indicates a live leader (the runtime resets its election timer). now is
// the lease clock.
func (r *Replica) Deliver(from transport.NodeID, payload []byte, now time.Time) bool {
	m, err := decodeMessage(payload)
	if err != nil {
		return false
	}
	switch m.Type {
	case mPrepare:
		return r.onPrepare(from, m, now)
	case mPromise:
		r.onPromise(from, m)
	case mReject:
		r.onReject(m)
	case mAccept:
		return r.onAccept(from, m, now)
	case mAccepted:
		r.onAccepted(from, m)
	case mCommit:
		r.commitTo(m.UpTo, from)
	case mHeartbeat:
		return r.onHeartbeat(from, m, now)
	case mHeartbeatAck:
		r.onHeartbeatAck(from, m, now)
	case mCatchup:
		// Requests (From set) go to the leader; replies (Accepted suffix)
		// come back from it.
		if r.role == leading {
			r.onCatchup(from, m)
		} else {
			r.handleCatchupReply(from, m)
		}
	case mSnapshot:
		r.onSnapshot(from, m)
	case mForward:
		r.onForward(from, m, now)
	case mForwardResp:
		r.onForwardResp(m)
	}
	return false
}

func (r *Replica) stepDown(b Ballot, leaderID transport.NodeID) {
	wasLeader := r.role == leading
	r.promised = b
	r.role = follower
	r.leader = leaderID
	r.promises = nil
	if wasLeader {
		r.failProposals()
	}
}

// failProposals fails every in-flight proposal with ErrLostLeadership, in
// slot order — the callbacks can send messages or arm timers, so the
// order must be deterministic for same-seed runs to decide identically.
func (r *Replica) failProposals() {
	slots := make([]uint64, 0, len(r.proposals))
	for n := range r.proposals {
		slots = append(slots, n)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, n := range slots {
		p := r.proposals[n]
		delete(r.proposals, n)
		p.done(nil, ErrLostLeadership)
	}
}

func (r *Replica) onPrepare(from transport.NodeID, m *message, now time.Time) bool {
	// Lease promise: having recently renewed the current leader's lease, a
	// follower must not promise to a different candidate until the lease
	// window has passed — this is what makes leader local reads safe. The
	// leader likewise defends its own valid lease.
	if now.Before(r.leaseHoldUntil) && from != r.leader {
		r.send(from, &message{Type: mReject, Ballot: r.promised})
		return false
	}
	if r.role == leading && r.leaseValid(now) {
		r.send(from, &message{Type: mReject, Ballot: r.promised})
		return false
	}
	if !r.promised.Less(m.Ballot) {
		r.send(from, &message{Type: mReject, Ballot: r.promised})
		return false
	}
	r.stepDown(m.Ballot, from)
	r.send(from, &message{
		Type:     mPromise,
		Ballot:   m.Ballot,
		Accepted: r.acceptedFrom(m.From),
		Applied:  r.lastApplied,
	})
	return true
}

func (r *Replica) onPromise(from transport.NodeID, m *message) {
	if r.role != preparing || m.Ballot != r.prepareBallot {
		return
	}
	r.promises[from] = m
	r.maybeLead()
}

func (r *Replica) onReject(m *message) {
	if r.promised.Less(m.Ballot) {
		r.stepDown(m.Ballot, "")
	} else if r.role == preparing {
		// A rejection at our own ballot: abandon this attempt; the runtime
		// will retry with a higher ballot on the next election timeout.
		r.role = follower
	}
}

func (r *Replica) onAccept(from transport.NodeID, m *message, now time.Time) bool {
	if m.Ballot.Less(r.promised) {
		r.send(from, &message{Type: mReject, Ballot: r.promised})
		return false
	}
	if r.role != follower || r.leader != from || r.promised.Less(m.Ballot) {
		r.stepDown(m.Ballot, from)
	}
	r.leaseHoldUntil = now.Add(r.LeaseDuration)
	s := r.slotAt(m.Slot)
	if s != nil && !s.committed {
		s.ballot = m.Ballot
		s.cmd = m.Cmd
	}
	r.send(from, &message{Type: mAccepted, Ballot: m.Ballot, Slot: m.Slot})
	r.commitTo(m.UpTo, from)
	return true
}

func (r *Replica) onAccepted(from transport.NodeID, m *message) {
	if r.role != leading || m.Ballot != r.prepareBallot {
		return
	}
	acks := r.accepts[m.Slot]
	if acks == nil {
		return // already chosen and cleaned up
	}
	acks[from] = true
	r.maybeChoose(m.Slot)
}

func (r *Replica) maybeChoose(n uint64) {
	acks := r.accepts[n]
	if acks == nil || len(acks) < r.quorum {
		return
	}
	delete(r.accepts, n)
	s := r.slotAt(n)
	if s != nil {
		s.committed = true
	}
	// Advance the contiguous committed watermark.
	for {
		next := r.slotAt(r.commitUpTo + 1)
		if next == nil || !next.committed {
			break
		}
		r.commitUpTo++
	}
	r.applyCommitted()
	r.broadcast(&message{Type: mCommit, UpTo: r.commitUpTo})
}

func (r *Replica) commitTo(upTo uint64, leaderID transport.NodeID) {
	if upTo <= r.commitUpTo {
		return
	}
	// Mark slots committed; request any we never received.
	missing := false
	for n := r.commitUpTo + 1; n <= upTo; n++ {
		s := r.slotAt(n)
		if s == nil {
			continue
		}
		if s.cmd == nil {
			missing = true
			continue
		}
		s.committed = true
	}
	if missing {
		r.send(leaderID, &message{Type: mCatchup, From: r.commitUpTo + 1})
	}
	for {
		next := r.slotAt(r.commitUpTo + 1)
		if next == nil || !next.committed || next.cmd == nil {
			break
		}
		r.commitUpTo++
	}
	r.applyCommitted()
}

func (r *Replica) applyCommitted() {
	for r.lastApplied < r.commitUpTo {
		n := r.lastApplied + 1
		s := r.slotAt(n)
		if s == nil || s.cmd == nil {
			return
		}
		result := r.sm.Apply(s.cmd)
		r.lastApplied = n
		if p, ok := r.proposals[n]; ok {
			delete(r.proposals, n)
			if p.ballot == r.prepareBallot && r.role == leading {
				p.done(result, nil)
			} else {
				p.done(nil, ErrLostLeadership)
			}
		}
	}
	if r.role == leading {
		r.applied[r.id] = r.lastApplied
	}
}

func (r *Replica) onHeartbeat(from transport.NodeID, m *message, now time.Time) bool {
	if m.Ballot.Less(r.promised) {
		r.send(from, &message{Type: mReject, Ballot: r.promised})
		return false
	}
	if r.role != follower || r.leader != from || r.promised.Less(m.Ballot) {
		r.stepDown(m.Ballot, from)
	}
	r.leaseHoldUntil = now.Add(r.LeaseDuration)
	r.commitTo(m.UpTo, from)
	r.maybeCompact(m.Truncate)
	r.send(from, &message{Type: mHeartbeatAck, Ballot: m.Ballot, Applied: r.lastApplied, Sent: m.Sent})
	return true
}

func (r *Replica) onHeartbeatAck(from transport.NodeID, m *message, now time.Time) {
	if r.role != leading || m.Ballot != r.prepareBallot {
		return
	}
	// Anchor the lease at the heartbeat's send time (echoed by the
	// follower), never at ack receipt: the follower's promise-withholding
	// window starts when IT saw the heartbeat, which is before the ack got
	// back here. Acks can be reordered by the network, so only move forward.
	sent := time.Unix(0, m.Sent)
	if sent.After(r.leaseAcked[from]) {
		r.leaseAcked[from] = sent
	}
	r.applied[from] = m.Applied
	// A follower that fell behind the truncation horizon needs a snapshot.
	if m.Applied+1 < r.base {
		r.send(from, &message{Type: mSnapshot, Ballot: r.prepareBallot, UpTo: r.lastApplied, Data: r.sm.Snapshot()})
	}
}

func (r *Replica) onCatchup(from transport.NodeID, m *message) {
	if r.role != leading {
		return
	}
	if m.From < r.base {
		r.send(from, &message{Type: mSnapshot, Ballot: r.prepareBallot, UpTo: r.lastApplied, Data: r.sm.Snapshot()})
		return
	}
	r.send(from, &message{
		Type:     mCatchup,
		Ballot:   r.prepareBallot,
		Accepted: r.acceptedFrom(m.From),
		UpTo:     r.commitUpTo,
	})
}

func (r *Replica) onSnapshot(from transport.NodeID, m *message) {
	if m.Ballot.Less(r.promised) || m.UpTo <= r.lastApplied {
		return
	}
	if err := r.sm.Restore(m.Data); err != nil {
		return
	}
	r.slots = nil
	r.base = m.UpTo + 1
	r.commitUpTo = m.UpTo
	r.lastApplied = m.UpTo
}

func (r *Replica) maybeCompact(truncate uint64) {
	if r.CompactEvery <= 0 || truncate < r.base || truncate+1-r.base < uint64(r.CompactEvery) {
		return
	}
	if truncate > r.lastApplied {
		truncate = r.lastApplied
	}
	r.slots = append([]slot(nil), r.slots[truncate+1-r.base:]...)
	r.base = truncate + 1
}

// forwardDedupWindow is how far behind an origin's highest-seen request ID
// a remembered ID is kept. Request IDs increase per origin, so anything
// this far back can no longer be a late first delivery.
const forwardDedupWindow = 1 << 12

// dupForward records (origin, reqID) and reports whether it was already
// seen. Duplicates are dropped silently: the first delivery's response
// path answers the origin, and the origin ignores unknown request IDs.
func (r *Replica) dupForward(origin transport.NodeID, reqID uint64) bool {
	seen := r.forwardSeen[origin]
	if seen == nil {
		seen = make(map[uint64]struct{})
		r.forwardSeen[origin] = seen
	}
	if _, ok := seen[reqID]; ok {
		return true
	}
	seen[reqID] = struct{}{}
	if reqID > r.forwardMax[origin] {
		r.forwardMax[origin] = reqID
	}
	if len(seen) > 2*forwardDedupWindow {
		max := r.forwardMax[origin]
		for id := range seen {
			if id+forwardDedupWindow < max {
				delete(seen, id)
			}
		}
	}
	return false
}

func (r *Replica) onForward(from transport.NodeID, m *message, now time.Time) {
	if r.dupForward(from, m.ReqID) {
		return
	}
	if r.role != leading {
		r.send(from, &message{Type: mForwardResp, ReqID: m.ReqID, Err: ErrNoLeader.Error()})
		return
	}
	origin := from
	reqID := m.ReqID
	// Forwarded reads are served from the leader's lease when valid —
	// one forwarding round trip, no log entry.
	if m.Read {
		if result, ok := r.ReadLocal(now, m.Cmd); ok {
			r.send(origin, &message{Type: mForwardResp, ReqID: reqID, Data: result})
			return
		}
	}
	r.Propose(m.Cmd, func(result []byte, err error) {
		resp := &message{Type: mForwardResp, ReqID: reqID, Data: result}
		if err != nil {
			resp.Err = err.Error()
		}
		r.send(origin, resp)
	})
}

func (r *Replica) onForwardResp(m *message) {
	done, ok := r.forwards[m.ReqID]
	if !ok {
		return
	}
	delete(r.forwards, m.ReqID)
	if m.Err != "" {
		if m.Err == ErrNoLeader.Error() {
			done(nil, ErrNoLeader)
		} else {
			done(nil, errors.New(m.Err))
		}
		return
	}
	done(m.Data, nil)
}

// handleCatchupReply processes the accepted suffix returned by onCatchup;
// it shares the mCatchup tag and is routed by the presence of Accepted.
func (r *Replica) handleCatchupReply(from transport.NodeID, m *message) {
	for _, a := range m.Accepted {
		s := r.slotAt(a.Slot)
		if s != nil && s.cmd == nil {
			s.ballot = a.Ballot
			s.cmd = a.Cmd
		}
	}
	r.commitTo(m.UpTo, from)
}
