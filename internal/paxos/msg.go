package paxos

import (
	"fmt"

	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// Ballot orders leadership attempts: (number, proposer ID), totally ordered.
type Ballot struct {
	N  uint64
	ID transport.NodeID
}

// Less is the total order on ballots.
func (b Ballot) Less(o Ballot) bool {
	if b.N != o.N {
		return b.N < o.N
	}
	return b.ID < o.ID
}

func (b Ballot) String() string { return fmt.Sprintf("(%d,%s)", b.N, b.ID) }

type msgType uint8

const (
	mPrepare      msgType = iota + 1 // phase 1a: new leader candidate
	mPromise                         // phase 1b: acceptor promise + accepted suffix
	mReject                          // phase 1b/2b negative: higher ballot seen
	mAccept                          // phase 2a: leader proposes cmd for slot
	mAccepted                        // phase 2b: acceptor accepted
	mCommit                          // learner notification: slots ≤ UpTo are chosen
	mHeartbeat                       // leader liveness + commit/truncate piggyback
	mHeartbeatAck                    // follower ack: renews the leader's read lease
	mCatchup                         // follower asks for missing slots
	mSnapshot                        // state transfer for far-behind followers
	mForward                         // client command forwarded to the leader
	mForwardResp                     // forwarded command's result
)

// slotCmd is an accepted (slot, ballot, command) triple carried in promises
// and catch-up replies.
type slotCmd struct {
	Slot   uint64
	Ballot Ballot
	Cmd    []byte
}

type message struct {
	Type     msgType
	Ballot   Ballot
	Slot     uint64
	Cmd      []byte
	UpTo     uint64    // Commit/Heartbeat: committed watermark
	Truncate uint64    // Heartbeat: slots below this are applied everywhere
	Applied  uint64    // HeartbeatAck/Promise: sender's applied watermark
	Accepted []slotCmd // Promise/Catchup replies
	From     uint64    // Prepare/Catchup: first slot of interest
	Data     []byte    // Snapshot payload; ForwardResp result
	ReqID    uint64    // Forward correlation
	Err      string    // ForwardResp error
	Read     bool      // Forward: command is a read; serve from the lease
	Sent     int64     // Heartbeat: leader send time (unix nanos), echoed in the ack
}

func encodeBallot(w *wire.Writer, b Ballot) {
	w.Uvarint(b.N)
	w.Str(string(b.ID))
}

func decodeBallot(r *wire.Reader) Ballot {
	return Ballot{N: r.Uvarint(), ID: transport.NodeID(r.Str())}
}

func (m *message) encode() []byte {
	w := wire.NewWriter(64 + 24*len(m.Accepted))
	w.Byte(byte(m.Type))
	encodeBallot(w, m.Ballot)
	w.Uvarint(m.Slot)
	w.Raw(m.Cmd)
	w.Uvarint(m.UpTo)
	w.Uvarint(m.Truncate)
	w.Uvarint(m.Applied)
	w.Uvarint(uint64(len(m.Accepted)))
	for _, a := range m.Accepted {
		w.Uvarint(a.Slot)
		encodeBallot(w, a.Ballot)
		w.Raw(a.Cmd)
	}
	w.Uvarint(m.From)
	w.Raw(m.Data)
	w.Uvarint(m.ReqID)
	w.Str(m.Err)
	w.Bool(m.Read)
	w.Varint(m.Sent)
	return w.Bytes()
}

func decodeMessage(p []byte) (*message, error) {
	r := wire.NewReader(p)
	m := &message{
		Type:   msgType(r.Byte()),
		Ballot: decodeBallot(r),
		Slot:   r.Uvarint(),
		Cmd:    r.Raw(),
		UpTo:   r.Uvarint(),
	}
	m.Truncate = r.Uvarint()
	m.Applied = r.Uvarint()
	n := r.Uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("paxos: absurd accepted count %d", n)
	}
	m.Accepted = make([]slotCmd, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Accepted = append(m.Accepted, slotCmd{Slot: r.Uvarint(), Ballot: decodeBallot(r), Cmd: r.Raw()})
	}
	m.From = r.Uvarint()
	m.Data = r.Raw()
	m.ReqID = r.Uvarint()
	m.Err = r.Str()
	m.Read = r.Bool()
	m.Sent = r.Varint()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("paxos: decode: %w", err)
	}
	if m.Type < mPrepare || m.Type > mForwardResp {
		return nil, fmt.Errorf("paxos: unknown message type %d", m.Type)
	}
	return m, nil
}

// Envelope is an outbound message for the runtime to transmit.
type Envelope struct {
	To      transport.NodeID
	Payload []byte
}
