package paxos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// pnet is a manual message pool for deterministic Multi-Paxos tests.
type pnet struct {
	t    *testing.T
	reps map[transport.NodeID]*Replica
	sms  map[transport.NodeID]*rsm.Counter
	pool []penv
	now  time.Time
}

type penv struct {
	from, to transport.NodeID
	typ      msgType
	payload  []byte
}

func newPNet(t *testing.T, n int) *pnet {
	t.Helper()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nw := &pnet{
		t:    t,
		reps: make(map[transport.NodeID]*Replica, n),
		sms:  make(map[transport.NodeID]*rsm.Counter, n),
		now:  time.Unix(0, 0),
	}
	for _, id := range members {
		sm := rsm.NewCounter()
		rep, err := NewReplica(id, members, sm)
		if err != nil {
			t.Fatal(err)
		}
		nw.reps[id] = rep
		nw.sms[id] = sm
	}
	return nw
}

func (nw *pnet) advance(d time.Duration) { nw.now = nw.now.Add(d) }

func (nw *pnet) pump() {
	for _, rep := range nw.reps {
		for _, e := range rep.TakeOutbox() {
			m, err := decodeMessage(e.Payload)
			if err != nil {
				nw.t.Fatalf("bad outbound message: %v", err)
			}
			nw.pool = append(nw.pool, penv{from: rep.ID(), to: e.To, typ: m.Type, payload: e.Payload})
		}
	}
}

func (nw *pnet) deliver(match func(penv) bool) int {
	delivered := 0
	for i := 0; i < len(nw.pool); {
		e := nw.pool[i]
		if !match(e) {
			i++
			continue
		}
		nw.pool = append(nw.pool[:i], nw.pool[i+1:]...)
		if rep, ok := nw.reps[e.to]; ok {
			rep.Deliver(e.from, e.payload, nw.now)
			nw.pump()
		}
		delivered++
	}
	return delivered
}

func (nw *pnet) drain() {
	for len(nw.pool) > 0 {
		nw.deliver(func(penv) bool { return true })
	}
}

func (nw *pnet) drop(match func(penv) bool) {
	for i := 0; i < len(nw.pool); {
		if match(nw.pool[i]) {
			nw.pool = append(nw.pool[:i], nw.pool[i+1:]...)
			continue
		}
		i++
	}
}

// drainDropping drains the network while continuously discarding messages
// matching the filter, including ones produced mid-drain (e.g. eager
// catch-up traffic toward a partitioned node).
func (nw *pnet) drainDropping(match func(penv) bool) {
	for {
		nw.drop(match)
		if nw.deliver(func(e penv) bool { return !match(e) }) == 0 {
			nw.drop(match)
			if len(nw.pool) == 0 {
				return
			}
		}
	}
}

func (nw *pnet) elect(id transport.NodeID) {
	nw.t.Helper()
	nw.reps[id].StartElection(nw.now)
	nw.pump()
	nw.drain()
	if !nw.reps[id].IsLeader() {
		nw.t.Fatalf("%s failed to become leader", id)
	}
}

func TestElectionAndLeadership(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	for id, rep := range nw.reps {
		if rep.Leader() != "n1" {
			t.Fatalf("%s sees leader %q", id, rep.Leader())
		}
	}
}

func TestProposeChooseApply(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")

	done := false
	nw.reps["n1"].Propose(rsm.EncodeInc(4), func(res []byte, err error) {
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		done = true
	})
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("command not chosen")
	}
	// Followers learn the commit with the next message round.
	nw.reps["n1"].HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()
	for id, sm := range nw.sms {
		if v := sm.Value(); v != 4 {
			t.Fatalf("%s applied %d, want 4", id, v)
		}
	}
}

func TestForwardingFromFollower(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	done := false
	nw.reps["n3"].Propose(rsm.EncodeInc(2), func(res []byte, err error) {
		if err != nil {
			t.Fatalf("forwarded: %v", err)
		}
		done = true
	})
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("forwarded command incomplete")
	}
}

func TestReadLeaseLocalRead(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	leaderRep := nw.reps["n1"]

	// Before any heartbeat acks, the lease is not held.
	if _, ok := leaderRep.ReadLocal(nw.now, rsm.EncodeRead()); ok {
		t.Fatal("lease valid without any follower acks")
	}
	// Commit a value, then renew the lease by heartbeating.
	leaderRep.Propose(rsm.EncodeInc(6), nil)
	nw.pump()
	nw.drain()
	leaderRep.HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()

	res, ok := leaderRep.ReadLocal(nw.now, rsm.EncodeRead())
	if !ok {
		t.Fatal("lease should be valid after heartbeat acks")
	}
	v, err := rsm.DecodeValue(res)
	if err != nil || v != 6 {
		t.Fatalf("local read = %d, %v", v, err)
	}

	// After the lease window passes without renewal, local reads stop.
	nw.advance(leaderRep.LeaseDuration + time.Millisecond)
	if _, ok := leaderRep.ReadLocal(nw.now, rsm.EncodeRead()); ok {
		t.Fatal("lease still valid after expiry")
	}
}

func TestLeaseBlocksCompetingElection(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	nw.reps["n1"].HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()

	// n2 campaigns while followers are inside the lease window: both n1 and
	// n3 must refuse, so n2 cannot assemble a quorum (its own promise only).
	nw.reps["n2"].StartElection(nw.now)
	nw.pump()
	nw.drain()
	if nw.reps["n2"].IsLeader() {
		t.Fatal("candidate won during an active lease window")
	}

	// Once the lease expires, the same campaign succeeds.
	nw.advance(nw.reps["n1"].LeaseDuration + time.Millisecond)
	nw.reps["n2"].StartElection(nw.now)
	nw.pump()
	nw.drain()
	if !nw.reps["n2"].IsLeader() {
		t.Fatal("candidate failed after lease expiry")
	}
}

func TestNewLeaderAdoptsAcceptedCommands(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")

	// n1 gets a command accepted by n2 but crashes before committing.
	fired := false
	nw.reps["n1"].Propose(rsm.EncodeInc(9), func(res []byte, err error) { fired = true })
	nw.pump()
	nw.deliver(func(e penv) bool { return e.typ == mAccept && e.to == "n2" })
	nw.drop(func(penv) bool { return true }) // n2's Accepted reply and n3's copy are lost

	// n2 campaigns after the lease window: its promise carries the accepted
	// command, which the new leader must re-propose and commit.
	nw.advance(nw.reps["n1"].LeaseDuration + time.Millisecond)
	nw.reps["n2"].StartElection(nw.now)
	nw.pump()
	nw.deliver(func(e penv) bool { return e.to == "n3" || e.from == "n3" })
	if !nw.reps["n2"].IsLeader() {
		t.Fatal("n2 did not win")
	}
	nw.drain()
	nw.reps["n2"].HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()

	if v := nw.sms["n2"].Value(); v != 9 {
		t.Fatalf("adopted command not applied at new leader: %d", v)
	}
	if v := nw.sms["n3"].Value(); v != 9 {
		t.Fatalf("adopted command not applied at n3: %d", v)
	}
	_ = fired // the old leader's callback outcome depends on when it learns
}

func TestStaleLeaderStepsDown(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	nw.advance(nw.reps["n1"].LeaseDuration + time.Millisecond)

	// n2 wins an election that n1 never hears about (partition), so n1
	// still believes it leads.
	nw.reps["n2"].StartElection(nw.now)
	nw.pump()
	nw.drainDropping(func(e penv) bool { return e.to == "n1" || e.from == "n1" })
	if !nw.reps["n2"].IsLeader() {
		t.Fatal("n2 did not win")
	}
	if !nw.reps["n1"].IsLeader() {
		t.Fatal("n1 should still believe it leads")
	}

	// n1's next proposal is rejected with the higher ballot; it steps down
	// and fails the proposal.
	var gotErr error
	nw.reps["n1"].Propose(rsm.EncodeInc(1), func(res []byte, err error) { gotErr = err })
	nw.pump()
	nw.drain()
	if nw.reps["n1"].IsLeader() {
		t.Fatal("stale leader did not step down")
	}
	if !errors.Is(gotErr, ErrLostLeadership) {
		t.Fatalf("err = %v, want ErrLostLeadership", gotErr)
	}
}

func TestProposeNoLeaderFailsFast(t *testing.T) {
	nw := newPNet(t, 3)
	var gotErr error
	nw.reps["n1"].Propose(rsm.EncodeInc(1), func(res []byte, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNoLeader) {
		t.Fatalf("err = %v, want ErrNoLeader", gotErr)
	}
}

func TestLogTruncation(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	leaderRep := nw.reps["n1"]
	leaderRep.CompactEvery = 4
	for _, rep := range nw.reps {
		rep.CompactEvery = 4
	}

	for i := 0; i < 12; i++ {
		leaderRep.Propose(rsm.EncodeInc(1), nil)
		nw.pump()
		nw.drain()
		leaderRep.HeartbeatTick(nw.now)
		nw.pump()
		nw.drain()
	}
	// Two heartbeats: one to gather applied watermarks, one to truncate.
	leaderRep.HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()
	if leaderRep.LogLen() > 8 {
		t.Fatalf("leader log not truncated: %d slots", leaderRep.LogLen())
	}
	for id, sm := range nw.sms {
		if v := sm.Value(); v != 12 {
			t.Fatalf("%s applied %d, want 12", id, v)
		}
	}
}

func TestCatchupAfterLostAccepts(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	leaderRep := nw.reps["n1"]

	// n3 misses two commands, including the eager catch-up traffic that
	// the commit notifications would trigger.
	for i := 0; i < 2; i++ {
		leaderRep.Propose(rsm.EncodeInc(1), nil)
		nw.pump()
		nw.drainDropping(func(e penv) bool { return e.to == "n3" })
	}
	if v := nw.sms["n3"].Value(); v != 0 {
		t.Fatalf("n3 unexpectedly applied %d", v)
	}
	// The next heartbeat announces the commits; n3 requests catch-up.
	leaderRep.HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()
	if v := nw.sms["n3"].Value(); v != 2 {
		t.Fatalf("n3 caught up to %d, want 2", v)
	}
}

func TestSnapshotForFarBehindFollower(t *testing.T) {
	nw := newPNet(t, 3)
	nw.elect("n1")
	leaderRep := nw.reps["n1"]
	for _, rep := range nw.reps {
		rep.CompactEvery = 2
		rep.MaxRetained = 2
	}

	// n3 misses everything while n1+n2 commit and truncate past it
	// (bounded retention).
	dropN3 := func(e penv) bool { return e.to == "n3" }
	for i := 0; i < 10; i++ {
		leaderRep.Propose(rsm.EncodeInc(1), nil)
		nw.pump()
		nw.drainDropping(dropN3)
		leaderRep.HeartbeatTick(nw.now)
		nw.pump()
		nw.drainDropping(dropN3)
	}
	if leaderRep.LogLen() >= 10 {
		t.Fatalf("leader retained %d slots despite MaxRetained", leaderRep.LogLen())
	}

	// n3 rejoins; its heartbeat ack advertises applied=0, behind the
	// truncation horizon, so the leader must send a snapshot.
	leaderRep.HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()
	leaderRep.HeartbeatTick(nw.now)
	nw.pump()
	nw.drain()
	if v := nw.sms["n3"].Value(); v != 10 {
		t.Fatalf("n3 caught up to %d, want 10", v)
	}
}

func TestBallotOrdering(t *testing.T) {
	a := Ballot{N: 1, ID: "x"}
	b := Ballot{N: 1, ID: "y"}
	c := Ballot{N: 2, ID: "a"}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("ballot order broken")
	}
}

func TestMessageCodec(t *testing.T) {
	in := &message{
		Type:     mPromise,
		Ballot:   Ballot{N: 3, ID: "n2"},
		Accepted: []slotCmd{{Slot: 4, Ballot: Ballot{N: 2, ID: "n1"}, Cmd: rsm.EncodeInc(1)}},
		Applied:  3,
	}
	out, err := decodeMessage(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Ballot != in.Ballot || len(out.Accepted) != 1 || out.Accepted[0].Slot != 4 {
		t.Fatalf("round trip mangled: %+v", out)
	}
	if _, err := decodeMessage(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := decodeMessage([]byte{0xff, 1, 1}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestDeliverGarbageIgnored(t *testing.T) {
	nw := newPNet(t, 3)
	nw.reps["n1"].Deliver("n2", []byte{1, 2}, nw.now)
	nw.elect("n1")
}
