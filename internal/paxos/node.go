package paxos

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"crdtsmr/internal/clock"
	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// ErrStopped is returned for commands submitted to a closed node.
var ErrStopped = errors.New("paxos: node stopped")

// Config configures a Multi-Paxos node.
type Config struct {
	Members []transport.NodeID
	// Clock supplies timers and the lease clock; defaults to wall clock.
	Clock clock.Clock
	// ElectionTimeout is the base leader-liveness timeout; the actual
	// timeout is randomized in [base, 2*base]. Default 150 ms.
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's lease-renewal cadence. Default
	// ElectionTimeout/5. It must be well below LeaseDuration.
	HeartbeatInterval time.Duration
	// LeaseDuration is the read-lease window. Default 4*ElectionTimeout.
	LeaseDuration time.Duration
	// CompactEvery truncates the applied log prefix after this many slots.
	CompactEvery int
	// Seed randomizes election jitter.
	Seed int64
}

func (c Config) withDefaults(id transport.NodeID) Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeout / 5
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 4 * c.ElectionTimeout
	}
	if c.Seed == 0 {
		for _, b := range []byte(id) {
			c.Seed = c.Seed*137 + int64(b)
		}
	}
	return c
}

// Node runs a Multi-Paxos replica with an event loop and timers.
type Node struct {
	id      transport.NodeID
	cfg     Config
	replica *Replica
	conn    transport.Conn

	events chan pxEvent
	quit   chan struct{}
	wg     sync.WaitGroup

	rng           *rand.Rand
	electionTimer clock.Timer
	crashed       bool
}

type pxEvent struct {
	kind    pxEventKind
	from    transport.NodeID
	payload []byte
	cmd     []byte
	read    bool
	done    Done
	crash   bool
}

type pxEventKind uint8

const (
	pevInbound pxEventKind = iota + 1
	pevExecute
	pevElection
	pevHeartbeat
	pevSetCrashed
)

// NewNode creates and starts a Multi-Paxos node replicating sm.
func NewNode(id transport.NodeID, cfg Config, sm rsm.StateMachine, join func(transport.NodeID, transport.Handler) transport.Conn) (*Node, error) {
	cfg = cfg.withDefaults(id)
	rep, err := NewReplica(id, cfg.Members, sm)
	if err != nil {
		return nil, err
	}
	rep.LeaseDuration = cfg.LeaseDuration
	if cfg.CompactEvery > 0 {
		rep.CompactEvery = cfg.CompactEvery
	}
	n := &Node{
		id:      id,
		cfg:     cfg,
		replica: rep,
		events:  make(chan pxEvent, 8192),
		quit:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	n.conn = join(id, n.handleInbound)
	n.wg.Add(1)
	go n.loop()
	return n, nil
}

// ID returns the node ID.
func (n *Node) ID() transport.NodeID { return n.id }

// IsLeader reports whether the node currently leads (metrics only).
func (n *Node) IsLeader() bool { return n.replica.IsLeader() }

// Execute submits a command and blocks until it is chosen and applied,
// retrying across leader changes until ctx expires.
func (n *Node) Execute(ctx context.Context, cmd []byte) ([]byte, error) {
	return n.run(ctx, cmd, false)
}

// Read executes a read command, served locally at a leader holding a valid
// lease (one of the paper's baseline behaviours) and through the log
// otherwise.
func (n *Node) Read(ctx context.Context, cmd []byte) ([]byte, error) {
	return n.run(ctx, cmd, true)
}

func (n *Node) run(ctx context.Context, cmd []byte, read bool) ([]byte, error) {
	backoff := n.cfg.HeartbeatInterval
	for {
		res := make(chan pxResult, 1)
		ev := pxEvent{kind: pevExecute, cmd: cmd, read: read, done: func(result []byte, err error) {
			res <- pxResult{result: result, err: err}
		}}
		select {
		case n.events <- ev:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.quit:
			return nil, ErrStopped
		}

		tryTimeout := time.NewTimer(2 * n.cfg.ElectionTimeout)
		select {
		case r := <-res:
			tryTimeout.Stop()
			if r.err == nil {
				return r.result, nil
			}
			if !errors.Is(r.err, ErrNoLeader) && !errors.Is(r.err, ErrLostLeadership) {
				return nil, r.err
			}
		case <-tryTimeout.C:
		case <-ctx.Done():
			tryTimeout.Stop()
			return nil, ctx.Err()
		case <-n.quit:
			tryTimeout.Stop()
			return nil, ErrStopped
		}

		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.quit:
			return nil, ErrStopped
		}
	}
}

type pxResult struct {
	result []byte
	err    error
}

// SetCrashed simulates a crash or recovery.
func (n *Node) SetCrashed(crashed bool) {
	select {
	case n.events <- pxEvent{kind: pevSetCrashed, crash: crashed}:
	case <-n.quit:
	}
}

// Close stops the node.
func (n *Node) Close() error {
	select {
	case <-n.quit:
		n.wg.Wait()
		return nil
	default:
	}
	close(n.quit)
	n.wg.Wait()
	return n.conn.Close()
}

func (n *Node) handleInbound(from transport.NodeID, payload []byte) {
	select {
	case n.events <- pxEvent{kind: pevInbound, from: from, payload: payload}:
	case <-n.quit:
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	n.resetElectionTimer()
	heartbeat := n.cfg.Clock.AfterFunc(n.cfg.HeartbeatInterval, n.heartbeatTick)
	defer func() {
		heartbeat.Stop()
		if n.electionTimer != nil {
			n.electionTimer.Stop()
		}
	}()
	for {
		select {
		case <-n.quit:
			n.replica.FailForwards()
			n.flush()
			return
		case ev := <-n.events:
			n.handle(ev)
			n.flush()
		}
	}
}

func (n *Node) heartbeatTick() {
	select {
	case n.events <- pxEvent{kind: pevHeartbeat}:
	case <-n.quit:
	}
}

func (n *Node) handle(ev pxEvent) {
	switch ev.kind {
	case pevInbound:
		if n.crashed {
			return
		}
		if n.replica.Deliver(ev.from, ev.payload, n.cfg.Clock.Now()) {
			n.resetElectionTimer()
		}
	case pevExecute:
		if n.crashed {
			ev.done(nil, ErrNoLeader)
			return
		}
		if ev.read {
			if result, ok := n.replica.ReadLocal(n.cfg.Clock.Now(), ev.cmd); ok {
				ev.done(result, nil)
				return
			}
			n.replica.ProposeRead(ev.cmd, ev.done)
			return
		}
		n.replica.Propose(ev.cmd, ev.done)
	case pevElection:
		if n.crashed {
			return
		}
		n.replica.StartElection(n.cfg.Clock.Now())
		n.replica.FailForwards()
		n.resetElectionTimer()
	case pevHeartbeat:
		if !n.crashed {
			n.replica.HeartbeatTick(n.cfg.Clock.Now())
		}
		n.cfg.Clock.AfterFunc(n.cfg.HeartbeatInterval, n.heartbeatTick)
	case pevSetCrashed:
		n.crashed = ev.crash
		if ev.crash {
			n.replica.FailForwards()
			n.replica.stepDown(n.replica.promised, "")
		} else {
			n.resetElectionTimer()
		}
	}
}

func (n *Node) resetElectionTimer() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	d := n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.electionTimer = n.cfg.Clock.AfterFunc(d, func() {
		select {
		case n.events <- pxEvent{kind: pevElection}:
		case <-n.quit:
		}
	})
}

func (n *Node) flush() {
	for _, e := range n.replica.TakeOutbox() {
		if !n.crashed {
			n.conn.Send(e.To, e.Payload)
		}
	}
}
