package store

import (
	"context"
	"fmt"
	"sort"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// Store is a keyed object store replicated over a group of nodes. Every
// key is linearizable independently; operations name the replica (at) they
// are submitted to, like the single-object API.
type Store struct {
	inner *cluster.Cluster
	ids   []transport.NodeID
}

// New starts one store node per member over the given in-process mesh.
// cfg.Initial is the payload every key starts from (a fresh zero value of
// its type per key; itself for the default key), and cfg.InitialForKey may
// override it per key to mix CRDT types in one keyspace. For multi-process
// deployments, run cluster.NewNode with a TCP transport on every host
// instead — the keyed API (UpdateKey/QueryKey) lives on the node, so the
// store composes with any transport.
func New(mesh *transport.Mesh, cfg cluster.Config) (*Store, error) {
	if cfg.Initial == nil {
		return nil, fmt.Errorf("store: nil initial payload")
	}
	inner, err := cluster.New(mesh, cfg)
	if err != nil {
		return nil, err
	}
	return &Store{
		inner: inner,
		ids:   append([]transport.NodeID(nil), cfg.Members...),
	}, nil
}

// NodeIDs returns the replica IDs in member order.
func (s *Store) NodeIDs() []transport.NodeID {
	return append([]transport.NodeID(nil), s.ids...)
}

// Node returns the store node with the given ID, or nil.
func (s *Store) Node(id transport.NodeID) *cluster.Node { return s.inner.Node(id) }

// Update applies a monotone update function to the object stored under key
// at the named replica and waits for it to be durable on a quorum.
func (s *Store) Update(ctx context.Context, at transport.NodeID, key string, fu crdt.Update) (core.UpdateStats, error) {
	n := s.inner.Node(at)
	if n == nil {
		return core.UpdateStats{}, fmt.Errorf("store: unknown replica %s", at)
	}
	return n.UpdateKey(ctx, key, fu)
}

// Query learns a linearizable state of the object stored under key at the
// named replica.
func (s *Store) Query(ctx context.Context, at transport.NodeID, key string) (crdt.State, core.QueryStats, error) {
	n := s.inner.Node(at)
	if n == nil {
		return nil, core.QueryStats{}, fmt.Errorf("store: unknown replica %s", at)
	}
	return n.QueryKey(ctx, key)
}

// Keys returns the keys instantiated at the named replica, sorted. A key
// is instantiated once the replica served a command for it or received a
// protocol message about it, so replicas may disagree transiently.
func (s *Store) Keys(at transport.NodeID) []string {
	n := s.inner.Node(at)
	if n == nil {
		return nil
	}
	return n.Keys()
}

// AllKeys returns the union of every replica's instantiated keys, sorted.
func (s *Store) AllKeys() []string {
	seen := make(map[string]bool)
	for _, id := range s.ids {
		for _, k := range s.Keys(id) {
			seen[k] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Objects returns the number of object replicas instantiated at the named
// replica.
func (s *Store) Objects(at transport.NodeID) int {
	n := s.inner.Node(at)
	if n == nil {
		return 0
	}
	return n.Objects()
}

// Crash simulates a crash of the named replica; its state is retained
// (crash-recovery model).
func (s *Store) Crash(id transport.NodeID) { s.inner.Crash(id) }

// Recover brings a crashed replica back.
func (s *Store) Recover(id transport.NodeID) { s.inner.Recover(id) }

// Restart brings a replica back from its snapshot directory, discarding
// volatile state — the process-restart model. Requires a cluster-level
// DataDir (cluster.Config.DataDir).
func (s *Store) Restart(id transport.NodeID) error { return s.inner.Restart(id) }

// Close stops every node. The mesh is owned by the caller.
func (s *Store) Close() { s.inner.Close() }
