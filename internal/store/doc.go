// Package store implements a sharded multi-object CRDT store: a keyspace
// in which every key is replicated by its own independent, lightweight SMR
// instance of the paper's protocol.
//
// Skrzypczak, Schintke & Schütt (PODC 2019) replicate a single CRDT
// payload. Because the protocol keeps no cross-command log — per-replica
// protocol state is the payload plus one round counter — replication
// instances compose per key with no shared ordering machinery: unlike
// Multi-Paxos or Raft, nothing about key A's commands constrains key B's.
// The store exploits that: each key is its own replica group state
// (core.Replica), all keys on a node share one event loop and one
// transport connection (cluster.Node routes messages by the object-ID
// envelope), and per-key instances are instantiated lazily on first touch.
// Linearizability holds per key, which is exactly the guarantee a sharded
// keyspace offers.
package store
