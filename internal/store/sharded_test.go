package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

func incBy(slot string, n uint64) crdt.Update {
	return func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(slot, n), nil
	}
}

func groupCfg(prefix string) cluster.Config {
	return cluster.Config{
		Members: []transport.NodeID{
			transport.NodeID(prefix + "-a"),
			transport.NodeID(prefix + "-b"),
			transport.NodeID(prefix + "-c"),
		},
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
}

// TestRingIncrementalMovement pins the property the consistent-hash ring
// exists for: adding one group to three moves roughly a quarter of the
// keyspace and never moves a key between two groups that were both
// present before and after.
func TestRingIncrementalMovement(t *testing.T) {
	before := NewRing([]string{"g1", "g2", "g3"}, 0)
	after := NewRing([]string{"g1", "g2", "g3", "g4"}, 0)
	const n = 4096
	movedToNew, movedBetweenOld := 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key/%d", i)
		a, b := before.Owner(key), after.Owner(key)
		if a == b {
			continue
		}
		if b == "g4" {
			movedToNew++
		} else {
			movedBetweenOld++
		}
	}
	if movedBetweenOld != 0 {
		t.Fatalf("%d keys moved between pre-existing groups; consistent hashing must only move keys to the new group", movedBetweenOld)
	}
	if movedToNew < n/8 || movedToNew > n/2 {
		t.Fatalf("%d/%d keys moved to the new group, want roughly 1/4", movedToNew, n)
	}
	if got := before.Owner("k"); got != before.Owner("k") {
		t.Fatal("Owner must be deterministic")
	}
	if empty := (&Ring{}).Owner("k"); empty != "" {
		t.Fatalf("empty ring owner = %q, want empty", empty)
	}
}

// TestShardedRebalanceHandoff: grow a 2-group sharded store to 3 groups
// under a live workload. Every acknowledged increment must be readable
// after the rebalance — the per-key handoff (linearizable snapshot from
// the old group, merge into the new, redirect) can never lose an acked
// op, including ops racing the handoff itself — and the moved-key
// counters must account for every scanned key.
func TestShardedRebalanceHandoff(t *testing.T) {
	mesh := transport.NewMesh(transport.WithSeed(9))
	defer mesh.Close()
	s, err := NewSharded(mesh, []GroupConfig{
		{Name: "g1", Cfg: groupCfg("g1")},
		{Name: "g2", Cfg: groupCfg("g2")},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const nKeys = 24
	acked := make([]int, nKeys)
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("obj/%d", k)
		if _, err := s.Update(ctx, key, incBy("w", 1)); err != nil {
			t.Fatalf("seed update %s: %v", key, err)
		}
		acked[k]++
	}

	if err := s.AddGroup("g3", groupCfg("g3")); err != nil {
		t.Fatal(err)
	}

	// Writers race the rebalance: each key takes more increments while
	// ownership may be moving under it.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for k := 0; k < nKeys; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("obj/%d", k)
			for i := 0; i < 3; i++ {
				if _, err := s.Update(ctx, key, incBy("w", 1)); err != nil {
					t.Errorf("racing update %s: %v", key, err)
					return
				}
				mu.Lock()
				acked[k]++
				mu.Unlock()
			}
		}()
	}
	stats, err := s.Rebalance(ctx, []string{"g1", "g2", "g3"})
	wg.Wait()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if stats.Moved == 0 {
		t.Fatalf("rebalance moved no keys out of %d scanned; adding a group must claim arcs", stats.Scanned)
	}
	if stats.Moved+stats.Stayed != stats.Scanned {
		t.Fatalf("stats don't add up: %+v", stats)
	}
	if got := s.Stats(); got.Moved != stats.Moved {
		t.Fatalf("cumulative stats = %+v, want Moved %d", got, stats.Moved)
	}

	// Every key now routes by the new ring, some to g3, and no increment
	// was lost.
	sawG3 := false
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("obj/%d", k)
		if s.Owner(key) == "g3" {
			sawG3 = true
		}
		st, _, err := s.Query(ctx, key)
		if err != nil {
			t.Fatalf("query %s after rebalance: %v", key, err)
		}
		if got := st.(*crdt.GCounter).Value(); got != uint64(acked[k]) {
			t.Fatalf("key %s = %d after rebalance, want %d acked (handoff lost ops)", key, got, acked[k])
		}
	}
	if !sawG3 {
		t.Fatal("no key routed to the new group after rebalance")
	}

	// Shrink back: rebalance g3's arcs away, then the group can go.
	stats, err = s.Rebalance(ctx, []string{"g1", "g2"})
	if err != nil {
		t.Fatalf("shrink rebalance: %v", err)
	}
	if err := s.RemoveGroup("g3"); err != nil {
		t.Fatalf("remove g3: %v", err)
	}
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("obj/%d", k)
		st, _, err := s.Query(ctx, key)
		if err != nil {
			t.Fatalf("query %s after shrink: %v", key, err)
		}
		if got := st.(*crdt.GCounter).Value(); got != uint64(acked[k]) {
			t.Fatalf("key %s = %d after shrink, want %d", key, got, acked[k])
		}
	}
}

// TestRemoveGroupRefusesWhileOwning: a group still holding ring arcs
// cannot be removed — dropping it would orphan its keys.
func TestRemoveGroupRefusesWhileOwning(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	s, err := NewSharded(mesh, []GroupConfig{
		{Name: "g1", Cfg: groupCfg("g1")},
		{Name: "g2", Cfg: groupCfg("g2")},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RemoveGroup("g2"); err == nil {
		t.Fatal("RemoveGroup succeeded while g2 owns ring arcs")
	}
	if err := s.RemoveGroup("nope"); err == nil {
		t.Fatal("RemoveGroup of unknown group succeeded")
	}
}
