package store

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash map from object keys to replication groups.
// Each group projects vnodes points onto a 32-bit hash circle; a key is
// owned by the group whose point follows the key's hash. Consistent
// hashing is what makes rebalancing incremental: adding or removing one
// group moves only the keys whose arc changed owner (≈ 1/groups of the
// keyspace), never reshuffles everything the way modular hashing would.
//
// A Ring is immutable after construction: rebalancing builds a new ring
// and migrates the keys whose owner differs between the two.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint32
	group string
}

// DefaultVnodes is the per-group vnode count used when NewRing is given
// zero: enough points that group arcs interleave and load spreads, small
// enough that ring construction stays trivial.
const DefaultVnodes = 64

// NewRing builds a ring over the given group names. Ties on the circle
// (hash collisions between groups' vnodes) break deterministically by
// group name, so every node computes the identical ring from the same
// group list.
func NewRing(groups []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(groups)*vnodes)}
	for _, g := range groups {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: fnv32(fmt.Sprintf("%s#%d", g, i)), group: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].group < r.points[j].group
	})
	return r
}

// Owner returns the group owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point on the circle
	}
	return r.points[i].group
}

// Groups returns the distinct group names on the ring, sorted.
func (r *Ring) Groups() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.group] {
			seen[p.group] = true
			out = append(out, p.group)
		}
	}
	sort.Strings(out)
	return out
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
