package store

import (
	"context"
	"fmt"
	"sync"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// Sharded is a keyspace spread over several replication groups by
// consistent hashing. Each group is an independent cluster (its own
// member set, its own per-key quorums); the ring decides which group owns
// each key, and Rebalance moves ownership online when groups are added or
// removed — per key, with a linearizable snapshot handoff, while every
// other key keeps serving.
//
// Routing happens here, at the store layer: commands name a key, the ring
// names the group, and the group's protocol provides per-key
// linearizability exactly as before. Groups know nothing about each
// other — the handoff is a client of both.
type Sharded struct {
	mesh *transport.Mesh

	mu     sync.RWMutex
	ring   *Ring
	next   *Ring // non-nil while a rebalance is migrating keys
	moved  map[string]bool
	groups map[string]*Store
	vnodes int

	lockMu sync.Mutex
	locks  map[string]*sync.RWMutex // per-key handoff gates

	statMu sync.Mutex
	stats  RebalanceStats // cumulative across every Rebalance
}

// RebalanceStats counts one (or, on Sharded.Stats, every) rebalance's
// key movements.
type RebalanceStats struct {
	// Scanned is how many instantiated keys were examined.
	Scanned int
	// Moved is how many keys changed owner and were handed off.
	Moved int
	// Stayed is how many keys kept their owner (no handoff needed).
	Stayed int
}

// GroupConfig names one replication group and its cluster configuration.
type GroupConfig struct {
	Name string
	Cfg  cluster.Config
}

// NewSharded starts one cluster per group over the shared mesh and builds
// the ring. Node IDs must be unique across groups (the mesh is one
// namespace); every group must share Initial/InitialForKey so a key's
// payload type is the same wherever it lands.
func NewSharded(mesh *transport.Mesh, groups []GroupConfig, vnodes int) (*Sharded, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("store: sharded store needs at least one group")
	}
	s := &Sharded{
		mesh:   mesh,
		moved:  make(map[string]bool),
		groups: make(map[string]*Store, len(groups)),
		locks:  make(map[string]*sync.RWMutex),
		vnodes: vnodes,
	}
	names := make([]string, 0, len(groups))
	for _, g := range groups {
		if _, dup := s.groups[g.Name]; dup {
			s.Close()
			return nil, fmt.Errorf("store: duplicate group %q", g.Name)
		}
		st, err := New(mesh, g.Cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store: group %q: %w", g.Name, err)
		}
		s.groups[g.Name] = st
		names = append(names, g.Name)
	}
	s.ring = NewRing(names, vnodes)
	return s, nil
}

// Group returns the named group's store, or nil.
func (s *Sharded) Group(name string) *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.groups[name]
}

// Owner returns the group currently serving key — the next ring's owner
// once the key has been handed off mid-rebalance, the current ring's
// otherwise.
func (s *Sharded) Owner(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ownerLocked(key)
}

func (s *Sharded) ownerLocked(key string) string {
	if s.next != nil && s.moved[key] {
		return s.next.Owner(key)
	}
	return s.ring.Owner(key)
}

func (s *Sharded) storeFor(key string) (*Store, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.ownerLocked(key)
	st := s.groups[g]
	if st == nil {
		return nil, fmt.Errorf("store: no group owns key %q", key)
	}
	return st, nil
}

// keyGate returns the per-key handoff gate, creating it on first use.
// Commands hold it shared; a handoff holds it exclusively for the brief
// read-merge-redirect window, so a command can never slip between the
// old group's final snapshot and the routing flip.
func (s *Sharded) keyGate(key string) *sync.RWMutex {
	s.lockMu.Lock()
	defer s.lockMu.Unlock()
	l, ok := s.locks[key]
	if !ok {
		l = &sync.RWMutex{}
		s.locks[key] = l
	}
	return l
}

// Update applies a monotone update to key at its owning group, submitted
// to the group replica the key hashes to (spreading proposer load).
func (s *Sharded) Update(ctx context.Context, key string, fu crdt.Update) (core.UpdateStats, error) {
	gate := s.keyGate(key)
	gate.RLock()
	defer gate.RUnlock()
	st, err := s.storeFor(key)
	if err != nil {
		return core.UpdateStats{}, err
	}
	return st.Update(ctx, pickReplica(st, key), key, fu)
}

// Query learns a linearizable state of key from its owning group.
func (s *Sharded) Query(ctx context.Context, key string) (crdt.State, core.QueryStats, error) {
	gate := s.keyGate(key)
	gate.RLock()
	defer gate.RUnlock()
	st, err := s.storeFor(key)
	if err != nil {
		return nil, core.QueryStats{}, err
	}
	return st.Query(ctx, pickReplica(st, key), key)
}

// pickReplica spreads keys across a group's replicas deterministically.
func pickReplica(st *Store, key string) transport.NodeID {
	ids := st.ids
	return ids[int(fnv32(key))%len(ids)]
}

// AddGroup starts a new replication group over the shared mesh. The
// group serves nothing until the next Rebalance assigns it arcs of the
// ring and hands the affected keys off.
func (s *Sharded) AddGroup(name string, cfg cluster.Config) error {
	st, err := New(s.mesh, cfg)
	if err != nil {
		return fmt.Errorf("store: group %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.groups[name]; dup {
		st.Close()
		return fmt.Errorf("store: duplicate group %q", name)
	}
	if s.next != nil {
		st.Close()
		return fmt.Errorf("store: rebalance in progress")
	}
	s.groups[name] = st
	return nil
}

// RemoveGroup stops the named group. It must no longer own any arc of
// the ring — call Rebalance after the group list changed and before
// removing, so its keys were handed off.
func (s *Sharded) RemoveGroup(name string) error {
	s.mu.Lock()
	st, ok := s.groups[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("store: unknown group %q", name)
	}
	if s.next != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: rebalance in progress")
	}
	for _, g := range s.ring.Groups() {
		if g == name {
			s.mu.Unlock()
			return fmt.Errorf("store: group %q still owns ring arcs; rebalance first", name)
		}
	}
	delete(s.groups, name)
	s.mu.Unlock()
	st.Close()
	return nil
}

// Rebalance recomputes the ring over the given group list (every name
// must be a started group) and migrates each key whose owner changed,
// one at a time: the key's gate closes, a linearizable query captures
// everything the old group ever acknowledged for the key, a merge update
// commits that state on the new group's quorum, and the gate reopens
// with routing flipped — the redirect. Keys whose owner is unchanged,
// and every other key between handoffs, keep serving throughout. The
// moved/stayed counts are returned and accumulated on Stats.
//
// An error aborts the migration with the keys moved so far serving from
// their new owner and the rest from their old one — safe (routing is
// per-key and each handoff is atomic behind its gate) but lopsided;
// rerunning Rebalance resumes where it stopped, since already-moved keys
// hash to their new owner under both rings.
func (s *Sharded) Rebalance(ctx context.Context, groupNames []string) (RebalanceStats, error) {
	s.mu.Lock()
	if s.next != nil {
		s.mu.Unlock()
		return RebalanceStats{}, fmt.Errorf("store: rebalance already in progress")
	}
	for _, g := range groupNames {
		if _, ok := s.groups[g]; !ok {
			s.mu.Unlock()
			return RebalanceStats{}, fmt.Errorf("store: unknown group %q", g)
		}
	}
	next := NewRing(groupNames, s.vnodes)
	s.next = next
	s.moved = make(map[string]bool)
	old := s.ring
	s.mu.Unlock()

	var stats RebalanceStats
	finish := func() {
		s.mu.Lock()
		s.ring = next
		s.next = nil
		s.moved = make(map[string]bool)
		s.mu.Unlock()
		s.statMu.Lock()
		s.stats.Scanned += stats.Scanned
		s.stats.Moved += stats.Moved
		s.stats.Stayed += stats.Stayed
		s.statMu.Unlock()
	}

	for _, key := range s.allKeys() {
		stats.Scanned++
		from, to := old.Owner(key), next.Owner(key)
		if from == to {
			stats.Stayed++
			continue
		}
		if err := s.handoff(ctx, key, from, to); err != nil {
			finish()
			return stats, fmt.Errorf("store: handoff %q %s→%s: %w", key, from, to, err)
		}
		stats.Moved++
	}
	finish()
	return stats, nil
}

// handoff moves one key: snapshot from the old owner, merge into the new
// one, redirect. The key's gate is held exclusively, so no command is in
// flight at the old group past the snapshot.
func (s *Sharded) handoff(ctx context.Context, key, from, to string) error {
	gate := s.keyGate(key)
	gate.Lock()
	defer gate.Unlock()
	s.mu.RLock()
	src, dst := s.groups[from], s.groups[to]
	s.mu.RUnlock()
	if src == nil || dst == nil {
		return fmt.Errorf("group missing (from=%v to=%v)", src != nil, dst != nil)
	}
	snap, _, err := src.Query(ctx, pickReplica(src, key), key)
	if err != nil {
		return fmt.Errorf("snapshot query: %w", err)
	}
	_, err = dst.Update(ctx, pickReplica(dst, key), key, func(st crdt.State) (crdt.State, error) {
		return st.Merge(snap)
	})
	if err != nil {
		return fmt.Errorf("merge update: %w", err)
	}
	s.mu.Lock()
	s.moved[key] = true
	s.mu.Unlock()
	return nil
}

// allKeys is the union of every group's instantiated keys. The old
// owner's copy of a moved key stays instantiated (and inert — nothing
// routes to it), so later rebalances judge ownership by ring position
// alone, which already-moved keys satisfy under both rings.
func (s *Sharded) allKeys() []string {
	s.mu.RLock()
	groups := make([]*Store, 0, len(s.groups))
	for _, st := range s.groups {
		groups = append(groups, st)
	}
	s.mu.RUnlock()
	seen := make(map[string]bool)
	var keys []string
	for _, st := range groups {
		for _, k := range st.AllKeys() {
			if k == "" {
				continue // every node's eager default object, never routed here
			}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// Stats returns the cumulative rebalance counters.
func (s *Sharded) Stats() RebalanceStats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// Close stops every group.
func (s *Sharded) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.groups {
		st.Close()
	}
}
