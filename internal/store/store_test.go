package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/internal/checker"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

func members(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}

func testConfig(n int) cluster.Config {
	return cluster.Config{
		Members:            members(n),
		Initial:            crdt.NewGCounter(),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
}

func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func inc(slot string) crdt.Update {
	return func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.GCounter).Inc(slot, 1), nil
	}
}

func TestStoreKeysAreIndependent(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	st, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 10*time.Second)

	if _, err := st.Update(ctx, "n1", "a", inc("n1")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(ctx, "n2", "b", inc("n2")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(ctx, "n2", "b", inc("n2")); err != nil {
		t.Fatal(err)
	}

	sa, _, err := st.Query(ctx, "n3", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := sa.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("key a = %d, want 1", got)
	}
	sb, _, err := st.Query(ctx, "n1", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.(*crdt.GCounter).Value(); got != 2 {
		t.Fatalf("key b = %d, want 2", got)
	}
	// A never-touched key reads as the bottom element, linearizably.
	sc, _, err := st.Query(ctx, "n2", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.(*crdt.GCounter).Value(); got != 0 {
		t.Fatalf("key c = %d, want 0", got)
	}
}

func TestStoreLazyInstantiation(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	st, err := New(mesh, testConfig(3))
	defer func() {
		if st != nil {
			st.Close()
		}
	}()
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t, 10*time.Second)

	// Only the default object exists at startup.
	if got := st.Objects("n1"); got != 1 {
		t.Fatalf("objects at start = %d, want 1 (default)", got)
	}

	// An update at n1 instantiates the key on a quorum (the proposer and
	// the acceptors that merged), and retransmits eventually reach n3 too.
	if _, err := st.Update(ctx, "n1", "fresh", inc("n1")); err != nil {
		t.Fatal(err)
	}
	keys := st.Keys("n1")
	if len(keys) != 2 || keys[0] != cluster.DefaultKey || keys[1] != "fresh" {
		t.Fatalf("keys at n1 = %q", keys)
	}

	// A remote replica instantiates on first inbound message for the key:
	// querying at n3 must see the update, so n3 has the object by then.
	s, _, err := st.Query(ctx, "n3", "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("value at n3 = %d, want 1", got)
	}
	if got := st.Objects("n3"); got != 2 {
		t.Fatalf("objects at n3 = %d, want 2", got)
	}
	if all := st.AllKeys(); len(all) != 2 {
		t.Fatalf("union keys = %q", all)
	}
}

func TestStoreMixedTypesPerKey(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.InitialForKey = func(key string) crdt.State {
		if key == "flags" {
			return crdt.NewORSet()
		}
		return crdt.NewGCounter()
	}
	st, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 10*time.Second)

	if _, err := st.Update(ctx, "n1", "flags", func(s crdt.State) (crdt.State, error) {
		return s.(*crdt.ORSet).Add("beta", "n1", 1), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(ctx, "n2", "hits", inc("n2")); err != nil {
		t.Fatal(err)
	}

	s, _, err := st.Query(ctx, "n3", "flags")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*crdt.ORSet).Elements(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("flags = %v", got)
	}
	h, _, err := st.Query(ctx, "n3", "hits")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.(*crdt.GCounter).Value(); got != 1 {
		t.Fatalf("hits = %d", got)
	}
}

// TestStoreManyKeysLinearizable is the scaling acceptance test: a 3-node
// cluster serves 64 independent keys concurrently, every key driven by
// clients on different replicas, and the recorded multi-object history is
// verified per-key linearizable by the checker.
func TestStoreManyKeysLinearizable(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	st, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 60*time.Second)

	const nKeys = 64
	const opsPerClient = 12
	ids := st.NodeIDs()
	kh := checker.NewKeyedHistory()
	var wg sync.WaitGroup
	var failures atomic.Int64

	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("obj/%02d", k)
		// Two clients per key, pinned to different replicas so every key's
		// traffic crosses the network.
		for c := 0; c < 2; c++ {
			at := ids[(k+c)%len(ids)]
			wg.Add(1)
			go func(key string, at transport.NodeID, slot string) {
				defer wg.Done()
				h := kh.For(key)
				for i := 0; i < opsPerClient; i++ {
					id := h.Begin(checker.OpInc)
					if _, err := st.Update(ctx, at, key, inc(slot)); err != nil {
						h.Discard(id)
						failures.Add(1)
						return
					}
					h.End(id, 0)

					if i%3 == 0 {
						id = h.Begin(checker.OpRead)
						s, _, err := st.Query(ctx, at, key)
						if err != nil {
							h.Discard(id)
							failures.Add(1)
							return
						}
						h.End(id, s.(*crdt.GCounter).Value())
					}
				}
			}(key, at, string(at)+"/"+key+fmt.Sprint(c))
		}
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d clients failed", failures.Load())
	}

	if err := checker.CheckKeyedLinearizable(kh); err != nil {
		t.Fatalf("multi-object history not per-key linearizable: %v", err)
	}
	if got := len(kh.Keys()); got != nKeys {
		t.Fatalf("recorded %d keys, want %d", got, nKeys)
	}

	// Every key's final value must equal its increments (2 clients × ops).
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("obj/%02d", k)
		s, _, err := st.Query(ctx, ids[k%len(ids)], key)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.(*crdt.GCounter).Value(); got != 2*opsPerClient {
			t.Fatalf("key %s = %d, want %d", key, got, 2*opsPerClient)
		}
	}

	// All 64 keys multiplexed over each node's one connection and loop.
	for _, id := range ids {
		if got := st.Objects(id); got < nKeys {
			t.Fatalf("node %s instantiated %d objects, want ≥ %d", id, got, nKeys)
		}
	}
}

// TestStorePartitionFailover is the Jepsen-style fault test: it drives
// Mesh.SetDown against the store mid-workload — crash a minority, keep
// operating, recover, crash a different node — and then checks every key's
// history for linearizability and the final values for lost updates.
func TestStorePartitionFailover(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.RetransmitInterval = 10 * time.Millisecond
	st, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 60*time.Second)

	const nKeys = 8
	ids := st.NodeIDs()
	kh := checker.NewKeyedHistory()
	var expected [nKeys]atomic.Uint64

	// Phase driver: n3 down → heal → n1 down → heal. SetDown drops the
	// node's traffic at the mesh while its state survives (crash-recovery
	// model); clients pinned to healthy replicas keep a quorum.
	phase := func(down transport.NodeID, healthy []transport.NodeID) {
		if down != "" {
			mesh.SetDown(down, true)
			defer mesh.SetDown(down, false)
		}
		var wg sync.WaitGroup
		for k := 0; k < nKeys; k++ {
			key := fmt.Sprintf("key/%d", k)
			at := healthy[k%len(healthy)]
			wg.Add(1)
			go func(k int, key string, at transport.NodeID) {
				defer wg.Done()
				h := kh.For(key)
				for i := 0; i < 6; i++ {
					id := h.Begin(checker.OpInc)
					if _, err := st.Update(ctx, at, key, inc(string(at)+key)); err != nil {
						// An aborted increment may or may not have taken
						// effect; treating it as absent could under-count,
						// so fail the test instead of guessing.
						h.Discard(id)
						t.Errorf("update %s at %s: %v", key, at, err)
						return
					}
					h.End(id, 0)
					expected[k].Add(1)

					id = h.Begin(checker.OpRead)
					s, _, err := st.Query(ctx, at, key)
					if err != nil {
						h.Discard(id)
						t.Errorf("query %s at %s: %v", key, at, err)
						return
					}
					h.End(id, s.(*crdt.GCounter).Value())
				}
			}(k, key, at)
		}
		wg.Wait()
	}

	phase("", ids)                              // healthy cluster
	phase("n3", []transport.NodeID{"n1", "n2"}) // minority down
	phase("", ids)                              // healed
	phase("n1", []transport.NodeID{"n2", "n3"}) // different minority
	phase("", ids)                              // healed again

	if t.Failed() {
		return
	}
	if err := checker.CheckKeyedLinearizable(kh); err != nil {
		t.Fatalf("history across failovers not per-key linearizable: %v", err)
	}
	// No lost updates: each key's final value equals its completed incs,
	// readable at the twice-partitioned replicas too.
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("key/%d", k)
		for _, at := range ids {
			s, _, err := st.Query(ctx, at, key)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.(*crdt.GCounter).Value(); got != expected[k].Load() {
				t.Fatalf("key %s at %s = %d, want %d", key, at, got, expected[k].Load())
			}
		}
	}
}

func TestStoreMajorityDownBlocksKey(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	st, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	mesh.SetDown("n2", true)
	mesh.SetDown("n3", true)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := st.Update(ctx, "n1", "k", inc("n1")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded without a quorum", err)
	}
}

func TestStoreBatchingPerKey(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.BatchInterval = 2 * time.Millisecond
	st, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 30*time.Second)

	const nKeys = 4
	const clientsPerKey = 4
	const ops = 8
	var wg sync.WaitGroup
	var failed atomic.Int64
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("batched/%d", k)
		for c := 0; c < clientsPerKey; c++ {
			wg.Add(1)
			go func(key, slot string) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					if _, err := st.Update(ctx, "n1", key, inc(slot)); err != nil {
						failed.Add(1)
						return
					}
				}
			}(key, fmt.Sprintf("%s/%d", key, c))
		}
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d clients failed", failed.Load())
	}
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("batched/%d", k)
		s, _, err := st.Query(ctx, "n2", key)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.(*crdt.GCounter).Value(); got != clientsPerKey*ops {
			t.Fatalf("key %s = %d, want %d", key, got, clientsPerKey*ops)
		}
	}
	// Batching amortized protocol runs across each key's commands.
	counters := st.Node("n1").Counters()
	if counters.Updates >= nKeys*clientsPerKey*ops {
		t.Fatalf("ran %d update protocol rounds for %d commands; per-key batching ineffective",
			counters.Updates, nKeys*clientsPerKey*ops)
	}
}

func TestStoreRejectsBadConfig(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.Initial = nil
	if _, err := New(mesh, cfg); err == nil {
		t.Fatal("nil initial payload accepted")
	}

	st, err := New(mesh, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 2*time.Second)
	if _, err := st.Update(ctx, "ghost", "k", inc("x")); err == nil {
		t.Fatal("unknown replica accepted")
	}
	if _, _, err := st.Query(ctx, "ghost", "k"); err == nil {
		t.Fatal("unknown replica accepted for query")
	}
}

func TestStoreRejectedKey(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	cfg := testConfig(3)
	cfg.InitialForKey = func(key string) crdt.State {
		if key == "forbidden" {
			return nil
		}
		return crdt.NewGCounter()
	}
	st, err := New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := testCtx(t, 5*time.Second)
	if _, err := st.Update(ctx, "n1", "forbidden", inc("x")); err == nil {
		t.Fatal("key with nil initial state accepted")
	}
	if _, err := st.Update(ctx, "n1", "allowed", inc("x")); err != nil {
		t.Fatal(err)
	}
}
