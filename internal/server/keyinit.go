package server

import (
	"strings"

	"crdtsmr/internal/crdt"
)

// TypedKeyInitial returns a cluster.Config.InitialForKey function
// implementing the serving layer's key-naming convention: a key whose
// first path segment is a registered CRDT type name holds a fresh payload
// of that type ("or-set/sessions/eu" is an OR-Set, "lww-register/config"
// an LWW-Register); every other key holds a fresh payload of defaultType.
//
// The rule is a pure function of the key, so every replica derives the
// same initial payload independently — the precondition for per-key
// instantiation without coordination. cmd/crdtsmrd installs it on every
// node; docs/PROTOCOL.md documents it as part of the serving contract.
func TypedKeyInitial(defaultType string) func(key string) crdt.State {
	return func(key string) crdt.State {
		prefix, _, _ := strings.Cut(key, "/") // whole key if it has no "/"
		if s, err := crdt.New(prefix); err == nil {
			return s
		}
		s, err := crdt.New(defaultType)
		if err != nil {
			return nil // unknown default type: reject every key
		}
		return s
	}
}
