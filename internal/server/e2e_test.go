package server_test

// End-to-end acceptance test of the serving layer: a 3-node cluster whose
// replicas talk to each other over the real TCP transport (the same
// wiring cmd/crdtsmrd uses), each node fronted by a network server, under
// many concurrent crdtsmr/client clients working several keys. Every
// completed operation is recorded in a keyed history and checked with the
// per-key linearizability checker — the guarantee must survive the full
// path: client frame → server → per-key replica → quorum → response.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/checker"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// reservePorts picks n distinct loopback addresses by binding and
// releasing listeners, so the nodes' TCP transports can be configured
// with each other's addresses up front.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return addrs
}

func TestNetworkPathLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second network test")
	}
	const (
		replicas = 3
		nKeys    = 4
		clients  = 12 // concurrent clients, spread over keys and servers
		opsEach  = 25
	)

	ids := make([]transport.NodeID, replicas)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	meshAddrs := reservePorts(t, replicas)
	book := make(map[transport.NodeID]string, replicas)
	for i, id := range ids {
		book[id] = meshAddrs[i]
	}

	cfg := cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
	var nodes []*cluster.Node
	var servers []*server.Server
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	serverAddrs := make([]string, 0, replicas)
	for _, id := range ids {
		node, err := cluster.NewNode(id, cfg, func(nid transport.NodeID, h transport.Handler) transport.Conn {
			peers := make(map[transport.NodeID]string)
			for p, a := range book {
				if p != nid {
					peers[p] = a
				}
			}
			tcp, err := transport.NewTCP(nid, book[nid], peers, h)
			if err != nil {
				t.Fatalf("tcp %s: %v", nid, err)
			}
			return tcp
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		srv, err := server.Start(node, "127.0.0.1:0", server.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		serverAddrs = append(serverAddrs, srv.Addr())
	}

	hist := checker.NewKeyedHistory()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		key := fmt.Sprintf("obj/%d", i%nKeys)
		addr := serverAddrs[(i/nKeys)%replicas]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.New([]string{addr}, client.WithRequestTimeout(10*time.Second))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ctr := c.Counter(key)
			h := hist.For(key)
			for op := 0; op < opsEach; op++ {
				if op%3 == 0 {
					id := h.Begin(checker.OpInc)
					if err := ctr.Inc(ctx, 1); err != nil {
						h.Discard(id)
						errs <- fmt.Errorf("inc %s: %w", key, err)
						return
					}
					h.End(id, 0)
				} else {
					id := h.Begin(checker.OpRead)
					v, err := ctr.Value(ctx)
					if err != nil {
						h.Discard(id)
						errs <- fmt.Errorf("read %s: %w", key, err)
						return
					}
					h.End(id, v)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := hist.Ops(); got != clients*opsEach {
		t.Fatalf("recorded %d ops, want %d", got, clients*opsEach)
	}
	if err := checker.CheckKeyedLinearizable(hist); err != nil {
		t.Fatalf("history through the network path is not linearizable: %v", err)
	}
}
