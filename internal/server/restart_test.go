package server_test

import (
	"context"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// TestServerSurvivesNodeRestart: the serving layer stays bound across a
// Node.Restart — connections keep working, and values served afterwards
// come from the rehydrated keyspace. A single-node cluster makes the
// durability claim sharpest: there is no quorum partner to re-learn from,
// so everything the restarted node serves was read from its snapshots —
// and it also exercises the persist-before-acknowledge path where the
// update completes locally in the same event that wrote the snapshot.
func TestServerSurvivesNodeRestart(t *testing.T) {
	mesh := transport.NewMesh()
	defer mesh.Close()
	node, err := cluster.NewNode("n1", cluster.Config{
		Members:       []transport.NodeID{"n1"},
		Initial:       crdt.NewGCounter(),
		InitialForKey: server.TypedKeyInitial(crdt.TypeGCounter),
		DataDir:       t.TempDir(),
		PersistSync:   persist.SyncNone,
	}, func(id transport.NodeID, h transport.Handler) transport.Conn {
		return mesh.Join(id, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv, err := server.Start(node, "127.0.0.1:0", server.Options{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.New([]string{srv.Addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 6, Backoff: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if err := c.Counter("views").Inc(ctx, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("or-set/users").Add(ctx, "alice"); err != nil {
		t.Fatal(err)
	}

	if err := node.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}

	// Same server, same client pool: the restarted node must serve the
	// snapshot-recovered values.
	v, err := c.Counter("views").Value(ctx)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if v != 9 {
		t.Fatalf("views = %d after restart, want 9", v)
	}
	members, err := c.Set("or-set/users").Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != "alice" {
		t.Fatalf("or-set after restart = %v, want [alice]", members)
	}

	// And it keeps accepting writes on the recovered state.
	if err := c.Counter("views").Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Counter("views").Value(ctx); err != nil || v != 10 {
		t.Fatalf("views = %d (%v) after post-restart inc, want 10", v, err)
	}
}
