package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// Options configure a Server.
type Options struct {
	// RequestTimeout bounds one request's protocol run. Default 10 s.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing requests per connection;
	// further pipelined frames wait. Default 256.
	MaxInFlight int
	// WriteTimeout bounds one response write. A client that pipelines
	// requests but stops reading would otherwise pin the connection's
	// responder goroutines on a full TCP window forever. Default 30 s.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served client connections. A connection
	// accepted over the cap is answered with a single StatusBusy frame
	// (request ID 0) and closed before any request is read — fd and
	// goroutine cost stays bounded under a connection flood. Default 1024.
	MaxConns int
	// MaxTotalInFlight caps concurrently executing requests across ALL
	// connections. Unlike the per-connection MaxInFlight — whose excess
	// pipelined frames queue, which is that one client's own
	// backpressure — server-wide excess is shed immediately with
	// StatusBusy: queuing other clients' load behind a global limit
	// would turn overload into unbounded latency for everyone.
	// Default 4096.
	MaxTotalInFlight int
	// MemberAddrs maps replica IDs to the client-facing addresses they
	// serve this protocol on. The "members" admin command returns it next
	// to the member list, which is what lets a client refresh its endpoint
	// set after a reconfiguration. Members without an entry are reported
	// with an empty address. Optional; the map is copied.
	MemberAddrs map[string]string
	// RegisterPeer, when set, is invoked by the "member-add" admin command
	// with the joiner's ID and replica-mesh address before the
	// reconfiguration runs, so the local transport can dial a peer it was
	// not configured with at boot (crdtsmrd wires this to TCP.AddPeer).
	// Optional; without it, member-add only accepts peers the transport
	// already knows.
	RegisterPeer func(id, addr string) error
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxConns <= 0 {
		o.MaxConns = 1024
	}
	if o.MaxTotalInFlight <= 0 {
		o.MaxTotalInFlight = 4096
	}
	return o
}

// Server serves the client frame protocol (docs/PROTOCOL.md) on top of
// one replica's cluster.Node.
type Server struct {
	node *cluster.Node
	opts Options
	ln   net.Listener

	ctx    context.Context // canceled on Close; bounds request contexts
	cancel context.CancelFunc

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// addrMu guards memberAddrs: the "member-add" admin command extends
	// the registry at runtime when the operator supplies the joiner's
	// client address.
	addrMu      sync.Mutex
	memberAddrs map[string]string

	quit   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup

	// seq feeds observed-remove add tags; seeded from the wall clock so
	// tags stay unique across server restarts of the same replica ID.
	seq atomic.Uint64

	served atomic.Uint64 // requests answered, all statuses

	inflight     atomic.Int64  // requests executing across all connections
	shedConns    atomic.Uint64 // connections refused at accept (StatusBusy handshake)
	shedRequests atomic.Uint64 // requests answered StatusBusy over MaxTotalInFlight
}

// New returns a server for node. The node is owned by the caller and must
// outlive the server.
func New(node *cluster.Node, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		node:        node,
		opts:        opts.withDefaults(),
		ctx:         ctx,
		cancel:      cancel,
		conns:       make(map[net.Conn]struct{}),
		memberAddrs: make(map[string]string, len(opts.MemberAddrs)),
		quit:        make(chan struct{}),
	}
	for id, addr := range opts.MemberAddrs {
		s.memberAddrs[id] = addr
	}
	s.seq.Store(uint64(time.Now().UnixNano()))
	return s
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in the background until Close.
func Start(node *cluster.Node, addr string, opts Options) (*Server, error) {
	s := New(node, opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return s, nil
}

// Serve accepts client connections on ln until Close. It returns nil once
// the server is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.acceptLoop(ln)
	return nil
}

// Addr returns the listener address, or "" before Serve/Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Served returns the number of requests answered so far.
func (s *Server) Served() uint64 { return s.served.Load() }

// ShedConns returns the number of connections refused at accept because
// MaxConns was reached (each got the StatusBusy close handshake).
func (s *Server) ShedConns() uint64 { return s.shedConns.Load() }

// ShedRequests returns the number of requests answered StatusBusy because
// MaxTotalInFlight was reached.
func (s *Server) ShedRequests() uint64 { return s.shedRequests.Load() }

// Close stops accepting, closes every client connection, and waits for
// in-flight requests to unwind. The underlying node keeps running.
func (s *Server) Close() error {
	s.closed.Do(func() {
		close(s.quit)
		s.cancel()
		s.mu.Lock()
		if s.ln != nil {
			_ = s.ln.Close()
		}
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
				// Transient accept failure (e.g. fd exhaustion under
				// connection load): back off instead of spinning the CPU
				// the replica event loop needs.
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		// Register under the lock and re-check quit there, so a
		// connection accepted concurrently with Close is either seen by
		// Close's shutdown sweep or closed here — never leaked with a
		// blocked reader (which would hang Close in wg.Wait).
		s.mu.Lock()
		select {
		case <-s.quit:
			s.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		if len(s.conns) >= s.opts.MaxConns {
			// Over the connection cap: refuse with an explicit busy
			// handshake instead of a bare close, so the client can tell
			// "server overloaded, back off and retry" apart from a fate
			// it must treat as uncertain. No request frame is ever read,
			// so nothing can have been applied.
			s.wg.Add(1)
			s.mu.Unlock()
			s.shedConns.Add(1)
			go s.refuseConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// refuseConn performs the busy-close handshake on a connection refused at
// admission: one StatusBusy response with request ID 0 (no request was
// read, so there is no ID to echo; docs/PROTOCOL.md §2.5), then close. The
// write runs under the usual write deadline so a non-reading client cannot
// pin the goroutine past it.
//
// The close is a half-close plus a bounded drain, not an immediate Close:
// a client may already have pipelined a request onto the connection, and
// closing with those bytes unread makes the kernel answer with a reset
// that destroys the in-flight busy frame — the client would then see a
// dead connection (an uncertain fate for updates) instead of the provably
// safe refusal this handshake exists to deliver.
func (s *Server) refuseConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	resp := &wire.Response{
		Op:     wire.OpAdmin | wire.RespBit,
		ID:     0,
		Status: wire.StatusBusy,
		Msg:    "server: connection limit reached",
	}
	bw := bufio.NewWriter(conn)
	if wire.WriteFrame(bw, resp.Encode()) != nil {
		return
	}
	if bw.Flush() != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = io.Copy(io.Discard, conn)
}

// connWriter serializes response frames onto one connection. Responses
// are written in completion order; the request ID correlates them. Every
// write runs under a deadline so a non-reading client cannot pin the
// connection's responders once its receive window fills.
type connWriter struct {
	mu      sync.Mutex
	nc      net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

func (w *connWriter) send(resp *wire.Response) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.nc.SetWriteDeadline(time.Now().Add(w.timeout)); err != nil {
		return err
	}
	if err := wire.WriteFrame(w.bw, resp.Encode()); err != nil {
		return err
	}
	return w.bw.Flush()
}

// serveConn reads request frames and dispatches each on its own goroutine
// (bounded by MaxInFlight), which is what lets one connection pipeline.
// An undecodable frame is a connection-level protocol error: with no
// trustworthy request ID to correlate an answer, the server closes the
// connection, like the replica transport does for corrupt framing.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var reqs sync.WaitGroup
	defer func() {
		reqs.Wait()
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	cw := &connWriter{nc: conn, bw: bufio.NewWriter(conn), timeout: s.opts.WriteTimeout}
	sem := make(chan struct{}, s.opts.MaxInFlight)
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(frame)
		if err != nil {
			return
		}
		// Per-connection backpressure first: a connection pipelining past
		// its own MaxInFlight waits here, which only stalls that client's
		// read loop.
		select {
		case sem <- struct{}{}:
		case <-s.quit:
			return
		}
		// Server-wide cap second, and never by waiting: queuing one
		// client's requests behind every other client's would turn
		// overload into unbounded latency for all. Shed with StatusBusy —
		// answered synchronously from the read loop, whose pace the
		// response write naturally bounds.
		if s.inflight.Add(1) > int64(s.opts.MaxTotalInFlight) {
			s.inflight.Add(-1)
			<-sem
			s.shedRequests.Add(1)
			s.served.Add(1)
			busy := &wire.Response{
				Op:     req.Op | wire.RespBit,
				ID:     req.ID,
				Status: wire.StatusBusy,
				Msg:    "server: in-flight request limit reached",
			}
			if cw.send(busy) != nil {
				return
			}
			continue
		}
		reqs.Add(1)
		go func() {
			defer func() { s.inflight.Add(-1); <-sem; reqs.Done() }()
			resp := s.handle(req)
			s.served.Add(1)
			if cw.send(resp) != nil {
				// The client can no longer receive responses; closing the
				// connection unblocks the frame-read loop so the server
				// stops executing requests whose answers are undeliverable.
				_ = conn.Close()
			}
		}()
	}
}

// handle executes one request against the node and renders the response.
func (s *Server) handle(req *wire.Request) *wire.Response {
	resp := &wire.Response{Op: req.Op | wire.RespBit, ID: req.ID}
	ctx, cancel := context.WithTimeout(s.ctx, s.opts.RequestTimeout)
	defer cancel()

	switch req.Op {
	case wire.OpUpdate:
		fu, err := s.updateFor(req)
		if err != nil {
			return fail(resp, err, false)
		}
		stats, err := s.node.UpdateKey(ctx, req.Key, fu)
		if err != nil {
			return fail(resp, err, false)
		}
		resp.Status = wire.StatusOK
		resp.RoundTrips = uint64(stats.RoundTrips)

	case wire.OpQuery:
		st, stats, err := s.node.QueryKey(ctx, req.Key)
		if err != nil {
			return fail(resp, err, true)
		}
		enc, err := crdt.Marshal(st)
		if err != nil {
			return fail(resp, err, true)
		}
		if len(enc)+64 > wire.MaxFrame {
			// Answer terminally instead of letting the oversized response
			// frame silently drop the connection: the key stays diagnosable
			// even when its state outgrows the frame limit.
			return fail(resp, fmt.Errorf("server: state of %q (%d bytes) exceeds the %d-byte frame limit", req.Key, len(enc), wire.MaxFrame), true)
		}
		resp.Status = wire.StatusOK
		resp.RoundTrips = uint64(stats.RoundTrips)
		resp.Attempts = uint64(stats.Attempts)
		resp.Path = byte(stats.Path)
		resp.State = enc

	case wire.OpAdmin:
		return s.handleAdmin(ctx, req, resp)
	}
	return resp
}

// handleAdmin executes one admin command. The command string is a
// space-separated word list: the verb, then its operands ("member-add n4
// 10.0.0.4:7704 10.0.0.4:8704"). Membership commands run the
// reconfiguration protocol on the local node and answer with the
// resulting member list, so the caller learns the new epoch in the same
// round trip.
func (s *Server) handleAdmin(ctx context.Context, req *wire.Request, resp *wire.Response) *wire.Response {
	words := strings.Fields(req.Cmd)
	if len(words) == 0 {
		return fail(resp, badRequestf("server: empty admin command"), true)
	}
	switch verb := words[0]; verb {
	case "ping":
		resp.Status = wire.StatusOK
		resp.Payload = []byte("pong")
	case "keys":
		keys := s.node.Keys()
		w := wire.NewWriter(16 * (len(keys) + 1))
		w.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.Str(k)
		}
		resp.Status = wire.StatusOK
		resp.Payload = w.Bytes()
	case "members":
		resp.Status = wire.StatusOK
		resp.Payload = s.membersPayload()
	case "member-add":
		if len(words) < 2 || len(words) > 4 {
			return fail(resp, badRequestf("server: usage: member-add <id> [mesh-addr] [client-addr]"), false)
		}
		id := transport.NodeID(words[1])
		members := s.node.Members()
		for _, m := range members {
			if m == id {
				return fail(resp, badRequestf("server: %s is already a member", id), false)
			}
		}
		// "-" is the positional placeholder for "no mesh address" (so a
		// client address can be given without one).
		if len(words) >= 3 && words[2] != "-" && s.opts.RegisterPeer != nil {
			if err := s.opts.RegisterPeer(words[1], words[2]); err != nil {
				return fail(resp, fmt.Errorf("server: register peer %s: %w", id, err), false)
			}
		}
		if err := s.node.Reconfigure(ctx, append(members, id)); err != nil {
			return fail(resp, err, false)
		}
		if len(words) == 4 {
			s.addrMu.Lock()
			s.memberAddrs[words[1]] = words[3]
			s.addrMu.Unlock()
		}
		resp.Status = wire.StatusOK
		resp.Payload = s.membersPayload()
	case "member-remove":
		if len(words) != 2 {
			return fail(resp, badRequestf("server: usage: member-remove <id>"), false)
		}
		id := transport.NodeID(words[1])
		members := s.node.Members()
		next := make([]transport.NodeID, 0, len(members))
		for _, m := range members {
			if m != id {
				next = append(next, m)
			}
		}
		if len(next) == len(members) {
			return fail(resp, badRequestf("server: %s is not a member", id), false)
		}
		if len(next) == 0 {
			return fail(resp, badRequestf("server: refusing to remove the last member"), false)
		}
		if err := s.node.Reconfigure(ctx, next); err != nil {
			return fail(resp, err, false)
		}
		s.addrMu.Lock()
		delete(s.memberAddrs, words[1])
		s.addrMu.Unlock()
		resp.Status = wire.StatusOK
		resp.Payload = s.membersPayload()
	default:
		return fail(resp, badRequestf("server: unknown admin command %q", verb), true)
	}
	return resp
}

// membersPayload encodes the node's current configuration: the epoch,
// then each member's ID and client-facing address (empty when the
// registry has none).
func (s *Server) membersPayload() []byte {
	members := s.node.Members()
	s.addrMu.Lock()
	defer s.addrMu.Unlock()
	w := wire.NewWriter(32 * (len(members) + 1))
	w.Uvarint(s.node.Epoch())
	w.Uvarint(uint64(len(members)))
	for _, m := range members {
		w.Str(string(m))
		w.Str(s.memberAddrs[string(m)])
	}
	return w.Bytes()
}

// fail classifies err into a response status. The classification is what
// the client's retry policy keys on, so it errs toward StatusUncertain:
// for updates, only errors that provably precede the protocol run map to
// StatusUnavailable.
//
// readOnly marks operations with no effects (queries, admin commands):
// for those, "was it applied?" is vacuous, so every fate-class failure —
// timeout, abort, shutdown mid-command — is reported as StatusUnavailable
// instead of StatusUncertain. That keeps blind failover safe by
// construction and lets a replica cut off from its quorum (crashed, shut
// down, or partitioned onto a minority side) answer reads with a status
// the client may retry anywhere (docs/PROTOCOL.md §2.5).
func fail(resp *wire.Response, err error, readOnly bool) *wire.Response {
	var bad errBadRequest
	switch {
	case errors.Is(err, cluster.ErrUnavailable):
		resp.Status = wire.StatusUnavailable
	case errors.Is(err, core.ErrNotMember):
		// A joiner not yet reconfigured in, or a replica reconfigured out,
		// refuses the command before running the protocol — provably not
		// applied, so the client may fail over to a current member.
		resp.Status = wire.StatusUnavailable
	case errors.Is(err, cluster.ErrStopped),
		errors.Is(err, core.ErrAborted),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		// ErrStopped is uncertain, not unavailable, for updates: a node
		// closing mid-command can return it after the update was already
		// durable on a quorum, so a blind retry could apply it twice.
		if readOnly {
			resp.Status = wire.StatusUnavailable
		} else {
			resp.Status = wire.StatusUncertain
		}
	case errors.As(err, &bad):
		resp.Status = wire.StatusBadRequest
	default:
		resp.Status = wire.StatusError
	}
	resp.Msg = err.Error()
	return resp
}
