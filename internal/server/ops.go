package server

// The mutation table: named, typed update operations the client protocol
// can request. The replication protocol applies update functions locally
// at the serving replica (§3.2 — update functions never cross the replica
// wire), so the client wire format names a mutation and the server builds
// the corresponding closure here. The table mirrors the typed handles of
// the public facade: counters, observed-remove sets, and last-writer-wins
// registers, plus the PN-Counter.

import (
	"encoding/binary"
	"fmt"
	"time"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/wire"
)

// errBadRequest marks request-shape errors (unknown mutation, wrong
// operand count) so the dispatcher can answer StatusBadRequest instead of
// StatusError.
type errBadRequest struct{ msg string }

func (e errBadRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return errBadRequest{msg: fmt.Sprintf(format, args...)}
}

func argUint(req *wire.Request, i int) (uint64, error) {
	if i >= len(req.Args) {
		return 0, badRequestf("server: %s/%s needs %d operands, got %d", req.CRDTType, req.Mutation, i+1, len(req.Args))
	}
	v, n := binary.Uvarint(req.Args[i])
	if n <= 0 {
		return 0, badRequestf("server: %s/%s operand %d is not a uvarint", req.CRDTType, req.Mutation, i)
	}
	return v, nil
}

func argStr(req *wire.Request, i int) (string, error) {
	if i >= len(req.Args) {
		return "", badRequestf("server: %s/%s needs %d operands, got %d", req.CRDTType, req.Mutation, i+1, len(req.Args))
	}
	return string(req.Args[i]), nil
}

// typeErrf reports a payload-type mismatch: the object exists but holds a
// different CRDT type than the request declared. Terminal (StatusError).
func typeErrf(key string, got crdt.State, want string) error {
	return fmt.Errorf("server: payload of %q is %s, not %s", key, got.TypeName(), want)
}

// updateFor translates an update request into the update closure submitted
// to the local replica. The closure validates the payload type at apply
// time, like the facade's typed handles.
func (s *Server) updateFor(req *wire.Request) (crdt.Update, error) {
	slot := string(s.node.ID())
	switch req.CRDTType {
	case crdt.TypeGCounter:
		if req.Mutation != wire.MutInc {
			return nil, badRequestf("server: unknown g-counter mutation %q", req.Mutation)
		}
		n, err := argUint(req, 0)
		if err != nil {
			return nil, err
		}
		return func(st crdt.State) (crdt.State, error) {
			c, ok := st.(*crdt.GCounter)
			if !ok {
				return nil, typeErrf(req.Key, st, req.CRDTType)
			}
			return c.Inc(slot, n), nil
		}, nil

	case crdt.TypePNCounter:
		if req.Mutation != wire.MutInc && req.Mutation != wire.MutDec {
			return nil, badRequestf("server: unknown pn-counter mutation %q", req.Mutation)
		}
		n, err := argUint(req, 0)
		if err != nil {
			return nil, err
		}
		dec := req.Mutation == wire.MutDec
		return func(st crdt.State) (crdt.State, error) {
			c, ok := st.(*crdt.PNCounter)
			if !ok {
				return nil, typeErrf(req.Key, st, req.CRDTType)
			}
			if dec {
				return c.Dec(slot, n), nil
			}
			return c.Inc(slot, n), nil
		}, nil

	case crdt.TypeORSet:
		elem, err := argStr(req, 0)
		if err != nil {
			return nil, err
		}
		switch req.Mutation {
		case wire.MutAdd:
			// Observed-remove adds need a tag unique across the whole
			// system's lifetime: the actor is this replica, the sequence
			// number a server-lifetime counter seeded from the wall clock
			// so tags stay unique across server restarts.
			seq := s.seq.Add(1)
			return func(st crdt.State) (crdt.State, error) {
				set, ok := st.(*crdt.ORSet)
				if !ok {
					return nil, typeErrf(req.Key, st, req.CRDTType)
				}
				return set.Add(elem, slot, seq), nil
			}, nil
		case wire.MutRemove:
			return func(st crdt.State) (crdt.State, error) {
				set, ok := st.(*crdt.ORSet)
				if !ok {
					return nil, typeErrf(req.Key, st, req.CRDTType)
				}
				return set.Remove(elem), nil
			}, nil
		default:
			return nil, badRequestf("server: unknown or-set mutation %q", req.Mutation)
		}

	case crdt.TypeLWWRegister:
		if req.Mutation != wire.MutSet {
			return nil, badRequestf("server: unknown lww-register mutation %q", req.Mutation)
		}
		val, err := argStr(req, 0)
		if err != nil {
			return nil, err
		}
		ts := uint64(time.Now().UnixNano())
		return func(st crdt.State) (crdt.State, error) {
			reg, ok := st.(*crdt.LWWRegister)
			if !ok {
				return nil, typeErrf(req.Key, st, req.CRDTType)
			}
			return reg.Set(val, ts, slot), nil
		}, nil

	default:
		return nil, badRequestf("server: no mutations for CRDT type %q", req.CRDTType)
	}
}
