// Package server is the network-facing serving layer: it exposes one
// replica (a cluster.Node and its keyspace of per-key replication
// instances) to remote clients over the client frame protocol specified
// in docs/PROTOCOL.md.
//
// A Server accepts TCP connections and speaks length-prefixed binary
// frames (internal/wire: Request, Response). Requests on one connection
// are dispatched concurrently — clients pipeline, responses return in
// completion order and are matched by request ID — so one connection can
// keep many protocol runs in flight, which is what makes a handful of
// pooled connections enough for hundreds of closed-loop clients.
//
// Updates arrive as named mutations ("inc", "add", "set", ...) on a
// declared CRDT type rather than as opaque functions: the update
// functions of the replication protocol are Go closures applied at the
// local replica (they never cross the replica wire, §3.2 of the paper),
// so the client protocol names them and the server builds the closure.
// The mutation table lives in ops.go; docs/PROTOCOL.md lists the
// supported mutations per payload type.
//
// Every response carries a status that tells the client whether a failed
// operation is safe to retry elsewhere: StatusUnavailable means the
// operation provably was not applied (the replica refused it before
// running the protocol — or it is read-only, in which case any
// fate-class failure qualifies, so a replica partitioned from its quorum
// answers timed-out queries "unavailable" rather than "uncertain"),
// StatusUncertain means an update's fate is unknown, and
// StatusBadRequest/StatusError are terminal. The public crdtsmr/client
// package implements the matching retry policy.
package server
