package server_test

// End-to-end online membership change over the network path: the
// members/member-add/member-remove admin commands, the joiner's gating
// at the client protocol level, and the client's member-list refresh.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// TestMembershipAdmin grows a served 3-replica cluster to 4 and back to
// 3 through the admin protocol alone, with a client following the
// member list.
func TestMembershipAdmin(t *testing.T) {
	mesh := transport.NewMesh(transport.WithSeed(7))
	defer mesh.Close()
	ids := []transport.NodeID{"n1", "n2", "n3"}
	cfg := cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
	cl, err := cluster.New(mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Listen first so every server can be given the full ID→client-addr
	// registry (the way crdtsmrd provisions it from -peers).
	all := []transport.NodeID{"n1", "n2", "n3", "n4"}
	lns := make(map[transport.NodeID]net.Listener, len(all))
	memberAddrs := make(map[string]string, len(all))
	for _, id := range all {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[id] = ln
		memberAddrs[string(id)] = ln.Addr().String()
	}
	opts := server.Options{RequestTimeout: 5 * time.Second, MemberAddrs: memberAddrs}
	var servers []*server.Server
	startServer := func(id transport.NodeID) {
		srv := server.New(cl.Node(id), opts)
		servers = append(servers, srv)
		go func() { _ = srv.Serve(lns[id]) }()
	}
	for _, id := range ids {
		startServer(id)
	}
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := client.New([]string{memberAddrs["n1"], memberAddrs["n2"], memberAddrs["n3"]},
		client.WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Counter("views").Inc(ctx, 5); err != nil {
		t.Fatal(err)
	}
	epoch, members, err := c.Members(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 0 || len(members) != 3 {
		t.Fatalf("initial config: epoch %d with %d members, want 0 with 3", epoch, len(members))
	}
	for _, m := range members {
		if m.Addr != memberAddrs[m.ID] {
			t.Fatalf("member %s advertises %q, want %q", m.ID, m.Addr, memberAddrs[m.ID])
		}
	}

	// The joiner: a node outside the member set, already serving the
	// client protocol, refusing commands until reconfigured in.
	if _, err := cl.AddNode("n4", cfg); err != nil {
		t.Fatal(err)
	}
	startServer("n4")
	joiner, err := client.New([]string{memberAddrs["n4"]},
		client.WithRequestTimeout(2*time.Second),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if _, err := joiner.Counter("views").Value(ctx); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("joiner served a read before being reconfigured in: %v", err)
	}

	epoch, members, err = c.MemberAdd(ctx, "n4", "", memberAddrs["n4"])
	if err != nil {
		t.Fatalf("member-add: %v", err)
	}
	if epoch != 1 || len(members) != 4 {
		t.Fatalf("after member-add: epoch %d with %d members, want 1 with 4", epoch, len(members))
	}
	if _, _, err := c.MemberAdd(ctx, "n4", "", ""); err == nil {
		t.Fatal("member-add of an existing member succeeded")
	}

	if _, err := c.RefreshMembers(ctx); err != nil {
		t.Fatalf("refresh members: %v", err)
	}
	if got := c.Addrs(); len(got) != 4 {
		t.Fatalf("client follows %d endpoints after refresh, want 4 (%v)", len(got), got)
	}

	// The joint-quorum commit can finish without the joiner's own ACK, so
	// wait for the new epoch to reach it; then the bootstrap state must
	// already be there — the reconfiguration round carried it.
	waitValue(ctx, t, joiner, "views", 5, "joiner after member-add")

	epoch, members, err = c.MemberRemove(ctx, "n1")
	if err != nil {
		t.Fatalf("member-remove: %v", err)
	}
	if epoch != 2 || len(members) != 3 {
		t.Fatalf("after member-remove: epoch %d with %d members, want 2 with 3", epoch, len(members))
	}
	for _, m := range members {
		if m.ID == "n1" {
			t.Fatal("n1 still in the member list after member-remove")
		}
	}
	if _, _, err := c.MemberRemove(ctx, "nope"); err == nil {
		t.Fatal("member-remove of a non-member succeeded")
	}

	if _, err := c.RefreshMembers(ctx); err != nil {
		t.Fatalf("refresh after remove: %v", err)
	}
	for _, a := range c.Addrs() {
		if a == memberAddrs["n1"] {
			t.Fatal("client still dials the removed member after refresh")
		}
	}
	if err := c.Counter("views").Inc(ctx, 1); err != nil {
		t.Fatalf("update after shrink: %v", err)
	}
	waitValue(ctx, t, c, "views", 6, "survivors after shrink")
}

// waitValue polls the counter until it reads want, riding out the window
// where the answering replica has not yet adopted the epoch that makes
// it (or keeps it) a member.
func waitValue(ctx context.Context, t *testing.T, c *client.Client, key string, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := c.Counter(key).Value(ctx)
		if err == nil && v == want {
			return
		}
		if err == nil {
			err = fmt.Errorf("value %d, want %d", v, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %v", what, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
