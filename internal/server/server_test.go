package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// startCluster runs n replicas over an in-process mesh, each fronted by a
// network server on an ephemeral loopback port.
func startCluster(t *testing.T, n int) (addrs []string, cl *cluster.Cluster, stop func()) {
	t.Helper()
	mesh := transport.NewMesh(transport.WithSeed(1))
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cl, err := cluster.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	})
	if err != nil {
		mesh.Close()
		t.Fatal(err)
	}
	var servers []*server.Server
	for _, id := range ids {
		srv, err := server.Start(cl.Node(id), "127.0.0.1:0", server.Options{RequestTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, cl, func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		cl.Close()
		mesh.Close()
	}
}

func newClient(t *testing.T, addrs ...string) *client.Client {
	t.Helper()
	c, err := client.New(addrs, client.WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestServeTypedHandles drives every typed handle through the network
// path: counters, PN-counters, OR-sets, and LWW-registers, across
// different servers of the same cluster.
func TestServeTypedHandles(t *testing.T) {
	addrs, _, stop := startCluster(t, 3)
	defer stop()
	ctx := context.Background()

	c1 := newClient(t, addrs[0])
	c2 := newClient(t, addrs[1])

	ctr := c1.Counter("views")
	if err := ctr.Inc(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := c2.Counter("views").Inc(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if v, err := c2.Counter("views").Value(ctx); err != nil || v != 7 {
		t.Fatalf("counter = %d, %v; want 7", v, err)
	}

	pn := c1.PNCounter("pn-counter/stock")
	if err := pn.Inc(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := pn.Dec(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if v, err := c2.PNCounter("pn-counter/stock").Value(ctx); err != nil || v != 6 {
		t.Fatalf("pn-counter = %d, %v; want 6", v, err)
	}

	set := c1.Set("or-set/sessions")
	if err := set.Add(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Set("or-set/sessions").Remove(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	elems, err := c2.Set("or-set/sessions").Elements(ctx)
	if err != nil || len(elems) != 1 || elems[0] != "bob" {
		t.Fatalf("set = %v, %v; want [bob]", elems, err)
	}

	reg := c1.Register("lww-register/config")
	if _, ok, err := reg.Load(ctx); err != nil || ok {
		t.Fatalf("unwritten register: ok=%v err=%v", ok, err)
	}
	if err := reg.Store(ctx, "v2"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c2.Register("lww-register/config").Load(ctx); err != nil || !ok || v != "v2" {
		t.Fatalf("register = %q ok=%v err=%v; want v2", v, ok, err)
	}

	if err := c1.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	keys, err := c1.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"views": true, "pn-counter/stock": true, "or-set/sessions": true, "lww-register/config": true}
	found := 0
	for _, k := range keys {
		if want[k] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("keys %v missing some of %v", keys, want)
	}
}

// TestServePipelining issues many concurrent requests through a single
// pooled connection and checks they all complete and sum correctly.
func TestServePipelining(t *testing.T) {
	addrs, _, stop := startCluster(t, 3)
	defer stop()
	c, err := client.New(addrs[:1], client.WithPool(1), client.WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 32
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Counter("hits").Inc(ctx, 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := c.Counter("hits").Value(ctx); err != nil || v != workers {
		t.Fatalf("counter = %d, %v; want %d", v, err, workers)
	}
}

// TestServeRejects covers the terminal error paths: unknown mutations and
// type mismatches must come back as errors, not retries or hangs.
func TestServeRejects(t *testing.T) {
	addrs, _, stop := startCluster(t, 3)
	defer stop()
	c := newClient(t, addrs...)
	ctx := context.Background()

	// Unknown admin command.
	if _, err := c.Keys(ctx); err != nil {
		t.Fatal(err)
	}

	// Type mismatch: the default key holds a G-Counter; set ops on it
	// must fail terminally.
	if err := c.Set("plain-key").Add(ctx, "x"); err == nil {
		t.Fatal("set mutation on a counter key succeeded")
	}

	// Reading a counter key through a register handle fails client-side.
	if err := c.Counter("ctr").Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Register("ctr").Load(ctx); err == nil {
		t.Fatal("register load of a counter key succeeded")
	}
}

// TestServeClosesOnGarbage sends an undecodable frame and expects the
// server to drop the connection rather than answer or crash.
func TestServeClosesOnGarbage(t *testing.T) {
	addrs, _, stop := startCluster(t, 1)
	defer stop()
	nc, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, []byte{0xff, 0xfe, 0xfd}); err != nil {
		t.Fatal(err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(bufio.NewReader(nc)); err == nil {
		t.Fatal("server answered a garbage frame")
	}
}

// TestServeUnavailable checks the NACK path: a crashed replica's server
// answers StatusUnavailable, and a single-address client surfaces it.
func TestServeUnavailable(t *testing.T) {
	addrs, cl, stop := startCluster(t, 3)
	defer stop()
	cl.Crash("n1")

	c, err := client.New(addrs[:1],
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}),
		client.WithRequestTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Counter("k").Inc(context.Background(), 1)
	if err == nil {
		t.Fatal("update on a crashed replica succeeded")
	}
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("error %v does not match client.ErrUnavailable", err)
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != client.StatusUnavailable {
		t.Fatalf("error %v carries no StatusError with StatusUnavailable", err)
	}
}
