package server_test

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

// startCluster runs n replicas over an in-process mesh, each fronted by a
// network server on an ephemeral loopback port.
func startCluster(t *testing.T, n int) (addrs []string, cl *cluster.Cluster, stop func()) {
	addrs, _, cl, stop = startClusterOpts(t, n, server.Options{RequestTimeout: 5 * time.Second})
	return addrs, cl, stop
}

// startClusterOpts is startCluster with explicit server options, for the
// admission-control tests that squeeze the load limits.
func startClusterOpts(t *testing.T, n int, opts server.Options) (addrs []string, servers []*server.Server, cl *cluster.Cluster, stop func()) {
	t.Helper()
	mesh := transport.NewMesh(transport.WithSeed(1))
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cl, err := cluster.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	})
	if err != nil {
		mesh.Close()
		t.Fatal(err)
	}
	for _, id := range ids {
		srv, err := server.Start(cl.Node(id), "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, servers, cl, func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		cl.Close()
		mesh.Close()
	}
}

func newClient(t *testing.T, addrs ...string) *client.Client {
	t.Helper()
	c, err := client.New(addrs, client.WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestServeTypedHandles drives every typed handle through the network
// path: counters, PN-counters, OR-sets, and LWW-registers, across
// different servers of the same cluster.
func TestServeTypedHandles(t *testing.T) {
	addrs, _, stop := startCluster(t, 3)
	defer stop()
	ctx := context.Background()

	c1 := newClient(t, addrs[0])
	c2 := newClient(t, addrs[1])

	ctr := c1.Counter("views")
	if err := ctr.Inc(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := c2.Counter("views").Inc(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if v, err := c2.Counter("views").Value(ctx); err != nil || v != 7 {
		t.Fatalf("counter = %d, %v; want 7", v, err)
	}

	pn := c1.PNCounter("pn-counter/stock")
	if err := pn.Inc(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := pn.Dec(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if v, err := c2.PNCounter("pn-counter/stock").Value(ctx); err != nil || v != 6 {
		t.Fatalf("pn-counter = %d, %v; want 6", v, err)
	}

	set := c1.Set("or-set/sessions")
	if err := set.Add(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Set("or-set/sessions").Remove(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	elems, err := c2.Set("or-set/sessions").Elements(ctx)
	if err != nil || len(elems) != 1 || elems[0] != "bob" {
		t.Fatalf("set = %v, %v; want [bob]", elems, err)
	}

	reg := c1.Register("lww-register/config")
	if _, ok, err := reg.Load(ctx); err != nil || ok {
		t.Fatalf("unwritten register: ok=%v err=%v", ok, err)
	}
	if err := reg.Store(ctx, "v2"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c2.Register("lww-register/config").Load(ctx); err != nil || !ok || v != "v2" {
		t.Fatalf("register = %q ok=%v err=%v; want v2", v, ok, err)
	}

	if err := c1.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	keys, err := c1.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"views": true, "pn-counter/stock": true, "or-set/sessions": true, "lww-register/config": true}
	found := 0
	for _, k := range keys {
		if want[k] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("keys %v missing some of %v", keys, want)
	}
}

// TestServePipelining issues many concurrent requests through a single
// pooled connection and checks they all complete and sum correctly.
func TestServePipelining(t *testing.T) {
	addrs, _, stop := startCluster(t, 3)
	defer stop()
	c, err := client.New(addrs[:1], client.WithPool(1), client.WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 32
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Counter("hits").Inc(ctx, 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := c.Counter("hits").Value(ctx); err != nil || v != workers {
		t.Fatalf("counter = %d, %v; want %d", v, err, workers)
	}
}

// TestServeRejects covers the terminal error paths: unknown mutations and
// type mismatches must come back as errors, not retries or hangs.
func TestServeRejects(t *testing.T) {
	addrs, _, stop := startCluster(t, 3)
	defer stop()
	c := newClient(t, addrs...)
	ctx := context.Background()

	// Unknown admin command.
	if _, err := c.Keys(ctx); err != nil {
		t.Fatal(err)
	}

	// Type mismatch: the default key holds a G-Counter; set ops on it
	// must fail terminally.
	if err := c.Set("plain-key").Add(ctx, "x"); err == nil {
		t.Fatal("set mutation on a counter key succeeded")
	}

	// Reading a counter key through a register handle fails client-side.
	if err := c.Counter("ctr").Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Register("ctr").Load(ctx); err == nil {
		t.Fatal("register load of a counter key succeeded")
	}
}

// TestServeClosesOnGarbage sends an undecodable frame and expects the
// server to drop the connection rather than answer or crash.
func TestServeClosesOnGarbage(t *testing.T) {
	addrs, _, stop := startCluster(t, 1)
	defer stop()
	nc, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, []byte{0xff, 0xfe, 0xfd}); err != nil {
		t.Fatal(err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(bufio.NewReader(nc)); err == nil {
		t.Fatal("server answered a garbage frame")
	}
}

// dialRaw opens a raw protocol connection for tests that speak frames by
// hand.
func dialRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	return nc, bufio.NewReader(nc)
}

func sendRaw(t *testing.T, nc net.Conn, req *wire.Request) {
	t.Helper()
	if err := wire.WriteFrame(nc, req.Encode()); err != nil {
		t.Fatal(err)
	}
}

func readRaw(t *testing.T, nc net.Conn, br *bufio.Reader, timeout time.Duration) *wire.Response {
	t.Helper()
	_ = nc.SetReadDeadline(time.Now().Add(timeout))
	frame, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	resp, err := wire.DecodeResponse(frame)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp
}

func incReq(id uint64, key string) *wire.Request {
	return &wire.Request{
		Op: wire.OpUpdate, ID: id, Key: key,
		CRDTType: crdt.TypeGCounter, Mutation: wire.MutInc,
		Args: [][]byte{binary.AppendUvarint(nil, 1)},
	}
}

// TestServeConnLimitBusyHandshake fills the connection cap and checks a
// further connection gets exactly the busy-close handshake — one
// StatusBusy response on request ID 0, then EOF — while the admitted
// connection keeps working, and that the client library surfaces the
// refusal as the retryable ErrBusy rather than an uncertain fate.
func TestServeConnLimitBusyHandshake(t *testing.T) {
	addrs, servers, _, stop := startClusterOpts(t, 1, server.Options{
		RequestTimeout: 5 * time.Second,
		MaxConns:       1,
	})
	defer stop()

	nc1, br1 := dialRaw(t, addrs[0])
	// A roundtrip proves the first connection is registered (accepted and
	// admitted) before the second dial races it for the one slot.
	sendRaw(t, nc1, &wire.Request{Op: wire.OpAdmin, ID: 1, Cmd: "ping"})
	if resp := readRaw(t, nc1, br1, 5*time.Second); resp.Status != wire.StatusOK {
		t.Fatalf("ping on admitted conn: %+v", resp)
	}

	nc2, br2 := dialRaw(t, addrs[0])
	resp := readRaw(t, nc2, br2, 5*time.Second)
	if resp.ID != 0 || resp.Status != wire.StatusBusy || resp.Op != wire.OpAdmin|wire.RespBit {
		t.Fatalf("refused conn got %+v, want OpAdmin ID 0 StatusBusy", resp)
	}
	_ = nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(br2); err == nil {
		t.Fatal("refused connection stayed open after the busy handshake")
	}
	if got := servers[0].ShedConns(); got == 0 {
		t.Fatal("ShedConns did not count the refused connection")
	}

	// The admitted connection is unaffected.
	sendRaw(t, nc1, &wire.Request{Op: wire.OpAdmin, ID: 2, Cmd: "ping"})
	if resp := readRaw(t, nc1, br1, 5*time.Second); resp.ID != 2 || resp.Status != wire.StatusOK {
		t.Fatalf("admitted conn broken after a refusal: %+v", resp)
	}

	// The client library sees the handshake as ErrBusy: retryable-safe
	// (the server read nothing), not uncertain.
	c, err := client.New(addrs, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}), client.WithRequestTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Counter("k").Inc(context.Background(), 1)
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if errors.Is(err, client.ErrUncertain) {
		t.Fatalf("refused-at-admission error %v must not read as uncertain", err)
	}
}

// TestServeInFlightLimits pins down the two-tier in-flight semantics with
// a stalled cluster (majority crashed, so updates park until recovery):
// one connection's pipelined frames beyond its own MaxInFlight queue —
// that client's private backpressure — while load beyond the server-wide
// MaxTotalInFlight is shed immediately with StatusBusy. After recovery
// every queued request completes.
func TestServeInFlightLimits(t *testing.T) {
	addrs, servers, cl, stop := startClusterOpts(t, 3, server.Options{
		RequestTimeout:   30 * time.Second,
		MaxInFlight:      2,
		MaxTotalInFlight: 3,
	})
	defer stop()
	cl.Crash("n2")
	cl.Crash("n3")

	// Connection A pipelines 4 updates: 2 execute (and hang on the lost
	// quorum), 2 queue behind A's per-conn semaphore.
	ncA, brA := dialRaw(t, addrs[0])
	for id := uint64(1); id <= 4; id++ {
		sendRaw(t, ncA, incReq(id, "hits"))
	}
	time.Sleep(200 * time.Millisecond) // let A's first two enter execution

	// Connection B: its first update takes the last server-wide slot; the
	// second must be shed with StatusBusy echoing its request ID.
	ncB, brB := dialRaw(t, addrs[0])
	sendRaw(t, ncB, incReq(10, "hits"))
	time.Sleep(100 * time.Millisecond)
	sendRaw(t, ncB, incReq(11, "hits"))
	resp := readRaw(t, ncB, brB, 5*time.Second)
	if resp.ID != 11 || resp.Status != wire.StatusBusy {
		t.Fatalf("over-cap request got %+v, want ID 11 StatusBusy", resp)
	}
	if got := servers[0].ShedRequests(); got != 1 {
		t.Fatalf("ShedRequests = %d, want 1", got)
	}

	// Recovery lets every admitted request — executing and per-conn
	// queued alike — run to completion.
	cl.Recover("n2")
	cl.Recover("n3")
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		resp := readRaw(t, ncA, brA, 20*time.Second)
		if resp.Status != wire.StatusOK {
			t.Fatalf("queued update %d failed after recovery: %+v", resp.ID, resp)
		}
		seen[resp.ID] = true
	}
	for id := uint64(1); id <= 4; id++ {
		if !seen[id] {
			t.Fatalf("no response for pipelined request %d (responses: %v)", id, seen)
		}
	}
	if resp := readRaw(t, ncB, brB, 20*time.Second); resp.ID != 10 || resp.Status != wire.StatusOK {
		t.Fatalf("B's admitted update got %+v, want ID 10 OK", resp)
	}
}

// TestServeUnavailable checks the NACK path: a crashed replica's server
// answers StatusUnavailable, and a single-address client surfaces it.
func TestServeUnavailable(t *testing.T) {
	addrs, cl, stop := startCluster(t, 3)
	defer stop()
	cl.Crash("n1")

	c, err := client.New(addrs[:1],
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}),
		client.WithRequestTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Counter("k").Inc(context.Background(), 1)
	if err == nil {
		t.Fatal("update on a crashed replica succeeded")
	}
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("error %v does not match client.ErrUnavailable", err)
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != client.StatusUnavailable {
		t.Fatalf("error %v carries no StatusError with StatusUnavailable", err)
	}
}
