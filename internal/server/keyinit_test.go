package server_test

import (
	"testing"

	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
)

func TestTypedKeyInitial(t *testing.T) {
	initial := server.TypedKeyInitial(crdt.TypeGCounter)
	cases := map[string]string{
		"views":                crdt.TypeGCounter, // default
		"or-set/sessions/eu":   crdt.TypeORSet,
		"lww-register/config":  crdt.TypeLWWRegister,
		"pn-counter/stock":     crdt.TypePNCounter,
		"pn-counter":           crdt.TypePNCounter, // bare type name counts
		"or-set":               crdt.TypeORSet,
		"unknown-prefix/x":     crdt.TypeGCounter,
		"g-counterish/suffix":  crdt.TypeGCounter, // prefix must match exactly
		"":                     crdt.TypeGCounter,
		"nested/or-set/within": crdt.TypeGCounter, // only the first segment types
	}
	for key, want := range cases {
		s := initial(key)
		if s == nil {
			t.Errorf("key %q: nil initial state", key)
			continue
		}
		if got := s.TypeName(); got != want {
			t.Errorf("key %q: type %s, want %s", key, got, want)
		}
	}

	if s := server.TypedKeyInitial("no-such-type")("anything"); s != nil {
		t.Errorf("unknown default type produced %v, want nil (reject)", s)
	}
}
