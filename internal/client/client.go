package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crdtsmr/internal/wire"
)

// Config configures a Client.
type Config struct {
	// Addrs lists the client-facing addresses of the cluster's servers.
	// Operations start at a round-robin-chosen address and fail over to
	// the others per the retry policy.
	Addrs []string
	// DialTimeout bounds one connection attempt. Default 2 s.
	DialTimeout time.Duration
	// RequestTimeout is the per-operation deadline applied when the
	// caller's context has none. Default 10 s.
	RequestTimeout time.Duration
	// MaxAttempts caps tries per operation (first attempt included)
	// across addresses. Default len(Addrs) + 1.
	MaxAttempts int
	// RetryBackoff is slept between attempts. Default 5 ms.
	RetryBackoff time.Duration
	// ConnsPerAddr is the connection pool size per address. Requests
	// pipeline, so a small pool serves many concurrent callers.
	// Default 2.
	ConnsPerAddr int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = len(c.Addrs) + 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.ConnsPerAddr <= 0 {
		c.ConnsPerAddr = 2
	}
	return c
}

// ServerError is a non-OK response from a server, carrying the wire
// status (wire.Status*) and the server's message.
type ServerError struct {
	Status byte
	Msg    string
}

func (e *ServerError) Error() string {
	status := map[byte]string{
		wire.StatusUnavailable: "unavailable",
		wire.StatusUncertain:   "uncertain",
		wire.StatusBadRequest:  "bad request",
		wire.StatusError:       "error",
	}[e.Status]
	if status == "" {
		status = fmt.Sprintf("status %d", e.Status)
	}
	return fmt.Sprintf("client: server %s: %s", status, e.Msg)
}

// IsUnavailable reports whether err means the operation was refused
// before the protocol ran (provably not applied).
func IsUnavailable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Status == wire.StatusUnavailable
}

// IsUncertain reports whether err leaves the operation's fate unknown:
// it may or may not have been applied (server-side timeout or abort, or a
// connection that died with an update in flight).
func IsUncertain(err error) bool {
	if errors.Is(err, errConnFailed) {
		return true
	}
	var se *ServerError
	return errors.As(err, &se) && se.Status == wire.StatusUncertain
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// errConnFailed wraps connection-level failures after a request was
// written — the response is gone but the request may have been executed.
var errConnFailed = errors.New("client: connection failed")

// errNotSent wraps failures that provably precede the write (the pooled
// connection was already dead), so any operation may retry elsewhere.
var errNotSent = errors.New("client: request not sent")

// Client is a pooled, pipelining client for one cluster. It is safe for
// concurrent use; typed handles share the client's pool.
type Client struct {
	cfg   Config
	pools []*pool
	next  atomic.Uint64 // round-robin address cursor

	mu     sync.Mutex
	closed bool
}

// New returns a client for the given cluster addresses. Connections are
// dialed lazily on first use.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("client: no server addresses")
	}
	c := &Client{cfg: cfg}
	for _, addr := range cfg.Addrs {
		c.pools = append(c.pools, newPool(addr, cfg))
	}
	return c, nil
}

// Close tears down every pooled connection. In-flight requests fail with
// a connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, p := range c.pools {
		p.close()
	}
	return nil
}

// do runs one request with retries. retryInFlight permits retrying after
// failures that leave the operation's fate unknown (safe for reads and
// admin commands, not for updates).
func (c *Client) do(ctx context.Context, req *wire.Request, retryInFlight bool) (*wire.Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}

	// Reduce the cursor modulo the pool count while still in uint64, so
	// the int conversion can never go negative (32-bit platforms).
	start := int(c.next.Add(1) % uint64(len(c.pools)))
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.cfg.RetryBackoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		p := c.pools[(start+attempt)%len(c.pools)]
		cn, err := p.get(ctx)
		if err != nil {
			// Nothing was sent; always safe to try the next address.
			lastErr = err
			continue
		}
		resp, err := cn.roundtrip(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), err)
			}
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// Terminal everywhere: every replica enforces the same limit.
				return nil, fmt.Errorf("client: request exceeds frame limit: %w", err)
			}
			if errors.Is(err, errNotSent) {
				// The connection was dead before the frame was written:
				// like a dial failure, safe to retry any operation.
				lastErr = err
				continue
			}
			lastErr = fmt.Errorf("%w: %v", errConnFailed, err)
			if !retryInFlight {
				return nil, lastErr
			}
			continue
		}
		if resp.Status == wire.StatusOK {
			return resp, nil
		}
		lastErr = &ServerError{Status: resp.Status, Msg: resp.Msg}
		switch resp.Status {
		case wire.StatusUnavailable:
			continue // provably not applied: retry anywhere
		case wire.StatusUncertain:
			if retryInFlight {
				continue
			}
			return nil, lastErr
		default:
			return nil, lastErr // terminal
		}
	}
	return nil, fmt.Errorf("client: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// --- connection pool ---

type pool struct {
	addr string
	cfg  Config

	mu     sync.Mutex
	conns  []*conn // fixed-size slots, nil or dead until (re)dialed
	rr     uint64
	closed bool
}

func newPool(addr string, cfg Config) *pool {
	return &pool{addr: addr, cfg: cfg, conns: make([]*conn, cfg.ConnsPerAddr)}
}

// get returns a live connection from the pool, dialing the slot if its
// connection is absent or dead.
func (p *pool) get(ctx context.Context) (*conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	slot := int(p.rr % uint64(len(p.conns)))
	p.rr++
	if cn := p.conns[slot]; cn != nil && !cn.isDead() {
		p.mu.Unlock()
		return cn, nil
	}
	p.mu.Unlock()

	d := net.Dialer{Timeout: p.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", p.addr, err)
	}
	cn := newConn(nc)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		cn.fail(ErrClosed)
		return nil, ErrClosed
	}
	if existing := p.conns[slot]; existing != nil && !existing.isDead() {
		// Lost a dial race; keep the winner.
		cn.fail(errors.New("client: duplicate dial"))
		return existing, nil
	}
	p.conns[slot] = cn
	return cn, nil
}

func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, cn := range p.conns {
		if cn != nil {
			cn.fail(ErrClosed)
		}
	}
}

// --- one pipelined connection ---

type conn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error // non-nil once dead

	done chan struct{} // closed when the read loop exits
}

func newConn(nc net.Conn) *conn {
	c := &conn{
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		pending: make(map[uint64]chan *wire.Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// fail marks the connection dead and unblocks every pending request.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		_ = c.nc.Close()
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
	}
	c.mu.Unlock()
}

func (c *conn) readLoop() {
	defer close(c.done)
	br := bufio.NewReader(c.nc)
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			// A peer speaking garbage is a connection-level error: no
			// response on this conn can be trusted to correlate.
			c.fail(fmt.Errorf("client: decode response: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundtrip sends req (assigning it a connection-unique ID) and waits for
// the matching response. Concurrent roundtrips on one conn pipeline.
func (c *conn) roundtrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", errNotSent, err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	r := *req
	r.ID = id
	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, r.Encode())
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		if errors.Is(err, wire.ErrFrameTooLarge) {
			// Local size check, nothing written: the request is bad, the
			// connection is fine — don't kill other callers' pipelines.
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			return nil, err
		}
		c.fail(fmt.Errorf("client: write: %w", err))
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}
