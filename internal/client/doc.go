// Package client is an empty, frozen shim. The client library moved to
// the public package crdtsmr/client so external modules can import it;
// this package deliberately exports nothing and must stay that way (CI's
// cmd/docscheck API guard enforces both the empty export set and the
// absence of in-tree importers).
//
// Deprecated: import crdtsmr/client instead.
package client
