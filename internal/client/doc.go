// Package client is the Go client library for clusters served by
// internal/server: it speaks the client frame protocol of
// docs/PROTOCOL.md and exposes the same typed handles as the in-process
// facade (counters, observed-remove sets, last-writer-wins registers),
// plus raw linearizable queries and admin commands.
//
// A Client holds a small pool of TCP connections per server address and
// pipelines requests: every request gets a connection-unique ID, many can
// be in flight on one connection, and a demultiplexing read loop matches
// responses (which arrive in completion order) back to their waiters.
// Per-request deadlines come from the caller's context, or from
// Config.RequestTimeout when the context has none.
//
// Retry policy (docs/PROTOCOL.md §Retries): an operation that fails with
// StatusUnavailable — the replica refused it before running the protocol,
// so it was provably not applied — is retried against the next configured
// address, as are operations whose connection could not even be dialed.
// Queries and admin commands (both read-only) are additionally retried on
// StatusUncertain and mid-flight connection failures; updates are not,
// because an update whose fate is unknown may already have been applied,
// and the protocol offers
// at-least-once rather than exactly-once update semantics. Callers that
// prefer at-least-once on uncertainty can retry the returned error
// explicitly (IsUncertain reports whether that is the failure mode).
package client
