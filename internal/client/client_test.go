package client_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"crdtsmr/internal/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// startCluster runs n replicas over an in-process mesh, each fronted by a
// network server, and returns the cluster for failure injection.
func startCluster(t *testing.T, n int) (addrs []string, cl *cluster.Cluster) {
	t.Helper()
	mesh := transport.NewMesh(transport.WithSeed(1))
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cl, err := cluster.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	})
	if err != nil {
		mesh.Close()
		t.Fatal(err)
	}
	var servers []*server.Server
	for _, id := range ids {
		srv, err := server.Start(cl.Node(id), "127.0.0.1:0", server.Options{RequestTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		cl.Close()
		mesh.Close()
	})
	return addrs, cl
}

// TestRetryOnDownNode is the failover contract of the client library: with
// one server's replica down (SetCrashed through the cluster), updates and
// reads submitted to a client that lists every server must still succeed —
// the down replica answers StatusUnavailable (provably not applied) and the
// client retries the operation on the next address.
func TestRetryOnDownNode(t *testing.T) {
	addrs, cl := startCluster(t, 3)
	ctx := context.Background()

	c, err := client.New(client.Config{
		Addrs:          addrs,
		MaxAttempts:    6,
		RetryBackoff:   time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Touch every address once so the pool has live connections to the
	// node that is about to go down.
	for range addrs {
		if err := c.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}

	cl.Crash("n1") // SetCrashed(true) under the hood; its server stays up

	// A 2/3 quorum remains: every operation must complete despite ~1/3 of
	// attempts landing on the crashed replica first.
	ctr := c.Counter("failover")
	const ops = 30
	for i := 0; i < ops; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			t.Fatalf("inc %d with one node down: %v", i, err)
		}
		if _, err := ctr.Value(ctx); err != nil {
			t.Fatalf("read %d with one node down: %v", i, err)
		}
	}
	if v, err := ctr.Value(ctx); err != nil || v != ops {
		t.Fatalf("counter = %d, %v; want %d", v, err, ops)
	}

	// After recovery the previously down replica serves again.
	cl.Recover("n1")
	c1, err := client.New(client.Config{Addrs: addrs[:1], RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if v, err := c1.Counter("failover").Value(ctx); err != nil || v != ops {
		t.Fatalf("recovered replica reads %d, %v; want %d", v, err, ops)
	}
}

// TestRetryDialFailure lists a dead address first: operations must fail
// over to the live servers (dialing sent nothing, so even updates retry).
func TestRetryDialFailure(t *testing.T) {
	addrs, _ := startCluster(t, 3)

	// Reserve-and-release a port so the first address refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	c, err := client.New(client.Config{
		Addrs:          append([]string{dead}, addrs...),
		MaxAttempts:    8,
		RetryBackoff:   time.Millisecond,
		DialTimeout:    500 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Counter("k").Inc(ctx, 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := c.Counter("k").Value(ctx); err != nil || v != 8 {
		t.Fatalf("counter = %d, %v; want 8", v, err)
	}
}

// TestPerRequestTimeout checks that a context deadline fails an operation
// promptly instead of hanging on an unresponsive address.
func TestPerRequestTimeout(t *testing.T) {
	// A listener that accepts and never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	c, err := client.New(client.Config{Addrs: []string{ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Ping(ctx)
	if err == nil {
		t.Fatal("ping of a black-hole server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestClosedClient checks operations after Close fail fast with ErrClosed.
func TestClosedClient(t *testing.T) {
	addrs, _ := startCluster(t, 1)
	c, err := client.New(client.Config{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping on a closed client succeeded")
	}
}
