package crdt

import "fmt"

// GCounter is the grow-only counter of the paper's Algorithm 1: the payload
// is one non-negative slot per replica, the partial order is slot-wise ≤,
// and the join is the slot-wise maximum. Each replica only ever increments
// its own slot, so no increments are lost under merge.
//
// Unlike the fixed-length array of Algorithm 1 the slots are keyed by
// replica ID, which supports clusters whose membership is not known when a
// counter is created; the lattice is unchanged.
type GCounter struct {
	slots map[string]uint64
}

var (
	_ State       = (*GCounter)(nil)
	_ Unmarshaler = (*GCounter)(nil)
)

// NewGCounter returns the counter's bottom element (all slots zero).
func NewGCounter() *GCounter {
	return &GCounter{slots: map[string]uint64{}}
}

// Inc returns a copy of the counter with replica's slot incremented by n.
// It corresponds to Algorithm 1's update executed n times at that replica.
func (c *GCounter) Inc(replica string, n uint64) *GCounter {
	out := &GCounter{slots: cloneStrU64(c.slots)}
	out.slots[replica] += n
	return out
}

// Value implements Algorithm 1's query: the sum over all slots.
func (c *GCounter) Value() uint64 {
	var sum uint64
	for _, v := range c.slots {
		sum += v
	}
	return sum
}

// Slot returns the count contributed by a single replica.
func (c *GCounter) Slot(replica string) uint64 { return c.slots[replica] }

// Merge implements Algorithm 1's merge: the slot-wise maximum.
func (c *GCounter) Merge(other State) (State, error) {
	o, ok := other.(*GCounter)
	if !ok {
		return nil, typeMismatch(c, other)
	}
	out := &GCounter{slots: cloneStrU64(c.slots)}
	for k, v := range o.slots {
		if v > out.slots[k] {
			out.slots[k] = v
		}
	}
	return out, nil
}

// Compare implements Algorithm 1's compare: slot-wise ≤.
func (c *GCounter) Compare(other State) (bool, error) {
	o, ok := other.(*GCounter)
	if !ok {
		return false, typeMismatch(c, other)
	}
	for k, v := range c.slots {
		if v > o.slots[k] {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (c *GCounter) TypeName() string { return TypeGCounter }

// MarshalBinary implements State.
func (c *GCounter) MarshalBinary() ([]byte, error) {
	e := newEncBuf(8 * (len(c.slots) + 1))
	e.strU64Map(c.slots)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (c *GCounter) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	m, err := d.strU64Map()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	c.slots = m
	return nil
}

// String renders the counter for logs and test failures.
func (c *GCounter) String() string {
	return fmt.Sprintf("GCounter(%d)", c.Value())
}

// IncDelta returns the delta-mutation of Inc (Almeida et al., NETYS 2015):
// a state containing only the incremented slot. Merging the delta into the
// full state yields the same result as Inc, but the delta's encoding is
// O(1) instead of O(#replicas); see the delta-merge ablation benchmark.
func (c *GCounter) IncDelta(replica string, n uint64) *GCounter {
	return &GCounter{slots: map[string]uint64{replica: c.slots[replica] + n}}
}

var _ DeltaState = (*GCounter)(nil)

// Delta implements DeltaState: the join decomposition of the counter
// against base is the set of slots whose value base is missing. The delta
// carries the receiver's full slot value (join is max), so merging it into
// any state dominating base reconstructs the receiver's contribution.
func (c *GCounter) Delta(base State) (State, error) {
	b, ok := base.(*GCounter)
	if !ok {
		return nil, typeMismatch(c, base)
	}
	out := &GCounter{slots: map[string]uint64{}}
	for k, v := range c.slots {
		bv := b.slots[k]
		if bv > v {
			return nil, errNotDominated(c)
		}
		if v > bv {
			out.slots[k] = v
		}
	}
	for k, bv := range b.slots {
		if bv > c.slots[k] {
			return nil, errNotDominated(c)
		}
	}
	return out, nil
}

func typeMismatch(want State, got State) error {
	return fmt.Errorf("%w: have %s, got %s", ErrTypeMismatch, want.TypeName(), got.TypeName())
}
