package crdt

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestDigestEqualityIffEquivalence is the contract the replica wire's
// digest frames stand on: for every registered payload type — including
// the types the protocol gives no deltas, like ew-flag and lww-map —
// digest equality must coincide exactly with state equivalence. One
// direction is marshal determinism (equivalent states encode identically),
// the other is collision-freedom on the generated sample.
func TestDigestEqualityIffEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, name := range Names() {
		gen := generators[name]
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 60; i++ {
				a, b := gen(r), gen(r)
				da, err := DigestOf(a)
				if err != nil {
					t.Fatal(err)
				}
				db, err := DigestOf(b)
				if err != nil {
					t.Fatal(err)
				}
				eq, err := Equivalent(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if eq != (da == db) {
					t.Fatalf("equivalent=%t but digest-equal=%t for %v vs %v", eq, da == db, a, b)
				}
				// Equivalence is also preserved through the codec: a decoded
				// copy must digest identically to the original.
				raw, err := Marshal(a)
				if err != nil {
					t.Fatal(err)
				}
				back, err := Unmarshal(raw)
				if err != nil {
					t.Fatal(err)
				}
				dback, err := DigestOf(back)
				if err != nil {
					t.Fatal(err)
				}
				if dback != da {
					t.Fatalf("%s: digest changed across codec round trip: %v vs %v", name, da, dback)
				}
				if DigestOfMarshaled(raw) != da {
					t.Fatalf("%s: DigestOfMarshaled disagrees with DigestOf", name)
				}
			}
		})
	}
}

func TestDigestZeroAndString(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest not IsZero")
	}
	d, err := DigestOf(NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	if d.IsZero() {
		t.Fatal("real digest reported zero")
	}
	if len(d.String()) != 12 {
		t.Fatalf("abbreviated digest %q, want 12 hex chars", d.String())
	}
}

func TestMemoDigestCachesByIdentity(t *testing.T) {
	var memo MemoDigest
	a := NewGCounter().Inc("r1", 3)
	d1, err := memo.Of(a)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := memo.Of(a)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("memo changed digest for the same state")
	}
	b := a.Inc("r1", 1)
	d3, err := memo.Of(b)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("distinct states share a digest")
	}
	want, err := DigestOf(b)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != want {
		t.Fatal("memo digest disagrees with DigestOf")
	}
}

// deltaTypes are the payload types the protocol ships deltas for.
var deltaTypes = []string{TypeGCounter, TypePNCounter, TypeORSet}

// TestDeltaLaw checks the join-decomposition contract of DeltaState:
// base ⊔ Delta(base) ≡ receiver, and merging the delta into any state
// dominating base yields a state dominating the receiver. The delta must
// also survive the codec, since it travels the wire as an ordinary state.
func TestDeltaLaw(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, name := range deltaTypes {
		gen := generators[name]
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 80; i++ {
				base := gen(r)
				recv := MustMerge(base, gen(r)) // base ⊑ recv by construction
				delta, err := recv.(DeltaState).Delta(base)
				if err != nil {
					t.Fatalf("delta: %v (base=%v recv=%v)", err, base, recv)
				}
				if eq, err := Equivalent(MustMerge(base, delta), recv); err != nil || !eq {
					t.Fatalf("base ⊔ delta ≢ recv: base=%v delta=%v recv=%v (err=%v)", base, delta, recv, err)
				}
				// Any state dominating base absorbs the delta soundly.
				ahead := MustMerge(base, gen(r))
				if le, err := recv.Compare(MustMerge(ahead, delta)); err != nil || !le {
					t.Fatalf("recv !⊑ ahead ⊔ delta (err=%v)", err)
				}
				raw, err := Marshal(delta)
				if err != nil {
					t.Fatal(err)
				}
				back, err := Unmarshal(raw)
				if err != nil {
					t.Fatal(err)
				}
				if eq, err := Equivalent(delta, back); err != nil || !eq {
					t.Fatalf("delta did not round-trip: %v vs %v (err=%v)", delta, back, err)
				}
			}
		})
	}
}

// TestDeltaRejectsNonDominatedBase: a baseline the receiver does not
// dominate must be refused — the protocol falls back to full state rather
// than shipping a lossy delta.
func TestDeltaRejectsNonDominatedBase(t *testing.T) {
	recv := NewGCounter().Inc("a", 1)
	base := NewGCounter().Inc("b", 5)
	if _, err := recv.Delta(base); err == nil {
		t.Fatal("gcounter delta accepted a non-dominated base")
	}
	pn := NewPNCounter().Inc("a", 1)
	pnBase := NewPNCounter().Dec("b", 2)
	if _, err := pn.Delta(pnBase); err == nil {
		t.Fatal("pncounter delta accepted a non-dominated base")
	}
	or := NewORSet().Add("x", "a", 1)
	orBase := NewORSet().Add("y", "b", 1)
	if _, err := or.Delta(orBase); err == nil {
		t.Fatal("orset delta accepted a non-dominated base")
	}
	if _, err := recv.Delta(NewORSet()); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("cross-type delta error = %v, want ErrTypeMismatch", err)
	}
}

func TestDeltaSmallOnConvergedORSet(t *testing.T) {
	// A 1000-element set that gains one element must produce a delta whose
	// encoding is orders of magnitude smaller than the full state — the
	// bandwidth claim the bytes figure quantifies.
	s := NewORSet()
	for i := 0; i < 1000; i++ {
		s = s.Add(fmt.Sprintf("elem-%04d", i), "n1", uint64(i))
	}
	grown := s.Add("extra", "n1", 2000)
	delta, err := grown.Delta(s)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Marshal(grown)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Marshal(delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(small)*100 > len(full) {
		t.Fatalf("delta %dB not ≪ full %dB", len(small), len(full))
	}
}

// FuzzDigestEquivalence fuzzes the digest ⇔ equivalence property across
// the registry from seed-generated states.
func FuzzDigestEquivalence(f *testing.F) {
	f.Add(uint8(0), int64(1), int64(2))
	f.Add(uint8(5), int64(42), int64(42))
	f.Add(uint8(9), int64(-3), int64(8))

	names := Names()
	f.Fuzz(func(t *testing.T, typeIdx uint8, seedA, seedB int64) {
		name := names[int(typeIdx)%len(names)]
		gen := generators[name]
		a := gen(rand.New(rand.NewSource(seedA)))
		b := gen(rand.New(rand.NewSource(seedB)))
		da, err := DigestOf(a)
		if err != nil {
			t.Fatal(err)
		}
		db, err := DigestOf(b)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := Equivalent(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if eq != (da == db) {
			t.Fatalf("%s: equivalent=%t digest-equal=%t: %v vs %v", name, eq, da == db, a, b)
		}
	})
}
