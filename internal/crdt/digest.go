package crdt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// State digests give every payload state a short canonical name: the
// SHA-256 of its deterministic Marshal encoding. Because equivalent states
// marshal to identical bytes (the codec's determinism contract, enforced
// by the property tests), digest equality is state equality, and a replica
// that recognizes a peer's digest can skip receiving the payload entirely.
// The replication protocol uses digests to suppress redundant state
// transfer on the replica wire (docs/PROTOCOL.md §3).

// DigestSize is the byte length of a Digest (SHA-256).
const DigestSize = 32

// Digest is the canonical fingerprint of a payload state: the SHA-256 of
// Marshal(s). Two states have equal digests iff they are equivalent (up to
// hash collision, which SHA-256 makes negligible).
type Digest [DigestSize]byte

// IsZero reports whether d is the zero digest (no digest computed). The
// zero value never collides with a real digest in practice: every Marshal
// output is non-empty, and SHA-256 of any input is uniformly distributed.
func (d Digest) IsZero() bool { return d == Digest{} }

// String renders an abbreviated digest for logs and test failures.
func (d Digest) String() string { return hex.EncodeToString(d[:6]) }

// DigestOf computes the digest of a state: SHA-256 over Marshal(s).
func DigestOf(s State) (Digest, error) {
	raw, err := Marshal(s)
	if err != nil {
		return Digest{}, err
	}
	return Digest(sha256.Sum256(raw)), nil
}

// DigestOfMarshaled computes the digest of an already-marshaled state.
// Receivers of full-state messages use it to fingerprint the sender's
// state from the wire bytes without re-encoding the decoded payload.
func DigestOfMarshaled(raw []byte) Digest {
	return Digest(sha256.Sum256(raw))
}

// MemoDigest memoizes the digest of the most recently digested state,
// keyed by state identity. States are immutable and every mutation
// allocates a new value, so pointer identity is a sound cache key: the
// same State value always has the same digest. The memo makes repeated
// digests of an unchanged acceptor payload free — the common case on a
// converged read-heavy keyspace.
//
// The identity comparison requires payload types to be comparable, which
// every pointer-shaped State is. All registry types qualify (their
// factories return pointers, as Unmarshaler forces).
type MemoDigest struct {
	last   State
	digest Digest
}

// Of returns the digest of s, recomputing only when s is not the state
// digested last time.
func (m *MemoDigest) Of(s State) (Digest, error) {
	if s != nil && s == m.last {
		return m.digest, nil
	}
	d, err := DigestOf(s)
	if err != nil {
		return Digest{}, err
	}
	m.last, m.digest = s, d
	return d, nil
}

// DeltaState is implemented by payload types that support join
// decomposition (delta-state CRDTs, Almeida et al.): extracting a small
// state that carries exactly what a given baseline is missing. Types
// without delta support fall back to full-state transfer; the protocol
// treats the interface as an optimization, never a requirement.
type DeltaState interface {
	State

	// Delta returns a state d with base ⊔ d ≡ receiver. base must be of
	// the receiver's payload type and satisfy base ⊑ receiver; Delta fails
	// otherwise. Because d is itself a state of the same lattice, merging
	// it into ANY state that dominates base yields a state dominating the
	// receiver — the property that makes shipping d instead of the full
	// receiver safe on the replica wire.
	Delta(base State) (State, error)
}

// errNotDominated is returned by Delta implementations when the baseline
// does not precede the receiver in the lattice order.
func errNotDominated(t State) error {
	return fmt.Errorf("crdt: %s delta baseline not dominated by receiver", t.TypeName())
}
