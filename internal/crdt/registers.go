package crdt

import (
	"fmt"
	"sort"
	"strings"
)

// MaxRegister holds the maximum of all written int64 values: the simplest
// non-trivial join semilattice (the total order on int64). Its bottom
// element is the minimum int64.
type MaxRegister struct {
	v       int64
	written bool
}

var (
	_ State       = (*MaxRegister)(nil)
	_ Unmarshaler = (*MaxRegister)(nil)
)

// NewMaxRegister returns the register's bottom element.
func NewMaxRegister() *MaxRegister { return &MaxRegister{} }

// Set returns a copy holding max(current, v).
func (r *MaxRegister) Set(v int64) *MaxRegister {
	if r.written && r.v >= v {
		return &MaxRegister{v: r.v, written: true}
	}
	return &MaxRegister{v: v, written: true}
}

// Value returns the largest written value and whether any write happened.
func (r *MaxRegister) Value() (int64, bool) { return r.v, r.written }

// Merge keeps the maximum.
func (r *MaxRegister) Merge(other State) (State, error) {
	o, ok := other.(*MaxRegister)
	if !ok {
		return nil, typeMismatch(r, other)
	}
	switch {
	case !r.written:
		return &MaxRegister{v: o.v, written: o.written}, nil
	case !o.written || r.v >= o.v:
		return &MaxRegister{v: r.v, written: true}, nil
	default:
		return &MaxRegister{v: o.v, written: true}, nil
	}
}

// Compare is ≤ on values, with the unwritten bottom below everything.
func (r *MaxRegister) Compare(other State) (bool, error) {
	o, ok := other.(*MaxRegister)
	if !ok {
		return false, typeMismatch(r, other)
	}
	if !r.written {
		return true, nil
	}
	return o.written && r.v <= o.v, nil
}

// TypeName implements State.
func (r *MaxRegister) TypeName() string { return TypeMaxRegister }

// MarshalBinary implements State.
func (r *MaxRegister) MarshalBinary() ([]byte, error) {
	e := newEncBuf(10)
	e.bool(r.written)
	e.varint(r.v)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (r *MaxRegister) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	w, err := d.bool()
	if err != nil {
		return err
	}
	v, err := d.varint()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	r.v, r.written = v, w
	return nil
}

// LWWRegister is a last-writer-wins register: each write is stamped with a
// (timestamp, actor) pair and the lattice order is the lexicographic order
// of stamps, so the highest stamp's value wins deterministically. Timestamps
// are caller-supplied logical clocks; ties break on the actor ID.
type LWWRegister struct {
	val   string
	ts    uint64
	actor string
}

var (
	_ State       = (*LWWRegister)(nil)
	_ Unmarshaler = (*LWWRegister)(nil)
)

// NewLWWRegister returns the register's bottom element (no write).
func NewLWWRegister() *LWWRegister { return &LWWRegister{} }

// Set returns a copy recording the write if (ts, actor) exceeds the current
// stamp, and an unchanged copy otherwise.
func (r *LWWRegister) Set(val string, ts uint64, actor string) *LWWRegister {
	if stampLess(ts, actor, r.ts, r.actor) || (ts == r.ts && actor == r.actor) {
		return &LWWRegister{val: r.val, ts: r.ts, actor: r.actor}
	}
	return &LWWRegister{val: val, ts: ts, actor: actor}
}

// Value returns the current value and its stamp. The zero stamp means the
// register was never written.
func (r *LWWRegister) Value() (val string, ts uint64, actor string) {
	return r.val, r.ts, r.actor
}

// Merge keeps the entry with the larger (ts, actor, val) key. The value is
// the final tiebreak: two writes that (mis)used the same stamp for
// different values would otherwise merge receiver-biased, breaking
// commutativity — and equivalence-by-Compare would disagree with the
// value a query returns.
func (r *LWWRegister) Merge(other State) (State, error) {
	o, ok := other.(*LWWRegister)
	if !ok {
		return nil, typeMismatch(r, other)
	}
	if stampLess(r.ts, r.actor, o.ts, o.actor) ||
		(r.ts == o.ts && r.actor == o.actor && r.val < o.val) {
		return &LWWRegister{val: o.val, ts: o.ts, actor: o.actor}, nil
	}
	return &LWWRegister{val: r.val, ts: r.ts, actor: r.actor}, nil
}

// Compare is ≤ on (ts, actor, val) keys — a total order, so any two
// registers are comparable and the join is simply the maximum.
func (r *LWWRegister) Compare(other State) (bool, error) {
	o, ok := other.(*LWWRegister)
	if !ok {
		return false, typeMismatch(r, other)
	}
	if r.ts == o.ts && r.actor == o.actor {
		return r.val <= o.val, nil
	}
	return stampLess(r.ts, r.actor, o.ts, o.actor), nil
}

// TypeName implements State.
func (r *LWWRegister) TypeName() string { return TypeLWWRegister }

// String renders the register for logs and the CLI.
func (r *LWWRegister) String() string {
	if r.ts == 0 {
		return "LWWRegister(unset)"
	}
	return fmt.Sprintf("LWWRegister(%q @%d by %s)", r.val, r.ts, r.actor)
}

// MarshalBinary implements State.
func (r *LWWRegister) MarshalBinary() ([]byte, error) {
	e := newEncBuf(len(r.val) + len(r.actor) + 12)
	e.str(r.val)
	e.uvarint(r.ts)
	e.str(r.actor)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (r *LWWRegister) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	val, err := d.str()
	if err != nil {
		return err
	}
	ts, err := d.uvarint()
	if err != nil {
		return err
	}
	actor, err := d.str()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	r.val, r.ts, r.actor = val, ts, actor
	return nil
}

func stampLess(ts1 uint64, a1 string, ts2 uint64, a2 string) bool {
	if ts1 != ts2 {
		return ts1 < ts2
	}
	return a1 < a2
}

// MVRegister is a multi-value register: concurrent writes are all retained
// and surfaced to the reader for application-level reconciliation. Each
// write carries the writer's vector clock; the state is the antichain of
// causally-maximal (value, clock) pairs. The lattice order is dominance:
// a ⊑ b iff every entry of a is dominated by (or equal to) some entry of b.
type MVRegister struct {
	entries []mvEntry
}

type mvEntry struct {
	val string
	vc  *VClock
}

var (
	_ State       = (*MVRegister)(nil)
	_ Unmarshaler = (*MVRegister)(nil)
)

// NewMVRegister returns the register's bottom element (no writes).
func NewMVRegister() *MVRegister { return &MVRegister{} }

// Set returns a copy where the write (val) supersedes all current entries:
// its clock is the join of all current clocks ticked at actor.
func (r *MVRegister) Set(val string, actor string) *MVRegister {
	vc := NewVClock()
	for _, e := range r.entries {
		vc = mustVClock(vc.Merge(e.vc))
	}
	vc = vc.Tick(actor)
	return &MVRegister{entries: []mvEntry{{val: val, vc: vc}}}
}

// Values returns the concurrent values, sorted for determinism.
func (r *MVRegister) Values() []string {
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.val)
	}
	sort.Strings(out)
	return out
}

// Merge unions the entries and discards dominated ones.
func (r *MVRegister) Merge(other State) (State, error) {
	o, ok := other.(*MVRegister)
	if !ok {
		return nil, typeMismatch(r, other)
	}
	all := make([]mvEntry, 0, len(r.entries)+len(o.entries))
	all = append(all, r.entries...)
	all = append(all, o.entries...)
	var kept []mvEntry
	for i, e := range all {
		dominated := false
		for j, f := range all {
			if i == j {
				continue
			}
			le, _ := e.vc.Compare(f.vc)
			ge, _ := f.vc.Compare(e.vc)
			eq := le && ge && e.val == f.val
			if (le && !ge) || (eq && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, e)
		}
	}
	sortMVEntries(kept)
	return &MVRegister{entries: kept}, nil
}

// Compare is entry-wise dominance: every entry must be strictly dominated
// by, or identical to, some entry of other. Identity requires the value as
// well as the clock — an entry with the same clock but a different value
// is a concurrent sibling, not a cover, and Merge retains both. (A
// non-strict clock-only check would call states with different surviving
// values "equivalent", breaking digest equality ⇔ state equality.)
func (r *MVRegister) Compare(other State) (bool, error) {
	o, ok := other.(*MVRegister)
	if !ok {
		return false, typeMismatch(r, other)
	}
	for _, e := range r.entries {
		found := false
		for _, f := range o.entries {
			le, _ := e.vc.Compare(f.vc)
			ge, _ := f.vc.Compare(e.vc)
			if (le && !ge) || (le && ge && e.val == f.val) {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (r *MVRegister) TypeName() string { return TypeMVRegister }

// MarshalBinary implements State.
func (r *MVRegister) MarshalBinary() ([]byte, error) {
	e := newEncBuf(32 * (len(r.entries) + 1))
	e.uvarint(uint64(len(r.entries)))
	for _, en := range r.entries {
		e.str(en.val)
		e.strU64Map(en.vc.clock)
	}
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (r *MVRegister) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	entries := make([]mvEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		val, err := d.str()
		if err != nil {
			return err
		}
		m, err := d.strU64Map()
		if err != nil {
			return err
		}
		entries = append(entries, mvEntry{val: val, vc: &VClock{clock: m}})
	}
	if err := d.done(); err != nil {
		return err
	}
	r.entries = entries
	return nil
}

// String renders the register for logs and test failures.
func (r *MVRegister) String() string {
	return fmt.Sprintf("MVRegister{%s}", strings.Join(r.Values(), ","))
}

func sortMVEntries(entries []mvEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].val != entries[j].val {
			return entries[i].val < entries[j].val
		}
		bi, _ := entries[i].vc.MarshalBinary()
		bj, _ := entries[j].vc.MarshalBinary()
		return string(bi) < string(bj)
	})
}

func mustVClock(s State, err error) *VClock {
	if err != nil {
		panic(err)
	}
	return s.(*VClock)
}
