package crdt

import (
	"fmt"
	"sort"
	"strconv"
)

// EWFlag is an enable-wins boolean flag: an OR-Set over a single logical
// token. Enables attach unique tags; disable tombstones all observed enable
// tags, so an enable concurrent with a disable survives (enable wins).
type EWFlag struct {
	enables map[string]struct{} // tags of enables
	tombs   map[string]struct{} // tombstoned enable tags
}

var (
	_ State       = (*EWFlag)(nil)
	_ Unmarshaler = (*EWFlag)(nil)
)

// NewEWFlag returns the flag's bottom element (disabled).
func NewEWFlag() *EWFlag {
	return &EWFlag{enables: map[string]struct{}{}, tombs: map[string]struct{}{}}
}

// Enable returns a copy with a fresh enable tag from (actor, seq).
func (f *EWFlag) Enable(actor string, seq uint64) *EWFlag {
	out := f.clone()
	out.enables[actor+"#"+strconv.FormatUint(seq, 10)] = struct{}{}
	return out
}

// Disable returns a copy with every observed enable tag tombstoned.
func (f *EWFlag) Disable() *EWFlag {
	out := f.clone()
	for tag := range out.enables {
		out.tombs[tag] = struct{}{}
	}
	return out
}

// Enabled reports whether any enable tag is live.
func (f *EWFlag) Enabled() bool {
	for tag := range f.enables {
		if _, dead := f.tombs[tag]; !dead {
			return true
		}
	}
	return false
}

func (f *EWFlag) clone() *EWFlag {
	return &EWFlag{enables: cloneStrSet(f.enables), tombs: cloneStrSet(f.tombs)}
}

// Merge unions tags and tombstones.
func (f *EWFlag) Merge(other State) (State, error) {
	o, ok := other.(*EWFlag)
	if !ok {
		return nil, typeMismatch(f, other)
	}
	out := f.clone()
	for tag := range o.enables {
		out.enables[tag] = struct{}{}
	}
	for tag := range o.tombs {
		out.tombs[tag] = struct{}{}
	}
	return out, nil
}

// Compare is component-wise inclusion.
func (f *EWFlag) Compare(other State) (bool, error) {
	o, ok := other.(*EWFlag)
	if !ok {
		return false, typeMismatch(f, other)
	}
	for tag := range f.enables {
		if _, ok := o.enables[tag]; !ok {
			return false, nil
		}
	}
	for tag := range f.tombs {
		if _, ok := o.tombs[tag]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (f *EWFlag) TypeName() string { return TypeEWFlag }

// MarshalBinary implements State.
func (f *EWFlag) MarshalBinary() ([]byte, error) {
	e := newEncBuf(16 * (len(f.enables) + len(f.tombs) + 1))
	e.strSet(f.enables)
	e.strSet(f.tombs)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (f *EWFlag) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	enables, err := d.strSet()
	if err != nil {
		return err
	}
	tombs, err := d.strSet()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	f.enables, f.tombs = enables, tombs
	return nil
}

// String renders the flag for logs and test failures.
func (f *EWFlag) String() string { return fmt.Sprintf("EWFlag(%t)", f.Enabled()) }

// LWWMap is a map from string keys to last-writer-wins entries: the
// pointwise product lattice of LWW registers, with absent keys at bottom.
// Deletion is a write of a tombstone entry, so deletes participate in the
// same LWW arbitration as writes.
type LWWMap struct {
	entries map[string]lwwMapEntry
}

type lwwMapEntry struct {
	val     string
	ts      uint64
	actor   string
	deleted bool
}

var (
	_ State       = (*LWWMap)(nil)
	_ Unmarshaler = (*LWWMap)(nil)
)

// NewLWWMap returns the empty (bottom) map.
func NewLWWMap() *LWWMap { return &LWWMap{entries: map[string]lwwMapEntry{}} }

// Set returns a copy where key holds val if (ts, actor) exceeds the
// current stamp for key.
func (m *LWWMap) Set(key, val string, ts uint64, actor string) *LWWMap {
	return m.put(key, lwwMapEntry{val: val, ts: ts, actor: actor})
}

// Delete returns a copy where key is tombstoned if (ts, actor) exceeds the
// current stamp for key.
func (m *LWWMap) Delete(key string, ts uint64, actor string) *LWWMap {
	return m.put(key, lwwMapEntry{ts: ts, actor: actor, deleted: true})
}

func (m *LWWMap) put(key string, e lwwMapEntry) *LWWMap {
	out := m.clone()
	if cur, ok := out.entries[key]; !ok || cur.less(e) {
		out.entries[key] = e
	}
	return out
}

// less orders entries totally: stamp first, then the tombstone flag
// (delete wins a stamp tie), then the value. A total order per key keeps
// Merge commutative even when two writes (mis)use the same stamp for
// different contents, and keeps Compare-equivalence aligned with what Get
// observes — the contract the state digests depend on.
func (e lwwMapEntry) less(o lwwMapEntry) bool {
	if e.ts != o.ts || e.actor != o.actor {
		return stampLess(e.ts, e.actor, o.ts, o.actor)
	}
	if e.deleted != o.deleted {
		return !e.deleted
	}
	return e.val < o.val
}

// Get returns the live value for key.
func (m *LWWMap) Get(key string) (string, bool) {
	e, ok := m.entries[key]
	if !ok || e.deleted {
		return "", false
	}
	return e.val, true
}

// Keys returns the live keys in sorted order.
func (m *LWWMap) Keys() []string {
	out := make([]string, 0, len(m.entries))
	for k, e := range m.entries {
		if !e.deleted {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (m *LWWMap) Len() int {
	n := 0
	for _, e := range m.entries {
		if !e.deleted {
			n++
		}
	}
	return n
}

func (m *LWWMap) clone() *LWWMap {
	entries := make(map[string]lwwMapEntry, len(m.entries))
	for k, v := range m.entries {
		entries[k] = v
	}
	return &LWWMap{entries: entries}
}

// Merge keeps, per key, the entry with the larger stamp.
func (m *LWWMap) Merge(other State) (State, error) {
	o, ok := other.(*LWWMap)
	if !ok {
		return nil, typeMismatch(m, other)
	}
	out := m.clone()
	for k, e := range o.entries {
		if cur, ok := out.entries[k]; !ok || cur.less(e) {
			out.entries[k] = e
		}
	}
	return out, nil
}

// Compare is pointwise entry ≤ over the keys of the receiver.
func (m *LWWMap) Compare(other State) (bool, error) {
	o, ok := other.(*LWWMap)
	if !ok {
		return false, typeMismatch(m, other)
	}
	for k, e := range m.entries {
		oe, ok := o.entries[k]
		if !ok {
			return false, nil
		}
		if e != oe && !e.less(oe) {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (m *LWWMap) TypeName() string { return TypeLWWMap }

// MarshalBinary implements State.
func (m *LWWMap) MarshalBinary() ([]byte, error) {
	e := newEncBuf(32 * (len(m.entries) + 1))
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		en := m.entries[k]
		e.str(k)
		e.str(en.val)
		e.uvarint(en.ts)
		e.str(en.actor)
		e.bool(en.deleted)
	}
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (m *LWWMap) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	entries := make(map[string]lwwMapEntry, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return err
		}
		val, err := d.str()
		if err != nil {
			return err
		}
		ts, err := d.uvarint()
		if err != nil {
			return err
		}
		actor, err := d.str()
		if err != nil {
			return err
		}
		deleted, err := d.bool()
		if err != nil {
			return err
		}
		entries[k] = lwwMapEntry{val: val, ts: ts, actor: actor, deleted: deleted}
	}
	if err := d.done(); err != nil {
		return err
	}
	m.entries = entries
	return nil
}
