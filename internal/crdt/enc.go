package crdt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// The wire format used by all payload codecs is deterministic: map keys are
// emitted in sorted order so that equivalent states marshal to identical
// bytes. Integers use uvarint/varint encoding; strings and byte slices are
// length-prefixed.

var errTruncated = errors.New("crdt: truncated payload")

type encBuf struct {
	b []byte
}

func newEncBuf(sizeHint int) *encBuf {
	return &encBuf{b: make([]byte, 0, sizeHint)}
}

func (e *encBuf) bytes() []byte { return e.b }

func (e *encBuf) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

func (e *encBuf) varint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}

func (e *encBuf) float64(v float64) {
	e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v))
}

func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encBuf) raw(p []byte) {
	e.uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

func (e *encBuf) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// strU64Map encodes a map[string]uint64 deterministically.
func (e *encBuf) strU64Map(m map[string]uint64) {
	keys := sortedKeys(m)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.uvarint(m[k])
	}
}

// strSet encodes a map[string]struct{} deterministically.
func (e *encBuf) strSet(m map[string]struct{}) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
	}
}

type decBuf struct {
	b []byte
}

func newDecBuf(p []byte) *decBuf { return &decBuf{b: p} }

func (d *decBuf) done() error {
	if len(d.b) != 0 {
		return fmt.Errorf("crdt: %d trailing bytes in payload", len(d.b))
	}
	return nil
}

func (d *decBuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, errTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decBuf) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, errTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decBuf) float64() (float64, error) {
	if len(d.b) < 8 {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}

func (d *decBuf) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)) < n {
		return "", errTruncated
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *decBuf) raw() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)) < n {
		return nil, errTruncated
	}
	p := make([]byte, n)
	copy(p, d.b[:n])
	d.b = d.b[n:]
	return p, nil
}

func (d *decBuf) bool() (bool, error) {
	if len(d.b) < 1 {
		return false, errTruncated
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v, nil
}

func (d *decBuf) strU64Map() (map[string]uint64, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (d *decBuf) strSet() (map[string]struct{}, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	m := make(map[string]struct{}, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		m[k] = struct{}{}
	}
	return m, nil
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cloneStrU64 deep-copies a map[string]uint64; used by mutators to preserve
// value semantics.
func cloneStrU64(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneStrSet(m map[string]struct{}) map[string]struct{} {
	out := make(map[string]struct{}, len(m))
	for k := range m {
		out[k] = struct{}{}
	}
	return out
}
