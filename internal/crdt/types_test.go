package crdt

import (
	"testing"
)

func TestGCounterBasics(t *testing.T) {
	c := NewGCounter()
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter value = %d, want 0", got)
	}
	c = c.Inc("n1", 3).Inc("n2", 4).Inc("n1", 1)
	if got := c.Value(); got != 8 {
		t.Fatalf("value = %d, want 8", got)
	}
	if got := c.Slot("n1"); got != 4 {
		t.Fatalf("slot n1 = %d, want 4", got)
	}
	if got := c.Slot("unknown"); got != 0 {
		t.Fatalf("slot unknown = %d, want 0", got)
	}
}

func TestGCounterIncDoesNotMutate(t *testing.T) {
	a := NewGCounter().Inc("n1", 1)
	_ = a.Inc("n1", 10)
	if got := a.Value(); got != 1 {
		t.Fatalf("Inc mutated receiver: value = %d, want 1", got)
	}
}

func TestGCounterMergeTakesSlotMax(t *testing.T) {
	a := NewGCounter().Inc("n1", 5).Inc("n2", 1)
	b := NewGCounter().Inc("n1", 3).Inc("n3", 7)
	m := MustMerge(a, b).(*GCounter)
	want := map[string]uint64{"n1": 5, "n2": 1, "n3": 7}
	for rep, w := range want {
		if got := m.Slot(rep); got != w {
			t.Errorf("slot %s = %d, want %d", rep, got, w)
		}
	}
	if got := m.Value(); got != 13 {
		t.Fatalf("value = %d, want 13", got)
	}
}

func TestGCounterIncDelta(t *testing.T) {
	c := NewGCounter().Inc("n1", 4)
	d := c.IncDelta("n1", 2)
	// The delta carries only the mutated slot, at its post-increment value.
	if got := d.Slot("n1"); got != 6 {
		t.Fatalf("delta slot = %d, want 6", got)
	}
	if len(d.slots) != 1 {
		t.Fatalf("delta has %d slots, want 1", len(d.slots))
	}
	// Merging the delta equals applying the full increment.
	full := c.Inc("n1", 2)
	merged := MustMerge(c, d)
	if !mustEquivalent(t, merged, full) {
		t.Fatalf("merge of delta %v != full update %v", merged, full)
	}
}

func TestPNCounterIncDec(t *testing.T) {
	c := NewPNCounter().Inc("n1", 10).Dec("n2", 3).Dec("n1", 2)
	if got := c.Value(); got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
	// Merge with a sibling that saw different ops.
	o := NewPNCounter().Inc("n3", 1)
	m := MustMerge(c, o).(*PNCounter)
	if got := m.Value(); got != 6 {
		t.Fatalf("merged value = %d, want 6", got)
	}
}

func TestPNCounterCanGoNegative(t *testing.T) {
	c := NewPNCounter().Dec("n1", 7)
	if got := c.Value(); got != -7 {
		t.Fatalf("value = %d, want -7", got)
	}
}

func TestMaxRegister(t *testing.T) {
	m := NewMaxRegister()
	if _, ok := m.Value(); ok {
		t.Fatal("fresh register should be unwritten")
	}
	m = m.Set(5).Set(2)
	if v, ok := m.Value(); !ok || v != 5 {
		t.Fatalf("value = %d,%t want 5,true", v, ok)
	}
	m = m.Set(-1)
	if v, _ := m.Value(); v != 5 {
		t.Fatalf("Set(-1) lowered the register to %d", v)
	}
	// Negative maxima still work when nothing larger was written.
	n := NewMaxRegister().Set(-10).Set(-20)
	if v, _ := n.Value(); v != -10 {
		t.Fatalf("value = %d, want -10", v)
	}
	// Bottom is below everything, including negatives.
	if le, _ := NewMaxRegister().Compare(n); !le {
		t.Fatal("bottom should be ⊑ any written register")
	}
	if le, _ := n.Compare(NewMaxRegister()); le {
		t.Fatal("written register should not be ⊑ bottom")
	}
}

func TestLWWRegisterLastWriteWins(t *testing.T) {
	r := NewLWWRegister().Set("a", 1, "n1").Set("b", 3, "n2").Set("c", 2, "n1")
	v, ts, actor := r.Value()
	if v != "b" || ts != 3 || actor != "n2" {
		t.Fatalf("value = %q@%d/%s, want b@3/n2", v, ts, actor)
	}
}

func TestLWWRegisterTieBreaksOnActor(t *testing.T) {
	a := NewLWWRegister().Set("from-a", 5, "n1")
	b := NewLWWRegister().Set("from-b", 5, "n2")
	m1 := MustMerge(a, b).(*LWWRegister)
	m2 := MustMerge(b, a).(*LWWRegister)
	v1, _, _ := m1.Value()
	v2, _, _ := m2.Value()
	if v1 != v2 {
		t.Fatalf("merge not commutative under stamp tie: %q vs %q", v1, v2)
	}
	if v1 != "from-b" { // n2 > n1 lexicographically
		t.Fatalf("tie should resolve to higher actor, got %q", v1)
	}
}

func TestMVRegisterConcurrentWritesSurface(t *testing.T) {
	base := NewMVRegister()
	a := base.Set("left", "n1")
	b := base.Set("right", "n2")
	m := MustMerge(a, b).(*MVRegister)
	got := m.Values()
	if len(got) != 2 || got[0] != "left" || got[1] != "right" {
		t.Fatalf("concurrent values = %v, want [left right]", got)
	}
	// A subsequent write on the merged state subsumes both.
	c := m.Set("final", "n1")
	if vals := c.Values(); len(vals) != 1 || vals[0] != "final" {
		t.Fatalf("values after overwrite = %v, want [final]", vals)
	}
	if le, _ := m.Compare(c); !le {
		t.Fatal("overwrite should dominate the merged state")
	}
}

func TestMVRegisterSequentialOverwrite(t *testing.T) {
	r := NewMVRegister().Set("v1", "n1").Set("v2", "n1")
	if vals := r.Values(); len(vals) != 1 || vals[0] != "v2" {
		t.Fatalf("values = %v, want [v2]", vals)
	}
}

func TestGSetMembership(t *testing.T) {
	s := NewGSet().Add("x").Add("y").Add("x")
	if !s.Contains("x") || !s.Contains("y") || s.Contains("z") {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if got := s.Elements(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("elements = %v", got)
	}
}

func TestTwoPSetRemoveWinsForever(t *testing.T) {
	s := NewTwoPSet().Add("x").Remove("x").Add("x")
	if s.Contains("x") {
		t.Fatal("re-add after remove should not resurrect element in 2P-set")
	}
	// Remove of a never-added element also blocks future adds.
	s2 := NewTwoPSet().Remove("y").Add("y")
	if s2.Contains("y") {
		t.Fatal("remove-then-add should leave element dead")
	}
}

func TestORSetAddWins(t *testing.T) {
	// Replica A adds x; replica B (having observed the add) removes x while
	// A concurrently re-adds it with a fresh tag. Add wins.
	base := NewORSet().Add("x", "A", 1)
	removed := base.Remove("x")
	readded := base.Add("x", "A", 2)
	m := MustMerge(removed, readded).(*ORSet)
	if !m.Contains("x") {
		t.Fatal("concurrent add should win over remove")
	}
	// Removing after observing both tags kills it.
	m2 := m.Remove("x")
	if m2.Contains("x") {
		t.Fatal("remove of all observed tags should delete element")
	}
}

func TestORSetRemoveOnlyObservedTags(t *testing.T) {
	a := NewORSet().Add("x", "A", 1)
	b := NewORSet().Add("x", "B", 1)
	// a removes having seen only its own tag.
	aRemoved := a.Remove("x")
	m := MustMerge(aRemoved, b).(*ORSet)
	if !m.Contains("x") {
		t.Fatal("unobserved tag should survive the remove")
	}
}

func TestEWFlagEnableWins(t *testing.T) {
	base := NewEWFlag().Enable("A", 1)
	disabled := base.Disable()
	reenabled := base.Enable("B", 1)
	m := MustMerge(disabled, reenabled).(*EWFlag)
	if !m.Enabled() {
		t.Fatal("concurrent enable should win over disable")
	}
	if m.Disable().Enabled() {
		t.Fatal("disable after observing all enables should clear flag")
	}
}

func TestLWWMapSetGetDelete(t *testing.T) {
	m := NewLWWMap().Set("k", "v1", 1, "n1").Set("k", "v2", 2, "n1")
	if v, ok := m.Get("k"); !ok || v != "v2" {
		t.Fatalf("get = %q,%t want v2,true", v, ok)
	}
	m = m.Delete("k", 3, "n1")
	if _, ok := m.Get("k"); ok {
		t.Fatal("deleted key still visible")
	}
	// A stale write (older stamp) does not resurrect the key.
	m = m.Set("k", "old", 2, "n2")
	if _, ok := m.Get("k"); ok {
		t.Fatal("stale write resurrected deleted key")
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d, want 0", m.Len())
	}
}

func TestLWWMapMergePerKey(t *testing.T) {
	a := NewLWWMap().Set("x", "ax", 5, "n1").Set("y", "ay", 1, "n1")
	b := NewLWWMap().Set("x", "bx", 3, "n2").Set("y", "by", 2, "n2").Set("z", "bz", 1, "n2")
	m := MustMerge(a, b).(*LWWMap)
	for k, want := range map[string]string{"x": "ax", "y": "by", "z": "bz"} {
		if v, ok := m.Get(k); !ok || v != want {
			t.Errorf("key %s = %q,%t want %q", k, v, ok, want)
		}
	}
	if got := m.Keys(); len(got) != 3 {
		t.Fatalf("keys = %v", got)
	}
}

func TestVClockOrdering(t *testing.T) {
	a := NewVClock().Tick("n1").Tick("n1")
	b := a.Tick("n2")
	if le, _ := a.Compare(b); !le {
		t.Fatal("a should precede b")
	}
	if le, _ := b.Compare(a); le {
		t.Fatal("b should not precede a")
	}
	c := NewVClock().Tick("n3")
	if !a.Concurrent(c) {
		t.Fatal("a and c should be concurrent")
	}
	if a.Concurrent(b) {
		t.Fatal("a and b are ordered, not concurrent")
	}
	if got := b.Get("n1"); got != 2 {
		t.Fatalf("n1 component = %d, want 2", got)
	}
}

func TestRegistryNewUnknownType(t *testing.T) {
	if _, err := New("definitely-not-registered"); err == nil {
		t.Fatal("New of unknown type should fail")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(TypeGCounter, func() State { return NewGCounter() })
}

func TestRegisterValidation(t *testing.T) {
	t.Run("empty name", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("empty-name Register should panic")
			}
		}()
		Register("", func() State { return NewGCounter() })
	})
}
