package crdt

import (
	"errors"
	"fmt"
)

// ErrTypeMismatch is returned when two states of different concrete payload
// types are merged or compared. In a replicated deployment this indicates a
// corrupt or misrouted message and callers should drop the offending message.
var ErrTypeMismatch = errors.New("crdt: payload type mismatch")

// State is an element of a join semilattice: the payload of a state-based
// CRDT (Definition 3 in the paper).
//
// Implementations must guarantee the semilattice laws:
//
//	idempotence:    a ⊔ a ≡ a
//	commutativity:  a ⊔ b ≡ b ⊔ a
//	associativity:  (a ⊔ b) ⊔ c ≡ a ⊔ (b ⊔ c)
//	consistency:    a ⊑ b  ⇔  a ⊔ b ≡ b
//
// All methods must treat the receiver and arguments as immutable.
type State interface {
	// Merge returns the least upper bound of the receiver and other.
	// It fails with ErrTypeMismatch if other has a different payload type.
	Merge(other State) (State, error)

	// Compare reports whether the receiver precedes or equals other in the
	// lattice partial order (receiver ⊑ other). It fails with
	// ErrTypeMismatch if other has a different payload type.
	Compare(other State) (bool, error)

	// TypeName returns the name under which the payload type is registered
	// in the codec registry (see Register). It must be constant per type.
	TypeName() string

	// MarshalBinary encodes the payload in the type's deterministic wire
	// format. Two equivalent states encode to identical bytes.
	MarshalBinary() ([]byte, error)
}

// Update is a monotonically non-decreasing update function u with s ⊑ u(s)
// for every state s (Definition 3). Update functions are applied locally at
// the replica that received the client command; they are never shipped over
// the network.
type Update func(State) (State, error)

// Query is a read-only function applied to a learned state. It must not
// retain or mutate the state.
type Query func(State) (any, error)

// Equivalent reports s1 ≡ s2, i.e. s1 ⊑ s2 ∧ s2 ⊑ s1: all queries return the
// same result for both states.
func Equivalent(s1, s2 State) (bool, error) {
	le, err := s1.Compare(s2)
	if err != nil {
		return false, err
	}
	if !le {
		return false, nil
	}
	ge, err := s2.Compare(s1)
	if err != nil {
		return false, err
	}
	return ge, nil
}

// Comparable reports whether s1 and s2 can be ordered: s1 ⊑ s2 ∨ s2 ⊑ s1.
// The Consistency condition of the paper (§3.1) requires any two learned
// states to be comparable.
func Comparable(s1, s2 State) (bool, error) {
	le, err := s1.Compare(s2)
	if err != nil {
		return false, err
	}
	if le {
		return true, nil
	}
	return s2.Compare(s1)
}

// MustMerge merges two states and panics on type mismatch. It is intended
// for tests and examples where both operands are statically known to have
// the same payload type.
func MustMerge(s1, s2 State) State {
	m, err := s1.Merge(s2)
	if err != nil {
		panic(fmt.Sprintf("crdt: MustMerge: %v", err))
	}
	return m
}

// MergeAll folds Merge over a non-empty list of states, returning ⊔ states.
func MergeAll(states ...State) (State, error) {
	if len(states) == 0 {
		return nil, errors.New("crdt: MergeAll of empty list")
	}
	acc := states[0]
	for _, s := range states[1:] {
		var err error
		acc, err = acc.Merge(s)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
