package crdt

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestGeneratorsCoverRegistry guards the property-test sweep itself: every
// payload type registered in the codec registry must have a random-state
// generator, so a newly added CRDT cannot silently skip the lattice-law
// and round-trip checks.
func TestGeneratorsCoverRegistry(t *testing.T) {
	for _, name := range Names() {
		if _, ok := generators[name]; !ok {
			t.Errorf("registered type %q has no generator in lattice_test.go", name)
		}
	}
	for name := range generators {
		if _, err := New(name); err != nil {
			t.Errorf("generator for %q but type not registered: %v", name, err)
		}
	}
}

// FuzzUnmarshal feeds arbitrary bytes to the codec: decoding must never
// panic, and every frame it accepts must satisfy the semilattice laws and
// survive a deterministic re-encode round trip.
func FuzzUnmarshal(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	for _, name := range Names() {
		s := generators[name](r)
		raw, err := Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		if len(raw) > 2 {
			f.Add(raw[:len(raw)/2]) // truncated frame
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return // malformed input must be rejected, not crash
		}
		// Idempotence on whatever state the bytes decoded to.
		m, err := s.Merge(s)
		if err != nil {
			t.Fatalf("self-merge of decoded state: %v", err)
		}
		if eq, err := Equivalent(m, s); err != nil || !eq {
			t.Fatalf("s ⊔ s ≢ s for decoded state %v (err=%v)", s, err)
		}
		// Deterministic re-encode round trip.
		raw, err := Marshal(s)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		back, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if eq, err := Equivalent(s, back); err != nil || !eq {
			t.Fatalf("round trip not equivalent: %v vs %v (err=%v)", s, back, err)
		}
		raw2, err := Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("non-deterministic encoding: %x vs %x", raw, raw2)
		}
	})
}

// FuzzLatticeLaws drives the semilattice laws from fuzz-chosen seeds and
// type index: commutativity, associativity, idempotence, and the
// order/join consistency a ⊑ b ⇔ a ⊔ b ≡ b, for every registered type.
func FuzzLatticeLaws(f *testing.F) {
	f.Add(uint8(0), int64(1), int64(2), int64(3))
	f.Add(uint8(3), int64(42), int64(42), int64(7))
	f.Add(uint8(10), int64(-1), int64(0), int64(1))

	names := Names()
	f.Fuzz(func(t *testing.T, typeIdx uint8, seedA, seedB, seedC int64) {
		name := names[int(typeIdx)%len(names)]
		gen := generators[name]
		a := gen(rand.New(rand.NewSource(seedA)))
		b := gen(rand.New(rand.NewSource(seedB)))
		c := gen(rand.New(rand.NewSource(seedC)))

		aa := MustMerge(a, a)
		if eq, err := Equivalent(aa, a); err != nil || !eq {
			t.Fatalf("%s: idempotence violated: %v (err=%v)", name, a, err)
		}
		ab, ba := MustMerge(a, b), MustMerge(b, a)
		if eq, err := Equivalent(ab, ba); err != nil || !eq {
			t.Fatalf("%s: commutativity violated: %v, %v (err=%v)", name, a, b, err)
		}
		left := MustMerge(MustMerge(a, b), c)
		right := MustMerge(a, MustMerge(b, c))
		if eq, err := Equivalent(left, right); err != nil || !eq {
			t.Fatalf("%s: associativity violated: %v, %v, %v (err=%v)", name, a, b, c, err)
		}
		le, err := a.Compare(b)
		if err != nil {
			t.Fatal(err)
		}
		joinedEq, err := Equivalent(ab, b)
		if err != nil {
			t.Fatal(err)
		}
		if le != joinedEq {
			t.Fatalf("%s: a ⊑ b (%t) inconsistent with a ⊔ b ≡ b (%t): a=%v b=%v", name, le, joinedEq, a, b)
		}
		// The codec must round-trip the join, preserving equivalence.
		raw, err := Marshal(ab)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if eq, err := Equivalent(ab, back); err != nil || !eq {
			t.Fatalf("%s: join did not round-trip: %v vs %v (err=%v)", name, ab, back, err)
		}
	})
}
