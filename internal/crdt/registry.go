package crdt

import (
	"fmt"
	"sort"
	"sync"
)

// The codec registry maps payload type names to factories so that payloads
// can be reconstructed from the self-describing wire format produced by
// Marshal. All payload types shipped with this package are registered by
// the package itself; applications adding custom CRDTs must Register them
// on every replica before exchanging states.

// Unmarshaler is implemented by payload types that can decode themselves
// from the bytes produced by their MarshalBinary. Factories returned by the
// registry must produce values implementing both State and Unmarshaler.
type Unmarshaler interface {
	UnmarshalBinary(data []byte) error
}

type registry struct {
	mu        sync.RWMutex
	factories map[string]func() State
}

var defaultRegistry = &registry{factories: make(map[string]func() State)}

// Register adds a payload type factory under the given name. The factory
// must return a fresh zero-value payload whose concrete type implements
// Unmarshaler. Register panics if the name is already taken with a
// different factory, mirroring gob.Register semantics: codec registration
// is a wiring error, not a runtime condition.
func Register(name string, factory func() State) {
	defaultRegistry.mu.Lock()
	defer defaultRegistry.mu.Unlock()
	if name == "" {
		panic("crdt: Register with empty type name")
	}
	if _, dup := defaultRegistry.factories[name]; dup {
		panic(fmt.Sprintf("crdt: Register called twice for type %q", name))
	}
	if _, ok := factory().(Unmarshaler); !ok {
		panic(fmt.Sprintf("crdt: payload type %q does not implement Unmarshaler", name))
	}
	defaultRegistry.factories[name] = factory
}

// New returns a fresh zero-value payload of the named registered type.
func New(name string) (State, error) {
	defaultRegistry.mu.RLock()
	factory, ok := defaultRegistry.factories[name]
	defaultRegistry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("crdt: unregistered payload type %q", name)
	}
	return factory(), nil
}

// Names returns the names of every registered payload type, sorted. It is
// used by the property and fuzz tests to sweep the full registry and by
// tooling that enumerates available payload types.
func Names() []string {
	defaultRegistry.mu.RLock()
	defer defaultRegistry.mu.RUnlock()
	names := make([]string, 0, len(defaultRegistry.factories))
	for name := range defaultRegistry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Marshal encodes a state in the self-describing wire format
// [name][payload] used by the replication protocols.
func Marshal(s State) ([]byte, error) {
	payload, err := s.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("crdt: marshal %s: %w", s.TypeName(), err)
	}
	e := newEncBuf(len(payload) + len(s.TypeName()) + 2)
	e.str(s.TypeName())
	e.raw(payload)
	return e.bytes(), nil
}

// Unmarshal decodes a state previously encoded with Marshal. The payload
// type must have been registered on this process.
func Unmarshal(data []byte) (State, error) {
	d := newDecBuf(data)
	name, err := d.str()
	if err != nil {
		return nil, fmt.Errorf("crdt: unmarshal type name: %w", err)
	}
	payload, err := d.raw()
	if err != nil {
		return nil, fmt.Errorf("crdt: unmarshal %s payload: %w", name, err)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	s, err := New(name)
	if err != nil {
		return nil, err
	}
	if err := s.(Unmarshaler).UnmarshalBinary(payload); err != nil {
		return nil, fmt.Errorf("crdt: unmarshal %s: %w", name, err)
	}
	return s, nil
}

// Registered type names for the built-in payload types.
const (
	TypeGCounter    = "g-counter"
	TypePNCounter   = "pn-counter"
	TypeMaxRegister = "max-register"
	TypeLWWRegister = "lww-register"
	TypeMVRegister  = "mv-register"
	TypeGSet        = "g-set"
	TypeTwoPSet     = "2p-set"
	TypeORSet       = "or-set"
	TypeEWFlag      = "ew-flag"
	TypeLWWMap      = "lww-map"
	TypeVClock      = "vector-clock"
)

// Built-in payloads are registered once at package initialization, the same
// pattern encoding/gob uses for its concrete-type registry.
func init() {
	Register(TypeGCounter, func() State { return NewGCounter() })
	Register(TypePNCounter, func() State { return NewPNCounter() })
	Register(TypeMaxRegister, func() State { return NewMaxRegister() })
	Register(TypeLWWRegister, func() State { return NewLWWRegister() })
	Register(TypeMVRegister, func() State { return NewMVRegister() })
	Register(TypeGSet, func() State { return NewGSet() })
	Register(TypeTwoPSet, func() State { return NewTwoPSet() })
	Register(TypeORSet, func() State { return NewORSet() })
	Register(TypeEWFlag, func() State { return NewEWFlag() })
	Register(TypeLWWMap, func() State { return NewLWWMap() })
	Register(TypeVClock, func() State { return NewVClock() })
}
