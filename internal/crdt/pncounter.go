package crdt

import "fmt"

// PNCounter is a counter supporting increments and decrements, built as the
// product lattice of two G-Counters: one accumulating increments (p) and
// one accumulating decrements (n). Its value is Σp − Σn.
type PNCounter struct {
	p *GCounter
	n *GCounter
}

var (
	_ State       = (*PNCounter)(nil)
	_ Unmarshaler = (*PNCounter)(nil)
)

// NewPNCounter returns the counter's bottom element (value 0).
func NewPNCounter() *PNCounter {
	return &PNCounter{p: NewGCounter(), n: NewGCounter()}
}

// Inc returns a copy with replica's increment slot raised by n.
func (c *PNCounter) Inc(replica string, n uint64) *PNCounter {
	return &PNCounter{p: c.p.Inc(replica, n), n: c.n}
}

// Dec returns a copy with replica's decrement slot raised by n.
func (c *PNCounter) Dec(replica string, n uint64) *PNCounter {
	return &PNCounter{p: c.p, n: c.n.Inc(replica, n)}
}

// Value returns the counter value, Σincrements − Σdecrements.
func (c *PNCounter) Value() int64 {
	return int64(c.p.Value()) - int64(c.n.Value())
}

// Merge joins both component G-Counters slot-wise.
func (c *PNCounter) Merge(other State) (State, error) {
	o, ok := other.(*PNCounter)
	if !ok {
		return nil, typeMismatch(c, other)
	}
	p, err := c.p.Merge(o.p)
	if err != nil {
		return nil, err
	}
	n, err := c.n.Merge(o.n)
	if err != nil {
		return nil, err
	}
	return &PNCounter{p: p.(*GCounter), n: n.(*GCounter)}, nil
}

// Compare is the product order: both components must be ≤.
func (c *PNCounter) Compare(other State) (bool, error) {
	o, ok := other.(*PNCounter)
	if !ok {
		return false, typeMismatch(c, other)
	}
	le, err := c.p.Compare(o.p)
	if err != nil || !le {
		return false, err
	}
	return c.n.Compare(o.n)
}

// TypeName implements State.
func (c *PNCounter) TypeName() string { return TypePNCounter }

// MarshalBinary implements State.
func (c *PNCounter) MarshalBinary() ([]byte, error) {
	e := newEncBuf(16 * (len(c.p.slots) + len(c.n.slots) + 1))
	e.strU64Map(c.p.slots)
	e.strU64Map(c.n.slots)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (c *PNCounter) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	p, err := d.strU64Map()
	if err != nil {
		return err
	}
	n, err := d.strU64Map()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	c.p = &GCounter{slots: p}
	c.n = &GCounter{slots: n}
	return nil
}

// String renders the counter for logs and test failures.
func (c *PNCounter) String() string {
	return fmt.Sprintf("PNCounter(%d)", c.Value())
}

var _ DeltaState = (*PNCounter)(nil)

// Delta implements DeltaState component-wise over the product lattice.
func (c *PNCounter) Delta(base State) (State, error) {
	b, ok := base.(*PNCounter)
	if !ok {
		return nil, typeMismatch(c, base)
	}
	p, err := c.p.Delta(b.p)
	if err != nil {
		return nil, err
	}
	n, err := c.n.Delta(b.n)
	if err != nil {
		return nil, err
	}
	return &PNCounter{p: p.(*GCounter), n: n.(*GCounter)}, nil
}
