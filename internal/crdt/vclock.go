package crdt

import (
	"fmt"
	"sort"
	"strings"
)

// VClock is a vector clock: one monotonically increasing counter per actor.
// Vector clocks are themselves a join semilattice (pointwise max / pointwise
// ≤), so VClock doubles as a CRDT payload and as the causality-tracking
// building block of MVRegister.
type VClock struct {
	clock map[string]uint64
}

var (
	_ State       = (*VClock)(nil)
	_ Unmarshaler = (*VClock)(nil)
)

// NewVClock returns the empty (bottom) clock.
func NewVClock() *VClock { return &VClock{clock: map[string]uint64{}} }

// Tick returns a copy with actor's component advanced by one.
func (v *VClock) Tick(actor string) *VClock {
	out := &VClock{clock: cloneStrU64(v.clock)}
	out.clock[actor]++
	return out
}

// Get returns actor's component.
func (v *VClock) Get(actor string) uint64 { return v.clock[actor] }

// Merge is the pointwise maximum.
func (v *VClock) Merge(other State) (State, error) {
	o, ok := other.(*VClock)
	if !ok {
		return nil, typeMismatch(v, other)
	}
	out := &VClock{clock: cloneStrU64(v.clock)}
	for k, c := range o.clock {
		if c > out.clock[k] {
			out.clock[k] = c
		}
	}
	return out, nil
}

// Compare is the pointwise ≤ (the happened-before partial order).
func (v *VClock) Compare(other State) (bool, error) {
	o, ok := other.(*VClock)
	if !ok {
		return false, typeMismatch(v, other)
	}
	for k, c := range v.clock {
		if c > o.clock[k] {
			return false, nil
		}
	}
	return true, nil
}

// Concurrent reports whether neither clock dominates the other.
func (v *VClock) Concurrent(o *VClock) bool {
	le, _ := v.Compare(o)
	ge, _ := o.Compare(v)
	return !le && !ge
}

// TypeName implements State.
func (v *VClock) TypeName() string { return TypeVClock }

// MarshalBinary implements State.
func (v *VClock) MarshalBinary() ([]byte, error) {
	e := newEncBuf(12 * (len(v.clock) + 1))
	e.strU64Map(v.clock)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (v *VClock) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	m, err := d.strU64Map()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	v.clock = m
	return nil
}

// String renders the clock for logs and test failures.
func (v *VClock) String() string {
	parts := make([]string, 0, len(v.clock))
	for _, k := range sortedKeys(v.clock) {
		parts = append(parts, fmt.Sprintf("%s:%d", k, v.clock[k]))
	}
	sort.Strings(parts)
	return "VClock{" + strings.Join(parts, ",") + "}"
}
