package crdt

import (
	"fmt"
	"sort"
	"strconv"
)

// GSet is a grow-only set of strings: the lattice is (2^E, ⊆, ∪). Elements
// can only be added; removal requires TwoPSet or ORSet.
type GSet struct {
	elems map[string]struct{}
}

var (
	_ State       = (*GSet)(nil)
	_ Unmarshaler = (*GSet)(nil)
)

// NewGSet returns the empty (bottom) set.
func NewGSet() *GSet { return &GSet{elems: map[string]struct{}{}} }

// Add returns a copy containing e.
func (s *GSet) Add(e string) *GSet {
	out := &GSet{elems: cloneStrSet(s.elems)}
	out.elems[e] = struct{}{}
	return out
}

// Contains reports membership of e.
func (s *GSet) Contains(e string) bool {
	_, ok := s.elems[e]
	return ok
}

// Len returns the number of elements.
func (s *GSet) Len() int { return len(s.elems) }

// Elements returns the members in sorted order.
func (s *GSet) Elements() []string {
	out := make([]string, 0, len(s.elems))
	for e := range s.elems {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Merge is set union.
func (s *GSet) Merge(other State) (State, error) {
	o, ok := other.(*GSet)
	if !ok {
		return nil, typeMismatch(s, other)
	}
	out := &GSet{elems: cloneStrSet(s.elems)}
	for e := range o.elems {
		out.elems[e] = struct{}{}
	}
	return out, nil
}

// Compare is set inclusion.
func (s *GSet) Compare(other State) (bool, error) {
	o, ok := other.(*GSet)
	if !ok {
		return false, typeMismatch(s, other)
	}
	for e := range s.elems {
		if _, ok := o.elems[e]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (s *GSet) TypeName() string { return TypeGSet }

// MarshalBinary implements State.
func (s *GSet) MarshalBinary() ([]byte, error) {
	e := newEncBuf(16 * (len(s.elems) + 1))
	e.strSet(s.elems)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (s *GSet) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	m, err := d.strSet()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	s.elems = m
	return nil
}

// String renders the set for logs and test failures.
func (s *GSet) String() string { return fmt.Sprintf("GSet%v", s.Elements()) }

// TwoPSet is a two-phase set: the product of an add G-Set and a remove
// G-Set (tombstones). Once removed, an element can never be re-added —
// remove wins permanently. Tombstones accumulate; the paper's related-work
// section points to garbage-collection literature for this inflation.
type TwoPSet struct {
	added   map[string]struct{}
	removed map[string]struct{}
}

var (
	_ State       = (*TwoPSet)(nil)
	_ Unmarshaler = (*TwoPSet)(nil)
)

// NewTwoPSet returns the empty (bottom) set.
func NewTwoPSet() *TwoPSet {
	return &TwoPSet{added: map[string]struct{}{}, removed: map[string]struct{}{}}
}

// Add returns a copy with e added. Adding a removed element has no visible
// effect (remove wins).
func (s *TwoPSet) Add(e string) *TwoPSet {
	out := s.clone()
	out.added[e] = struct{}{}
	return out
}

// Remove returns a copy with e tombstoned.
func (s *TwoPSet) Remove(e string) *TwoPSet {
	out := s.clone()
	out.added[e] = struct{}{} // removal implies observation
	out.removed[e] = struct{}{}
	return out
}

// Contains reports whether e was added and never removed.
func (s *TwoPSet) Contains(e string) bool {
	if _, rm := s.removed[e]; rm {
		return false
	}
	_, ok := s.added[e]
	return ok
}

// Elements returns the live members in sorted order.
func (s *TwoPSet) Elements() []string {
	out := make([]string, 0, len(s.added))
	for e := range s.added {
		if _, rm := s.removed[e]; !rm {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

func (s *TwoPSet) clone() *TwoPSet {
	return &TwoPSet{added: cloneStrSet(s.added), removed: cloneStrSet(s.removed)}
}

// Merge unions both component sets.
func (s *TwoPSet) Merge(other State) (State, error) {
	o, ok := other.(*TwoPSet)
	if !ok {
		return nil, typeMismatch(s, other)
	}
	out := s.clone()
	for e := range o.added {
		out.added[e] = struct{}{}
	}
	for e := range o.removed {
		out.removed[e] = struct{}{}
	}
	return out, nil
}

// Compare is component-wise inclusion.
func (s *TwoPSet) Compare(other State) (bool, error) {
	o, ok := other.(*TwoPSet)
	if !ok {
		return false, typeMismatch(s, other)
	}
	for e := range s.added {
		if _, ok := o.added[e]; !ok {
			return false, nil
		}
	}
	for e := range s.removed {
		if _, ok := o.removed[e]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (s *TwoPSet) TypeName() string { return TypeTwoPSet }

// MarshalBinary implements State.
func (s *TwoPSet) MarshalBinary() ([]byte, error) {
	e := newEncBuf(16 * (len(s.added) + len(s.removed) + 1))
	e.strSet(s.added)
	e.strSet(s.removed)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (s *TwoPSet) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	added, err := d.strSet()
	if err != nil {
		return err
	}
	removed, err := d.strSet()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	s.added, s.removed = added, removed
	return nil
}

// ORSet is an observed-remove (add-wins) set. Every add attaches a unique
// tag; a remove tombstones exactly the tags observed at the removing
// replica, so adds concurrent with a remove survive. The lattice is the
// product of two grow-only sets: (element,tag) pairs and removed tags.
type ORSet struct {
	adds  map[string]map[string]struct{} // element -> set of tags ever added
	tombs map[string]struct{}            // removed tags
}

var (
	_ State       = (*ORSet)(nil)
	_ Unmarshaler = (*ORSet)(nil)
)

// NewORSet returns the empty (bottom) set.
func NewORSet() *ORSet {
	return &ORSet{adds: map[string]map[string]struct{}{}, tombs: map[string]struct{}{}}
}

// Add returns a copy with e added under a fresh tag derived from the actor
// and its per-actor sequence number seq. (actor, seq) pairs must be unique
// across all adds, which each replica guarantees locally by counting.
func (s *ORSet) Add(e, actor string, seq uint64) *ORSet {
	out := s.clone()
	tag := actor + "#" + strconv.FormatUint(seq, 10)
	tags, ok := out.adds[e]
	if !ok {
		tags = map[string]struct{}{}
		out.adds[e] = tags
	}
	tags[tag] = struct{}{}
	return out
}

// Remove returns a copy with every currently observed tag of e tombstoned.
// Adds of e that this state has not observed are unaffected (add wins).
func (s *ORSet) Remove(e string) *ORSet {
	out := s.clone()
	for tag := range out.adds[e] {
		out.tombs[tag] = struct{}{}
	}
	return out
}

// Contains reports whether e has at least one live (non-tombstoned) tag.
func (s *ORSet) Contains(e string) bool {
	for tag := range s.adds[e] {
		if _, dead := s.tombs[tag]; !dead {
			return true
		}
	}
	return false
}

// Elements returns the live members in sorted order.
func (s *ORSet) Elements() []string {
	out := make([]string, 0, len(s.adds))
	for e := range s.adds {
		if s.Contains(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

func (s *ORSet) clone() *ORSet {
	adds := make(map[string]map[string]struct{}, len(s.adds))
	for e, tags := range s.adds {
		adds[e] = cloneStrSet(tags)
	}
	return &ORSet{adds: adds, tombs: cloneStrSet(s.tombs)}
}

// Merge unions the (element, tag) pairs and the tombstones.
func (s *ORSet) Merge(other State) (State, error) {
	o, ok := other.(*ORSet)
	if !ok {
		return nil, typeMismatch(s, other)
	}
	out := s.clone()
	for e, tags := range o.adds {
		dst, ok := out.adds[e]
		if !ok {
			dst = map[string]struct{}{}
			out.adds[e] = dst
		}
		for tag := range tags {
			dst[tag] = struct{}{}
		}
	}
	for tag := range o.tombs {
		out.tombs[tag] = struct{}{}
	}
	return out, nil
}

// Compare is component-wise inclusion of tags and tombstones.
func (s *ORSet) Compare(other State) (bool, error) {
	o, ok := other.(*ORSet)
	if !ok {
		return false, typeMismatch(s, other)
	}
	for e, tags := range s.adds {
		otags := o.adds[e]
		for tag := range tags {
			if _, ok := otags[tag]; !ok {
				return false, nil
			}
		}
	}
	for tag := range s.tombs {
		if _, ok := o.tombs[tag]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// TypeName implements State.
func (s *ORSet) TypeName() string { return TypeORSet }

// MarshalBinary implements State.
func (s *ORSet) MarshalBinary() ([]byte, error) {
	e := newEncBuf(32 * (len(s.adds) + len(s.tombs) + 1))
	elems := make([]string, 0, len(s.adds))
	for el := range s.adds {
		elems = append(elems, el)
	}
	sort.Strings(elems)
	e.uvarint(uint64(len(elems)))
	for _, el := range elems {
		e.str(el)
		e.strSet(s.adds[el])
	}
	e.strSet(s.tombs)
	return e.bytes(), nil
}

// UnmarshalBinary implements Unmarshaler.
func (s *ORSet) UnmarshalBinary(data []byte) error {
	d := newDecBuf(data)
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	adds := make(map[string]map[string]struct{}, n)
	for i := uint64(0); i < n; i++ {
		el, err := d.str()
		if err != nil {
			return err
		}
		tags, err := d.strSet()
		if err != nil {
			return err
		}
		adds[el] = tags
	}
	tombs, err := d.strSet()
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	s.adds, s.tombs = adds, tombs
	return nil
}

// String renders the set for logs and test failures.
func (s *ORSet) String() string { return fmt.Sprintf("ORSet%v", s.Elements()) }

var _ DeltaState = (*ORSet)(nil)

// Delta implements DeltaState: the (element, tag) pairs and tombstones the
// baseline is missing. A converged workload's add or remove produces a
// delta of one tag, independent of how large the set has grown.
func (s *ORSet) Delta(base State) (State, error) {
	b, ok := base.(*ORSet)
	if !ok {
		return nil, typeMismatch(s, base)
	}
	if le, err := b.Compare(s); err != nil {
		return nil, err
	} else if !le {
		return nil, errNotDominated(s)
	}
	out := NewORSet()
	for e, tags := range s.adds {
		btags := b.adds[e]
		for tag := range tags {
			if _, ok := btags[tag]; !ok {
				dst, ok := out.adds[e]
				if !ok {
					dst = map[string]struct{}{}
					out.adds[e] = dst
				}
				dst[tag] = struct{}{}
			}
		}
	}
	for tag := range s.tombs {
		if _, ok := b.tombs[tag]; !ok {
			out.tombs[tag] = struct{}{}
		}
	}
	return out, nil
}
